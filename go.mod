module gpml

go 1.21
