// Command pgq demonstrates the SQL/PGQ side of Figure 9: it loads node and
// edge tables from CSV files, defines a property-graph view over them, runs
// a GPML match, and projects the result back to a table with a COLUMNS
// clause.
//
// Usage:
//
//	pgq -nodes Account=accounts.csv -edges Transfer=transfers.csv:src:dst \
//	    -columns 'x.owner AS A, y.owner AS B' 'MATCH (x:Account)-[:Transfer]->(y:Account)'
//
// Node CSVs must have an ID column; edge CSVs an ID column plus the two
// reference columns named in the flag (defaulting to src and dst).
//
// With no table flags, the Figure 1 graph's tabular export is used, making
//
//	pgq -columns 'x.owner AS owner' 'MATCH (x:Account)'
//
// work out of the box. With -export, the Figure 2 tabular representation of
// the graph is printed instead of running a query.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpml"
	"gpml/internal/pgq"
)

type tableFlag struct {
	specs []string
}

func (f *tableFlag) String() string { return strings.Join(f.specs, ",") }

func (f *tableFlag) Set(v string) error {
	f.specs = append(f.specs, v)
	return nil
}

func main() {
	var (
		nodeFlags tableFlag
		edgeFlags tableFlag
		columns   = flag.String("columns", "", "GRAPH_TABLE COLUMNS clause, e.g. 'x.owner AS A'")
		export    = flag.Bool("export", false, "print the Figure 2 tabular export of the graph and exit")
	)
	flag.Var(&nodeFlags, "nodes", "node table: Label=file.csv (repeatable)")
	flag.Var(&edgeFlags, "edges", "edge table: Label=file.csv[:srcCol:dstCol] (repeatable)")
	flag.Parse()

	g, err := buildGraph(nodeFlags.specs, edgeFlags.specs)
	if err != nil {
		fatal(err)
	}

	if *export {
		for _, t := range gpml.Tabular(g) {
			fmt.Println(t.String())
		}
		return
	}

	query := strings.TrimSpace(strings.Join(flag.Args(), " "))
	if query == "" || *columns == "" {
		fmt.Fprintln(os.Stderr, "usage: pgq [-nodes L=f.csv]... [-edges L=f.csv:s:d]... -columns '...' 'MATCH ...'")
		os.Exit(2)
	}
	cols, err := gpml.ParseColumns(*columns)
	if err != nil {
		fatal(err)
	}
	out, err := gpml.GraphTable(g, query, cols)
	if err != nil {
		fatal(err)
	}
	fmt.Print(out.String())
	fmt.Printf("(%d rows)\n", out.NumRows())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgq:", err)
	os.Exit(1)
}

func buildGraph(nodeSpecs, edgeSpecs []string) (*gpml.Graph, error) {
	if len(nodeSpecs) == 0 && len(edgeSpecs) == 0 {
		return gpml.Fig1(), nil
	}
	def := &gpml.GraphDef{Name: "cli"}
	for _, spec := range nodeSpecs {
		label, file, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("bad -nodes spec %q (want Label=file.csv)", spec)
		}
		t, err := loadCSV(label, file)
		if err != nil {
			return nil, err
		}
		def.Vertices = append(def.Vertices, gpml.VertexTable{Table: t, Key: "ID", Labels: []string{label}})
	}
	for _, spec := range edgeSpecs {
		label, rest, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("bad -edges spec %q (want Label=file.csv[:src:dst])", spec)
		}
		parts := strings.Split(rest, ":")
		file := parts[0]
		srcCol, dstCol := "src", "dst"
		if len(parts) == 3 {
			srcCol, dstCol = parts[1], parts[2]
		} else if len(parts) != 1 {
			return nil, fmt.Errorf("bad -edges spec %q", spec)
		}
		t, err := loadCSV(label, file)
		if err != nil {
			return nil, err
		}
		def.Edges = append(def.Edges, gpml.EdgeTable{
			Table: t, Key: "ID", SourceKey: srcCol, TargetKey: dstCol, Labels: []string{label},
		})
	}
	return def.Build()
}

func loadCSV(name, path string) (*gpml.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return pgq.ReadCSV(name, f)
}
