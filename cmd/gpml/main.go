// Command gpml runs GPML queries against a property graph.
//
// Usage:
//
//	gpml [-graph graph.json] [-gql] [-bindings] [-normalized] [-explain] 'MATCH ...'
//
// Without -graph, the paper's Figure 1 banking graph is used. The query may
// also be piped on stdin. With -bindings, the §6.4-style reduced path
// binding tables are printed instead of the variable table; -normalized
// additionally prints the §6.2 normalized pattern. -explain reports which
// engine (dfs, bfs, or the pattern automaton) evaluates each path pattern
// and why, plus the cost-ordered join plan of multi-pattern statements;
// -csr evaluates on an immutable CSR snapshot and -overlay on an
// epoch-snapshot overlay store (the live-mutation serving configuration);
// -no-automaton pins evaluation to the enumerating engines,
// -no-bind-join to the enumerate-then-hash-join pipeline, and
// -no-vectorize to the row-at-a-time operators. -first N
// streams only the first N rows (LIMIT pushdown: enumeration stops once
// they are produced) and -timeout aborts evaluation after a duration via
// streaming cancellation.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gpml"
	"gpml/internal/graph"
)

func main() {
	var (
		graphFile  = flag.String("graph", "", "graph JSON file (default: the paper's Figure 1 graph)")
		gqlMode    = flag.Bool("gql", false, "GQL host mode (allows element equality)")
		bindings   = flag.Bool("bindings", false, "print reduced path binding tables (§6.4 presentation)")
		normalized = flag.Bool("normalized", false, "print the normalized pattern before results")
		maxMatches = flag.Int("max-matches", 0, "cap on raw matches per pattern (0 = default)")
		csr        = flag.Bool("csr", false, "evaluate on an immutable CSR snapshot of the graph")
		overlay    = flag.Bool("overlay", false, "evaluate on an epoch-snapshot overlay store layered over a CSR snapshot")
		parallel   = flag.Int("parallel", 0, "evaluation workers over seed nodes (<2 = sequential)")
		explain    = flag.Bool("explain", false, "print which engine (dfs/bfs/automaton) evaluates each pattern")
		noAuto     = flag.Bool("no-automaton", false, "disable the pattern-automaton engine (A/B comparison)")
		noBindJoin = flag.Bool("no-bind-join", false, "disable the cost-ordered bind-join planner (A/B comparison)")
		noVec      = flag.Bool("no-vectorize", false, "disable the vectorized batch pipeline (A/B comparison)")
		timeout    = flag.Duration("timeout", 0, "abort evaluation after this duration (streaming cancellation; 0 = none)")
		first      = flag.Int("first", 0, "stream only the first N rows (LIMIT pushdown; 0 = all rows)")
	)
	flag.Parse()

	query := strings.TrimSpace(strings.Join(flag.Args(), " "))
	if query == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		query = strings.TrimSpace(string(data))
	}
	if query == "" {
		fmt.Fprintln(os.Stderr, "usage: gpml [-graph file.json] 'MATCH ...'")
		os.Exit(2)
	}

	g, err := loadGraph(*graphFile)
	if err != nil {
		fatal(err)
	}

	var opts []gpml.Option
	if *gqlMode {
		opts = append(opts, gpml.GQLMode())
	}
	if *maxMatches > 0 {
		opts = append(opts, gpml.WithLimits(gpml.Limits{MaxMatches: *maxMatches}))
	}
	var evalOpts []gpml.Option
	if *overlay {
		// The serving-engine configuration: queries pin epoch snapshots of
		// the overlay, exactly as a process applying live mutations would.
		evalOpts = append(evalOpts, gpml.WithStore(gpml.NewOverlay(g)))
	} else if *csr {
		evalOpts = append(evalOpts, gpml.WithStore(gpml.Snapshot(g)))
	} else {
		// Explain and evaluation read cardinality statistics off the
		// store; pass the map graph explicitly so both see the same one.
		evalOpts = append(evalOpts, gpml.WithStore(g))
	}
	if *parallel > 1 {
		evalOpts = append(evalOpts, gpml.WithParallelism(*parallel))
	}
	if *noAuto {
		evalOpts = append(evalOpts, gpml.NoAutomaton())
	}
	if *noBindJoin {
		evalOpts = append(evalOpts, gpml.NoBindJoin())
	}
	if *noVec {
		evalOpts = append(evalOpts, gpml.NoVectorize())
	}
	q, err := gpml.Compile(query, opts...)
	if err != nil {
		fatal(err)
	}
	if *normalized {
		fmt.Println("normalized:", q.Normalized())
	}
	if *explain {
		for _, line := range q.Explain(evalOpts...) {
			fmt.Println("explain:", line)
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
		evalOpts = append(evalOpts, gpml.WithContext(ctx))
	}
	if *first > 0 {
		evalOpts = append(evalOpts, gpml.WithLimit(*first))
	}

	// -first and -timeout run through the streaming pipeline: the limit
	// stops upstream enumeration after N rows, and an expired deadline
	// aborts the in-flight search with an error (partial rows are
	// discarded). Collect restores Eval's canonical row order.
	rows, err := q.Stream(ctx, nil, evalOpts...)
	if err != nil {
		fatal(err)
	}
	res, err := rows.Collect()
	if err != nil {
		fatal(err)
	}

	if *bindings {
		fmt.Print(gpml.FormatBindings(res))
	} else {
		fmt.Print(gpml.FormatResult(res))
	}
	if *first > 0 && len(res.Rows) == *first {
		// The limit bit: more rows may exist beyond the cut.
		fmt.Printf("(first %d rows)\n", len(res.Rows))
	} else {
		fmt.Printf("(%d rows)\n", len(res.Rows))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpml:", err)
	os.Exit(1)
}

func loadGraph(path string) (*gpml.Graph, error) {
	if path == "" {
		return gpml.Fig1(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadJSON(f)
}
