// Command gpml runs GPML queries against a property graph.
//
// Usage:
//
//	gpml [-graph graph.json] [-gql] [-bindings] [-normalized] [-explain] 'MATCH ...'
//
// Without -graph, the paper's Figure 1 banking graph is used. The query may
// also be piped on stdin. With -bindings, the §6.4-style reduced path
// binding tables are printed instead of the variable table; -normalized
// additionally prints the §6.2 normalized pattern. -explain reports which
// engine (dfs, bfs, or the pattern automaton) evaluates each path pattern
// and why, plus the cost-ordered join plan of multi-pattern statements;
// -csr evaluates on an immutable CSR snapshot and -overlay on an
// epoch-snapshot overlay store (the live-mutation serving configuration);
// -no-automaton pins evaluation to the enumerating engines,
// -no-bind-join to the enumerate-then-hash-join pipeline, and
// -no-vectorize to the row-at-a-time operators. -first N
// streams only the first N rows (LIMIT pushdown: enumeration stops once
// they are produced) and -timeout aborts evaluation after a duration via
// streaming cancellation.
//
// Exit codes distinguish why evaluation ended: 0 success, 1 query or
// graph error (compile errors include a caret diagnostic pointing at the
// offending source column), 2 usage, 3 the -timeout deadline expired
// mid-evaluation, 4 interrupted by SIGINT/SIGTERM, 5 a search limit from
// -max-matches was exhausted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"gpml"
	"gpml/internal/graph"
)

// Exit codes: scripts driving gpml can tell a wrong query from a slow
// one without parsing stderr.
const (
	exitOK        = 0
	exitError     = 1 // compile/graph/eval error
	exitUsage     = 2
	exitDeadline  = 3 // -timeout expired mid-evaluation
	exitInterrupt = 4 // SIGINT/SIGTERM
	exitLimit     = 5 // search limit (Limits budget) exhausted
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gpml", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphFile  = fs.String("graph", "", "graph JSON file (default: the paper's Figure 1 graph)")
		gqlMode    = fs.Bool("gql", false, "GQL host mode (allows element equality)")
		bindings   = fs.Bool("bindings", false, "print reduced path binding tables (§6.4 presentation)")
		normalized = fs.Bool("normalized", false, "print the normalized pattern before results")
		maxMatches = fs.Int("max-matches", 0, "cap on raw matches per pattern (0 = default)")
		csr        = fs.Bool("csr", false, "evaluate on an immutable CSR snapshot of the graph")
		overlay    = fs.Bool("overlay", false, "evaluate on an epoch-snapshot overlay store layered over a CSR snapshot")
		parallel   = fs.Int("parallel", 0, "evaluation workers over seed nodes (<2 = sequential)")
		explain    = fs.Bool("explain", false, "print which engine (dfs/bfs/automaton) evaluates each pattern")
		noAuto     = fs.Bool("no-automaton", false, "disable the pattern-automaton engine (A/B comparison)")
		noBindJoin = fs.Bool("no-bind-join", false, "disable the cost-ordered bind-join planner (A/B comparison)")
		noVec      = fs.Bool("no-vectorize", false, "disable the vectorized batch pipeline (A/B comparison)")
		timeout    = fs.Duration("timeout", 0, "abort evaluation after this duration (streaming cancellation; 0 = none)")
		first      = fs.Int("first", 0, "stream only the first N rows (LIMIT pushdown; 0 = all rows)")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	query := strings.TrimSpace(strings.Join(fs.Args(), " "))
	if query == "" {
		data, err := io.ReadAll(stdin)
		if err != nil {
			fmt.Fprintln(stderr, "gpml:", err)
			return exitError
		}
		query = strings.TrimSpace(string(data))
	}
	if query == "" {
		fmt.Fprintln(stderr, "usage: gpml [-graph file.json] 'MATCH ...'")
		return exitUsage
	}

	g, err := loadGraph(*graphFile)
	if err != nil {
		fmt.Fprintln(stderr, "gpml:", err)
		return exitError
	}

	var opts []gpml.Option
	if *gqlMode {
		opts = append(opts, gpml.GQLMode())
	}
	if *maxMatches > 0 {
		opts = append(opts, gpml.WithLimits(gpml.Limits{MaxMatches: *maxMatches}))
	}
	var evalOpts []gpml.Option
	if *overlay {
		// The serving-engine configuration: queries pin epoch snapshots of
		// the overlay, exactly as a process applying live mutations would.
		evalOpts = append(evalOpts, gpml.WithStore(gpml.NewOverlay(g)))
	} else if *csr {
		evalOpts = append(evalOpts, gpml.WithStore(gpml.Snapshot(g)))
	} else {
		// Explain and evaluation read cardinality statistics off the
		// store; pass the map graph explicitly so both see the same one.
		evalOpts = append(evalOpts, gpml.WithStore(g))
	}
	if *parallel > 1 {
		evalOpts = append(evalOpts, gpml.WithParallelism(*parallel))
	}
	if *noAuto {
		evalOpts = append(evalOpts, gpml.NoAutomaton())
	}
	if *noBindJoin {
		evalOpts = append(evalOpts, gpml.NoBindJoin())
	}
	if *noVec {
		evalOpts = append(evalOpts, gpml.NoVectorize())
	}
	q, err := gpml.Compile(query, opts...)
	if err != nil {
		fmt.Fprintln(stderr, "gpml:", err)
		if d := gpml.Diagnostic(query, err); d != "" {
			fmt.Fprintln(stderr, d)
		}
		return exitError
	}
	if *normalized {
		fmt.Fprintln(stdout, "normalized:", q.Normalized())
	}
	if *explain {
		for _, line := range q.Explain(evalOpts...) {
			fmt.Fprintln(stdout, "explain:", line)
		}
	}
	// Signals cancel the context; the deadline (if any) is layered on
	// top, so the two causes stay distinguishable from the final error.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *first > 0 {
		evalOpts = append(evalOpts, gpml.WithLimit(*first))
	}

	// -first and -timeout run through the streaming pipeline: the limit
	// stops upstream enumeration after N rows, and an expired deadline
	// aborts the in-flight search with an error (partial rows are
	// discarded). Collect restores Eval's canonical row order.
	rows, err := q.Stream(ctx, nil, evalOpts...)
	if err != nil {
		return reportEvalError(stderr, query, *timeout, err)
	}
	res, err := rows.Collect()
	if err != nil {
		return reportEvalError(stderr, query, *timeout, err)
	}

	if *bindings {
		fmt.Fprint(stdout, gpml.FormatBindings(res))
	} else {
		fmt.Fprint(stdout, gpml.FormatResult(res))
	}
	if *first > 0 && len(res.Rows) == *first {
		// The limit bit: more rows may exist beyond the cut.
		fmt.Fprintf(stdout, "(first %d rows)\n", len(res.Rows))
	} else {
		fmt.Fprintf(stdout, "(%d rows)\n", len(res.Rows))
	}
	return exitOK
}

// reportEvalError maps the error that ended evaluation to a message and
// exit code that name the cause instead of surfacing a bare
// context.DeadlineExceeded.
func reportEvalError(stderr io.Writer, query string, timeout interface{ String() string }, err error) int {
	var lim *gpml.LimitError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintf(stderr, "gpml: evaluation timed out after %s (deadline exceeded mid-stream; partial rows discarded)\n", timeout)
		return exitDeadline
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(stderr, "gpml: interrupted (evaluation cancelled before completion)")
		return exitInterrupt
	case errors.As(err, &lim):
		fmt.Fprintf(stderr, "gpml: search limit exhausted: %v (raise -max-matches or tighten the pattern)\n", err)
		return exitLimit
	}
	fmt.Fprintln(stderr, "gpml:", err)
	if d := gpml.Diagnostic(query, err); d != "" {
		fmt.Fprintln(stderr, d)
	}
	return exitError
}

func loadGraph(path string) (*gpml.Graph, error) {
	if path == "" {
		return gpml.Fig1(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadJSON(f)
}
