package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpml/internal/dataset"
)

// runCLI invokes run() as a user would, capturing both streams.
func runCLI(t *testing.T, args []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

// bigGraphFile writes a graph large enough that unbounded TRAIL
// enumeration cannot finish within a short deadline.
func bigGraphFile(t *testing.T) string {
	t.Helper()
	g := dataset.Random(dataset.RandomConfig{
		Accounts: 800, AvgDegree: 4, Cities: 8, Phones: 20,
		BlockedFraction: 0.1, Seed: 7, UndirectedPhones: true,
	})
	path := filepath.Join(t.TempDir(), "big.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSuccess(t *testing.T) {
	code, out, errb := runCLI(t, []string{`MATCH (x:Account WHERE x.isBlocked = 'yes')`}, "")
	if code != exitOK {
		t.Fatalf("exit = %d, want %d; stderr:\n%s", code, exitOK, errb)
	}
	if !strings.Contains(out, "rows)") {
		t.Errorf("stdout missing row count:\n%s", out)
	}
}

func TestRunUsageExitCode(t *testing.T) {
	code, _, _ := runCLI(t, nil, "")
	if code != exitUsage {
		t.Fatalf("exit = %d, want %d", code, exitUsage)
	}
}

// Compile errors exit 1 and point at the offending column with a caret.
func TestRunCompileErrorCaret(t *testing.T) {
	code, _, errb := runCLI(t, []string{`MATCH (a)-[e->(b)`}, "")
	if code != exitError {
		t.Fatalf("exit = %d, want %d", code, exitError)
	}
	if !strings.Contains(errb, "parse error") {
		t.Errorf("stderr missing parse error:\n%s", errb)
	}
	lines := strings.Split(strings.TrimRight(errb, "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("stderr has no caret diagnostic:\n%s", errb)
	}
	src, caret := lines[len(lines)-2], lines[len(lines)-1]
	if !strings.Contains(src, "MATCH (a)-[e->(b)") {
		t.Errorf("diagnostic missing source line:\n%s", errb)
	}
	if !strings.HasSuffix(caret, "^") {
		t.Errorf("diagnostic missing caret line:\n%s", errb)
	}
	// The caret must sit under the position the error reports.
	if line, col, ok := errPosition(errb); !ok {
		t.Errorf("error line carries no position:\n%s", errb)
	} else if line == 1 {
		// caret column: offset within the source line (2-space gutter).
		caretCol := len(caret) - len("^") - len("  ") + 1
		if caretCol != col {
			t.Errorf("caret at col %d, error reports col %d:\n%s", caretCol, col, errb)
		}
	}
}

// errPosition extracts "at L:C" from the first stderr line.
func errPosition(stderr string) (line, col int, ok bool) {
	first := strings.SplitN(stderr, "\n", 2)[0]
	i := strings.Index(first, " at ")
	if i < 0 {
		return 0, 0, false
	}
	var l, c int
	rest := first[i+4:]
	if j := strings.IndexByte(rest, ':'); j > 0 {
		if k := strings.IndexByte(rest[j+1:], ':'); k > 0 {
			_, err1 := parseInt(rest[:j], &l)
			_, err2 := parseInt(rest[j+1:j+1+k], &c)
			if err1 == nil && err2 == nil {
				return l, c, true
			}
		}
	}
	return 0, 0, false
}

func parseInt(s string, out *int) (int, error) {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, errNotDigit
		}
		n = n*10 + int(r-'0')
	}
	*out = n
	return n, nil
}

var errNotDigit = os.ErrInvalid

// -timeout firing mid-stream exits with the dedicated deadline code and
// a message naming the cause, not a bare context.DeadlineExceeded.
func TestRunDeadlineExitCode(t *testing.T) {
	path := bigGraphFile(t)
	code, _, errb := runCLI(t, []string{
		"-graph", path, "-timeout", "30ms",
		`MATCH TRAIL (x:Account)-[t:Transfer]->+(y:Account)`,
	}, "")
	if code != exitDeadline {
		t.Fatalf("exit = %d, want %d; stderr:\n%s", code, exitDeadline, errb)
	}
	if !strings.Contains(errb, "timed out") || strings.Contains(errb, "context deadline exceeded\n") {
		t.Errorf("stderr should name the deadline cause:\n%s", errb)
	}
}

// A search-limit budget trip exits with the limit code, distinct from
// deadline and generic errors.
func TestRunLimitExitCode(t *testing.T) {
	code, _, errb := runCLI(t, []string{
		"-max-matches", "1",
		`MATCH (x:Account)-[t:Transfer]->(y:Account)`,
	}, "")
	if code != exitLimit {
		t.Fatalf("exit = %d, want %d; stderr:\n%s", code, exitLimit, errb)
	}
	if !strings.Contains(errb, "limit") {
		t.Errorf("stderr should mention the limit:\n%s", errb)
	}
}

// Interrupt (context.Canceled reaching the error mapper) exits with the
// interrupt code. The signal path itself is exercised manually; the
// mapping is what the satellite fix pins down.
func TestReportEvalErrorInterrupt(t *testing.T) {
	var errb strings.Builder
	code := reportEvalError(&errb, "MATCH (x)", time.Duration(0), context.Canceled)
	if code != exitInterrupt {
		t.Fatalf("exit = %d, want %d", code, exitInterrupt)
	}
	if !strings.Contains(errb.String(), "interrupted") {
		t.Errorf("stderr should say interrupted:\n%s", errb.String())
	}
}
