// Command gpmld serves GPML queries over HTTP: a network query server
// with prepared statements and a compiled-plan cache in front of the
// streaming evaluator.
//
// Usage:
//
//	gpmld [-addr :7687] [-graph graph.json] [-overlay] [-partitions N]
//	      [-data-dir DIR] [-fsync always|interval|none] [-fsync-interval 50ms]
//	      [-cache 256] [-max-concurrent 8] [-max-queue 0]
//	      [-default-timeout 0] [-max-timeout 0] [-max-rows 0]
//	      [-drain-grace 10s]
//
// Without -graph, the paper's Figure 1 banking graph is served under the
// name "fig1". With -overlay the graph is wrapped in an epoch-snapshot
// overlay store, the live-mutation serving configuration: queries pin
// epoch snapshots while writers apply batches concurrently. With
// -partitions N (N > 1, exclusive with -overlay) the graph is served
// from a hash-partitioned snapshot whose per-partition arenas let
// parallel queries scatter seed ranges across partition-pinned workers.
//
// With -data-dir the overlay is durable: every applied batch is written
// to a write-ahead log under DIR before it becomes visible, compaction
// checkpoints the merged base to DIR and truncates the log prefix it
// covers, and a restart recovers the newest checkpoint plus the
// committed WAL suffix — the server answers 503 "recovering" on /query
// and /healthz until replay completes. -fsync picks the WAL durability
// policy: "always" fsyncs per batch (every acknowledged batch survives
// power loss), "interval" fsyncs on a timer (-fsync-interval, bounding
// loss to that window), "none" leaves syncing to the OS. On a fresh
// data directory the -graph (or Figure 1) graph is imported as the first
// durable batch; on restart the directory's contents win and -graph is
// ignored. -data-dir is exclusive with -partitions and implies -overlay.
//
// Endpoints (see internal/server):
//
//	POST /query    {"query": "MATCH ...", "graph": "fig1", "params": {...},
//	                "gql": false, "timeout_ms": 0, "limit": 0}
//	               → NDJSON: {"columns":...,"cached":...}, {"row":[...]}*,
//	                 then {"rows":N} or {"error":{...}}
//	POST /explain  same body → engine choice, join plan, parameter names
//	GET  /stats    plan-cache hit/miss counters, row/query totals, queue
//	               depth and rejects, WAL/checkpoint/recovery state
//	GET  /healthz  ok, or 503 while recovering or once draining
//
// -max-queue bounds the admission queue: with all -max-concurrent slots
// busy and that many requests already waiting, further ones fast-fail
// 503 with Retry-After instead of stacking until their deadlines.
//
// SIGTERM/SIGINT starts a graceful drain: new queries are rejected,
// in-flight streams run to completion within -drain-grace, then
// remaining streams are cancelled, the listener closes, and (with
// -data-dir) the WAL is synced and closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpml"
	"gpml/internal/gql"
	"gpml/internal/graph"
	"gpml/internal/server"
	"gpml/internal/wal"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":7687", "listen address")
		graphFile  = flag.String("graph", "", "graph JSON file served as \"main\" (default: the paper's Figure 1 graph as \"fig1\")")
		overlay    = flag.Bool("overlay", false, "wrap the graph in an epoch-snapshot overlay store (live-mutation serving)")
		partitions = flag.Int("partitions", 0, "serve a hash-partitioned snapshot with N adjacency shards (N > 1; exclusive with -overlay)")
		dataDir    = flag.String("data-dir", "", "durable overlay data directory: WAL + checkpoints, crash recovery on boot (implies -overlay; exclusive with -partitions)")
		fsyncPol   = flag.String("fsync", "always", "WAL fsync policy: always | interval | none")
		fsyncIvl   = flag.Duration("fsync-interval", 50*time.Millisecond, "fsync period when -fsync=interval")
		cacheSize  = flag.Int("cache", 256, "compiled-plan LRU capacity")
		maxConc    = flag.Int("max-concurrent", 8, "admission cap on concurrently evaluating queries")
		maxQueue   = flag.Int("max-queue", 0, "admission queue bound: waiters beyond this fast-fail 503 (0 = unbounded)")
		defTimeout = flag.Duration("default-timeout", 0, "deadline for requests that set no timeout_ms (0 = none)")
		maxTimeout = flag.Duration("max-timeout", 0, "clamp on request deadlines (0 = none)")
		maxRows    = flag.Int("max-rows", 0, "clamp on request row limits (0 = unlimited)")
		drainGrace = flag.Duration("drain-grace", 10*time.Second, "how long in-flight streams may run after SIGTERM before cancellation")
	)
	flag.Parse()

	name := "fig1"
	var g *gpml.Graph
	if *graphFile == "" {
		g = gpml.Fig1()
	} else {
		name = "main"
		f, err := os.Open(*graphFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpmld:", err)
			return 1
		}
		gg, err := graph.ReadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpmld:", err)
			return 1
		}
		g = gg
	}

	var (
		st  gpml.Store
		dov *graph.Overlay // non-nil in the durable configuration
	)
	switch {
	case *overlay && *partitions > 1:
		fmt.Fprintln(os.Stderr, "gpmld: -overlay and -partitions are exclusive")
		return 1
	case *dataDir != "" && *partitions > 1:
		fmt.Fprintln(os.Stderr, "gpmld: -data-dir and -partitions are exclusive")
		return 1
	case *dataDir != "":
		// Durable overlay, phase one: load the newest checkpoint and come
		// up read-only. WAL replay runs after the listener is up so health
		// checks answer (503 "recovering") during a long replay.
		pol, err := wal.ParseSyncPolicy(*fsyncPol)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpmld:", err)
			return 1
		}
		dov, err = graph.OpenDurable(graph.DurableOptions{
			Dir:       *dataDir,
			Fsync:     pol,
			SyncEvery: *fsyncIvl,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpmld:", err)
			return 1
		}
		st = dov
	case *overlay:
		st = gpml.NewOverlay(g)
	case *partitions > 1:
		// Hash-partitioned snapshot: immutable like a CSR, with
		// per-partition arenas that parallel queries scatter over.
		st = gpml.NewPartitioned(g, gpml.WithPartitions(*partitions))
	default:
		// Immutable CSR snapshot: safe for any number of concurrent
		// readers, and the fastest read path.
		st = gpml.Snapshot(g)
	}
	catalog := gql.NewCatalog()
	if err := catalog.Register(name, st); err != nil {
		fmt.Fprintln(os.Stderr, "gpmld:", err)
		return 1
	}

	cfg := server.Config{
		Catalog:        catalog,
		DefaultGraph:   name,
		CacheSize:      *cacheSize,
		MaxConcurrent:  *maxConc,
		MaxQueueDepth:  *maxQueue,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		MaxRows:        *maxRows,
	}
	if dov != nil {
		cfg.StartRecovering = true
		cfg.Durability = dov
	}
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpmld:", err)
		return 1
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "gpmld: serving graph %q on %s (store: %T, cache: %d, concurrency: %d)\n",
		name, *addr, st, *cacheSize, *maxConc)

	if dov != nil {
		// Phase two: replay the committed WAL suffix, seed a fresh
		// directory with the boot graph, then open for queries.
		rec, err := dov.Recover()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpmld: recovery:", err)
			return 1
		}
		if rec.CheckpointBatch == 0 && rec.ReplayedBatches == 0 && st.NumNodes() == 0 {
			if err := dov.Apply(importBatch(dov, g)); err != nil {
				fmt.Fprintln(os.Stderr, "gpmld: import:", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "gpmld: fresh data dir, imported %d nodes / %d edges as batch 1\n",
				g.NumNodes(), g.NumEdges())
		} else {
			fmt.Fprintf(os.Stderr, "gpmld: recovered checkpoint@%d +%d WAL batches (torn tail: %d bytes)\n",
				rec.CheckpointBatch, rec.ReplayedBatches, rec.WALTornBytes)
		}
		srv.SetReady()
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "gpmld:", err)
		return 1
	case <-sigCtx.Done():
	}

	// Two-phase drain: stop admitting, let streams finish within the
	// grace period, then cancel whatever is still running.
	fmt.Fprintln(os.Stderr, "gpmld: draining")
	srv.Drain()
	shCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		fmt.Fprintln(os.Stderr, "gpmld: drain grace expired, cancelling in-flight queries")
		srv.Abort()
		killCtx, kcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer kcancel()
		if err := httpSrv.Shutdown(killCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			httpSrv.Close()
		}
	}
	if dov != nil {
		// Sync and close the WAL so a clean stop leaves nothing for the
		// next boot to repair.
		if err := dov.CloseDurable(); err != nil {
			fmt.Fprintln(os.Stderr, "gpmld: wal close:", err)
			return 1
		}
	}
	fmt.Fprintln(os.Stderr, "gpmld: stopped")
	return 0
}

// importBatch turns the boot graph into the durable store's first batch:
// every node, then every edge, in the graph's insertion order.
func importBatch(ov *graph.Overlay, g *gpml.Graph) *graph.Batch {
	b := ov.Begin()
	g.Nodes(func(n *graph.Node) bool {
		b.AddNode(n.ID, n.Labels, n.Props)
		return true
	})
	g.Edges(func(e *graph.Edge) bool {
		if e.Direction == graph.Directed {
			b.AddEdge(e.ID, e.Source, e.Target, e.Labels, e.Props)
		} else {
			b.AddUndirectedEdge(e.ID, e.Source, e.Target, e.Labels, e.Props)
		}
		return true
	})
	return b
}
