// Command gpmld serves GPML queries over HTTP: a network query server
// with prepared statements and a compiled-plan cache in front of the
// streaming evaluator.
//
// Usage:
//
//	gpmld [-addr :7687] [-graph graph.json] [-overlay] [-partitions N]
//	      [-cache 256] [-max-concurrent 8] [-default-timeout 0]
//	      [-max-timeout 0] [-max-rows 0] [-drain-grace 10s]
//
// Without -graph, the paper's Figure 1 banking graph is served under the
// name "fig1". With -overlay the graph is wrapped in an epoch-snapshot
// overlay store, the live-mutation serving configuration: queries pin
// epoch snapshots while writers apply batches concurrently. With
// -partitions N (N > 1, exclusive with -overlay) the graph is served
// from a hash-partitioned snapshot whose per-partition arenas let
// parallel queries scatter seed ranges across partition-pinned workers.
//
// Endpoints (see internal/server):
//
//	POST /query    {"query": "MATCH ...", "graph": "fig1", "params": {...},
//	                "gql": false, "timeout_ms": 0, "limit": 0}
//	               → NDJSON: {"columns":...,"cached":...}, {"row":[...]}*,
//	                 then {"rows":N} or {"error":{...}}
//	POST /explain  same body → engine choice, join plan, parameter names
//	GET  /stats    plan-cache hit/miss counters, row/query totals
//	GET  /healthz  ok, or 503 once draining
//
// SIGTERM/SIGINT starts a graceful drain: new queries are rejected,
// in-flight streams run to completion within -drain-grace, then
// remaining streams are cancelled and the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpml"
	"gpml/internal/gql"
	"gpml/internal/graph"
	"gpml/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":7687", "listen address")
		graphFile  = flag.String("graph", "", "graph JSON file served as \"main\" (default: the paper's Figure 1 graph as \"fig1\")")
		overlay    = flag.Bool("overlay", false, "wrap the graph in an epoch-snapshot overlay store (live-mutation serving)")
		partitions = flag.Int("partitions", 0, "serve a hash-partitioned snapshot with N adjacency shards (N > 1; exclusive with -overlay)")
		cacheSize  = flag.Int("cache", 256, "compiled-plan LRU capacity")
		maxConc    = flag.Int("max-concurrent", 8, "admission cap on concurrently evaluating queries")
		defTimeout = flag.Duration("default-timeout", 0, "deadline for requests that set no timeout_ms (0 = none)")
		maxTimeout = flag.Duration("max-timeout", 0, "clamp on request deadlines (0 = none)")
		maxRows    = flag.Int("max-rows", 0, "clamp on request row limits (0 = unlimited)")
		drainGrace = flag.Duration("drain-grace", 10*time.Second, "how long in-flight streams may run after SIGTERM before cancellation")
	)
	flag.Parse()

	name := "fig1"
	var g *gpml.Graph
	if *graphFile == "" {
		g = gpml.Fig1()
	} else {
		name = "main"
		f, err := os.Open(*graphFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpmld:", err)
			return 1
		}
		gg, err := graph.ReadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpmld:", err)
			return 1
		}
		g = gg
	}

	var st gpml.Store
	switch {
	case *overlay && *partitions > 1:
		fmt.Fprintln(os.Stderr, "gpmld: -overlay and -partitions are exclusive")
		return 1
	case *overlay:
		st = gpml.NewOverlay(g)
	case *partitions > 1:
		// Hash-partitioned snapshot: immutable like a CSR, with
		// per-partition arenas that parallel queries scatter over.
		st = gpml.NewPartitioned(g, gpml.WithPartitions(*partitions))
	default:
		// Immutable CSR snapshot: safe for any number of concurrent
		// readers, and the fastest read path.
		st = gpml.Snapshot(g)
	}
	catalog := gql.NewCatalog()
	if err := catalog.Register(name, st); err != nil {
		fmt.Fprintln(os.Stderr, "gpmld:", err)
		return 1
	}

	srv, err := server.New(server.Config{
		Catalog:        catalog,
		DefaultGraph:   name,
		CacheSize:      *cacheSize,
		MaxConcurrent:  *maxConc,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		MaxRows:        *maxRows,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpmld:", err)
		return 1
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "gpmld: serving graph %q on %s (store: %T, cache: %d, concurrency: %d)\n",
		name, *addr, st, *cacheSize, *maxConc)

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "gpmld:", err)
		return 1
	case <-sigCtx.Done():
	}

	// Two-phase drain: stop admitting, let streams finish within the
	// grace period, then cancel whatever is still running.
	fmt.Fprintln(os.Stderr, "gpmld: draining")
	srv.Drain()
	shCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		fmt.Fprintln(os.Stderr, "gpmld: drain grace expired, cancelling in-flight queries")
		srv.Abort()
		killCtx, kcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer kcancel()
		if err := httpSrv.Shutdown(killCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			httpSrv.Close()
		}
	}
	fmt.Fprintln(os.Stderr, "gpmld: stopped")
	return 0
}
