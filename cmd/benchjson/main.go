// Command benchjson converts `go test -bench` output into the repository's
// BENCH_*.json tracking format and compares two such files for
// regressions. CI runs it after the bench job to publish the current
// numbers as an artifact and to gate pull requests against the main
// baseline.
//
// Usage:
//
//	go test -bench=. -benchtime=3x -count=5 ./... | benchjson -out BENCH_2.json
//	benchjson -compare -threshold 1.20 -tier1 'BenchmarkBFSAllShortest|...' base.json head.json
//
// The JSON format is one object with an "env" block (goos/goarch/cpu as
// reported by the bench run) and a "benchmarks" array; each entry carries
// the sample count and the mean/min/max ns per op over all -count
// repetitions, plus mean B/op and allocs/op when the bench reports them.
// Comparison matches benchmarks by name, reports the head/base ratio of
// mean ns/op, and exits nonzero when any bench matching the -tier1
// pattern regresses beyond the threshold.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Summary is one benchmark's aggregate over all repetitions. MemSamples
// counts the repetitions that reported -benchmem metrics: it
// distinguishes a genuinely zero-allocation bench (MemSamples > 0,
// AllocsPerOp == 0) from one measured without -benchmem, which the
// allocation gate must treat differently.
type Summary struct {
	Name        string  `json:"name"`
	Samples     int     `json:"samples"`
	NsPerOpMean float64 `json:"ns_per_op_mean"`
	NsPerOpMin  float64 `json:"ns_per_op_min"`
	NsPerOpMax  float64 `json:"ns_per_op_max"`
	MemSamples  int     `json:"mem_samples,omitempty"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// File is the on-disk BENCH_*.json shape.
type File struct {
	Schema     string            `json:"schema"`
	Env        map[string]string `json:"env"`
	Benchmarks []Summary         `json:"benchmarks"`
}

func main() {
	var (
		in        = flag.String("in", "", "bench output file (default: stdin)")
		out       = flag.String("out", "", "JSON output file (default: stdout)")
		compare   = flag.Bool("compare", false, "compare two BENCH_*.json files: benchjson -compare base.json head.json")
		threshold = flag.Float64("threshold", 1.20, "max allowed head/base ns-per-op ratio on tier-1 benches")
		allocThr  = flag.Float64("alloc-threshold", 1.20, "max allowed head/base allocs-per-op ratio on tier-1 benches (0 disables; requires -benchmem data on both sides)")
		tier1     = flag.String("tier1", ".*", "regexp selecting the benches the threshold gates")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("usage: benchjson -compare base.json head.json"))
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *threshold, *allocThr, *tier1); err != nil {
			fatal(err)
		}
		return
	}

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	file, err := parseBench(r)
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(file.Benchmarks), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// benchLine matches one result line of `go test -bench` output, e.g.
// "BenchmarkFoo/sub-8   	 3	 123456 ns/op	 456 B/op	 7 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// metricRe matches trailing "<value> <unit>" pairs such as B/op, allocs/op.
var metricRe = regexp.MustCompile(`([\d.]+) (B/op|allocs/op)`)

// sample is one repetition's measurements.
type sample struct {
	ns     float64
	b      float64
	allocs float64
	hasMem bool
}

// parseBench reads `go test -bench` output, aggregating repetitions of the
// same benchmark name (from -count=N) into one summary each.
func parseBench(r io.Reader) (*File, error) {
	env := map[string]string{}
	samples := map[string][]sample{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		for _, key := range []string{"goos", "goarch", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				env[key] = v
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %v", line, err)
		}
		s := sample{ns: ns}
		for _, mm := range metricRe.FindAllStringSubmatch(m[4], -1) {
			v, _ := strconv.ParseFloat(mm[1], 64)
			switch mm[2] {
			case "B/op":
				s.b, s.hasMem = v, true
			case "allocs/op":
				s.allocs, s.hasMem = v, true
			}
		}
		if _, seen := samples[name]; !seen {
			order = append(order, name)
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("no benchmark results found in input")
	}
	file := &File{Schema: "gpml-bench/v1", Env: env}
	for _, name := range order {
		ss := samples[name]
		sum := Summary{Name: name, Samples: len(ss), NsPerOpMin: ss[0].ns, NsPerOpMax: ss[0].ns}
		var nsTotal, bTotal, aTotal float64
		mem := 0
		for _, s := range ss {
			nsTotal += s.ns
			if s.ns < sum.NsPerOpMin {
				sum.NsPerOpMin = s.ns
			}
			if s.ns > sum.NsPerOpMax {
				sum.NsPerOpMax = s.ns
			}
			if s.hasMem {
				bTotal += s.b
				aTotal += s.allocs
				mem++
			}
		}
		sum.NsPerOpMean = nsTotal / float64(len(ss))
		if mem > 0 {
			sum.MemSamples = mem
			sum.BPerOp = bTotal / float64(mem)
			sum.AllocsPerOp = aTotal / float64(mem)
		}
		file.Benchmarks = append(file.Benchmarks, sum)
	}
	return file, nil
}

// runCompare prints a base-vs-head table and fails on tier-1 regressions
// beyond the thresholds: time (min ns/op, damping scheduler noise on
// shared CI runners) and, when both sides carry -benchmem data,
// allocations (mean allocs/op — deterministic, so no min needed).
func runCompare(basePath, headPath string, threshold, allocThr float64, tier1 string) error {
	tier1Re, err := regexp.Compile(tier1)
	if err != nil {
		return fmt.Errorf("bad -tier1 pattern: %v", err)
	}
	base, err := load(basePath)
	if err != nil {
		return err
	}
	head, err := load(headPath)
	if err != nil {
		return err
	}
	baseBy := map[string]Summary{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var regressions []string
	fmt.Printf("%-55s %14s %14s %8s %10s %s\n", "benchmark", "base ns/op", "head ns/op", "ratio", "allocs", "gate")
	names := make([]string, 0, len(head.Benchmarks))
	for _, h := range head.Benchmarks {
		names = append(names, h.Name)
	}
	sort.Strings(names)
	headBy := map[string]Summary{}
	for _, h := range head.Benchmarks {
		headBy[h.Name] = h
	}
	for _, name := range names {
		h := headBy[name]
		b, ok := baseBy[name]
		if !ok {
			fmt.Printf("%-55s %14s %14.0f %8s %10s %s\n", name, "-", h.NsPerOpMin, "-", "-", "new")
			continue
		}
		ratio := h.NsPerOpMin / b.NsPerOpMin
		// The alloc gate needs -benchmem data on both sides. A zero-alloc
		// baseline growing any allocations is an unbounded-ratio
		// regression — exactly the class the gate exists to catch.
		haveAllocs := b.MemSamples > 0 && h.MemSamples > 0
		allocRatio := 0.0
		allocCol := "-"
		allocRegressed := false
		if haveAllocs {
			switch {
			case b.AllocsPerOp > 0:
				allocRatio = h.AllocsPerOp / b.AllocsPerOp
				allocCol = fmt.Sprintf("%.2fx", allocRatio)
				allocRegressed = allocRatio > allocThr
			case h.AllocsPerOp > 0:
				allocCol = "0->alloc"
				allocRegressed = true
			default:
				allocCol = "0x"
			}
		}
		gate := ""
		if tier1Re.MatchString(name) {
			gate = "tier-1"
			if ratio > threshold {
				gate = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s: %.2fx ns/op (threshold %.2fx)", name, ratio, threshold))
			}
			if allocThr > 0 && allocRegressed {
				gate = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s: %.0f -> %.0f allocs/op (threshold %.2fx)", name, b.AllocsPerOp, h.AllocsPerOp, allocThr))
			}
		}
		fmt.Printf("%-55s %14.0f %14.0f %7.2fx %10s %s\n", name, b.NsPerOpMin, h.NsPerOpMin, ratio, allocCol, gate)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("tier-1 regressions:\n  %s", strings.Join(regressions, "\n  "))
	}
	return nil
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &f, nil
}
