package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: gpml/internal/eval
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBFSAllShortest-8         	       3	 100000000 ns/op
BenchmarkBFSAllShortest-8         	       3	 120000000 ns/op
BenchmarkAblation_BFSPruning/bfs_pruned-8   	       3	   1400000 ns/op	  500 B/op	      10 allocs/op
BenchmarkAblation_BFSPruning/bfs_pruned-8   	       3	   1600000 ns/op	  700 B/op	      12 allocs/op
PASS
ok  	gpml/internal/eval	1.2s
`

func TestParseBench(t *testing.T) {
	f, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if f.Env["goos"] != "linux" || f.Env["cpu"] == "" {
		t.Errorf("env: %v", f.Env)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("benchmarks: %d, want 2", len(f.Benchmarks))
	}
	b := f.Benchmarks[0]
	if b.Name != "BenchmarkBFSAllShortest" || b.Samples != 2 {
		t.Errorf("first bench: %+v", b)
	}
	if b.NsPerOpMean != 110000000 || b.NsPerOpMin != 100000000 || b.NsPerOpMax != 120000000 {
		t.Errorf("aggregation: %+v", b)
	}
	sub := f.Benchmarks[1]
	if sub.Name != "BenchmarkAblation_BFSPruning/bfs_pruned" {
		t.Errorf("sub-bench name: %q", sub.Name)
	}
	if sub.BPerOp != 600 || sub.AllocsPerOp != 11 {
		t.Errorf("memory metrics: %+v", sub)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\n")); err == nil {
		t.Error("expected an error on input without benchmarks")
	}
}

// writeBench serializes a File to a temp path for compare tests.
func writeBench(t *testing.T, name string, benches []Summary) string {
	t.Helper()
	path := t.TempDir() + "/" + name
	data, err := json.Marshal(&File{Schema: "gpml-bench/v1", Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareAllocGate: a >20% allocs/op increase fails the comparison
// even when ns/op is within threshold; disabling the alloc gate (0) or
// missing -benchmem data on either side passes it.
func TestCompareAllocGate(t *testing.T) {
	base := writeBench(t, "base.json", []Summary{
		{Name: "BenchmarkX", NsPerOpMin: 100, NsPerOpMean: 100, MemSamples: 5, AllocsPerOp: 100},
	})
	headBad := writeBench(t, "head-bad.json", []Summary{
		{Name: "BenchmarkX", NsPerOpMin: 101, NsPerOpMean: 101, MemSamples: 5, AllocsPerOp: 130},
	})
	if err := runCompare(base, headBad, 1.20, 1.20, "BenchmarkX"); err == nil {
		t.Error("30% alloc regression must fail the gate")
	}
	if err := runCompare(base, headBad, 1.20, 0, "BenchmarkX"); err != nil {
		t.Errorf("alloc gate disabled: %v", err)
	}
	headOK := writeBench(t, "head-ok.json", []Summary{
		{Name: "BenchmarkX", NsPerOpMin: 101, NsPerOpMean: 101, MemSamples: 5, AllocsPerOp: 110},
	})
	if err := runCompare(base, headOK, 1.20, 1.20, "BenchmarkX"); err != nil {
		t.Errorf("10%% alloc growth is within threshold: %v", err)
	}
	noMem := writeBench(t, "head-nomem.json", []Summary{
		{Name: "BenchmarkX", NsPerOpMin: 101, NsPerOpMean: 101},
	})
	if err := runCompare(base, noMem, 1.20, 1.20, "BenchmarkX"); err != nil {
		t.Errorf("missing -benchmem data must not trip the alloc gate: %v", err)
	}
}

// TestCompareAllocGateFromZero: a zero-allocation baseline that grows any
// allocations is a regression (the ratio is unbounded); two zero-alloc
// sides pass.
func TestCompareAllocGateFromZero(t *testing.T) {
	base := writeBench(t, "base.json", []Summary{
		{Name: "BenchmarkX", NsPerOpMin: 100, NsPerOpMean: 100, MemSamples: 5, AllocsPerOp: 0},
	})
	grew := writeBench(t, "head-grew.json", []Summary{
		{Name: "BenchmarkX", NsPerOpMin: 100, NsPerOpMean: 100, MemSamples: 5, AllocsPerOp: 3},
	})
	if err := runCompare(base, grew, 1.20, 1.20, "BenchmarkX"); err == nil {
		t.Error("0 -> 3 allocs/op must fail the gate")
	}
	stillZero := writeBench(t, "head-zero.json", []Summary{
		{Name: "BenchmarkX", NsPerOpMin: 100, NsPerOpMean: 100, MemSamples: 5, AllocsPerOp: 0},
	})
	if err := runCompare(base, stillZero, 1.20, 1.20, "BenchmarkX"); err != nil {
		t.Errorf("0 -> 0 allocs/op must pass: %v", err)
	}
}

// TestCompareReportsSubBenchKey: a regression in one scale-factor/
// partition sub-benchmark is reported under its full /sf=…/parts=… key —
// pinpointing which configuration regressed — and in-threshold siblings
// are not blamed.
func TestCompareReportsSubBenchKey(t *testing.T) {
	base := writeBench(t, "base.json", []Summary{
		{Name: "BenchmarkScaleEnumerate/sf=0.1/parts=1", NsPerOpMin: 100, NsPerOpMean: 100},
		{Name: "BenchmarkScaleEnumerate/sf=1/parts=4", NsPerOpMin: 100, NsPerOpMean: 100},
	})
	head := writeBench(t, "head.json", []Summary{
		{Name: "BenchmarkScaleEnumerate/sf=0.1/parts=1", NsPerOpMin: 105, NsPerOpMean: 105},
		{Name: "BenchmarkScaleEnumerate/sf=1/parts=4", NsPerOpMin: 200, NsPerOpMean: 200},
	})
	err := runCompare(base, head, 1.20, 0, "BenchmarkScaleEnumerate/")
	if err == nil {
		t.Fatal("2x regression in sf=1/parts=4 must fail the gate")
	}
	msg := err.Error()
	if !strings.Contains(msg, "BenchmarkScaleEnumerate/sf=1/parts=4: 2.00x ns/op") {
		t.Errorf("failure message %q lacks the full sub-benchmark key", msg)
	}
	if strings.Contains(msg, "sf=0.1") {
		t.Errorf("failure message %q blames the in-threshold sf=0.1 sibling", msg)
	}
}

// TestParseKeepsSubBenchKeys: the parser strips only the GOMAXPROCS
// suffix, preserving /sf=…/parts=… sub-benchmark paths in Name so
// -compare can gate each configuration individually.
func TestParseKeepsSubBenchKeys(t *testing.T) {
	out := "BenchmarkScaleEnumerate/sf=0.1/parts=8-16   3   1200000 ns/op\n"
	f, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].Name != "BenchmarkScaleEnumerate/sf=0.1/parts=8" {
		t.Fatalf("parsed %+v, want the full sub-bench key with only -16 stripped", f.Benchmarks)
	}
}
