package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: gpml/internal/eval
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBFSAllShortest-8         	       3	 100000000 ns/op
BenchmarkBFSAllShortest-8         	       3	 120000000 ns/op
BenchmarkAblation_BFSPruning/bfs_pruned-8   	       3	   1400000 ns/op	  500 B/op	      10 allocs/op
BenchmarkAblation_BFSPruning/bfs_pruned-8   	       3	   1600000 ns/op	  700 B/op	      12 allocs/op
PASS
ok  	gpml/internal/eval	1.2s
`

func TestParseBench(t *testing.T) {
	f, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if f.Env["goos"] != "linux" || f.Env["cpu"] == "" {
		t.Errorf("env: %v", f.Env)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("benchmarks: %d, want 2", len(f.Benchmarks))
	}
	b := f.Benchmarks[0]
	if b.Name != "BenchmarkBFSAllShortest" || b.Samples != 2 {
		t.Errorf("first bench: %+v", b)
	}
	if b.NsPerOpMean != 110000000 || b.NsPerOpMin != 100000000 || b.NsPerOpMax != 120000000 {
		t.Errorf("aggregation: %+v", b)
	}
	sub := f.Benchmarks[1]
	if sub.Name != "BenchmarkAblation_BFSPruning/bfs_pruned" {
		t.Errorf("sub-bench name: %q", sub.Name)
	}
	if sub.BPerOp != 600 || sub.AllocsPerOp != 11 {
		t.Errorf("memory metrics: %+v", sub)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\n")); err == nil {
		t.Error("expected an error on input without benchmarks")
	}
}
