// Command benchgen regenerates the paper's figures, tables and worked
// examples on the implemented engine and prints a paper-vs-measured report
// (the source of EXPERIMENTS.md). Each experiment corresponds to a row of
// the DESIGN.md per-experiment index.
//
// Usage:
//
//	benchgen            # run all experiments, print the markdown report
//	benchgen -timeline  # print the Figure 10 standards timeline data
//	benchgen -snb 0.1   # generate the LDBC-SNB-flavored graph at the
//	                    # given scale factor (-snb-seed N) and print its
//	                    # shape: per-label cardinalities and the knows
//	                    # degree distribution
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"gpml"
	"gpml/internal/baseline"
	"gpml/internal/binding"
	"gpml/internal/dataset"
	"gpml/internal/eval"
	"gpml/internal/graph"
	"gpml/internal/normalize"
	"gpml/internal/parser"
	"gpml/internal/plan"
)

func main() {
	timeline := flag.Bool("timeline", false, "print the Figure 10 timeline")
	snbSF := flag.Float64("snb", 0, "generate the SNB-flavored graph at this scale factor and print its shape")
	snbSeed := flag.Int64("snb-seed", 42, "seed for -snb generation")
	flag.Parse()
	if *timeline {
		printTimeline()
		return
	}
	if *snbSF > 0 {
		printSNB(*snbSF, *snbSeed)
		return
	}
	fail := 0
	fmt.Println("| Exp | Artifact | Paper expectation | Measured | Match |")
	fmt.Println("|-----|----------|-------------------|----------|-------|")
	for _, e := range experiments() {
		measured, ok := e.run()
		mark := "✓"
		if !ok {
			mark = "✗"
			fail++
		}
		fmt.Printf("| %s | %s | %s | %s | %s |\n", e.id, e.artifact, e.expect, measured, mark)
	}
	if fail > 0 {
		fmt.Fprintf(os.Stderr, "benchgen: %d experiments diverged\n", fail)
		os.Exit(1)
	}
}

type experiment struct {
	id       string
	artifact string
	expect   string
	run      func() (string, bool)
}

// mustRows runs a query on Fig 1 and returns its row count.
func mustRows(src string) int {
	res, err := gpml.Match(gpml.Fig1(), src)
	if err != nil {
		panic(err)
	}
	return len(res.Rows)
}

// paths runs a query binding path variable p and returns sorted path
// strings.
func paths(src string) []string {
	res, err := gpml.Match(gpml.Fig1(), src)
	if err != nil {
		panic(err)
	}
	var out []string
	for _, row := range res.Rows {
		b, _ := row.Get("p")
		out = append(out, b.Path.String())
	}
	sort.Strings(out)
	return out
}

func experiments() []experiment {
	return []experiment{
		{"E1", "Figure 1 graph", "14 nodes, 22 edges", func() (string, bool) {
			g := dataset.Fig1()
			got := fmt.Sprintf("%d nodes, %d edges", g.NumNodes(), g.NumEdges())
			return got, got == "14 nodes, 22 edges"
		}},
		{"E2", "Figure 2 tabular export", "9 relations incl. CityCountry", func() (string, bool) {
			tables := gpml.Tabular(gpml.Fig1())
			names := make([]string, len(tables))
			for i, t := range tables {
				names[i] = t.Name
			}
			got := fmt.Sprintf("%d relations (%s)", len(tables), strings.Join(names, ", "))
			hasCC := false
			for _, n := range names {
				if n == "CityCountry" {
					hasCC = true
				}
			}
			return got, len(tables) == 9 && hasCC
		}},
		{"E3a", "Fig 3(a) node pattern", "1 blocked account (a4)", func() (string, bool) {
			n := mustRows(`MATCH (x:Account WHERE x.isBlocked='yes')`)
			return fmt.Sprintf("%d rows", n), n == 1
		}},
		{"E3b", "Fig 3(b) edge pattern", "transfer dated 3/1/2020 into a non-blocked→blocked pair: 1", func() (string, bool) {
			n := mustRows(`MATCH (x:Account WHERE x.isBlocked='no')-[e:Transfer WHERE e.date='3/1/2020']->(y:Account WHERE y.isBlocked='yes')`)
			return fmt.Sprintf("%d rows", n), n == 1
		}},
		{"E3c", "Fig 4 fraud pattern", "owner pairs (Aretha,Jay) and (Dave,Jay)", func() (string, bool) {
			res, err := gpml.Match(gpml.Fig1(), `
				MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->
				      (g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-
				      (y:Account WHERE y.isBlocked='yes'),
				      TRAIL (x)-[:Transfer]->+(y)`)
			if err != nil {
				panic(err)
			}
			pairs := map[string]bool{}
			for _, row := range res.Rows {
				x, _ := row.Get("x")
				y, _ := row.Get("y")
				pairs[fmt.Sprintf("%s→%s", x.Node, y.Node)] = true
			}
			keys := make([]string, 0, len(pairs))
			for k := range pairs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			got := strings.Join(keys, ", ")
			return got, got == "a2→a4, a6→a4"
		}},
		{"E4a", "§4.2 same-phone transfers", "2 bindings: (p1,a5,t8,a1), (p2,a3,t2,a2)", func() (string, bool) {
			n := mustRows(`MATCH (p:Phone)~[:hasPhone]~(s:Account)-[t:Transfer]->(d:Account)~[:hasPhone]~(p)`)
			return fmt.Sprintf("%d bindings", n), n == 2
		}},
		{"E4b", "§4.2 triangles", "the a1-a3-a5 transfer cycle, 3 rotations", func() (string, bool) {
			n := mustRows(`MATCH (s)-[:Transfer]->(s1)-[:Transfer]->(s2)-[:Transfer]->(s)`)
			return fmt.Sprintf("%d rows", n), n == 3
		}},
		{"E5", "Fig 5 edge orientations", "16 directed, 12 undirected traversals, 44 total with '-'", func() (string, bool) {
			r := mustRows(`MATCH (x)-[e]->(y)`)
			u := mustRows(`MATCH (x)~[e]~(y)`)
			a := mustRows(`MATCH (x)-[e]-(y)`)
			got := fmt.Sprintf("%d/%d/%d", r, u, a)
			return got, r == 16 && u == 12 && a == 44
		}},
		{"E6", "Fig 6 quantifiers + SUM postfilter", "chains {2,5} of >1M transfers with SUM>10M", func() (string, bool) {
			n := mustRows(`
				MATCH (a:Account) [()-[t:Transfer]->() WHERE t.amount>1M]{2,5} (b:Account)
				WHERE SUM(t.amount)>10M`)
			return fmt.Sprintf("%d rows", n), n > 0
		}},
		{"E7", "§4.5 union vs multiset", "| gives 2 rows; |+| gives 3", func() (string, bool) {
			u := mustRows(`MATCH (c:City) | (c:Country)`)
			m := mustRows(`MATCH (c:City) |+| (c:Country)`)
			return fmt.Sprintf("%d and %d", u, m), u == 2 && m == 3
		}},
		{"E8", "§4.6 conditional singletons", "illegal equi-join rejected; ? query returns y=a4 twice", func() (string, bool) {
			_, err := gpml.Compile(`MATCH [(x)->(y)] | [(x)->(z)], (y)->(w)`)
			n := mustRows(`
				MATCH (x:Account)-[:Transfer]->(y:Account) [~[:hasPhone]~(pp)]?
				WHERE y.isBlocked='yes' OR pp.isBlocked='yes'`)
			return fmt.Sprintf("rejected=%v, %d rows", err != nil, n), err != nil && n == 2
		}},
		{"E9", "§4.7 graphical predicates", "IS DIRECTED splits 32/12; SAME finds 3 triangles", func() (string, bool) {
			d := mustRows(`MATCH (x)-[e]-(y) WHERE e IS DIRECTED`)
			u := mustRows(`MATCH (x)-[e]-(y) WHERE NOT e IS DIRECTED`)
			s := mustRows(`MATCH (s)-[:Transfer]->()-[:Transfer]->()-[:Transfer]->(s3) WHERE SAME(s, s3)`)
			return fmt.Sprintf("%d/%d, %d", d, u, s), d == 32 && u == 12 && s == 3
		}},
		{"E10", "Fig 7 + §5.1 restrictors", "TRAIL Dave→Aretha = 3 paths; ACYCLIC = 2", func() (string, bool) {
			tr := paths(`MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*(b WHERE b.owner='Aretha')`)
			ac := paths(`MATCH ACYCLIC p = (a WHERE a.owner='Dave')-[t:Transfer]->*(b WHERE b.owner='Aretha')`)
			return fmt.Sprintf("%d and %d", len(tr), len(ac)), len(tr) == 3 && len(ac) == 2
		}},
		{"E11", "Fig 8 + §5.1 selectors", "ANY SHORTEST = path(a6,t5,a3,t2,a2); ALL SHORTEST TRAIL a6→a2→a3 = 2", func() (string, bool) {
			anyP := paths(`MATCH ANY SHORTEST p = (a WHERE a.owner='Dave')-[t:Transfer]->*(b WHERE b.owner='Aretha')`)
			all := paths(`MATCH ALL SHORTEST TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*(b WHERE b.owner='Aretha')-[r:Transfer]->*(c WHERE c.owner='Mike')`)
			ok := len(anyP) == 1 && anyP[0] == "path(a6,t5,a3,t2,a2)" && len(all) == 2
			return fmt.Sprintf("%v; %d paths", anyP, len(all)), ok
		}},
		{"E12", "§5.2 prefilter vs postfilter", "prefilter: 1 path via a4; postfilter: empty (see note on t6)", func() (string, bool) {
			pre := paths(`MATCH ALL SHORTEST p = (x WHERE x.owner='Scott')-[e1:Transfer]->+(q:Account WHERE q.isBlocked='yes')-[e2:Transfer]->+(r:Account WHERE r.owner='Charles')`)
			post := mustRows(`
				MATCH ALL SHORTEST p = (x WHERE x.owner='Scott')-[e1:Transfer]->+(q:Account)-[e2:Transfer]->+(r:Account WHERE r.owner='Charles')
				WHERE q.isBlocked='yes'`)
			ok := len(pre) == 1 && pre[0] == "path(a1,t1,a3,t2,a2,t3,a4,t4,a6,t6,a5)" && post == 0
			return fmt.Sprintf("%v; %d postfiltered", pre, post), ok
		}},
		{"E13", "§5.3 unbounded aggregates", "prefilter form rejected; postfilter and TRAIL forms empty", func() (string, bool) {
			_, err := gpml.Compile(`MATCH ALL SHORTEST [(x)-[e]->*(y) WHERE COUNT(e.*)/(COUNT(e.*)+1)>1]`)
			post := mustRows(`MATCH ALL SHORTEST (x)-[e]->*(y) WHERE COUNT(e.*)/(COUNT(e.*)+1) > 1`)
			trail := mustRows(`MATCH ALL SHORTEST [TRAIL (x)-[e]->*(y) WHERE COUNT(e.*)/(COUNT(e.*)+1) > 1]`)
			return fmt.Sprintf("rejected=%v, %d, %d", err != nil, post, trail), err != nil && post == 0 && trail == 0
		}},
		{"E14", "§6 running example", "2 reduced bindings (TRAIL); 1 (ALL SHORTEST); 4 (|+|)", func() (string, bool) {
			const base = `(a WHERE a.owner='Jay') [-[b:Transfer WHERE b.amount>5M]->]+ (a)`
			tr := mustRows(`MATCH TRAIL ` + base + ` [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]`)
			sh := mustRows(`MATCH ALL SHORTEST ` + base + ` [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]`)
			ms := mustRows(`MATCH TRAIL ` + base + ` [-[:isLocatedIn]->(c:City) |+| -[:isLocatedIn]->(c:Country)]`)
			got := fmt.Sprintf("%d/%d/%d", tr, sh, ms)
			return got, tr == 2 && sh == 1 && ms == 4
		}},
		{"E15", "Figure 9 host outputs", "same pattern: PGQ table and GQL graph view", func() (string, bool) {
			cols, err := gpml.ParseColumns("x.owner AS A, y.owner AS B")
			if err != nil {
				panic(err)
			}
			tbl, err := gpml.GraphTable(gpml.Fig1(), `MATCH (x:Account)-[e:Transfer WHERE e.amount>5M]->(y:Account)`, cols)
			if err != nil {
				panic(err)
			}
			res, err := gpml.Match(gpml.Fig1(), `MATCH (x:Account)-[e:Transfer WHERE e.amount>5M]->(y:Account)`)
			if err != nil {
				panic(err)
			}
			view, err := gpml.BuildGraphView(gpml.Fig1(), res)
			if err != nil {
				panic(err)
			}
			got := fmt.Sprintf("table %d rows; view %d nodes %d edges",
				tbl.NumRows(), view.Graph.NumNodes(), view.Graph.NumEdges())
			return got, tbl.NumRows() == 7 && view.Graph.NumEdges() == 7
		}},
		{"E17", "engine vs baseline (sanity)", "engine TRAIL set == baseline trails; shortest lengths agree", func() (string, bool) {
			g := dataset.Fig1()
			res, err := gpml.Match(g, `MATCH TRAIL p = (a WHERE a.owner='Dave')-[e:Transfer]->*(b WHERE b.owner='Aretha')`)
			if err != nil {
				panic(err)
			}
			base := baseline.EnumerateTrails(g, "a6", "a2", "Transfer")
			bp, _ := baseline.ShortestPath(g, "a6", "a2", "Transfer")
			got := fmt.Sprintf("engine %d, baseline %d, shortest len %d", len(res.Rows), len(base), bp.Len())
			return got, len(res.Rows) == len(base) && bp.Len() == 2
		}},
		{"S1", "Store backends", "map, CSR and CSR-parallel agree on every workload query", func() (string, bool) {
			g := dataset.Random(dataset.RandomConfig{
				Accounts: 200, AvgDegree: 2, Cities: 12, Phones: 30,
				BlockedFraction: 0.1, Seed: 11, UndirectedPhones: true,
			})
			snap := gpml.Snapshot(g)
			queries := []string{
				`MATCH (x:Account WHERE x.isBlocked='yes')-[t:Transfer]->(y:Account)`,
				`MATCH (p:Phone)~[:hasPhone]~(s:Account)-[t:Transfer]->(d:Account)~[:hasPhone]~(p)`,
				`MATCH ANY SHORTEST p = (a:Account WHERE a.owner='owner0')-[:Transfer]->+(z:City)`,
			}
			checked := 0
			for _, src := range queries {
				q := gpml.MustCompile(src)
				seq, err := q.Eval(g)
				if err != nil {
					panic(err)
				}
				csr, err := q.Eval(nil, gpml.WithStore(snap))
				if err != nil {
					panic(err)
				}
				par, err := q.Eval(nil, gpml.WithStore(snap), gpml.WithParallelism(4))
				if err != nil {
					panic(err)
				}
				if gpml.FormatResult(seq) != gpml.FormatResult(csr) || gpml.FormatResult(csr) != gpml.FormatResult(par) {
					return fmt.Sprintf("backends diverge on %s", src), false
				}
				checked++
			}
			return fmt.Sprintf("%d queries identical across 3 backends", checked), checked == len(queries)
		}},
		{"S2", "Automaton engine", "product-graph search matches the enumerating engines, large point-to-point speedup", func() (string, bool) {
			grid := dataset.Grid(8, 8)
			queries := []string{
				`MATCH ALL SHORTEST p = (a WHERE a.owner='u0_0')-[e:Transfer]->+(z WHERE z.owner='u7_0')`,
				`MATCH ALL SHORTEST p = (a WHERE a.owner='u0_0')-[e:Transfer]->+(z WHERE z.owner='u3_3')`,
				`MATCH ANY SHORTEST p = (a WHERE a.owner='u0_0')-[e:Transfer]->{1,6}(z)`,
			}
			var speedup float64
			for i, src := range queries {
				q := gpml.MustCompile(src)
				t0 := time.Now()
				auto, err := q.Eval(grid)
				if err != nil {
					panic(err)
				}
				autoD := time.Since(t0)
				t0 = time.Now()
				enum, err := q.Eval(grid, gpml.NoAutomaton())
				if err != nil {
					panic(err)
				}
				enumD := time.Since(t0)
				if gpml.FormatResult(auto) != gpml.FormatResult(enum) {
					return fmt.Sprintf("engines diverge on %s", src), false
				}
				if i == 0 {
					speedup = float64(enumD) / float64(autoD)
				}
			}
			return fmt.Sprintf("%d queries identical, point-to-point %.0f× faster", len(queries), speedup), speedup >= 3
		}},
		{"S3", "Bind-join planner", "cost-ordered bind join ≥5× on a selective two-pattern join, rows identical on both backends", func() (string, bool) {
			g := dataset.Random(dataset.RandomConfig{
				Accounts: 1500, AvgDegree: 4, Cities: 20, BlockedFraction: 0.01, Seed: 5,
			})
			snap := gpml.Snapshot(g)
			q := gpml.MustCompile(`
				MATCH (x:Account WHERE x.isBlocked='yes')-[:isLocatedIn]->(c:City),
				      (x)-[t:Transfer]->(y:Account)-[u:Transfer]->(z:Account)`)
			var speedup float64
			for _, s := range []gpml.Store{g, snap} {
				t0 := time.Now()
				on, err := q.Eval(nil, gpml.WithStore(s))
				if err != nil {
					panic(err)
				}
				onD := time.Since(t0)
				t0 = time.Now()
				off, err := q.Eval(nil, gpml.WithStore(s), gpml.NoBindJoin())
				if err != nil {
					panic(err)
				}
				offD := time.Since(t0)
				if gpml.FormatResult(on) != gpml.FormatResult(off) {
					return "bind-join on/off rows diverge", false
				}
				if s == gpml.Store(g) {
					speedup = float64(offD) / float64(onD)
				}
			}
			return fmt.Sprintf("identical rows on 2 backends, bind join %.0f× faster", speedup), speedup >= 5
		}},
		{"S4", "Streaming pipeline", "first-row and LIMIT-k ≥10× faster than full materialization, Stream+Collect identical to Eval", func() (string, bool) {
			g := dataset.Random(dataset.RandomConfig{
				Accounts: 2000, AvgDegree: 4, Cities: 15, BlockedFraction: 0.1, Seed: 7,
			})
			q := gpml.MustCompile(`MATCH (x:Account)-[t:Transfer]->(y:Account)-[u:Transfer]->(z:Account)`)
			ctx := context.Background()

			// Full materialization: total time and throughput.
			t0 := time.Now()
			full, err := q.Eval(g)
			if err != nil {
				panic(err)
			}
			fullD := time.Since(t0)
			rate := float64(len(full.Rows)) / fullD.Seconds()

			// Streaming parity: collect-all over the pull pipeline must be
			// byte-identical to Eval.
			rows, err := q.Stream(ctx, g)
			if err != nil {
				panic(err)
			}
			collected, err := rows.Collect()
			if err != nil {
				panic(err)
			}
			if gpml.FormatResult(collected) != gpml.FormatResult(full) {
				return "Stream+Collect diverges from Eval", false
			}

			// First-row latency.
			t0 = time.Now()
			rows, err = q.Stream(ctx, g)
			if err != nil {
				panic(err)
			}
			if !rows.Next() {
				panic("no rows")
			}
			firstD := time.Since(t0)
			rows.Close()

			// LIMIT 1/10/100 through the pushdown; best of three runs, so
			// one GC pause inherited from the full materialization above
			// does not skew a sub-millisecond measurement.
			var limD [3]time.Duration
			for i, k := range []int{1, 10, 100} {
				best := time.Duration(-1)
				for rep := 0; rep < 3; rep++ {
					t0 = time.Now()
					res, err := q.Eval(g, gpml.WithLimit(k))
					if err != nil {
						panic(err)
					}
					if d := time.Since(t0); best < 0 || d < best {
						best = d
					}
					if len(res.Rows) != k {
						return fmt.Sprintf("LIMIT %d returned %d rows", k, len(res.Rows)), false
					}
				}
				limD[i] = best
			}
			firstX := float64(fullD) / float64(firstD)
			lim100X := float64(fullD) / float64(limD[2])
			got := fmt.Sprintf("%d rows, %.2g rows/s full; first row %.0f×, LIMIT 1/10/100 %.0f×/%.0f×/%.0f× faster",
				len(full.Rows), rate, firstX,
				float64(fullD)/float64(limD[0]), float64(fullD)/float64(limD[1]), lim100X)
			return got, firstX >= 10 && lim100X >= 10
		}},
		{"S5", "Interned binding keys", "binary interned keys ≥1.5× (geomean) over materialized string keys across the enumeration dedup and join-index workloads, identical results", func() (string, bool) {
			// Key-layer A/B over real workload bindings. The engines
			// themselves are integer-dense either way, so the experiment
			// pins what the key encodings alone are worth: the dedup set
			// of a TRAIL enumeration and the join hash index of the S3
			// selective two-pattern join, binary vs string-keyed. The
			// query-level StringKeys delta is reported as context.
			enumSols := matchWorkload(dataset.Cycle(48),
				`MATCH TRAIL (a WHERE a.owner='owner0')-[e:Transfer]->*(z)`)
			// Fresh Reduced per round (CanonKey memoizes; a fresh
			// evaluation pays the materialization every time), built
			// outside the timed region so only the dedup itself is
			// measured. The enumeration is replicated so the timed region
			// is multi-millisecond (stable on shared CI runners) and
			// duplicate-heavy, dedup's real shape.
			freshReduced := func() []*binding.Reduced {
				const replicas = 8
				rs := make([]*binding.Reduced, 0, replicas*len(enumSols))
				for rep := 0; rep < replicas; rep++ {
					for _, b := range enumSols {
						rs = append(rs, b.Reduce())
					}
				}
				return rs
			}
			dedupBest := func(useStrings bool) time.Duration {
				best := time.Duration(-1)
				for round := 0; round < 9; round++ {
					rs := freshReduced()
					t0 := time.Now()
					if useStrings {
						binding.DedupStrings(rs)
					} else {
						binding.Dedup(rs)
					}
					if d := time.Since(t0); best < 0 || d < best {
						best = d
					}
				}
				return best
			}
			dedupBest(false) // warm up
			dedupBest(true)
			dedupX := float64(dedupBest(true)) / float64(dedupBest(false))

			joinG := dataset.Random(dataset.RandomConfig{
				Accounts: 1500, AvgDegree: 4, Cities: 20, BlockedFraction: 0.01, Seed: 5,
			})
			joinIndexG := dataset.Random(dataset.RandomConfig{
				Accounts: 12000, AvgDegree: 4, Cities: 20, BlockedFraction: 0.01, Seed: 5,
			})
			joinSols := matchSolutions(joinIndexG, `MATCH (x:Account)-[t:Transfer]->(y:Account)`)
			shared := []string{"x", "y"}
			joinX := abRatio(func(useStrings bool) {
				index := make(map[string][]*binding.Reduced, len(joinSols))
				var buf []byte
				for _, sol := range joinSols {
					if useStrings {
						// The PR-3 string encoding, byte for byte: a fresh
						// builder and length-prefixed materialized ids per
						// key, exactly what the pre-interning pipeline paid.
						var key strings.Builder
						for _, v := range shared {
							ref, ok := sol.Singleton(v)
							if !ok {
								key.WriteByte('?')
								continue
							}
							id := sol.RefID(ref)
							key.WriteString(strconv.Itoa(len(id)))
							if ref.Kind == binding.NodeElem {
								key.WriteString("n")
							} else {
								key.WriteString("e")
							}
							key.WriteString(id)
						}
						index[key.String()] = append(index[key.String()], sol)
						continue
					}
					// The interned encoding, via the engine's own key
					// builder so the A/B always measures the live code.
					buf = eval.AppendSolutionJoinKey(buf[:0], sol, shared, true)
					index[string(buf)] = append(index[string(buf)], sol)
				}
				if len(index) == 0 {
					panic("empty join index")
				}
				// Probe side: one lookup per solution, the shape of the
				// bind-join's per-row probing. The old encoding built a
				// fresh key string per probe; the interned probe is a
				// zero-allocation byte-slice lookup.
				hits := 0
				var probe []byte
				for _, sol := range joinSols {
					if useStrings {
						var key strings.Builder
						for _, v := range shared {
							ref, ok := sol.Singleton(v)
							if !ok {
								key.WriteByte('?')
								continue
							}
							id := sol.RefID(ref)
							key.WriteString(strconv.Itoa(len(id)))
							if ref.Kind == binding.NodeElem {
								key.WriteString("n")
							} else {
								key.WriteString("e")
							}
							key.WriteString(id)
						}
						hits += len(index[key.String()])
						continue
					}
					probe = eval.AppendSolutionJoinKey(probe[:0], sol, shared, true)
					hits += len(index[string(probe)])
				}
				if hits == 0 {
					panic("no probe hits")
				}
			})

			// Whole-query parity and context delta through the public
			// StringKeys option.
			q := gpml.MustCompile(`
				MATCH (x:Account WHERE x.isBlocked='yes')-[:isLocatedIn]->(c:City),
				      (x)-[t:Transfer]->(y:Account)-[u:Transfer]->(z:Account)`)
			interned, err := q.Eval(joinG)
			if err != nil {
				panic(err)
			}
			ref, err := q.Eval(joinG, gpml.StringKeys())
			if err != nil {
				panic(err)
			}
			if gpml.FormatResult(interned) != gpml.FormatResult(ref) {
				return "interned and string-key query results diverge", false
			}
			geomean := math.Sqrt(dedupX * joinX)
			got := fmt.Sprintf("identical rows; interned keys %.1f× on dedup, %.1f× on the join index (geomean %.1f×)",
				dedupX, joinX, geomean)
			return got, geomean >= 1.5
		}},
		{"S6", "Vectorized batch pipeline", "batch cursors + worst-case-optimal intersection ≥2× (geomean) over the row-at-a-time pipeline on cyclic join and chain enumeration workloads, identical results", func() (string, bool) {
			// Whole-query A/B through the public NoVectorize switch: the
			// same compiled query, same store, batch pipeline on vs off.
			// Cyclic shapes measure the intersection operator (bind-joins
			// enumerate the open path first); the chain measures the
			// columnar enumeration alone, drained through Stream so the
			// canonical sort both modes share does not dilute the ratio.
			g := dataset.Random(dataset.RandomConfig{
				Accounts: 900, AvgDegree: 10, BlockedFraction: 0.1, Seed: 41,
			})
			snap := gpml.Snapshot(g)
			workloads := []struct {
				name, src string
			}{
				{"triangle", `MATCH (a)-[:Transfer]->(b), (b)-[:Transfer]->(c), (c)-[:Transfer]->(a)`},
				{"4-cycle", `MATCH (a)-[:Transfer]->(b), (b)-[:Transfer]->(c), (c)-[:Transfer]->(d), (d)-[:Transfer]->(a)`},
				{"two-hop chain", `MATCH (x:Account)-[t:Transfer]->(y)-[u:Transfer]->(z)`},
			}
			drain := func(q *gpml.Query, opts ...gpml.Option) int {
				rows, err := q.Stream(context.Background(), snap, opts...)
				if err != nil {
					panic(err)
				}
				defer rows.Close()
				n := 0
				for rows.Next() {
					n++
				}
				if err := rows.Err(); err != nil {
					panic(err)
				}
				return n
			}
			product := 1.0
			var parts []string
			for _, w := range workloads {
				q := gpml.MustCompile(w.src)
				// Result parity first: batching and the intersection
				// operator must be invisible in the collected rows.
				batched, err := q.Eval(nil, gpml.WithStore(snap))
				if err != nil {
					panic(err)
				}
				rowed, err := q.Eval(nil, gpml.WithStore(snap), gpml.NoVectorize())
				if err != nil {
					panic(err)
				}
				if gpml.FormatResult(batched) != gpml.FormatResult(rowed) {
					return fmt.Sprintf("%s: batch and row pipelines diverge", w.name), false
				}
				x := abRatio(func(noVec bool) {
					if noVec {
						drain(q, gpml.NoVectorize())
					} else {
						drain(q)
					}
				})
				product *= x
				parts = append(parts, fmt.Sprintf("%.1f× on %s", x, w.name))
			}
			geomean := math.Pow(product, 1.0/float64(len(workloads)))
			got := fmt.Sprintf("identical rows; batch pipeline %s (geomean %.1f×)",
				strings.Join(parts, ", "), geomean)
			return got, geomean >= 2
		}},
	}
}

// matchWorkload compiles and enumerates one pattern's raw bindings.
func matchWorkload(g *gpml.Graph, src string) []*binding.PathBinding {
	p := analyze(src)
	raw, err := eval.Enumerate(g, p.Paths[0], eval.Config{})
	if err != nil {
		panic(err)
	}
	return raw
}

// matchSolutions compiles and solves one pattern fully.
func matchSolutions(g *gpml.Graph, src string) []*binding.Reduced {
	p := analyze(src)
	sols, err := eval.MatchPattern(g, p.Paths[0], eval.Config{})
	if err != nil {
		panic(err)
	}
	return sols
}

// analyze runs the front half of the compiler (parse, normalize, plan).
func analyze(src string) *plan.Plan {
	stmt, err := parser.Parse(src)
	if err != nil {
		panic(err)
	}
	norm, err := normalize.Normalize(stmt)
	if err != nil {
		panic(err)
	}
	p, err := plan.Analyze(norm, plan.Options{})
	if err != nil {
		panic(err)
	}
	return p
}

// abRatio times fn in both modes (best of 5 rounds each, interleaved) and
// returns stringMode/binaryMode.
func abRatio(fn func(useStrings bool)) float64 {
	best := func(useStrings bool) time.Duration {
		b := time.Duration(-1)
		for i := 0; i < 5; i++ {
			t0 := time.Now()
			fn(useStrings)
			if d := time.Since(t0); b < 0 || d < b {
				b = d
			}
		}
		return b
	}
	fn(false) // warm up
	fn(true)
	return float64(best(true)) / float64(best(false))
}

// printTimeline reproduces Figure 10 (the SQL/PGQ and GQL standards
// schedule) as data. It is documentation, not an executable experiment.
func printTimeline() {
	rows := []struct{ date, pgq, gql string }{
		{"2017", "Work started", ""},
		{"2018", "", "Work started"},
		{"2021-02-07", "CD Ballot End", ""},
		{"2022-02-20", "", "CD Ballot End"},
		{"2022-12-04", "DIS Ballot End", ""},
		{"2023-01-30", "Final Text to ISO", ""},
		{"2023-03-13", "SQL/PGQ IS Published", ""},
		{"2023-05-21", "", "DIS Ballot End"},
		{"2023-07-30", "", "Final Text to ISO"},
		{"2023-09-10", "", "GQL IS Published"},
	}
	fmt.Println("| Date | SQL/PGQ | GQL |")
	fmt.Println("|------|---------|-----|")
	for _, r := range rows {
		fmt.Printf("| %s | %s | %s |\n", r.date, r.pgq, r.gql)
	}
}

// printSNB builds the LDBC-SNB-flavored graph at the given scale factor
// and reports its shape: per-label cardinalities and the knows degree
// distribution. It is the scale tier's dataset inspection tool — run it
// before pointing the bench-scale benchmarks at a new scale factor to see
// what they will traverse.
func printSNB(sf float64, seed int64) {
	start := time.Now()
	g := dataset.SNB(dataset.SNBConfig{ScaleFactor: sf, Seed: seed})
	build := time.Since(start)

	nodeByLabel := map[string]int{}
	g.Nodes(func(n *graph.Node) bool {
		for _, l := range n.Labels {
			nodeByLabel[l]++
		}
		return true
	})
	edgeByLabel := map[string]int{}
	g.Edges(func(e *graph.Edge) bool {
		for _, l := range e.Labels {
			edgeByLabel[l]++
		}
		return true
	})
	knows := map[graph.NodeID]int{}
	g.Edges(func(e *graph.Edge) bool {
		for _, l := range e.Labels {
			if l == "knows" {
				knows[e.Source]++
				if e.Target != e.Source {
					knows[e.Target]++
				}
			}
		}
		return true
	})
	degs := make([]int, 0, len(knows))
	sum := 0
	for _, d := range knows {
		degs = append(degs, d)
		sum += d
	}
	sort.Ints(degs)
	pct := func(p float64) int {
		if len(degs) == 0 {
			return 0
		}
		i := int(p * float64(len(degs)-1))
		return degs[i]
	}

	fmt.Printf("SNB scale factor %g (seed %d): %d nodes, %d edges, built in %s\n",
		sf, seed, g.NumNodes(), g.NumEdges(), build.Round(time.Millisecond))
	fmt.Println("| Kind | Label | Count |")
	fmt.Println("|------|-------|-------|")
	for _, l := range sortedKeys(nodeByLabel) {
		fmt.Printf("| node | %s | %d |\n", l, nodeByLabel[l])
	}
	for _, l := range sortedKeys(edgeByLabel) {
		fmt.Printf("| edge | %s | %d |\n", l, edgeByLabel[l])
	}
	if len(degs) > 0 {
		fmt.Printf("knows degree: mean %.1f, p50 %d, p90 %d, p99 %d, max %d\n",
			float64(sum)/float64(len(degs)), pct(0.50), pct(0.90), pct(0.99), degs[len(degs)-1])
	}
}

// sortedKeys returns the map's keys in lexicographic order, for stable
// report output.
func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
