// Benchmark harness: one benchmark family per figure and table of the
// paper (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
// paper-vs-measured record), plus scaling sweeps on synthetic graphs and
// the ablation benches of DESIGN.md §5.
package gpml_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"gpml"
	"gpml/internal/baseline"
	"gpml/internal/dataset"
)

// mustEval compiles and evaluates, reporting rows; helper for benches.
func mustEval(b *testing.B, g *gpml.Graph, src string, opts ...gpml.Option) int {
	b.Helper()
	res, err := gpml.Match(g, src, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return len(res.Rows)
}

// ---------------------------------------------------------------------------
// E1/E2: Figures 1 and 2.
// ---------------------------------------------------------------------------

func BenchmarkFig1_BuildGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := gpml.Fig1()
		if g.NumNodes() != 14 {
			b.Fatal("bad graph")
		}
	}
}

func BenchmarkFig2_TabularExport(b *testing.B) {
	g := gpml.Fig1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tables := gpml.Tabular(g); len(tables) != 9 {
			b.Fatal("bad export")
		}
	}
}

// ---------------------------------------------------------------------------
// E3: Figure 3 patterns and the Figure 4 fraud query.
// ---------------------------------------------------------------------------

func BenchmarkFig3_NodePattern(b *testing.B) {
	g := gpml.Fig1()
	q := gpml.MustCompile(`MATCH (x:Account WHERE x.isBlocked='yes')`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res, err := q.Eval(g); err != nil || len(res.Rows) != 1 {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_EdgePattern(b *testing.B) {
	g := gpml.Fig1()
	q := gpml.MustCompile(`MATCH (x:Account WHERE x.isBlocked='no')-[e:Transfer WHERE e.date='3/1/2020']->(y:Account WHERE y.isBlocked='yes')`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res, err := q.Eval(g); err != nil || len(res.Rows) != 1 {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_PathPattern(b *testing.B) {
	g := gpml.Fig1()
	q := gpml.MustCompile(`MATCH TRAIL (x:Account WHERE x.isBlocked='no')-[t:Transfer]->+(y:Account WHERE y.isBlocked='yes')`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Eval(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_FraudQuery(b *testing.B) {
	g := gpml.Fig1()
	q := gpml.MustCompile(`
		MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->
		      (gc:City WHERE gc.name='Ankh-Morpork')<-[:isLocatedIn]-
		      (y:Account WHERE y.isBlocked='yes'),
		      TRAIL (x)-[:Transfer]->+(y)`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res, err := q.Eval(g); err != nil || len(res.Rows) != 4 {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E4: §4.2 queries.
// ---------------------------------------------------------------------------

func BenchmarkSec4_LengthTwoPaths(b *testing.B) {
	g := gpml.Fig1()
	q := gpml.MustCompile(`MATCH (s)-[e]->(m)-[f]->(t)`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Eval(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSec4_SamePhoneTransfers(b *testing.B) {
	g := gpml.Fig1()
	q := gpml.MustCompile(`MATCH (p:Phone)~[:hasPhone]~(s:Account)-[t:Transfer]->(d:Account)~[:hasPhone]~(p)`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res, err := q.Eval(g); err != nil || len(res.Rows) != 2 {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E5: Figure 5 — the seven edge orientations.
// ---------------------------------------------------------------------------

func BenchmarkFig5_Orientation(b *testing.B) {
	g := dataset.Random(dataset.RandomConfig{
		Accounts: 300, AvgDegree: 3, Cities: 10, Phones: 50,
		BlockedFraction: 0.05, Seed: 7, UndirectedPhones: true,
	})
	for name, src := range map[string]string{
		"left":        `MATCH (x)<-[e]-(y)`,
		"undirected":  `MATCH (x)~[e]~(y)`,
		"right":       `MATCH (x)-[e]->(y)`,
		"left_undir":  `MATCH (x)<~[e]~(y)`,
		"undir_right": `MATCH (x)~[e]~>(y)`,
		"left_right":  `MATCH (x)<-[e]->(y)`,
		"any":         `MATCH (x)-[e]-(y)`,
	} {
		q := gpml.MustCompile(src)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := q.Eval(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E6: Figure 6 — quantifiers.
// ---------------------------------------------------------------------------

func BenchmarkFig6_Quantifier(b *testing.B) {
	g := gpml.Fig1()
	for name, src := range map[string]string{
		"star_trail":  `MATCH TRAIL (a:Account)-[t:Transfer]->*(c:Account)`,
		"plus_trail":  `MATCH TRAIL (a:Account)-[t:Transfer]->+(c:Account)`,
		"bounded_2_5": `MATCH (a:Account)-[t:Transfer]->{2,5}(c:Account)`,
		"lower_3":     `MATCH TRAIL (a:Account)-[t:Transfer]->{3,}(c:Account)`,
		"group_sum": `MATCH (a:Account) [()-[t:Transfer]->() WHERE t.amount>1M]{2,5} (c:Account)
		              WHERE SUM(t.amount)>10M`,
	} {
		q := gpml.MustCompile(src)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := q.Eval(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E7/E8/E9: §4.5 union and alternation, §4.6 optionality, §4.7 predicates.
// ---------------------------------------------------------------------------

func BenchmarkSec45_UnionVsAlt(b *testing.B) {
	g := gpml.Fig1()
	union := gpml.MustCompile(`MATCH ->{1,5} | ->{3,7}`)
	alt := gpml.MustCompile(`MATCH ->{1,5} |+| ->{3,7}`)
	b.Run("set_union", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := union.Eval(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("multiset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := alt.Eval(g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSec46_Optional(b *testing.B) {
	g := gpml.Fig1()
	q := gpml.MustCompile(`
		MATCH (x:Account)-[:Transfer]->(y:Account) [~[:hasPhone]~(p)]?
		WHERE y.isBlocked='yes' OR p.isBlocked='yes'`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res, err := q.Eval(g); err != nil || len(res.Rows) != 2 {
			b.Fatal(err)
		}
	}
}

func BenchmarkSec47_Predicates(b *testing.B) {
	g := gpml.Fig1()
	q := gpml.MustCompile(`
		MATCH (x)-[e]-(y)
		WHERE e IS DIRECTED AND x IS SOURCE OF e AND ALL_DIFFERENT(x, y)`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Eval(g); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E10: Figure 7 — restrictors on an adversarial cyclic graph.
// ---------------------------------------------------------------------------

func BenchmarkFig7_Restrictor(b *testing.B) {
	g := dataset.Cycle(64)
	for _, restr := range []string{"TRAIL", "ACYCLIC", "SIMPLE"} {
		q := gpml.MustCompile(fmt.Sprintf(
			`MATCH %s (a WHERE a.owner='owner0')-[e:Transfer]->*(z WHERE z.owner='owner63')`, restr))
		b.Run(restr, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res, err := q.Eval(g); err != nil || len(res.Rows) != 1 {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E11: Figure 8 — selectors.
// ---------------------------------------------------------------------------

func BenchmarkFig8_Selector(b *testing.B) {
	g := dataset.Grid(6, 6)
	for name, sel := range map[string]string{
		"any_shortest":     "ANY SHORTEST",
		"all_shortest":     "ALL SHORTEST",
		"any":              "ANY",
		"any_3":            "ANY 3",
		"shortest_3":       "SHORTEST 3",
		"shortest_2_group": "SHORTEST 2 GROUP",
	} {
		q := gpml.MustCompile(fmt.Sprintf(`
			MATCH %s p = (a WHERE a.owner='u0_0')-[e:Transfer]->+
			      (z WHERE z.owner='u5_5')`, sel))
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := q.Eval(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E12/E14: §5.2 and the §6 pipeline.
// ---------------------------------------------------------------------------

func BenchmarkSec52_PrePostFilter(b *testing.B) {
	g := gpml.Fig1()
	pre := gpml.MustCompile(`
		MATCH ALL SHORTEST (x WHERE x.owner='Scott')-[e1:Transfer]->+
		      (q:Account WHERE q.isBlocked='yes')-[e2:Transfer]->+
		      (r:Account WHERE r.owner='Charles')`)
	post := gpml.MustCompile(`
		MATCH ALL SHORTEST (x WHERE x.owner='Scott')-[e1:Transfer]->+
		      (q:Account)-[e2:Transfer]->+
		      (r:Account WHERE r.owner='Charles')
		WHERE q.isBlocked='yes'`)
	b.Run("prefilter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pre.Eval(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("postfilter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := post.Eval(g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

const section6Query = `
	MATCH TRAIL (a WHERE a.owner='Jay')
	      [-[t:Transfer WHERE t.amount>5M]->]+
	      (a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]`

func BenchmarkSec6_Pipeline(b *testing.B) {
	g := gpml.Fig1()
	b.Run("compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gpml.Compile(section6Query); err != nil {
				b.Fatal(err)
			}
		}
	})
	q := gpml.MustCompile(section6Query)
	b.Run("eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res, err := q.Eval(g); err != nil || len(res.Rows) != 2 {
				b.Fatal(err)
			}
		}
	})
	b.Run("end_to_end", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if n := mustEval(b, g, section6Query); n != 2 {
				b.Fatal("bad result")
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E15: Figure 9 — host-language outputs.
// ---------------------------------------------------------------------------

func BenchmarkFig9_Hosts(b *testing.B) {
	g := gpml.Fig1()
	const match = `MATCH (x:Account)-[e:Transfer WHERE e.amount>5M]->(y:Account)`
	cols, err := gpml.ParseColumns("x.owner AS A, y.owner AS B")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pgq_graph_table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if tbl, err := gpml.GraphTable(g, match, cols); err != nil || tbl.NumRows() != 7 {
				b.Fatal(err)
			}
		}
	})
	q := gpml.MustCompile(match)
	b.Run("gql_graph_view", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := q.Eval(g)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := gpml.BuildGraphView(g, res); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E17: scaling sweeps and baseline comparisons. The shape the paper's
// design predicts: selector search (BFS) stays polynomial where naive
// enumeration explodes; restrictor DFS sits between.
// ---------------------------------------------------------------------------

func BenchmarkScale_AnyShortestVsNaive(b *testing.B) {
	for _, n := range []int{8, 12, 16} {
		g := dataset.LaunderingRings(n/4, 4, n, int64(n))
		first := "owner0"
		last := fmt.Sprintf("owner%d", n-1)
		q := gpml.MustCompile(fmt.Sprintf(`
			MATCH ANY SHORTEST p = (a WHERE a.owner='%s')-[e:Transfer]->+
			      (z WHERE z.owner='%s')`, first, last))
		b.Run(fmt.Sprintf("engine_bfs_n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := q.Eval(g); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("naive_walks_n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.EnumerateWalks(g, "a0", gpml.NodeID(fmt.Sprintf("a%d", n-1)), "Transfer", n)
			}
		})
	}
}

func BenchmarkScale_TrailDFS(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		g := dataset.Chain(n)
		q := gpml.MustCompile(`MATCH TRAIL (a WHERE a.owner='owner0')-[e:Transfer]->*(z)`)
		b.Run(fmt.Sprintf("chain_n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := q.Eval(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScale_NodeScan(b *testing.B) {
	for _, n := range []int{100, 1_000, 10_000} {
		g := dataset.Random(dataset.RandomConfig{Accounts: n, AvgDegree: 2, Seed: 1})
		q := gpml.MustCompile(`MATCH (x:Account WHERE x.isBlocked='yes')`)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := q.Eval(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScale_ShortestGrid(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		g := dataset.Grid(n, n)
		q := gpml.MustCompile(fmt.Sprintf(`
			MATCH ANY SHORTEST p = (a WHERE a.owner='u0_0')-[e:Transfer]->+
			      (z WHERE z.owner='u%d_%d')`, n-1, n-1))
		b.Run(fmt.Sprintf("grid_%dx%d", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := q.Eval(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5).
// ---------------------------------------------------------------------------

// Ablation 1: lazy expansion (one {1,k} query) vs eager expansion (k
// separate rigid queries {i,i}, the paper's literal §6.3 model).
func BenchmarkAblation_EagerVsLazy(b *testing.B) {
	g := gpml.Fig1()
	const k = 6
	lazy := gpml.MustCompile(fmt.Sprintf(
		`MATCH (a:Account)-[t:Transfer]->{1,%d}(z:Account)`, k))
	var eager []*gpml.Query
	for i := 1; i <= k; i++ {
		eager = append(eager, gpml.MustCompile(fmt.Sprintf(
			`MATCH (a:Account)-[t:Transfer]->{%d,%d}(z:Account)`, i, i)))
	}
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lazy.Eval(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range eager {
				if _, err := q.Eval(g); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Bind-join planner: the S3 workload — a selective pattern joined with a
// two-hop expansion whose full enumeration dwarfs the join result. With
// the planner on, the expansion runs only from the selective pattern's
// endpoint bindings; NoBindJoin restores enumerate-everything-then-join.
// ---------------------------------------------------------------------------

func BenchmarkBindJoin_SelectiveTwoPattern(b *testing.B) {
	g := dataset.Random(dataset.RandomConfig{
		Accounts: 1500, AvgDegree: 4, Cities: 20, BlockedFraction: 0.01, Seed: 5,
	})
	snap := gpml.Snapshot(g)
	q := gpml.MustCompile(`
		MATCH (x:Account WHERE x.isBlocked='yes')-[:isLocatedIn]->(c:City),
		      (x)-[t:Transfer]->(y:Account)-[u:Transfer]->(z:Account)`)
	rows := len(mustResult(b, q, g))
	run := func(b *testing.B, opts ...gpml.Option) {
		for i := 0; i < b.N; i++ {
			res, err := q.Eval(g, opts...)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != rows {
				b.Fatalf("got %d rows, want %d", len(res.Rows), rows)
			}
		}
	}
	b.Run("bind_join", func(b *testing.B) { run(b) })
	b.Run("bind_join_csr", func(b *testing.B) { run(b, gpml.WithStore(snap)) })
	b.Run("hash_join", func(b *testing.B) { run(b, gpml.NoBindJoin()) })
}

// ---------------------------------------------------------------------------
// Streaming pipeline: first-row latency and LIMIT pushdown. The two-hop
// transfer pattern yields hundreds of thousands of rows on this graph, so
// the gap between "first row" / "first k rows" and full materialization is
// the streaming refactor's whole point. Tier-1 tracked.
// ---------------------------------------------------------------------------

func streamBenchGraph() *gpml.Graph {
	return dataset.Random(dataset.RandomConfig{
		Accounts: 2000, AvgDegree: 4, Cities: 15, BlockedFraction: 0.1, Seed: 7,
	})
}

const streamBenchQuery = `MATCH (x:Account)-[t:Transfer]->(y:Account)-[u:Transfer]->(z:Account)`

func BenchmarkStreamFirstRow(b *testing.B) {
	g := streamBenchGraph()
	q := gpml.MustCompile(streamBenchQuery)
	b.Run("stream_first", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, err := q.Stream(context.Background(), g)
			if err != nil {
				b.Fatal(err)
			}
			if !rows.Next() {
				b.Fatal("no rows")
			}
			rows.Close()
		}
	})
	b.Run("eval_full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := q.Eval(g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkLimitPushdown(b *testing.B) {
	g := streamBenchGraph()
	q := gpml.MustCompile(streamBenchQuery)
	run := func(b *testing.B, opts ...gpml.Option) {
		for i := 0; i < b.N; i++ {
			if _, err := q.Eval(g, opts...); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("limit_1", func(b *testing.B) { run(b, gpml.WithLimit(1)) })
	b.Run("limit_100", func(b *testing.B) { run(b, gpml.WithLimit(100)) })
	b.Run("full", func(b *testing.B) { run(b) })
}

// ---------------------------------------------------------------------------
// Vectorized batch pipeline and worst-case-optimal intersection. The
// triangle join is the cyclic shape bind-joins handle worst: they
// enumerate the open two-hop wedge (|E|·d rows) before the closing edge
// filters it, while the intersection operator assigns c by intersecting
// the sorted adjacency of a and b — worst-case-optimal, never larger
// than the output bound. Batch enumeration measures the columnar chain
// pipeline against the row-at-a-time operators on the same plans.
// Tier-1 tracked.
// ---------------------------------------------------------------------------

func cyclicBenchGraph() *gpml.Graph {
	return dataset.Random(dataset.RandomConfig{
		Accounts: 900, AvgDegree: 10, BlockedFraction: 0.1, Seed: 41,
	})
}

func BenchmarkCyclicTriangleJoin(b *testing.B) {
	g := cyclicBenchGraph()
	snap := gpml.Snapshot(g)
	q := gpml.MustCompile(`MATCH (a)-[:Transfer]->(b), (b)-[:Transfer]->(c), (c)-[:Transfer]->(a)`)
	res, err := q.Eval(nil, gpml.WithStore(snap))
	if err != nil {
		b.Fatal(err)
	}
	rows := len(res.Rows)
	run := func(b *testing.B, opts ...gpml.Option) {
		for i := 0; i < b.N; i++ {
			res, err := q.Eval(nil, opts...)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != rows {
				b.Fatalf("got %d rows, want %d", len(res.Rows), rows)
			}
		}
	}
	b.Run("intersect_csr", func(b *testing.B) { run(b, gpml.WithStore(snap)) })
	b.Run("bind_join_csr", func(b *testing.B) { run(b, gpml.WithStore(snap), gpml.NoVectorize()) })
	b.Run("bind_join_map", func(b *testing.B) { run(b, gpml.WithStore(g), gpml.NoVectorize()) })
}

func BenchmarkBatchEnumerate(b *testing.B) {
	g := streamBenchGraph()
	snap := gpml.Snapshot(g)
	for name, src := range map[string]string{
		"one_hop":  `MATCH (x:Account)-[t:Transfer]->(y:Account)`,
		"two_hop":  `MATCH (x:Account)-[t:Transfer]->(y:Account)-[u:Transfer]->(z:Account)`,
		"filtered": `MATCH (x:Account)-[t:Transfer]->(y:Account) WHERE t.amount > 5M`,
	} {
		q := gpml.MustCompile(src)
		// Drain the streaming pipeline: the canonical sort Eval appends is
		// identical for both pipelines and would only dilute the A/B.
		drain := func(b *testing.B, opts ...gpml.Option) int {
			rows, err := q.Stream(context.Background(), snap, opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer rows.Close()
			n := 0
			for rows.Next() {
				n++
			}
			if err := rows.Err(); err != nil {
				b.Fatal(err)
			}
			return n
		}
		b.Run(name+"_batch", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if drain(b) == 0 {
					b.Fatal("no rows")
				}
			}
		})
		b.Run(name+"_rows", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if drain(b, gpml.NoVectorize()) == 0 {
					b.Fatal("no rows")
				}
			}
		})
	}
}

// mustResult evaluates a compiled query, failing the benchmark on error.
func mustResult(b *testing.B, q *gpml.Query, g *gpml.Graph) []*gpml.Row {
	b.Helper()
	res, err := q.Eval(g)
	if err != nil {
		b.Fatal(err)
	}
	return res.Rows
}

// Ablation 4: join order for comma-joined patterns — selective pattern
// first vs last.
func BenchmarkAblation_JoinOrder(b *testing.B) {
	g := dataset.Random(dataset.RandomConfig{
		Accounts: 400, AvgDegree: 3, Cities: 5, Seed: 3, BlockedFraction: 0.01,
	})
	selectiveFirst := gpml.MustCompile(`
		MATCH (x:Account WHERE x.isBlocked='yes')-[:isLocatedIn]->(c),
		      (x)-[t:Transfer]->(y)`)
	selectiveLast := gpml.MustCompile(`
		MATCH (x)-[t:Transfer]->(y),
		      (x:Account WHERE x.isBlocked='yes')-[:isLocatedIn]->(c)`)
	b.Run("selective_first", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := selectiveFirst.Eval(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("selective_last", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := selectiveLast.Eval(g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Store backends: the map graph vs the CSR snapshot, label-indexed seeding
// and parallel evaluation. The noise graph buries the Account seeds under
// City/Phone nodes, so the CSR's label index skips most of the node scan;
// the map backend must still filter every node.
// ---------------------------------------------------------------------------

func storeBenchGraph() *gpml.Graph {
	return dataset.Random(dataset.RandomConfig{
		Accounts: 400, AvgDegree: 2, Cities: 3000, Phones: 3000,
		BlockedFraction: 0.05, Seed: 17, UndirectedPhones: true,
	})
}

func BenchmarkStore_LabeledSeed(b *testing.B) {
	g := storeBenchGraph()
	snap := gpml.Snapshot(g)
	q := gpml.MustCompile(`MATCH (a:Account WHERE a.isBlocked='yes')-[t:Transfer]->(y:Account)`)
	rows := mustEval(b, g, `MATCH (a:Account WHERE a.isBlocked='yes')-[t:Transfer]->(y:Account)`)
	run := func(b *testing.B, opts ...gpml.Option) {
		for i := 0; i < b.N; i++ {
			res, err := q.Eval(g, opts...)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != rows {
				b.Fatalf("got %d rows, want %d", len(res.Rows), rows)
			}
		}
	}
	b.Run("map", func(b *testing.B) { run(b) })
	b.Run("csr", func(b *testing.B) { run(b, gpml.WithStore(snap)) })
	b.Run("csr_parallel4", func(b *testing.B) { run(b, gpml.WithStore(snap), gpml.WithParallelism(4)) })
}

// The representative labeled-seed shape: a TRAIL reachability query
// between flagged accounts.
func BenchmarkStore_TransferReach(b *testing.B) {
	g := dataset.LaunderingRings(16, 5, 24, 9)
	snap := gpml.Snapshot(g)
	q := gpml.MustCompile(`MATCH TRAIL (a:Account WHERE a.isBlocked='yes')-[t:Transfer]->+(z:Account WHERE z.isBlocked='yes')`)
	run := func(b *testing.B, opts ...gpml.Option) {
		for i := 0; i < b.N; i++ {
			if _, err := q.Eval(g, opts...); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("map", func(b *testing.B) { run(b) })
	b.Run("csr", func(b *testing.B) { run(b, gpml.WithStore(snap)) })
	b.Run("csr_parallel4", func(b *testing.B) { run(b, gpml.WithStore(snap), gpml.WithParallelism(4)) })
}

// The overlay serving claim: readers on an epoch-snapshot overlay stay
// near pure-CSR latency while a writer sustains mutation batches and
// background compactions churn underneath. csr-read is the floor,
// overlay-read-clean isolates the epoch indirection, overlay-read-mixed
// runs the full contended workload and reports the sustained writer
// throughput as muts/s (the writer churns a bounded scratch region —
// adds, edges and detach-deletes — so epochs always carry live delta,
// tombstones and override traffic without growing the graph).
func BenchmarkOverlayMixedReadWrite(b *testing.B) {
	base := gpml.Snapshot(storeBenchGraph())
	q := gpml.MustCompile(`MATCH (a:Account WHERE a.isBlocked='yes')-[t:Transfer]->(y:Account)`)
	wantRes, err := q.EvalStore(base)
	if err != nil {
		b.Fatal(err)
	}
	want := len(wantRes.Rows)
	read := func(b *testing.B, s gpml.Store) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			res, err := q.EvalStore(s)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != want {
				b.Fatalf("got %d rows, want %d", len(res.Rows), want)
			}
		}
	}
	b.Run("csr-read", func(b *testing.B) { read(b, base) })
	b.Run("overlay-read-clean", func(b *testing.B) { read(b, gpml.NewOverlayFromCSR(base)) })
	b.Run("overlay-read-mixed", func(b *testing.B) {
		ov := gpml.NewOverlayFromCSR(base)
		stop := make(chan struct{})
		done := make(chan struct{})
		var muts atomic.Int64
		go func() {
			defer close(done)
			const span = 128 // scratch nodes per generation
			for gen := 0; ; gen++ {
				select {
				case <-stop:
					return
				default:
				}
				batch := ov.Begin()
				ops := 0
				for j := 0; j < span; j++ {
					id := gpml.NodeID(fmt.Sprintf("m%d_%d", gen, j))
					batch.AddNode(id, []string{"Scratch"}, map[string]gpml.Value{"g": gpml.Int(int64(gen))})
					ops++
					if j > 0 {
						batch.AddEdge(gpml.EdgeID(fmt.Sprintf("me%d_%d", gen, j)), id,
							gpml.NodeID(fmt.Sprintf("m%d_%d", gen, j-1)), []string{"Scratch"}, nil)
						ops++
					}
				}
				if gen > 0 {
					// Detach-delete the previous generation: every node
					// takes its edges with it, so the live graph stays
					// bounded while tombstones flow through compaction.
					for j := 0; j < span; j++ {
						batch.DeleteNode(gpml.NodeID(fmt.Sprintf("m%d_%d", gen-1, j)))
						ops++
					}
				}
				if err := ov.Apply(batch); err != nil {
					b.Error(err)
					return
				}
				muts.Add(int64(ops))
				// Pace the writer to comfortably above the 10k muts/s
				// serving claim without turning the bench into a GC
				// stress test of back-to-back compactions (CI runners
				// may have a single core for readers, writer and
				// compactor together; the effective cycle stretches by a
				// scheduler quantum there).
				time.Sleep(5 * time.Millisecond)
			}
		}()
		read(b, ov)
		elapsed := b.Elapsed()
		close(stop)
		<-done
		ov.Wait()
		if s := elapsed.Seconds(); s > 0 {
			b.ReportMetric(float64(muts.Load())/s, "muts/s")
		}
	})
}

func BenchmarkStore_Snapshot(b *testing.B) {
	g := storeBenchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := gpml.Snapshot(g); s.NumNodes() != g.NumNodes() {
			b.Fatal("bad snapshot")
		}
	}
}

// Compilation throughput across representative query shapes.
func BenchmarkCompile(b *testing.B) {
	queries := map[string]string{
		"node":       `MATCH (x:Account WHERE x.isBlocked='no')`,
		"path":       `MATCH (a)-[e:Transfer]->(b)-[f:Transfer]->(c)`,
		"quantified": `MATCH TRAIL (a) [-[t:Transfer WHERE t.amount>5M]->]+ (a)`,
		"section6":   section6Query,
	}
	for name, src := range queries {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gpml.Compile(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
