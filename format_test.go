package gpml_test

import (
	"strings"
	"testing"

	"gpml"
)

func TestFormatResult(t *testing.T) {
	res, err := gpml.Match(gpml.Fig1(), `MATCH (y WHERE y.owner='Aretha')<-[e:Transfer]-(x)`)
	if err != nil {
		t.Fatal(err)
	}
	out := gpml.FormatResult(res)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header, separator, one row
		t.Fatalf("lines: %d\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "y") || !strings.Contains(lines[2], "t2") {
		t.Errorf("table:\n%s", out)
	}
	// Conditional singleton renders NULL.
	res, err = gpml.Match(gpml.Fig1(), `
		MATCH (x:Account)-[:Transfer]->(y:Account) [~[:hasPhone]~(p)]?
		WHERE y.isBlocked='yes' OR p.isBlocked='yes'`)
	if err != nil {
		t.Fatal(err)
	}
	out = gpml.FormatResult(res)
	if !strings.Contains(out, "NULL") {
		t.Errorf("unbound conditional must render NULL:\n%s", out)
	}
}

func TestFormatBindings(t *testing.T) {
	res, err := gpml.Match(gpml.Fig1(), `
		MATCH TRAIL (a WHERE a.owner='Jay')
		      [-[b:Transfer WHERE b.amount>5M]->]+
		      (a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]`)
	if err != nil {
		t.Fatal(err)
	}
	out := gpml.FormatBindings(res)
	if !strings.Contains(out, "□") || !strings.Contains(out, "li4") {
		t.Errorf("§6.4 binding table:\n%s", out)
	}
}

func TestFormatEmptyResult(t *testing.T) {
	res, err := gpml.Match(gpml.Fig1(), `MATCH (x:Account WHERE x.owner='Nobody')`)
	if err != nil {
		t.Fatal(err)
	}
	out := gpml.FormatResult(res)
	// Header and separator only.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Errorf("empty result table:\n%q", out)
	}
}
