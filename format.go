package gpml

import (
	"strings"

	"gpml/internal/binding"
)

// FormatResult renders a result as an aligned text table over its named
// columns, one row per match. Unbound conditional singletons render as
// NULL; group variables as bracketed element lists; path variables in the
// paper's path(...) notation.
func FormatResult(res *Result) string {
	cols := res.Columns
	if len(cols) == 0 {
		return ""
	}
	rows := make([][]string, 0, len(res.Rows)+1)
	rows = append(rows, cols)
	for _, row := range res.Rows {
		cells := make([]string, len(cols))
		for i, c := range cols {
			if b, ok := row.Get(c); ok {
				cells[i] = b.String()
			} else {
				cells[i] = "NULL"
			}
		}
		rows = append(rows, cells)
	}
	widths := make([]int, len(cols))
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
		if ri == 0 {
			sep := make([]string, len(cols))
			for i := range sep {
				sep[i] = strings.Repeat("-", widths[i])
			}
			b.WriteString(strings.Join(sep, "-+-"))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FormatBindings renders the reduced path bindings of a result in the
// two-row table presentation of §6.4 (variables above elements).
func FormatBindings(res *Result) string {
	var all []*binding.Reduced
	for _, row := range res.Rows {
		all = append(all, row.Bindings...)
	}
	return binding.FormatTable(all)
}
