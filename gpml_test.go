package gpml_test

import (
	"sort"
	"strings"
	"testing"

	"gpml"
)

func TestQuickstartFlow(t *testing.T) {
	g := gpml.Fig1()
	q := gpml.MustCompile(`MATCH (x:Account WHERE x.isBlocked='no')`)
	res, err := q.Eval(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("unblocked accounts: %d", len(res.Rows))
	}
	if cols := q.Columns(); len(cols) != 1 || cols[0] != "x" {
		t.Errorf("columns: %v", cols)
	}
	if q.Source() == "" || !strings.Contains(q.Normalized(), "Account") {
		t.Errorf("introspection accessors broken")
	}
}

func TestBuilderAPI(t *testing.T) {
	g, err := gpml.NewBuilder().
		Node("u1", []string{"User"}, "name", "ada").
		Node("u2", []string{"User"}, "name", "bob").
		Edge("f1", "u1", "u2", []string{"follows"}, "since", 2021).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := gpml.Match(g, `MATCH (a:User)-[f:follows WHERE f.since >= 2021]->(b:User)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	a, _ := res.Rows[0].Get("a")
	if a.Kind != gpml.BoundNode || a.Node != "u1" {
		t.Errorf("binding: %+v", a)
	}
}

func TestValueConstructors(t *testing.T) {
	g := gpml.NewGraph()
	if err := g.AddNode("n", nil, map[string]gpml.Value{
		"s": gpml.Str("x"), "i": gpml.Int(1), "f": gpml.Float(1.5),
		"b": gpml.Bool(true), "n": gpml.Null,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := gpml.Match(g, `MATCH (v WHERE v.i = 1 AND v.n IS NULL AND v.b)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows: %d", len(res.Rows))
	}
}

func TestGQLModeOption(t *testing.T) {
	const q = `MATCH (a)-[:Transfer]->(b)-[:Transfer]->(c)-[:Transfer]->(d) WHERE a = d`
	if _, err := gpml.Compile(q); err == nil {
		t.Fatalf("default (PGQ) mode must reject element equality")
	}
	cq, err := gpml.Compile(q, gpml.GQLMode())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cq.Eval(gpml.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("triangles: %d", len(res.Rows))
	}
}

func TestWithLimits(t *testing.T) {
	q := gpml.MustCompile(`MATCH TRAIL p = (a)-[e:Transfer]->*(b)`,
		gpml.WithLimits(gpml.Limits{MaxMatches: 2}))
	if _, err := q.Eval(gpml.Fig1()); err == nil {
		t.Fatalf("limit must trip")
	}
	// Per-eval override.
	q2 := gpml.MustCompile(`MATCH (x:Account)`)
	if _, err := q2.Eval(gpml.Fig1(), gpml.WithLimits(gpml.Limits{MaxMatches: 100})); err != nil {
		t.Fatal(err)
	}
}

func TestGraphTableFacade(t *testing.T) {
	cols, err := gpml.ParseColumns("x.owner AS A, y.owner AS B")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := gpml.GraphTable(gpml.Fig1(), `
		MATCH (x:Account)-[:isLocatedIn]->(g:City)<-[:isLocatedIn]-(y:Account),
		      TRAIL (x)-[e:Transfer]->+(y)
		WHERE x.isBlocked='no' AND y.isBlocked='yes' AND g.name='Ankh-Morpork'`, cols)
	if err != nil {
		t.Fatal(err)
	}
	var pairs []string
	for r := 0; r < tbl.NumRows(); r++ {
		a, _ := tbl.Get(r, "A")
		b, _ := tbl.Get(r, "B")
		pairs = append(pairs, a.Display()+"→"+b.Display())
	}
	sort.Strings(pairs)
	uniq := map[string]bool{}
	for _, p := range pairs {
		uniq[p] = true
	}
	if !uniq["Aretha→Jay"] || !uniq["Dave→Jay"] || len(uniq) != 2 {
		t.Errorf("fig4 pairs: %v", pairs)
	}
}

func TestTabularFacade(t *testing.T) {
	tables := gpml.Tabular(gpml.Fig1())
	found := false
	for _, tbl := range tables {
		if tbl.Name == "CityCountry" {
			found = true
		}
	}
	if !found {
		t.Errorf("Figure 2 CityCountry relation missing")
	}
}

func TestGQLSessionFacade(t *testing.T) {
	cat := gpml.NewCatalog()
	if err := cat.Register("bank", gpml.Fig1()); err != nil {
		t.Fatal(err)
	}
	s := gpml.NewSession(cat)
	if err := s.Use("bank"); err != nil {
		t.Fatal(err)
	}
	view, err := s.MatchGraph(`MATCH (x:Account WHERE x.owner='Jay')-[e:Transfer]->(y)`)
	if err != nil {
		t.Fatal(err)
	}
	if view.Graph.NumEdges() != 1 {
		t.Errorf("graph view edges: %d", view.Graph.NumEdges())
	}
}

func TestBuildGraphViewFacade(t *testing.T) {
	g := gpml.Fig1()
	res, err := gpml.Match(g, `MATCH (p:Phone)~[h:hasPhone]~(a:Account WHERE a.owner='Scott')`)
	if err != nil {
		t.Fatal(err)
	}
	view, err := gpml.BuildGraphView(g, res)
	if err != nil {
		t.Fatal(err)
	}
	// Scott (a1) carries phone p1 (edge hp1).
	if view.Graph.NumNodes() != 2 || view.Graph.NumEdges() != 1 {
		t.Errorf("view: %s", view.Graph.Stats())
	}
	if view.Graph.Node("p1") == nil || view.Graph.Edge("hp1") == nil {
		t.Errorf("view must contain p1 and hp1: %s", view.Graph.Stats())
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	for _, src := range []string{
		`not gpml`,
		`MATCH (a)-[e]->*(b)`,                  // §5 termination
		`MATCH [(x)->(y)]|[(x)->(z)], (y)->()`, // §4.6
	} {
		if _, err := gpml.Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("MustCompile must panic on bad input")
		}
	}()
	gpml.MustCompile(`broken`)
}

func TestPathsInResults(t *testing.T) {
	res, err := gpml.Match(gpml.Fig1(), `
		MATCH ANY SHORTEST p = (a WHERE a.owner='Dave')-[e:Transfer]->+
		      (b WHERE b.owner='Aretha')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	p, _ := res.Rows[0].Get("p")
	if p.Kind != gpml.BoundPath || p.Path.String() != "path(a6,t5,a3,t2,a2)" {
		t.Errorf("path: %v", p)
	}
}

// TestExplainJoinPlan pins the public Explain surface of the bind-join
// planner: multi-pattern statements report the cost-ordered join steps,
// NoBindJoin reports the classic pipeline, and a store passed through
// WithStore feeds real cardinality statistics into the ranking.
func TestExplainJoinPlan(t *testing.T) {
	g := gpml.Fig1()
	q := gpml.MustCompile(`
		MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->(c:City),
		      (x)-[t:Transfer]->(y:Account)`)
	lines := q.Explain(gpml.WithStore(g))
	if len(lines) != 5 {
		t.Fatalf("want 2 pattern + 1 stats + 2 join lines, got %d: %v", len(lines), lines)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "join stats: nodes=14 edges=22") {
		t.Errorf("missing stats line:\n%s", joined)
	}
	if !strings.Contains(joined, "join step 0: pattern 0 scan") {
		t.Errorf("missing scan step:\n%s", joined)
	}
	if !strings.Contains(joined, "join step 1: pattern 1 bind-join seed=x") {
		t.Errorf("missing bind-join step:\n%s", joined)
	}
	off := strings.Join(q.Explain(gpml.NoBindJoin()), "\n")
	if !strings.Contains(off, "bind-join disabled") {
		t.Errorf("NoBindJoin explain should report the classic pipeline:\n%s", off)
	}
	// Single-pattern statements have no join plan.
	single := gpml.MustCompile(`MATCH (x:Account)`).Explain()
	if len(single) != 1 {
		t.Errorf("single pattern should explain in one line, got %v", single)
	}
}

// TestNoBindJoinParity pins the public escape hatch: results are
// byte-identical with the planner on and off.
func TestNoBindJoinParity(t *testing.T) {
	g := gpml.Fig1()
	q := gpml.MustCompile(`
		MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->
		      (gc:City WHERE gc.name='Ankh-Morpork')<-[:isLocatedIn]-
		      (y:Account WHERE y.isBlocked='yes'),
		      TRAIL (x)-[:Transfer]->+(y)`)
	on, err := q.Eval(g)
	if err != nil {
		t.Fatal(err)
	}
	off, err := q.Eval(g, gpml.NoBindJoin())
	if err != nil {
		t.Fatal(err)
	}
	if gpml.FormatResult(on) != gpml.FormatResult(off) {
		t.Fatalf("bind-join on/off diverge:\non:\n%s\noff:\n%s",
			gpml.FormatResult(on), gpml.FormatResult(off))
	}
	// The parallel seeded path distributes seed runs over a worker pool;
	// output must stay byte-identical.
	par, err := q.Eval(g, gpml.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if gpml.FormatResult(on) != gpml.FormatResult(par) {
		t.Fatalf("parallel bind-join diverges:\nsequential:\n%s\nparallel:\n%s",
			gpml.FormatResult(on), gpml.FormatResult(par))
	}
	if len(on.Rows) != 4 {
		t.Fatalf("fraud query returns %d rows, want 4", len(on.Rows))
	}
}
