package gpml_test

import (
	"context"
	"errors"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"gpml"
	"gpml/internal/normalize"
	"gpml/internal/qcache"
)

// Parameterized queries: one compiled plan, many argument sets. The
// prepared form with WithParams must reproduce the literal query's
// result exactly, across engines and argument values.
func TestParamsMatchLiteralQuery(t *testing.T) {
	g := gpml.Fig1()
	prepared := gpml.MustCompile(`MATCH (x:Account WHERE x.isBlocked = $blocked)`)
	if got := prepared.Params(); len(got) != 1 || got[0] != "blocked" {
		t.Fatalf("Params() = %v, want [blocked]", got)
	}
	for _, blocked := range []string{"no", "yes"} {
		literal := gpml.MustCompile(`MATCH (x:Account WHERE x.isBlocked = '` + blocked + `')`)
		want, err := literal.Eval(g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := prepared.Eval(g, gpml.WithParams(map[string]gpml.Value{
			"blocked": gpml.Str(blocked),
		}))
		if err != nil {
			t.Fatal(err)
		}
		if gpml.FormatResult(got) != gpml.FormatResult(want) {
			t.Errorf("blocked=%q: parameterized result diverges:\ngot:\n%s\nwant:\n%s",
				blocked, gpml.FormatResult(got), gpml.FormatResult(want))
		}
	}
}

// Parameters must work in every engine's predicate path: the pattern
// automaton, the enumerating engines, the vectorized batch pipeline, and
// the statement-level postfilter.
func TestParamsAcrossEngines(t *testing.T) {
	g := gpml.Fig1()
	queries := []string{
		// node predicate (seed filter)
		`MATCH (x:Account WHERE x.isBlocked = $b)`,
		// edge predicate inside a quantified pattern (automaton-eligible)
		`MATCH TRAIL (x:Account)-[t:Transfer WHERE t.amount > $min]->+(y:Account)`,
		// statement-level postfilter over two variables
		`MATCH (x:Account)-[t:Transfer]->(y:Account) WHERE x.isBlocked = $b AND y.isBlocked = $b`,
	}
	allArgs := map[string]gpml.Value{"b": gpml.Str("no"), "min": gpml.Int(900_000)}
	engines := map[string][]gpml.Option{
		"default":      nil,
		"no-automaton": {gpml.NoAutomaton()},
		"no-vectorize": {gpml.NoVectorize()},
		"parallel":     {gpml.WithParallelism(4)},
	}
	for _, src := range queries {
		q := gpml.MustCompile(src)
		// Binding is strict (exact arity), so pass each query only the
		// parameters it declares.
		args := make(map[string]gpml.Value)
		for _, name := range q.Params() {
			args[name] = allArgs[name]
		}
		var baseline string
		first := true
		names := make([]string, 0, len(engines))
		for name := range engines {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			opts := append([]gpml.Option{gpml.WithParams(args)}, engines[name]...)
			res, err := q.Eval(g, opts...)
			if err != nil {
				t.Fatalf("%s [%s]: %v", src, name, err)
			}
			out := gpml.FormatResult(res)
			if first {
				baseline, first = out, false
				if len(res.Rows) == 0 {
					t.Fatalf("%s: no rows — parameter predicate matched nothing, test is vacuous", src)
				}
				continue
			}
			if out != baseline {
				t.Errorf("%s [%s]: diverges from default engine:\ngot:\n%s\nwant:\n%s", src, name, out, baseline)
			}
		}
	}
}

// Bind-time validation: missing and unknown parameters are positioned
// errors raised before evaluation starts, never panics.
func TestParamsBindErrors(t *testing.T) {
	g := gpml.Fig1()
	q := gpml.MustCompile(`MATCH (x:Account WHERE x.isBlocked = $blocked)`)

	// Missing value for a used placeholder.
	_, err := q.Eval(g)
	var bind *gpml.BindError
	if !errors.As(err, &bind) {
		t.Fatalf("missing param: want *BindError, got %v", err)
	}
	if bind.Name != "blocked" {
		t.Errorf("missing param names %q, want blocked", bind.Name)
	}
	if line, col, ok := gpml.ErrorPosition(err); !ok || line != 1 || col != 38 {
		t.Errorf("missing param position = %d:%d (ok=%v), want 1:38 (the $)", line, col, ok)
	}
	if d := gpml.Diagnostic(q.Source(), err); !strings.Contains(d, "^") {
		t.Errorf("missing param diagnostic has no caret:\n%s", d)
	}

	// Supplied name the query never uses (arity mismatch).
	_, err = q.Eval(g, gpml.WithParams(map[string]gpml.Value{
		"blocked": gpml.Str("no"),
		"extra":   gpml.Int(1),
	}))
	if !errors.As(err, &bind) {
		t.Fatalf("unknown param: want *BindError, got %v", err)
	}
	if bind.Name != "extra" {
		t.Errorf("unknown param names %q, want extra", bind.Name)
	}

	// Stream must fail the same way, before a pipeline spins up.
	if _, err := q.Stream(context.Background(), g); !errors.As(err, &bind) {
		t.Fatalf("Stream without params: want *BindError, got %v", err)
	}

	// Type looseness is the language's: comparing a string property to an
	// int parameter is not a bind error, it just matches nothing.
	res, err := q.Eval(g, gpml.WithParams(map[string]gpml.Value{"blocked": gpml.Int(7)}))
	if err != nil {
		t.Fatalf("int-typed param: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("int-typed param matched %d rows, want 0", len(res.Rows))
	}
}

// The plan cache contract (the serving path's core invariant): textual
// variants sharing a QueryKey hit one cache entry, and a cached plan
// replayed with fresh bindings is byte-identical to a fresh compile.
func TestPlanCacheNormalizationCollisions(t *testing.T) {
	cache := qcache.New(8)
	compile := func(src string) *gpml.Query {
		key, err := normalize.QueryKey(src)
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := cache.Get(key); ok {
			return v.(*gpml.Query)
		}
		q := gpml.MustCompile(src)
		cache.Put(key, q)
		return q
	}
	variants := []string{
		`MATCH (x:Account WHERE x.isBlocked = $b)`,
		`  MATCH   (x:Account  WHERE x.isBlocked = $b)`,
		"MATCH (x:Account WHERE x.isBlocked = $b) // comment",
		"match (x:Account where x.isBlocked = $b)",
	}
	first := compile(variants[0])
	for _, v := range variants[1:] {
		if compile(v) != first {
			t.Errorf("variant %q missed the cache entry of %q", v, variants[0])
		}
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != int64Len(variants)-1 {
		t.Errorf("hits/misses = %d/%d, want %d/1", st.Hits, st.Misses, int64Len(variants)-1)
	}

	g := gpml.Fig1()
	args := map[string]gpml.Value{"b": gpml.Str("no")}
	fresh, err := gpml.MustCompile(variants[0]).Eval(g, gpml.WithParams(args))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := first.Eval(g, gpml.WithParams(args))
	if err != nil {
		t.Fatal(err)
	}
	if gpml.FormatResult(cached) != gpml.FormatResult(fresh) {
		t.Error("cached plan replay diverges from fresh compile")
	}
}

func int64Len(s []string) uint64 { return uint64(len(s)) }

// Cached-plan replay across the conformance corpus: every corpus query
// evaluated through a plan that has already served a request (cache hit
// path, shared memoized automaton) must be byte-identical to a fresh
// compile. This is the "prepared statements don't change results"
// guarantee the server relies on.
func TestPlanCacheReplayMatchesFreshAcrossCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "conformance", "*.txt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no conformance cases (err=%v)", err)
	}
	sort.Strings(files)
	cache := qcache.New(64)
	for _, path := range files {
		c := parseConformanceCase(t, path)
		build, ok := conformanceGraphs[c.graph]
		if !ok {
			t.Fatalf("%s: unknown graph %q", path, c.graph)
		}
		g := build()
		key, err := normalize.QueryKey(c.query)
		if err != nil {
			t.Fatalf("%s: QueryKey: %v", path, err)
		}
		q, err := gpml.Compile(c.query, gpml.GQLMode())
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		cache.Put("gql\x00"+key, q)
		fresh, err := gpml.MustCompile(c.query, gpml.GQLMode()).Eval(g)
		if err != nil {
			t.Fatalf("%s: fresh eval: %v", path, err)
		}
		// Replay through the cache twice: the second hit exercises a plan
		// whose automaton memo and analysis are fully warm.
		for round := 0; round < 2; round++ {
			v, ok := cache.Get("gql\x00" + key)
			if !ok {
				t.Fatalf("%s: cache entry vanished", path)
			}
			res, err := v.(*gpml.Query).Eval(g)
			if err != nil {
				t.Fatalf("%s: cached eval: %v", path, err)
			}
			if gpml.FormatResult(res) != gpml.FormatResult(fresh) {
				t.Errorf("%s: cached replay (round %d) diverges from fresh compile", path, round)
			}
		}
	}
}
