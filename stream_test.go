package gpml_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"gpml"
	"gpml/internal/dataset"
)

// Goroutine/leak hygiene for the streaming pipeline: early termination —
// LIMIT hit, context cancel, iterator abandoned via Rows.Close — under
// WithParallelism must stop promptly and leak no goroutines. Run with
// -race (CI does).

// settleGoroutines polls until the goroutine count returns to the
// baseline (plus slack for runtime/test plumbing) or the deadline hits.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finalizers; pipeline shutdown needs no GC, this only quiets the runtime's own goroutines
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines did not settle: %d vs baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// leakGraph is big enough that full enumeration of the two-hop pattern
// takes real work, so early termination is observable.
func leakGraph() *gpml.Graph {
	return dataset.Random(dataset.RandomConfig{
		Accounts: 1200, AvgDegree: 4, Cities: 10, Phones: 40,
		BlockedFraction: 0.1, Seed: 21, UndirectedPhones: true,
	})
}

const leakQuery = `MATCH (x:Account)-[t:Transfer]->(y:Account)-[u:Transfer]->(z:Account)`

func TestStreamCloseAbandonedNoLeak(t *testing.T) {
	g := leakGraph()
	q := gpml.MustCompile(leakQuery)
	baseline := runtime.NumGoroutine()
	for _, par := range []int{0, 8} {
		rows, err := q.Stream(context.Background(), g, gpml.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		// Pull a few rows, then abandon the iterator mid-stream.
		for i := 0; i < 3 && rows.Next(); i++ {
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Errorf("parallelism %d: Close took %v, want prompt shutdown", par, d)
		}
		settleGoroutines(t, baseline)
	}
}

func TestStreamLimitStopsPromptlyNoLeak(t *testing.T) {
	g := leakGraph()
	q := gpml.MustCompile(leakQuery)
	baseline := runtime.NumGoroutine()
	for _, par := range []int{0, 8} {
		// Full enumeration yields hundreds of thousands of rows; LIMIT 5
		// must come back in a tiny fraction of that work.
		start := time.Now()
		res, err := q.Eval(g, gpml.WithParallelism(par), gpml.WithLimit(5))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 5 {
			t.Fatalf("parallelism %d: got %d rows, want 5", par, len(res.Rows))
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Errorf("parallelism %d: LIMIT 5 took %v", par, d)
		}
		settleGoroutines(t, baseline)
	}
}

func TestStreamContextCancelNoLeak(t *testing.T) {
	g := leakGraph()
	q := gpml.MustCompile(leakQuery)
	baseline := runtime.NumGoroutine()
	for _, par := range []int{0, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		rows, err := q.Stream(ctx, g, gpml.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("parallelism %d: no first row: %v", par, rows.Err())
		}
		cancel()
		// Iteration must end with the context's error, promptly.
		start := time.Now()
		for rows.Next() {
			if time.Since(start) > 5*time.Second {
				t.Fatalf("parallelism %d: cancellation not observed", par)
			}
		}
		if err := rows.Err(); !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: want context.Canceled, got %v", par, err)
		}
		// Collect after a recorded iteration error must surface the error,
		// not a silently truncated Result.
		if _, cerr := rows.Collect(); !errors.Is(cerr, context.Canceled) {
			t.Fatalf("parallelism %d: Collect after error: want context.Canceled, got %v", par, cerr)
		}
		rows.Close()
		settleGoroutines(t, baseline)
	}
}

func TestStreamDeadlineAbortsEval(t *testing.T) {
	// An unbounded TRAIL over this grid has an astronomically large trail
	// set (12×12 keeps the search far beyond any test-speed budget even
	// without -race; 7×7 finishes in ~170ms and would beat the deadline);
	// the deadline must abort Eval itself (the collect-all wrapper) in
	// roughly the timeout, through the engines' cancellation polls.
	g := dataset.Grid(12, 12)
	q := gpml.MustCompile(`MATCH TRAIL p = (x)-[e:Transfer]->+(y)`)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	baseline := runtime.NumGoroutine()
	start := time.Now()
	_, err := q.Eval(g, gpml.WithContext(ctx), gpml.WithParallelism(4))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("deadline abort took %v", d)
	}
	settleGoroutines(t, baseline)
}

func TestForEachStopNoLeak(t *testing.T) {
	g := leakGraph()
	q := gpml.MustCompile(leakQuery)
	baseline := runtime.NumGoroutine()
	for _, par := range []int{0, 8} {
		seen := 0
		err := q.ForEach(context.Background(), g, func(*gpml.Row) error {
			seen++
			if seen == 7 {
				return gpml.Stop
			}
			return nil
		}, gpml.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		if seen != 7 {
			t.Fatalf("parallelism %d: saw %d rows, want 7", par, seen)
		}
		settleGoroutines(t, baseline)
	}
}

// TestStreamCyclicCloseAbandonedNoLeak is the batch-pipeline variant of
// the abandonment test: a cyclic three-pattern statement on a CSR
// snapshot runs the worst-case-optimal intersection operator plus a
// batch probe, sequential and parallel; abandoning or cancelling the
// stream mid-batch must shut down promptly and leak nothing.
func TestStreamCyclicCloseAbandonedNoLeak(t *testing.T) {
	snap := gpml.Snapshot(leakGraph())
	q := gpml.MustCompile(`MATCH (a)-[:Transfer]->(b), (b)-[:Transfer]->(c), (c)-[:Transfer]->(a), (a)-[:Transfer]->(d)`)
	baseline := runtime.NumGoroutine()
	for _, par := range []int{0, 8} {
		rows, err := q.Stream(context.Background(), snap, gpml.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3 && rows.Next(); i++ {
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		settleGoroutines(t, baseline)

		ctx, cancel := context.WithCancel(context.Background())
		rows, err = q.Stream(ctx, snap, gpml.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("parallelism %d: no first row: %v", par, rows.Err())
		}
		cancel()
		for rows.Next() {
		}
		if err := rows.Err(); !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: want context.Canceled, got %v", par, err)
		}
		rows.Close()
		settleGoroutines(t, baseline)
	}
}

// TestStreamCollectMatchesEval pins the public equivalence: Stream +
// Collect is byte-identical to Eval, across engines, selectors, joins
// and parallelism.
func TestStreamCollectMatchesEval(t *testing.T) {
	g := dataset.Random(dataset.RandomConfig{Accounts: 40, AvgDegree: 2, Cities: 5, Phones: 8, BlockedFraction: 0.2, Seed: 9, UndirectedPhones: true})
	queries := []string{
		`MATCH (x:Account)-[t:Transfer]->(y:Account)`,
		`MATCH ALL SHORTEST p = (a:Account)-[:Transfer]->+(b WHERE b.isBlocked='yes')`,
		`MATCH (x:Account)-[t:Transfer]->(y:Account), (y)-[:isLocatedIn]->(c:City) WHERE x.isBlocked='no'`,
	}
	for _, src := range queries {
		q := gpml.MustCompile(src)
		for _, par := range []int{0, 4} {
			want, err := q.Eval(g, gpml.WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			rows, err := q.Stream(context.Background(), g, gpml.WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			got, err := rows.Collect()
			if err != nil {
				t.Fatal(err)
			}
			if gpml.FormatResult(got) != gpml.FormatResult(want) {
				t.Errorf("%s parallelism %d: Stream+Collect diverges from Eval", src, par)
			}
		}
	}
}

// Double-close from different goroutines: the server handler's deferred
// Close races a deadline watchdog's Close. Neither may panic, both must
// observe the completed teardown, and the pipeline must leak nothing.
func TestStreamDoubleCloseConcurrentNoLeak(t *testing.T) {
	g := leakGraph()
	q := gpml.MustCompile(leakQuery)
	baseline := runtime.NumGoroutine()
	for _, par := range []int{0, 8} {
		rows, err := q.Stream(context.Background(), g, gpml.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2 && rows.Next(); i++ {
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := rows.Close(); err != nil {
					t.Errorf("parallelism %d: Close: %v", par, err)
				}
			}()
		}
		wg.Wait()
		// And once more sequentially: still idempotent after the race.
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		if rows.Next() {
			t.Errorf("parallelism %d: Next returned true after Close", par)
		}
		if err := rows.Err(); err != nil {
			t.Errorf("parallelism %d: Err after clean Close: %v", par, err)
		}
		settleGoroutines(t, baseline)
	}
}

// Close racing a Next that is blocked inside the pipeline: Close must
// unblock it (by cancelling the stream's derived context), the
// interrupted Next must report a clean end of stream — not the
// self-inflicted cancellation — and nothing may leak.
func TestStreamCloseDuringNextNoLeak(t *testing.T) {
	g := leakGraph()
	q := gpml.MustCompile(leakQuery)
	baseline := runtime.NumGoroutine()
	for _, par := range []int{0, 8} {
		for round := 0; round < 3; round++ {
			rows, err := q.Stream(context.Background(), g, gpml.WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			drained := make(chan struct{})
			go func() {
				defer close(drained)
				for rows.Next() { // racing Close lands at an arbitrary point in here
				}
			}()
			time.Sleep(time.Duration(round) * 500 * time.Microsecond)
			if err := rows.Close(); err != nil {
				t.Fatal(err)
			}
			<-drained
			if err := rows.Err(); err != nil {
				t.Errorf("parallelism %d: Err after Close-during-Next: %v (want nil: cancellation was self-inflicted)", par, err)
			}
			settleGoroutines(t, baseline)
		}
	}
}

// A caller-owned context cancellation must still surface as an error
// through Err — only Close-induced cancellation is swallowed.
func TestStreamCallerCancelStillReportsError(t *testing.T) {
	g := leakGraph()
	q := gpml.MustCompile(leakQuery)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := q.Stream(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("expected at least one row before cancel")
	}
	cancel()
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
}

// The partition-pinned scatter variants: a quantified pattern (outside
// the vectorized batch fragment) on a hash-partitioned store with
// parallelism > 1 runs the row pipeline's partitioned scatter, where
// workers are pinned to partition arenas and a reorder emitter gathers
// per-seed results. Abandoning the stream mid-gather and cancelling the
// context mid-scatter must shut every pinned worker down promptly and
// leak nothing. Run with -race (CI does).
const partitionedLeakQuery = `MATCH (x:Account)-[:Transfer]->{1,2}(y:Account)`

func TestStreamPartitionedCloseAbandonedNoLeak(t *testing.T) {
	g := leakGraph()
	q := gpml.MustCompile(partitionedLeakQuery)
	baseline := runtime.NumGoroutine()
	for _, parts := range []int{2, 3} {
		st := gpml.NewPartitioned(g, gpml.WithPartitions(parts))
		for round := 0; round < 3; round++ {
			rows, err := q.Stream(context.Background(), st, gpml.WithParallelism(4))
			if err != nil {
				t.Fatal(err)
			}
			// Pull a few rows so every partition's workers are live, then
			// abandon the iterator mid-gather.
			for i := 0; i < 3 && rows.Next(); i++ {
			}
			if err := rows.Err(); err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			if err := rows.Close(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d > 2*time.Second {
				t.Errorf("parts=%d: Close took %v, want prompt shutdown", parts, d)
			}
			settleGoroutines(t, baseline)
		}
	}
}

func TestStreamPartitionedContextCancelNoLeak(t *testing.T) {
	g := leakGraph()
	q := gpml.MustCompile(partitionedLeakQuery)
	baseline := runtime.NumGoroutine()
	for _, parts := range []int{2, 3} {
		st := gpml.NewPartitioned(g, gpml.WithPartitions(parts))
		ctx, cancel := context.WithCancel(context.Background())
		rows, err := q.Stream(ctx, st, gpml.WithParallelism(4))
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("parts=%d: no first row: %v", parts, rows.Err())
		}
		cancel()
		start := time.Now()
		for rows.Next() {
			if time.Since(start) > 5*time.Second {
				t.Fatalf("parts=%d: cancellation not observed by pinned workers", parts)
			}
		}
		if err := rows.Err(); !errors.Is(err, context.Canceled) {
			t.Fatalf("parts=%d: want context.Canceled, got %v", parts, err)
		}
		rows.Close()
		settleGoroutines(t, baseline)
	}
}

// TestStreamPartitionedCollectMatchesEval pins the gather-order
// guarantee under early termination pressure: Stream+Collect on the
// partitioned store is byte-identical to serial Eval on the same store
// and to the CSR result, at parallelism beyond the partition count
// (workers per shard) and below it (shard stealing).
func TestStreamPartitionedCollectMatchesEval(t *testing.T) {
	g := leakGraph()
	q := gpml.MustCompile(partitionedLeakQuery)
	want, err := q.EvalStore(gpml.Snapshot(g))
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{2, 3} {
		st := gpml.NewPartitioned(g, gpml.WithPartitions(parts))
		for _, par := range []int{2, 8} {
			rows, err := q.Stream(context.Background(), st, gpml.WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			got, err := rows.Collect()
			if err != nil {
				t.Fatal(err)
			}
			if gpml.FormatResult(got) != gpml.FormatResult(want) {
				t.Errorf("parts=%d parallelism %d: partitioned Stream+Collect diverges from CSR Eval", parts, par)
			}
		}
	}
}
