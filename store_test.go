package gpml_test

import (
	"sync"
	"testing"

	"gpml"
	"gpml/internal/dataset"
)

// conformanceQueries is the cross-backend battery: every query must return
// byte-identical formatted results on the map backend, the CSR snapshot,
// and parallel evaluation over either. The set covers labeled and
// unlabeled seeds, the edge orientations over undirected multi-edges and
// self-loops, quantifiers with group aggregates, restrictors, selectors,
// unions, multi-pattern joins and postfilters.
var conformanceQueries = []string{
	`MATCH (x:Account WHERE x.isBlocked='yes')`,
	`MATCH (x)`,
	`MATCH (x:Loop)-[e]->(x)`,
	`MATCH (x)~[e]~(y)`,
	`MATCH (x)-[e]-(y)`,
	`MATCH (x:Account)-[e:Transfer]->(y:Account)`,
	`MATCH (a:Account)-[t:Transfer]->{1,3}(z:Account)`,
	`MATCH TRAIL (a:Account)-[t:Transfer]->+(z:Account WHERE z.isBlocked='yes')`,
	`MATCH ACYCLIC (a:Account)-[t:Transfer]->*(z)`,
	`MATCH ANY SHORTEST p = (a WHERE a.owner='owner0')-[:Transfer]->+(z:Account WHERE z.isBlocked='yes')`,
	`MATCH ALL SHORTEST p = (a:Account)-[:Transfer]->+(z WHERE z.isBlocked='yes')`,
	`MATCH ALL SHORTEST p = (a:Account)-[t:Transfer]->{1,4}(z:Account)`,
	`MATCH ANY SHORTEST p = (a WHERE a.owner='owner0')-[t]-{1,3}(z)`,
	`MATCH SHORTEST 2 p = (a WHERE a.owner='owner0')-[:Transfer]->+(z:Account)`,
	`MATCH (a:Account)-[:Transfer]->(m) [~[:hasPhone]~(p:Phone)]?`,
	`MATCH (p:Phone)~[:hasPhone]~(s:Account)-[t:Transfer]->(d:Account)~[:hasPhone]~(p)`,
	`MATCH (x:Account)-[t:Transfer]->(y), (y)-[u:Transfer]->(z) WHERE x.isBlocked='no'`,
	`MATCH (a:Account) [()-[t:Transfer]->()]{2,3} (c:Account) WHERE SUM(t.amount) > 4M`,
	`MATCH (x:Vip&Account)-[e]->(y)`,
	`MATCH (x:Phone|City)~[e]~(y)`,
	`MATCH (a:Account)-[e:Transfer]->(b) | (a:Account)~[e:hasPhone]~(b)`,
}

// conformanceGraph mixes the synthetic banking shape with the structural
// corner cases: undirected multi-edges, directed and undirected
// self-loops, multi-labels.
func conformanceGraph(t *testing.T) *gpml.Graph {
	t.Helper()
	b := gpml.NewBuilder()
	owners := []string{"owner0", "owner1", "owner2", "owner3", "owner4"}
	for i, o := range owners {
		blocked := "no"
		if i == 2 {
			blocked = "yes"
		}
		labels := []string{"Account"}
		if i == 0 {
			labels = []string{"Account", "Vip"}
		}
		b.Node(o[len(o)-6:]+"_n", nil) // unlabeled filler node
		b.Node("a"+string(rune('0'+i)), labels, "owner", o, "isBlocked", blocked)
	}
	b.Node("loop", []string{"Loop", "Account"}, "owner", "looper", "isBlocked", "no")
	b.Node("p0", []string{"Phone"}, "number", "000")
	b.Node("c0", []string{"City"}, "name", "Ankh-Morpork")
	amounts := []int64{2_000_000, 3_000_000, 8_000_000, 5_000_000, 9_000_000}
	for i, amt := range amounts {
		src := "a" + string(rune('0'+i))
		dst := "a" + string(rune('0'+(i+1)%5))
		b.Edge("t"+string(rune('0'+i)), src, dst, []string{"Transfer"}, "amount", amt)
	}
	b.Edge("t5", "a1", "a3", []string{"Transfer"}, "amount", int64(7_000_000))
	b.Edge("t6", "a1", "a3", []string{"Transfer"}, "amount", int64(1_000_000)) // directed multi-edge
	b.Edge("tl", "loop", "loop", []string{"Transfer"}, "amount", int64(4_000_000))
	b.UndirectedEdge("h0", "a0", "p0", []string{"hasPhone"})
	b.UndirectedEdge("h1", "a1", "p0", []string{"hasPhone"})
	b.UndirectedEdge("h2", "a1", "p0", []string{"hasPhone"}) // undirected multi-edge
	b.UndirectedEdge("hl", "p0", "p0", []string{"hasPhone"}) // undirected self-loop
	b.UndirectedEdge("n0", "a0", "c0", []string{"near"})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestStoreQueryConformance runs the battery on both backends, sequential
// and parallel, and demands byte-identical output everywhere.
func TestStoreQueryConformance(t *testing.T) {
	for _, g := range []*gpml.Graph{conformanceGraph(t), dataset.Fig1()} {
		snap := gpml.Snapshot(g)
		for _, src := range conformanceQueries {
			q, err := gpml.Compile(src)
			if err != nil {
				t.Fatalf("compile %s: %v", src, err)
			}
			ref, err := q.Eval(g)
			if err != nil {
				t.Fatalf("map eval %s: %v", src, err)
			}
			want := gpml.FormatResult(ref) + "|" + gpml.FormatBindings(ref)
			check := func(name string, opts ...gpml.Option) {
				res, err := q.Eval(g, opts...)
				if err != nil {
					t.Fatalf("%s eval %s: %v", name, src, err)
				}
				if got := gpml.FormatResult(res) + "|" + gpml.FormatBindings(res); got != want {
					t.Errorf("%s diverges on %s:\n got  %q\n want %q", name, src, got, want)
				}
			}
			check("csr", gpml.WithStore(snap))
			check("map-parallel", gpml.WithParallelism(4))
			check("csr-parallel", gpml.WithStore(snap), gpml.WithParallelism(4))
			check("csr-parallel-many", gpml.WithStore(snap), gpml.WithParallelism(16))
		}
	}
}

// TestParallelRace hammers one shared CSR snapshot from many goroutines,
// each running parallel evaluations; run with -race (the CI does).
func TestParallelRace(t *testing.T) {
	g := dataset.Random(dataset.RandomConfig{
		Accounts: 120, AvgDegree: 2, Cities: 8, Phones: 16,
		BlockedFraction: 0.1, Seed: 5, UndirectedPhones: true,
	})
	snap := gpml.Snapshot(g)
	queries := []*gpml.Query{
		gpml.MustCompile(`MATCH (x:Account WHERE x.isBlocked='yes')-[t:Transfer]->(y:Account)`),
		gpml.MustCompile(`MATCH ANY SHORTEST p = (a:Account WHERE a.owner='owner0')-[:Transfer]->+(z:Account WHERE z.isBlocked='yes')`),
		gpml.MustCompile(`MATCH (p:Phone)~[:hasPhone]~(s:Account)-[t:Transfer]->(d:Account)`),
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		res, err := q.Eval(nil, gpml.WithStore(snap))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = gpml.FormatResult(res)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i, q := range queries {
					res, err := q.Eval(nil, gpml.WithStore(snap), gpml.WithParallelism(1+(w+round)%5))
					if err != nil {
						t.Error(err)
						return
					}
					if gpml.FormatResult(res) != want[i] {
						t.Errorf("worker %d: parallel result diverges on query %d", w, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestWithStoreAPI covers the option plumbing: nil graph without a store
// errors; EvalStore and Match accept stores.
func TestWithStoreAPI(t *testing.T) {
	g := dataset.Fig1()
	q := gpml.MustCompile(`MATCH (x:Account WHERE x.isBlocked='yes')`)
	if _, err := q.Eval(nil); err == nil {
		t.Error("nil graph without WithStore must error")
	}
	snap := gpml.Snapshot(g)
	res, err := q.EvalStore(snap)
	if err != nil || len(res.Rows) != 1 {
		t.Errorf("EvalStore: %v rows=%d", err, len(res.Rows))
	}
	// Compile-time options persist into evaluation.
	q2, err := gpml.Compile(`MATCH (x:Account WHERE x.isBlocked='yes')`,
		gpml.WithStore(snap), gpml.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err = q2.Eval(nil)
	if err != nil || len(res.Rows) != 1 {
		t.Errorf("compile-time store: %v rows=%d", err, len(res.Rows))
	}
	// A graph passed explicitly to Eval beats the compile-time store.
	empty := gpml.NewGraph()
	res, err = q2.Eval(empty)
	if err != nil || len(res.Rows) != 0 {
		t.Errorf("explicit graph must win over compile-time store: %v rows=%d", err, len(res.Rows))
	}
	// An eval-time WithStore beats the explicit graph.
	res, err = q2.Eval(empty, gpml.WithStore(snap))
	if err != nil || len(res.Rows) != 1 {
		t.Errorf("eval-time store must win over the graph argument: %v rows=%d", err, len(res.Rows))
	}
}
