package gpml_test

import (
	"fmt"
	"log"

	"gpml"
)

// The basic flow: compile a GPML statement once, evaluate it against a
// property graph, and read the variable bindings.
func ExampleMatch() {
	g := gpml.Fig1() // the paper's Figure 1 banking graph
	res, err := gpml.Match(g, `MATCH (x:Account WHERE x.isBlocked='yes')`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		x, _ := row.Get("x")
		fmt.Println(x.Node, "owned by", owner(g, x.Node))
	}
	// Output:
	// a4 owned by Jay
}

func owner(g *gpml.Graph, id gpml.NodeID) string {
	return g.Node(id).Prop("owner").Display()
}

// Restrictors make unbounded path search finite: TRAIL forbids repeated
// edges (§5.1). The three duplicate-free transfer routes from Dave to
// Aretha are exactly those the paper lists.
func ExampleQuery_Eval_trail() {
	q := gpml.MustCompile(`
		MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*
		      (b WHERE b.owner='Aretha')`)
	res, err := q.Eval(gpml.Fig1())
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		p, _ := row.Get("p")
		fmt.Println(p.Path)
	}
	// Unordered output:
	// path(a6,t5,a3,t2,a2)
	// path(a6,t6,a5,t8,a1,t1,a3,t2,a2)
	// path(a6,t5,a3,t7,a5,t8,a1,t1,a3,t2,a2)
}

// Selectors keep a finite choice per endpoint pair (Fig 8).
func ExampleQuery_Eval_anyShortest() {
	q := gpml.MustCompile(`
		MATCH ANY SHORTEST p = (a WHERE a.owner='Dave')-[t:Transfer]->*
		      (b WHERE b.owner='Aretha')`)
	res, err := q.Eval(gpml.Fig1())
	if err != nil {
		log.Fatal(err)
	}
	p, _ := res.Rows[0].Get("p")
	fmt.Println(p.Path)
	// Output:
	// path(a6,t5,a3,t2,a2)
}

// The SQL/PGQ host: project matches to a table with GRAPH_TABLE COLUMNS.
func ExampleGraphTable() {
	cols, err := gpml.ParseColumns("x.owner AS A, y.owner AS B, COUNT(e) AS hops")
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := gpml.GraphTable(gpml.Fig1(), `
		MATCH ANY SHORTEST (x:Account WHERE x.owner='Dave')-[e:Transfer]->+
		      (y:Account WHERE y.owner='Jay')`, cols)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tbl.String())
	// Output:
	// A    | B   | hops
	// ---- | --- | ----
	// Dave | Jay | 3
}

// Group variables accumulate across quantifier iterations and aggregate in
// the postfilter (§4.4).
func ExampleMatch_groupAggregation() {
	res, err := gpml.Match(gpml.Fig1(), `
		MATCH (a:Account WHERE a.owner='Jay')
		      [()-[t:Transfer]->()]{1,4}
		      (b:Account WHERE b.owner='Aretha')
		WHERE SUM(t.amount) > 25M`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		t, _ := row.Get("t")
		fmt.Println(t)
	}
	// Output:
	// [t4,t5,t2]
}

// The overlay store serves live mutation under read traffic: writers
// batch mutations and publish them atomically, queries evaluate against
// epoch-pinned snapshots, and element indices stay stable across epochs.
func ExampleNewOverlay() {
	ov := gpml.NewOverlay(gpml.Fig1())
	q := gpml.MustCompile(`MATCH (x:Account WHERE x.isBlocked='yes')`)

	// The paper's graph has one blocked account. Pin the pre-mutation
	// epoch: it stays valid and unchanged forever.
	epoch := ov.Snapshot()
	before, err := q.EvalStore(epoch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("blocked before:", len(before.Rows))

	// Block a second account and add a fresh one, in one atomic batch.
	b := ov.Begin().
		SetNodeProp("a1", "isBlocked", gpml.Str("yes")).
		AddNode("a9", []string{"Account"}, map[string]gpml.Value{
			"owner": gpml.Str("Nia"), "isBlocked": gpml.Str("yes"),
		})
	if err := ov.Apply(b); err != nil {
		log.Fatal(err)
	}

	after, err := q.EvalStore(ov)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("blocked after:", len(after.Rows))
	// Readers holding the pre-mutation epoch are unaffected: it still
	// sees one blocked account.
	again, err := q.EvalStore(epoch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pinned epoch still:", len(again.Rows))
	// Output:
	// blocked before: 1
	// blocked after: 3
	// pinned epoch still: 1
}

func ExampleNewPartitioned() {
	// Shard the Figure 1 graph's adjacency across three partitions. The
	// interner stays global, so results are byte-identical to the map
	// and CSR backends; parallel queries scatter seed ranges to workers
	// pinned to their partition's arena.
	st := gpml.NewPartitioned(gpml.Fig1(), gpml.WithPartitions(3))
	q := gpml.MustCompile(`MATCH (x:Account WHERE x.isBlocked='yes')-[t:Transfer]->(y:Account)`)

	res, err := q.EvalStore(st, gpml.WithParallelism(3))
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		x, _ := row.Get("x")
		y, _ := row.Get("y")
		fmt.Println(x.Node, "->", y.Node)
	}
	fmt.Println("partitions:", st.NumPartitions())
	// Output:
	// a4 -> a6
	// partitions: 3
}
