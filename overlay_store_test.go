package gpml_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"gpml"
)

// Mutation helpers for the race suites: each batch adds one W-labeled
// node wired into the Fig1 graph, occasionally deleting the previous one
// and churning a property, so epochs carry adds, tombstones and
// overrides at once.
func overlayWriterBatch(ov *gpml.Overlay, i int) *gpml.Batch {
	id := gpml.NodeID(fmt.Sprintf("w%d", i))
	b := ov.Begin().
		AddNode(id, []string{"W"}, map[string]gpml.Value{"n": gpml.Int(int64(i))}).
		AddEdge(gpml.EdgeID(fmt.Sprintf("we%d", i)), id, "a1", []string{"Transfer"}, nil)
	if i%4 == 3 {
		b.DeleteEdge(gpml.EdgeID(fmt.Sprintf("we%d", i-1)))
	}
	if i%5 == 4 {
		b.SetNodeProp("a2", "isBlocked", gpml.Str("no"))
	}
	return b
}

// TestOverlayMutateWhileQuerying runs full query evaluations against an
// overlay while a writer applies batches and background compactions
// recycle the base. Readers assert epoch monotonicity: the count of
// W-labeled nodes only ever grows, so any torn or stale-pointer read
// shows up as a regression. Meaningful under -race.
func TestOverlayMutateWhileQuerying(t *testing.T) {
	ov := gpml.NewOverlay(gpml.Fig1(), gpml.WithCompactThreshold(24))
	q := gpml.MustCompile(`MATCH (x:W)`)
	qPath := gpml.MustCompile(`MATCH (x:W)-[:Transfer]->(y:Account WHERE y.owner='Mike')`)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := q.EvalStore(ov)
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Rows) < last {
					t.Errorf("W count went backwards: %d after %d", len(res.Rows), last)
					return
				}
				last = len(res.Rows)
				if _, err := qPath.EvalStore(ov); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 300; i++ {
		if err := ov.Apply(overlayWriterBatch(ov, i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	ov.Wait()
	if got := ov.CountNodesWithLabel("W"); got != 300 {
		t.Fatalf("final W count = %d, want 300", got)
	}
}

// TestOverlayEpochPinnedAcrossCompaction pins an epoch, evaluates on it
// while later batches push the overlay through background compactions,
// and checks the pinned epoch keeps answering with byte-identical
// results throughout — including after its delta has been folded away
// beneath it.
func TestOverlayEpochPinnedAcrossCompaction(t *testing.T) {
	ov := gpml.NewOverlay(gpml.Fig1(), gpml.WithCompactThreshold(16))
	for i := 0; i < 10; i++ {
		if err := ov.Apply(overlayWriterBatch(ov, i)); err != nil {
			t.Fatal(err)
		}
	}
	epoch := ov.Snapshot()
	q := gpml.MustCompile(`MATCH (x:W)-[t:Transfer]->(y)`)
	baseline, err := q.EvalStore(epoch)
	if err != nil {
		t.Fatal(err)
	}
	want := gpml.FormatResult(baseline)

	// Push well past the compaction threshold; evaluations on the pinned
	// epoch race the compactor's publish of rebased epochs.
	for i := 10; i < 80; i++ {
		if err := ov.Apply(overlayWriterBatch(ov, i)); err != nil {
			t.Fatal(err)
		}
		if i%8 == 0 {
			res, err := q.EvalStore(epoch)
			if err != nil {
				t.Fatal(err)
			}
			if got := gpml.FormatResult(res); got != want {
				t.Fatalf("pinned epoch drifted mid-stream:\ngot:\n%s\nwant:\n%s", got, want)
			}
		}
	}
	ov.Wait() // drain compactions
	res, err := q.EvalStore(epoch)
	if err != nil {
		t.Fatal(err)
	}
	if got := gpml.FormatResult(res); got != want {
		t.Fatalf("pinned epoch drifted after compaction:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// The live overlay moved on.
	live, err := q.EvalStore(ov)
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Rows) <= len(baseline.Rows) {
		t.Fatalf("live overlay has %d rows, want more than the pinned %d", len(live.Rows), len(baseline.Rows))
	}
}

// TestOverlayRowsCloseRacingCompaction opens streams against the live
// overlay (each pins the then-current epoch), drains them partially, and
// closes them while a writer drives compactions underneath. Run under
// -race this exercises Rows.Close against the compactor's epoch swaps.
func TestOverlayRowsCloseRacingCompaction(t *testing.T) {
	ov := gpml.NewOverlay(gpml.Fig1(), gpml.WithCompactThreshold(16))
	q := gpml.MustCompile(`MATCH (x:W)-[t:Transfer]->(y:Account)`)
	for i := 0; i < 12; i++ {
		if err := ov.Apply(overlayWriterBatch(ov, i)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 12; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := ov.Apply(overlayWriterBatch(ov, i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for round := 0; round < 60; round++ {
		rows, err := q.Stream(context.Background(), ov)
		if err != nil {
			t.Fatal(err)
		}
		// Drain one row (the pinned epoch always has some) and abandon
		// the rest mid-enumeration.
		if !rows.Next() {
			t.Fatalf("round %d: no rows: %v", round, rows.Err())
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	ov.Wait()

	// A stream left open across an explicit synchronous compaction keeps
	// serving its pinned epoch.
	rows, err := q.Stream(context.Background(), ov)
	if err != nil {
		t.Fatal(err)
	}
	before := ov.Snapshot().Seq()
	if err := ov.Apply(overlayWriterBatch(ov, 100000)); err != nil {
		t.Fatal(err)
	}
	ov.Compact()
	if ov.Snapshot().Seq() <= before {
		t.Fatal("compaction did not publish a new epoch")
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("pinned stream produced no rows after compaction")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
}
