package gpml_test

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"gpml"
	"gpml/internal/dataset"
	"gpml/internal/eval"
	"gpml/internal/graph"
	"gpml/internal/pgq"
	"gpml/internal/wal"
)

// Golden-file conformance corpus: testdata/conformance/*.txt transcribes
// the paper's worked examples (§2 figures, §4 patterns, §5 restrictors
// and selectors, §6.5 multi-pattern joins). Each case is evaluated
// through BOTH host-language frontends — a GQL session (binding-table
// output) and, when the case declares a COLUMNS clause, the SQL/PGQ
// GRAPH_TABLE operator — against BOTH store backends (map graph and CSR
// snapshot), with the bind-join planner on and off, and every combination
// must reproduce the checked-in golden output byte for byte.
//
// Regenerate the goldens after an intentional output change with:
//
//	go test -run TestConformanceCorpus -update .
//
// Case file format (testdata/conformance/NAME.txt):
//
//	# free-form comment lines
//	graph: fig1                       # fig1 | cycle8 | grid4 | random1
//	columns: x.owner AS owner, ...    # optional: enables the PGQ check
//	query:
//	MATCH ...                         # possibly multiple lines
//	-- result --
//	<golden gpml.FormatResult output>
//	-- table --                       # present iff columns was given
//	<golden PGQ table rendering>

var updateGolden = flag.Bool("update", false, "regenerate golden conformance outputs")

// conformanceCase is one parsed corpus file.
type conformanceCase struct {
	path    string
	header  []string // comment + directive lines, verbatim (for -update)
	graph   string
	columns string
	query   string
	result  string
	table   string
}

// conformanceGraphs registers the graphs corpus cases may run on. Each
// call builds a fresh graph, so cases cannot leak state into each other.
var conformanceGraphs = map[string]func() *gpml.Graph{
	"fig1":   gpml.Fig1,
	"cycle8": func() *gpml.Graph { return dataset.Cycle(8) },
	"grid4":  func() *gpml.Graph { return dataset.Grid(4, 4) },
	"random1": func() *gpml.Graph {
		return dataset.Random(dataset.RandomConfig{Accounts: 30, AvgDegree: 2, Cities: 4, Phones: 6, BlockedFraction: 0.2, Seed: 1, UndirectedPhones: true})
	},
	// cyclic exercises the worst-case-optimal intersection dispatch: a
	// directed 4-cycle (Hop), a diamond (Road), and a triangle with a
	// pendant edge (Wire), each shape on its own edge label so the three
	// cyclic corpus cases stay independent. The parallel edges (h5, w5)
	// make the per-pattern edge cross product non-trivial.
	"cyclic": func() *gpml.Graph {
		b := gpml.NewBuilder()
		for _, id := range []string{"c1", "c2", "c3", "c4", "d1", "d2", "d3", "d4", "t1", "t2", "t3", "t4"} {
			b.Node(id, []string{"V"}, "name", id)
		}
		b.Edge("h1", "c1", "c2", []string{"Hop"})
		b.Edge("h2", "c2", "c3", []string{"Hop"})
		b.Edge("h3", "c3", "c4", []string{"Hop"})
		b.Edge("h4", "c4", "c1", []string{"Hop"})
		b.Edge("h5", "c1", "c2", []string{"Hop"})
		b.Edge("r1", "d1", "d2", []string{"Road"})
		b.Edge("r2", "d1", "d3", []string{"Road"})
		b.Edge("r3", "d2", "d4", []string{"Road"})
		b.Edge("r4", "d3", "d4", []string{"Road"})
		b.Edge("w1", "t1", "t2", []string{"Wire"})
		b.Edge("w2", "t2", "t3", []string{"Wire"})
		b.Edge("w3", "t3", "t1", []string{"Wire"})
		b.Edge("w4", "t3", "t4", []string{"Wire"})
		b.Edge("w5", "t1", "t2", []string{"Wire"})
		return b.MustBuild()
	},
}

func parseConformanceCase(t *testing.T, path string) *conformanceCase {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	c := &conformanceCase{path: path, graph: "fig1"}
	lines := strings.Split(string(raw), "\n")
	i := 0
	for ; i < len(lines); i++ {
		line := lines[i]
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "query:":
			c.header = append(c.header, line)
			i++
			goto queryBody
		case strings.HasPrefix(trimmed, "graph:"):
			c.graph = strings.TrimSpace(strings.TrimPrefix(trimmed, "graph:"))
		case strings.HasPrefix(trimmed, "columns:"):
			c.columns = strings.TrimSpace(strings.TrimPrefix(trimmed, "columns:"))
		case strings.HasPrefix(trimmed, "#") || trimmed == "":
			// comment / blank
		default:
			t.Fatalf("%s: unknown directive %q", path, line)
		}
		c.header = append(c.header, line)
	}
	t.Fatalf("%s: missing query: section", path)
queryBody:
	var query []string
	for ; i < len(lines) && strings.TrimSpace(lines[i]) != "-- result --"; i++ {
		query = append(query, lines[i])
	}
	c.query = strings.TrimSpace(strings.Join(query, "\n"))
	if c.query == "" {
		t.Fatalf("%s: empty query", path)
	}
	if i == len(lines) {
		if !*updateGolden {
			t.Fatalf("%s: missing '-- result --' golden section (run with -update to create it)", path)
		}
		return c
	}
	i++ // skip the separator
	var result []string
	for ; i < len(lines) && strings.TrimSpace(lines[i]) != "-- table --"; i++ {
		result = append(result, lines[i])
	}
	c.result = strings.Join(result, "\n")
	if i < len(lines) {
		// A table section follows: the result lines lost their final
		// newline to the separator.
		if c.result != "" {
			c.result += "\n"
		}
		i++
		c.table = strings.Join(lines[i:], "\n")
	}
	return c
}

// writeGolden rewrites the case file with regenerated golden sections.
func (c *conformanceCase) writeGolden(t *testing.T) {
	t.Helper()
	var b strings.Builder
	for _, line := range c.header {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	b.WriteString(c.query)
	b.WriteString("\n-- result --\n")
	b.WriteString(c.result)
	if c.columns != "" {
		b.WriteString("-- table --\n")
		b.WriteString(c.table)
	}
	if err := os.WriteFile(c.path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// overlayEquivalent rebuilds g as an Overlay whose final state is
// element-for-element and order-for-order identical to g: a CSR base
// holding a prefix of the nodes (and the longest edge prefix confined to
// them), with the remainder applied as a delta batch. A second batch adds
// and deletes a scratch subgraph and applies a no-op relabel, so the
// served epoch carries tombstones and an override record on top of live
// delta — the state compaction has to fold correctly. Conformance goldens
// must come out byte-identical on it.
func overlayEquivalent(t *testing.T, g *gpml.Graph) *gpml.Overlay {
	t.Helper()
	nodeIDs, edgeIDs := g.NodeIDs(), g.EdgeIDs()
	nPrefix := len(nodeIDs) * 2 / 3
	prefix := make(map[gpml.NodeID]bool, nPrefix)
	base := gpml.NewGraph()
	for _, id := range nodeIDs[:nPrefix] {
		n := g.Node(id)
		if err := base.AddNode(id, n.Labels, n.Props); err != nil {
			t.Fatal(err)
		}
		prefix[id] = true
	}
	addEdge := func(add func(gpml.EdgeID, gpml.NodeID, gpml.NodeID, []string, map[string]gpml.Value) error, id gpml.EdgeID) {
		e := g.Edge(id)
		if err := add(id, e.Source, e.Target, e.Labels, e.Props); err != nil {
			t.Fatal(err)
		}
	}
	ePrefix := 0
	for _, id := range edgeIDs {
		e := g.Edge(id)
		if !prefix[e.Source] || !prefix[e.Target] {
			break // the rest become delta edges, in order
		}
		if e.Direction == graph.Undirected {
			addEdge(base.AddUndirectedEdge, id)
		} else {
			addEdge(base.AddEdge, id)
		}
		ePrefix++
	}
	ov := gpml.NewOverlay(base)
	b := ov.Begin()
	for _, id := range nodeIDs[nPrefix:] {
		n := g.Node(id)
		b.AddNode(id, n.Labels, n.Props)
	}
	for _, id := range edgeIDs[ePrefix:] {
		e := g.Edge(id)
		if e.Direction == graph.Undirected {
			b.AddUndirectedEdge(id, e.Source, e.Target, e.Labels, e.Props)
		} else {
			b.AddEdge(id, e.Source, e.Target, e.Labels, e.Props)
		}
	}
	if err := ov.Apply(b); err != nil {
		t.Fatal(err)
	}
	// Scratch churn: tombstoned delta elements (the deleted scratch node
	// detaches its edge into the live graph) plus an identity relabel
	// override on a base node. Net state change: none.
	anchor := nodeIDs[0]
	if err := ov.Apply(ov.Begin().
		AddNode("__scratch", []string{"Scratch"}, nil).
		AddEdge("__scratch_e", "__scratch", anchor, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if err := ov.Apply(ov.Begin().
		DeleteNode("__scratch").
		SetNodeLabels(anchor, g.Node(anchor).Labels)); err != nil {
		t.Fatal(err)
	}
	return ov
}

// recoveredEquivalent rebuilds g as a crash-recovered durable overlay:
// the same prefix/delta/churn batch sequence as overlayEquivalent applied
// through the WAL, a checkpoint cut mid-sequence so recovery exercises
// checkpoint-load plus suffix replay, and a crash fault injected into a
// final garbage batch so the torn tail has to be repaired on reopen. The
// recovered store must reproduce every golden byte-identically.
func recoveredEquivalent(t *testing.T, g *gpml.Graph) *gpml.Overlay {
	t.Helper()
	dir := t.TempDir()
	ov, err := graph.OpenDurable(graph.DurableOptions{Dir: dir, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ov.Recover(); err != nil {
		t.Fatal(err)
	}
	nodeIDs, edgeIDs := g.NodeIDs(), g.EdgeIDs()
	nPrefix := len(nodeIDs) * 2 / 3
	b := ov.Begin()
	for _, id := range nodeIDs[:nPrefix] {
		n := g.Node(id)
		b.AddNode(id, n.Labels, n.Props)
	}
	if err := ov.Apply(b); err != nil {
		t.Fatal(err)
	}
	// Checkpoint here: recovery must stitch this durable base together
	// with the replayed batches below.
	if err := ov.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	b = ov.Begin()
	for _, id := range nodeIDs[nPrefix:] {
		n := g.Node(id)
		b.AddNode(id, n.Labels, n.Props)
	}
	for _, id := range edgeIDs {
		e := g.Edge(id)
		if e.Direction == graph.Undirected {
			b.AddUndirectedEdge(id, e.Source, e.Target, e.Labels, e.Props)
		} else {
			b.AddEdge(id, e.Source, e.Target, e.Labels, e.Props)
		}
	}
	if err := ov.Apply(b); err != nil {
		t.Fatal(err)
	}
	anchor := nodeIDs[0]
	if err := ov.Apply(ov.Begin().
		AddNode("__scratch", []string{"Scratch"}, nil).
		AddEdge("__scratch_e", "__scratch", anchor, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if err := ov.Apply(ov.Begin().
		DeleteNode("__scratch").
		SetNodeLabels(anchor, g.Node(anchor).Labels)); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: the writer dies partway through a garbage batch,
	// which therefore must not survive recovery.
	if err := ov.ArmWALFailpoint(wal.Failpoint{
		Kind:   wal.FaultKill,
		Offset: ov.DurabilityStats().WAL.Bytes + 10,
	}); err != nil {
		t.Fatal(err)
	}
	if err := ov.Apply(ov.Begin().AddNode("__lost", []string{"Lost"}, nil)); err == nil {
		t.Fatal("apply across an armed kill failpoint succeeded")
	}

	rec, err := graph.OpenDurable(graph.DurableOptions{Dir: dir, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := rec.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !stats.WALTruncated {
		t.Fatal("recovery repaired no torn tail despite the injected crash")
	}
	if rec.PinEpoch().Node("__lost") != nil {
		t.Fatal("torn batch survived recovery")
	}
	t.Cleanup(func() { rec.CloseDurable() })
	return rec
}

// gqlResult evaluates the case through the GQL frontend (catalog +
// session) on the given store.
func gqlResult(t *testing.T, c *conformanceCase, s gpml.Store, cfg eval.Config) string {
	t.Helper()
	catalog := gpml.NewCatalog()
	if err := catalog.Register("G", s); err != nil {
		t.Fatal(err)
	}
	session := gpml.NewSession(catalog)
	session.Config = cfg
	if err := session.Use("G"); err != nil {
		t.Fatal(err)
	}
	res, err := session.Match(c.query)
	if err != nil {
		t.Fatalf("%s: GQL frontend: %v", c.path, err)
	}
	return gpml.FormatResult(res)
}

// pgqResult evaluates the case through the SQL/PGQ GRAPH_TABLE frontend
// on the given store. Rows arrive in match order, which the conformance
// battery already pins down via the binding-table golden.
func pgqResult(t *testing.T, c *conformanceCase, s gpml.Store, cfg eval.Config) string {
	t.Helper()
	cols, err := gpml.ParseColumns(c.columns)
	if err != nil {
		t.Fatalf("%s: columns: %v", c.path, err)
	}
	tbl, err := pgq.GraphTable(s, c.query, cols, cfg)
	if err != nil {
		t.Fatalf("%s: PGQ frontend: %v", c.path, err)
	}
	return tbl.String()
}

// streamOpts maps an eval.Config onto public evaluation options.
func streamOpts(cfg eval.Config) []gpml.Option {
	var opts []gpml.Option
	if cfg.DisableBindJoin {
		opts = append(opts, gpml.NoBindJoin())
	}
	if cfg.DisableAutomaton {
		opts = append(opts, gpml.NoAutomaton())
	}
	if cfg.Parallelism > 1 {
		opts = append(opts, gpml.WithParallelism(cfg.Parallelism))
	}
	if cfg.DisableVectorize {
		opts = append(opts, gpml.NoVectorize())
	}
	// DisableIntersect has no public option; the streaming check then runs
	// with the default dispatch, which must match the same golden anyway.
	return opts
}

// streamResult evaluates the case through the pull-based streaming
// pipeline (Query.Stream + Rows.Collect, which restores Eval's canonical
// order), so every golden also verifies the streaming executor. It
// additionally checks that ForEach delivers exactly the same number of
// rows the collected result holds.
func streamResult(t *testing.T, c *conformanceCase, s gpml.Store, cfg eval.Config) string {
	t.Helper()
	q, err := gpml.Compile(c.query, gpml.GQLMode())
	if err != nil {
		t.Fatalf("%s: compile: %v", c.path, err)
	}
	opts := streamOpts(cfg)
	rows, err := q.Stream(context.Background(), s, opts...)
	if err != nil {
		t.Fatalf("%s: Stream: %v", c.path, err)
	}
	res, err := rows.Collect()
	if err != nil {
		t.Fatalf("%s: Collect: %v", c.path, err)
	}
	seen := 0
	if err := q.ForEach(context.Background(), s, func(*gpml.Row) error {
		seen++
		return nil
	}, opts...); err != nil {
		t.Fatalf("%s: ForEach: %v", c.path, err)
	}
	if seen != len(res.Rows) {
		t.Errorf("%s: ForEach delivered %d rows, Collect %d", c.path, seen, len(res.Rows))
	}
	return gpml.FormatResult(res)
}

func TestConformanceCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "conformance", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no conformance cases found under testdata/conformance")
	}
	sort.Strings(files)
	for _, path := range files {
		c := parseConformanceCase(t, path)
		t.Run(strings.TrimSuffix(filepath.Base(path), ".txt"), func(t *testing.T) {
			build, ok := conformanceGraphs[c.graph]
			if !ok {
				t.Fatalf("%s: unknown graph %q", path, c.graph)
			}
			g := build()
			// The overlay axis: base-only (pure CSR behind the epoch
			// machinery), base+delta (live delta with tombstones and an
			// override), and post-compaction (delta folded into a fresh
			// base with dead holes). Each must reproduce the goldens
			// byte-identically.
			ovDelta := overlayEquivalent(t, g)
			ovCompacted := overlayEquivalent(t, g)
			ovCompacted.Compact()
			stores := []struct {
				name string
				s    gpml.Store
			}{
				{"map", g},
				{"csr", gpml.Snapshot(g)},
				{"overlay-base", gpml.NewOverlay(g)},
				{"overlay-delta", ovDelta},
				{"overlay-compacted", ovCompacted},
				// The durability axis: checkpoint + WAL replay + torn-tail
				// repair after an injected crash, serving the same state.
				{"recovered", recoveredEquivalent(t, g)},
				// The partitioned axis: a degenerate single shard and a
				// count that forces cross-partition edges; the parallel
				// config below additionally exercises the partition-pinned
				// scatter/gather path on both.
				{"parts1", gpml.NewPartitioned(g, gpml.WithPartitions(1))},
				{"parts3", gpml.NewPartitioned(g, gpml.WithPartitions(3))},
			}
			configs := []struct {
				name string
				cfg  eval.Config
			}{
				{"bind-join", eval.Config{}},
				{"no-bind-join", eval.Config{DisableBindJoin: true}},
				{"parallel", eval.Config{Parallelism: 4}},
				{"no-vectorize", eval.Config{DisableVectorize: true}},
				{"no-intersect", eval.Config{DisableIntersect: true}},
			}
			if *updateGolden {
				c.result = gqlResult(t, c, g, eval.Config{})
				if c.columns != "" {
					c.table = pgqResult(t, c, g, eval.Config{})
				}
				c.writeGolden(t)
			}
			for _, st := range stores {
				for _, cf := range configs {
					if got := gqlResult(t, c, st.s, cf.cfg); got != c.result {
						t.Errorf("%s: GQL/%s/%s diverges from golden:\ngot:\n%s\nwant:\n%s",
							path, st.name, cf.name, got, c.result)
					}
					if got := streamResult(t, c, st.s, cf.cfg); got != c.result {
						t.Errorf("%s: Stream/%s/%s diverges from golden:\ngot:\n%s\nwant:\n%s",
							path, st.name, cf.name, got, c.result)
					}
					if c.columns != "" {
						if got := pgqResult(t, c, st.s, cf.cfg); got != c.table {
							t.Errorf("%s: PGQ/%s/%s diverges from golden:\ngot:\n%s\nwant:\n%s",
								path, st.name, cf.name, got, c.table)
						}
					}
				}
			}
		})
	}
}

// TestConformanceCorpusCoversJoins pins the corpus shape: the §6.5
// multi-pattern join cases must be present, so the bind-join planner is
// always exercised by the golden battery.
func TestConformanceCorpusCoversJoins(t *testing.T) {
	files, _ := filepath.Glob(filepath.Join("testdata", "conformance", "*.txt"))
	joins := 0
	for _, path := range files {
		c := parseConformanceCase(t, path)
		q, err := gpml.Compile(c.query, gpml.GQLMode())
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(q.Explain()) > 2 { // multi-pattern: per-pattern lines + join steps
			joins++
		}
	}
	if joins < 3 {
		t.Fatalf("corpus has %d multi-pattern join cases, want >= 3", joins)
	}
}
