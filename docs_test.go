package gpml_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageComments walks every Go package in the module and fails if
// one lacks a package comment (godoc synopsis). CI runs this in the docs
// job: a new package cannot land without stating its role. Generated or
// vendored trees would be skipped here if the module grew any.
func TestPackageComments(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgDirs := map[string][]string{} // dir -> go files (tests excluded)
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		pkgDirs[dir] = append(pkgDirs[dir], path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgDirs) < 10 {
		t.Fatalf("found only %d package dirs, the walk is broken", len(pkgDirs))
	}
	for dir, files := range pkgDirs {
		rel, _ := filepath.Rel(root, dir)
		documented := false
		fset := token.NewFileSet()
		for _, path := range files {
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Errorf("%s: %v", path, err)
				continue
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			t.Errorf("package %s has no package comment in any of its files", rel)
		}
	}
}
