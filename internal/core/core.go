// Package core orchestrates the full GPML pipeline of the paper's
// execution model (§6): parse → normalize → static analysis/compile →
// evaluate (lazy expansion, rigid-pattern matching, reduction,
// deduplication, selectors) → join → postfilter.
package core

import (
	"context"
	"fmt"

	"gpml/internal/ast"
	"gpml/internal/eval"
	"gpml/internal/graph"
	"gpml/internal/normalize"
	"gpml/internal/parser"
	"gpml/internal/plan"
)

// Query is a compiled GPML statement, reusable across graphs.
type Query struct {
	Source     string
	Parsed     *ast.MatchStmt
	Normalized *ast.MatchStmt
	Plan       *plan.Plan
}

// Options configures compilation.
type Options struct {
	// GQL enables GQL-host behaviour (element-reference equality with =);
	// the default is the portable common core, which matches SQL/PGQ's
	// restrictions (§4.7).
	GQL bool
}

// Compile parses, normalizes and plans a GPML statement.
func Compile(src string, opts Options) (*Query, error) {
	stmt, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	norm, err := normalize.Normalize(stmt)
	if err != nil {
		return nil, err
	}
	p, err := plan.Analyze(norm, plan.Options{AllowElementEquality: opts.GQL})
	if err != nil {
		return nil, err
	}
	return &Query{Source: src, Parsed: stmt, Normalized: norm, Plan: p}, nil
}

// Eval runs the query against a graph store (the map-backed *graph.Graph,
// a CSR snapshot, or any other Store implementation).
func (q *Query) Eval(s graph.Store, cfg eval.Config) (*eval.Result, error) {
	return q.EvalCtx(context.Background(), s, cfg)
}

// EvalCtx is Eval under a context: evaluation is the streaming pipeline
// drained to completion (then canonically ordered), and a cancelled
// context or an expired deadline aborts the in-flight search promptly.
func (q *Query) EvalCtx(ctx context.Context, s graph.Store, cfg eval.Config) (*eval.Result, error) {
	cur, err := q.Stream(ctx, s, cfg)
	if err != nil {
		return nil, err
	}
	return eval.Collect(cur, q.Plan)
}

// Stream starts the pull-based streaming pipeline for the query: rows
// arrive as the engines produce them (deterministic pipeline order — the
// canonical sort is the one stage Stream skips). The cursor must be
// closed.
func (q *Query) Stream(ctx context.Context, s graph.Store, cfg eval.Config) (eval.Cursor, error) {
	if s == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	return eval.StreamPlan(ctx, s, q.Plan, cfg)
}

// Columns returns the output column order (named variables by first
// appearance, including path variables).
func (q *Query) Columns() []string { return q.Plan.Columns }
