package core_test

import (
	"sync"
	"testing"

	"gpml/internal/core"
	"gpml/internal/dataset"
	"gpml/internal/eval"
)

// A compiled query is immutable and safe for concurrent evaluation (each
// Eval builds its own machine state). Run with -race.
func TestConcurrentEvaluation(t *testing.T) {
	g := dataset.Fig1()
	q, err := core.Compile(`
		MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*
		      (b WHERE b.owner='Aretha')`, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		rounds  = 20
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	counts := make(chan int, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				res, err := q.Eval(g, eval.Config{})
				if err != nil {
					errs <- err
					return
				}
				counts <- len(res.Rows)
			}
		}()
	}
	wg.Wait()
	close(errs)
	close(counts)
	for err := range errs {
		t.Fatal(err)
	}
	for n := range counts {
		if n != 3 {
			t.Fatalf("concurrent evaluation returned %d rows, want 3", n)
		}
	}
}

// Different graphs evaluated concurrently with the same query.
func TestConcurrentEvaluationAcrossGraphs(t *testing.T) {
	q, err := core.Compile(`MATCH (x:Account)`, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g1 := dataset.Fig1()
	g2 := dataset.Chain(30)
	var wg sync.WaitGroup
	fail := make(chan string, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			res, err := q.Eval(g1, eval.Config{})
			if err != nil || len(res.Rows) != 6 {
				fail <- "fig1"
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			res, err := q.Eval(g2, eval.Config{})
			if err != nil || len(res.Rows) != 30 {
				fail <- "chain"
				return
			}
		}
	}()
	wg.Wait()
	close(fail)
	for f := range fail {
		t.Fatalf("concurrent evaluation on %s failed", f)
	}
}

// Nil-graph and accessor error paths.
func TestCoreAccessors(t *testing.T) {
	q, err := core.Compile(`MATCH p = (x:Account)`, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Eval(nil, eval.Config{}); err == nil {
		t.Errorf("nil graph must error")
	}
	cols := q.Columns()
	if len(cols) != 2 || cols[0] != "p" || cols[1] != "x" {
		t.Errorf("columns: %v", cols)
	}
	if q.Source == "" || q.Parsed == nil || q.Normalized == nil || q.Plan == nil {
		t.Errorf("query introspection fields missing")
	}
}
