package core_test

import (
	"strings"
	"testing"

	"gpml/internal/binding"
	"gpml/internal/core"
	"gpml/internal/dataset"
	"gpml/internal/eval"
)

// The §6 running example:
//
//	MATCH TRAIL (a WHERE a.owner='Jay')
//	      [-[b:Transfer WHERE b.amount>5M]->]+
//	      (a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]
//
// After reduction and deduplication the result is exactly two reduced path
// bindings (§6.5): the 4-transfer loop and the 7-transfer loop through Jay's
// account, each ending with li4 to c2.
const section6Query = `
	MATCH TRAIL (a WHERE a.owner='Jay')
	      [-[b:Transfer WHERE b.amount>5M]->]+
	      (a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]`

// matchReduced returns the per-pattern reduced bindings of a single-pattern
// query (the §6 output object).
func matchReduced(t *testing.T, src string) []*binding.Reduced {
	t.Helper()
	q, err := core.Compile(src, core.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := q.Eval(dataset.Fig1(), eval.Config{})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	out := make([]*binding.Reduced, 0, len(res.Rows))
	for _, row := range res.Rows {
		if len(row.Bindings) != 1 {
			t.Fatalf("expected single-pattern rows, got %d bindings", len(row.Bindings))
		}
		out = append(out, row.Bindings[0])
	}
	return out
}

func reducedStrings(rs []*binding.Reduced) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = strings.Join(r.HeaderRow(), " ") + " / " + strings.Join(r.ValueRow(), " ")
	}
	return out
}

func TestSection6_RunningExampleTwoBindings(t *testing.T) {
	got := reducedStrings(matchReduced(t, section6Query))
	want := sorted(
		"a − b □ b □ b □ b a − c / a4 t4 a6 t5 a3 t2 a2 t3 a4 li4 c2",
		"a − b □ b □ b □ b □ b □ b □ b a − c / a4 t4 a6 t5 a3 t7 a5 t8 a1 t1 a3 t2 a2 t3 a4 li4 c2",
	)
	// The engine's exact header layout for anonymous markers is checked in
	// detail below; here compare the value rows, which the paper fixes.
	var gotVals, wantVals []string
	for _, s := range got {
		gotVals = append(gotVals, strings.SplitN(s, " / ", 2)[1])
	}
	for _, s := range want {
		wantVals = append(wantVals, strings.SplitN(s, " / ", 2)[1])
	}
	gotVals = sorted(gotVals...)
	wantVals = sorted(wantVals...)
	if !equalStrings(gotVals, wantVals) {
		t.Errorf("§6 running example values:\n got  %v\n want %v", gotVals, wantVals)
	}
}

// The paper's reduced tables are exactly:
//
//	a b □ b □ b □ b a − c
//	a4 t4 a6 t5 a3 t2 a2 t3 a4 li4 c2
//
//	a b □ b □ b □ b □ b □ b □ b a − c
//	a4 t4 a6 t5 a3 t7 a5 t8 a1 t1 a3 t2 a2 t3 a4 li4 c2
func TestSection6_ReducedBindingShape(t *testing.T) {
	rs := matchReduced(t, section6Query)
	if len(rs) != 2 {
		t.Fatalf("expected exactly 2 deduplicated reduced bindings (paper §6.5), got %d:\n%s",
			len(rs), binding.FormatTable(rs))
	}
	byLen := map[int]*binding.Reduced{}
	for _, r := range rs {
		byLen[r.Path.Len()] = r
	}
	short, long := byLen[5], byLen[8]
	if short == nil || long == nil {
		t.Fatalf("expected path lengths 5 and 8 (4 and 7 transfers + isLocatedIn), got %v", reducedStrings(rs))
	}
	wantShort := "a b □ b □ b □ b a − c"
	if h := strings.Join(short.HeaderRow(), " "); h != wantShort {
		t.Errorf("short binding header:\n got  %s\n want %s", h, wantShort)
	}
	wantShortVals := "a4 t4 a6 t5 a3 t2 a2 t3 a4 li4 c2"
	if v := strings.Join(short.ValueRow(), " "); v != wantShortVals {
		t.Errorf("short binding values:\n got  %s\n want %s", v, wantShortVals)
	}
	wantLong := "a b □ b □ b □ b □ b □ b □ b a − c"
	if h := strings.Join(long.HeaderRow(), " "); h != wantLong {
		t.Errorf("long binding header:\n got  %s\n want %s", h, wantLong)
	}
	wantLongVals := "a4 t4 a6 t5 a3 t7 a5 t8 a1 t1 a3 t2 a2 t3 a4 li4 c2"
	if v := strings.Join(long.ValueRow(), " "); v != wantLongVals {
		t.Errorf("long binding values:\n got  %s\n want %s", v, wantLongVals)
	}
}

// §6.5 "Using selectors": replacing TRAIL with ALL SHORTEST keeps only the
// shortest reduced binding for the (a4, c2) endpoint pair.
func TestSection6_AllShortestVariant(t *testing.T) {
	rs := matchReduced(t, `
		MATCH ALL SHORTEST (a WHERE a.owner='Jay')
		      [-[b:Transfer WHERE b.amount>5M]->]+
		      (a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]`)
	if len(rs) != 1 {
		t.Fatalf("ALL SHORTEST variant: expected 1 binding, got %d:\n%s", len(rs), binding.FormatTable(rs))
	}
	want := "a4 t4 a6 t5 a3 t2 a2 t3 a4 li4 c2"
	if v := strings.Join(rs[0].ValueRow(), " "); v != want {
		t.Errorf("ALL SHORTEST binding:\n got  %s\n want %s", v, want)
	}
}

// §6.5 "Path pattern union vs multiset alternation": with |+| the City and
// Country branches stay distinct, keeping four reduced path bindings.
func TestSection6_MultisetAlternationVariant(t *testing.T) {
	rs := matchReduced(t, `
		MATCH TRAIL (a WHERE a.owner='Jay')
		      [-[b:Transfer WHERE b.amount>5M]->]+
		      (a) [-[:isLocatedIn]->(c:City) |+| -[:isLocatedIn]->(c:Country)]`)
	if len(rs) != 4 {
		t.Fatalf("multiset alternation variant: expected 4 bindings, got %d:\n%s", len(rs), binding.FormatTable(rs))
	}
}

// §6.5: the running query is equivalent to folding the union into a label
// disjunction.
func TestSection6_LabelDisjunctionEquivalence(t *testing.T) {
	a := matchReduced(t, section6Query)
	b := matchReduced(t, `
		MATCH TRAIL (a WHERE a.owner='Jay')
		      [-[b:Transfer WHERE b.amount>5M]->]+
		      (a)-[:isLocatedIn]->(c:City|Country)`)
	av, bv := reducedStrings(a), reducedStrings(b)
	// Compare value rows (header markers for the isLocatedIn edge differ
	// in annotation provenance but reduce identically).
	if len(av) != len(bv) {
		t.Fatalf("expected equivalent results, got %d vs %d bindings", len(av), len(bv))
	}
	avs, bvs := sorted(av...), sorted(bv...)
	if !equalStrings(avs, bvs) {
		t.Errorf("union vs label disjunction:\n got  %v\n want %v", avs, bvs)
	}
}

// §6.4: the first node-edge-node part of π4,City has exactly one match
// (Jay's outgoing big transfer t4), and the edge (a6,t6,a5) fails the
// WHERE condition everywhere.
func TestSection64_PartMatching(t *testing.T) {
	rs := matchReduced(t, `
		MATCH (a WHERE a.owner='Jay')-[b1:Transfer WHERE b1.amount>5M]->(x)`)
	if len(rs) != 1 {
		t.Fatalf("first part: expected 1 match, got %d", len(rs))
	}
	if v := strings.Join(rs[0].ValueRow(), " "); v != "a4 t4 a6" {
		t.Errorf("first part match: got %q, want %q", v, "a4 t4 a6")
	}

	all := matchReduced(t, `MATCH (x)-[b:Transfer WHERE b.amount>5M]->(y)`)
	if len(all) != 7 {
		t.Fatalf("big transfers: expected 7 (all but t6), got %d", len(all))
	}
	for _, r := range all {
		for i := range r.Cols {
			if r.ColID(i) == "t6" {
				t.Errorf("t6 (amount 4M) must fail the WHERE condition")
			}
		}
	}
}
