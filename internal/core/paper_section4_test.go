package core_test

import (
	"strings"
	"testing"

	"gpml/internal/binding"
	"gpml/internal/core"
	"gpml/internal/dataset"
	"gpml/internal/eval"
	"gpml/internal/graph"
)

// run compiles and evaluates a query on Fig 1.
func run(t *testing.T, src string) *eval.Result {
	t.Helper()
	q, err := core.Compile(src, core.Options{})
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	res, err := q.Eval(dataset.Fig1(), eval.Config{})
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return res
}

// varIDs extracts the sorted element ids bound to a variable.
func varIDs(t *testing.T, res *eval.Result, name string) []string {
	t.Helper()
	var out []string
	for _, row := range res.Rows {
		b, ok := row.Get(name)
		if !ok {
			t.Fatalf("no binding for %q", name)
		}
		switch b.Kind {
		case eval.BoundNode:
			out = append(out, string(b.Node))
		case eval.BoundEdge:
			out = append(out, string(b.Edge))
		case eval.BoundNull:
			out = append(out, "NULL")
		default:
			t.Fatalf("unexpected binding kind for %q: %v", name, b)
		}
	}
	return sorted(out...)
}

// §4.1: node patterns.
func TestSection41_NodePatterns(t *testing.T) {
	if got := len(run(t, `MATCH (x)`).Rows); got != 14 {
		t.Errorf("MATCH (x): want all 14 nodes, got %d", got)
	}
	if got := varIDs(t, run(t, `MATCH (x:Account)`), "x"); !equalStrings(got, sorted("a1", "a2", "a3", "a4", "a5", "a6")) {
		t.Errorf("MATCH (x:Account): got %v", got)
	}
	if got := len(run(t, `MATCH (x:Account|IP)`).Rows); got != 8 {
		t.Errorf("MATCH (x:Account|IP): want 8, got %d", got)
	}
	// Every Fig 1 node is labelled, so :!% matches nothing here.
	if got := len(run(t, `MATCH (x:!%)`).Rows); got != 0 {
		t.Errorf("MATCH (x:!%%): want 0 on Fig 1, got %d", got)
	}
	inline := varIDs(t, run(t, `MATCH (x:Account WHERE x.isBlocked='no')`), "x")
	post := varIDs(t, run(t, `MATCH (x:Account) WHERE x.isBlocked='no'`), "x")
	want := sorted("a1", "a2", "a3", "a5", "a6")
	if !equalStrings(inline, want) || !equalStrings(post, want) {
		t.Errorf("unblocked accounts: inline %v, postfilter %v, want %v", inline, post, want)
	}
	// Label conjunction and negation: c2 is City & Country; c1 Country only.
	if got := varIDs(t, run(t, `MATCH (x:City&Country)`), "x"); !equalStrings(got, []string{"c2"}) {
		t.Errorf("City&Country: got %v", got)
	}
	if got := varIDs(t, run(t, `MATCH (x:Country&!City)`), "x"); !equalStrings(got, []string{"c1"}) {
		t.Errorf("Country&!City: got %v", got)
	}
}

// §4.1: edge patterns as standalone queries.
func TestSection41_EdgePatterns(t *testing.T) {
	// All directed edges: 8 transfers + 6 isLocatedIn + 2 signInWithIP.
	if got := len(run(t, `MATCH -[e]->`).Rows); got != 16 {
		t.Errorf("MATCH -[e]->: want 16, got %d", got)
	}
	// All undirected edges: 6 hasPhone, each traversed from both endpoints
	// (the §4.2 doubling rule applies to every orientation-ambiguous
	// traversal, so the anonymous endpoints distinguish the two bindings).
	if got := len(run(t, `MATCH ~[e]~`).Rows); got != 12 {
		t.Errorf("MATCH ~[e]~: want 12, got %d", got)
	}
	// The distinct edges remain the 6 hasPhone edges.
	undirected := map[string]bool{}
	for _, id := range varIDs(t, run(t, `MATCH ~[e]~`), "e") {
		undirected[id] = true
	}
	if len(undirected) != 6 {
		t.Errorf("MATCH ~[e]~: want 6 distinct edges, got %d", len(undirected))
	}
	// Transfers above 5M: all but t6.
	got := varIDs(t, run(t, `MATCH -[e:Transfer WHERE e.amount>5M]->`), "e")
	if !equalStrings(got, sorted("t1", "t2", "t3", "t4", "t5", "t7", "t8")) {
		t.Errorf("big transfers: got %v", got)
	}
}

// §4.2: "(x)-[e]-(y)" returns each edge twice, once per traversal
// direction (directed self-loops excluded from Fig 1, so exactly 2×22).
func TestSection42_UndirectedTraversalDoubling(t *testing.T) {
	if got := len(run(t, `MATCH (x)-[e]-(y)`).Rows); got != 44 {
		t.Errorf("MATCH (x)-[e]-(y): want 44 (each edge in both directions), got %d", got)
	}
	if got := len(run(t, `MATCH (x)-[e]->(y)`).Rows); got != 16 {
		t.Errorf("MATCH (x)-[e]->(y): want 16, got %d", got)
	}
}

// §4.2: incoming transfers of Aretha.
func TestSection42_ArethaIncoming(t *testing.T) {
	res := run(t, `MATCH (y WHERE y.owner='Aretha')<-[e:Transfer]-(x)`)
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(res.Rows))
	}
	if got := varIDs(t, res, "x"); !equalStrings(got, []string{"a3"}) {
		t.Errorf("source: got %v, want [a3]", got)
	}
	if got := varIDs(t, res, "e"); !equalStrings(got, []string{"t2"}) {
		t.Errorf("edge: got %v, want [t2]", got)
	}
}

// §4.2: directed paths of length two include the paper's listed binding
// s↦a1, e↦t1, m↦a3, f↦t2, t↦a2; the total agrees with brute force.
func TestSection42_LengthTwoPaths(t *testing.T) {
	res := run(t, `MATCH (s)-[e]->(m)-[f]->(t)`)
	found := false
	for _, row := range res.Rows {
		s, _ := row.Get("s")
		e, _ := row.Get("e")
		m, _ := row.Get("m")
		f, _ := row.Get("f")
		tt, _ := row.Get("t")
		if s.Node == "a1" && e.Edge == "t1" && m.Node == "a3" && f.Edge == "t2" && tt.Node == "a2" {
			found = true
		}
	}
	if !found {
		t.Errorf("paper's example binding a1-t1->a3-t2->a2 not found")
	}
	want := bruteForceTwoStep(dataset.Fig1())
	if len(res.Rows) != want {
		t.Errorf("length-2 directed paths: got %d, brute force says %d", len(res.Rows), want)
	}
}

// bruteForceTwoStep counts directed length-2 paths independently.
func bruteForceTwoStep(g *graph.Graph) int {
	count := 0
	g.Edges(func(e *graph.Edge) bool {
		if e.Direction != graph.Directed {
			return true
		}
		g.Edges(func(f *graph.Edge) bool {
			if f.Direction == graph.Directed && e.Target == f.Source {
				count++
			}
			return true
		})
		return true
	})
	return count
}

// §4.2: the blocked-phone prefix query is empty on Fig 1 (no phone is
// blocked), and its unblocked variant matches every substantial transfer
// out of a phone-connected account.
func TestSection42_PhoneTransferQuery(t *testing.T) {
	blocked := run(t, `
		MATCH (p:Phone WHERE p.isBlocked='yes')
		      ~[e:hasPhone]~(a1:Account)
		      -[t:Transfer WHERE t.amount>1M]->(a2)`)
	if len(blocked.Rows) != 0 {
		t.Errorf("no Fig 1 phone is blocked; want 0 rows, got %d", len(blocked.Rows))
	}
	open := run(t, `
		MATCH (p:Phone WHERE p.isBlocked='no')
		      ~[e:hasPhone]~(a1:Account)
		      -[t:Transfer WHERE t.amount>1M]->(a2)`)
	// Phone-account pairs: p1~a1, p1~a5, p2~a3, p2~a2, p3~a6, p4~a4; out
	// transfers: a1:1, a5:1, a3:2, a2:1, a6:2, a4:1 → 8 rows.
	if len(open.Rows) != 8 {
		t.Errorf("unblocked variant: want 8 rows, got %d", len(open.Rows))
	}
}

// §4.2: transfer triangles via repeated variables (implicit equi-join).
func TestSection42_Triangles(t *testing.T) {
	res := run(t, `MATCH (s)-[:Transfer]->(s1)-[:Transfer]->(s2)-[:Transfer]->(s)`)
	if got := varIDs(t, res, "s"); !equalStrings(got, sorted("a1", "a3", "a5")) {
		t.Errorf("triangle starts: got %v, want the a1-a3-a5 cycle in each rotation", got)
	}
}

// §4.2: the path variable binds whole length-3 cyclic paths.
func TestSection42_PathVariable(t *testing.T) {
	res := run(t, `MATCH p = (s)-[:Transfer]->(s1)-[:Transfer]->(s2)-[:Transfer]->(s)`)
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 rotations, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		b, ok := row.Get("p")
		if !ok || b.Kind != eval.BoundPath {
			t.Fatalf("p not bound to a path")
		}
		if b.Path.Len() != 3 || b.Path.First() != b.Path.Last() {
			t.Errorf("expected 3-cycles, got %s", b.Path)
		}
	}
}

// §4.2: same-phone transfers return exactly the two bindings the paper
// lists: (p1, a5, t8, a1) and (p2, a3, t2, a2).
func TestSection42_SamePhoneTransfers(t *testing.T) {
	res := run(t, `
		MATCH (p:Phone)~[:hasPhone]~(s:Account)-[t:Transfer]->
		      (d:Account)~[:hasPhone]~(p)`)
	if len(res.Rows) != 2 {
		t.Fatalf("want exactly 2 bindings (paper §4.2), got %d", len(res.Rows))
	}
	var got []string
	for _, row := range res.Rows {
		p, _ := row.Get("p")
		s, _ := row.Get("s")
		tr, _ := row.Get("t")
		d, _ := row.Get("d")
		got = append(got, strings.Join([]string{string(p.Node), string(s.Node), string(tr.Edge), string(d.Node)}, ","))
	}
	want := sorted("p1,a5,t8,a1", "p2,a3,t2,a2")
	if !equalStrings(sorted(got...), want) {
		t.Errorf("same-phone transfers:\n got  %v\n want %v", got, want)
	}
}

// §4.3: graph patterns join path patterns on shared variables.
func TestSection43_GraphPatternJoin(t *testing.T) {
	split := run(t, `
		MATCH (p:Phone WHERE p.isBlocked='no')~[:hasPhone]~(s:Account),
		      (s)-[t:Transfer WHERE t.amount>1M]->()`)
	if len(split.Rows) != 8 {
		t.Errorf("split form: want 8 rows, got %d", len(split.Rows))
	}
	triple := run(t, `
		MATCH (s:Account)-[:signInWithIP]->(),
		      (s)-[t:Transfer WHERE t.amount>1M]->(),
		      (s)~[:hasPhone]~(p:Phone WHERE p.isBlocked='yes')`)
	if len(triple.Rows) != 0 {
		t.Errorf("three-way pattern with blocked phone: want 0 on Fig 1, got %d", len(triple.Rows))
	}
	tripleOpen := run(t, `
		MATCH (s:Account)-[:signInWithIP]->(),
		      (s)-[t:Transfer WHERE t.amount>1M]->(),
		      (s)~[:hasPhone]~(p:Phone)`)
	// Accounts with IP sign-ins: a1 (ip1), a5 (ip2); both have phone p1;
	// out-transfers: a1: t1; a5: t8 → 2 rows.
	if len(tripleOpen.Rows) != 2 {
		t.Errorf("three-way pattern: want 2 rows, got %d", len(tripleOpen.Rows))
	}
}

// Figure 4 (§3): fraudulent accounts in Ankh-Morpork. Unblocked account x
// and blocked account y, both located in Ankh-Morpork, with a chain of
// transfers x→…→y. With TRAIL bounding the chain, the owner pairs are
// (Aretha, Jay) and (Dave, Jay).
func TestFig4_AnkhMorporkFraud(t *testing.T) {
	res := run(t, `
		MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->
		      (g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-
		      (y:Account WHERE y.isBlocked='yes'),
		      TRAIL (x)-[:Transfer]->+(y)`)
	pairs := map[string]bool{}
	for _, row := range res.Rows {
		x, _ := row.Get("x")
		y, _ := row.Get("y")
		pairs[string(x.Node)+"→"+string(y.Node)] = true
	}
	if !pairs["a2→a4"] || !pairs["a6→a4"] || len(pairs) != 2 {
		t.Errorf("Fig 4 pairs: got %v, want {a2→a4, a6→a4}", pairs)
	}
	// Trail multiplicity: one trail a2→a4, three trails a6→a4 through the
	// transfer cycle.
	if len(res.Rows) != 4 {
		t.Errorf("Fig 4 rows: want 4 (1 + 3 trails), got %d", len(res.Rows))
	}
}

// §4.4: bounded quantifiers on edge and parenthesized patterns.
func TestSection44_Quantifiers(t *testing.T) {
	res := run(t, `MATCH (a:Account)-[:Transfer]->{2,5}(b:Account)`)
	want := bruteForceTransferChains(dataset.Fig1(), 2, 5, 0)
	if len(res.Rows) != want {
		t.Errorf("transfer chains {2,5}: got %d, brute force says %d", len(res.Rows), want)
	}

	// Same-owner iterations: Fig 1 has no self transfers, so empty.
	same := run(t, `MATCH [(a:Account)-[:Transfer]->(b:Account) WHERE a.owner=b.owner]{2,5}`)
	if len(same.Rows) != 0 {
		t.Errorf("same-owner chains: want 0, got %d", len(same.Rows))
	}

	// Group aggregation: chains of 2..5 large transfers with total > 10M.
	agg := run(t, `
		MATCH (a:Account)
		      [()-[t:Transfer]->() WHERE t.amount>1M]{2,5}
		      (b:Account)
		WHERE SUM(t.amount)>10M`)
	wantAgg := bruteForceTransferChains(dataset.Fig1(), 2, 5, 10_000_000)
	if len(agg.Rows) != wantAgg {
		t.Errorf("SUM-filtered chains: got %d, brute force says %d", len(agg.Rows), wantAgg)
	}
	if len(agg.Rows) == 0 {
		t.Fatalf("expected some qualifying chains")
	}
}

// bruteForceTransferChains counts directed Transfer walks with length in
// [min,max] whose total amount exceeds minSum (0 = no constraint; every
// Fig 1 transfer exceeds 1M so the t.amount>1M prefilter is vacuous).
func bruteForceTransferChains(g *graph.Graph, min, max int, minSum int64) int {
	count := 0
	var walk func(at graph.NodeID, depth int, sum int64)
	walk = func(at graph.NodeID, depth int, sum int64) {
		if depth >= min && depth <= max && (minSum == 0 || sum > minSum) {
			count++
		}
		if depth == max {
			return
		}
		g.Incident(at, func(e *graph.Edge) bool {
			if e.Direction == graph.Directed && e.Source == at && e.HasLabel("Transfer") {
				amt, _ := e.Prop("amount").AsInt()
				walk(e.Target, depth+1, sum+amt)
			}
			return true
		})
	}
	g.Nodes(func(n *graph.Node) bool {
		if n.HasLabel("Account") {
			walk(n.ID, 0, 0)
		}
		return true
	})
	return count
}

// §4.5: path pattern union deduplicates; multiset alternation does not.
func TestSection45_UnionVsMultiset(t *testing.T) {
	union := run(t, `MATCH (c:City) | (c:Country)`)
	if got := varIDs(t, union, "c"); !equalStrings(got, sorted("c1", "c2")) {
		t.Errorf("path pattern union: got %v, want one c1 and one c2", got)
	}
	multi := run(t, `MATCH (c:City) |+| (c:Country)`)
	if got := varIDs(t, multi, "c"); !equalStrings(got, sorted("c1", "c2", "c2")) {
		t.Errorf("multiset alternation: got %v, want c1 once and c2 twice", got)
	}
}

// §4.5: overlapping quantifiers deduplicate under union: ->{1,5} | ->{3,7}
// is equivalent to ->{1,7}.
func TestSection45_OverlappingQuantifiers(t *testing.T) {
	lhs := matchReduced(t, `MATCH ->{1,5} | ->{3,7}`)
	rhs := matchReduced(t, `MATCH ->{1,7}`)
	if len(lhs) != len(rhs) {
		t.Fatalf("union of overlapping quantifiers: %d vs %d bindings", len(lhs), len(rhs))
	}
	lk := map[string]bool{}
	for _, r := range lhs {
		lk[strings.Join(r.ValueRow(), " ")] = true
	}
	for _, r := range rhs {
		if !lk[strings.Join(r.ValueRow(), " ")] {
			t.Errorf("binding %v missing from union form", r.ValueRow())
		}
	}
	// Multiset alternation keeps the overlap: strictly more results.
	multi := matchReduced(t, `MATCH ->{1,5} |+| ->{3,7}`)
	if len(multi) <= len(rhs) {
		t.Errorf("multiset alternation should keep overlapping bindings: got %d, union %d", len(multi), len(rhs))
	}
}

// §4.6: implicit equi-join on a conditional singleton is rejected at
// compile time.
func TestSection46_ConditionalJoinRejected(t *testing.T) {
	_, err := core.Compile(`MATCH [(x)->(y)] | [(x)->(z)], (y)->(w)`, core.Options{})
	if err == nil {
		t.Fatalf("equi-join on conditional singleton y must be rejected (paper §4.6)")
	}
	if !strings.Contains(err.Error(), "conditional") {
		t.Errorf("error should mention conditional singletons: %v", err)
	}
}

// §4.6: the question-mark operator with a postfilter over the conditional
// variable. On Fig 1 only transfers into blocked a4 qualify (no phone is
// blocked), both with and without the optional leg.
func TestSection46_QuestionMarkOptional(t *testing.T) {
	res := run(t, `
		MATCH (x:Account)-[:Transfer]->(y:Account) [~[:hasPhone]~(p)]?
		WHERE y.isBlocked='yes' OR p.isBlocked='yes'`)
	for _, row := range res.Rows {
		y, _ := row.Get("y")
		if y.Node != "a4" {
			t.Errorf("only transfers into blocked a4 qualify, got y=%s", y.Node)
		}
	}
	// t3 (a2→a4) matches with the optional leg absent and with p=p4.
	if len(res.Rows) != 2 {
		t.Errorf("want 2 rows (with and without the optional leg), got %d", len(res.Rows))
	}
	nulls, bound := 0, 0
	for _, row := range res.Rows {
		p, _ := row.Get("p")
		if p.Kind == eval.BoundNull {
			nulls++
		} else {
			bound++
		}
	}
	if nulls != 1 || bound != 1 {
		t.Errorf("want one row with p unbound and one with p=p4, got %d/%d", nulls, bound)
	}
}

// §4.6: ? keeps singletons conditional whereas {0,1} exposes group
// variables: a group variable cannot join across path patterns, and the
// two operators are distinguished by the planner.
func TestSection46_QuestionVsZeroOne(t *testing.T) {
	// With {0,1}, p is a group variable; SAME on it must be rejected.
	_, err := core.Compile(`
		MATCH (x:Account)-[:Transfer]->(y:Account) [~[:hasPhone]~(p)]{0,1}, (q:Phone)
		WHERE SAME(p, q)`, core.Options{})
	if err == nil || !strings.Contains(err.Error(), "group") {
		t.Fatalf("SAME over a {0,1} group variable must be rejected, got %v", err)
	}
	// With ?, p is a conditional singleton; SAME is still rejected, but for
	// conditionality (§4.7).
	_, err = core.Compile(`
		MATCH (x:Account)-[:Transfer]->(y:Account) [~[:hasPhone]~(p)]?, (q:Phone)
		WHERE SAME(p, q)`, core.Options{})
	if err == nil || !strings.Contains(err.Error(), "conditional") {
		t.Fatalf("SAME over a conditional singleton must be rejected, got %v", err)
	}
}

// §4.7: SAME and ALL_DIFFERENT.
func TestSection47_SameAllDifferent(t *testing.T) {
	same := run(t, `
		MATCH (s)-[:Transfer]->(s1)-[:Transfer]->(s2)-[:Transfer]->(s3)
		WHERE SAME(s, s3)`)
	if got := varIDs(t, same, "s"); !equalStrings(got, sorted("a1", "a3", "a5")) {
		t.Errorf("SAME triangle starts: got %v", got)
	}
	diff := run(t, `
		MATCH (s)-[:Transfer]->(s1)-[:Transfer]->(s2)-[:Transfer]->(s3)
		WHERE ALL_DIFFERENT(s, s1, s2, s3)`)
	for _, row := range diff.Rows {
		ids := map[graph.NodeID]bool{}
		for _, v := range []string{"s", "s1", "s2", "s3"} {
			b, _ := row.Get(v)
			ids[b.Node] = true
		}
		if len(ids) != 4 {
			t.Errorf("ALL_DIFFERENT violated: %v", ids)
		}
	}
}

// §4.7: orientation predicates on ambiguous edge patterns.
func TestSection47_OrientationPredicates(t *testing.T) {
	directed := run(t, `MATCH (x)-[e]-(y) WHERE e IS DIRECTED`)
	if len(directed.Rows) != 32 { // 16 directed edges × 2 traversals
		t.Errorf("IS DIRECTED: want 32, got %d", len(directed.Rows))
	}
	undirected := run(t, `MATCH (x)-[e]-(y) WHERE NOT e IS DIRECTED`)
	if len(undirected.Rows) != 12 { // 6 undirected edges × 2 traversals
		t.Errorf("NOT IS DIRECTED: want 12, got %d", len(undirected.Rows))
	}
	src := run(t, `MATCH (x)-[e]-(y) WHERE x IS SOURCE OF e`)
	if len(src.Rows) != 16 {
		t.Errorf("IS SOURCE OF: want 16, got %d", len(src.Rows))
	}
	dst := run(t, `MATCH (x)-[e]-(y) WHERE x IS DESTINATION OF e AND y IS SOURCE OF e`)
	if len(dst.Rows) != 16 {
		t.Errorf("reverse traversals: want 16, got %d", len(dst.Rows))
	}
}

// §4.7: SQL/PGQ rejects = on element references; GQL permits it.
func TestSection47_ElementEqualityModes(t *testing.T) {
	const q = `MATCH (s)-[:Transfer]->()-[:Transfer]->()-[:Transfer]->(s3) WHERE s = s3`
	if _, err := core.Compile(q, core.Options{}); err == nil {
		t.Fatalf("PGQ mode must reject element equality (paper §4.7)")
	}
	cq, err := core.Compile(q, core.Options{GQL: true})
	if err != nil {
		t.Fatalf("GQL mode should accept element equality: %v", err)
	}
	res, err := cq.Eval(dataset.Fig1(), eval.Config{})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if got := varIDs(t, res, "s"); !equalStrings(got, sorted("a1", "a3", "a5")) {
		t.Errorf("GQL element equality triangles: got %v", got)
	}
}

// The binding.FormatTable presentation renders the §6.4-style two-row
// tables used by the documentation tools.
func TestBindingTableRendering(t *testing.T) {
	rs := matchReduced(t, `MATCH (y WHERE y.owner='Aretha')<-[e:Transfer]-(x)`)
	out := binding.FormatTable(rs)
	if !strings.Contains(out, "y") || !strings.Contains(out, "t2") {
		t.Errorf("unexpected table rendering:\n%s", out)
	}
}

// §4.1: anonymous middle node patterns concatenate edges.
func TestSection41_AnonymousMiddleNode(t *testing.T) {
	res := run(t, `MATCH (x)-[:Transfer]->()-[:isLocatedIn]->(y)`)
	// Each transfer target has exactly one isLocatedIn edge: 8 rows.
	if len(res.Rows) != 8 {
		t.Errorf("transfer-then-location: want 8 rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		y, _ := row.Get("y")
		n := dataset.Fig1().Node(y.Node)
		if !n.HasLabel("City") && !n.HasLabel("Country") {
			t.Errorf("y must be a location, got %s", y.Node)
		}
	}
}

// §4.6: the path pattern union formulation of "transfer to a blocked
// account or to an account with a blocked phone". On Fig 1 only the first
// branch matches (no phone is blocked).
func TestSection46_UnionFormulation(t *testing.T) {
	res := run(t, `
		MATCH [(x:Account)-[:Transfer]->(y:Account WHERE y.isBlocked='yes')] |
		      [(x:Account)-[:Transfer]->()~[:hasPhone]~(p WHERE p.isBlocked='yes')]`)
	if len(res.Rows) != 1 {
		t.Fatalf("union formulation: want 1 row (t3 into a4), got %d", len(res.Rows))
	}
	x, _ := res.Rows[0].Get("x")
	y, _ := res.Rows[0].Get("y")
	p, _ := res.Rows[0].Get("p")
	if x.Node != "a2" || y.Node != "a4" {
		t.Errorf("binding: x=%s y=%s", x.Node, y.Node)
	}
	if p.Kind != eval.BoundNull {
		t.Errorf("p is a conditional singleton, unbound in the matching branch: %+v", p)
	}
}

// MATCH () is legal: a placeholder matching every node with no bindings.
func TestEmptyNodePattern(t *testing.T) {
	res := run(t, `MATCH ()`)
	if len(res.Rows) != 14 {
		t.Errorf("MATCH (): want 14 rows, got %d", len(res.Rows))
	}
	if len(res.Columns) != 0 {
		t.Errorf("MATCH (): no named columns, got %v", res.Columns)
	}
}
