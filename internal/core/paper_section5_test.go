package core_test

import (
	"sort"
	"testing"

	"gpml/internal/core"
	"gpml/internal/dataset"
	"gpml/internal/eval"
	"gpml/internal/graph"
)

// evalPaths compiles and evaluates a query on the Fig 1 graph, returning
// the matched paths of the path variable p as strings.
func evalPaths(t *testing.T, src string) []string {
	t.Helper()
	q, err := core.Compile(src, core.Options{})
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	res, err := q.Eval(dataset.Fig1(), eval.Config{})
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	var out []string
	for _, row := range res.Rows {
		b, ok := row.Get("p")
		if !ok {
			t.Fatalf("row has no binding for p")
		}
		if b.Kind != eval.BoundPath {
			t.Fatalf("p is not a path: %v", b)
		}
		out = append(out, b.Path.String())
	}
	sort.Strings(out)
	return out
}

func sorted(ss ...string) []string {
	sort.Strings(ss)
	return ss
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// §5.1: the TRAIL query from Dave to Aretha returns exactly the three
// listed trails.
func TestSection51_TrailDaveToAretha(t *testing.T) {
	got := evalPaths(t, `
		MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*
		          (b WHERE b.owner='Aretha')`)
	want := sorted(
		"path(a6,t5,a3,t2,a2)",
		"path(a6,t6,a5,t8,a1,t1,a3,t2,a2)",
		"path(a6,t5,a3,t7,a5,t8,a1,t1,a3,t2,a2)",
	)
	if !equalStrings(got, want) {
		t.Errorf("TRAIL Dave→Aretha:\n got  %v\n want %v", got, want)
	}
}

// §5.1: ACYCLIC forbids the third trail (node a3 repeats).
func TestSection51_AcyclicDaveToAretha(t *testing.T) {
	got := evalPaths(t, `
		MATCH ACYCLIC p = (a WHERE a.owner='Dave')-[t:Transfer]->*
		          (b WHERE b.owner='Aretha')`)
	want := sorted(
		"path(a6,t5,a3,t2,a2)",
		"path(a6,t6,a5,t8,a1,t1,a3,t2,a2)",
	)
	if !equalStrings(got, want) {
		t.Errorf("ACYCLIC Dave→Aretha:\n got  %v\n want %v", got, want)
	}
}

// §5.1: ANY SHORTEST keeps only path(a6,t5,a3,t2,a2).
func TestSection51_AnyShortestDaveToAretha(t *testing.T) {
	got := evalPaths(t, `
		MATCH ANY SHORTEST p = (a WHERE a.owner='Dave')-[t:Transfer]->*
		          (b WHERE b.owner='Aretha')`)
	want := []string{"path(a6,t5,a3,t2,a2)"}
	if !equalStrings(got, want) {
		t.Errorf("ANY SHORTEST Dave→Aretha:\n got  %v\n want %v", got, want)
	}
}

// §5.1: ALL SHORTEST TRAIL from Dave through Aretha to Mike returns the two
// listed trails of length 7, and not the shorter non-trail.
func TestSection51_AllShortestTrailDaveArethaMike(t *testing.T) {
	got := evalPaths(t, `
		MATCH ALL SHORTEST TRAIL
		p = (a WHERE a.owner='Dave')-[t:Transfer]->*
		    (b WHERE b.owner='Aretha')-[r:Transfer]->*(c WHERE c.owner='Mike')`)
	want := sorted(
		"path(a6,t5,a3,t2,a2,t3,a4,t4,a6,t6,a5,t8,a1,t1,a3)",
		"path(a6,t6,a5,t8,a1,t1,a3,t2,a2,t3,a4,t4,a6,t5,a3)",
	)
	if !equalStrings(got, want) {
		t.Errorf("ALL SHORTEST TRAIL Dave→Aretha→Mike:\n got  %v\n want %v", got, want)
	}
}

// §5: without restrictor or selector the unbounded query must be rejected
// at compile time.
func TestSection5_UnboundedRejected(t *testing.T) {
	_, err := core.Compile(`
		MATCH p = (a WHERE a.owner='Dave')-[t:Transfer]->*
		      (b WHERE b.owner='Aretha')`, core.Options{})
	if err == nil {
		t.Fatalf("unbounded quantifier without restrictor/selector must be rejected")
	}
}

// §5.2: prefilter vs postfilter. With the blocked-account condition as a
// prefilter the solution passes through a4 (Jay); as a postfilter the
// shortest Scott→Charles path has an unblocked middle account and the
// result is empty.
//
// Note on the arXiv text: §5.2 claims the only solution is the six-edge
// path(a1,t1,a3,t2,a2,t3,a4,t4,a6,t5,a3,t7,a5) — but Figure 1's edge t6
// (a6→a5), which §5.1's trails and §6.4 both use, yields the strictly
// shorter five-edge path(a1,t1,a3,t2,a2,t3,a4,t4,a6,t6,a5). The engine
// returns the correct shortest path for the figure's graph; on the graph
// with t6 removed it returns the paper's printed answer exactly
// (EXPERIMENTS.md records the discrepancy).
func TestSection52_PrefilterVsPostfilter(t *testing.T) {
	pre := evalPaths(t, `
		MATCH ALL SHORTEST p = (x WHERE x.owner='Scott')-[e1:Transfer]->+
		      (q:Account WHERE q.isBlocked='yes')-[e2:Transfer]->+
		      (r:Account WHERE r.owner='Charles')`)
	want := []string{"path(a1,t1,a3,t2,a2,t3,a4,t4,a6,t6,a5)"}
	if !equalStrings(pre, want) {
		t.Errorf("prefilter variant:\n got  %v\n want %v", pre, want)
	}

	post := evalPaths(t, `
		MATCH ALL SHORTEST p = (x WHERE x.owner='Scott')-[e1:Transfer]->+
		      (q:Account)-[e2:Transfer]->+
		      (r:Account WHERE r.owner='Charles')
		WHERE q.isBlocked='yes'`)
	if len(post) != 0 {
		t.Errorf("postfilter variant should be empty, got %v", post)
	}
}

// §5.2 on Figure 1 without edge t6: the paper's printed six-edge answer is
// recovered exactly.
func TestSection52_PrefilterWithoutT6MatchesPaperText(t *testing.T) {
	g := fig1WithoutEdge(t, "t6")
	q, err := core.Compile(`
		MATCH ALL SHORTEST p = (x WHERE x.owner='Scott')-[e1:Transfer]->+
		      (q:Account WHERE q.isBlocked='yes')-[e2:Transfer]->+
		      (r:Account WHERE r.owner='Charles')`, core.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := q.Eval(g, eval.Config{})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	var got []string
	for _, row := range res.Rows {
		b, _ := row.Get("p")
		got = append(got, b.Path.String())
	}
	want := []string{"path(a1,t1,a3,t2,a2,t3,a4,t4,a6,t5,a3,t7,a5)"}
	if !equalStrings(got, want) {
		t.Errorf("prefilter on Fig1−t6:\n got  %v\n want %v", got, want)
	}
}

// fig1WithoutEdge rebuilds Fig 1 minus one edge.
func fig1WithoutEdge(t *testing.T, drop graph.EdgeID) *graph.Graph {
	t.Helper()
	src := dataset.Fig1()
	g := graph.New()
	src.Nodes(func(n *graph.Node) bool {
		if err := g.AddNode(n.ID, n.Labels, n.Props); err != nil {
			t.Fatal(err)
		}
		return true
	})
	src.Edges(func(e *graph.Edge) bool {
		if e.ID == drop {
			return true
		}
		var err error
		if e.Direction == graph.Directed {
			err = g.AddEdge(e.ID, e.Source, e.Target, e.Labels, e.Props)
		} else {
			err = g.AddUndirectedEdge(e.ID, e.Source, e.Target, e.Labels, e.Props)
		}
		if err != nil {
			t.Fatal(err)
		}
		return true
	})
	return g
}

// §5.1: adding a selector to a query with matches always keeps at least one
// match, whereas a restrictor can empty it. The Natalia-free variant of the
// paper's example: the shortest a5→a1 solution of length 4 repeats edge t8,
// so TRAIL has no solution with those endpoints through that route.
func TestSection51_SelectorVsRestrictorAsymmetry(t *testing.T) {
	// path(a5,t8,a1,t1,a3,t7,a5,t8,a1) is a solution of the unrestricted
	// query; it repeats t8, hence fails TRAIL.
	p := graph.Path{
		Nodes: []graph.NodeID{"a5", "a1", "a3", "a5", "a1"},
		Edges: []graph.EdgeID{"t8", "t1", "t7", "t8"},
	}
	if err := p.ValidIn(dataset.Fig1()); err != nil {
		t.Fatalf("paper path invalid in Fig1: %v", err)
	}
	if p.IsTrail() {
		t.Fatalf("paper path should repeat edge t8")
	}
}
