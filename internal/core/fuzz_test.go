package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"gpml/internal/core"
	"gpml/internal/dataset"
	"gpml/internal/eval"
)

// queryGen builds random syntactically plausible GPML queries from a small
// grammar over the Fig 1 schema. Generated queries may be statically
// invalid (the planner must reject them cleanly) or valid (the engine must
// evaluate them without panicking and within limits).
type queryGen struct {
	rng *rand.Rand
	n   int // fresh variable counter
}

func (qg *queryGen) fresh(prefix string) string {
	qg.n++
	return fmt.Sprintf("%s%d", prefix, qg.n)
}

func (qg *queryGen) pick(opts ...string) string {
	return opts[qg.rng.Intn(len(opts))]
}

func (qg *queryGen) nodePattern() string {
	switch qg.rng.Intn(4) {
	case 0:
		return "()"
	case 1:
		return fmt.Sprintf("(%s)", qg.fresh("n"))
	case 2:
		return fmt.Sprintf("(%s:%s)", qg.fresh("n"), qg.pick("Account", "Phone", "City", "Country", "IP", "Account|IP", "!Phone"))
	default:
		v := qg.fresh("n")
		return fmt.Sprintf("(%s:Account WHERE %s.isBlocked='%s')", v, v, qg.pick("yes", "no"))
	}
}

func (qg *queryGen) edgePattern() string {
	arrow := qg.pick("-[%s]->", "<-[%s]-", "~[%s]~", "-[%s]-", "<~[%s]~", "~[%s]~>", "<-[%s]->")
	spec := ""
	switch qg.rng.Intn(3) {
	case 0:
		spec = qg.fresh("e")
	case 1:
		spec = qg.fresh("e") + ":" + qg.pick("Transfer", "isLocatedIn", "hasPhone", "signInWithIP")
	case 2:
		v := qg.fresh("e")
		spec = fmt.Sprintf("%s:Transfer WHERE %s.amount > %dM", v, v, 1+qg.rng.Intn(10))
	}
	return fmt.Sprintf(arrow, spec)
}

func (qg *queryGen) quantifier() string {
	switch qg.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("{%d,%d}", 1+qg.rng.Intn(2), 2+qg.rng.Intn(3))
	case 1:
		return "?"
	case 2:
		return "*"
	default:
		return "+"
	}
}

func (qg *queryGen) pathPattern(depth int) string {
	var b strings.Builder
	b.WriteString(qg.nodePattern())
	steps := 1 + qg.rng.Intn(3)
	for i := 0; i < steps; i++ {
		if depth < 2 && qg.rng.Intn(4) == 0 {
			b.WriteString(fmt.Sprintf("[%s%s%s]%s",
				qg.nodePattern(), qg.edgePattern(), qg.nodePattern(), qg.quantifier()))
		} else {
			b.WriteString(qg.edgePattern())
			if qg.rng.Intn(5) == 0 {
				b.WriteString(qg.quantifier())
			}
		}
		b.WriteString(qg.nodePattern())
	}
	prefix := ""
	switch qg.rng.Intn(5) {
	case 0:
		prefix = "TRAIL "
	case 1:
		prefix = "ACYCLIC "
	case 2:
		prefix = qg.pick("ANY SHORTEST ", "ALL SHORTEST ", "ANY ", "SHORTEST 2 ")
	}
	return prefix + b.String()
}

// TestRandomQueriesNeverPanic compiles and evaluates generated queries.
// Invalid queries must fail with an error, never a panic; valid queries
// must evaluate within limits or report a limit error.
func TestRandomQueriesNeverPanic(t *testing.T) {
	g := dataset.Fig1()
	compiled, evaluated := 0, 0
	for seed := int64(0); seed < 300; seed++ {
		qg := &queryGen{rng: rand.New(rand.NewSource(seed))}
		src := "MATCH " + qg.pathPattern(0)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on seed %d query %q: %v", seed, src, r)
				}
			}()
			q, err := core.Compile(src, core.Options{})
			if err != nil {
				return // static rejection is fine
			}
			compiled++
			_, err = q.Eval(g, eval.Config{Limits: eval.Limits{
				MaxMatches: 50_000, MaxDepth: 64, MaxThreads: 200_000,
			}})
			if err != nil {
				if _, ok := err.(*eval.LimitError); !ok {
					t.Fatalf("seed %d query %q: unexpected error %v", seed, src, err)
				}
				return
			}
			evaluated++
		}()
	}
	if compiled < 50 || evaluated < 30 {
		t.Fatalf("generator too weak: %d compiled, %d evaluated", compiled, evaluated)
	}
	t.Logf("random queries: %d compiled, %d evaluated cleanly", compiled, evaluated)
}
