// Package value implements the property value system of GPML: a closed
// tagged union of strings, 64-bit integers, 64-bit floats and booleans,
// extended with NULL, together with SQL-style comparison semantics and
// Kleene three-valued logic (TRUE / FALSE / UNKNOWN).
//
// GPML inherits its expression semantics from SQL (the paper, Section 4:
// "The WHERE clause can support a host of search conditions, and these may
// be combined into logical statements using AND, OR, and NOT"). Any
// comparison involving NULL is UNKNOWN, and UNKNOWN propagates through the
// connectives per Kleene logic. A pattern filter passes only when its
// condition evaluates to TRUE.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind discriminates the runtime type of a Value.
type Kind uint8

// The kinds of values.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
)

// String returns the kind name used in error messages.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is an immutable property value. The zero Value is NULL.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
}

// Null is the NULL value (also the zero Value).
var Null = Value{}

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the value's runtime kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsString returns the string payload; ok is false for non-strings.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsInt returns the integer payload; ok is false for non-ints.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == KindInt }

// AsFloat returns the float payload, converting ints; ok is false otherwise.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindFloat:
		return v.f, true
	case KindInt:
		return float64(v.i), true
	default:
		return 0, false
	}
}

// AsBool returns the boolean payload; ok is false for non-bools.
func (v Value) AsBool() (bool, bool) { return v.b, v.kind == KindBool }

// String renders the value in GPML literal syntax (strings single-quoted).
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Display renders the value for table output (strings unquoted).
func (v Value) Display() string {
	if v.kind == KindString {
		return v.s
	}
	return v.String()
}

// numeric reports whether the value is an int or float.
func (v Value) numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Tri is a three-valued logic truth value.
type Tri uint8

// The three truth values of Kleene logic.
const (
	False Tri = iota
	True
	Unknown
)

// String returns TRUE, FALSE or UNKNOWN.
func (t Tri) String() string {
	switch t {
	case True:
		return "TRUE"
	case False:
		return "FALSE"
	default:
		return "UNKNOWN"
	}
}

// TriOf converts a Go bool to a Tri.
func TriOf(b bool) Tri {
	if b {
		return True
	}
	return False
}

// And is Kleene conjunction.
func (t Tri) And(o Tri) Tri {
	if t == False || o == False {
		return False
	}
	if t == True && o == True {
		return True
	}
	return Unknown
}

// Or is Kleene disjunction.
func (t Tri) Or(o Tri) Tri {
	if t == True || o == True {
		return True
	}
	if t == False && o == False {
		return False
	}
	return Unknown
}

// Not is Kleene negation.
func (t Tri) Not() Tri {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// Xor is Kleene exclusive-or (UNKNOWN if either side is UNKNOWN).
func (t Tri) Xor(o Tri) Tri {
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return TriOf((t == True) != (o == True))
}

// IsTrue reports whether t is definitely TRUE (filters pass only then).
func (t Tri) IsTrue() bool { return t == True }

// Compare compares two values with SQL semantics. It returns (ordering,
// comparable): if either value is NULL or the kinds are incomparable,
// comparable is false (the comparison is UNKNOWN). Numeric kinds compare
// cross-kind (int vs float); strings compare lexicographically; booleans
// order false < true.
func Compare(a, b Value) (int, bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	if a.numeric() && b.numeric() {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		// Exact int comparison when both are ints avoids float rounding.
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1, true
			case a.i > b.i:
				return 1, true
			default:
				return 0, true
			}
		}
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.kind != b.kind {
		return 0, false
	}
	switch a.kind {
	case KindString:
		return strings.Compare(a.s, b.s), true
	case KindBool:
		switch {
		case !a.b && b.b:
			return -1, true
		case a.b && !b.b:
			return 1, true
		default:
			return 0, true
		}
	default:
		return 0, false
	}
}

// Eq is three-valued equality.
func Eq(a, b Value) Tri {
	c, ok := Compare(a, b)
	if !ok {
		if a.IsNull() || b.IsNull() {
			return Unknown
		}
		return False // comparable kinds mismatch: definitely unequal
	}
	return TriOf(c == 0)
}

// Ne is three-valued inequality.
func Ne(a, b Value) Tri { return Eq(a, b).Not() }

// Lt, Le, Gt, Ge are the three-valued ordering comparisons. Incomparable
// kinds yield UNKNOWN.
func Lt(a, b Value) Tri { return ord(a, b, func(c int) bool { return c < 0 }) }

// Le is three-valued <=.
func Le(a, b Value) Tri { return ord(a, b, func(c int) bool { return c <= 0 }) }

// Gt is three-valued >.
func Gt(a, b Value) Tri { return ord(a, b, func(c int) bool { return c > 0 }) }

// Ge is three-valued >=.
func Ge(a, b Value) Tri { return ord(a, b, func(c int) bool { return c >= 0 }) }

func ord(a, b Value, f func(int) bool) Tri {
	c, ok := Compare(a, b)
	if !ok {
		return Unknown
	}
	return TriOf(f(c))
}

// Identical reports strict value identity (kind and payload), with
// NULL identical to NULL. It is the equality used for deduplication and
// grouping, not for WHERE predicates.
func Identical(a, b Value) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindNull:
		return true
	case KindString:
		return a.s == b.s
	case KindInt:
		return a.i == b.i
	case KindFloat:
		return a.f == b.f || (math.IsNaN(a.f) && math.IsNaN(b.f))
	case KindBool:
		return a.b == b.b
	default:
		return false
	}
}

// Key returns a canonical string key for grouping/dedup (injective per kind).
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "n"
	case KindString:
		return "s" + v.s
	case KindInt:
		return "i" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		return "f" + strconv.FormatFloat(v.f, 'x', -1, 64)
	case KindBool:
		if v.b {
			return "bt"
		}
		return "bf"
	default:
		return "?"
	}
}

// Add returns a+b with numeric promotion, or string concatenation for two
// strings. NULL operands yield NULL; kind mismatches yield an error.
func Add(a, b Value) (Value, error) { return arith(a, b, "+") }

// Sub returns a-b with numeric promotion.
func Sub(a, b Value) (Value, error) { return arith(a, b, "-") }

// Mul returns a*b with numeric promotion.
func Mul(a, b Value) (Value, error) { return arith(a, b, "*") }

// Div returns a/b with numeric promotion. Integer division truncates;
// division by zero yields NULL (SQL engines raise; GPML filters treat the
// row as not passing, which NULL achieves).
func Div(a, b Value) (Value, error) { return arith(a, b, "/") }

// Mod returns a%b for integers.
func Mod(a, b Value) (Value, error) { return arith(a, b, "%") }

func arith(a, b Value, op string) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if op == "+" && a.kind == KindString && b.kind == KindString {
		return Str(a.s + b.s), nil
	}
	if !a.numeric() || !b.numeric() {
		return Null, fmt.Errorf("value: cannot apply %q to %s and %s", op, a.kind, b.kind)
	}
	if a.kind == KindInt && b.kind == KindInt {
		x, y := a.i, b.i
		switch op {
		case "+":
			return Int(x + y), nil
		case "-":
			return Int(x - y), nil
		case "*":
			return Int(x * y), nil
		case "/":
			if y == 0 {
				return Null, nil
			}
			return Int(x / y), nil
		case "%":
			if y == 0 {
				return Null, nil
			}
			return Int(x % y), nil
		}
	}
	x, _ := a.AsFloat()
	y, _ := b.AsFloat()
	switch op {
	case "+":
		return Float(x + y), nil
	case "-":
		return Float(x - y), nil
	case "*":
		return Float(x * y), nil
	case "/":
		if y == 0 {
			return Null, nil
		}
		return Float(x / y), nil
	case "%":
		return Float(math.Mod(x, y)), nil
	}
	return Null, fmt.Errorf("value: unknown operator %q", op)
}

// Neg returns -a for numeric a.
func Neg(a Value) (Value, error) {
	switch a.kind {
	case KindNull:
		return Null, nil
	case KindInt:
		return Int(-a.i), nil
	case KindFloat:
		return Float(-a.f), nil
	default:
		return Null, fmt.Errorf("value: cannot negate %s", a.kind)
	}
}
