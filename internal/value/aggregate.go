package value

import "fmt"

// AggKind identifies an aggregate function over group variables (§4.4,
// §5.3 of the paper: SUM, COUNT, AVG, MIN, MAX over properties of group
// variables such as SUM(t.amount) across quantifier iterations).
type AggKind uint8

// The aggregate functions supported in postfilters and projections.
// AggListagg is the PGQL-style LISTAGG(x, sep) of §3, producing a
// separator-joined string of the group's values.
const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
	AggListagg
)

// String returns the GPML spelling of the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggListagg:
		return "LISTAGG"
	default:
		return fmt.Sprintf("AGG(%d)", uint8(k))
	}
}

// ParseAggKind resolves an aggregate name (case-insensitive match is the
// caller's concern; pass upper case).
func ParseAggKind(name string) (AggKind, bool) {
	switch name {
	case "COUNT":
		return AggCount, true
	case "SUM":
		return AggSum, true
	case "AVG":
		return AggAvg, true
	case "MIN":
		return AggMin, true
	case "MAX":
		return AggMax, true
	case "LISTAGG":
		return AggListagg, true
	default:
		return 0, false
	}
}

// Monotonic reports whether the aggregate is monotonic in the size of its
// input multiset (§5.3: "A few aggregates (MAX, MIN, COUNT) are monotonic").
func (k AggKind) Monotonic() bool {
	return k == AggCount || k == AggMin || k == AggMax
}

// Aggregate folds the aggregate over vs with SQL semantics: NULL inputs are
// skipped for SUM/AVG/MIN/MAX; COUNT counts non-NULL inputs; empty (or
// all-NULL) input yields COUNT=0 and NULL for the others.
func Aggregate(k AggKind, vs []Value) (Value, error) {
	switch k {
	case AggCount:
		n := int64(0)
		for _, v := range vs {
			if !v.IsNull() {
				n++
			}
		}
		return Int(n), nil
	case AggSum, AggAvg:
		var (
			sumI    int64
			sumF    float64
			asFloat bool
			n       int64
		)
		for _, v := range vs {
			if v.IsNull() {
				continue
			}
			switch v.Kind() {
			case KindInt:
				sumI += v.i
			case KindFloat:
				asFloat = true
				sumF += v.f
			default:
				return Null, fmt.Errorf("value: %s over non-numeric %s", k, v.Kind())
			}
			n++
		}
		if n == 0 {
			return Null, nil
		}
		total := Float(float64(sumI) + sumF)
		if !asFloat {
			total = Int(sumI)
		}
		if k == AggSum {
			return total, nil
		}
		tf, _ := total.AsFloat()
		return Float(tf / float64(n)), nil
	case AggMin, AggMax:
		best := Null
		for _, v := range vs {
			if v.IsNull() {
				continue
			}
			if best.IsNull() {
				best = v
				continue
			}
			c, ok := Compare(v, best)
			if !ok {
				return Null, fmt.Errorf("value: %s over incomparable kinds %s and %s", k, v.Kind(), best.Kind())
			}
			if (k == AggMin && c < 0) || (k == AggMax && c > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return Null, fmt.Errorf("value: unknown aggregate %v", k)
	}
}

// ListAgg joins the non-NULL values' display forms with the separator
// (PGQL's LISTAGG, §3: "produces a comma-separated list of values encoded
// as a single string of characters").
func ListAgg(vs []Value, sep string) Value {
	parts := make([]string, 0, len(vs))
	for _, v := range vs {
		if v.IsNull() {
			continue
		}
		parts = append(parts, v.Display())
	}
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return Str(out)
}

// CountDistinct counts distinct non-NULL values (COUNT(DISTINCT x)).
func CountDistinct(vs []Value) Value {
	seen := make(map[string]struct{}, len(vs))
	for _, v := range vs {
		if v.IsNull() {
			continue
		}
		seen[v.Key()] = struct{}{}
	}
	return Int(int64(len(seen)))
}
