package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindString: "string", KindInt: "int",
		KindFloat: "float", KindBool: "bool",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if s, ok := Str("x").AsString(); !ok || s != "x" {
		t.Errorf("Str accessor failed")
	}
	if i, ok := Int(7).AsInt(); !ok || i != 7 {
		t.Errorf("Int accessor failed")
	}
	if f, ok := Float(2.5).AsFloat(); !ok || f != 2.5 {
		t.Errorf("Float accessor failed")
	}
	if f, ok := Int(3).AsFloat(); !ok || f != 3.0 {
		t.Errorf("Int should convert AsFloat, got %v %v", f, ok)
	}
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Errorf("Bool accessor failed")
	}
	if !Null.IsNull() {
		t.Errorf("Null must be null")
	}
	var zero Value
	if !zero.IsNull() {
		t.Errorf("zero Value must be NULL")
	}
	if _, ok := Str("x").AsInt(); ok {
		t.Errorf("cross-kind accessor must fail")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{Str("a'b"), "'a''b'"},
		{Int(-3), "-3"},
		{Float(1.5), "1.5"},
		{Bool(true), "true"},
		{Bool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
	if got := Str("hi").Display(); got != "hi" {
		t.Errorf("Display of string should be unquoted, got %q", got)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Int(3), Int(2), 1, true},
		{Int(1), Float(1.5), -1, true},
		{Float(2.5), Int(2), 1, true},
		{Float(1.0), Int(1), 0, true},
		{Str("a"), Str("b"), -1, true},
		{Str("b"), Str("b"), 0, true},
		{Bool(false), Bool(true), -1, true},
		{Null, Int(1), 0, false},
		{Int(1), Null, 0, false},
		{Str("1"), Int(1), 0, false},
		{Bool(true), Int(1), 0, false},
	}
	for _, c := range cases {
		cmp, ok := Compare(c.a, c.b)
		if ok != c.ok || (ok && cmp != c.cmp) {
			t.Errorf("Compare(%v,%v) = %d,%v want %d,%v", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestLargeIntComparisonExact(t *testing.T) {
	// Values beyond float64's integer precision must compare exactly.
	a := Int(math.MaxInt64)
	b := Int(math.MaxInt64 - 1)
	if cmp, ok := Compare(a, b); !ok || cmp != 1 {
		t.Errorf("large int comparison lost precision: %d %v", cmp, ok)
	}
}

func TestThreeValuedComparisons(t *testing.T) {
	if Eq(Null, Null) != Unknown {
		t.Errorf("NULL = NULL must be UNKNOWN")
	}
	if Eq(Int(1), Int(1)) != True {
		t.Errorf("1 = 1 must be TRUE")
	}
	if Eq(Int(1), Str("1")) != False {
		t.Errorf("1 = '1' must be FALSE (comparable kinds mismatch)")
	}
	if Ne(Int(1), Int(2)) != True {
		t.Errorf("1 <> 2 must be TRUE")
	}
	if Lt(Null, Int(1)) != Unknown || Ge(Int(1), Null) != Unknown {
		t.Errorf("ordering with NULL must be UNKNOWN")
	}
	if Lt(Int(1), Int(2)) != True || Le(Int(2), Int(2)) != True ||
		Gt(Int(3), Int(2)) != True || Ge(Int(2), Int(3)) != False {
		t.Errorf("int orderings wrong")
	}
	if Lt(Str("a"), Bool(true)) != Unknown {
		t.Errorf("incomparable kinds must be UNKNOWN")
	}
}

func TestTriLogic(t *testing.T) {
	tris := []Tri{True, False, Unknown}
	// Kleene truth tables.
	for _, a := range tris {
		if a.And(False) != False || False.And(a) != False {
			t.Errorf("x AND FALSE must be FALSE")
		}
		if a.Or(True) != True || True.Or(a) != True {
			t.Errorf("x OR TRUE must be TRUE")
		}
	}
	if Unknown.And(True) != Unknown || Unknown.Or(False) != Unknown {
		t.Errorf("UNKNOWN propagation wrong")
	}
	if Unknown.Not() != Unknown || True.Not() != False || False.Not() != True {
		t.Errorf("NOT wrong")
	}
	if True.Xor(False) != True || True.Xor(True) != False || Unknown.Xor(True) != Unknown {
		t.Errorf("XOR wrong")
	}
	if !True.IsTrue() || False.IsTrue() || Unknown.IsTrue() {
		t.Errorf("IsTrue wrong")
	}
	if True.String() != "TRUE" || False.String() != "FALSE" || Unknown.String() != "UNKNOWN" {
		t.Errorf("Tri.String wrong")
	}
}

// De Morgan's laws hold in Kleene logic: NOT(a AND b) == NOT a OR NOT b.
func TestDeMorganProperty(t *testing.T) {
	f := func(x, y uint8) bool {
		a, b := Tri(x%3), Tri(y%3)
		return a.And(b).Not() == a.Not().Or(b.Not()) &&
			a.Or(b).Not() == a.Not().And(b.Not())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Comparison trichotomy on random ints: exactly one of <,=,> holds.
func TestComparisonTrichotomyProperty(t *testing.T) {
	f := func(a, b int64) bool {
		lt := Lt(Int(a), Int(b)) == True
		eq := Eq(Int(a), Int(b)) == True
		gt := Gt(Int(a), Int(b)) == True
		n := 0
		for _, x := range []bool{lt, eq, gt} {
			if x {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		name string
		got  func() (Value, error)
		want Value
	}{
		{"int add", func() (Value, error) { return Add(Int(2), Int(3)) }, Int(5)},
		{"int sub", func() (Value, error) { return Sub(Int(2), Int(3)) }, Int(-1)},
		{"int mul", func() (Value, error) { return Mul(Int(4), Int(3)) }, Int(12)},
		{"int div", func() (Value, error) { return Div(Int(7), Int(2)) }, Int(3)},
		{"int mod", func() (Value, error) { return Mod(Int(7), Int(2)) }, Int(1)},
		{"div by zero", func() (Value, error) { return Div(Int(7), Int(0)) }, Null},
		{"mod by zero", func() (Value, error) { return Mod(Int(7), Int(0)) }, Null},
		{"mixed add", func() (Value, error) { return Add(Int(1), Float(0.5)) }, Float(1.5)},
		{"float div", func() (Value, error) { return Div(Float(1), Float(4)) }, Float(0.25)},
		{"string concat", func() (Value, error) { return Add(Str("a"), Str("b")) }, Str("ab")},
		{"null add", func() (Value, error) { return Add(Null, Int(1)) }, Null},
	}
	for _, c := range cases {
		got, err := c.got()
		if err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
			continue
		}
		if !Identical(got, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
	if _, err := Add(Str("a"), Int(1)); err == nil {
		t.Errorf("string+int must error")
	}
	if v, err := Neg(Int(3)); err != nil || !Identical(v, Int(-3)) {
		t.Errorf("Neg int: %v %v", v, err)
	}
	if v, err := Neg(Float(2.5)); err != nil || !Identical(v, Float(-2.5)) {
		t.Errorf("Neg float: %v %v", v, err)
	}
	if _, err := Neg(Str("x")); err == nil {
		t.Errorf("Neg string must error")
	}
	if v, err := Neg(Null); err != nil || !v.IsNull() {
		t.Errorf("Neg NULL must be NULL")
	}
}

func TestIdenticalAndKey(t *testing.T) {
	pairs := []struct {
		a, b Value
		same bool
	}{
		{Null, Null, true},
		{Int(1), Int(1), true},
		{Int(1), Float(1), false}, // identity is kind-sensitive
		{Str("a"), Str("a"), true},
		{Bool(true), Bool(false), false},
		{Float(math.NaN()), Float(math.NaN()), true},
	}
	for _, p := range pairs {
		if Identical(p.a, p.b) != p.same {
			t.Errorf("Identical(%v,%v) != %v", p.a, p.b, p.same)
		}
		if p.same && p.a.Key() != p.b.Key() {
			t.Errorf("identical values must share keys: %v %v", p.a, p.b)
		}
	}
	// Keys are injective across kinds for equal payload renderings.
	if Int(1).Key() == Str("1").Key() {
		t.Errorf("keys must be kind-tagged")
	}
	if Int(1).Key() == Float(1).Key() {
		t.Errorf("int and float keys must differ")
	}
}

func TestAggregates(t *testing.T) {
	vals := []Value{Int(1), Int(2), Null, Int(3)}
	check := func(k AggKind, want Value) {
		t.Helper()
		got, err := Aggregate(k, vals)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if !Identical(got, want) {
			t.Errorf("%v = %v, want %v", k, got, want)
		}
	}
	check(AggCount, Int(3)) // NULLs not counted
	check(AggSum, Int(6))
	check(AggAvg, Float(2))
	check(AggMin, Int(1))
	check(AggMax, Int(3))

	empty, err := Aggregate(AggSum, nil)
	if err != nil || !empty.IsNull() {
		t.Errorf("SUM of empty must be NULL, got %v %v", empty, err)
	}
	cnt, err := Aggregate(AggCount, nil)
	if err != nil || !Identical(cnt, Int(0)) {
		t.Errorf("COUNT of empty must be 0")
	}
	if _, err := Aggregate(AggSum, []Value{Str("x")}); err == nil {
		t.Errorf("SUM over strings must error")
	}
	mixed, err := Aggregate(AggSum, []Value{Int(1), Float(0.5)})
	if err != nil || !Identical(mixed, Float(1.5)) {
		t.Errorf("mixed SUM: %v %v", mixed, err)
	}
	if got, _ := Aggregate(AggMin, []Value{Str("b"), Str("a")}); !Identical(got, Str("a")) {
		t.Errorf("MIN over strings: %v", got)
	}
	if _, err := Aggregate(AggMax, []Value{Int(1), Str("a")}); err == nil {
		t.Errorf("MAX over incomparable kinds must error")
	}
	if got := CountDistinct([]Value{Int(1), Int(1), Int(2), Null}); !Identical(got, Int(2)) {
		t.Errorf("CountDistinct: %v", got)
	}
}

func TestAggKindHelpers(t *testing.T) {
	for _, name := range []string{"COUNT", "SUM", "AVG", "MIN", "MAX"} {
		k, ok := ParseAggKind(name)
		if !ok || k.String() != name {
			t.Errorf("ParseAggKind(%s) roundtrip failed", name)
		}
	}
	if _, ok := ParseAggKind("MEDIAN"); ok {
		t.Errorf("unknown aggregate must not parse")
	}
	// §5.3: MAX, MIN, COUNT are monotonic; SUM and AVG are not.
	if !AggCount.Monotonic() || !AggMin.Monotonic() || !AggMax.Monotonic() {
		t.Errorf("COUNT/MIN/MAX must be monotonic")
	}
	if AggSum.Monotonic() || AggAvg.Monotonic() {
		t.Errorf("SUM/AVG must not be monotonic")
	}
}

// SUM is order-independent (property).
func TestSumPermutationProperty(t *testing.T) {
	f := func(xs []int64) bool {
		vals := make([]Value, len(xs))
		for i, x := range xs {
			vals[i] = Int(x % 1_000_000) // avoid overflow noise
		}
		fwd, err1 := Aggregate(AggSum, vals)
		rev := make([]Value, len(vals))
		for i := range vals {
			rev[i] = vals[len(vals)-1-i]
		}
		bwd, err2 := Aggregate(AggSum, rev)
		if err1 != nil || err2 != nil {
			return false
		}
		return Identical(fwd, bwd)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
