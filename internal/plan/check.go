package plan

import (
	"fmt"

	"gpml/internal/ast"
	"gpml/internal/value"
)

// exprClass classifies what an expression denotes.
type exprClass uint8

const (
	clsValue exprClass = iota
	clsElem            // an element reference (node or edge variable)
)

// checkExpr validates an expression occurring at the given site. asPred
// reports whether the expression is used as a predicate (WHERE clause).
func (a *analyzer) checkExpr(e ast.Expr, site exprSite, asPred bool) error {
	if asPred {
		return a.checkPred(e, site)
	}
	_, err := a.checkValue(e, site)
	return err
}

func (a *analyzer) checkPred(e ast.Expr, site exprSite) error {
	switch x := e.(type) {
	case *ast.Binary:
		switch x.Op {
		case ast.OpAnd, ast.OpOr, ast.OpXor:
			if err := a.checkPred(x.L, site); err != nil {
				return err
			}
			return a.checkPred(x.R, site)
		case ast.OpEq, ast.OpNe, ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
			lc, err := a.checkValue(x.L, site)
			if err != nil {
				return err
			}
			rc, err := a.checkValue(x.R, site)
			if err != nil {
				return err
			}
			if lc == clsElem || rc == clsElem {
				if lc != rc {
					return fmt.Errorf("plan: cannot compare an element reference with a value in %q", x)
				}
				if x.Op != ast.OpEq && x.Op != ast.OpNe {
					return fmt.Errorf("plan: element references only support = and <> comparisons, got %q", x)
				}
				if !a.opts.AllowElementEquality {
					return fmt.Errorf("plan: SQL/PGQ cannot test element references with %s; use SAME(...) or ALL_DIFFERENT(...) (paper §4.7)", x.Op)
				}
			}
			return nil
		default:
			// Arithmetic used as a predicate: allowed, truthiness decided
			// at runtime (non-boolean evaluates to UNKNOWN).
			_, err := a.checkValue(e, site)
			return err
		}
	case *ast.Unary:
		if x.Op == "NOT" {
			return a.checkPred(x.X, site)
		}
		_, err := a.checkValue(e, site)
		return err
	case *ast.IsNull:
		_, err := a.checkValue(x.X, site)
		return err
	case *ast.IsDirected:
		info, err := a.refCheck(x.Var, site, false)
		if err != nil {
			return err
		}
		if info.Kind != VarEdge {
			return fmt.Errorf("plan: IS DIRECTED applies to edge variables; %q is a %s variable", x.Var, info.Kind)
		}
		return nil
	case *ast.EndpointOf:
		ni, err := a.refCheck(x.NodeVar, site, false)
		if err != nil {
			return err
		}
		if ni.Kind != VarNode {
			return fmt.Errorf("plan: %q must be a node variable in IS SOURCE/DESTINATION OF", x.NodeVar)
		}
		ei, err := a.refCheck(x.EdgeVar, site, false)
		if err != nil {
			return err
		}
		if ei.Kind != VarEdge {
			return fmt.Errorf("plan: %q must be an edge variable in IS SOURCE/DESTINATION OF", x.EdgeVar)
		}
		return nil
	case *ast.Same:
		return a.checkElemList("SAME", x.Vars, site)
	case *ast.AllDifferent:
		return a.checkElemList("ALL_DIFFERENT", x.Vars, site)
	case *ast.VarRef:
		if _, err := a.refCheck(x.Name, site, false); err != nil {
			return err
		}
		return fmt.Errorf("plan: variable reference %q is not a predicate", x.Name)
	case *ast.PropAccess:
		// A boolean property used directly as a predicate.
		_, err := a.checkValue(e, site)
		return err
	case *ast.Literal:
		return nil
	case *ast.Param:
		// Truthiness of the bound value is decided at runtime, like any
		// other non-boolean expression used as a predicate.
		a.recordParam(x)
		return nil
	case *ast.Aggregate:
		return fmt.Errorf("plan: aggregate %s is not a predicate; compare it with a value", x)
	default:
		return fmt.Errorf("plan: unknown expression %T", e)
	}
}

func (a *analyzer) checkValue(e ast.Expr, site exprSite) (exprClass, error) {
	switch x := e.(type) {
	case *ast.Literal:
		return clsValue, nil
	case *ast.Param:
		a.recordParam(x)
		return clsValue, nil
	case *ast.VarRef:
		if _, err := a.refCheck(x.Name, site, false); err != nil {
			return clsValue, err
		}
		return clsElem, nil // node or edge reference (paths rejected by refCheck)
	case *ast.PropAccess:
		if _, err := a.refCheck(x.Var, site, false); err != nil {
			return clsValue, err
		}
		if x.Prop == "*" {
			return clsValue, fmt.Errorf("plan: %s.* is only valid inside an aggregate such as COUNT(%s.*)", x.Var, x.Var)
		}
		return clsValue, nil
	case *ast.Unary:
		if x.Op == "NOT" {
			if err := a.checkPred(x.X, site); err != nil {
				return clsValue, err
			}
			return clsValue, nil
		}
		c, err := a.checkValue(x.X, site)
		if err != nil {
			return clsValue, err
		}
		if c == clsElem {
			return clsValue, fmt.Errorf("plan: cannot negate an element reference in %q", x)
		}
		return clsValue, nil
	case *ast.Binary:
		switch x.Op {
		case ast.OpAnd, ast.OpOr, ast.OpXor, ast.OpEq, ast.OpNe, ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
			// A boolean-valued subexpression.
			if err := a.checkPred(x, site); err != nil {
				return clsValue, err
			}
			return clsValue, nil
		default:
			lc, err := a.checkValue(x.L, site)
			if err != nil {
				return clsValue, err
			}
			rc, err := a.checkValue(x.R, site)
			if err != nil {
				return clsValue, err
			}
			if lc == clsElem || rc == clsElem {
				return clsValue, fmt.Errorf("plan: element references cannot appear in arithmetic: %q", x)
			}
			return clsValue, nil
		}
	case *ast.Aggregate:
		return clsValue, a.checkAggregate(x, site)
	case *ast.IsNull, *ast.IsDirected, *ast.EndpointOf, *ast.Same, *ast.AllDifferent:
		if err := a.checkPred(e, site); err != nil {
			return clsValue, err
		}
		return clsValue, nil
	default:
		return clsValue, fmt.Errorf("plan: unknown expression %T", e)
	}
}

// checkAggregate validates COUNT/SUM/AVG/MIN/MAX over a group reference.
func (a *analyzer) checkAggregate(agg *ast.Aggregate, site exprSite) error {
	var name, prop string
	switch arg := agg.Arg.(type) {
	case *ast.VarRef:
		name = arg.Name
	case *ast.PropAccess:
		name, prop = arg.Var, arg.Prop
	default:
		return fmt.Errorf("plan: aggregate argument must be a variable or property reference: %s", agg)
	}
	if _, err := a.refCheck(name, site, true); err != nil {
		return err
	}
	if prop == "" || prop == "*" {
		// COUNT(e) / COUNT(e.*) count elements; LISTAGG(e, sep) joins
		// element identifiers (the §3 LISTAGG(e.ID, ', ') usage).
		if agg.Kind != value.AggCount && agg.Kind != value.AggListagg {
			return fmt.Errorf("plan: %s requires a property reference such as %s(%s.prop)", agg.Kind, agg.Kind, name)
		}
	}
	return nil
}

// checkElemList validates SAME/ALL_DIFFERENT argument lists: element
// references that are unconditional singletons (§4.7).
func (a *analyzer) checkElemList(op string, vars []string, site exprSite) error {
	for _, v := range vars {
		info, err := a.refCheck(v, site, false)
		if err != nil {
			return err
		}
		if info.Kind == VarPath {
			return fmt.Errorf("plan: %s applies to element references, %q is a path variable", op, v)
		}
		if info.Group {
			return fmt.Errorf("plan: %s requires singleton references, %q is a group variable", op, v)
		}
		if info.Conditional {
			return fmt.Errorf("plan: %s requires unconditional singletons, %q is a conditional singleton (paper §4.7)", op, v)
		}
	}
	return nil
}

// refCheck validates one variable reference and applies the group-crossing
// rules of §4.4 and the §5.3 prohibition on effectively-unbounded group
// references in prefilters.
func (a *analyzer) refCheck(name string, site exprSite, inAgg bool) (*VarInfo, error) {
	info, ok := a.vars[name]
	if !ok {
		return nil, fmt.Errorf("plan: reference to undeclared variable %q", name)
	}
	if info.Kind == VarPath {
		if inAgg {
			return nil, fmt.Errorf("plan: path variable %q cannot be aggregated", name)
		}
		return nil, fmt.Errorf("plan: path variable %q cannot be used in expressions", name)
	}
	if !site.post && site.patternIdx >= 0 && !info.Patterns[site.patternIdx] {
		return nil, fmt.Errorf("plan: prefilter references variable %q declared in another path pattern; move the condition to the final WHERE clause", name)
	}
	crossing := info.Group && !isPrefix(info.QuantChain, site.chain)
	if crossing {
		if !inAgg {
			return nil, fmt.Errorf("plan: group variable %q is referenced across its quantifier and must be aggregated (e.g. SUM(%s.prop), COUNT(%s))", name, name, name)
		}
		if !site.post {
			// §5.3: prefilter over an effectively unbounded group.
			common := commonPrefixLen(info.QuantChain, site.chain)
			for _, qid := range info.QuantChain[common:] {
				q := a.quantByID[qid]
				if q != nil && q.Unbounded() && !a.underRestr[qid] {
					return nil, fmt.Errorf(
						"plan: prefilter aggregates the effectively unbounded group variable %q (paper §5.3); move the predicate to the final WHERE clause, bound the quantifier, or add a restrictor", name)
				}
			}
		}
	} else if inAgg {
		return nil, fmt.Errorf("plan: aggregate over %q, which is not a group reference at this position", name)
	}
	return info, nil
}

func commonPrefixLen(a, b []int) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}
