// Package plan performs the static analysis of GPML statements (variable
// classification into singleton/group and conditional/unconditional, the
// termination rules of §5, the prohibition of §5.3, and the illegal
// equi-join rule of §4.6) and compiles each path pattern into a small
// instruction graph executed by the eval package.
package plan

import (
	"fmt"

	"gpml/internal/ast"
)

// OpCode enumerates the pattern-matching instructions.
type OpCode uint8

// Instruction opcodes. The compiled program is a graph of instructions;
// OpSplit forks, everything else has a single successor. OpEdge is the only
// instruction that consumes a path step; all others are "epsilon"
// instructions executed between steps.
const (
	OpNode       OpCode = iota // check/bind a node pattern at the current position
	OpEdge                     // traverse one edge matching an edge pattern
	OpSplit                    // fork to Next and Alt
	OpLoopStart                // push iteration counter for quantifier QID
	OpLoopCheck                // iterate (Next) or exit (Alt) based on counter/bounds
	OpIterStart                // begin one quantifier iteration (fresh local scope)
	OpIterEnd                  // commit one iteration, loop back to check
	OpLoopEnd                  // pop counter, continue
	OpScopeStart               // push a restrictor scope (path-level or paren)
	OpScopeEnd                 // pop the restrictor scope
	OpWhere                    // evaluate a parenthesized pattern's WHERE prefilter
	OpTag                      // record a multiset alternation branch tag
	OpAccept                   // pattern complete: emit the path binding
)

// String names the opcode.
func (o OpCode) String() string {
	switch o {
	case OpNode:
		return "node"
	case OpEdge:
		return "edge"
	case OpSplit:
		return "split"
	case OpLoopStart:
		return "loop-start"
	case OpLoopCheck:
		return "loop-check"
	case OpIterStart:
		return "iter-start"
	case OpIterEnd:
		return "iter-end"
	case OpLoopEnd:
		return "loop-end"
	case OpScopeStart:
		return "scope-start"
	case OpScopeEnd:
		return "scope-end"
	case OpWhere:
		return "where"
	case OpTag:
		return "tag"
	case OpAccept:
		return "accept"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Instr is one instruction. Fields are used per opcode.
type Instr struct {
	Op   OpCode
	Next int
	Alt  int // OpSplit: second branch; OpLoopCheck: exit target

	Node *ast.NodePattern // OpNode
	Edge *ast.EdgePattern // OpEdge

	QID      int // quantifier index (loop/iter ops)
	Min, Max int // loop bounds (Max < 0 = unbounded)

	SID        int            // restrictor scope index (scope ops)
	Restrictor ast.Restrictor // OpScopeStart

	Where ast.Expr // OpWhere

	Union, Branch int // OpTag
}

// Prog is a compiled path pattern.
type Prog struct {
	Instrs []Instr
	Start  int

	NumQuants int
	NumScopes int

	// PrefilterGroups lists group variables referenced (through aggregates)
	// by prefilters; the BFS engine must include their accumulated values
	// in its pruning key. The §5.3 check guarantees the quantifiers feeding
	// them are effectively bounded.
	PrefilterGroups map[string]bool
}

// String disassembles the program for debugging.
func (p *Prog) String() string {
	out := fmt.Sprintf("start=%d\n", p.Start)
	for i, in := range p.Instrs {
		out += fmt.Sprintf("%3d: %-12s next=%d", i, in.Op, in.Next)
		switch in.Op {
		case OpSplit, OpLoopCheck:
			out += fmt.Sprintf(" alt=%d", in.Alt)
		case OpNode:
			out += " " + in.Node.String()
		case OpEdge:
			out += " " + in.Edge.String()
		case OpLoopStart, OpIterStart, OpIterEnd, OpLoopEnd:
			out += fmt.Sprintf(" q=%d", in.QID)
		case OpScopeStart:
			out += fmt.Sprintf(" s=%d %s", in.SID, in.Restrictor)
		case OpScopeEnd:
			out += fmt.Sprintf(" s=%d", in.SID)
		case OpTag:
			out += fmt.Sprintf(" tag=%d.%d", in.Union, in.Branch)
		}
		out += "\n"
	}
	return out
}

// compiler builds the instruction graph bottom-up (successors first).
type compiler struct {
	instrs []Instr
	quants map[*ast.Quantified]int
	unions map[*ast.Union]int
	scopes int
}

func (c *compiler) emit(in Instr) int {
	c.instrs = append(c.instrs, in)
	return len(c.instrs) - 1
}

// Compile translates a normalized path pattern into a program. The ids maps
// assign stable indices to quantifiers and unions, shared with the
// analysis pass.
func compileProg(pp *ast.PathPattern, quants map[*ast.Quantified]int, unions map[*ast.Union]int) *Prog {
	c := &compiler{quants: quants, unions: unions}
	accept := c.emit(Instr{Op: OpAccept})
	next := accept
	if pp.Restrictor != ast.NoRestrictor {
		// The path-level restrictor is a scope around the whole pattern.
		sid := c.scopes
		c.scopes++
		end := c.emit(Instr{Op: OpScopeEnd, SID: sid, Next: accept})
		entry := c.compileExpr(pp.Expr, end)
		start := c.emit(Instr{Op: OpScopeStart, SID: sid, Restrictor: pp.Restrictor, Next: entry})
		return &Prog{Instrs: c.instrs, Start: start, NumQuants: len(quants), NumScopes: c.scopes}
	}
	entry := c.compileExpr(pp.Expr, next)
	return &Prog{Instrs: c.instrs, Start: entry, NumQuants: len(quants), NumScopes: c.scopes}
}

// compileExpr returns the entry pc of code for e that continues at next.
func (c *compiler) compileExpr(e ast.PathExpr, next int) int {
	switch x := e.(type) {
	case *ast.Concat:
		entry := next
		for i := len(x.Elems) - 1; i >= 0; i-- {
			entry = c.compileExpr(x.Elems[i], entry)
		}
		return entry
	case *ast.NodePattern:
		return c.emit(Instr{Op: OpNode, Node: x, Next: next})
	case *ast.EdgePattern:
		return c.emit(Instr{Op: OpEdge, Edge: x, Next: next})
	case *ast.Paren:
		return c.compileParen(x, next)
	case *ast.Quantified:
		return c.compileQuantified(x, next)
	case *ast.Union:
		return c.compileUnion(x, next)
	default:
		panic(fmt.Sprintf("plan: cannot compile %T", e))
	}
}

func (c *compiler) compileParen(p *ast.Paren, next int) int {
	after := next
	if p.Where != nil {
		after = c.emit(Instr{Op: OpWhere, Where: p.Where, Next: after})
	}
	if p.Restrictor != ast.NoRestrictor {
		sid := c.scopes
		c.scopes++
		end := c.emit(Instr{Op: OpScopeEnd, SID: sid, Next: after})
		inner := c.compileExpr(p.Expr, end)
		return c.emit(Instr{Op: OpScopeStart, SID: sid, Restrictor: p.Restrictor, Next: inner})
	}
	return c.compileExpr(p.Expr, after)
}

func (c *compiler) compileQuantified(q *ast.Quantified, next int) int {
	if q.Question {
		// ? keeps inner singletons conditional: no iteration machinery.
		body := c.compileExpr(q.Inner, next)
		return c.emit(Instr{Op: OpSplit, Next: body, Alt: next})
	}
	qid := c.quants[q]
	loopEnd := c.emit(Instr{Op: OpLoopEnd, QID: qid, Next: next})
	// Forward-declare the check so the body can loop back to it.
	check := c.emit(Instr{Op: OpLoopCheck, QID: qid, Min: q.Min, Max: q.Max})
	// IterEnd.Alt is the loop exit, used by the zero-width iteration guard.
	iterEnd := c.emit(Instr{Op: OpIterEnd, QID: qid, Min: q.Min, Max: q.Max, Next: check, Alt: loopEnd})
	body := c.compileExpr(q.Inner, iterEnd)
	iterStart := c.emit(Instr{Op: OpIterStart, QID: qid, Next: body})
	c.instrs[check].Next = iterStart
	c.instrs[check].Alt = loopEnd
	return c.emit(Instr{Op: OpLoopStart, QID: qid, Min: q.Min, Max: q.Max, Next: check})
}

func (c *compiler) compileUnion(u *ast.Union, next int) int {
	uid := c.unions[u]
	multiset := len(u.Ops) > 0 && u.Ops[0] == ast.Multiset
	entries := make([]int, len(u.Branches))
	for i, br := range u.Branches {
		entry := c.compileExpr(br, next)
		if multiset {
			entry = c.emit(Instr{Op: OpTag, Union: uid, Branch: i, Next: entry})
		}
		entries[i] = entry
	}
	// Chain of splits: split(b0, split(b1, … split(bn-2, bn-1)))
	fork := entries[len(entries)-1]
	for i := len(entries) - 2; i >= 0; i-- {
		fork = c.emit(Instr{Op: OpSplit, Next: entries[i], Alt: fork})
	}
	return fork
}
