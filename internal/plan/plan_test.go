package plan

import (
	"strings"
	"testing"

	"gpml/internal/normalize"
	"gpml/internal/parser"
)

func analyze(t *testing.T, src string, opts Options) (*Plan, error) {
	t.Helper()
	stmt, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	norm, err := normalize.Normalize(stmt)
	if err != nil {
		t.Fatalf("normalize %q: %v", src, err)
	}
	return Analyze(norm, opts)
}

func mustAnalyze(t *testing.T, src string) *Plan {
	t.Helper()
	p, err := analyze(t, src, Options{})
	if err != nil {
		t.Fatalf("analyze %q: %v", src, err)
	}
	return p
}

func wantErr(t *testing.T, src, sub string) {
	t.Helper()
	if _, err := analyze(t, src, Options{}); err == nil {
		t.Errorf("analyze %q: expected error containing %q", src, sub)
	} else if !strings.Contains(err.Error(), sub) {
		t.Errorf("analyze %q: error %q does not contain %q", src, err, sub)
	}
}

func TestVariableClassification(t *testing.T) {
	p := mustAnalyze(t, `MATCH (a:Account) [()-[t:Transfer]->()]{2,5} (b:Account)`)
	if v := p.Var("a"); v == nil || v.Kind != VarNode || v.Group || v.Conditional {
		t.Errorf("a: %+v", p.Var("a"))
	}
	if v := p.Var("t"); v == nil || v.Kind != VarEdge || !v.Group {
		t.Errorf("t must be a group variable: %+v", p.Var("t"))
	}
	p = mustAnalyze(t, `MATCH (x) [-[e]->(y)]?`)
	if v := p.Var("y"); v == nil || v.Group || !v.Conditional {
		t.Errorf("y under ? must be a conditional singleton: %+v", p.Var("y"))
	}
	p = mustAnalyze(t, `MATCH (x) [-[e]->(y)]{0,1}`)
	if v := p.Var("y"); v == nil || !v.Group {
		t.Errorf("y under {0,1} must be a group variable (§4.6): %+v", p.Var("y"))
	}
	p = mustAnalyze(t, `MATCH [(x)-[e]->(y)] | [(x)-[f]->(z)]`)
	if v := p.Var("x"); v.Conditional {
		t.Errorf("x declared in all branches is unconditional")
	}
	if v := p.Var("y"); !v.Conditional {
		t.Errorf("y declared in one branch is conditional")
	}
	if v := p.Var("z"); !v.Conditional {
		t.Errorf("z declared in one branch is conditional")
	}
}

func TestKindConflicts(t *testing.T) {
	wantErr(t, `MATCH (x)-[x]->(y)`, "node variable")
	wantErr(t, `MATCH p = (p)->(y)`, "path")
	wantErr(t, `MATCH p = (x)->(y), p = (a)->(b)`, "path")
}

func TestGroupSingletonConflicts(t *testing.T) {
	wantErr(t, `MATCH (a) [(a)-[e]->(b)]{1,2}`, "quantifier scopes")
	wantErr(t, `MATCH [(x)-[e]->()]{1,2} [(x)-[f]->()]{1,2}`, "quantifier scopes")
	wantErr(t, `MATCH [(x)-[e]->()]{1,2}, (x)-[f]->(y)`, "group")
}

// §5: every unbounded quantifier needs a restrictor or selector in scope.
func TestTerminationRule(t *testing.T) {
	wantErr(t, `MATCH (a)-[e]->*(b)`, "restrictor or selector")
	wantErr(t, `MATCH (a)-[e]->{3,}(b)`, "restrictor or selector")
	mustAnalyze(t, `MATCH TRAIL (a)-[e]->*(b)`)
	mustAnalyze(t, `MATCH ACYCLIC (a)-[e]->*(b)`)
	mustAnalyze(t, `MATCH SIMPLE (a)-[e]->*(b)`)
	mustAnalyze(t, `MATCH ANY SHORTEST (a)-[e]->*(b)`)
	mustAnalyze(t, `MATCH (a) [TRAIL -[e]->*] (b)`)
	mustAnalyze(t, `MATCH (a)-[e]->{1,5}(b)`) // bounded: fine
}

// Engine modes: restrictor-bounded → DFS; selector-only → BFS; the
// unsupported mix is rejected.
func TestModeSelection(t *testing.T) {
	p := mustAnalyze(t, `MATCH TRAIL (a)-[e]->*(b)`)
	if p.Paths[0].Mode != ModeDFS || !p.Paths[0].HasUnbounded {
		t.Errorf("TRAIL: mode %v", p.Paths[0].Mode)
	}
	p = mustAnalyze(t, `MATCH ANY SHORTEST (a)-[e]->*(b)`)
	if p.Paths[0].Mode != ModeBFS {
		t.Errorf("selector-only: mode %v", p.Paths[0].Mode)
	}
	p = mustAnalyze(t, `MATCH ALL SHORTEST TRAIL (a)-[e]->*(b)`)
	if p.Paths[0].Mode != ModeDFS {
		t.Errorf("restrictor+selector: DFS enumerates, selector picks; mode %v", p.Paths[0].Mode)
	}
	if _, err := analyze(t, `MATCH ANY SHORTEST [TRAIL (x)-[e]->+(y)] -[f]->* (b)`, Options{}); err == nil {
		t.Errorf("selector-bounded quantifier + restrictor in one pattern must be rejected")
	}
	p = mustAnalyze(t, `MATCH (a)-[e]->{2,4}(b)`)
	if p.Paths[0].Mode != ModeDFS || p.Paths[0].HasUnbounded {
		t.Errorf("bounded: mode %v", p.Paths[0].Mode)
	}
}

// §5.3: prefilters over effectively unbounded groups are rejected; the
// postfilter and restrictor-bounded forms are accepted.
func TestUnboundedAggregateRule(t *testing.T) {
	wantErr(t,
		`MATCH ALL SHORTEST [(x)-[e]->*(y) WHERE COUNT(e.*)/(COUNT(e.*)+1)>1]`,
		"effectively unbounded")
	mustAnalyze(t, `MATCH ALL SHORTEST (x)-[e]->*(y) WHERE COUNT(e.*)/(COUNT(e.*)+1) > 1`)
	mustAnalyze(t, `MATCH ALL SHORTEST [TRAIL (x)-[e]->*(y) WHERE COUNT(e.*)/(COUNT(e.*)+1) > 1]`)
	// Bounded quantifier: prefilter aggregation allowed.
	mustAnalyze(t, `MATCH [(x)-[e]->(y)]{1,4} (z) WHERE SUM(e.amount) > 10`)
	p := mustAnalyze(t, `MATCH ANY SHORTEST (a) [[(x)-[e]->(y)]{1,3} WHERE SUM(e.amount) > 10]* (b)`)
	if !p.Paths[0].Prog.PrefilterGroups["e"] {
		t.Errorf("e must be recorded as a prefilter group variable")
	}
}

// Group references crossing their quantifier must be aggregated.
func TestGroupReferenceRules(t *testing.T) {
	wantErr(t, `MATCH (a) [()-[t]->()]{1,3} (b) WHERE t.amount > 5`, "must be aggregated")
	mustAnalyze(t, `MATCH (a) [()-[t]->()]{1,3} (b) WHERE SUM(t.amount) > 5`)
	// Aggregate over a non-group reference is rejected.
	wantErr(t, `MATCH (a)-[t]->(b) WHERE SUM(t.amount) > 5`, "not a group reference")
	// In-iteration references are singleton references.
	mustAnalyze(t, `MATCH (a) [()-[t]->() WHERE t.amount > 5]{1,3} (b)`)
}

// §4.6 / §4.7 conditional rules.
func TestConditionalRules(t *testing.T) {
	wantErr(t, `MATCH [(x)-[e]->(y)] | [(x)-[f]->(z)], (y)-[g]->(w)`, "conditional")
	wantErr(t, `MATCH (x)[-[e]->(y)]?, (y)-[f]->(w)`, "conditional")
	wantErr(t, `MATCH (x)[-[e]->(y)]? WHERE SAME(x, y)`, "unconditional")
	// A group variable in SAME fails the crossing rule first (it would
	// need aggregation, which SAME arguments cannot be).
	wantErr(t, `MATCH (a) [()-[t]->()]{1,2} (b) WHERE SAME(t, t)`, "group")
	mustAnalyze(t, `MATCH [(x)-[e]->(y)] | [(x)-[f]->(z)] WHERE x.a = 1`)
	// Conditional singletons may be referenced in predicates (NULL when
	// unbound), just not equi-joined or listed in SAME/ALL_DIFFERENT.
	mustAnalyze(t, `MATCH (x)[-[e]->(y)]? WHERE y.flag = 'on' OR y.flag IS NULL`)
}

func TestExpressionChecks(t *testing.T) {
	wantErr(t, `MATCH (x)-[e]->(y) WHERE z.a = 1`, "undeclared")
	wantErr(t, `MATCH (x)-[e]->(y) WHERE x`, "not a predicate")
	wantErr(t, `MATCH (x)-[e]->(y) WHERE x + 1 = 2`, "arithmetic")
	wantErr(t, `MATCH (x)-[e]->(y) WHERE x = 1`, "element reference")
	wantErr(t, `MATCH (x)-[e]->(y) WHERE x < y`, "= and <>")
	wantErr(t, `MATCH (x)-[e]->(y) WHERE x IS DIRECTED`, "edge variable")
	wantErr(t, `MATCH (x)-[e]->(y) WHERE e IS SOURCE OF e`, "node variable")
	wantErr(t, `MATCH (x)-[e]->(y) WHERE x IS SOURCE OF y`, "edge variable")
	wantErr(t, `MATCH p = (x)-[e]->(y) WHERE p.len = 2`, "path variable")
	wantErr(t, `MATCH (x)-[e]->(y) WHERE COUNT(e.*) > 0`, "not a group")
	mustAnalyze(t, `MATCH (x)-[e]->(y) WHERE x.a = 1 AND e IS DIRECTED`)
	mustAnalyze(t, `MATCH (x)-[e]->(y) WHERE x.a IS NULL`)
	mustAnalyze(t, `MATCH (x)-[e]->(y) WHERE x.flag`) // boolean property
}

// §4.7: element equality is a GQL capability; SQL/PGQ must use SAME.
func TestElementEqualityModes(t *testing.T) {
	const q = `MATCH (x)-[e]->(y), (z)-[f]->(y) WHERE x = z`
	if _, err := analyze(t, q, Options{}); err == nil {
		t.Errorf("PGQ mode must reject element equality")
	}
	if _, err := analyze(t, q, Options{AllowElementEquality: true}); err != nil {
		t.Errorf("GQL mode must accept element equality: %v", err)
	}
	// <> is likewise mode-gated; < is rejected in both.
	if _, err := analyze(t, `MATCH (x)-[e]->(y) WHERE x <> y`, Options{AllowElementEquality: true}); err != nil {
		t.Errorf("GQL <> on elements: %v", err)
	}
	if _, err := analyze(t, `MATCH (x)-[e]->(y) WHERE x < y`, Options{AllowElementEquality: true}); err == nil {
		t.Errorf("ordering on elements must be rejected even in GQL mode")
	}
}

// Prefilters may not reference variables of other path patterns.
func TestCrossPatternPrefilter(t *testing.T) {
	wantErr(t, `MATCH (x)-[e]->(y), (a WHERE a.owner = x.owner)-[f]->(b)`, "another path pattern")
	mustAnalyze(t, `MATCH (x)-[e]->(y), (a)-[f]->(b) WHERE a.owner = x.owner`)
}

func TestColumnsOrder(t *testing.T) {
	p := mustAnalyze(t, `MATCH q = (b)-[e]->(a), (a)-[f]->(c)`)
	got := strings.Join(p.Columns, ",")
	if got != "q,b,e,a,f,c" {
		t.Errorf("column order: %s", got)
	}
}

func TestProgShape(t *testing.T) {
	p := mustAnalyze(t, `MATCH TRAIL (a)-[e]->*(b)`)
	prog := p.Paths[0].Prog
	if prog.NumScopes != 1 {
		t.Errorf("path-level restrictor: want 1 scope, got %d", prog.NumScopes)
	}
	if prog.NumQuants != 1 {
		t.Errorf("want 1 quantifier, got %d", prog.NumQuants)
	}
	ops := map[OpCode]int{}
	for _, in := range prog.Instrs {
		ops[in.Op]++
	}
	for _, op := range []OpCode{OpNode, OpEdge, OpAccept, OpScopeStart, OpScopeEnd, OpLoopStart, OpLoopCheck, OpIterStart, OpIterEnd, OpLoopEnd} {
		if ops[op] == 0 {
			t.Errorf("program lacks %v instruction:\n%s", op, prog)
		}
	}
	if !strings.Contains(prog.String(), "accept") {
		t.Errorf("disassembly should mention accept")
	}
}

func TestTagInstructions(t *testing.T) {
	p := mustAnalyze(t, `MATCH (c:City) |+| (c:Country)`)
	tags := 0
	for _, in := range p.Paths[0].Prog.Instrs {
		if in.Op == OpTag {
			tags++
		}
	}
	if tags != 2 {
		t.Errorf("multiset alternation: want 2 tag instructions, got %d", tags)
	}
	p = mustAnalyze(t, `MATCH (c:City) | (c:Country)`)
	for _, in := range p.Paths[0].Prog.Instrs {
		if in.Op == OpTag {
			t.Errorf("set union must not emit tags")
		}
	}
}

func TestOpCodeStrings(t *testing.T) {
	for op := OpNode; op <= OpAccept; op++ {
		if op.String() == "" || strings.HasPrefix(op.String(), "op(") {
			t.Errorf("opcode %d lacks a name", op)
		}
	}
	for _, k := range []VarKind{VarNode, VarEdge, VarPath} {
		if k.String() == "" {
			t.Errorf("var kind %d lacks a name", k)
		}
	}
}

// LISTAGG follows the aggregate crossing rules: group references only.
func TestListaggStaticRules(t *testing.T) {
	mustAnalyze(t, `MATCH (a) [()-[t]->()]{1,3} (b) WHERE LISTAGG(t, ',') = 'x'`)
	mustAnalyze(t, `MATCH (a) [()-[t]->()]{1,3} (b) WHERE LISTAGG(t.date) = 'x'`)
	wantErr(t, `MATCH (a)-[t]->(b) WHERE LISTAGG(t, ',') = 'x'`, "not a group reference")
	// SUM over bare elements stays rejected while LISTAGG is allowed.
	wantErr(t, `MATCH (a) [()-[t]->()]{1,3} (b) WHERE SUM(t) > 1`, "property reference")
}
