package plan

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"gpml/internal/ast"
	"gpml/internal/graph"
)

// Cyclic-core detection for worst-case-optimal joins. Bind-joins handle
// acyclic multi-pattern statements well — each step's shared variable
// prunes as it enumerates — but on cyclic cores (the §4.2 triangle shape)
// every bind-join order materializes an intermediate that is
// asymptotically larger than the output. A leapfrog-style multi-way
// intersection over the variables of the cycle avoids that blow-up. This
// file finds the cyclic core of the join graph and orders the remaining
// patterns around it; the eval layer supplies the intersection executor.

// CorePlan describes the cyclic core of a multi-pattern join: the
// single-edge flat-chain patterns forming a 2-edge-connected subgraph of
// the variable join graph, the node variables of that subgraph in
// elimination order, and the cost-model estimates the dispatch decision
// is based on.
type CorePlan struct {
	// Patterns indexes Plan.Paths, ascending. Every core pattern is a
	// single-edge flat chain with distinct named singleton endpoints.
	Patterns []int
	// Vars is the intersection's variable elimination order: each
	// variable after the first is constrained by at least one core
	// pattern whose other endpoint precedes it.
	Vars []string
	// BindCost estimates the intermediate-row work of solving the core
	// with bind-joins; WCOCost estimates the leapfrog work. The
	// intersection operator is dispatched when WCOCost <= BindCost.
	BindCost float64
	WCOCost  float64
}

// UseIntersect reports the cost-model decision: dispatch the core to the
// intersection operator (rather than leaving it to bind-joins).
func (c *CorePlan) UseIntersect() bool { return c.WCOCost <= c.BindCost }

// String renders the core for Explain output.
func (c *CorePlan) String() string {
	pats := make([]string, len(c.Patterns))
	for i, p := range c.Patterns {
		pats[i] = fmt.Sprint(p)
	}
	return fmt.Sprintf("patterns %s vars=%s est-bind=%.3g est-wco=%.3g",
		strings.Join(pats, ","), strings.Join(c.Vars, ","), c.BindCost, c.WCOCost)
}

// coreEdge is one candidate pattern viewed as an edge of the variable
// join graph.
type coreEdge struct {
	pattern    int
	head, tail string
}

// DetectCyclicCore finds the cyclic core of the statement's join graph:
// the largest set of single-edge flat-chain patterns in which every
// endpoint variable is shared by at least two core patterns (the 2-core
// of the variable multigraph), restricted to one connected component.
// Returns nil when no core of at least three patterns over at least
// three variables exists — smaller shapes gain nothing over bind-joins.
// stats aligns with p.Paths as in OrderJoin.
func DetectCyclicCore(p *Plan, stats []graph.StoreStats) *CorePlan {
	var cands []coreEdge
	for i, pp := range p.Paths {
		if pp.Chain == nil || len(pp.Chain.Edges) != 1 {
			continue
		}
		head, tail := pp.Chain.Nodes[0].Var, pp.Chain.Nodes[1].Var
		if ast.IsAnonVar(head) || ast.IsAnonVar(tail) || head == tail {
			continue
		}
		// The edge variable must not itself join other patterns (the
		// intersection joins on node variables only), nor repeat an
		// endpoint variable — that equality is kind-mismatched and the
		// pattern matches nothing, which the intersection would not see.
		if ev := pp.Chain.Edges[0].Var; !ast.IsAnonVar(ev) &&
			(ev == head || ev == tail || len(p.Var(ev).Patterns) > 1) {
			continue
		}
		cands = append(cands, coreEdge{pattern: i, head: head, tail: tail})
	}
	if len(cands) < 3 {
		return nil
	}

	// Peel to the 2-core: drop patterns with an endpoint of degree < 2
	// until a fixpoint. What survives is a union of cycles (every
	// variable has two or more incident core patterns).
	alive := make([]bool, len(cands))
	deg := map[string]int{}
	for i, c := range cands {
		alive[i] = true
		deg[c.head]++
		deg[c.tail]++
	}
	for changed := true; changed; {
		changed = false
		for i, c := range cands {
			if alive[i] && (deg[c.head] < 2 || deg[c.tail] < 2) {
				alive[i] = false
				deg[c.head]--
				deg[c.tail]--
				changed = true
			}
		}
	}

	// Keep one connected component: the one containing the earliest
	// surviving pattern, grown by shared variables.
	first := -1
	for i := range cands {
		if alive[i] {
			first = i
			break
		}
	}
	if first < 0 {
		return nil
	}
	inComp := map[string]bool{cands[first].head: true, cands[first].tail: true}
	comp := []int{first}
	taken := map[int]bool{first: true}
	for grew := true; grew; {
		grew = false
		for i, c := range cands {
			if !alive[i] || taken[i] {
				continue
			}
			if inComp[c.head] || inComp[c.tail] {
				taken[i] = true
				inComp[c.head], inComp[c.tail] = true, true
				comp = append(comp, i)
				grew = true
			}
		}
	}
	sort.Ints(comp)
	if len(comp) < 3 || len(inComp) < 3 {
		return nil
	}

	core := &CorePlan{}
	compDeg := map[string]int{}
	for _, i := range comp {
		core.Patterns = append(core.Patterns, cands[i].pattern)
		compDeg[cands[i].head]++
		compDeg[cands[i].tail]++
	}
	core.Vars = eliminationOrder(cands, comp, compDeg)
	core.BindCost, core.WCOCost = coreCosts(p, stats, core.Patterns)
	return core
}

// eliminationOrder picks the intersection's variable order: start at the
// highest-degree variable (ties to the one appearing first scanning core
// patterns head-then-tail), then repeatedly append the variable with the
// most already-ordered neighbours (same tie-break). Every variable after
// the first therefore has at least one bound neighbour, so candidate
// generation always intersects adjacency lists rather than scanning.
func eliminationOrder(cands []coreEdge, comp []int, deg map[string]int) []string {
	var appear []string
	seen := map[string]bool{}
	note := func(v string) {
		if !seen[v] {
			seen[v] = true
			appear = append(appear, v)
		}
	}
	for _, i := range comp {
		note(cands[i].head)
		note(cands[i].tail)
	}
	ordered := map[string]bool{}
	var out []string
	boundNeighbours := func(v string) int {
		n := 0
		for _, i := range comp {
			c := cands[i]
			if c.head == v && ordered[c.tail] || c.tail == v && ordered[c.head] {
				n++
			}
		}
		return n
	}
	for len(out) < len(appear) {
		best := ""
		bestKey := [2]int{-1, -1}
		for _, v := range appear {
			if ordered[v] {
				continue
			}
			key := [2]int{boundNeighbours(v), deg[v]}
			if len(out) == 0 {
				key[0] = 0 // nothing bound yet: rank on degree alone
			}
			if key[0] > bestKey[0] || (key[0] == bestKey[0] && key[1] > bestKey[1]) {
				best, bestKey = v, key
			}
		}
		ordered[best] = true
		out = append(out, best)
	}
	return out
}

// coreCosts estimates solving the core by bind-joins versus by leapfrog
// intersection. The bind-join estimate simulates the greedy order over
// the core alone and charges each step its seeded enumeration work — on a
// cycle the closing pattern's input is the uncut intermediate, which is
// exactly what the intersection avoids. The intersection estimate charges
// the cheapest pattern's scan once, widened by a logarithmic galloping
// factor in the average fanout. Both are heuristic; they only gate the
// dispatch, surfaced by Explain.
func coreCosts(p *Plan, stats []graph.StoreStats, patterns []int) (bind, wco float64) {
	costs := make([]PatternCost, len(patterns))
	for k, i := range patterns {
		var st graph.StoreStats
		if i < len(stats) {
			st = stats[i]
		}
		costs[k] = EstimateCost(p.Paths[i], st)
	}
	sort.Slice(costs, func(a, b int) bool { return costs[a].Rows < costs[b].Rows })
	rows := costs[0].Rows
	bind = rows
	fan := 0.0
	for _, c := range costs[1:] {
		bind += rows * math.Max(1, c.PerSeed)
		rows *= math.Max(c.PerSeed, 1e-9)
	}
	for _, c := range costs {
		fan += c.PerSeed
	}
	fan /= float64(len(costs))
	wco = costs[0].Rows * (1 + math.Log2(1+fan))
	return bind, wco
}

// OrderJoinRemainder orders the patterns outside the intersection core,
// treating every variable the core binds as already bound: the first
// remainder step can therefore already be a seeded bind-join off a core
// variable. The step order mirrors OrderJoin's greedy search.
func OrderJoinRemainder(p *Plan, stats []graph.StoreStats, core *CorePlan) []JoinStep {
	n := len(p.Paths)
	costs := make([]PatternCost, n)
	for i, pp := range p.Paths {
		var st graph.StoreStats
		if i < len(stats) {
			st = stats[i]
		}
		costs[i] = EstimateCost(pp, st)
	}
	bound := map[string]bool{}
	used := make([]bool, n)
	for _, i := range core.Patterns {
		used[i] = true
		pp := p.Paths[i]
		for _, v := range pp.Vars {
			bound[v] = true
		}
		if pv := pp.Pattern.PathVar; pv != "" {
			bound[pv] = true
		}
	}
	steps := make([]JoinStep, 0, n-len(core.Patterns))
	for len(steps) < n-len(core.Patterns) {
		best := -1
		var bestStep JoinStep
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			step := stepFor(p, i, costs[i], bound, used, false)
			if best < 0 || betterStep(step, bestStep) {
				best, bestStep = i, step
			}
		}
		steps = append(steps, bestStep)
		used[best] = true
		pp := p.Paths[best]
		for _, v := range pp.Vars {
			bound[v] = true
		}
		if pv := pp.Pattern.PathVar; pv != "" {
			bound[pv] = true
		}
	}
	return steps
}
