package plan

import (
	"sort"

	"gpml/internal/ast"
)

// Seed-label analysis: labels every match's first node must carry. The
// evaluator starts every match at the pattern's first node position; when
// that position provably requires a label, evaluation can seed from the
// store's NodesWithLabel index instead of scanning all nodes, and the
// store's cardinality statistics pick the cheapest such label at run time.

// seedLabels computes the required labels of a pattern's first node. The
// result is sound but not complete: every returned label is carried by the
// first node of every match, and an empty result means no label could be
// proven (evaluation falls back to a full scan).
func seedLabels(e ast.PathExpr) []string {
	set, _ := seedConstraint(e)
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// seedConstraint walks the leading elements of e. It returns the implied
// label set of the first node position and whether the walk consumed an
// edge (after which later elements no longer constrain the first node).
// Consecutive node patterns before the first edge all bind the same
// position, so their implied labels accumulate.
func seedConstraint(e ast.PathExpr) (map[string]struct{}, bool) {
	switch x := e.(type) {
	case *ast.Concat:
		acc := map[string]struct{}{}
		for _, el := range x.Elems {
			labels, moved := seedConstraint(el)
			for l := range labels {
				acc[l] = struct{}{}
			}
			if moved {
				return acc, true
			}
		}
		return acc, false
	case *ast.NodePattern:
		return impliedLabels(x.Label), false
	case *ast.EdgePattern:
		return nil, true
	case *ast.Paren:
		return seedConstraint(x.Expr)
	case *ast.Quantified:
		if x.Question || x.Min == 0 {
			// The body may be skipped entirely: it proves nothing about the
			// first node, and the position may or may not have moved. Treat
			// it as moved so later elements are not misattributed to the
			// first position.
			return nil, true
		}
		return seedConstraint(x.Inner)
	case *ast.Union:
		if len(x.Branches) == 0 {
			return nil, true
		}
		// A label is required only when every branch requires it. If any
		// branch consumes an edge, stop accumulating afterwards.
		acc, moved := seedConstraint(x.Branches[0])
		for _, br := range x.Branches[1:] {
			labels, m := seedConstraint(br)
			for l := range acc {
				if _, ok := labels[l]; !ok {
					delete(acc, l)
				}
			}
			moved = moved || m
		}
		return acc, moved
	default:
		return nil, true
	}
}

// impliedLabels returns the labels every element matching the expression
// must carry: a plain name implies itself, a conjunction implies both
// sides' labels, a disjunction implies the labels common to all
// alternatives, and negation/wildcard imply nothing.
func impliedLabels(e ast.LabelExpr) map[string]struct{} {
	switch x := e.(type) {
	case *ast.LabelName:
		return map[string]struct{}{x.Name: {}}
	case *ast.LabelAnd:
		out := impliedLabels(x.L)
		for l := range impliedLabels(x.R) {
			out[l] = struct{}{}
		}
		return out
	case *ast.LabelOr:
		out := impliedLabels(x.L)
		right := impliedLabels(x.R)
		for l := range out {
			if _, ok := right[l]; !ok {
				delete(out, l)
			}
		}
		return out
	default: // nil, wildcard, negation
		return nil
	}
}
