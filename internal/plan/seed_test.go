package plan

import (
	"reflect"
	"testing"
)

// Seed-label inference must be sound: every returned label is carried by
// the first node of every match. The cases cover accumulation across
// consecutive node patterns, conjunction/disjunction/negation in label
// expressions, skippable quantifiers and union intersection.
func TestSeedLabels(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		{`MATCH (a:Account)-[t:Transfer]->(b)`, []string{"Account"}},
		{`MATCH (a)`, nil},
		{`MATCH (a:Account&Vip)`, []string{"Account", "Vip"}},
		{`MATCH (a:Account|Phone)`, nil},
		{`MATCH (a:Account|Account)`, []string{"Account"}},
		{`MATCH (a:!Account)`, nil},
		{`MATCH (a:%)`, nil},
		// Consecutive node patterns constrain the same position.
		{`MATCH (a:Account)(b:Vip)-[e]->(c)`, []string{"Account", "Vip"}},
		// After the first edge, later labels no longer apply to the seed.
		{`MATCH (a:Account)-[e]->(b:City)`, []string{"Account"}},
		// A skippable quantifier proves nothing about the first node.
		{`MATCH TRAIL [(a:City)-[e]->(b)]*(z:Account)`, nil},
		{`MATCH [(a:City)-[e]->(b)]{0,3}(z:Account)`, nil},
		{`MATCH [(a:City)-[e]->(b)]?(z:Account)`, nil},
		// A mandatory quantifier starts at its body's first node.
		{`MATCH TRAIL [(a:Account)-[e:Transfer]->(b)]+(z)`, []string{"Account"}},
		// Union branches intersect.
		{`MATCH (a:Account)-[e]->(b) | (c:Account&Vip)-[f]->(d)`, []string{"Account"}},
		{`MATCH (a:Account)-[e]->(b) | (c:City)-[f]->(d)`, nil},
	}
	for _, c := range cases {
		p := mustAnalyze(t, c.src)
		if got := p.Paths[0].SeedLabels; !reflect.DeepEqual(got, c.want) {
			t.Errorf("seedLabels(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}

// Multi-pattern statements infer seed labels per path pattern.
func TestSeedLabelsPerPattern(t *testing.T) {
	p := mustAnalyze(t, `MATCH (a:Account)-[t:Transfer]->(b), (c:City)<-[l:isLocatedIn]-(a)`)
	if got := p.Paths[0].SeedLabels; !reflect.DeepEqual(got, []string{"Account"}) {
		t.Errorf("pattern 0 seed labels: %v", got)
	}
	if got := p.Paths[1].SeedLabels; !reflect.DeepEqual(got, []string{"City"}) {
		t.Errorf("pattern 1 seed labels: %v", got)
	}
}
