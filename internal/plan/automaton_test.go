package plan

import (
	"strings"
	"testing"
)

// Automaton eligibility: the product-graph engine may only take patterns
// whose per-step checks are memoryless and whose selector the
// shortest-match set determines exactly.
func TestAutomatonEligibility(t *testing.T) {
	cases := []struct {
		src      string
		eligible bool
		reason   string // substring of AutomatonReason when ineligible
	}{
		// Eligible: ALL SHORTEST on bounded and unbounded patterns.
		{`MATCH ALL SHORTEST (a)-[e:Transfer]->+(b)`, true, ""},
		{`MATCH ALL SHORTEST (a:Account)-[e]->{2,4}(b)`, true, ""},
		// Eligible: ANY-family on bounded (DFS-mode) patterns only.
		{`MATCH ANY SHORTEST (a)-[e]->{1,6}(b)`, true, ""},
		{`MATCH ANY (a)-[e]->{1,3}(b WHERE b.isBlocked='yes')`, true, ""},
		{`MATCH ANY SHORTEST (a)-[e]->+(b)`, false, "ANY-family selector on an unbounded pattern"},
		// Ineligible selectors.
		{`MATCH (a)-[e]->{1,3}(b)`, false, "no selector"},
		{`MATCH SHORTEST 2 (a)-[e]->+(b)`, false, "per-state depth sets"},
		// Restrictors need path memory.
		{`MATCH ALL SHORTEST TRAIL (a)-[e]->+(b)`, false, "restrictor TRAIL"},
		{`MATCH ALL SHORTEST (a) [ACYCLIC (x)-[e]->(y)]{1,2} (b)`, false, "restrictor ACYCLIC"},
		// Subpattern WHERE sees the accumulated environment.
		{`MATCH ALL SHORTEST (a) [(x)-[e]->(y) WHERE x.v=1]{1,2} (b)`, false, "subpattern WHERE"},
		// Element WHEREs must be local to the element.
		{`MATCH ALL SHORTEST (a)-[e]->{1,3}(b WHERE b.v = a.v)`, false, `references "a"`},
		// Repeated variables are equi-joins through the environment.
		{`MATCH ALL SHORTEST (a)-[e]->+(a)`, false, `variable "a" is matched at several positions`},
		// The same variable in exclusive union branches binds once per run.
		{`MATCH ALL SHORTEST (a) [-[e:T]->(m) | <-[f:U]-(m)] -[g:T]->{1,2} (b)`, true, ""},
	}
	for _, c := range cases {
		p, err := analyze(t, c.src, Options{})
		if err != nil {
			t.Errorf("analyze %q: %v", c.src, err)
			continue
		}
		pp := p.Paths[0]
		if pp.Automaton != c.eligible {
			t.Errorf("%q: Automaton=%v (reason %q), want %v", c.src, pp.Automaton, pp.AutomatonReason, c.eligible)
			continue
		}
		if !c.eligible && !strings.Contains(pp.AutomatonReason, c.reason) {
			t.Errorf("%q: reason %q does not contain %q", c.src, pp.AutomatonReason, c.reason)
		}
		if c.eligible && pp.AutomatonReason != "" {
			t.Errorf("%q: eligible but reason %q", c.src, pp.AutomatonReason)
		}
	}
}

// CompiledAutomaton memoizes across calls and is safe for reuse.
func TestCompiledAutomatonMemo(t *testing.T) {
	p := mustAnalyze(t, `MATCH ALL SHORTEST (a)-[e:Transfer]->+(b)`)
	pp := p.Paths[0]
	calls := 0
	v1 := pp.CompiledAutomaton(func() any { calls++; return 42 })
	v2 := pp.CompiledAutomaton(func() any { calls++; return 43 })
	if calls != 1 || v1 != 42 || v2 != 42 {
		t.Errorf("memo: calls=%d v1=%v v2=%v", calls, v1, v2)
	}
}
