package plan

import "gpml/internal/ast"

// Stage describes one operator of a pattern's evaluation pipeline for the
// streaming executor: whether it streams rows through (pull-based, no
// buffering beyond the row in flight) or blocks (must buffer input before
// emitting), and why. Surfaced by Explain so a query author can see where
// first-row latency and memory go.
type Stage struct {
	// Name identifies the §6 pipeline stage.
	Name string
	// Blocking reports that the stage buffers: per-seed for selectors
	// (endpoint partitions never span seeds), globally for the canonical
	// sort (applied only by collect-all evaluation).
	Blocking bool
	// Note explains the classification.
	Note string
}

// Stages returns the pattern's pipeline stages in execution order. The
// classification is exact for the streaming executor: enumeration,
// reduction and deduplication stream (dedup keys embed the path, whose
// first node is the seed, so a per-seed seen-set is an exact dedup);
// selectors buffer one seed's matches (Fig 8 partitions on path
// endpoints, and the first endpoint is the seed); the canonical sort is
// the only globally blocking stage and only collect-all evaluation (Eval)
// applies it — Stream skips it and emits in pipeline order.
func (pp *PathPlan) Stages() []Stage {
	out := []Stage{
		{Name: "enumerate", Note: "engines emit matches as found"},
		{Name: "reduce", Note: "per-binding"},
		{Name: "dedup", Note: "per-seed seen-set; keys never span seeds"},
	}
	if sel := pp.Pattern.Selector; sel.Kind != ast.NoSelector {
		out = append(out, Stage{
			Name:     "select " + sel.String(),
			Blocking: true,
			Note:     "buffers one seed's matches; endpoint partitions never span seeds",
		})
	}
	out = append(out, Stage{
		Name:     "sort",
		Blocking: true,
		Note:     "canonical (length, key) order; applied by Eval, skipped by Stream",
	})
	return out
}
