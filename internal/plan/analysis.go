package plan

import (
	"fmt"
	"sync"

	"gpml/internal/ast"
	"gpml/internal/value"
)

// VarKind classifies variables.
type VarKind uint8

// Variable kinds.
const (
	VarNode VarKind = iota
	VarEdge
	VarPath
)

// String names the kind.
func (k VarKind) String() string {
	switch k {
	case VarNode:
		return "node"
	case VarEdge:
		return "edge"
	default:
		return "path"
	}
}

// VarInfo is the static description of a variable (§4.4, §4.6): whether it
// is a group variable (declared under a quantifier), a conditional
// singleton (declared under ? or in only some union branches), and where it
// is declared.
type VarInfo struct {
	Name        string
	Kind        VarKind
	Anon        bool
	Group       bool  // declared under at least one quantifier
	Conditional bool  // singleton that may remain unbound
	QuantChain  []int // ids of enclosing quantifiers at the declaration
	Patterns    map[int]bool
	DeclOrder   int
}

// Mode selects the evaluation strategy for a path pattern.
type Mode uint8

// Evaluation modes.
const (
	// ModeDFS enumerates matches by depth-first search with restrictor
	// pruning; used whenever every unbounded quantifier is bounded by a
	// restrictor (or no unbounded quantifier exists).
	ModeDFS Mode = iota
	// ModeBFS runs the level-synchronous product search used when
	// finiteness of the output is guaranteed only by a selector.
	ModeBFS
)

// Options configures host-language differences.
type Options struct {
	// AllowElementEquality permits p = q on element references (GQL).
	// SQL/PGQ must use SAME/ALL_DIFFERENT instead (§4.7).
	AllowElementEquality bool
}

// PathPlan is the compiled form of one top-level path pattern.
type PathPlan struct {
	Index        int
	Pattern      *ast.PathPattern
	Prog         *Prog
	Mode         Mode
	HasUnbounded bool
	// Vars declared by this pattern (non-anonymous), in declaration order.
	Vars []string
	// SeedLabels are labels every match's first node provably carries
	// (sorted; empty when none could be proven). The evaluator seeds from
	// the store's cheapest label index instead of a full node scan.
	SeedLabels []string
	// HeadVars are the named singleton node variables provably bound to
	// the first path node of every match (sorted). When one of them is
	// already bound by earlier join steps, the bind-join evaluator seeds
	// this pattern's engine runs from the bound values instead of
	// enumerating the pattern in full.
	HeadVars []string
	// TailLabels are labels every match's last node provably carries
	// (sorted) — the endpoint-selectivity input of the join cost model.
	TailLabels []string
	// minSteps is the pattern's cheapest edge-step expansion, for fanout
	// estimation (see EstimateCost).
	minSteps []edgeStep
	// Chain is the pattern's flat node/edge alternation when it has one
	// (no quantifiers, unions, parens, restrictors, selectors, or
	// element WHEREs); nil otherwise. Flat chains are the fragment the
	// vectorized batch pipeline executes natively.
	Chain *FlatChain
	// Automaton reports that the pattern is memoryless and its selector
	// admits product-graph evaluation (see automatonEligibility); the
	// evaluator may then run it as a BFS over (node × automaton state).
	Automaton bool
	// AutomatonReason explains why the automaton engine is unavailable;
	// empty when Automaton is true. Surfaced by -explain.
	AutomatonReason string

	autoOnce sync.Once
	auto     any
}

// CompiledAutomaton memoizes the pattern's compiled automaton across
// evaluations (plans are shared by concurrent Evals, so the memo is
// guarded). The value is opaque to this package; the eval layer supplies
// the builder and interprets the result.
func (pp *PathPlan) CompiledAutomaton(build func() any) any {
	pp.autoOnce.Do(func() { pp.auto = build() })
	return pp.auto
}

// ParamUse records one $name placeholder: its name and the source position
// of its first occurrence, so bind-time errors can point into the query.
type ParamUse struct {
	Name string
	Line int
	Col  int
}

// Plan is the compiled form of a MATCH statement.
type Plan struct {
	Stmt    *ast.MatchStmt // normalized
	Paths   []*PathPlan
	Post    ast.Expr
	Vars    map[string]*VarInfo
	Columns []string // output column order: first-appearance of named vars
	// Params lists the statement's $name placeholders in first-occurrence
	// order. Execution must supply a value for each (CheckBind).
	Params []ParamUse
}

// ParamAt returns the declaration record of a parameter, or nil when the
// statement has no placeholder of that name.
func (p *Plan) ParamAt(name string) *ParamUse {
	for i := range p.Params {
		if p.Params[i].Name == name {
			return &p.Params[i]
		}
	}
	return nil
}

// BindError reports a parameter-binding failure. Line/Col locate the
// placeholder in the query source when the parameter is declared there
// (zero otherwise, e.g. a superfluous argument).
type BindError struct {
	Name string
	Msg  string
	Line int
	Col  int
}

// Error implements the error interface.
func (e *BindError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("bind error at %d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return "bind error: " + e.Msg
}

// Pos returns the placeholder's source position (0,0 when unknown).
func (e *BindError) Pos() (line, col int) { return e.Line, e.Col }

// CheckBind validates an argument set against the plan's placeholders:
// every declared parameter must be supplied and no unknown names may be
// passed. Values are already typed (value.Value), so arity and name
// agreement are the whole static contract; value-level type mismatches
// surface through the usual three-valued comparison semantics at runtime.
func (p *Plan) CheckBind(args map[string]value.Value) error {
	for i := range p.Params {
		u := &p.Params[i]
		if _, ok := args[u.Name]; !ok {
			return &BindError{
				Name: u.Name,
				Msg:  fmt.Sprintf("missing value for parameter $%s", u.Name),
				Line: u.Line,
				Col:  u.Col,
			}
		}
	}
	if len(args) > len(p.Params) {
		for name := range args {
			if p.ParamAt(name) == nil {
				return &BindError{Name: name, Msg: fmt.Sprintf("unknown parameter $%s: not used by the query", name)}
			}
		}
	}
	return nil
}

// Var returns the info for a variable, or nil.
func (p *Plan) Var(name string) *VarInfo { return p.Vars[name] }

// JoinableVar reports whether the variable can carry an implicit
// equi-join between path patterns: a singleton element variable (group
// and path variables have no single join value). The join planner and
// the evaluator's hash-key construction must agree on this predicate, so
// it lives here and both consume it.
func (p *Plan) JoinableVar(name string) bool {
	info := p.Vars[name]
	return info != nil && !info.Group && info.Kind != VarPath
}

// exprSite is a WHERE clause together with its static context.
type exprSite struct {
	expr       ast.Expr
	chain      []int // enclosing quantifier ids
	post       bool  // true for the final WHERE (postfilter)
	patternIdx int
}

// analyzer walks one normalized statement.
type analyzer struct {
	opts  Options
	vars  map[string]*VarInfo
	order int

	// per-pattern state
	patIdx     int
	quants     map[*ast.Quantified]int
	unions     map[*ast.Union]int
	quantByID  map[int]*ast.Quantified
	underRestr map[int]bool // quantifier id -> inside a restrictor scope
	sites      []exprSite
	patVars    []string

	// statement-wide parameter uses, first occurrence per name
	params    []ParamUse
	paramSeen map[string]bool
}

// recordParam notes a $name placeholder encountered during expression
// checking (first occurrence wins; checks run in source order).
func (a *analyzer) recordParam(p *ast.Param) {
	if a.paramSeen[p.Name] {
		return
	}
	if a.paramSeen == nil {
		a.paramSeen = map[string]bool{}
	}
	a.paramSeen[p.Name] = true
	a.params = append(a.params, ParamUse{Name: p.Name, Line: p.Line, Col: p.Col})
}

// Analyze validates the normalized statement and compiles each path
// pattern. The statement must already be normalized.
func Analyze(stmt *ast.MatchStmt, opts Options) (*Plan, error) {
	a := &analyzer{opts: opts, vars: map[string]*VarInfo{}}
	plan := &Plan{Stmt: stmt, Post: stmt.Where, Vars: a.vars}

	for i, pp := range stmt.Patterns {
		a.patIdx = i
		a.quants = map[*ast.Quantified]int{}
		a.unions = map[*ast.Union]int{}
		a.quantByID = map[int]*ast.Quantified{}
		a.underRestr = map[int]bool{}
		a.sites = a.sites[:0]
		a.patVars = nil

		if pp.PathVar != "" {
			if err := a.declare(pp.PathVar, VarPath, nil, false); err != nil {
				return nil, err
			}
		}
		if err := a.walk(pp.Expr, nil, pp.Restrictor != ast.NoRestrictor, false); err != nil {
			return nil, err
		}
		a.markConditionals(pp.Expr)

		// Reference checks for every prefilter site in this pattern.
		for _, site := range a.sites {
			if err := a.checkExpr(site.expr, site, true); err != nil {
				return nil, err
			}
		}

		prog := compileProg(pp, a.quants, a.unions)
		prog.PrefilterGroups = a.prefilterGroups()

		mode, hasUnbounded, err := a.decideMode(pp)
		if err != nil {
			return nil, err
		}
		auto, autoReason := automatonEligibility(pp, mode)
		plan.Paths = append(plan.Paths, &PathPlan{
			Index:           i,
			Pattern:         pp,
			Prog:            prog,
			Mode:            mode,
			HasUnbounded:    hasUnbounded,
			Vars:            a.patVars,
			SeedLabels:      seedLabels(pp.Expr),
			HeadVars:        a.singletonHeadVars(pp.Expr),
			TailLabels:      tailLabels(pp.Expr),
			minSteps:        minEdgeSteps(pp.Expr),
			Chain:           flatChain(pp, prog),
			Automaton:       auto,
			AutomatonReason: autoReason,
		})
	}

	// Postfilter checks (may reference variables of any pattern).
	if stmt.Where != nil {
		site := exprSite{expr: stmt.Where, post: true, patternIdx: -1}
		if err := a.checkExpr(stmt.Where, site, true); err != nil {
			return nil, err
		}
	}

	if err := a.checkJoins(stmt); err != nil {
		return nil, err
	}

	plan.Columns = a.columns()
	plan.Params = a.params
	return plan, nil
}

// declare records a variable declaration site.
func (a *analyzer) declare(name string, kind VarKind, chain []int, anon bool) error {
	info, ok := a.vars[name]
	if !ok {
		info = &VarInfo{
			Name:       name,
			Kind:       kind,
			Anon:       anon,
			Group:      len(chain) > 0,
			QuantChain: append([]int(nil), chain...),
			Patterns:   map[int]bool{a.patIdx: true},
			DeclOrder:  a.order,
		}
		a.order++
		a.vars[name] = info
		if !anon {
			a.patVars = append(a.patVars, name)
		}
		return nil
	}
	if info.Kind != kind {
		return fmt.Errorf("plan: variable %q is used as both a %s variable and a %s variable", name, info.Kind, kind)
	}
	if kind == VarPath {
		return fmt.Errorf("plan: path variable %q declared more than once", name)
	}
	if !info.Patterns[a.patIdx] {
		// Declared in another top-level pattern: an implicit equi-join.
		info.Patterns[a.patIdx] = true
		if len(chain) > 0 || info.Group {
			return fmt.Errorf("plan: group variable %q cannot be shared between path patterns", name)
		}
		if !anon {
			a.patVars = append(a.patVars, name)
		}
		return nil
	}
	if !equalChain(info.QuantChain, chain) {
		return fmt.Errorf("plan: variable %q is declared at different quantifier scopes; a variable cannot be both a group variable and a singleton", name)
	}
	return nil
}

func equalChain(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// walk records declarations, quantifier/union ids and WHERE sites.
// chain is the enclosing quantifier ids; restr reports whether a restrictor
// scope (paren or path-level) encloses the position.
func (a *analyzer) walk(e ast.PathExpr, chain []int, restr bool, underQuestion bool) error {
	switch x := e.(type) {
	case *ast.Concat:
		for _, el := range x.Elems {
			if err := a.walk(el, chain, restr, underQuestion); err != nil {
				return err
			}
		}
		return nil
	case *ast.NodePattern:
		if err := a.declare(x.Var, VarNode, chain, ast.IsAnonVar(x.Var)); err != nil {
			return err
		}
		if x.Where != nil {
			a.sites = append(a.sites, exprSite{expr: x.Where, chain: append([]int(nil), chain...), patternIdx: a.patIdx})
		}
		return nil
	case *ast.EdgePattern:
		if err := a.declare(x.Var, VarEdge, chain, ast.IsAnonVar(x.Var)); err != nil {
			return err
		}
		if x.Where != nil {
			a.sites = append(a.sites, exprSite{expr: x.Where, chain: append([]int(nil), chain...), patternIdx: a.patIdx})
		}
		return nil
	case *ast.Paren:
		r := restr || x.Restrictor != ast.NoRestrictor
		if err := a.walk(x.Expr, chain, r, underQuestion); err != nil {
			return err
		}
		if x.Where != nil {
			a.sites = append(a.sites, exprSite{expr: x.Where, chain: append([]int(nil), chain...), patternIdx: a.patIdx})
		}
		return nil
	case *ast.Quantified:
		if x.Question {
			// ? introduces no group scope (§4.6).
			return a.walk(x.Inner, chain, restr, true)
		}
		id := len(a.quants)
		a.quants[x] = id
		a.quantByID[id] = x
		a.underRestr[id] = restr
		return a.walk(x.Inner, append(chain, id), restr, underQuestion)
	case *ast.Union:
		a.unions[x] = len(a.unions)
		for _, br := range x.Branches {
			if err := a.walk(br, chain, restr, underQuestion); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("plan: unknown path expression %T", e)
	}
}

// markConditionals computes which singleton variables are conditional:
// those not guaranteed to bind in every match of the pattern (§4.6).
func (a *analyzer) markConditionals(e ast.PathExpr) {
	definite := definiteVars(e)
	all := map[string]struct{}{}
	collectDecls(e, all)
	for name := range all {
		info := a.vars[name]
		if info == nil || info.Group || info.Anon {
			continue
		}
		if _, ok := definite[name]; !ok {
			info.Conditional = true
		}
	}
}

// definiteVars returns the variables guaranteed to be bound by every match
// of e.
func definiteVars(e ast.PathExpr) map[string]struct{} {
	out := map[string]struct{}{}
	switch x := e.(type) {
	case *ast.Concat:
		for _, el := range x.Elems {
			for v := range definiteVars(el) {
				out[v] = struct{}{}
			}
		}
	case *ast.NodePattern:
		out[x.Var] = struct{}{}
	case *ast.EdgePattern:
		out[x.Var] = struct{}{}
	case *ast.Paren:
		return definiteVars(x.Expr)
	case *ast.Quantified:
		if x.Min >= 1 && !x.Question {
			return definiteVars(x.Inner)
		}
		if x.Question || x.Min == 0 {
			return out // nothing guaranteed
		}
	case *ast.Union:
		if len(x.Branches) == 0 {
			return out
		}
		out = definiteVars(x.Branches[0])
		for _, br := range x.Branches[1:] {
			next := definiteVars(br)
			for v := range out {
				if _, ok := next[v]; !ok {
					delete(out, v)
				}
			}
		}
	}
	return out
}

func collectDecls(e ast.PathExpr, out map[string]struct{}) {
	ast.WalkPath(e, func(pe ast.PathExpr) bool {
		switch x := pe.(type) {
		case *ast.NodePattern:
			out[x.Var] = struct{}{}
		case *ast.EdgePattern:
			out[x.Var] = struct{}{}
		}
		return true
	})
}

// prefilterGroups collects group variables referenced by prefilters.
func (a *analyzer) prefilterGroups() map[string]bool {
	out := map[string]bool{}
	for _, site := range a.sites {
		for name := range ast.ExprVars(site.expr) {
			info := a.vars[name]
			if info != nil && info.Group && !isPrefix(info.QuantChain, site.chain) {
				out[name] = true
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// isPrefix reports whether decl is a prefix of ref: the declaration's
// quantifier chain encloses the reference, i.e. no quantifier separates
// reference from declaration (the "crossing" criterion of §4.4).
func isPrefix(decl, ref []int) bool {
	if len(decl) > len(ref) {
		return false
	}
	for i := range decl {
		if decl[i] != ref[i] {
			return false
		}
	}
	return true
}

// decideMode enforces the §5 termination rule and picks the engine mode.
func (a *analyzer) decideMode(pp *ast.PathPattern) (Mode, bool, error) {
	hasUnbounded := false
	needBFS := false
	for id, q := range a.quantByID {
		if !q.Unbounded() {
			continue
		}
		hasUnbounded = true
		if a.underRestr[id] {
			continue // bounded by a restrictor: DFS handles it
		}
		if pp.Selector.Kind == ast.NoSelector {
			return 0, false, fmt.Errorf(
				"plan: the unbounded quantifier %s is not in the scope of a restrictor or selector; the query may not terminate (paper §5). Add TRAIL/ACYCLIC/SIMPLE or a selector such as ANY SHORTEST",
				q)
		}
		needBFS = true
	}
	if !needBFS {
		return ModeDFS, hasUnbounded, nil
	}
	// BFS mode cannot track restrictor scopes soundly; the combination of a
	// selector-bounded unbounded quantifier with a restrictor elsewhere in
	// the same pattern is rejected (documented deviation, DESIGN.md §6).
	hasRestrictor := pp.Restrictor != ast.NoRestrictor
	ast.WalkPath(pp.Expr, func(pe ast.PathExpr) bool {
		if p, ok := pe.(*ast.Paren); ok && p.Restrictor != ast.NoRestrictor {
			hasRestrictor = true
		}
		return true
	})
	if hasRestrictor {
		return 0, false, fmt.Errorf("plan: unsupported combination: a selector-bounded unbounded quantifier together with a restrictor in the same path pattern; bound the quantifier with the restrictor or remove it")
	}
	return ModeBFS, hasUnbounded, nil
}

// columns determines the output column order (named variables by first
// appearance).
func (a *analyzer) columns() []string {
	type nv struct {
		name  string
		order int
	}
	var named []nv
	for name, info := range a.vars {
		if info.Anon {
			continue
		}
		named = append(named, nv{name, info.DeclOrder})
	}
	for i := 1; i < len(named); i++ {
		for j := i; j > 0 && named[j].order < named[j-1].order; j-- {
			named[j], named[j-1] = named[j-1], named[j]
		}
	}
	out := make([]string, len(named))
	for i, n := range named {
		out[i] = n.name
	}
	return out
}

// checkJoins applies the cross-pattern rules: implicit equi-joins across
// path patterns must be on unconditional singletons (§4.6).
func (a *analyzer) checkJoins(stmt *ast.MatchStmt) error {
	for name, info := range a.vars {
		if len(info.Patterns) < 2 {
			continue
		}
		if info.Conditional {
			return fmt.Errorf("plan: implicit equi-join on conditional singleton %q is not allowed (paper §4.6)", name)
		}
		if info.Group {
			return fmt.Errorf("plan: group variable %q cannot join path patterns", name)
		}
	}
	return nil
}
