package plan

import (
	"fmt"
	"sort"
	"strings"

	"gpml/internal/ast"
	"gpml/internal/graph"
)

// Join planning: the §6.5 "Multiple patterns" semantics joins per-pattern
// solution sets on shared singleton variables. The order in which the
// patterns are solved does not change the (set of) joined rows, but it
// changes the work dramatically: solving a selective pattern first and
// feeding its endpoint bindings into the next pattern's enumeration (a
// bind join) replaces a full scan of the later pattern's solution space by
// a handful of seeded engine runs. This file provides the static half of
// that planner — which variables can seed a pattern, and a per-pattern
// cardinality estimate over store statistics — plus the greedy
// cost-ordered join-order search the evaluator and Explain consume.

// headConstraint walks the leading elements of e and returns the named
// singleton node variables provably bound to the first node of every
// match, plus whether the walk consumed an edge (after which later
// elements no longer bind the first position). It mirrors seedConstraint;
// variables declared under a quantifier are group variables and excluded
// (a bind join needs a singleton equi-join key).
func headConstraint(e ast.PathExpr) (map[string]struct{}, bool) {
	switch x := e.(type) {
	case *ast.Concat:
		acc := map[string]struct{}{}
		for _, el := range x.Elems {
			vars, moved := headConstraint(el)
			for v := range vars {
				acc[v] = struct{}{}
			}
			if moved {
				return acc, true
			}
		}
		return acc, false
	case *ast.NodePattern:
		if ast.IsAnonVar(x.Var) {
			return nil, false
		}
		return map[string]struct{}{x.Var: {}}, false
	case *ast.EdgePattern:
		return nil, true
	case *ast.Paren:
		return headConstraint(x.Expr)
	case *ast.Quantified:
		if x.Question || x.Min == 0 {
			// The body may be skipped: it proves nothing, and the position
			// may or may not have moved.
			return nil, true
		}
		// Mandatory iterations: anything declared inside is a group
		// variable, so only the moved-ness of the body matters.
		_, moved := headConstraint(x.Inner)
		return nil, moved
	case *ast.Union:
		if len(x.Branches) == 0 {
			return nil, true
		}
		acc, moved := headConstraint(x.Branches[0])
		for _, br := range x.Branches[1:] {
			vars, m := headConstraint(br)
			for v := range acc {
				if _, ok := vars[v]; !ok {
					delete(acc, v)
				}
			}
			moved = moved || m
		}
		return acc, moved
	default:
		return nil, true
	}
}

// headVars returns the sorted named singleton node variables bound to the
// first path node in every match of the pattern. Seeding the pattern's
// engine runs from any of these variables' bound values is exact: every
// solution's path starts at the node the variable is bound to.
func headVars(e ast.PathExpr) []string {
	set, _ := headConstraint(e)
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// singletonHeadVars filters the head variables of the walk by the
// analyzer's classification: a bind-join seed must be a singleton node
// variable (group variables have no single equi-join value).
func (a *analyzer) singletonHeadVars(e ast.PathExpr) []string {
	vars := headVars(e)
	out := vars[:0]
	for _, v := range vars {
		info := a.vars[v]
		if info != nil && !info.Group && info.Kind == VarNode {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// tailConstraint is the mirror of seedConstraint: the implied label set of
// the last node position, walking the pattern back to front.
func tailConstraint(e ast.PathExpr) (map[string]struct{}, bool) {
	switch x := e.(type) {
	case *ast.Concat:
		acc := map[string]struct{}{}
		for i := len(x.Elems) - 1; i >= 0; i-- {
			labels, moved := tailConstraint(x.Elems[i])
			for l := range labels {
				acc[l] = struct{}{}
			}
			if moved {
				return acc, true
			}
		}
		return acc, false
	case *ast.NodePattern:
		return impliedLabels(x.Label), false
	case *ast.EdgePattern:
		return nil, true
	case *ast.Paren:
		return tailConstraint(x.Expr)
	case *ast.Quantified:
		if x.Question || x.Min == 0 {
			return nil, true
		}
		return tailConstraint(x.Inner)
	case *ast.Union:
		if len(x.Branches) == 0 {
			return nil, true
		}
		acc, moved := tailConstraint(x.Branches[0])
		for _, br := range x.Branches[1:] {
			labels, m := tailConstraint(br)
			for l := range acc {
				if _, ok := labels[l]; !ok {
					delete(acc, l)
				}
			}
			moved = moved || m
		}
		return acc, moved
	default:
		return nil, true
	}
}

// tailLabels returns labels every match's last node provably carries
// (sorted; empty when none could be proven) — the endpoint selectivity
// input of the cost model.
func tailLabels(e ast.PathExpr) []string {
	set, _ := tailConstraint(e)
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// edgeStep describes one edge traversal of a pattern's cheapest expansion,
// for fanout estimation.
type edgeStep struct {
	labels []string // labels every matched edge provably carries (sorted)
	wide   bool     // orientation admits both directions / undirected edges
}

// maxShapeSteps caps quantifier unrolling in the shape walk; the fanout
// product saturates long before that on any realistic store.
const maxShapeSteps = 16

// minEdgeSteps returns the edge traversals of the pattern's cheapest
// expansion: quantifiers contribute their minimum iteration count, unions
// their shortest branch. It is a lower bound on the edges any match
// consumes, which makes the derived fanout estimate optimistic but
// consistently so across patterns.
func minEdgeSteps(e ast.PathExpr) []edgeStep {
	switch x := e.(type) {
	case *ast.Concat:
		var out []edgeStep
		for _, el := range x.Elems {
			out = append(out, minEdgeSteps(el)...)
			if len(out) >= maxShapeSteps {
				return out[:maxShapeSteps]
			}
		}
		return out
	case *ast.NodePattern:
		return nil
	case *ast.EdgePattern:
		set := impliedLabels(x.Label)
		labels := make([]string, 0, len(set))
		for l := range set {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		o := x.Orientation
		wide := o.AllowsUndirected() || (o.AllowsLeft() && o.AllowsRight())
		return []edgeStep{{labels: labels, wide: wide}}
	case *ast.Paren:
		return minEdgeSteps(x.Expr)
	case *ast.Quantified:
		if x.Question || x.Min == 0 {
			return nil
		}
		inner := minEdgeSteps(x.Inner)
		if len(inner) == 0 {
			return nil
		}
		var out []edgeStep
		for i := 0; i < x.Min && len(out) < maxShapeSteps; i++ {
			out = append(out, inner...)
		}
		if len(out) > maxShapeSteps {
			out = out[:maxShapeSteps]
		}
		return out
	case *ast.Union:
		if len(x.Branches) == 0 {
			return nil
		}
		best := minEdgeSteps(x.Branches[0])
		for _, br := range x.Branches[1:] {
			if steps := minEdgeSteps(br); len(steps) < len(best) {
				best = steps
			}
		}
		return best
	default:
		return nil
	}
}

// PatternCost is the cardinality estimate of one path pattern under store
// statistics: Seeds candidate start nodes, PerSeed estimated matches
// enumerated per start, Rows the estimated solution count after endpoint
// selectivity. All estimates are heuristic — they only need to rank
// patterns, not predict counts.
type PatternCost struct {
	Seeds   float64
	PerSeed float64
	Rows    float64
	// Scatter is the enumeration-parallelism divisor a full scan of this
	// pattern enjoys: the store's adjacency shard count (>= 1). Seed
	// scans over a partitioned store scatter across per-partition arenas,
	// so a scan step's effective cost is Rows/Scatter; seeded bind-join
	// expansion is per-row work and gets no discount.
	Scatter float64
}

// EstimateCost ranks a pattern against store statistics: seed-label counts
// pick the start-set size, per-step fanout comes from the average degree
// scaled by implied edge-label selectivity, and implied tail labels supply
// endpoint selectivity. Zero-valued stats (no store at hand) degrade to a
// structure-only estimate over a nominal store.
func EstimateCost(pp *PathPlan, st graph.StoreStats) PatternCost {
	nodes := float64(st.Nodes)
	edges := float64(st.Edges)
	if nodes <= 0 {
		// Nominal store: lets Explain rank patterns structurally before a
		// graph is chosen.
		nodes, edges = 1000, 2000
	}
	seeds := nodes
	for _, l := range pp.SeedLabels {
		c := float64(st.NodeLabelCount(l))
		if st.Nodes == 0 {
			c = nodes / 10 // nominal label selectivity
		}
		if c < seeds {
			seeds = c
		}
	}
	perSeed := 1.0
	for _, step := range pp.minSteps {
		// One-directional steps see each edge from one endpoint (E/N);
		// wide steps (undirected or both-ways) see the full average
		// degree (2E/N, StoreStats.AvgDegree).
		fan := edges / nodes
		if step.wide {
			fan *= 2
		}
		if len(step.labels) > 0 && edges > 0 {
			sel := 1.0
			for _, l := range step.labels {
				c := float64(st.EdgeLabelCount(l))
				if st.Edges == 0 {
					c = edges / 4 // nominal label selectivity
				}
				if s := c / edges; s < sel {
					sel = s
				}
			}
			fan *= sel
		}
		if fan < 1e-9 {
			fan = 1e-9
		}
		perSeed *= fan
	}
	rows := seeds * perSeed
	if len(pp.minSteps) > 0 && len(pp.TailLabels) > 0 {
		// Endpoint selectivity: the labels are conjunctive, so the most
		// selective (smallest) one bounds the candidate end nodes.
		best := 1.0
		for _, l := range pp.TailLabels {
			c := float64(st.NodeLabelCount(l))
			if st.Nodes == 0 {
				c = nodes / 10
			}
			if sel := c / nodes; sel < best {
				best = sel
			}
		}
		rows *= best
	}
	scatter := 1.0
	if st.Partitions > 1 {
		scatter = float64(st.Partitions)
	}
	return PatternCost{Seeds: seeds, PerSeed: perSeed, Rows: rows, Scatter: scatter}
}

// JoinStep is one step of the cost-ordered join plan.
type JoinStep struct {
	// Pattern indexes Plan.Paths.
	Pattern int
	// SeedVar is the already-bound head variable whose row bindings seed
	// this pattern's engine runs; "" means full enumeration (the first
	// step, disconnected patterns, and patterns whose shared variables do
	// not include a head variable).
	SeedVar string
	// Connected reports whether the pattern shares at least one singleton
	// variable with the already-joined prefix (a disconnected pattern
	// falls back to a hash join over the cross product).
	Connected bool
	// Est is the pattern's standalone cardinality estimate; Cost is the
	// estimated enumeration work of this step under its seeding decision.
	Est  PatternCost
	Cost float64

	// linked reports whether the pattern shares a singleton variable with
	// any still-unjoined pattern; truly isolated patterns are deferred so
	// their cross product multiplies intermediate rows as late as
	// possible.
	linked bool
}

// String renders the step for Explain output.
func (s JoinStep) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pattern %d", s.Pattern)
	switch {
	case s.SeedVar != "":
		fmt.Fprintf(&b, " bind-join seed=%s est-per-seed=%.3g", s.SeedVar, s.Est.PerSeed)
	case s.Connected:
		fmt.Fprintf(&b, " hash-join est-rows=%.3g", s.Est.Rows)
	default:
		fmt.Fprintf(&b, " scan est-rows=%.3g", s.Est.Rows)
	}
	if s.Est.Scatter > 1 && s.SeedVar == "" {
		fmt.Fprintf(&b, " scatter=%gx", s.Est.Scatter)
	}
	return b.String()
}

// OrderJoin runs the greedy cost-ordered join-order search: start from the
// pattern with the smallest estimated solution count, then repeatedly pick
// the cheapest remaining pattern connected to the already-bound variable
// set — seeded through a bound head variable when one is shared, by its
// full estimate otherwise. Disconnected patterns are considered only when
// nothing connected remains. stats aligns with p.Paths (one store per
// pattern, EvalPlanOn-style); ties break on textual pattern order, so the
// plan is deterministic.
func OrderJoin(p *Plan, stats []graph.StoreStats) []JoinStep {
	n := len(p.Paths)
	costs := make([]PatternCost, n)
	for i, pp := range p.Paths {
		var st graph.StoreStats
		if i < len(stats) {
			st = stats[i]
		}
		costs[i] = EstimateCost(pp, st)
	}
	bound := map[string]bool{}
	used := make([]bool, n)
	steps := make([]JoinStep, 0, n)
	for len(steps) < n {
		best := -1
		var bestStep JoinStep
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			step := stepFor(p, i, costs[i], bound, used, len(steps) == 0)
			if best < 0 || betterStep(step, bestStep) {
				best, bestStep = i, step
			}
		}
		steps = append(steps, bestStep)
		used[best] = true
		pp := p.Paths[best]
		for _, v := range pp.Vars {
			bound[v] = true
		}
		if pv := pp.Pattern.PathVar; pv != "" {
			bound[pv] = true
		}
	}
	return steps
}

// stepFor builds the candidate join step for pattern i against the bound
// variable set.
func stepFor(p *Plan, i int, est PatternCost, bound map[string]bool, used []bool, first bool) JoinStep {
	pp := p.Paths[i]
	step := JoinStep{Pattern: i, Est: est, Cost: scanCost(est), linked: linkedToRemaining(p, i, used)}
	if first {
		return step
	}
	for _, v := range pp.Vars {
		if p.JoinableVar(v) && bound[v] {
			step.Connected = true
			break
		}
	}
	if step.Connected {
		for _, hv := range pp.HeadVars {
			if bound[hv] {
				step.SeedVar = hv
				step.Cost = est.PerSeed
				break
			}
		}
	}
	return step
}

// scanCost is a full-enumeration step's effective cost: the estimated row
// count divided by the store's adjacency-scatter factor (per-partition
// seed ranges enumerate concurrently on a partitioned store). A zero
// Scatter (a hand-built PatternCost) counts as unsharded.
func scanCost(est PatternCost) float64 {
	if est.Scatter > 1 {
		return est.Rows / est.Scatter
	}
	return est.Rows
}

// linkedToRemaining reports whether pattern i shares a singleton variable
// with another still-unjoined pattern — i.e. joining it now lets the join
// graph keep growing connected instead of opening a cross product.
func linkedToRemaining(p *Plan, i int, used []bool) bool {
	for _, v := range p.Paths[i].Vars {
		if !p.JoinableVar(v) {
			continue
		}
		for other := range p.Var(v).Patterns {
			if other != i && !used[other] {
				return true
			}
		}
	}
	return false
}

// betterStep orders candidate steps: connected to the joined prefix beats
// everything; next, patterns that link to still-unjoined patterns beat
// isolated ones (deferring cross products keeps intermediate row counts
// down); then lower estimated cost; equal cost keeps the earlier
// (textual-order) pattern.
func betterStep(a, b JoinStep) bool {
	if a.Connected != b.Connected {
		return a.Connected
	}
	if a.linked != b.linked {
		return a.linked
	}
	return a.Cost < b.Cost
}
