package plan

import (
	"fmt"

	"gpml/internal/ast"
)

// automatonEligibility decides whether a path pattern can be evaluated by
// the product-graph automaton engine: a BFS over (graph node × automaton
// state) that finds shortest matches without enumerating walks. The engine
// is sound only for memoryless patterns — every per-step check must depend
// on the current element alone — and only under selectors whose output the
// shortest-match set determines exactly:
//
//   - ALL SHORTEST on any pattern: the selector keeps exactly the
//     minimal-length matches per endpoint partition, which is what the
//     product search computes.
//   - ANY / ANY SHORTEST on bounded (DFS-mode) patterns: the enumerating
//     engine produces every match and the selector picks the canonical
//     shortest one, which is always among the shortest-match set.
//   - ANY / ANY SHORTEST on unbounded (BFS-mode) patterns stay on the
//     per-state BFS engine: it admits one thread per product state, which
//     is already near-linear, while materializing all shortest matches
//     only to discard all but one can be exponentially worse.
//
// The returned reason (empty when eligible) feeds the -explain output.
func automatonEligibility(pp *ast.PathPattern, mode Mode) (bool, string) {
	switch pp.Selector.Kind {
	case ast.AllShortest:
	case ast.AnyPath, ast.AnyShortest:
		if mode == ModeBFS {
			return false, "ANY-family selector on an unbounded pattern (per-state BFS prunes harder)"
		}
	case ast.NoSelector:
		return false, "no selector (output is the full enumeration)"
	default:
		return false, fmt.Sprintf("selector %s needs per-state depth sets", pp.Selector)
	}
	if pp.Restrictor != ast.NoRestrictor {
		return false, fmt.Sprintf("restrictor %s requires path memory", pp.Restrictor)
	}
	var reason string
	ast.WalkPath(pp.Expr, func(pe ast.PathExpr) bool {
		if reason != "" {
			return false // already failed; prune the rest
		}
		switch x := pe.(type) {
		case *ast.Paren:
			if x.Restrictor != ast.NoRestrictor {
				reason = fmt.Sprintf("restrictor %s requires path memory", x.Restrictor)
			} else if x.Where != nil {
				reason = "subpattern WHERE prefilter evaluates over the accumulated environment"
			}
		case *ast.NodePattern:
			reason = localWhereReason(x.Var, x.Where)
		case *ast.EdgePattern:
			reason = localWhereReason(x.Var, x.Where)
		}
		return reason == ""
	})
	if reason != "" {
		return false, reason
	}
	for name, n := range bindCounts(pp.Expr) {
		if n > 1 {
			return false, fmt.Sprintf("variable %q is matched at several positions (equi-join needs the environment)", name)
		}
	}
	return true, ""
}

// localWhereReason checks that an element WHERE is memoryless: it may
// reference only the element being matched, and not through an aggregate
// (group lists accumulate across iterations, which a product state cannot
// see).
func localWhereReason(own string, where ast.Expr) string {
	if where == nil {
		return ""
	}
	for name, inAgg := range ast.ExprVars(where) {
		if name != own {
			return fmt.Sprintf("WHERE on %q references %q", own, name)
		}
		if inAgg {
			return fmt.Sprintf("WHERE on %q aggregates over the group list", own)
		}
	}
	return ""
}

// bindCounts reports, per named variable, the maximum number of times one
// match can bind it: concatenation adds, union branches are exclusive
// (max), and a quantifier's iterations each bind into a fresh local scope,
// so only the per-iteration count matters.
func bindCounts(e ast.PathExpr) map[string]int {
	switch x := e.(type) {
	case *ast.Concat:
		out := map[string]int{}
		for _, el := range x.Elems {
			for name, n := range bindCounts(el) {
				out[name] += n
			}
		}
		return out
	case *ast.NodePattern:
		if ast.IsAnonVar(x.Var) {
			return nil
		}
		return map[string]int{x.Var: 1}
	case *ast.EdgePattern:
		if ast.IsAnonVar(x.Var) {
			return nil
		}
		return map[string]int{x.Var: 1}
	case *ast.Paren:
		return bindCounts(x.Expr)
	case *ast.Quantified:
		return bindCounts(x.Inner)
	case *ast.Union:
		out := map[string]int{}
		for _, br := range x.Branches {
			for name, n := range bindCounts(br) {
				if n > out[name] {
					out[name] = n
				}
			}
		}
		return out
	default:
		return nil
	}
}
