package plan

import "gpml/internal/ast"

// FlatChain is the shape the vectorized batch pipeline executes natively:
// a strict node/edge alternation with no quantifiers, unions,
// parentheses, restrictors, selectors, or element-level WHERE clauses.
// Every match binds exactly one element per position, so a solution is a
// fixed-width tuple of element indices — the columnar representation the
// batch operators move between each other. Nodes holds positions 0..k,
// Edges positions 1..k (Edges[i] connects Nodes[i] to Nodes[i+1]).
type FlatChain struct {
	Nodes []*ast.NodePattern
	Edges []*ast.EdgePattern
}

// flatChain extracts the chain shape from a compiled pattern, or nil when
// the pattern uses any construct outside the flat fragment. It walks the
// instruction graph rather than the AST: the program is the executable
// truth, and any non-chain construct (quantifier, union, paren WHERE,
// restrictor scope) compiles to an opcode other than node/edge/accept.
func flatChain(pp *ast.PathPattern, prog *Prog) *FlatChain {
	if pp.Selector.Kind != ast.NoSelector {
		return nil
	}
	c := &FlatChain{}
	pc := prog.Start
	for hops := 0; hops <= 2*maxFlatChainLen+1; hops++ {
		in := &prog.Instrs[pc]
		switch in.Op {
		case OpNode:
			if len(c.Nodes) != len(c.Edges) || in.Node.Where != nil {
				return nil
			}
			c.Nodes = append(c.Nodes, in.Node)
		case OpEdge:
			if len(c.Nodes) != len(c.Edges)+1 || in.Edge.Where != nil {
				return nil
			}
			c.Edges = append(c.Edges, in.Edge)
		case OpAccept:
			if len(c.Nodes) != len(c.Edges)+1 {
				return nil
			}
			return c
		default:
			return nil
		}
		pc = in.Next
	}
	return nil // longer than any chain the batch pipeline should handle
}

// maxFlatChainLen caps the chain length the batch pipeline takes on;
// longer chains (which cannot come from hand-written flat patterns at any
// plausible size) stay on the row pipeline.
const maxFlatChainLen = 64
