package plan

import (
	"fmt"
	"strings"
	"testing"

	"gpml/internal/graph"
	"gpml/internal/normalize"
	"gpml/internal/parser"
)

func planFor(t *testing.T, src string) *Plan {
	t.Helper()
	stmt, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	norm, err := normalize.Normalize(stmt)
	if err != nil {
		t.Fatalf("normalize %q: %v", src, err)
	}
	p, err := Analyze(norm, Options{})
	if err != nil {
		t.Fatalf("analyze %q: %v", src, err)
	}
	return p
}

func TestHeadVars(t *testing.T) {
	cases := []struct {
		src  string
		want string // comma-joined head vars of pattern 0
	}{
		{`MATCH (x:Account)-[t:Transfer]->(y)`, "x"},
		{`MATCH (x)(x2:Account)-[t]->(y)`, "x,x2"},
		{`MATCH (y)`, "y"},
		// Anonymous first node: nothing to seed from.
		{`MATCH ()-[t]->(y)`, ""},
		// A quantified prefix with min 0 may skip: later nodes are not
		// provably first.
		{`MATCH [(a)-[t:Transfer]->(b)]{0,2}(z)`, ""},
		// A mandatory quantifier binds only group variables; nothing
		// usable, and vars after the body are past the first position.
		{`MATCH TRAIL (a)-[t:Transfer]->+(z)`, "a"},
		// Union: only vars bound at the first position in every branch.
		{`MATCH [(x:City)-[e]->(y)] | [(x:Country)-[f]->(z)]`, "x"},
		{`MATCH [(x:City)-[e]->(y)] | [(w:Country)-[f]->(z)]`, ""},
		// Optional prefix: position may or may not have moved.
		{`MATCH [(a)-[t]->(b)]?(z)`, ""},
	}
	for _, tc := range cases {
		p := planFor(t, tc.src)
		got := strings.Join(p.Paths[0].HeadVars, ",")
		if got != tc.want {
			t.Errorf("%s: HeadVars = %q, want %q", tc.src, got, tc.want)
		}
	}
}

func TestTailLabels(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`MATCH (x:Account)-[t:Transfer]->(y:City)`, "City"},
		{`MATCH (x:Account)`, "Account"},
		{`MATCH (x)-[t]->(y:City&Country)`, "City,Country"},
		{`MATCH (x)-[t]->[(y:City) | (y:Country)]`, ""},
		{`MATCH (x)-[t]->(y)`, ""},
		// Optional suffix: the last position is not provably labelled.
		{`MATCH (x:Account)-[t]->(y:City)[-[u]->(z:Phone)]?`, ""},
	}
	for _, tc := range cases {
		p := planFor(t, tc.src)
		got := strings.Join(p.Paths[0].TailLabels, ",")
		if got != tc.want {
			t.Errorf("%s: TailLabels = %q, want %q", tc.src, got, tc.want)
		}
	}
}

// statsFixture builds a synthetic stats profile: 1000 nodes of which 10
// are Admin and 500 Account, 2000 Transfer edges and 30 locatedIn edges.
func statsFixture() graph.StoreStats {
	return graph.StoreStats{
		Nodes:      1000,
		Edges:      2030,
		NodeLabels: map[string]int{"Admin": 10, "Account": 500, "City": 20},
		EdgeLabels: map[string]int{"Transfer": 2000, "locatedIn": 30},
	}
}

func TestEstimateCostRanksSelectivity(t *testing.T) {
	st := statsFixture()
	p := planFor(t, `MATCH (a:Admin)-[t:Transfer]->(b), (x:Account)-[u:Transfer]->(y)-[v:Transfer]->(z)`)
	selective := EstimateCost(p.Paths[0], st)
	broad := EstimateCost(p.Paths[1], st)
	if selective.Seeds != 10 {
		t.Errorf("Admin seeds = %v, want 10 (label count)", selective.Seeds)
	}
	if broad.Seeds != 500 {
		t.Errorf("Account seeds = %v, want 500", broad.Seeds)
	}
	if selective.Rows >= broad.Rows {
		t.Errorf("selective pattern estimated at %v rows, broad at %v; expected selective < broad", selective.Rows, broad.Rows)
	}
	if broad.PerSeed <= selective.PerSeed {
		t.Errorf("two-hop per-seed fanout %v should exceed one-hop %v", broad.PerSeed, selective.PerSeed)
	}
}

func TestEstimateCostTailSelectivity(t *testing.T) {
	st := statsFixture()
	p := planFor(t, `MATCH (a:Account)-[t:Transfer]->(b:City), (a2:Account)-[u:Transfer]->(b2)`)
	withTail := EstimateCost(p.Paths[0], st)
	without := EstimateCost(p.Paths[1], st)
	if withTail.Rows >= without.Rows {
		t.Errorf("City-endpoint estimate %v should undercut unconstrained %v", withTail.Rows, without.Rows)
	}
}

func TestEstimateCostTailTakesMostSelectiveLabel(t *testing.T) {
	st := statsFixture() // Account=500, City=20 of 1000 nodes
	p := planFor(t, `MATCH (a)-[t:Transfer]->(b:Account&City), (a2)-[u:Transfer]->(b2:City&Account)`)
	conj := EstimateCost(p.Paths[0], st)
	swapped := EstimateCost(p.Paths[1], st)
	if conj.Rows != swapped.Rows {
		t.Errorf("tail selectivity depends on label spelling order: %v vs %v", conj.Rows, swapped.Rows)
	}
	cityOnly := EstimateCost(planFor(t, `MATCH (a)-[t:Transfer]->(b:City)`).Paths[0], st)
	if conj.Rows != cityOnly.Rows {
		t.Errorf("conjunctive tail should use the most selective label: %v, City-only gives %v", conj.Rows, cityOnly.Rows)
	}
}

func TestEstimateCostNominalStats(t *testing.T) {
	p := planFor(t, `MATCH (a:Account)-[t:Transfer]->(b)`)
	c := EstimateCost(p.Paths[0], graph.StoreStats{})
	if c.Seeds <= 0 || c.PerSeed <= 0 || c.Rows <= 0 {
		t.Errorf("nominal estimate must stay positive, got %+v", c)
	}
}

func TestOrderJoinSelectiveFirstAndSeeds(t *testing.T) {
	st := statsFixture()
	p := planFor(t, `MATCH (x:Account)-[u:Transfer]->(y)-[v:Transfer]->(z), (x:Admin)-[t:Transfer]->(w)`)
	steps := OrderJoin(p, []graph.StoreStats{st, st})
	if steps[0].Pattern != 1 {
		t.Fatalf("first step = pattern %d, want the selective Admin pattern 1\nsteps: %v", steps[0].Pattern, steps)
	}
	if steps[0].SeedVar != "" || steps[0].Connected {
		t.Errorf("first step must be a scan, got %+v", steps[0])
	}
	if steps[1].Pattern != 0 || steps[1].SeedVar != "x" || !steps[1].Connected {
		t.Errorf("second step should bind-join pattern 0 on x, got %+v", steps[1])
	}
}

func TestOrderJoinDisconnectedLast(t *testing.T) {
	st := statsFixture()
	// Patterns 0 and 2 connect through x; pattern 1 is disconnected and
	// should be joined last even though it is cheap.
	p := planFor(t, `MATCH (x:Account)-[u:Transfer]->(y), (q:City), (x)-[t:Transfer]->(w)`)
	steps := OrderJoin(p, []graph.StoreStats{st, st, st})
	if steps[2].Pattern != 1 {
		t.Fatalf("disconnected pattern should come last, got order %v", steps)
	}
	if steps[2].Connected || steps[2].SeedVar != "" {
		t.Errorf("disconnected step must be a scan, got %+v", steps[2])
	}
	if steps[1].SeedVar != "x" {
		t.Errorf("connected step should seed on x, got %+v", steps[1])
	}
}

func TestOrderJoinHashJoinFallbackWithoutHeadVar(t *testing.T) {
	st := statsFixture()
	// Pattern 1 shares y, but y is its tail, not its head: connected,
	// yet not seedable.
	p := planFor(t, `MATCH (x:Admin)-[u:Transfer]->(y), (w:Account)-[t:Transfer]->(y)`)
	steps := OrderJoin(p, []graph.StoreStats{st, st})
	if steps[0].Pattern != 0 {
		t.Fatalf("selective pattern first, got %v", steps)
	}
	second := steps[1]
	if !second.Connected || second.SeedVar != "" {
		t.Errorf("second step should be a connected hash join without seeding, got %+v", second)
	}
	if !strings.Contains(second.String(), "hash-join") {
		t.Errorf("step string %q should mention hash-join", second)
	}
}

func TestJoinStepString(t *testing.T) {
	step := JoinStep{Pattern: 2, SeedVar: "x", Est: PatternCost{PerSeed: 3.5}}
	if got := step.String(); !strings.Contains(got, "pattern 2") || !strings.Contains(got, "seed=x") {
		t.Errorf("step string = %q", got)
	}
	scan := JoinStep{Pattern: 0, Est: PatternCost{Rows: 12}}
	if got := scan.String(); !strings.Contains(got, "scan") {
		t.Errorf("scan string = %q", got)
	}
}

func TestMinEdgeStepsShape(t *testing.T) {
	cases := []struct {
		src   string
		steps int
	}{
		{`MATCH (a)-[t:Transfer]->(b)`, 1},
		{`MATCH (a)-[t:Transfer]->{2,4}(b)`, 2},
		{`MATCH (a)-[t:Transfer]->*(b:X)`, 0},
		{`MATCH (a)[-[t:Transfer]->(m)-[u:Transfer]->(n)]{3,3}(b)`, 6},
		{`MATCH (a)[-[t:A]->(m) | -[u:B]->(m2)-[v:C]->(n)](b)`, 1},
	}
	for _, tc := range cases {
		// Wrap unbounded quantifiers in TRAIL to satisfy termination.
		src := tc.src
		if strings.Contains(src, "*") {
			src = strings.Replace(src, "MATCH ", "MATCH TRAIL ", 1)
		}
		p := planFor(t, src)
		if got := len(p.Paths[0].minSteps); got != tc.steps {
			t.Errorf("%s: %d min edge steps, want %d", tc.src, got, tc.steps)
		}
	}
}

func ExampleOrderJoin() {
	stmt, _ := parser.Parse(`MATCH (x:Admin)-[:isLocatedIn]->(c:City), (x)-[t:Transfer]->(y)`)
	norm, _ := normalize.Normalize(stmt)
	p, _ := Analyze(norm, Options{})
	stats := graph.StoreStats{
		Nodes:      100,
		Edges:      300,
		NodeLabels: map[string]int{"Admin": 2, "City": 5},
		EdgeLabels: map[string]int{"isLocatedIn": 100, "Transfer": 200},
	}
	for i, step := range OrderJoin(p, []graph.StoreStats{stats, stats}) {
		fmt.Printf("step %d: %s\n", i, step)
	}
	// Output:
	// step 0: pattern 0 scan est-rows=0.1
	// step 1: pattern 1 bind-join seed=x est-per-seed=2
}

func TestEstimateCostPartitionScatter(t *testing.T) {
	st := statsFixture()
	p := planFor(t, `MATCH (x:Admin)-[t:Transfer]->(c:City), (x)-[u:Transfer]->(y)`)
	flat := EstimateCost(p.Paths[0], st)
	if flat.Scatter != 1 {
		t.Errorf("unsharded scatter = %v, want 1", flat.Scatter)
	}
	st.Partitions = 4
	sharded := EstimateCost(p.Paths[0], st)
	if sharded.Scatter != 4 {
		t.Errorf("sharded scatter = %v, want 4", sharded.Scatter)
	}
	if sharded.Rows != flat.Rows {
		t.Errorf("partitioning changed the row estimate: %v vs %v", sharded.Rows, flat.Rows)
	}
	// The scan discount shows up in the join plan's first step and in its
	// Explain rendering; seeded steps are per-row work and keep PerSeed.
	steps := OrderJoin(p, []graph.StoreStats{st, st})
	if got := steps[0].Cost; got != steps[0].Est.Rows/4 {
		t.Errorf("scan step cost = %v, want est-rows/4 = %v", got, steps[0].Est.Rows/4)
	}
	if s := steps[0].String(); !strings.Contains(s, "scatter=4x") {
		t.Errorf("scan step rendering %q lacks the scatter factor", s)
	}
	if steps[1].SeedVar == "" {
		t.Fatalf("second step should bind-join, got %s", steps[1])
	}
	if got := steps[1].Cost; got != steps[1].Est.PerSeed {
		t.Errorf("bind-join step cost = %v, want per-seed %v (no scatter discount)", got, steps[1].Est.PerSeed)
	}
	if s := steps[1].String(); strings.Contains(s, "scatter") {
		t.Errorf("seeded step rendering %q should not claim scatter", s)
	}
}
