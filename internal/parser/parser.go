// Package parser implements a recursive-descent parser for GPML statements
// (Section 4 of the paper): MATCH followed by comma-separated path
// patterns, each with optional selector, restrictor and path variable, and
// an optional final WHERE postfilter.
//
// GPML's ASCII-art syntax makes '(', '<', '-', '~', '[' context dependent;
// the parser resolves the ambiguities with bounded backtracking over the
// token stream (e.g. "(x:Account)" is a node pattern while
// "((x)-[e]->(y))" is a parenthesized path pattern).
package parser

import (
	"fmt"
	"strings"

	"gpml/internal/ast"
	"gpml/internal/lexer"
	"gpml/internal/value"
)

// Error is a parse error with position information.
type Error struct {
	Msg  string
	Line int
	Col  int
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Pos returns the 1-based source position the error points at.
func (e *Error) Pos() (line, col int) { return e.Line, e.Col }

// Parser consumes a token stream.
type Parser struct {
	toks []lexer.Token
	pos  int
}

// Parse parses a complete GPML statement: MATCH … [WHERE …].
func Parse(src string) (*ast.MatchStmt, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	stmt, err := p.parseMatch()
	if err != nil {
		return nil, err
	}
	if !p.at(lexer.EOF) {
		return nil, p.errHere("unexpected %s after statement", p.cur())
	}
	return stmt, nil
}

// ParseExpr parses a standalone value expression (used by the SQL/PGQ
// COLUMNS clause and by tests).
func ParseExpr(src string) (ast.Expr, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(lexer.EOF) {
		return nil, p.errHere("unexpected %s after expression", p.cur())
	}
	return e, nil
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

func (p *Parser) cur() lexer.Token  { return p.toks[p.pos] }
func (p *Parser) peek() lexer.Token { return p.peekAt(1) }

func (p *Parser) peekAt(off int) lexer.Token {
	if p.pos+off >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.pos+off]
}

func (p *Parser) at(k lexer.Kind) bool { return p.cur().Kind == k }

func (p *Parser) atKw(words ...string) bool {
	t := p.cur()
	if t.Kind != lexer.KEYWORD {
		return false
	}
	for _, w := range words {
		if t.Text == w {
			return true
		}
	}
	return false
}

func (p *Parser) advance() lexer.Token {
	t := p.cur()
	if t.Kind != lexer.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) expect(k lexer.Kind) (lexer.Token, error) {
	if !p.at(k) {
		return lexer.Token{}, p.errHere("expected %s, found %s", k, p.cur())
	}
	return p.advance(), nil
}

func (p *Parser) expectKw(w string) error {
	if !p.atKw(w) {
		return p.errHere("expected %s, found %s", w, p.cur())
	}
	p.advance()
	return nil
}

func (p *Parser) errHere(format string, args ...any) error {
	t := p.cur()
	return &Error{Msg: fmt.Sprintf(format, args...), Line: t.Line, Col: t.Col}
}

// ---------------------------------------------------------------------------
// Statement level
// ---------------------------------------------------------------------------

func (p *Parser) parseMatch() (*ast.MatchStmt, error) {
	if err := p.expectKw("MATCH"); err != nil {
		return nil, err
	}
	stmt := &ast.MatchStmt{}
	for {
		pp, err := p.parsePathPattern()
		if err != nil {
			return nil, err
		}
		stmt.Patterns = append(stmt.Patterns, pp)
		if !p.at(lexer.COMMA) {
			break
		}
		p.advance()
	}
	if p.atKw("WHERE") {
		p.advance()
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.atKw("KEEP") {
		return nil, p.errHere("KEEP is a GPML language opportunity (paper §7.2) and is not supported; place the selector at the head of the path pattern instead")
	}
	return stmt, nil
}

func (p *Parser) parsePathPattern() (*ast.PathPattern, error) {
	pp := &ast.PathPattern{}
	sel, err := p.parseSelector()
	if err != nil {
		return nil, err
	}
	pp.Selector = sel
	pp.Restrictor = p.parseRestrictor()
	// Optional path variable: IDENT '='.
	if p.at(lexer.IDENT) && p.peek().Kind == lexer.EQ {
		pp.PathVar = p.advance().Text
		p.advance() // '='
	}
	expr, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	pp.Expr = expr
	return pp, nil
}

// parseSelector recognizes the Fig 8 selectors at the head of a path
// pattern: ANY SHORTEST, ALL SHORTEST, ANY, ANY k, SHORTEST k,
// SHORTEST k GROUP.
func (p *Parser) parseSelector() (ast.Selector, error) {
	switch {
	case p.atKw("ANY"):
		p.advance()
		if p.atKw("SHORTEST") {
			p.advance()
			return ast.Selector{Kind: ast.AnyShortest}, nil
		}
		if p.at(lexer.INT) {
			k := p.advance().Int
			if k < 1 {
				return ast.Selector{}, p.errHere("selector count must be at least 1, got %d", k)
			}
			return ast.Selector{Kind: ast.AnyK, K: int(k)}, nil
		}
		return ast.Selector{Kind: ast.AnyPath}, nil
	case p.atKw("ALL"):
		// ALL alone is the default semantics (no selector); Fig 8 only
		// defines ALL SHORTEST.
		if p.peek().Kind == lexer.KEYWORD && p.peek().Text == "SHORTEST" {
			p.advance()
			p.advance()
			return ast.Selector{Kind: ast.AllShortest}, nil
		}
		return ast.Selector{}, p.errHere("expected SHORTEST after ALL (Fig 8 defines ALL SHORTEST)")
	case p.atKw("SHORTEST"):
		p.advance()
		if !p.at(lexer.INT) {
			return ast.Selector{}, p.errHere("expected count after SHORTEST (use ANY SHORTEST or ALL SHORTEST for the unparameterized forms)")
		}
		k := p.advance().Int
		if k < 1 {
			return ast.Selector{}, p.errHere("selector count must be at least 1, got %d", k)
		}
		if p.atKw("GROUP") {
			p.advance()
			return ast.Selector{Kind: ast.ShortestKGroup, K: int(k)}, nil
		}
		return ast.Selector{Kind: ast.ShortestK, K: int(k)}, nil
	default:
		return ast.Selector{}, nil
	}
}

func (p *Parser) parseRestrictor() ast.Restrictor {
	switch {
	case p.atKw("TRAIL"):
		p.advance()
		return ast.Trail
	case p.atKw("ACYCLIC"):
		p.advance()
		return ast.Acyclic
	case p.atKw("SIMPLE"):
		p.advance()
		return ast.Simple
	default:
		return ast.NoRestrictor
	}
}

// ---------------------------------------------------------------------------
// Path pattern expressions
// ---------------------------------------------------------------------------

// parseUnion parses concatenations joined by | and |+| (§4.5),
// left-associatively at equal precedence.
func (p *Parser) parseUnion() (ast.PathExpr, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	if !p.at(lexer.BAR) && !p.at(lexer.MULTIBAR) {
		return first, nil
	}
	u := &ast.Union{Branches: []ast.PathExpr{first}}
	for p.at(lexer.BAR) || p.at(lexer.MULTIBAR) {
		op := ast.SetUnion
		if p.at(lexer.MULTIBAR) {
			op = ast.Multiset
		}
		p.advance()
		br, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		u.Branches = append(u.Branches, br)
		u.Ops = append(u.Ops, op)
	}
	return u, nil
}

// parseConcat parses a maximal sequence of path elements.
func (p *Parser) parseConcat() (ast.PathExpr, error) {
	var elems []ast.PathExpr
	for {
		if !p.startsElement() {
			break
		}
		el, err := p.parseElement()
		if err != nil {
			return nil, err
		}
		elems = append(elems, el)
	}
	if len(elems) == 0 {
		return nil, p.errHere("expected a node pattern, edge pattern or parenthesized path pattern, found %s", p.cur())
	}
	if len(elems) == 1 {
		return elems[0], nil
	}
	return &ast.Concat{Elems: elems}, nil
}

// startsElement reports whether the current token can begin a path element.
func (p *Parser) startsElement() bool {
	switch p.cur().Kind {
	case lexer.LPAREN, lexer.LBRACKET, lexer.LT, lexer.MINUS, lexer.TILDE:
		return true
	default:
		return false
	}
}

// parseElement parses one pattern element with an optional quantifier.
func (p *Parser) parseElement() (ast.PathExpr, error) {
	var (
		el  ast.PathExpr
		err error
	)
	switch p.cur().Kind {
	case lexer.LPAREN:
		el, err = p.parseNodeOrParen()
	case lexer.LBRACKET:
		el, err = p.parseParen(lexer.LBRACKET, lexer.RBRACKET)
	case lexer.LT, lexer.MINUS, lexer.TILDE:
		el, err = p.parseEdgePattern()
	default:
		return nil, p.errHere("expected pattern element, found %s", p.cur())
	}
	if err != nil {
		return nil, err
	}
	return p.parseQuantifierSuffix(el)
}

// parseQuantifierSuffix applies *, +, ?, {m,n} postfix operators.
func (p *Parser) parseQuantifierSuffix(el ast.PathExpr) (ast.PathExpr, error) {
	var q *ast.Quantified
	switch p.cur().Kind {
	case lexer.STAR:
		p.advance()
		q = &ast.Quantified{Inner: el, Min: 0, Max: -1}
	case lexer.PLUS:
		p.advance()
		q = &ast.Quantified{Inner: el, Min: 1, Max: -1}
	case lexer.QUESTION:
		p.advance()
		q = &ast.Quantified{Inner: el, Min: 0, Max: 1, Question: true}
	case lexer.LBRACE:
		p.advance()
		lo, err := p.expect(lexer.INT)
		if err != nil {
			return nil, err
		}
		q = &ast.Quantified{Inner: el, Min: int(lo.Int), Max: int(lo.Int)}
		if p.at(lexer.COMMA) {
			p.advance()
			if p.at(lexer.INT) {
				hi := p.advance()
				q.Max = int(hi.Int)
			} else {
				q.Max = -1
			}
		}
		if _, err := p.expect(lexer.RBRACE); err != nil {
			return nil, err
		}
		if q.Max >= 0 && q.Max < q.Min {
			return nil, p.errHere("quantifier {%d,%d} has upper bound below lower bound", q.Min, q.Max)
		}
	default:
		return el, nil
	}
	switch q.Inner.(type) {
	case *ast.EdgePattern, *ast.Paren:
		return q, nil
	default:
		return nil, p.errHere("quantifiers apply only to edge patterns and parenthesized path patterns (paper §4.4)")
	}
}

// parseNodeOrParen disambiguates "(…)" between a node pattern and a
// parenthesized path pattern by attempting the node pattern first and
// backtracking on failure.
func (p *Parser) parseNodeOrParen() (ast.PathExpr, error) {
	save := p.pos
	np, nodeErr := p.parseNodePattern()
	if nodeErr == nil {
		return np, nil
	}
	nodeConsumed := p.pos - save
	p.pos = save
	paren, parenErr := p.parseParen(lexer.LPAREN, lexer.RPAREN)
	if parenErr == nil {
		return paren, nil
	}
	parenConsumed := p.pos - save
	// Report the error from whichever parse progressed further.
	return nil, pickDeeperError(nodeErr, nodeConsumed, parenErr, parenConsumed)
}

// pickDeeperError chooses the more useful of two backtracking-branch
// failures: the one positioned further into the input. Positions can tie
// even when the branches got unequally far — an error may point at a token
// other than the cursor — so ties fall back to the number of tokens the
// branch consumed before failing; an exact tie keeps a. Both tie-breaks
// are deterministic, so diagnostics are stable across runs.
func pickDeeperError(a error, aConsumed int, b error, bConsumed int) error {
	pa, aok := a.(*Error)
	pb, bok := b.(*Error)
	if aok && bok {
		if pb.Line != pa.Line || pb.Col != pa.Col {
			if pb.Line > pa.Line || (pb.Line == pa.Line && pb.Col > pa.Col) {
				return b
			}
			return a
		}
		if bConsumed > aConsumed {
			return b
		}
		return a
	}
	return b
}

// parseNodePattern parses "(var? (:labelExpr)? (WHERE expr)?)".
func (p *Parser) parseNodePattern() (*ast.NodePattern, error) {
	if _, err := p.expect(lexer.LPAREN); err != nil {
		return nil, err
	}
	np := &ast.NodePattern{}
	if p.at(lexer.IDENT) {
		np.Var = p.advance().Text
	}
	if p.at(lexer.COLON) {
		p.advance()
		le, err := p.parseLabelExpr()
		if err != nil {
			return nil, err
		}
		np.Label = le
	}
	if p.atKw("WHERE") {
		p.advance()
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		np.Where = w
	}
	if _, err := p.expect(lexer.RPAREN); err != nil {
		return nil, err
	}
	return np, nil
}

// parseParen parses "( RESTRICTOR? pathExpr (WHERE expr)? )" with the given
// delimiters (parentheses or square brackets, §4.4).
func (p *Parser) parseParen(open, close lexer.Kind) (*ast.Paren, error) {
	if _, err := p.expect(open); err != nil {
		return nil, err
	}
	par := &ast.Paren{Square: open == lexer.LBRACKET}
	par.Restrictor = p.parseRestrictor()
	inner, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	par.Expr = inner
	if p.atKw("WHERE") {
		p.advance()
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		par.Where = w
	}
	if _, err := p.expect(close); err != nil {
		return nil, err
	}
	return par, nil
}

// ---------------------------------------------------------------------------
// Edge patterns (Fig 5)
// ---------------------------------------------------------------------------

// parseEdgePattern assembles one of the seven orientations, in full
// ("<-[spec]-", "~[spec]~>", …) or abbreviated ("<-", "~>", "-") form.
func (p *Parser) parseEdgePattern() (*ast.EdgePattern, error) {
	switch p.cur().Kind {
	case lexer.LT:
		p.advance()
		switch p.cur().Kind {
		case lexer.MINUS:
			p.advance()
			if p.at(lexer.LBRACKET) {
				// <-[spec]- or <-[spec]->
				ep, err := p.parseEdgeSpec()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(lexer.MINUS); err != nil {
					return nil, err
				}
				if p.at(lexer.GT) {
					p.advance()
					ep.Orientation = ast.LeftOrRight
				} else {
					ep.Orientation = ast.Left
				}
				return ep, nil
			}
			// <- or <->
			if p.at(lexer.GT) {
				p.advance()
				return &ast.EdgePattern{Orientation: ast.LeftOrRight}, nil
			}
			return &ast.EdgePattern{Orientation: ast.Left}, nil
		case lexer.TILDE:
			p.advance()
			if p.at(lexer.LBRACKET) {
				// <~[spec]~
				ep, err := p.parseEdgeSpec()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(lexer.TILDE); err != nil {
					return nil, err
				}
				ep.Orientation = ast.LeftOrUndir
				return ep, nil
			}
			return &ast.EdgePattern{Orientation: ast.LeftOrUndir}, nil
		default:
			return nil, p.errHere("expected '-' or '~' after '<' in edge pattern, found %s", p.cur())
		}
	case lexer.MINUS:
		p.advance()
		if p.at(lexer.LBRACKET) {
			// -[spec]- or -[spec]->
			ep, err := p.parseEdgeSpec()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(lexer.MINUS); err != nil {
				return nil, err
			}
			if p.at(lexer.GT) {
				p.advance()
				ep.Orientation = ast.Right
			} else {
				ep.Orientation = ast.AnyOrientation
			}
			return ep, nil
		}
		if p.at(lexer.GT) {
			p.advance()
			return &ast.EdgePattern{Orientation: ast.Right}, nil
		}
		return &ast.EdgePattern{Orientation: ast.AnyOrientation}, nil
	case lexer.TILDE:
		p.advance()
		if p.at(lexer.LBRACKET) {
			// ~[spec]~ or ~[spec]~>
			ep, err := p.parseEdgeSpec()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(lexer.TILDE); err != nil {
				return nil, err
			}
			if p.at(lexer.GT) {
				p.advance()
				ep.Orientation = ast.UndirOrRight
			} else {
				ep.Orientation = ast.UndirectedEdge
			}
			return ep, nil
		}
		if p.at(lexer.GT) {
			p.advance()
			return &ast.EdgePattern{Orientation: ast.UndirOrRight}, nil
		}
		return &ast.EdgePattern{Orientation: ast.UndirectedEdge}, nil
	default:
		return nil, p.errHere("expected edge pattern, found %s", p.cur())
	}
}

// parseEdgeSpec parses "[var? (:labelExpr)? (WHERE expr)?]".
func (p *Parser) parseEdgeSpec() (*ast.EdgePattern, error) {
	if _, err := p.expect(lexer.LBRACKET); err != nil {
		return nil, err
	}
	ep := &ast.EdgePattern{}
	if p.at(lexer.IDENT) {
		ep.Var = p.advance().Text
	}
	if p.at(lexer.COLON) {
		p.advance()
		le, err := p.parseLabelExpr()
		if err != nil {
			return nil, err
		}
		ep.Label = le
	}
	if p.atKw("WHERE") {
		p.advance()
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ep.Where = w
	}
	if _, err := p.expect(lexer.RBRACKET); err != nil {
		return nil, err
	}
	return ep, nil
}

// ---------------------------------------------------------------------------
// Label expressions (§4.1)
// ---------------------------------------------------------------------------

func (p *Parser) parseLabelExpr() (ast.LabelExpr, error) {
	return p.parseLabelOr()
}

func (p *Parser) parseLabelOr() (ast.LabelExpr, error) {
	l, err := p.parseLabelAnd()
	if err != nil {
		return nil, err
	}
	for p.at(lexer.BAR) {
		p.advance()
		r, err := p.parseLabelAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.LabelOr{L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseLabelAnd() (ast.LabelExpr, error) {
	l, err := p.parseLabelUnary()
	if err != nil {
		return nil, err
	}
	for p.at(lexer.AMP) {
		p.advance()
		r, err := p.parseLabelUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.LabelAnd{L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseLabelUnary() (ast.LabelExpr, error) {
	switch p.cur().Kind {
	case lexer.BANG:
		p.advance()
		x, err := p.parseLabelUnary()
		if err != nil {
			return nil, err
		}
		return &ast.LabelNot{X: x}, nil
	case lexer.PERCENT:
		p.advance()
		return &ast.LabelWildcard{}, nil
	case lexer.IDENT:
		return &ast.LabelName{Name: p.advance().Text}, nil
	case lexer.LPAREN:
		p.advance()
		inner, err := p.parseLabelExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RPAREN); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return nil, p.errHere("expected label expression, found %s", p.cur())
	}
}

// ---------------------------------------------------------------------------
// Value expressions
// ---------------------------------------------------------------------------

func (p *Parser) parseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (ast.Expr, error) {
	l, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	for p.atKw("OR") {
		p.advance()
		r, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: ast.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseXor() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKw("XOR") {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: ast.OpXor, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKw("AND") {
		p.advance()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: ast.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (ast.Expr, error) {
	if p.atKw("NOT") {
		p.advance()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (ast.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case lexer.EQ, lexer.NE, lexer.LT, lexer.LE, lexer.GT, lexer.GE:
		op := map[lexer.Kind]ast.BinOp{
			lexer.EQ: ast.OpEq, lexer.NE: ast.OpNe,
			lexer.LT: ast.OpLt, lexer.LE: ast.OpLe,
			lexer.GT: ast.OpGt, lexer.GE: ast.OpGe,
		}[p.cur().Kind]
		p.advance()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &ast.Binary{Op: op, L: l, R: r}, nil
	case lexer.KEYWORD:
		if p.cur().Text != "IS" {
			return l, nil
		}
		p.advance()
		negate := false
		if p.atKw("NOT") {
			p.advance()
			negate = true
		}
		switch {
		case p.atKw("NULL"):
			p.advance()
			return &ast.IsNull{X: l, Negate: negate}, nil
		case p.atKw("DIRECTED"):
			p.advance()
			v, ok := l.(*ast.VarRef)
			if !ok {
				return nil, p.errHere("IS DIRECTED applies to a variable reference, not %s", l)
			}
			return &ast.IsDirected{Var: v.Name, Negate: negate}, nil
		case p.atKw("SOURCE", "DESTINATION"):
			dest := p.cur().Text == "DESTINATION"
			p.advance()
			if err := p.expectKw("OF"); err != nil {
				return nil, err
			}
			edge, err := p.expect(lexer.IDENT)
			if err != nil {
				return nil, err
			}
			v, ok := l.(*ast.VarRef)
			if !ok {
				return nil, p.errHere("IS SOURCE/DESTINATION OF applies to a variable reference, not %s", l)
			}
			return &ast.EndpointOf{NodeVar: v.Name, EdgeVar: edge.Text, Dest: dest, Negate: negate}, nil
		default:
			return nil, p.errHere("expected NULL, DIRECTED, SOURCE OF or DESTINATION OF after IS, found %s", p.cur())
		}
	default:
		return l, nil
	}
}

func (p *Parser) parseAdd() (ast.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(lexer.PLUS) || p.at(lexer.MINUS) {
		op := ast.OpAdd
		if p.at(lexer.MINUS) {
			op = ast.OpSub
		}
		p.advance()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseMul() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(lexer.STAR) || p.at(lexer.SLASH) || p.at(lexer.PERCENT) {
		var op ast.BinOp
		switch p.cur().Kind {
		case lexer.STAR:
			op = ast.OpMul
		case lexer.SLASH:
			op = ast.OpDiv
		default:
			op = ast.OpMod
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseUnary() (ast.Expr, error) {
	if p.at(lexer.MINUS) {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case lexer.INT:
		p.advance()
		return &ast.Literal{Val: value.Int(t.Int)}, nil
	case lexer.FLOAT:
		p.advance()
		return &ast.Literal{Val: value.Float(t.Float)}, nil
	case lexer.STRING:
		p.advance()
		return &ast.Literal{Val: value.Str(t.Text)}, nil
	case lexer.PARAM:
		p.advance()
		return &ast.Param{Name: t.Text, Line: t.Line, Col: t.Col}, nil
	case lexer.LPAREN:
		p.advance()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RPAREN); err != nil {
			return nil, err
		}
		return inner, nil
	case lexer.KEYWORD:
		switch t.Text {
		case "TRUE":
			p.advance()
			return &ast.Literal{Val: value.Bool(true)}, nil
		case "FALSE":
			p.advance()
			return &ast.Literal{Val: value.Bool(false)}, nil
		case "NULL":
			p.advance()
			return &ast.Literal{Val: value.Null}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX", "LISTAGG":
			return p.parseAggregate()
		case "SAME", "ALL_DIFFERENT":
			return p.parseElementListPredicate()
		default:
			return nil, p.errHere("unexpected %s in expression", t)
		}
	case lexer.IDENT:
		p.advance()
		name := t.Text
		if p.at(lexer.DOT) {
			p.advance()
			switch {
			case p.at(lexer.IDENT):
				return &ast.PropAccess{Var: name, Prop: p.advance().Text}, nil
			case p.at(lexer.STAR):
				p.advance()
				return &ast.PropAccess{Var: name, Prop: "*"}, nil
			case p.at(lexer.KEYWORD):
				// Property names may collide with keywords (e.g. x.count).
				return &ast.PropAccess{Var: name, Prop: strings.ToLower(p.advance().Text)}, nil
			default:
				return nil, p.errHere("expected property name after '.', found %s", p.cur())
			}
		}
		return &ast.VarRef{Name: name}, nil
	default:
		return nil, p.errHere("unexpected %s in expression", t)
	}
}

// parseAggregate parses COUNT/SUM/AVG/MIN/MAX '(' [DISTINCT] arg ')', where
// arg is a variable reference or property access (prop may be '*': the
// paper's COUNT(e.*) form).
func (p *Parser) parseAggregate() (ast.Expr, error) {
	kindTok := p.advance()
	kind, _ := value.ParseAggKind(kindTok.Text)
	if _, err := p.expect(lexer.LPAREN); err != nil {
		return nil, err
	}
	agg := &ast.Aggregate{Kind: kind}
	if p.atKw("DISTINCT") {
		p.advance()
		agg.Distinct = true
	}
	arg, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	switch arg.(type) {
	case *ast.VarRef, *ast.PropAccess:
		agg.Arg = arg
	default:
		return nil, p.errHere("aggregate argument must be a variable or property reference, found %s", arg)
	}
	if kind == value.AggListagg {
		agg.Sep = ", " // PGQL's default
		if p.at(lexer.COMMA) {
			p.advance()
			sep, err := p.expect(lexer.STRING)
			if err != nil {
				return nil, err
			}
			agg.Sep = sep.Text
		}
	}
	if _, err := p.expect(lexer.RPAREN); err != nil {
		return nil, err
	}
	return agg, nil
}

// parseElementListPredicate parses SAME(v1, v2, …) / ALL_DIFFERENT(v1, …).
func (p *Parser) parseElementListPredicate() (ast.Expr, error) {
	kw := p.advance().Text
	if _, err := p.expect(lexer.LPAREN); err != nil {
		return nil, err
	}
	var vars []string
	for {
		v, err := p.expect(lexer.IDENT)
		if err != nil {
			return nil, err
		}
		vars = append(vars, v.Text)
		if !p.at(lexer.COMMA) {
			break
		}
		p.advance()
	}
	if _, err := p.expect(lexer.RPAREN); err != nil {
		return nil, err
	}
	if len(vars) < 2 {
		return nil, p.errHere("%s requires at least two element references", kw)
	}
	if kw == "SAME" {
		return &ast.Same{Vars: vars}, nil
	}
	return &ast.AllDifferent{Vars: vars}, nil
}
