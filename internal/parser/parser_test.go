package parser

import (
	"strings"
	"testing"

	"gpml/internal/ast"
)

func parse(t *testing.T, src string) *ast.MatchStmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return stmt
}

func parseErr(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("parse %q: expected error", src)
	}
	if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
		t.Errorf("parse %q: error %q does not mention %q", src, err, wantSub)
	}
}

func TestNodePatterns(t *testing.T) {
	stmt := parse(t, `MATCH (x:Account WHERE x.isBlocked='no')`)
	c := stmt.Patterns[0].Expr.(*ast.NodePattern)
	if c.Var != "x" {
		t.Errorf("var: %q", c.Var)
	}
	if c.Label.String() != "Account" {
		t.Errorf("label: %v", c.Label)
	}
	if c.Where == nil {
		t.Errorf("where missing")
	}
	// All parts optional.
	parse(t, `MATCH ()`)
	parse(t, `MATCH (x)`)
	parse(t, `MATCH (:Account)`)
	parse(t, `MATCH (WHERE 1=1)`)
}

func TestLabelExpressions(t *testing.T) {
	cases := map[string]string{
		`MATCH (x:Account|IP)`:       "Account|IP",
		`MATCH (x:City&Country)`:     "City&Country",
		`MATCH (x:!%)`:               "!%",
		`MATCH (x:!(City|Country))`:  "!(City|Country)",
		`MATCH (x:A&B|C)`:            "A&B|C",
		`MATCH (x:(A|B)&C)`:          "(A|B)&C",
		`MATCH (x:!A&B)`:             "!A&B",
		`MATCH (x:%)`:                "%",
		`MATCH (x:Account|IP|Phone)`: "Account|IP|Phone",
	}
	for src, want := range cases {
		stmt := parse(t, src)
		np := stmt.Patterns[0].Expr.(*ast.NodePattern)
		if got := np.Label.String(); got != want {
			t.Errorf("%s: label %q, want %q", src, got, want)
		}
	}
}

func TestEdgeOrientations(t *testing.T) {
	// Fig 5: all seven orientations, full and abbreviated forms.
	cases := map[string]ast.Orientation{
		`MATCH (a)<-[e]-(b)`:  ast.Left,
		`MATCH (a)~[e]~(b)`:   ast.UndirectedEdge,
		`MATCH (a)-[e]->(b)`:  ast.Right,
		`MATCH (a)<~[e]~(b)`:  ast.LeftOrUndir,
		`MATCH (a)~[e]~>(b)`:  ast.UndirOrRight,
		`MATCH (a)<-[e]->(b)`: ast.LeftOrRight,
		`MATCH (a)-[e]-(b)`:   ast.AnyOrientation,
		`MATCH (a)<-(b)`:      ast.Left,
		`MATCH (a)~(b)`:       ast.UndirectedEdge,
		`MATCH (a)->(b)`:      ast.Right,
		`MATCH (a)<~(b)`:      ast.LeftOrUndir,
		`MATCH (a)~>(b)`:      ast.UndirOrRight,
		`MATCH (a)<->(b)`:     ast.LeftOrRight,
		`MATCH (a)-(b)`:       ast.AnyOrientation,
	}
	for src, want := range cases {
		stmt := parse(t, src)
		concat := stmt.Patterns[0].Expr.(*ast.Concat)
		ep := concat.Elems[1].(*ast.EdgePattern)
		if ep.Orientation != want {
			t.Errorf("%s: orientation %v, want %v", src, ep.Orientation, want)
		}
	}
}

func TestEdgeSpecParts(t *testing.T) {
	stmt := parse(t, `MATCH -[e:Transfer WHERE e.amount>5M]->`)
	ep := stmt.Patterns[0].Expr.(*ast.EdgePattern)
	if ep.Var != "e" || ep.Label.String() != "Transfer" || ep.Where == nil {
		t.Errorf("edge spec: %+v", ep)
	}
	if ep.Orientation != ast.Right {
		t.Errorf("orientation: %v", ep.Orientation)
	}
	// Empty spec.
	stmt = parse(t, `MATCH -[]->`)
	ep = stmt.Patterns[0].Expr.(*ast.EdgePattern)
	if ep.Var != "" || ep.Label != nil || ep.Where != nil {
		t.Errorf("empty spec: %+v", ep)
	}
}

func TestQuantifiers(t *testing.T) {
	type q struct {
		min, max int
		question bool
	}
	cases := map[string]q{
		`MATCH (a)-[e]->*(b)`:          {0, -1, false},
		`MATCH (a)-[e]->+(b)`:          {1, -1, false},
		`MATCH (a)-[e]->{2,5}(b)`:      {2, 5, false},
		`MATCH (a)-[e]->{3,}(b)`:       {3, -1, false},
		`MATCH (a)-[e]->{4}(b)`:        {4, 4, false},
		`MATCH (a)[-[e]->(c)]?(b)`:     {0, 1, true},
		`MATCH (a)[-[e]->(c)]{0,1}(b)`: {0, 1, false},
	}
	for src, want := range cases {
		stmt := parse(t, src)
		concat := stmt.Patterns[0].Expr.(*ast.Concat)
		quant, ok := concat.Elems[1].(*ast.Quantified)
		if !ok {
			t.Fatalf("%s: second element is %T", src, concat.Elems[1])
		}
		if quant.Min != want.min || quant.Max != want.max || quant.Question != want.question {
			t.Errorf("%s: {%d,%d,q=%v}, want {%d,%d,q=%v}",
				src, quant.Min, quant.Max, quant.Question, want.min, want.max, want.question)
		}
	}
	parseErr(t, `MATCH (a)-[e]->{5,2}(b)`, "upper bound")
	parseErr(t, `MATCH (a)*`, "quantifiers apply only")
}

func TestSelectors(t *testing.T) {
	cases := map[string]ast.Selector{
		`MATCH ANY SHORTEST (a)->(b)`:     {Kind: ast.AnyShortest},
		`MATCH ALL SHORTEST (a)->(b)`:     {Kind: ast.AllShortest},
		`MATCH ANY (a)->(b)`:              {Kind: ast.AnyPath},
		`MATCH ANY 3 (a)->(b)`:            {Kind: ast.AnyK, K: 3},
		`MATCH SHORTEST 2 (a)->(b)`:       {Kind: ast.ShortestK, K: 2},
		`MATCH SHORTEST 2 GROUP (a)->(b)`: {Kind: ast.ShortestKGroup, K: 2},
	}
	for src, want := range cases {
		stmt := parse(t, src)
		if got := stmt.Patterns[0].Selector; got != want {
			t.Errorf("%s: selector %+v, want %+v", src, got, want)
		}
	}
	parseErr(t, `MATCH ALL (a)->(b)`, "SHORTEST")
	parseErr(t, `MATCH SHORTEST (a)->(b)`, "count")
	parseErr(t, `MATCH ANY 0 (a)->(b)`, "at least 1")
}

func TestRestrictors(t *testing.T) {
	cases := map[string]ast.Restrictor{
		`MATCH TRAIL (a)->(b)`:   ast.Trail,
		`MATCH ACYCLIC (a)->(b)`: ast.Acyclic,
		`MATCH SIMPLE (a)->(b)`:  ast.Simple,
		`MATCH (a)->(b)`:         ast.NoRestrictor,
	}
	for src, want := range cases {
		if got := parse(t, src).Patterns[0].Restrictor; got != want {
			t.Errorf("%s: restrictor %v, want %v", src, got, want)
		}
	}
	// Restrictor at the head of a parenthesized pattern (§5.1).
	stmt := parse(t, `MATCH ANY SHORTEST [TRAIL (x)-[e]->*(y)] (z)`)
	concat := stmt.Patterns[0].Expr.(*ast.Concat)
	par := concat.Elems[0].(*ast.Paren)
	if par.Restrictor != ast.Trail {
		t.Errorf("paren restrictor: %v", par.Restrictor)
	}
}

func TestPathVariables(t *testing.T) {
	stmt := parse(t, `MATCH p = (a)->(b)`)
	if stmt.Patterns[0].PathVar != "p" {
		t.Errorf("path var: %q", stmt.Patterns[0].PathVar)
	}
	stmt = parse(t, `MATCH TRAIL p = (a)-[e]->*(b)`)
	if stmt.Patterns[0].PathVar != "p" || stmt.Patterns[0].Restrictor != ast.Trail {
		t.Errorf("restrictor+path var: %+v", stmt.Patterns[0])
	}
}

func TestUnions(t *testing.T) {
	stmt := parse(t, `MATCH (c:City) | (c:Country)`)
	u := stmt.Patterns[0].Expr.(*ast.Union)
	if len(u.Branches) != 2 || u.Ops[0] != ast.SetUnion {
		t.Errorf("union: %+v", u)
	}
	stmt = parse(t, `MATCH (c:City) |+| (c:Country)`)
	u = stmt.Patterns[0].Expr.(*ast.Union)
	if u.Ops[0] != ast.Multiset {
		t.Errorf("multiset: %+v", u)
	}
	stmt = parse(t, `MATCH (a) | (b) |+| (c)`)
	u = stmt.Patterns[0].Expr.(*ast.Union)
	if len(u.Branches) != 3 || u.Ops[0] != ast.SetUnion || u.Ops[1] != ast.Multiset {
		t.Errorf("mixed: %+v", u)
	}
}

func TestGraphPatternsAndWhere(t *testing.T) {
	stmt := parse(t, `
		MATCH (s:Account)-[:signInWithIP]-(),
		      (s)-[t:Transfer WHERE t.amount>1M]->(),
		      (s)~[:hasPhone]~(p:Phone WHERE p.isBlocked='yes')
		WHERE s.owner = 'Mike' AND NOT p.number = '111'`)
	if len(stmt.Patterns) != 3 {
		t.Fatalf("patterns: %d", len(stmt.Patterns))
	}
	if stmt.Where == nil {
		t.Fatalf("postfilter missing")
	}
}

func TestParenDisambiguation(t *testing.T) {
	// Node pattern vs parenthesized path pattern.
	stmt := parse(t, `MATCH ((a)-[e]->(b))`)
	if _, ok := stmt.Patterns[0].Expr.(*ast.Paren); !ok {
		t.Errorf("nested pattern should be a Paren, got %T", stmt.Patterns[0].Expr)
	}
	stmt = parse(t, `MATCH (a)`)
	if _, ok := stmt.Patterns[0].Expr.(*ast.NodePattern); !ok {
		t.Errorf("(a) should be a node pattern, got %T", stmt.Patterns[0].Expr)
	}
	// Square brackets always delimit path patterns.
	stmt = parse(t, `MATCH [(a)-[e]->(b) WHERE e.amount>1M]{2,5}`)
	q := stmt.Patterns[0].Expr.(*ast.Quantified)
	par := q.Inner.(*ast.Paren)
	if !par.Square || par.Where == nil {
		t.Errorf("square paren with where: %+v", par)
	}
}

func TestExpressions(t *testing.T) {
	e, err := ParseExpr(`x.amount > 5M AND (y.owner = 'Jay' OR NOT z.flag)`)
	if err != nil {
		t.Fatal(err)
	}
	want := `x.amount > 5000000 AND (y.owner = 'Jay' OR NOT z.flag)`
	if got := e.String(); got != want {
		t.Errorf("printed: %q want %q", got, want)
	}
	for _, src := range []string{
		`a.x + b.y * 2 - 1 / 3 % 2`,
		`x.a IS NULL`,
		`x.a IS NOT NULL`,
		`e IS DIRECTED`,
		`e IS NOT DIRECTED`,
		`s IS SOURCE OF e`,
		`d IS NOT DESTINATION OF e`,
		`SAME(p, q, r)`,
		`ALL_DIFFERENT(p, q)`,
		`COUNT(e)`,
		`COUNT(e.*)`,
		`COUNT(DISTINCT e)`,
		`SUM(t.amount) > 10M`,
		`AVG(e.x) < 1`,
		`MIN(e.x) <= MAX(e.x)`,
		`TRUE OR FALSE XOR x.a = NULL`,
		`-x.a < 5`,
		`x.a <> 3`,
	} {
		if _, err := ParseExpr(src); err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
		}
	}
}

func TestExpressionErrors(t *testing.T) {
	for _, src := range []string{
		`x.`, `COUNT()`, `SAME(p)`, `SUM(1+2)`, `x IS BANANA`,
		`(a`, `1 +`, `= 3`,
	} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q): expected error", src)
		}
	}
}

func TestStatementErrors(t *testing.T) {
	parseErr(t, ``, "MATCH")
	parseErr(t, `SELECT x`, "MATCH")
	parseErr(t, `MATCH`, "")
	parseErr(t, `MATCH (a) extra`, "unexpected")
	parseErr(t, `MATCH (a)->(b) KEEP ANY SHORTEST`, "KEEP")
	parseErr(t, `MATCH (a`, "")
	parseErr(t, `MATCH -[e:]->`, "label")
	parseErr(t, `MATCH <[e]>`, "")
}

// The printer emits parseable GPML: parse → print → parse is a fixpoint.
func TestPrintParseRoundtrip(t *testing.T) {
	queries := []string{
		`MATCH (x:Account WHERE x.isBlocked = 'no')`,
		`MATCH (a)-[e:Transfer WHERE e.amount > 5000000]->(b)`,
		`MATCH (p:Phone)~[h:hasPhone]~(s:Account)-[t:Transfer]->(d:Account)~[h2:hasPhone]~(p)`,
		`MATCH TRAIL p = (a WHERE a.owner = 'Dave')-[t:Transfer]->*(b WHERE b.owner = 'Aretha')`,
		`MATCH ALL SHORTEST (x)-[e]->+(y)`,
		`MATCH ANY 2 (x)-[e]->{1,3}(y)`,
		`MATCH SHORTEST 2 GROUP (x)-[e]->*(y)`,
		`MATCH (c:City) | (c:Country)`,
		`MATCH (c:City) |+| (c:Country)`,
		`MATCH (x)[-[e]->(y)]?`,
		`MATCH (a)[(n1)-[e]->(n2) WHERE e.amount > 1000000]{2,5}(b) WHERE SUM(e.amount) > 10000000`,
		`MATCH (s)<~[e]~(m)~[f]~>(x)<-[g]->(y)`,
		`MATCH (a:Account&!Phone)`,
		`MATCH (x), (x)-[e]->(y) WHERE SAME(x, y) OR ALL_DIFFERENT(x, y)`,
	}
	for _, src := range queries {
		first := parse(t, src)
		printed := first.String()
		second, err := Parse(printed)
		if err != nil {
			t.Errorf("re-parse of %q (printed %q) failed: %v", src, printed, err)
			continue
		}
		if second.String() != printed {
			t.Errorf("print not a fixpoint:\n  src    %q\n  first  %q\n  second %q", src, printed, second.String())
		}
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	_, err := Parse("MATCH (x:Account\n WHERE")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line < 1 || pe.Col < 1 {
		t.Errorf("position: %d:%d", pe.Line, pe.Col)
	}
}

// The paper's own queries parse (syntax normalized to the common GPML
// core: SELECT-style projection belongs to the host languages).
func TestPaperQueriesParse(t *testing.T) {
	queries := []string{
		// §4 examples.
		`MATCH (x:Account WHERE x.isBlocked='no')`,
		`MATCH -[e:Transfer WHERE e.amount>5M]->`,
		`MATCH (x)`,
		`MATCH (x:Account)`,
		`MATCH (x:Account|IP)`,
		`MATCH (x:Account) WHERE x.isBlocked='no'`,
		`MATCH (x)-[:Transfer]->()-[:isLocatedIn]->(y)`,
		`MATCH -[e]->`,
		`MATCH ~[e]~`,
		`MATCH (x)-[e]->(y)`,
		`MATCH (y WHERE y.owner='Aretha')<-[e:Transfer]-(x)`,
		`MATCH (s)-[e]->(m)-[f]->(t)`,
		`MATCH (p:Phone WHERE p.isBlocked='yes')~[e:hasPhone]~(a1:Account)-[t:Transfer WHERE t.amount>1M]->(a2)`,
		`MATCH (s)-[:Transfer]->(s1)-[:Transfer]->(s2)-[:Transfer]->(s)`,
		`MATCH p = (s)-[:Transfer]->(s1)-[:Transfer]->(s2)-[:Transfer]->(s)`,
		`MATCH (p:Phone)~[:hasPhone]~(s:Account)-[t:Transfer]->(d:Account)~[:hasPhone]~(p)`,
		`MATCH (p:Phone WHERE p.isBlocked='yes')~[:hasPhone]~(s:Account), (s)-[t:Transfer WHERE t.amount>1M]->()`,
		`MATCH (s:Account)-[:SignInWithIP]-(), (s)-[t:Transfer WHERE t.amount>1M]->(), (s)~[:hasPhone]~(p:Phone WHERE p.isBlocked='yes')`,
		`MATCH (a:Account)-[:Transfer]->{2,5}(b:Account)`,
		`MATCH [(a:Account)-[:Transfer]->(b:Account) WHERE a.owner=b.owner]{2,5}`,
		`MATCH (a:Account) [()-[t:Transfer]->() WHERE t.amount>1M]{2,5} (b:Account)`,
		`MATCH (a:Account) [()-[t:Transfer]->() WHERE t.amount>1M]{2,5} (b:Account) WHERE SUM(t.amount)>10M`,
		`MATCH (c:City) | (c:Country)`,
		`MATCH (c:City) |+| (c:Country)`,
		`MATCH ->{1,5} | ->{3,7}`,
		`MATCH ->{1,7}`,
		`MATCH [(x)->(y)] | [(x)->(z)]`,
		`MATCH (x) [->(y)]?`,
		`MATCH [(x:Account)-[:Transfer]->(y:Account WHERE y.isBlocked='yes')] | [(x:Account)-[:Transfer]->()-[:hasPhone]-(p WHERE p.isBlocked='yes')]`,
		`MATCH (x:Account)-[:Transfer]->(y:Account) [~[:hasPhone]~(p)]? WHERE y.isBlocked='yes' OR p.isBlocked='yes'`,
		// §5 examples.
		`MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*(b WHERE b.owner='Aretha')`,
		`MATCH ANY SHORTEST p = (a WHERE a.owner='Dave')-[t:Transfer]->*(b WHERE b.owner='Aretha')`,
		`MATCH ALL SHORTEST TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*(b WHERE b.owner='Aretha')-[r:Transfer]->*(c WHERE c.owner='Mike')`,
		`MATCH (p:Account WHERE p.owner='Natalia')->{1,10}(q:Account WHERE q.owner='Mike')->{1,10}(r:Account WHERE r.owner='Scott')`,
		`MATCH ALL SHORTEST (p:Account WHERE p.owner='Scott')->+(q:Account WHERE q.isBlocked='yes')->+(r:Account WHERE r.owner='Charles')`,
		`MATCH ALL SHORTEST [(x)-[e]->*(y) WHERE COUNT(e.*)/(COUNT(e.*)+1)>1]`,
		`MATCH ALL SHORTEST (x)-[e]->*(y) WHERE COUNT(e.*)/(COUNT(e.*)+1) > 1`,
		`MATCH ALL SHORTEST [TRAIL (x)-[e]->*(y) WHERE COUNT(e.*)/(COUNT(e.*)+1) > 1]`,
		// §6 examples.
		`MATCH TRAIL (a WHERE a.owner='Jay') [-[b:Transfer WHERE b.amount>5M]->]+ (a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]`,
		`MATCH TRAIL (a WHERE a.owner='Jay') [-[b:Transfer WHERE b.amount>5M]->]+ (a)-[:isLocatedIn]->(c:City|Country)`,
	}
	for _, src := range queries {
		if _, err := Parse(src); err != nil {
			t.Errorf("paper query failed to parse:\n  %s\n  %v", src, err)
		}
	}
}

// LISTAGG (§3, PGQL-style) parses with an optional separator.
func TestListaggParsing(t *testing.T) {
	e, err := ParseExpr(`LISTAGG(e, ', ')`)
	if err != nil {
		t.Fatal(err)
	}
	agg, ok := e.(*ast.Aggregate)
	if !ok || agg.Sep != ", " {
		t.Fatalf("LISTAGG: %#v", e)
	}
	e, err = ParseExpr(`LISTAGG(e.ID)`)
	if err != nil {
		t.Fatal(err)
	}
	if agg := e.(*ast.Aggregate); agg.Sep != ", " {
		t.Errorf("default separator: %q", agg.Sep)
	}
	if _, err := ParseExpr(`LISTAGG(e, 5)`); err == nil {
		t.Errorf("non-string separator must fail")
	}
	if _, err := ParseExpr(`LISTAGG(e.ID, '-') = 'a-b'`); err != nil {
		t.Errorf("LISTAGG in comparison: %v", err)
	}
}

// pickDeeperError ties on position must prefer the branch that consumed
// more tokens: the error may point at a token behind the cursor, so the
// position alone can tie even when one branch got much further. The old
// behavior kept branch a unconditionally on a position tie, surfacing
// the shallow node-pattern failure for malformed parenthesized paths.
func TestPickDeeperErrorConsumedTieBreak(t *testing.T) {
	a := &Error{Msg: "shallow", Line: 1, Col: 5}
	b := &Error{Msg: "deep", Line: 1, Col: 5}
	if got := pickDeeperError(a, 1, b, 7).(*Error); got.Msg != "deep" {
		t.Errorf("position tie: want the branch with more consumed tokens, got %q", got.Msg)
	}
	if got := pickDeeperError(a, 7, b, 1).(*Error); got.Msg != "shallow" {
		t.Errorf("position tie: want the branch with more consumed tokens, got %q", got.Msg)
	}
	// Exact tie keeps a (deterministic diagnostics).
	if got := pickDeeperError(a, 3, b, 3).(*Error); got.Msg != "shallow" {
		t.Errorf("exact tie must keep a, got %q", got.Msg)
	}
	// A later position wins regardless of consumption.
	c := &Error{Msg: "later", Line: 1, Col: 9}
	if got := pickDeeperError(a, 100, c, 1).(*Error); got.Msg != "later" {
		t.Errorf("later position must win, got %q", got.Msg)
	}
	if got := pickDeeperError(c, 1, a, 100).(*Error); got.Msg != "later" {
		t.Errorf("later position must win, got %q", got.Msg)
	}
}

// Regression: a malformed parenthesized path pattern must report the
// paren-branch error (which consumed deep into the group) rather than
// the node-pattern branch's shallow failure at the same position.
func TestNodeOrParenErrorDepth(t *testing.T) {
	_, err := Parse(`MATCH ((a)-[e]->(b) WHERE`)
	if err == nil {
		t.Fatal("expected a parse error")
	}
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("want *Error, got %T", err)
	}
	// The paren branch consumes past the inner pattern; its error points
	// well beyond column 8 (where the node branch gives up on '(a)').
	if pe.Col <= 8 {
		t.Errorf("error position %d:%d reports the shallow branch: %v", pe.Line, pe.Col, err)
	}
}

// $name placeholders parse into ast.Param leaves carrying their source
// position.
func TestParamParsing(t *testing.T) {
	e, err := ParseExpr(`x.owner = $owner`)
	if err != nil {
		t.Fatal(err)
	}
	cmp, ok := e.(*ast.Binary)
	if !ok {
		t.Fatalf("want *ast.Binary, got %#v", e)
	}
	p, ok := cmp.R.(*ast.Param)
	if !ok {
		t.Fatalf("want *ast.Param on the right, got %#v", cmp.R)
	}
	if p.Name != "owner" {
		t.Errorf("param name = %q, want owner", p.Name)
	}
	if p.Line != 1 || p.Col != 11 {
		t.Errorf("param position = %d:%d, want 1:11", p.Line, p.Col)
	}
	if got := p.String(); got != "$owner" {
		t.Errorf("String() = %q, want $owner", got)
	}
	if _, err := ParseExpr(`x.owner = $`); err == nil {
		t.Error("bare $ must fail to lex")
	}
}
