package binding

import (
	"math/rand"
	"testing"

	"gpml/internal/graph"
)

// TestColKeyerAgreesWithKeyer pins the batch pipeline's dedup contract:
// for rows of one flat-chain template, ColKeyer over the position tuple
// makes exactly the same equal/distinct decisions as Keyer over the
// corresponding Reduced bindings.
func TestColKeyerAgreesWithKeyer(t *testing.T) {
	// One template: (a)-[e]->(□) — columns node/edge/node, fixed names.
	vars := []string{"a", "e", "□"}
	kinds := []ElemKind{NodeElem, EdgeElem, NodeElem}
	toReduced := func(tuple []graph.ElemIdx) *Reduced {
		r := &Reduced{Path: graph.IdxPath{
			Nodes: []graph.ElemIdx{tuple[0], tuple[2]},
			Edges: []graph.ElemIdx{tuple[1]},
		}}
		for i, v := range tuple {
			r.Cols = append(r.Cols, ReducedCol{Var: vars[i], Kind: kinds[i], Idx: v})
		}
		return r
	}

	rng := rand.New(rand.NewSource(7))
	var tuples [][]graph.ElemIdx
	for i := 0; i < 500; i++ {
		// Small value range on purpose: plenty of collisions to compare,
		// including varint width boundaries around 128.
		tuples = append(tuples, []graph.ElemIdx{
			graph.ElemIdx(rng.Intn(130)),
			graph.ElemIdx(rng.Intn(130)),
			graph.ElemIdx(rng.Intn(130)),
		})
	}

	keyer := NewKeyer()
	var col ColKeyer
	rowKeys := map[string]string{} // keyer key -> colkeyer key
	colKeys := map[string]string{}
	for _, tuple := range tuples {
		rk := string(keyer.Key(toReduced(tuple)))
		ck := string(col.Key(tuple))
		if prev, ok := rowKeys[rk]; ok && prev != ck {
			t.Fatalf("Keyer-equal tuples got distinct ColKeyer keys: %v", tuple)
		}
		rowKeys[rk] = ck
		if prev, ok := colKeys[ck]; ok && prev != rk {
			t.Fatalf("ColKeyer-equal tuples got distinct Keyer keys: %v", tuple)
		}
		colKeys[ck] = rk
	}
	if len(rowKeys) != len(colKeys) {
		t.Fatalf("distinct-key counts diverge: keyer %d, colkeyer %d", len(rowKeys), len(colKeys))
	}
}
