package binding

import (
	"fmt"
	"hash/fnv"
	"testing"

	"gpml/internal/graph"
)

// makeBindings builds n reduced bindings with d duplicate groups.
func makeBindings(n, dupEvery int) []*Reduced {
	out := make([]*Reduced, n)
	for i := 0; i < n; i++ {
		id := i
		if dupEvery > 0 && i%dupEvery == 0 {
			id = 0
		}
		nodeA := graph.NodeID(fmt.Sprintf("n%d", id))
		nodeB := graph.NodeID(fmt.Sprintf("n%d", id+1))
		edge := graph.EdgeID(fmt.Sprintf("e%d", id))
		out[i] = &Reduced{
			Cols: []ReducedCol{
				{Var: "a", Kind: NodeElem, ID: string(nodeA)},
				{Var: "e", Kind: EdgeElem, ID: string(edge)},
				{Var: "b", Kind: NodeElem, ID: string(nodeB)},
			},
			Path: graph.Path{Nodes: []graph.NodeID{nodeA, nodeB}, Edges: []graph.EdgeID{edge}},
		}
	}
	return out
}

// Ablation 2 (DESIGN.md §5): full string keys (the implementation) vs
// 64-bit FNV hashing with no collision handling (the fast-but-unsound
// alternative). The bench quantifies what the correctness of exact keys
// costs.
func BenchmarkAblation_DedupKey(b *testing.B) {
	bindings := makeBindings(10_000, 7)
	b.Run("exact_string_key", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if out := Dedup(bindings); len(out) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("fnv64_hash_key", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seen := make(map[uint64]struct{}, len(bindings))
			kept := 0
			for _, r := range bindings {
				h := fnv.New64a()
				h.Write([]byte(r.Key()))
				k := h.Sum64()
				if _, ok := seen[k]; ok {
					continue
				}
				seen[k] = struct{}{}
				kept++
			}
			if kept == 0 {
				b.Fatal("empty")
			}
		}
	})
}

func BenchmarkReduce(b *testing.B) {
	pb := &PathBinding{
		Entries: []Entry{
			{Var: "a", Kind: NodeElem, ID: "a4"},
			{Var: "b", Iters: []int{0}, Kind: EdgeElem, ID: "t4"},
			{Var: "$n2", Iters: []int{0}, Kind: NodeElem, ID: "a6"},
			{Var: "b", Iters: []int{1}, Kind: EdgeElem, ID: "t5"},
			{Var: "a", Kind: NodeElem, ID: "a4"},
		},
		Path: graph.Path{
			Nodes: []graph.NodeID{"a4", "a6", "a4"},
			Edges: []graph.EdgeID{"t4", "t5"},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := pb.Reduce(); len(r.Cols) != 5 {
			b.Fatal("bad reduce")
		}
	}
}

func BenchmarkKey(b *testing.B) {
	r := makeBindings(1, 0)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if k := r.Key(); len(k) == 0 {
			b.Fatal("empty key")
		}
	}
}
