package binding

import (
	"fmt"
	"hash/fnv"
	"testing"

	"gpml/internal/graph"
)

// benchStore builds a chain graph with n+1 nodes and n edges, the element
// pool the bench bindings intern against.
func benchStore(n int) graph.Store {
	g := graph.New()
	for i := 0; i <= n; i++ {
		if err := g.AddNode(graph.NodeID(fmt.Sprintf("n%d", i)), nil, nil); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n; i++ {
		id := graph.EdgeID(fmt.Sprintf("e%d", i))
		if err := g.AddEdge(id, graph.NodeID(fmt.Sprintf("n%d", i)), graph.NodeID(fmt.Sprintf("n%d", i+1)), nil, nil); err != nil {
			panic(err)
		}
	}
	return g
}

// makeBindings builds n reduced bindings with duplicate groups every
// dupEvery entries.
func makeBindings(n, dupEvery int) []*Reduced {
	s := benchStore(n + 1)
	out := make([]*Reduced, n)
	for i := 0; i < n; i++ {
		id := i
		if dupEvery > 0 && i%dupEvery == 0 {
			id = 0
		}
		na, nb, e := graph.ElemIdx(id), graph.ElemIdx(id+1), graph.ElemIdx(id)
		out[i] = &Reduced{
			Cols: []ReducedCol{
				{Var: "a", Kind: NodeElem, Idx: na},
				{Var: "e", Kind: EdgeElem, Idx: e},
				{Var: "b", Kind: NodeElem, Idx: nb},
			},
			Path: graph.IdxPath{Nodes: []graph.ElemIdx{na, nb}, Edges: []graph.ElemIdx{e}},
			Src:  s,
		}
	}
	return out
}

// Ablation 2 (DESIGN.md §5): the three dedup key designs — compact binary
// keys (the implementation), exact materialized string keys (the
// pre-interning implementation, still available as the StringKeys
// reference mode), and 64-bit FNV hashing with no collision handling (the
// fast-but-unsound alternative). The bench quantifies both what interning
// bought and what exactness costs over a raw hash.
func BenchmarkAblation_DedupKey(b *testing.B) {
	bindings := makeBindings(10_000, 7)
	b.Run("interned_binary_key", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := Dedup(bindings); len(out) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("exact_string_key", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Strip the memo so every iteration pays the materialization,
			// like a fresh evaluation would.
			for _, r := range bindings {
				r.canon = ""
			}
			if out := DedupStrings(bindings); len(out) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("fnv64_hash_key", func(b *testing.B) {
		b.ReportAllocs()
		keyer := NewKeyer()
		for i := 0; i < b.N; i++ {
			seen := make(map[uint64]struct{}, len(bindings))
			kept := 0
			for _, r := range bindings {
				h := fnv.New64a()
				h.Write(keyer.Key(r))
				k := h.Sum64()
				if _, ok := seen[k]; ok {
					continue
				}
				seen[k] = struct{}{}
				kept++
			}
			if kept == 0 {
				b.Fatal("empty")
			}
		}
	})
}

func BenchmarkReduce(b *testing.B) {
	s := benchStore(8)
	pb := &PathBinding{
		Entries: []Entry{
			{Var: "a", Kind: NodeElem, Idx: 0},
			{Var: "b", Iters: IterOf(0), Kind: EdgeElem, Idx: 0},
			{Var: "$n2", Iters: IterOf(0), Kind: NodeElem, Idx: 1},
			{Var: "b", Iters: IterOf(1), Kind: EdgeElem, Idx: 1},
			{Var: "a", Kind: NodeElem, Idx: 0},
		},
		Path: graph.IdxPath{
			Nodes: []graph.ElemIdx{0, 1, 0},
			Edges: []graph.ElemIdx{0, 1},
		},
		Src: s,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := pb.Reduce(); len(r.Cols) != 5 {
			b.Fatal("bad reduce")
		}
	}
}

func BenchmarkKey(b *testing.B) {
	r := makeBindings(1, 0)[0]
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		keyer := NewKeyer()
		for i := 0; i < b.N; i++ {
			if k := keyer.Key(r); len(k) == 0 {
				b.Fatal("empty key")
			}
		}
	})
	b.Run("canon", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.canon = ""
			if k := r.CanonKey(); len(k) == 0 {
				b.Fatal("empty key")
			}
		}
	})
}
