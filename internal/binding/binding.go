// Package binding implements path bindings, the paper's central semantic
// object (§6): a path binding is a sequence of elementary bindings, each a
// pair of a variable and a graph element. Variables under quantifiers carry
// iteration annotations (the paper's superscripts b¹, b², …). Reduction
// strips annotations and merges anonymous variables; reduced bindings are
// collected into a set (deduplication, §6.5), except that matches produced
// by different branches of a multiset alternation |+| carry branch tags
// that keep them distinct.
//
// Bindings are integer-dense: elements are referenced by their interned
// dense index (graph.ElemIdx) relative to the store the binding was
// matched against (Src), and deduplication keys are compact varint-packed
// byte strings (Keyer). Element id strings only exist in two places: the
// canonical textual sort key (CanonKey — computed once per output row,
// when a canonical order or a selector choice is needed) and the
// rendering helpers (String, ValueRow, FormatTable).
package binding

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"gpml/internal/ast"
	"gpml/internal/graph"
)

// ElemKind distinguishes node from edge bindings.
type ElemKind uint8

// Element kinds.
const (
	NodeElem ElemKind = iota
	EdgeElem
)

// String names the kind.
func (k ElemKind) String() string {
	if k == NodeElem {
		return "node"
	}
	return "edge"
}

// Ref identifies a bound graph element by kind and interned dense index.
// A Ref is only meaningful relative to the store that issued the index;
// materialize with ElemID when the id string is needed.
type Ref struct {
	Kind ElemKind
	Idx  graph.ElemIdx
}

// ElemID materializes the id of an interned element against its store.
// It returns "" for a nil store or an out-of-range index (zero-value
// bindings in tests); real bindings always resolve.
func ElemID(s graph.Store, kind ElemKind, idx graph.ElemIdx) string {
	if s == nil {
		return ""
	}
	if kind == NodeElem {
		if n := s.NodeAt(idx); n != nil {
			return string(n.ID)
		}
		return ""
	}
	if e := s.EdgeAt(idx); e != nil {
		return string(e.ID)
	}
	return ""
}

// IterAnn is the iteration annotation of an entry: the iteration indices
// of its enclosing quantifiers, outermost first (the paper's superscripts
// b¹, b²). Up to two nesting levels — the overwhelmingly common case —
// are stored inline, so annotating entries inside typical quantifier
// nests allocates nothing; deeper nests spill to Ext.
type IterAnn struct {
	n      uint8
	inline [2]int32
	ext    []int32
}

// Len reports the nesting depth.
func (a IterAnn) Len() int { return int(a.n) }

// At returns the iteration index at nesting level i (outermost first).
func (a IterAnn) At(i int) int {
	if i < 2 {
		return int(a.inline[i])
	}
	return int(a.ext[i-2])
}

// Push appends one nesting level (innermost last).
func (a *IterAnn) Push(v int) {
	if a.n < 2 {
		a.inline[a.n] = int32(v)
	} else {
		a.ext = append(a.ext, int32(v))
	}
	a.n++
}

// IterOf builds an annotation from explicit levels, for tests and
// fixtures.
func IterOf(levels ...int) IterAnn {
	var a IterAnn
	for _, v := range levels {
		a.Push(v)
	}
	return a
}

// Entry is one elementary binding: a (possibly annotated) variable paired
// with an interned graph element.
type Entry struct {
	Var   string // variable name; anonymous variables start with '$'
	Iters IterAnn
	Kind  ElemKind
	Idx   graph.ElemIdx
}

// DisplayVar renders the annotated variable (b1, b2, … for group entries;
// □/− for anonymous ones, annotations kept).
func (e Entry) DisplayVar() string {
	name := ast.ReducedVar(e.Var)
	if e.Iters.Len() == 0 {
		return name
	}
	parts := make([]string, e.Iters.Len())
	for i := range parts {
		parts[i] = strconv.Itoa(e.Iters.At(i) + 1) // paper numbers iterations from 1
	}
	return name + strings.Join(parts, ".")
}

// Tag records which branch of a multiset alternation produced the match;
// matches with different tag sequences never deduplicate (§4.5, §6.5).
type Tag struct {
	Union  int
	Branch int
}

// PathBinding is the (annotated) result of matching one path pattern.
// Src is the store the indices refer to.
type PathBinding struct {
	Entries []Entry
	Tags    []Tag
	Path    graph.IdxPath
	PathVar string // "" when the pattern has no path variable
	Src     graph.Store
}

// Reduced is a reduced path binding (§6.5): annotations stripped, anonymous
// variables merged to the markers □ and −. A Reduced is immutable once
// built; CanonKey memoizes its canonical textual identity (it is compared
// O(n log n) times during sorting).
type Reduced struct {
	Cols    []ReducedCol
	Tags    []Tag
	Path    graph.IdxPath
	PathVar string
	Src     graph.Store

	canon string // memoized CanonKey; "" = not yet computed
}

// ReducedCol is one column of a reduced binding.
type ReducedCol struct {
	Var  string // reduced display name (anonymous merged to □ / −)
	Kind ElemKind
	Idx  graph.ElemIdx
}

// Reduce strips annotations from the binding (§6.5).
func (b *PathBinding) Reduce() *Reduced {
	r := &Reduced{Tags: b.Tags, Path: b.Path, PathVar: b.PathVar, Src: b.Src}
	r.Cols = make([]ReducedCol, len(b.Entries))
	for i, e := range b.Entries {
		r.Cols[i] = ReducedCol{Var: ast.ReducedVar(e.Var), Kind: e.Kind, Idx: e.Idx}
	}
	return r
}

// ColID materializes the element id of column i.
func (r *Reduced) ColID(i int) string {
	c := r.Cols[i]
	return ElemID(r.Src, c.Kind, c.Idx)
}

// RefID materializes the element id of a Ref issued by this binding.
func (r *Reduced) RefID(ref Ref) string { return ElemID(r.Src, ref.Kind, ref.Idx) }

// CanonKey returns the canonical textual identity of the reduced binding:
// the reduced column sequence, the multiset branch tags, and the matched
// path, all materialized to element ids. Its lexicographic order is the
// canonical row order (SortStable, selector choices, Eval's final sort),
// unchanged from the pre-interning string key — this is the one place a
// binding's ids are turned into strings, once per output row. The result
// is memoized; callers must not mutate the binding afterwards.
func (r *Reduced) CanonKey() string {
	if r.canon == "" {
		r.canon = r.computeCanonKey()
	}
	return r.canon
}

func (r *Reduced) computeCanonKey() string {
	var b strings.Builder
	for i, c := range r.Cols {
		b.WriteString(c.Var)
		b.WriteByte('=')
		b.WriteString(r.ColID(i))
		b.WriteByte(';')
	}
	b.WriteByte('#')
	for _, t := range r.Tags {
		fmt.Fprintf(&b, "%d.%d,", t.Union, t.Branch)
	}
	b.WriteByte('#')
	if r.Src != nil {
		r.Path.AppendKeyString(&b, r.Src)
	}
	return b.String()
}

// Keyer builds the compact binary deduplication keys of reduced bindings:
// varint-packed (variable code, kind, element index) triples, branch
// tags, and the interned path. Variable codes are assigned per Keyer, so
// keys from different Keyers must never be compared — one Keyer serves
// one dedup set (or one solver's sequence of per-seed sets, which is
// fine: codes only grow). The encoding is injective: every section is
// length-prefixed and varints are self-delimiting, so no two distinct
// bindings share a key (the property the adversarial-id suite pins).
type Keyer struct {
	vars map[string]uint64
	buf  []byte
}

// NewKeyer returns an empty Keyer.
func NewKeyer() *Keyer { return &Keyer{vars: map[string]uint64{}} }

// Key returns the binding's dedup key. The returned slice aliases the
// Keyer's scratch buffer and is valid until the next Key call; convert
// with string(...) to retain it.
func (k *Keyer) Key(r *Reduced) []byte {
	b := k.buf[:0]
	b = binary.AppendUvarint(b, uint64(len(r.Cols)))
	for _, c := range r.Cols {
		code, ok := k.vars[c.Var]
		if !ok {
			code = uint64(len(k.vars))
			k.vars[c.Var] = code
		}
		b = binary.AppendUvarint(b, code)
		b = append(b, byte(c.Kind))
		b = binary.AppendUvarint(b, uint64(c.Idx))
	}
	b = binary.AppendUvarint(b, uint64(len(r.Tags)))
	for _, t := range r.Tags {
		b = binary.AppendUvarint(b, uint64(t.Union))
		b = binary.AppendUvarint(b, uint64(t.Branch))
	}
	b = binary.AppendUvarint(b, uint64(len(r.Path.Nodes)))
	for i, n := range r.Path.Nodes {
		if i > 0 {
			b = binary.AppendUvarint(b, uint64(r.Path.Edges[i-1]))
		}
		b = binary.AppendUvarint(b, uint64(n))
	}
	k.buf = b
	return b
}

// ColKeyer packs deduplication keys straight from columnar position
// tuples, the batch pipeline's vectorized counterpart of Keyer. Within
// one flat-chain template (fixed column count, fixed variable name and
// element kind per position, no branch tags, path = the position tuple
// itself) the element-index tuple determines the reduced binding
// completely, so packing just the indices is injective exactly where
// Keyer is: two rows of the same template collide on a ColKeyer key iff
// their Reduced forms collide on a Keyer key (pinned by the agreement
// test). Keys from different templates must never be compared — one
// ColKeyer serves one dedup set, mirroring Keyer's contract.
type ColKeyer struct {
	buf []byte
}

// Key returns the tuple's dedup key: concatenated uvarints, injective
// for a fixed tuple width because uvarints are self-delimiting. The
// returned slice aliases the scratch buffer and is valid until the next
// Key call; convert with string(...) to retain it.
func (k *ColKeyer) Key(tuple []graph.ElemIdx) []byte {
	b := k.buf[:0]
	for _, v := range tuple {
		b = binary.AppendUvarint(b, uint64(v))
	}
	k.buf = b
	return b
}

// String renders the reduced binding as "var↦id" pairs.
func (r *Reduced) String() string {
	parts := make([]string, len(r.Cols))
	for i, c := range r.Cols {
		parts[i] = c.Var + "↦" + r.ColID(i)
	}
	return strings.Join(parts, " ")
}

// HeaderRow and ValueRow render the two-row table presentation used
// throughout §6.4 of the paper.
func (r *Reduced) HeaderRow() []string {
	out := make([]string, len(r.Cols))
	for i, c := range r.Cols {
		out[i] = c.Var
	}
	return out
}

// ValueRow returns the element ids in column order.
func (r *Reduced) ValueRow() []string {
	out := make([]string, len(r.Cols))
	for i := range r.Cols {
		out[i] = r.ColID(i)
	}
	return out
}

// Dedup collects reduced bindings into a set, keeping the first occurrence
// of each key and preserving order (§6.5). Keys are the compact binary
// form; no id strings are built.
func Dedup(in []*Reduced) []*Reduced {
	k := NewKeyer()
	seen := make(map[string]struct{}, len(in))
	out := make([]*Reduced, 0, len(in))
	for _, r := range in {
		key := k.Key(r)
		if _, ok := seen[string(key)]; ok {
			continue
		}
		seen[string(key)] = struct{}{}
		out = append(out, r)
	}
	return out
}

// DedupStrings is the A/B reference implementation of Dedup: it keys the
// set by the canonical textual identity (the pre-interning encoding).
// Used by differential tests and the string-key benchmark experiments;
// results are identical to Dedup by the Keyer's injectivity.
func DedupStrings(in []*Reduced) []*Reduced {
	seen := make(map[string]struct{}, len(in))
	out := make([]*Reduced, 0, len(in))
	for _, r := range in {
		k := r.CanonKey()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	return out
}

// Singleton returns the element bound to a singleton variable, scanning the
// columns; ok is false when the variable is unbound (conditional singleton
// that did not bind).
func (r *Reduced) Singleton(v string) (Ref, bool) {
	for _, c := range r.Cols {
		if c.Var == v {
			return Ref{Kind: c.Kind, Idx: c.Idx}, true
		}
	}
	return Ref{}, false
}

// Group returns all elements bound to the variable in sequence order (the
// group list used by aggregates, §4.4).
func (r *Reduced) Group(v string) []Ref {
	var out []Ref
	for _, c := range r.Cols {
		if c.Var == v {
			out = append(out, Ref{Kind: c.Kind, Idx: c.Idx})
		}
	}
	return out
}

// Vars lists the distinct non-anonymous variables in column order.
func (r *Reduced) Vars() []string {
	seen := map[string]struct{}{}
	var out []string
	for _, c := range r.Cols {
		if c.Var == "□" || c.Var == "−" {
			continue
		}
		if _, ok := seen[c.Var]; ok {
			continue
		}
		seen[c.Var] = struct{}{}
		out = append(out, c.Var)
	}
	return out
}

// FormatTable renders reduced bindings as an aligned two-row-per-binding
// text table (header row of variables, value row of elements), matching the
// presentation of §6.4.
func FormatTable(bindings []*Reduced) string {
	var b strings.Builder
	for i, r := range bindings {
		if i > 0 {
			b.WriteByte('\n')
		}
		hdr := r.HeaderRow()
		val := r.ValueRow()
		widths := make([]int, len(hdr))
		for j := range hdr {
			widths[j] = max(len([]rune(hdr[j])), len([]rune(val[j])))
		}
		writeRow := func(cells []string) {
			for j, c := range cells {
				if j > 0 {
					b.WriteString(" | ")
				}
				b.WriteString(c)
				for pad := widths[j] - len([]rune(c)); pad > 0; pad-- {
					b.WriteByte(' ')
				}
			}
			b.WriteByte('\n')
		}
		writeRow(hdr)
		writeRow(val)
	}
	return b.String()
}

// SortStable orders reduced bindings by their canonical key; used to make
// non-deterministic selector choices reproducible and test output stable.
func SortStable(in []*Reduced) {
	sort.SliceStable(in, func(i, j int) bool {
		// Shorter paths first, then lexicographic key: gives the intuitive
		// "shortest, then canonical" order.
		if in[i].Path.Len() != in[j].Path.Len() {
			return in[i].Path.Len() < in[j].Path.Len()
		}
		return in[i].CanonKey() < in[j].CanonKey()
	})
}
