// Package binding implements path bindings, the paper's central semantic
// object (§6): a path binding is a sequence of elementary bindings, each a
// pair of a variable and a graph element. Variables under quantifiers carry
// iteration annotations (the paper's superscripts b¹, b², …). Reduction
// strips annotations and merges anonymous variables; reduced bindings are
// collected into a set (deduplication, §6.5), except that matches produced
// by different branches of a multiset alternation |+| carry branch tags
// that keep them distinct.
package binding

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"gpml/internal/ast"
	"gpml/internal/graph"
)

// ElemKind distinguishes node from edge bindings.
type ElemKind uint8

// Element kinds.
const (
	NodeElem ElemKind = iota
	EdgeElem
)

// String names the kind.
func (k ElemKind) String() string {
	if k == NodeElem {
		return "node"
	}
	return "edge"
}

// Ref identifies a bound graph element.
type Ref struct {
	Kind ElemKind
	ID   string
}

// String renders the element id.
func (r Ref) String() string { return r.ID }

// Entry is one elementary binding: a (possibly annotated) variable paired
// with a graph element.
type Entry struct {
	Var   string // variable name; anonymous variables start with '$'
	Iters []int  // iteration indices of enclosing quantifiers, outermost first
	Kind  ElemKind
	ID    string
}

// DisplayVar renders the annotated variable (b1, b2, … for group entries;
// □/− for anonymous ones, annotations kept).
func (e Entry) DisplayVar() string {
	name := ast.ReducedVar(e.Var)
	if len(e.Iters) == 0 {
		return name
	}
	parts := make([]string, len(e.Iters))
	for i, it := range e.Iters {
		parts[i] = strconv.Itoa(it + 1) // paper numbers iterations from 1
	}
	return name + strings.Join(parts, ".")
}

// Tag records which branch of a multiset alternation produced the match;
// matches with different tag sequences never deduplicate (§4.5, §6.5).
type Tag struct {
	Union  int
	Branch int
}

// PathBinding is the (annotated) result of matching one path pattern.
type PathBinding struct {
	Entries []Entry
	Tags    []Tag
	Path    graph.Path
	PathVar string // "" when the pattern has no path variable
}

// Reduced is a reduced path binding (§6.5): annotations stripped, anonymous
// variables merged to the markers □ and −. A Reduced is immutable once
// built; Key memoizes its deduplication identity (it is compared O(n log n)
// times during sorting).
type Reduced struct {
	Cols    []ReducedCol
	Tags    []Tag
	Path    graph.Path
	PathVar string

	key string // memoized Key; "" = not yet computed
}

// ReducedCol is one column of a reduced binding.
type ReducedCol struct {
	Var  string // reduced display name (anonymous merged to □ / −)
	Kind ElemKind
	ID   string
}

// Reduce strips annotations from the binding (§6.5).
func (b *PathBinding) Reduce() *Reduced {
	r := &Reduced{Tags: b.Tags, Path: b.Path, PathVar: b.PathVar}
	r.Cols = make([]ReducedCol, len(b.Entries))
	for i, e := range b.Entries {
		r.Cols[i] = ReducedCol{Var: ast.ReducedVar(e.Var), Kind: e.Kind, ID: e.ID}
	}
	return r
}

// Key returns the deduplication identity of the reduced binding: the
// reduced column sequence, the multiset branch tags, and the matched path.
// The result is memoized; callers must not mutate the binding afterwards.
func (r *Reduced) Key() string {
	if r.key == "" {
		r.key = r.computeKey()
	}
	return r.key
}

func (r *Reduced) computeKey() string {
	var b strings.Builder
	for _, c := range r.Cols {
		b.WriteString(c.Var)
		b.WriteByte('=')
		b.WriteString(c.ID)
		b.WriteByte(';')
	}
	b.WriteByte('#')
	for _, t := range r.Tags {
		fmt.Fprintf(&b, "%d.%d,", t.Union, t.Branch)
	}
	b.WriteByte('#')
	b.WriteString(r.Path.Key())
	return b.String()
}

// String renders the reduced binding as "var↦id" pairs.
func (r *Reduced) String() string {
	parts := make([]string, len(r.Cols))
	for i, c := range r.Cols {
		parts[i] = c.Var + "↦" + c.ID
	}
	return strings.Join(parts, " ")
}

// HeaderRow and ValueRow render the two-row table presentation used
// throughout §6.4 of the paper.
func (r *Reduced) HeaderRow() []string {
	out := make([]string, len(r.Cols))
	for i, c := range r.Cols {
		out[i] = c.Var
	}
	return out
}

// ValueRow returns the element ids in column order.
func (r *Reduced) ValueRow() []string {
	out := make([]string, len(r.Cols))
	for i, c := range r.Cols {
		out[i] = c.ID
	}
	return out
}

// Dedup collects reduced bindings into a set, keeping the first occurrence
// of each key and preserving order (§6.5).
func Dedup(in []*Reduced) []*Reduced {
	seen := make(map[string]struct{}, len(in))
	out := make([]*Reduced, 0, len(in))
	for _, r := range in {
		k := r.Key()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	return out
}

// Singleton returns the element bound to a singleton variable, scanning the
// columns; ok is false when the variable is unbound (conditional singleton
// that did not bind).
func (r *Reduced) Singleton(v string) (Ref, bool) {
	for _, c := range r.Cols {
		if c.Var == v {
			return Ref{Kind: c.Kind, ID: c.ID}, true
		}
	}
	return Ref{}, false
}

// Group returns all elements bound to the variable in sequence order (the
// group list used by aggregates, §4.4).
func (r *Reduced) Group(v string) []Ref {
	var out []Ref
	for _, c := range r.Cols {
		if c.Var == v {
			out = append(out, Ref{Kind: c.Kind, ID: c.ID})
		}
	}
	return out
}

// Vars lists the distinct non-anonymous variables in column order.
func (r *Reduced) Vars() []string {
	seen := map[string]struct{}{}
	var out []string
	for _, c := range r.Cols {
		if c.Var == "□" || c.Var == "−" {
			continue
		}
		if _, ok := seen[c.Var]; ok {
			continue
		}
		seen[c.Var] = struct{}{}
		out = append(out, c.Var)
	}
	return out
}

// FormatTable renders reduced bindings as an aligned two-row-per-binding
// text table (header row of variables, value row of elements), matching the
// presentation of §6.4.
func FormatTable(bindings []*Reduced) string {
	var b strings.Builder
	for i, r := range bindings {
		if i > 0 {
			b.WriteByte('\n')
		}
		hdr := r.HeaderRow()
		val := r.ValueRow()
		widths := make([]int, len(hdr))
		for j := range hdr {
			widths[j] = max(len([]rune(hdr[j])), len([]rune(val[j])))
		}
		writeRow := func(cells []string) {
			for j, c := range cells {
				if j > 0 {
					b.WriteString(" | ")
				}
				b.WriteString(c)
				for pad := widths[j] - len([]rune(c)); pad > 0; pad-- {
					b.WriteByte(' ')
				}
			}
			b.WriteByte('\n')
		}
		writeRow(hdr)
		writeRow(val)
	}
	return b.String()
}

// SortStable orders reduced bindings by their canonical key; used to make
// non-deterministic selector choices reproducible and test output stable.
func SortStable(in []*Reduced) {
	sort.SliceStable(in, func(i, j int) bool {
		// Shorter paths first, then lexicographic key: gives the intuitive
		// "shortest, then canonical" order.
		if in[i].Path.Len() != in[j].Path.Len() {
			return in[i].Path.Len() < in[j].Path.Len()
		}
		return in[i].Key() < in[j].Key()
	})
}
