package binding

import (
	"strings"
	"testing"
	"testing/quick"

	"gpml/internal/graph"
)

// fixture builds the sample store and interning helpers: nodes and edges
// carry the paper's ids, and bindings are constructed through the
// interner exactly like the engines do.
type fixture struct {
	s graph.Store
}

func newFixture(t testing.TB) fixture {
	t.Helper()
	g := graph.New()
	for _, id := range []string{"a4", "a6", "c2", "n1", "x", "a", "b", "c", "d", "e"} {
		if err := g.AddNode(graph.NodeID(id), nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{
		{"t4", "a4"}, {"t5", "a6"}, {"li4", "a4"}, {"t9", "a6"},
	} {
		if err := g.AddEdge(graph.EdgeID(e[0]), graph.NodeID(e[1]), graph.NodeID(e[1]), nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	return fixture{s: g}
}

func (f fixture) node(t testing.TB, id string) graph.ElemIdx {
	t.Helper()
	i, ok := f.s.InternNode(graph.NodeID(id))
	if !ok {
		t.Fatalf("unknown node %q", id)
	}
	return i
}

func (f fixture) edge(t testing.TB, id string) graph.ElemIdx {
	t.Helper()
	i, ok := f.s.InternEdge(graph.EdgeID(id))
	if !ok {
		t.Fatalf("unknown edge %q", id)
	}
	return i
}

func (f fixture) entry(t testing.TB, v string, iters IterAnn, kind ElemKind, id string) Entry {
	t.Helper()
	if kind == NodeElem {
		return Entry{Var: v, Iters: iters, Kind: kind, Idx: f.node(t, id)}
	}
	return Entry{Var: v, Iters: iters, Kind: kind, Idx: f.edge(t, id)}
}

func (f fixture) path(t testing.TB, nodes []string, edges []string) graph.IdxPath {
	t.Helper()
	p := graph.IdxPath{}
	for _, n := range nodes {
		p.Nodes = append(p.Nodes, f.node(t, n))
	}
	for _, e := range edges {
		p.Edges = append(p.Edges, f.edge(t, e))
	}
	return p
}

func (f fixture) sample(t testing.TB) *PathBinding {
	return &PathBinding{
		Entries: []Entry{
			f.entry(t, "a", IterOf(), NodeElem, "a4"),
			f.entry(t, "b", IterOf(0), EdgeElem, "t4"),
			f.entry(t, "$n2", IterOf(0), NodeElem, "a6"),
			f.entry(t, "b", IterOf(1), EdgeElem, "t5"),
			f.entry(t, "a", IterOf(), NodeElem, "a4"),
			f.entry(t, "$e1", IterOf(), EdgeElem, "li4"),
			f.entry(t, "c", IterOf(), NodeElem, "c2"),
		},
		Path: f.path(t, []string{"a4", "a6", "a4", "c2"}, []string{"t4", "t5", "li4"}),
		Src:  f.s,
	}
}

func TestReduceStripsAnnotations(t *testing.T) {
	f := newFixture(t)
	r := f.sample(t).Reduce()
	hdr := strings.Join(r.HeaderRow(), " ")
	if hdr != "a b □ b a − c" {
		t.Errorf("header: %q", hdr)
	}
	val := strings.Join(r.ValueRow(), " ")
	if val != "a4 t4 a6 t5 a4 li4 c2" {
		t.Errorf("values: %q", val)
	}
}

func TestDisplayVarAnnotations(t *testing.T) {
	e := Entry{Var: "b", Iters: IterOf(0), Kind: EdgeElem}
	if got := e.DisplayVar(); got != "b1" {
		t.Errorf("iteration 0 displays as b1 (paper numbering): %q", got)
	}
	e = Entry{Var: "b", Iters: IterOf(2, 1), Kind: EdgeElem}
	if got := e.DisplayVar(); got != "b3.2" {
		t.Errorf("nested annotation: %q", got)
	}
	e = Entry{Var: "$n1", Iters: IterOf(0), Kind: NodeElem}
	if got := e.DisplayVar(); got != "□1" {
		t.Errorf("anonymous annotated: %q", got)
	}
}

func TestIterAnnSpillsDeepNests(t *testing.T) {
	a := IterOf(3, 1, 4, 1, 5)
	if a.Len() != 5 {
		t.Fatalf("len: %d", a.Len())
	}
	for i, want := range []int{3, 1, 4, 1, 5} {
		if a.At(i) != want {
			t.Errorf("At(%d) = %d, want %d", i, a.At(i), want)
		}
	}
	e := Entry{Var: "b", Iters: a}
	if got := e.DisplayVar(); got != "b4.2.5.2.6" {
		t.Errorf("deep annotation: %q", got)
	}
}

// dedupKeys materializes the compact keys of a binding list under one
// Keyer, for equality assertions.
func dedupKeys(rs ...*Reduced) []string {
	k := NewKeyer()
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = string(k.Key(r))
	}
	return out
}

func TestKeyDistinguishesTagsAndPaths(t *testing.T) {
	f := newFixture(t)
	a := f.sample(t).Reduce()
	b := f.sample(t).Reduce()
	tagged := f.sample(t)
	tagged.Tags = []Tag{{Union: 0, Branch: 1}}
	other := f.sample(t)
	other.Path.Edges[0] = f.edge(t, "t9")
	keys := dedupKeys(a, b, tagged.Reduce(), other.Reduce())
	if keys[0] != keys[1] {
		t.Fatalf("identical bindings must share keys")
	}
	if keys[2] == keys[0] {
		t.Errorf("multiset tags must distinguish keys (§4.5)")
	}
	if keys[3] == keys[0] {
		t.Errorf("different paths must have different keys")
	}
	// The canonical textual key distinguishes the same pairs.
	if a.CanonKey() != b.CanonKey() {
		t.Fatalf("identical bindings must share canon keys")
	}
	if tagged.Reduce().CanonKey() == a.CanonKey() || other.Reduce().CanonKey() == a.CanonKey() {
		t.Errorf("canon keys must distinguish tags and paths")
	}
}

func TestDedup(t *testing.T) {
	f := newFixture(t)
	a := f.sample(t).Reduce()
	b := f.sample(t).Reduce()
	c := f.sample(t)
	c.Tags = []Tag{{0, 1}}
	for name, dedup := range map[string]func([]*Reduced) []*Reduced{
		"binary": Dedup, "strings": DedupStrings,
	} {
		out := dedup([]*Reduced{a, b, c.Reduce()})
		if len(out) != 2 {
			t.Errorf("%s dedup: want 2, got %d", name, len(out))
		}
		// Order preserved, first kept.
		if out[0] != a {
			t.Errorf("%s dedup must keep the first occurrence", name)
		}
	}
}

func TestSingletonGroupAccessors(t *testing.T) {
	f := newFixture(t)
	r := f.sample(t).Reduce()
	if ref, ok := r.Singleton("a"); !ok || r.RefID(ref) != "a4" || ref.Kind != NodeElem {
		t.Errorf("singleton a: %+v %v", ref, ok)
	}
	if _, ok := r.Singleton("zzz"); ok {
		t.Errorf("missing singleton must report !ok")
	}
	g := r.Group("b")
	if len(g) != 2 || r.RefID(g[0]) != "t4" || r.RefID(g[1]) != "t5" {
		t.Errorf("group b: %+v", g)
	}
	vars := r.Vars()
	if strings.Join(vars, ",") != "a,b,c" {
		t.Errorf("vars: %v", vars)
	}
}

func TestFormatTable(t *testing.T) {
	f := newFixture(t)
	out := FormatTable([]*Reduced{f.sample(t).Reduce()})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a ") || !strings.Contains(lines[1], "a4") {
		t.Errorf("table:\n%s", out)
	}
}

func TestSortStable(t *testing.T) {
	f := newFixture(t)
	long := f.sample(t).Reduce()
	short := &Reduced{
		Cols: []ReducedCol{{Var: "x", Kind: NodeElem, Idx: f.node(t, "n1")}},
		Path: f.path(t, []string{"n1"}, nil),
		Src:  f.s,
	}
	in := []*Reduced{long, short}
	SortStable(in)
	if in[0] != short {
		t.Errorf("shorter paths sort first")
	}
}

func TestStringRendering(t *testing.T) {
	f := newFixture(t)
	r := f.sample(t).Reduce()
	s := r.String()
	if !strings.Contains(s, "a↦a4") || !strings.Contains(s, "−↦li4") {
		t.Errorf("rendering: %s", s)
	}
	if NodeElem.String() != "node" || EdgeElem.String() != "edge" {
		t.Errorf("kind strings wrong")
	}
}

// Dedup is idempotent and order-preserving (property).
func TestDedupIdempotentProperty(t *testing.T) {
	fx := newFixture(t)
	f := func(ids []uint8) bool {
		var in []*Reduced
		for _, id := range ids {
			n := fx.node(t, string(rune('a'+id%5)))
			in = append(in, &Reduced{
				Cols: []ReducedCol{{Var: "x", Kind: NodeElem, Idx: n}},
				Path: graph.IdxPath{Nodes: []graph.ElemIdx{n}},
				Src:  fx.s,
			})
		}
		once := Dedup(in)
		twice := Dedup(once)
		if len(once) != len(twice) {
			return false
		}
		seen := map[string]bool{}
		for _, r := range once {
			if seen[r.CanonKey()] {
				return false
			}
			seen[r.CanonKey()] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
