package binding

import (
	"strings"
	"testing"
	"testing/quick"

	"gpml/internal/graph"
)

func sample() *PathBinding {
	return &PathBinding{
		Entries: []Entry{
			{Var: "a", Kind: NodeElem, ID: "a4"},
			{Var: "b", Iters: []int{0}, Kind: EdgeElem, ID: "t4"},
			{Var: "$n2", Iters: []int{0}, Kind: NodeElem, ID: "a6"},
			{Var: "b", Iters: []int{1}, Kind: EdgeElem, ID: "t5"},
			{Var: "a", Kind: NodeElem, ID: "a4"},
			{Var: "$e1", Kind: EdgeElem, ID: "li4"},
			{Var: "c", Kind: NodeElem, ID: "c2"},
		},
		Path: graph.Path{
			Nodes: []graph.NodeID{"a4", "a6", "a4", "c2"},
			Edges: []graph.EdgeID{"t4", "t5", "li4"},
		},
	}
}

func TestReduceStripsAnnotations(t *testing.T) {
	r := sample().Reduce()
	hdr := strings.Join(r.HeaderRow(), " ")
	if hdr != "a b □ b a − c" {
		t.Errorf("header: %q", hdr)
	}
	val := strings.Join(r.ValueRow(), " ")
	if val != "a4 t4 a6 t5 a4 li4 c2" {
		t.Errorf("values: %q", val)
	}
}

func TestDisplayVarAnnotations(t *testing.T) {
	e := Entry{Var: "b", Iters: []int{0}, Kind: EdgeElem, ID: "t4"}
	if got := e.DisplayVar(); got != "b1" {
		t.Errorf("iteration 0 displays as b1 (paper numbering): %q", got)
	}
	e = Entry{Var: "b", Iters: []int{2, 1}, Kind: EdgeElem, ID: "t4"}
	if got := e.DisplayVar(); got != "b3.2" {
		t.Errorf("nested annotation: %q", got)
	}
	e = Entry{Var: "$n1", Iters: []int{0}, Kind: NodeElem, ID: "x"}
	if got := e.DisplayVar(); got != "□1" {
		t.Errorf("anonymous annotated: %q", got)
	}
}

func TestKeyDistinguishesTagsAndPaths(t *testing.T) {
	a := sample().Reduce()
	b := sample().Reduce()
	if a.Key() != b.Key() {
		t.Fatalf("identical bindings must share keys")
	}
	tagged := sample()
	tagged.Tags = []Tag{{Union: 0, Branch: 1}}
	if tagged.Reduce().Key() == a.Key() {
		t.Errorf("multiset tags must distinguish keys (§4.5)")
	}
	other := sample()
	other.Path.Edges[0] = "t9"
	if other.Reduce().Key() == a.Key() {
		t.Errorf("different paths must have different keys")
	}
}

func TestDedup(t *testing.T) {
	a := sample().Reduce()
	b := sample().Reduce()
	c := sample()
	c.Tags = []Tag{{0, 1}}
	out := Dedup([]*Reduced{a, b, c.Reduce()})
	if len(out) != 2 {
		t.Errorf("dedup: want 2, got %d", len(out))
	}
	// Order preserved, first kept.
	if out[0] != a {
		t.Errorf("dedup must keep the first occurrence")
	}
}

func TestSingletonGroupAccessors(t *testing.T) {
	r := sample().Reduce()
	if ref, ok := r.Singleton("a"); !ok || ref.ID != "a4" || ref.Kind != NodeElem {
		t.Errorf("singleton a: %+v %v", ref, ok)
	}
	if _, ok := r.Singleton("zzz"); ok {
		t.Errorf("missing singleton must report !ok")
	}
	g := r.Group("b")
	if len(g) != 2 || g[0].ID != "t4" || g[1].ID != "t5" {
		t.Errorf("group b: %+v", g)
	}
	vars := r.Vars()
	if strings.Join(vars, ",") != "a,b,c" {
		t.Errorf("vars: %v", vars)
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]*Reduced{sample().Reduce()})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a ") || !strings.Contains(lines[1], "a4") {
		t.Errorf("table:\n%s", out)
	}
}

func TestSortStable(t *testing.T) {
	long := sample().Reduce()
	short := &Reduced{
		Cols: []ReducedCol{{Var: "x", Kind: NodeElem, ID: "n1"}},
		Path: graph.Path{Nodes: []graph.NodeID{"n1"}},
	}
	in := []*Reduced{long, short}
	SortStable(in)
	if in[0] != short {
		t.Errorf("shorter paths sort first")
	}
}

func TestStringRendering(t *testing.T) {
	r := sample().Reduce()
	s := r.String()
	if !strings.Contains(s, "a↦a4") || !strings.Contains(s, "−↦li4") {
		t.Errorf("rendering: %s", s)
	}
	if NodeElem.String() != "node" || EdgeElem.String() != "edge" {
		t.Errorf("kind strings wrong")
	}
}

// Dedup is idempotent and order-preserving (property).
func TestDedupIdempotentProperty(t *testing.T) {
	f := func(ids []uint8) bool {
		var in []*Reduced
		for _, id := range ids {
			in = append(in, &Reduced{
				Cols: []ReducedCol{{Var: "x", Kind: NodeElem, ID: string(rune('a' + id%5))}},
				Path: graph.Path{Nodes: []graph.NodeID{graph.NodeID(rune('a' + id%5))}},
			})
		}
		once := Dedup(in)
		twice := Dedup(once)
		if len(once) != len(twice) {
			return false
		}
		seen := map[string]bool{}
		for _, r := range once {
			if seen[r.Key()] {
				return false
			}
			seen[r.Key()] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
