package graph

// Background compaction: when an epoch's delta grows past the threshold,
// a compactor goroutine materializes that epoch into a fresh CSR while
// readers keep draining whatever epoch they pinned and the writer keeps
// applying batches. The merged CSR is laid out over the epoch's full
// index span — tombstoned elements stay as dead holes rather than being
// renumbered — so every surviving element keeps its global index verbatim
// and bindings taken in any epoch materialize identically after the swap.
//
// The rebase step then rewrites the writer's delta relative to the new
// base: elements added during the compaction keep their global indices
// (the new base span is exactly the old span plus the compacted delta),
// and tombstones/overrides are partitioned by mutation generation —
// those at or below the compacted epoch's generation are baked into the
// new CSR and dropped, later ones are kept and now target new-base
// elements.

// maybeCompactLocked starts a background compaction of snap when its
// delta has outgrown the threshold and none is in flight. Callers hold
// ov.mu.
func (ov *Overlay) maybeCompactLocked(snap *OverlaySnap) {
	if ov.compactThreshold <= 0 || ov.compacting {
		return
	}
	if snap.deltaSize() < ov.compactThreshold {
		return
	}
	ov.startCompactLocked(snap)
}

// startCompactLocked launches the compactor goroutine. Callers hold ov.mu
// and have checked that no compaction is in flight.
func (ov *Overlay) startCompactLocked(snap *OverlaySnap) {
	ov.compacting = true
	go ov.runCompact(snap)
}

// runCompact builds the merged CSR outside the lock (readers and the
// writer proceed concurrently), then briefly takes the lock to rebase the
// writer's delta and publish the post-compaction epoch.
func (ov *Overlay) runCompact(e *OverlaySnap) {
	nb := compactBase(e)
	ov.mu.Lock()
	ov.rebaseLocked(nb, e)
	ov.publishLocked()
	dur := ov.dur
	ov.mu.Unlock()
	// On a durable overlay the compacted base is also the checkpoint: it
	// materializes every batch up to e.batch, so once it is on disk the
	// WAL prefix covering those batches can be retired. Run it outside
	// ov.mu (writes proceed) but with compacting still true, so Wait and
	// Compact mean "merged and durable". Failures are recorded and
	// surfaced via DurabilityStats; the WAL stays intact, so nothing is
	// lost — the next compaction (or an explicit Checkpoint) retries.
	if dur != nil {
		dur.checkpoint(nb, e.batch, e.seq)
	}
	ov.mu.Lock()
	ov.compacting = false
	// The writer may have outrun the compaction; chain another round
	// before waking waiters so Wait means "fully drained".
	ov.maybeCompactLocked(ov.cur.Load())
	ov.compactDone.Broadcast()
	ov.mu.Unlock()
}

// Compact synchronously compacts everything applied before the call:
// it drains any in-flight compaction, merges the then-current epoch into
// a fresh CSR base, and returns once the post-compaction epoch is
// published. Mutations applied concurrently may remain in the delta.
func (ov *Overlay) Compact() {
	ov.mu.Lock()
	for ov.compacting {
		ov.compactDone.Wait()
	}
	if snap := ov.cur.Load(); snap.deltaSize() > 0 {
		ov.startCompactLocked(snap)
		for ov.compacting {
			ov.compactDone.Wait()
		}
	}
	ov.mu.Unlock()
}

// compactBase materializes epoch e as a CSR over e's full index span.
// Live elements land at their existing global indices; tombstoned ones
// become dead holes (empty adjacency windows, excluded from the id maps,
// the label index, and the statistics). Overrides are resolved into the
// stored records, so the result carries no override state at all.
func compactBase(e *OverlaySnap) *CSR {
	spanN, spanE := e.NodeIndexSpan(), e.EdgeIndexSpan()
	c := &CSR{
		nodes:      make([]Node, spanN),
		edges:      make([]Edge, spanE),
		nodeIdx:    make(map[NodeID]int32, e.liveN),
		edgeIdx:    make(map[EdgeID]int32, e.liveE),
		labelNodes: map[string][]int32{},
		stats: StoreStats{
			Nodes:      e.liveN,
			Edges:      e.liveE,
			NodeLabels: map[string]int{},
			EdgeLabels: map[string]int{},
		},
		liveNodes: e.liveN,
		liveEdges: e.liveE,
	}
	for i := 0; i < spanN; i++ {
		n := e.nodeAtIdx(i)
		if n == nil {
			if c.deadN == nil {
				c.deadN = make([]bool, spanN)
			}
			c.deadN[i] = true
			continue
		}
		c.nodes[i] = *n
		c.nodeIdx[n.ID] = int32(i)
		for _, l := range n.Labels {
			c.labelNodes[l] = append(c.labelNodes[l], int32(i))
			c.stats.NodeLabels[l]++
		}
	}
	c.edgeSrc = make([]int32, spanE)
	c.edgeTgt = make([]int32, spanE)
	deg := make([]int32, spanN)
	for i := 0; i < spanE; i++ {
		ed := e.edgeAtIdx(i)
		if ed == nil {
			if c.deadE == nil {
				c.deadE = make([]bool, spanE)
			}
			c.deadE[i] = true
			continue
		}
		c.edges[i] = *ed
		c.edgeIdx[ed.ID] = int32(i)
		for _, l := range ed.Labels {
			c.stats.EdgeLabels[l]++
		}
		// Live edges never reference dead nodes (detach-delete), so both
		// endpoints resolve to live slots.
		src, tgt := e.EdgeEnds(i)
		c.edgeSrc[i], c.edgeTgt[i] = int32(src), int32(tgt)
		deg[src]++
		if src != tgt {
			deg[tgt]++
		}
	}
	c.incOff = make([]int32, spanN+1)
	for i, d := range deg {
		c.incOff[i+1] = c.incOff[i] + d
	}
	c.incEdge = make([]int32, c.incOff[spanN])
	c.incOther = make([]int32, len(c.incEdge))
	c.incKind = make([]StepKind, len(c.incEdge))
	fill := append([]int32(nil), c.incOff[:spanN]...)
	put := func(at, edge, other int32, k StepKind) {
		c.incEdge[at] = edge
		c.incOther[at] = other
		c.incKind[at] = k
	}
	for i := 0; i < spanE; i++ {
		if c.deadE != nil && c.deadE[i] {
			continue
		}
		si, ti := c.edgeSrc[i], c.edgeTgt[i]
		switch {
		case c.edges[i].Direction == Undirected:
			put(fill[si], int32(i), ti, StepUndirected)
			fill[si]++
			if si != ti {
				put(fill[ti], int32(i), si, StepUndirected)
				fill[ti]++
			}
		case si == ti:
			put(fill[si], int32(i), si, StepLoop)
			fill[si]++
		default:
			put(fill[si], int32(i), ti, StepOut)
			fill[si]++
			put(fill[ti], int32(i), si, StepIn)
			fill[ti]++
		}
	}
	c.buildSortedAdjacency()
	return c
}

// rebaseLocked rewrites the writer's delta relative to the freshly
// compacted base nb, which materialized epoch e. Callers hold ov.mu.
func (ov *Overlay) rebaseLocked(nb *CSR, e *OverlaySnap) {
	w := &ov.w
	nBaked, eBaked := len(e.nodes), len(e.edges)
	genE := e.gen

	// Delta records in e's range that were replaced after e was pinned
	// (copy-on-write updates) are not in nb; carry them as overrides on
	// the new base. Pointer inequality is exact — updates always install
	// a fresh record.
	for j := 0; j < nBaked; j++ {
		gi := ElemIdx(e.baseN + j)
		if _, dead := w.deadN[gi]; dead {
			continue
		}
		if w.nodes[j] != e.nodes[j] {
			w.overN[gi] = nodeOver{w.nodes[j], ov.gen}
		}
	}
	for j := 0; j < eBaked; j++ {
		gi := ElemIdx(e.baseE + j)
		if _, dead := w.deadE[gi]; dead {
			continue
		}
		if w.edges[j] != e.edges[j] {
			w.overE[gi] = edgeOver{w.edges[j], ov.gen}
		}
	}

	// Tombstones and overrides at or below e's generation are baked into
	// nb (holes and resolved records); drop them. Later ones survive and
	// now target new-base elements.
	for idx, g := range w.deadN {
		if g <= genE {
			delete(w.deadN, idx)
		}
	}
	for idx, g := range w.deadE {
		if g <= genE {
			delete(w.deadE, idx)
		}
	}
	for idx, o := range w.overN {
		if o.gen <= genE {
			delete(w.overN, idx)
		}
	}
	for idx, o := range w.overE {
		if o.gen <= genE {
			delete(w.overE, idx)
		}
	}

	// The suffix added during compaction keeps identical global indices:
	// nb's span is exactly e's old span plus the baked delta, so suffix
	// element j lands at nb-span + (j - baked) = old global index.
	w.base = nb
	ov.baseBatch = e.batch
	w.nodes = append([]*Node(nil), w.nodes[nBaked:]...)
	w.edges = append([]*Edge(nil), w.edges[eBaked:]...)
	w.edgeEnds = append([][2]int32(nil), w.edgeEnds[eBaked:]...)

	w.nodeIdx = make(map[NodeID]ElemIdx, len(w.nodes))
	for j, n := range w.nodes {
		gi := ElemIdx(nb.NodeIndexSpan() + j)
		if _, dead := w.deadN[gi]; dead {
			continue
		}
		w.nodeIdx[n.ID] = gi
	}
	w.edgeIdx = make(map[EdgeID]ElemIdx, len(w.edges))
	w.adj = make(map[int32][]deltaStep, len(w.edges))
	for j := range w.edges {
		gi := int32(nb.EdgeIndexSpan() + j)
		if _, dead := w.deadE[ElemIdx(gi)]; dead {
			continue
		}
		w.edgeIdx[w.edges[j].ID] = ElemIdx(gi)
		ends := w.edgeEnds[j]
		s32, t32 := ends[0], ends[1]
		switch {
		case w.edges[j].Direction == Undirected:
			w.adj[s32] = append(w.adj[s32], deltaStep{gi, t32, StepUndirected})
			if s32 != t32 {
				w.adj[t32] = append(w.adj[t32], deltaStep{gi, s32, StepUndirected})
			}
		case s32 == t32:
			w.adj[s32] = append(w.adj[s32], deltaStep{gi, s32, StepLoop})
		default:
			w.adj[s32] = append(w.adj[s32], deltaStep{gi, t32, StepOut})
			w.adj[t32] = append(w.adj[t32], deltaStep{gi, s32, StepIn})
		}
	}
}
