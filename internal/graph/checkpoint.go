package graph

// Checkpoint files: one compacted CSR base persisted verbatim, so
// recovery can mmap the adjacency arenas back in without rebuilding them.
//
// Layout of ckpt-%016x.ck (all integers little-endian):
//
//	header (64 bytes): magic "GPMLCKP1", version u32, reserved u32,
//	    batch cut u64, epoch u64, node span u64, edge span u64,
//	    arena length L u64 (len(incEdge)), record offset u64
//	arena section (at 64): incOff (spanN+1)×4, incEdge L×4, incOther L×4,
//	    edgeSrc spanE×4, edgeTgt spanE×4, sortEdge L×4, sortOther L×4,
//	    incKind L×1, sortKind L×1
//	records section (at record offset): per node then per edge, a uvarint
//	    liveness flag followed (when live) by the element record; edge
//	    endpoints are not stored — they are derived from edgeSrc/edgeTgt
//	footer: CRC32C u32 over everything before it
//
// The file is written to a .tmp sibling, fsynced, and renamed into place;
// the manifest (a tiny JSON file, also swapped atomically) names the
// checkpoint recovery should load, so a crash at any point leaves either
// the old or the new checkpoint fully intact. The loader verifies the
// CRC over the whole file, then carves the int32/kind arenas straight out
// of a read-only mmap of it (zero-copy on little-endian unix; a decoding
// copy elsewhere). The mapping backs the live CSR and is never unmapped —
// one per process boot, reclaimed by the OS at exit.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"unsafe"
)

const (
	ckptMagic    = "GPMLCKP1"
	ckptVersion  = 1
	ckptHdrSize  = 64
	manifestName = "MANIFEST"
)

var ckptCRC = crc32.MakeTable(crc32.Castagnoli)

// manifest names the checkpoint recovery loads. It is swapped atomically
// after the checkpoint file itself is durable.
type manifest struct {
	Version    int    `json:"version"`
	Checkpoint string `json:"checkpoint"`
	BatchCut   uint64 `json:"batch_cut"`
	Epoch      uint64 `json:"epoch"`
}

// writeManifest atomically installs a manifest pointing at name.
func writeManifest(dir, name string, cut, epoch uint64) error {
	data, err := json.Marshal(manifest{Version: 1, Checkpoint: name, BatchCut: cut, Epoch: epoch})
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	syncDirBestEffort(dir)
	return nil
}

// loadLatestCheckpoint loads the manifest's checkpoint, or an empty base
// when the directory is fresh. A manifest pointing at a missing or
// corrupt checkpoint is an error — never silently served as empty.
func loadLatestCheckpoint(dir string) (*CSR, uint64, uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return Snapshot(&Graph{}), 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, 0, 0, fmt.Errorf("graph: corrupt manifest: %w", err)
	}
	if m.Checkpoint == "" || strings.ContainsAny(m.Checkpoint, "/\\") {
		return nil, 0, 0, fmt.Errorf("graph: manifest names invalid checkpoint %q", m.Checkpoint)
	}
	base, cut, epoch, err := loadCheckpoint(filepath.Join(dir, m.Checkpoint))
	if err != nil {
		return nil, 0, 0, err
	}
	if cut != m.BatchCut {
		return nil, 0, 0, fmt.Errorf("graph: checkpoint %s has batch cut %d, manifest says %d", m.Checkpoint, cut, m.BatchCut)
	}
	return base, cut, epoch, nil
}

// removeStaleCheckpoints deletes every checkpoint file except keep. Best
// effort: a leftover file wastes disk but is never loaded (the manifest
// names exactly one).
func removeStaleCheckpoints(dir, keep string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		n := e.Name()
		if n != keep && strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".ck") {
			os.Remove(filepath.Join(dir, n))
		}
	}
	syncDirBestEffort(dir)
}

// crcWriter tees writes through a running CRC32C.
type crcWriter struct {
	w   *bufio.Writer
	sum uint32
	n   int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.sum = crc32.Update(c.sum, ckptCRC, p)
	c.n += int64(len(p))
	return c.w.Write(p)
}

func (c *crcWriter) int32s(s []int32) error {
	var scratch [4096]byte
	for len(s) > 0 {
		n := len(s)
		if n > len(scratch)/4 {
			n = len(scratch) / 4
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(scratch[4*i:], uint32(s[i]))
		}
		if _, err := c.Write(scratch[:4*n]); err != nil {
			return err
		}
		s = s[n:]
	}
	return nil
}

func (c *crcWriter) kinds(s []StepKind) error {
	if len(s) == 0 {
		return nil
	}
	// StepKind is uint8, so the byte view is exact on any platform.
	_, err := c.Write(unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)))
	return err
}

// writeCheckpoint persists base to path atomically (tmp + fsync +
// rename + directory fsync).
func writeCheckpoint(path string, base *CSR, cut, epoch uint64) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	err = writeCheckpointTo(f, base, cut, epoch)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDirBestEffort(filepath.Dir(path))
	return nil
}

func writeCheckpointTo(f *os.File, base *CSR, cut, epoch uint64) error {
	spanN, spanE := base.NodeIndexSpan(), base.EdgeIndexSpan()
	arenaLen := len(base.incEdge)
	recOff := int64(ckptHdrSize) + 4*int64(spanN+1) + 16*int64(arenaLen) + 8*int64(spanE) + 2*int64(arenaLen)

	cw := &crcWriter{w: bufio.NewWriterSize(f, 1<<20)}
	var hdr [ckptHdrSize]byte
	copy(hdr[:], ckptMagic)
	binary.LittleEndian.PutUint32(hdr[8:], ckptVersion)
	binary.LittleEndian.PutUint64(hdr[16:], cut)
	binary.LittleEndian.PutUint64(hdr[24:], epoch)
	binary.LittleEndian.PutUint64(hdr[32:], uint64(spanN))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(spanE))
	binary.LittleEndian.PutUint64(hdr[48:], uint64(arenaLen))
	binary.LittleEndian.PutUint64(hdr[56:], uint64(recOff))
	if _, err := cw.Write(hdr[:]); err != nil {
		return err
	}

	// incOff is len spanN+1 in a populated CSR, but a zero-value CSR (the
	// empty base) has it nil; write spanN+1 zeros then.
	incOff := base.incOff
	if len(incOff) != spanN+1 {
		incOff = make([]int32, spanN+1)
	}
	for _, s := range [][]int32{incOff, base.incEdge, base.incOther, base.edgeSrc, base.edgeTgt, base.sortEdge, base.sortOther} {
		if err := cw.int32s(s); err != nil {
			return err
		}
	}
	if err := cw.kinds(base.incKind); err != nil {
		return err
	}
	if err := cw.kinds(base.sortKind); err != nil {
		return err
	}
	if cw.n != recOff {
		return fmt.Errorf("graph: checkpoint arena section is %d bytes, expected %d", cw.n-ckptHdrSize, recOff-ckptHdrSize)
	}

	var p []byte
	flush := func() error {
		_, err := cw.Write(p)
		p = p[:0]
		return err
	}
	for i := 0; i < spanN; i++ {
		if base.deadN != nil && base.deadN[i] {
			p = binary.AppendUvarint(p, 0)
			continue
		}
		n := &base.nodes[i]
		p = binary.AppendUvarint(p, 1)
		p = appendString(p, string(n.ID))
		p = appendStrings(p, n.Labels)
		p = appendProps(p, n.Props)
		if len(p) > 1<<16 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	for i := 0; i < spanE; i++ {
		if base.deadE != nil && base.deadE[i] {
			p = binary.AppendUvarint(p, 0)
			continue
		}
		e := &base.edges[i]
		p = binary.AppendUvarint(p, 1)
		p = appendString(p, string(e.ID))
		p = append(p, byte(e.Direction))
		p = appendStrings(p, e.Labels)
		p = appendProps(p, e.Props)
		if len(p) > 1<<16 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}

	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], cw.sum)
	if _, err := cw.w.Write(foot[:]); err != nil {
		return err
	}
	return cw.w.Flush()
}

// hostLittleEndian reports whether int32 memory order matches the file's
// little-endian encoding, enabling zero-copy arena carving.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// carver slices typed views out of a checkpoint buffer, zero-copy when
// alignment and endianness allow and by copy otherwise.
type carver struct {
	data []byte
	off  int64
}

func (c *carver) int32s(n int) []int32 {
	if n == 0 {
		return nil
	}
	b := c.data[c.off : c.off+4*int64(n)]
	c.off += 4 * int64(n)
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func (c *carver) kinds(n int) []StepKind {
	if n == 0 {
		return nil
	}
	b := c.data[c.off : c.off+int64(n)]
	c.off += int64(n)
	return unsafe.Slice((*StepKind)(unsafe.Pointer(&b[0])), n)
}

// loadCheckpoint reads, verifies, and reconstitutes a checkpointed CSR.
// The adjacency arenas alias a read-only mmap of the file where the
// platform allows; record storage (ids, labels, properties) is decoded
// onto the heap.
func loadCheckpoint(path string) (*CSR, uint64, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, 0, err
	}
	size := st.Size()
	if size < ckptHdrSize+4 {
		f.Close()
		return nil, 0, 0, fmt.Errorf("graph: checkpoint %s too short (%d bytes)", path, size)
	}
	data, merr := mapFileRO(f, int(size))
	if merr != nil {
		data, err = os.ReadFile(path)
		if err != nil {
			f.Close()
			return nil, 0, 0, err
		}
	}
	// The mapping (when used) outlives the fd; it is intentionally never
	// unmapped — it backs the live CSR for the rest of the process.
	f.Close()

	n := int64(len(data)) - 4
	if crc32.Checksum(data[:n], ckptCRC) != binary.LittleEndian.Uint32(data[n:]) {
		return nil, 0, 0, fmt.Errorf("graph: checkpoint %s failed checksum verification", path)
	}
	if string(data[:8]) != ckptMagic {
		return nil, 0, 0, fmt.Errorf("graph: %s is not a checkpoint file", path)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != ckptVersion {
		return nil, 0, 0, fmt.Errorf("graph: checkpoint %s has unsupported version %d", path, v)
	}
	cut := binary.LittleEndian.Uint64(data[16:])
	epoch := binary.LittleEndian.Uint64(data[24:])
	spanN := int(binary.LittleEndian.Uint64(data[32:]))
	spanE := int(binary.LittleEndian.Uint64(data[40:]))
	arenaLen := int(binary.LittleEndian.Uint64(data[48:]))
	recOff := int64(binary.LittleEndian.Uint64(data[56:]))
	wantRecOff := int64(ckptHdrSize) + 4*int64(spanN+1) + 16*int64(arenaLen) + 8*int64(spanE) + 2*int64(arenaLen)
	if spanN < 0 || spanE < 0 || arenaLen < 0 || recOff != wantRecOff || recOff > n {
		return nil, 0, 0, fmt.Errorf("graph: checkpoint %s has inconsistent geometry", path)
	}

	cv := &carver{data: data, off: ckptHdrSize}
	c := &CSR{
		nodes:      make([]Node, spanN),
		edges:      make([]Edge, spanE),
		nodeIdx:    make(map[NodeID]int32, spanN),
		edgeIdx:    make(map[EdgeID]int32, spanE),
		labelNodes: map[string][]int32{},
		stats:      StoreStats{NodeLabels: map[string]int{}, EdgeLabels: map[string]int{}},
	}
	c.incOff = cv.int32s(spanN + 1)
	c.incEdge = cv.int32s(arenaLen)
	c.incOther = cv.int32s(arenaLen)
	c.edgeSrc = cv.int32s(spanE)
	c.edgeTgt = cv.int32s(spanE)
	c.sortEdge = cv.int32s(arenaLen)
	c.sortOther = cv.int32s(arenaLen)
	c.incKind = cv.kinds(arenaLen)
	c.sortKind = cv.kinds(arenaLen)
	if cv.off != recOff {
		return nil, 0, 0, fmt.Errorf("graph: checkpoint %s arena section ended at %d, expected %d", path, cv.off, recOff)
	}

	d := bdec{buf: data[:n], off: int(recOff)}
	for i := 0; i < spanN; i++ {
		if d.uvarint() == 0 {
			if c.deadN == nil {
				c.deadN = make([]bool, spanN)
			}
			c.deadN[i] = true
			continue
		}
		nd := Node{ID: NodeID(d.string()), Labels: d.strings(), Props: d.props()}
		if d.err != nil {
			break
		}
		c.nodes[i] = nd
		c.nodeIdx[nd.ID] = int32(i)
		c.liveNodes++
		for _, l := range nd.Labels {
			c.labelNodes[l] = append(c.labelNodes[l], int32(i))
			c.stats.NodeLabels[l]++
		}
	}
	for i := 0; i < spanE; i++ {
		if d.uvarint() == 0 {
			if c.deadE == nil {
				c.deadE = make([]bool, spanE)
			}
			c.deadE[i] = true
			continue
		}
		ed := Edge{ID: EdgeID(d.string()), Direction: Direction(d.byte()), Labels: d.strings(), Props: d.props()}
		if d.err != nil {
			break
		}
		si, ti := c.edgeSrc[i], c.edgeTgt[i]
		if int(si) >= spanN || int(ti) >= spanN || si < 0 || ti < 0 {
			return nil, 0, 0, fmt.Errorf("graph: checkpoint %s edge %d has out-of-range endpoints", path, i)
		}
		ed.Source = c.nodes[si].ID
		ed.Target = c.nodes[ti].ID
		c.edges[i] = ed
		c.edgeIdx[ed.ID] = int32(i)
		c.liveEdges++
		for _, l := range ed.Labels {
			c.stats.EdgeLabels[l]++
		}
	}
	if d.err != nil || d.off != int(n) {
		return nil, 0, 0, fmt.Errorf("graph: checkpoint %s has a malformed records section", path)
	}
	c.stats.Nodes = c.liveNodes
	c.stats.Edges = c.liveEdges
	return c, cut, epoch, nil
}

// syncDirBestEffort fsyncs a directory so renames and removals are
// durable where the platform supports it.
func syncDirBestEffort(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}
