package graph

import (
	"encoding/json"
	"fmt"
	"io"

	"gpml/internal/value"
)

// Builder offers a fluent, panic-free way to assemble graphs in tests,
// examples and generators. Errors are accumulated and returned by Build.
type Builder struct {
	g    *Graph
	errs []error
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{g: New()} }

// Node adds a node with labels and alternating key/value property pairs.
// Property values may be string, int, int64, float64, bool or value.Value.
func (b *Builder) Node(id string, labels []string, kv ...any) *Builder {
	props, err := kvProps(kv)
	if err != nil {
		b.errs = append(b.errs, fmt.Errorf("node %q: %w", id, err))
		return b
	}
	if err := b.g.AddNode(NodeID(id), labels, props); err != nil {
		b.errs = append(b.errs, err)
	}
	return b
}

// Edge adds a directed edge.
func (b *Builder) Edge(id, src, dst string, labels []string, kv ...any) *Builder {
	props, err := kvProps(kv)
	if err != nil {
		b.errs = append(b.errs, fmt.Errorf("edge %q: %w", id, err))
		return b
	}
	if err := b.g.AddEdge(EdgeID(id), NodeID(src), NodeID(dst), labels, props); err != nil {
		b.errs = append(b.errs, err)
	}
	return b
}

// UndirectedEdge adds an undirected edge.
func (b *Builder) UndirectedEdge(id, u, v string, labels []string, kv ...any) *Builder {
	props, err := kvProps(kv)
	if err != nil {
		b.errs = append(b.errs, fmt.Errorf("edge %q: %w", id, err))
		return b
	}
	if err := b.g.AddUndirectedEdge(EdgeID(id), NodeID(u), NodeID(v), labels, props); err != nil {
		b.errs = append(b.errs, err)
	}
	return b
}

// Build returns the assembled graph or the first accumulated error.
func (b *Builder) Build() (*Graph, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	return b.g, nil
}

// MustBuild is Build that panics on error; intended for fixtures.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func kvProps(kv []any) (map[string]value.Value, error) {
	if len(kv) == 0 {
		return nil, nil
	}
	if len(kv)%2 != 0 {
		return nil, fmt.Errorf("odd number of key/value arguments")
	}
	props := make(map[string]value.Value, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			return nil, fmt.Errorf("property key %v is not a string", kv[i])
		}
		v, err := ToValue(kv[i+1])
		if err != nil {
			return nil, fmt.Errorf("property %q: %w", k, err)
		}
		props[k] = v
	}
	return props, nil
}

// ToValue converts a Go value to a property value.
func ToValue(x any) (value.Value, error) {
	switch v := x.(type) {
	case nil:
		return value.Null, nil
	case value.Value:
		return v, nil
	case string:
		return value.Str(v), nil
	case int:
		return value.Int(int64(v)), nil
	case int64:
		return value.Int(v), nil
	case float64:
		return value.Float(v), nil
	case bool:
		return value.Bool(v), nil
	default:
		return value.Null, fmt.Errorf("unsupported property type %T", x)
	}
}

// jsonGraph is the interchange schema for WriteJSON/ReadJSON.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	ID     string         `json:"id"`
	Labels []string       `json:"labels,omitempty"`
	Props  map[string]any `json:"props,omitempty"`
}

type jsonEdge struct {
	ID         string         `json:"id"`
	Source     string         `json:"source"`
	Target     string         `json:"target"`
	Undirected bool           `json:"undirected,omitempty"`
	Labels     []string       `json:"labels,omitempty"`
	Props      map[string]any `json:"props,omitempty"`
}

// WriteJSON serializes the graph for cmd/gpml interchange.
func (g *Graph) WriteJSON(w io.Writer) error {
	var jg jsonGraph
	g.Nodes(func(n *Node) bool {
		jg.Nodes = append(jg.Nodes, jsonNode{ID: string(n.ID), Labels: n.Labels, Props: propsToJSON(n.Props)})
		return true
	})
	g.Edges(func(e *Edge) bool {
		jg.Edges = append(jg.Edges, jsonEdge{
			ID: string(e.ID), Source: string(e.Source), Target: string(e.Target),
			Undirected: e.Direction == Undirected, Labels: e.Labels, Props: propsToJSON(e.Props),
		})
		return true
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jg)
}

// ReadJSON parses a graph written by WriteJSON.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, fmt.Errorf("graph: decoding JSON: %w", err)
	}
	g := New()
	for _, n := range jg.Nodes {
		props, err := propsFromJSON(n.Props)
		if err != nil {
			return nil, fmt.Errorf("graph: node %q: %w", n.ID, err)
		}
		if err := g.AddNode(NodeID(n.ID), n.Labels, props); err != nil {
			return nil, err
		}
	}
	for _, e := range jg.Edges {
		props, err := propsFromJSON(e.Props)
		if err != nil {
			return nil, fmt.Errorf("graph: edge %q: %w", e.ID, err)
		}
		if e.Undirected {
			err = g.AddUndirectedEdge(EdgeID(e.ID), NodeID(e.Source), NodeID(e.Target), e.Labels, props)
		} else {
			err = g.AddEdge(EdgeID(e.ID), NodeID(e.Source), NodeID(e.Target), e.Labels, props)
		}
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}

func propsToJSON(props map[string]value.Value) map[string]any {
	if len(props) == 0 {
		return nil
	}
	out := make(map[string]any, len(props))
	for k, v := range props {
		switch v.Kind() {
		case value.KindString:
			s, _ := v.AsString()
			out[k] = s
		case value.KindInt:
			i, _ := v.AsInt()
			out[k] = i
		case value.KindFloat:
			f, _ := v.AsFloat()
			out[k] = f
		case value.KindBool:
			b, _ := v.AsBool()
			out[k] = b
		default:
			out[k] = nil
		}
	}
	return out
}

func propsFromJSON(props map[string]any) (map[string]value.Value, error) {
	if len(props) == 0 {
		return nil, nil
	}
	out := make(map[string]value.Value, len(props))
	for k, raw := range props {
		switch v := raw.(type) {
		case string:
			out[k] = value.Str(v)
		case float64:
			if v == float64(int64(v)) {
				out[k] = value.Int(int64(v))
			} else {
				out[k] = value.Float(v)
			}
		case bool:
			out[k] = value.Bool(v)
		case nil:
			out[k] = value.Null
		default:
			return nil, fmt.Errorf("unsupported JSON property type %T for %q", raw, k)
		}
	}
	return out, nil
}
