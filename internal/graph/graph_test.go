package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gpml/internal/value"
)

func small(t *testing.T) *Graph {
	t.Helper()
	g, err := NewBuilder().
		Node("a", []string{"Account"}, "owner", "Ann").
		Node("b", []string{"Account"}, "owner", "Bob").
		Node("c", nil).
		Edge("e1", "a", "b", []string{"Transfer"}, "amount", 5).
		UndirectedEdge("e2", "b", "c", []string{"knows"}).
		Edge("e3", "b", "b", []string{"Transfer"}). // directed self-loop
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBasicConstruction(t *testing.T) {
	g := small(t)
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("counts: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	n := g.Node("a")
	if n == nil || !n.HasLabel("Account") || n.HasLabel("IP") {
		t.Fatalf("node a labels wrong: %+v", n)
	}
	if got := n.Prop("owner"); !value.Identical(got, value.Str("Ann")) {
		t.Errorf("prop owner: %v", got)
	}
	if got := n.Prop("missing"); !got.IsNull() {
		t.Errorf("missing property must be NULL (π is partial)")
	}
	e := g.Edge("e1")
	if e.Source != "a" || e.Target != "b" || e.Direction != Directed {
		t.Errorf("edge e1 wrong: %+v", e)
	}
	if e.Other("a") != "b" || e.Other("b") != "a" {
		t.Errorf("Other wrong")
	}
	if !e.Connects("a", "b") || !e.Connects("b", "a") || e.Connects("a", "c") {
		t.Errorf("Connects wrong")
	}
	if !g.Edge("e3").IsLoop() || g.Edge("e1").IsLoop() {
		t.Errorf("IsLoop wrong")
	}
	if g.Edge("e2").Direction != Undirected {
		t.Errorf("e2 should be undirected")
	}
}

func TestDefinitionInvariants(t *testing.T) {
	g := New()
	if err := g.AddNode("x", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("x", nil, nil); err == nil {
		t.Errorf("duplicate node id must fail")
	}
	// N ∩ E = ∅ (Definition 2.1).
	if err := g.AddEdge("x", "x", "x", nil, nil); err == nil {
		t.Errorf("edge id reusing node id must fail")
	}
	if err := g.AddNode("y", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("e", "x", "y", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("e", nil, nil); err == nil {
		t.Errorf("node id reusing edge id must fail")
	}
	if err := g.AddEdge("e2", "x", "ghost", nil, nil); err == nil {
		t.Errorf("dangling target must fail")
	}
	if err := g.AddEdge("e3", "ghost", "x", nil, nil); err == nil {
		t.Errorf("dangling source must fail")
	}
	// Self-loops and multi-edges are allowed.
	if err := g.AddEdge("loop", "x", "x", nil, nil); err != nil {
		t.Errorf("self-loop must be allowed: %v", err)
	}
	if err := g.AddEdge("e4", "x", "y", nil, nil); err != nil {
		t.Errorf("multi-edge must be allowed: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLabelsNormalized(t *testing.T) {
	g := New()
	if err := g.AddNode("n", []string{"B", "A", "B"}, nil); err != nil {
		t.Fatal(err)
	}
	got := g.Node("n").Labels
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("labels must be sorted and deduplicated: %v", got)
	}
	if all := g.Labels(); len(all) != 2 {
		t.Errorf("graph labels: %v", all)
	}
}

func TestIncidentAndIteration(t *testing.T) {
	g := small(t)
	var ids []string
	g.Incident("b", func(e *Edge) bool {
		ids = append(ids, string(e.ID))
		return true
	})
	if strings.Join(ids, ",") != "e1,e2,e3" {
		t.Errorf("incident order: %v", ids)
	}
	// Self-loop appears exactly once in its node's incident list.
	count := 0
	for _, id := range g.IncidentIDs("b") {
		if id == "e3" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("self-loop must be listed once, got %d", count)
	}
	// Early termination.
	seen := 0
	g.Nodes(func(*Node) bool { seen++; return seen < 2 })
	if seen != 2 {
		t.Errorf("iteration should stop early, saw %d", seen)
	}
	if len(g.NodeIDs()) != 3 || len(g.EdgeIDs()) != 3 {
		t.Errorf("id lists wrong")
	}
}

func TestZeroValueGraph(t *testing.T) {
	var g Graph
	if err := g.AddNode("a", nil, nil); err != nil {
		t.Fatalf("zero-value graph must be usable: %v", err)
	}
	if g.Node("missing") != nil || g.Edge("missing") != nil {
		t.Errorf("missing lookups must return nil")
	}
}

func TestPathOperations(t *testing.T) {
	g := small(t)
	p := SingleNode("a")
	if p.Len() != 0 || p.First() != "a" || p.Last() != "a" {
		t.Errorf("single node path wrong")
	}
	p2 := p.Append("e1", "b")
	if p2.Len() != 1 || p2.Last() != "b" {
		t.Errorf("append wrong: %v", p2)
	}
	// Persistence: p unchanged.
	if p.Len() != 0 {
		t.Errorf("Append must not mutate the receiver")
	}
	if err := p2.ValidIn(g); err != nil {
		t.Errorf("p2 should be valid: %v", err)
	}
	bad := Path{Nodes: []NodeID{"a", "c"}, Edges: []EdgeID{"e1"}}
	if err := bad.ValidIn(g); err == nil {
		t.Errorf("edge e1 does not connect a and c")
	}
	if got := p2.String(); got != "path(a,e1,b)" {
		t.Errorf("String: %q", got)
	}
	q := Path{Nodes: []NodeID{"b", "c"}, Edges: []EdgeID{"e2"}}
	joined, err := p2.Concat(q)
	if err != nil || joined.String() != "path(a,e1,b,e2,c)" {
		t.Errorf("concat: %v %v", joined, err)
	}
	if _, err := q.Concat(p2); err == nil {
		t.Errorf("mismatched concat must fail")
	}
}

func TestPathRestrictorPredicates(t *testing.T) {
	trail := Path{Nodes: []NodeID{"a", "b", "a"}, Edges: []EdgeID{"e1", "e2"}}
	if !trail.IsTrail() {
		t.Errorf("distinct edges: trail")
	}
	if trail.IsAcyclic() {
		t.Errorf("node a repeats: not acyclic")
	}
	if !trail.IsSimple() {
		t.Errorf("first==last: simple")
	}
	notTrail := Path{Nodes: []NodeID{"a", "b", "a", "b"}, Edges: []EdgeID{"e1", "e1", "e1"}}
	if notTrail.IsTrail() {
		t.Errorf("repeated edge: not a trail")
	}
	interior := Path{Nodes: []NodeID{"a", "b", "b"}, Edges: []EdgeID{"e1", "e2"}}
	if interior.IsSimple() {
		t.Errorf("interior repeat: not simple")
	}
	empty := Path{}
	if !empty.IsTrail() || !empty.IsAcyclic() || !empty.IsSimple() {
		t.Errorf("empty path satisfies all restrictors")
	}
}

// Property: ACYCLIC implies SIMPLE implies (for our generator) the node
// multiset constraints; TRAIL is implied by ACYCLIC on simple graphs.
func TestRestrictorImplicationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		p := Path{Nodes: []NodeID{NodeID(rune('a' + rng.Intn(n)))}}
		for i := 0; i < rng.Intn(8); i++ {
			p = p.Append(EdgeID(rune('p'+rng.Intn(10))), NodeID(rune('a'+rng.Intn(n))))
		}
		if p.IsAcyclic() && !p.IsSimple() {
			return false // acyclic ⊂ simple
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundtrip(t *testing.T) {
	g := small(t)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("roundtrip counts differ")
	}
	if got := back.Node("a").Prop("owner"); !value.Identical(got, value.Str("Ann")) {
		t.Errorf("roundtrip property: %v", got)
	}
	if back.Edge("e2").Direction != Undirected {
		t.Errorf("roundtrip direction lost")
	}
	if amt := back.Edge("e1").Prop("amount"); !value.Identical(amt, value.Int(5)) {
		t.Errorf("roundtrip int property became %v", amt)
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Errorf("invalid JSON must fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"nodes":[{"id":"a"},{"id":"a"}]}`)); err == nil {
		t.Errorf("duplicate ids must fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"edges":[{"id":"e","source":"x","target":"y"}]}`)); err == nil {
		t.Errorf("dangling edge must fail")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder().Node("a", nil, "key").Build(); err == nil {
		t.Errorf("odd kv list must fail")
	}
	if _, err := NewBuilder().Node("a", nil, 42, "v").Build(); err == nil {
		t.Errorf("non-string key must fail")
	}
	if _, err := NewBuilder().Node("a", nil, "k", struct{}{}).Build(); err == nil {
		t.Errorf("unsupported value type must fail")
	}
	if _, err := NewBuilder().Edge("e", "a", "b", nil).Build(); err == nil {
		t.Errorf("edge before nodes must fail")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("MustBuild must panic on error")
		}
	}()
	NewBuilder().Node("a", nil).Node("a", nil).MustBuild()
}

func TestToValue(t *testing.T) {
	for _, x := range []any{nil, "s", 1, int64(2), 1.5, true, value.Int(3)} {
		if _, err := ToValue(x); err != nil {
			t.Errorf("ToValue(%T): %v", x, err)
		}
	}
	if _, err := ToValue([]int{1}); err == nil {
		t.Errorf("ToValue(slice) must fail")
	}
}

func TestStats(t *testing.T) {
	s := small(t).Stats()
	if !strings.Contains(s, "nodes=3") || !strings.Contains(s, "directed=2") || !strings.Contains(s, "undirected=1") {
		t.Errorf("stats: %s", s)
	}
}

// Path keys are injective over structurally distinct paths (property).
func TestPathKeyInjectiveProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		p1 := Path{Nodes: []NodeID{NodeID(rune('a' + a%4))}}
		p2 := Path{Nodes: []NodeID{NodeID(rune('a' + b%4))}}
		if p1.Key() == p2.Key() {
			return p1.Nodes[0] == p2.Nodes[0]
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverse(t *testing.T) {
	g := small(t)
	r := Reverse(g)
	if r.NumNodes() != g.NumNodes() || r.NumEdges() != g.NumEdges() {
		t.Fatalf("reverse counts differ")
	}
	e := r.Edge("e1")
	if e.Source != "b" || e.Target != "a" {
		t.Errorf("e1 not reversed: %s→%s", e.Source, e.Target)
	}
	if r.Edge("e2").Direction != Undirected {
		t.Errorf("undirected edges keep their kind")
	}
	// Double reversal is the identity on structure.
	rr := Reverse(r)
	if rr.Edge("e1").Source != "a" {
		t.Errorf("double reverse broken")
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInduced(t *testing.T) {
	g := small(t)
	sub := Induced(g, map[NodeID]bool{"a": true, "b": true})
	if sub.NumNodes() != 2 {
		t.Errorf("induced nodes: %d", sub.NumNodes())
	}
	// e1 (a→b) and e3 (b→b) survive; e2 (b~c) loses an endpoint.
	if sub.NumEdges() != 2 || sub.Edge("e2") != nil {
		t.Errorf("induced edges: %d", sub.NumEdges())
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestLabelStatsMemoInvalidation pins the stats memo: repeated calls
// return consistent counts, and a mutation refreshes them.
func TestLabelStatsMemoInvalidation(t *testing.T) {
	g := New()
	if err := g.AddNode("n1", []string{"A"}, nil); err != nil {
		t.Fatal(err)
	}
	if got := g.LabelStats().NodeLabelCount("A"); got != 1 {
		t.Fatalf("A count = %d, want 1", got)
	}
	if got := g.LabelStats().NodeLabelCount("A"); got != 1 {
		t.Fatalf("memoized A count = %d, want 1", got)
	}
	if err := g.AddNode("n2", []string{"A"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("e1", "n1", "n2", []string{"T"}, nil); err != nil {
		t.Fatal(err)
	}
	st := g.LabelStats()
	if st.NodeLabelCount("A") != 2 || st.EdgeLabelCount("T") != 1 {
		t.Fatalf("post-mutation stats = %+v, want A=2 T=1", st)
	}
	if st.AvgDegree() != 1 {
		t.Fatalf("AvgDegree = %v, want 1 (2 edges-ends / 2 nodes)", st.AvgDegree())
	}
}
