package graph

import "sort"

// Store is the abstract graph the evaluator runs against: the paper's
// G = (N, E, ρ, λ, π) reduced to the operations pattern matching needs.
// Implementations must be safe for concurrent readers; the evaluator never
// mutates a Store.
//
// Two implementations ship with the package: the mutable map-based *Graph
// and the immutable CSR snapshot built by Snapshot. Further backends
// (sharded, disk-resident, relational views) only need to satisfy this
// interface to plug into the whole pipeline.
type Store interface {
	// Node returns the node with the given id, or nil.
	Node(id NodeID) *Node
	// Edge returns the edge with the given id, or nil.
	Edge(id EdgeID) *Edge
	// NumNodes reports |N|.
	NumNodes() int
	// NumEdges reports |E|.
	NumEdges() int
	// Nodes iterates nodes in insertion order; f returns false to stop.
	Nodes(f func(*Node) bool)
	// Edges iterates edges in insertion order; f returns false to stop.
	Edges(f func(*Edge) bool)
	// Incident iterates the edges touching n in insertion order (directed
	// in either orientation, and undirected); a self-loop is visited once.
	Incident(n NodeID, f func(*Edge) bool)
	// Degree reports the number of incident edges of n (self-loops count
	// once), without iterating them.
	Degree(n NodeID) int
	// NodesWithLabel iterates the nodes carrying the label, in insertion
	// order. It must visit exactly the nodes a full Nodes scan filtered by
	// HasLabel(label) would.
	NodesWithLabel(label string, f func(*Node) bool)
	// CountNodesWithLabel reports how many nodes carry the label, for
	// seed selection (cheaper than LabelStats when only a few labels are
	// of interest).
	CountNodesWithLabel(label string) int
	// LabelStats reports element cardinalities per label, for cost
	// estimates and reporting.
	LabelStats() StoreStats

	// The ID interner (see intern.go): every element has a stable dense
	// index assigned in insertion order, and the execution path runs on
	// those integers end to end. InternNode/InternEdge map an id to its
	// index (ok=false for unknown ids); NodeAt/EdgeAt are the Lookup
	// direction and return nil when the index is out of range. The CSR
	// snapshot answers from its native dense layout; the map backend
	// builds its table lazily and discards it on mutation (indices stay
	// stable because insertion is append-only).
	InternNode(id NodeID) (ElemIdx, bool)
	InternEdge(id EdgeID) (ElemIdx, bool)
	NodeAt(i ElemIdx) *Node
	EdgeAt(i ElemIdx) *Edge
}

// StoreStats summarizes a store's cardinalities. Implementations may
// precompute it (CSR) or derive it on demand (map backend).
type StoreStats struct {
	Nodes int
	Edges int
	// NodeLabels counts nodes per label; EdgeLabels counts edges per label.
	// An element with k labels contributes to k counters.
	NodeLabels map[string]int
	EdgeLabels map[string]int
	// Partitions is the adjacency shard count: 0 or 1 for unsharded
	// backends, N for a PartitionSnapshot. The planner reads it to
	// discount full-enumeration seed scans that scatter across shards.
	Partitions int
}

// NodeLabelCount returns the number of nodes carrying the label.
func (s StoreStats) NodeLabelCount(label string) int { return s.NodeLabels[label] }

// EdgeLabelCount returns the number of edges carrying the label.
func (s StoreStats) EdgeLabelCount(label string) int { return s.EdgeLabels[label] }

// AvgDegree reports the mean number of incident edges per node (each edge
// touches two endpoints); the fanout baseline of the join cost model.
func (s StoreStats) AvgDegree() float64 {
	if s.Nodes == 0 {
		return 0
	}
	return 2 * float64(s.Edges) / float64(s.Nodes)
}

// CheapestNodeLabel picks the label with the fewest nodes among the
// candidates, for seeding evaluation from the smallest candidate set. All
// candidate labels are required (conjunctive), so any of them is a sound
// seed set; the smallest is the cheapest.
func CheapestNodeLabel(s Store, candidates []string) (string, bool) {
	if len(candidates) == 0 {
		return "", false
	}
	best := candidates[0]
	if len(candidates) == 1 {
		return best, true // nothing to compare; skip the count
	}
	bestCount := s.CountNodesWithLabel(best)
	for _, l := range candidates[1:] {
		if c := s.CountNodesWithLabel(l); c < bestCount {
			best, bestCount = l, c
		}
	}
	return best, true
}

// Degree reports the number of edges incident to n.
func (g *Graph) Degree(n NodeID) int { return len(g.incident[n]) }

// NodesWithLabel iterates the nodes carrying the label in insertion order.
// The map backend has no label index, so this is a filtered scan; the CSR
// snapshot answers it from its inverted index.
func (g *Graph) NodesWithLabel(label string, f func(*Node) bool) {
	for _, id := range g.nodeOrder {
		n := g.nodes[id]
		if n.HasLabel(label) && !f(n) {
			return
		}
	}
}

// CountNodesWithLabel counts the nodes carrying the label (a scan on the
// map backend; allocation-free).
func (g *Graph) CountNodesWithLabel(label string) int {
	count := 0
	for _, id := range g.nodeOrder {
		if g.nodes[id].HasLabel(label) {
			count++
		}
	}
	return count
}

// LabelStats returns cardinality statistics, computed with a full scan on
// first use and memoized until the next mutation (so a serving loop
// running many planned queries against one graph scans it once, not once
// per query). Concurrent readers share the memo under a mutex; callers
// must treat the returned maps as read-only.
func (g *Graph) LabelStats() StoreStats {
	g.statsMu.Lock()
	defer g.statsMu.Unlock()
	if g.statsValid {
		return g.cachedStats
	}
	s := StoreStats{
		Nodes:      len(g.nodeOrder),
		Edges:      len(g.edgeOrder),
		NodeLabels: map[string]int{},
		EdgeLabels: map[string]int{},
	}
	for _, id := range g.nodeOrder {
		for _, l := range g.nodes[id].Labels {
			s.NodeLabels[l]++
		}
	}
	for _, id := range g.edgeOrder {
		for _, l := range g.edges[id].Labels {
			s.EdgeLabels[l]++
		}
	}
	g.cachedStats = s
	g.statsValid = true
	return s
}

// statically assert that both backends satisfy the interface.
var (
	_ Store = (*Graph)(nil)
	_ Store = (*CSR)(nil)
)

// sortedLabels returns the map's keys sorted, for deterministic rendering.
func sortedLabels(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
