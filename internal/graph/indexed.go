package graph

// StepKind classifies one traversal step relative to the current node.
// The evaluator's product search matches it against the seven edge-pattern
// orientations without consulting the edge's endpoint ids.
type StepKind uint8

// Step kinds.
const (
	StepOut        StepKind = iota // directed edge leaving the node
	StepIn                         // directed edge arriving at the node
	StepLoop                       // directed self-loop (traversable with or against)
	StepUndirected                 // undirected edge (a self-loop steps once)
)

// String names the step kind.
func (k StepKind) String() string {
	switch k {
	case StepOut:
		return "out"
	case StepIn:
		return "in"
	case StepLoop:
		return "loop"
	default:
		return "undirected"
	}
}

// Stepper extends Store with dense integer indexing of nodes and edges and
// an incident-step iterator, the traversal shape product-graph searches
// want: a (node index × automaton state) pair packs into one integer, and
// each step hands over the neighbour's index without id round-trips.
//
// The CSR snapshot implements Stepper natively from its adjacency arena;
// any other Store is adapted by AsStepper with one indexing pass.
type Stepper interface {
	Store
	// NodeIndex maps a node id to its dense index (insertion order).
	NodeIndex(id NodeID) (int, bool)
	// NodeByIndex returns the node at a dense index.
	NodeByIndex(i int) *Node
	// EdgeByIndex returns the edge at a dense index (insertion order).
	EdgeByIndex(i int) *Edge
	// Steps iterates the traversal steps available from node index i: the
	// dense edge index, the neighbour's dense index, and the step kind.
	// A directed self-loop yields a single StepLoop step and an undirected
	// self-loop a single StepUndirected step, mirroring Incident's
	// visit-once contract. f returns false to stop.
	Steps(i int, f func(edge, other int, kind StepKind) bool)
}

// AsStepper returns the store's native indexed view when it provides one
// (the CSR snapshot does), or builds a transient index with one pass over
// the store's nodes and edges.
func AsStepper(s Store) Stepper {
	if st, ok := s.(Stepper); ok {
		return st
	}
	return buildStepIndex(s)
}

// indexedStep is one precomputed traversal step of the generic adapter.
type indexedStep struct {
	edge  int32
	other int32
	kind  StepKind
}

// stepIndex adapts an arbitrary Store to Stepper. It snapshots only the
// topology (indices and step lists); element data is served by the
// embedded Store, so properties stay live.
type stepIndex struct {
	Store
	nodes []*Node
	idx   map[NodeID]int
	edges []*Edge
	adj   [][]indexedStep
}

func buildStepIndex(s Store) *stepIndex {
	ix := &stepIndex{
		Store: s,
		nodes: make([]*Node, 0, s.NumNodes()),
		idx:   make(map[NodeID]int, s.NumNodes()),
		edges: make([]*Edge, 0, s.NumEdges()),
	}
	s.Nodes(func(n *Node) bool {
		ix.idx[n.ID] = len(ix.nodes)
		ix.nodes = append(ix.nodes, n)
		return true
	})
	ix.adj = make([][]indexedStep, len(ix.nodes))
	s.Edges(func(e *Edge) bool {
		ei := int32(len(ix.edges))
		ix.edges = append(ix.edges, e)
		si, ti := ix.idx[e.Source], ix.idx[e.Target]
		switch {
		case e.Direction == Undirected:
			ix.adj[si] = append(ix.adj[si], indexedStep{ei, int32(ti), StepUndirected})
			if si != ti {
				ix.adj[ti] = append(ix.adj[ti], indexedStep{ei, int32(si), StepUndirected})
			}
		case si == ti:
			ix.adj[si] = append(ix.adj[si], indexedStep{ei, int32(si), StepLoop})
		default:
			ix.adj[si] = append(ix.adj[si], indexedStep{ei, int32(ti), StepOut})
			ix.adj[ti] = append(ix.adj[ti], indexedStep{ei, int32(si), StepIn})
		}
		return true
	})
	return ix
}

// NodeIndex maps a node id to its dense index.
func (ix *stepIndex) NodeIndex(id NodeID) (int, bool) {
	i, ok := ix.idx[id]
	return i, ok
}

// NodeByIndex returns the node at a dense index.
func (ix *stepIndex) NodeByIndex(i int) *Node { return ix.nodes[i] }

// EdgeByIndex returns the edge at a dense index.
func (ix *stepIndex) EdgeByIndex(i int) *Edge { return ix.edges[i] }

// Steps iterates the precomputed steps of node index i.
func (ix *stepIndex) Steps(i int, f func(edge, other int, kind StepKind) bool) {
	for _, st := range ix.adj[i] {
		if !f(int(st.edge), int(st.other), st.kind) {
			return
		}
	}
}

// statically assert the adapter and the CSR satisfy Stepper.
var (
	_ Stepper = (*stepIndex)(nil)
	_ Stepper = (*CSR)(nil)
)
