package graph

import "sync"

// StepKind classifies one traversal step relative to the current node.
// The evaluator's product search matches it against the seven edge-pattern
// orientations without consulting the edge's endpoint ids.
type StepKind uint8

// Step kinds.
const (
	StepOut        StepKind = iota // directed edge leaving the node
	StepIn                         // directed edge arriving at the node
	StepLoop                       // directed self-loop (traversable with or against)
	StepUndirected                 // undirected edge (a self-loop steps once)
)

// String names the step kind.
func (k StepKind) String() string {
	switch k {
	case StepOut:
		return "out"
	case StepIn:
		return "in"
	case StepLoop:
		return "loop"
	default:
		return "undirected"
	}
}

// Stepper extends Store with dense integer indexing of nodes and edges and
// an incident-step iterator, the traversal shape product-graph searches
// want: a (node index × automaton state) pair packs into one integer, and
// each step hands over the neighbour's index without id round-trips.
//
// The CSR snapshot implements Stepper natively from its adjacency arena;
// any other Store is adapted by AsStepper with one indexing pass.
type Stepper interface {
	Store
	// NodeIndex maps a node id to its dense index (insertion order).
	NodeIndex(id NodeID) (int, bool)
	// NodeByIndex returns the node at a dense index.
	NodeByIndex(i int) *Node
	// EdgeByIndex returns the edge at a dense index (insertion order).
	EdgeByIndex(i int) *Edge
	// EdgeEnds returns the dense endpoint indices of the edge at index i
	// (source and target as presented; equal for self-loops), so
	// orientation checks and path replay stay in index space.
	EdgeEnds(i int) (src, tgt int)
	// Steps iterates the traversal steps available from node index i: the
	// dense edge index, the neighbour's dense index, and the step kind.
	// A directed self-loop yields a single StepLoop step and an undirected
	// self-loop a single StepUndirected step, mirroring Incident's
	// visit-once contract. f returns false to stop.
	Steps(i int, f func(edge, other int, kind StepKind) bool)
	// NodesWithLabelIdx iterates the dense indices of the nodes carrying
	// the label, in insertion order — the seed path of the engines.
	NodesWithLabelIdx(label string, f func(i int) bool)
	// NodeIndexSpan reports the exclusive upper bound of node indices:
	// equal to NumNodes on fully-live stores, larger on stores with dead
	// holes (overlay epochs and compacted bases). Dense scans iterate
	// [0, span) and skip indices where NodeByIndex returns nil; dense
	// per-node tables size by the span.
	NodeIndexSpan() int
}

// AsStepper returns the store's native indexed view when it provides one
// (the CSR snapshot and overlay epochs do), the memoized adapter for the
// map backend (built once per graph generation, not once per call —
// repeated planned queries share it), or a transient index built with one
// pass over an arbitrary third-party store. An EpochSource is pinned to
// its current epoch first, so the view is immutable.
func AsStepper(s Store) Stepper {
	s = Pin(s)
	if st, ok := s.(Stepper); ok {
		return st
	}
	if g, ok := s.(*Graph); ok {
		return g.memoStepper()
	}
	return buildStepIndex(s)
}

// memoStepper returns the graph's memoized indexed view, building it on
// first use after a mutation (invalidateStats drops it).
func (g *Graph) memoStepper() *stepIndex {
	if ix := g.stepper.Load(); ix != nil {
		return ix
	}
	g.derivedMu.Lock()
	defer g.derivedMu.Unlock()
	if ix := g.stepper.Load(); ix != nil {
		return ix
	}
	ix := buildStepIndex(g)
	g.stepper.Store(ix)
	return ix
}

// indexedStep is one precomputed traversal step of the generic adapter.
type indexedStep struct {
	edge  int32
	other int32
	kind  StepKind
}

// stepIndex adapts an arbitrary Store to Stepper. It snapshots only the
// topology (indices and step lists); element data is served by the
// embedded Store, so properties stay live.
type stepIndex struct {
	Store
	nodes []*Node
	idx   map[NodeID]int
	edges []*Edge
	eidx  map[EdgeID]int
	ends  [][2]int32
	adj   [][]indexedStep

	// labelIdx memoizes per-label dense seed lists (the underlying store's
	// NodesWithLabel order), built on first use per label.
	labelMu  sync.Mutex
	labelIdx map[string][]int32
}

func buildStepIndex(s Store) *stepIndex {
	ix := &stepIndex{
		Store: s,
		nodes: make([]*Node, 0, s.NumNodes()),
		idx:   make(map[NodeID]int, s.NumNodes()),
		edges: make([]*Edge, 0, s.NumEdges()),
		eidx:  make(map[EdgeID]int, s.NumEdges()),
	}
	s.Nodes(func(n *Node) bool {
		ix.idx[n.ID] = len(ix.nodes)
		ix.nodes = append(ix.nodes, n)
		return true
	})
	ix.adj = make([][]indexedStep, len(ix.nodes))
	ix.ends = make([][2]int32, 0, s.NumEdges())
	s.Edges(func(e *Edge) bool {
		ei := int32(len(ix.edges))
		ix.eidx[e.ID] = len(ix.edges)
		ix.edges = append(ix.edges, e)
		si, ti := ix.idx[e.Source], ix.idx[e.Target]
		ix.ends = append(ix.ends, [2]int32{int32(si), int32(ti)})
		switch {
		case e.Direction == Undirected:
			ix.adj[si] = append(ix.adj[si], indexedStep{ei, int32(ti), StepUndirected})
			if si != ti {
				ix.adj[ti] = append(ix.adj[ti], indexedStep{ei, int32(si), StepUndirected})
			}
		case si == ti:
			ix.adj[si] = append(ix.adj[si], indexedStep{ei, int32(si), StepLoop})
		default:
			ix.adj[si] = append(ix.adj[si], indexedStep{ei, int32(ti), StepOut})
			ix.adj[ti] = append(ix.adj[ti], indexedStep{ei, int32(si), StepIn})
		}
		return true
	})
	return ix
}

// NodeIndex maps a node id to its dense index.
func (ix *stepIndex) NodeIndex(id NodeID) (int, bool) {
	i, ok := ix.idx[id]
	return i, ok
}

// NodeByIndex returns the node at a dense index.
func (ix *stepIndex) NodeByIndex(i int) *Node { return ix.nodes[i] }

// EdgeByIndex returns the edge at a dense index.
func (ix *stepIndex) EdgeByIndex(i int) *Edge { return ix.edges[i] }

// EdgeEnds returns the endpoint indices of the edge at a dense index.
func (ix *stepIndex) EdgeEnds(i int) (src, tgt int) {
	return int(ix.ends[i][0]), int(ix.ends[i][1])
}

// NodeIndexSpan reports the exclusive index upper bound (the adapter has
// no holes, so it equals NumNodes).
func (ix *stepIndex) NodeIndexSpan() int { return len(ix.nodes) }

// Steps iterates the precomputed steps of node index i.
func (ix *stepIndex) Steps(i int, f func(edge, other int, kind StepKind) bool) {
	for _, st := range ix.adj[i] {
		if !f(int(st.edge), int(st.other), st.kind) {
			return
		}
	}
}

// NodesWithLabelIdx iterates the label's node indices, memoizing the list
// per label (the adapter may be shared across queries and goroutines).
func (ix *stepIndex) NodesWithLabelIdx(label string, f func(i int) bool) {
	ix.labelMu.Lock()
	list, ok := ix.labelIdx[label]
	if !ok {
		for _, n := range ix.labelNodes(label) {
			list = append(list, int32(n))
		}
		if ix.labelIdx == nil {
			ix.labelIdx = map[string][]int32{}
		}
		ix.labelIdx[label] = list
	}
	ix.labelMu.Unlock()
	for _, i := range list {
		if !f(int(i)) {
			return
		}
	}
}

// labelNodes scans the underlying store's label iteration once.
func (ix *stepIndex) labelNodes(label string) []int {
	var out []int
	ix.Store.NodesWithLabel(label, func(n *Node) bool {
		if i, ok := ix.idx[n.ID]; ok {
			out = append(out, i)
		}
		return true
	})
	return out
}

// The adapter's interner answers from its own snapshot tables (the
// embedded Store would work too; these avoid a second map for stores
// whose own interner is lazy).
func (ix *stepIndex) InternNode(id NodeID) (ElemIdx, bool) {
	i, ok := ix.idx[id]
	return ElemIdx(i), ok
}

// InternEdge maps an edge id to its dense index.
func (ix *stepIndex) InternEdge(id EdgeID) (ElemIdx, bool) {
	i, ok := ix.eidx[id]
	return ElemIdx(i), ok
}

// NodeAt returns the node at a dense index, or nil when out of range.
func (ix *stepIndex) NodeAt(i ElemIdx) *Node {
	if int(i) >= len(ix.nodes) {
		return nil
	}
	return ix.nodes[i]
}

// EdgeAt returns the edge at a dense index, or nil when out of range.
func (ix *stepIndex) EdgeAt(i ElemIdx) *Edge {
	if int(i) >= len(ix.edges) {
		return nil
	}
	return ix.edges[i]
}

// statically assert the adapter and the CSR satisfy Stepper.
var (
	_ Stepper = (*stepIndex)(nil)
	_ Stepper = (*CSR)(nil)
)
