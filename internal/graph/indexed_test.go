package graph

import (
	"fmt"
	"sort"
	"testing"
)

// stepSet renders a Stepper's full step relation as sorted strings, for
// cross-implementation comparison.
func stepSet(t *testing.T, st Stepper) []string {
	t.Helper()
	var out []string
	for i := 0; i < st.NumNodes(); i++ {
		n := st.NodeByIndex(i)
		if got, ok := st.NodeIndex(n.ID); !ok || got != i {
			t.Fatalf("NodeIndex(%q) = %d,%v, want %d", n.ID, got, ok, i)
		}
		st.Steps(i, func(edge, other int, kind StepKind) bool {
			e := st.EdgeByIndex(edge)
			out = append(out, fmt.Sprintf("%s -%s(%s)-> %s", n.ID, e.ID, kind, st.NodeByIndex(other).ID))
			return true
		})
	}
	sort.Strings(out)
	return out
}

// The CSR's native arena-backed Stepper and the generic adapter around the
// map backend must expose the identical step relation, including the
// self-loop and multi-edge corners.
func TestStepperConformance(t *testing.T) {
	g := conformanceGraph(t)
	csr := Snapshot(g)
	adapter := AsStepper(Store(g))
	if _, isNative := Store(g).(Stepper); isNative {
		t.Fatalf("map backend unexpectedly implements Stepper; the adapter path is untested")
	}
	if st := AsStepper(csr); st != Stepper(csr) {
		t.Errorf("AsStepper(CSR) must return the CSR itself")
	}
	a, b := stepSet(t, csr), stepSet(t, adapter)
	if len(a) == 0 {
		t.Fatalf("empty step relation")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("step relations diverge:\ncsr:     %v\nadapter: %v", a, b)
	}
}

// Steps must agree with Incident: same edges touch each node, and the
// step kinds reflect direction and self-loops.
func TestStepsMatchIncident(t *testing.T) {
	g := conformanceGraph(t)
	csr := Snapshot(g)
	for i := 0; i < csr.NumNodes(); i++ {
		n := csr.NodeByIndex(i)
		var fromSteps, fromIncident []string
		csr.Steps(i, func(edge, other int, kind StepKind) bool {
			e := csr.EdgeByIndex(edge)
			fromSteps = append(fromSteps, string(e.ID))
			switch kind {
			case StepOut:
				if e.Direction != Directed || e.Source != n.ID || e.IsLoop() {
					t.Errorf("bad StepOut %s at %s", e.ID, n.ID)
				}
			case StepIn:
				if e.Direction != Directed || e.Target != n.ID || e.IsLoop() {
					t.Errorf("bad StepIn %s at %s", e.ID, n.ID)
				}
			case StepLoop:
				if e.Direction != Directed || !e.IsLoop() {
					t.Errorf("bad StepLoop %s at %s", e.ID, n.ID)
				}
			case StepUndirected:
				if e.Direction != Undirected {
					t.Errorf("bad StepUndirected %s at %s", e.ID, n.ID)
				}
			}
			return true
		})
		csr.Incident(n.ID, func(e *Edge) bool {
			fromIncident = append(fromIncident, string(e.ID))
			return true
		})
		sort.Strings(fromSteps)
		sort.Strings(fromIncident)
		if fmt.Sprint(fromSteps) != fmt.Sprint(fromIncident) {
			t.Errorf("node %s: steps %v != incident %v", n.ID, fromSteps, fromIncident)
		}
	}
}

// Early termination: the iterator stops when f returns false.
func TestStepsEarlyStop(t *testing.T) {
	g := conformanceGraph(t)
	for _, st := range []Stepper{Snapshot(g), AsStepper(Store(g))} {
		i, _ := st.NodeIndex("a")
		count := 0
		st.Steps(i, func(int, int, StepKind) bool {
			count++
			return false
		})
		if count != 1 {
			t.Errorf("early stop visited %d steps", count)
		}
	}
}
