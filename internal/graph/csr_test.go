package graph

import (
	"reflect"
	"testing"

	"gpml/internal/value"
)

// conformanceGraph builds a graph exercising every structural corner the
// Store contract covers: multiple labels, directed multi-edges between the
// same endpoints, undirected multi-edges, self-loops (directed and
// undirected), isolated nodes and unlabeled elements.
func conformanceGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddNode("a", []string{"Account", "Vip"}, map[string]value.Value{"owner": value.Str("ann")}))
	must(g.AddNode("b", []string{"Account"}, nil))
	must(g.AddNode("c", []string{"City"}, nil))
	must(g.AddNode("d", nil, nil)) // unlabeled, isolated
	must(g.AddEdge("e1", "a", "b", []string{"Transfer"}, map[string]value.Value{"amount": value.Int(5)}))
	must(g.AddEdge("e2", "a", "b", []string{"Transfer"}, nil)) // directed multi-edge
	must(g.AddEdge("e3", "b", "a", []string{"Transfer"}, nil))
	must(g.AddEdge("e4", "a", "a", []string{"Transfer"}, nil)) // directed self-loop
	must(g.AddUndirectedEdge("u1", "a", "c", []string{"near"}, nil))
	must(g.AddUndirectedEdge("u2", "a", "c", []string{"near"}, nil)) // undirected multi-edge
	must(g.AddUndirectedEdge("u3", "c", "c", []string{"near"}, nil)) // undirected self-loop
	must(g.AddEdge("e5", "b", "c", nil, nil))                        // unlabeled edge
	return g
}

// storeConformance checks one Store implementation against the reference
// behaviour of the graph it was built from.
func storeConformance(t *testing.T, name string, g *Graph, s Store) {
	t.Helper()
	if s.NumNodes() != g.NumNodes() || s.NumEdges() != g.NumEdges() {
		t.Fatalf("%s: size %d/%d, want %d/%d", name, s.NumNodes(), s.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	// Node and edge iteration in insertion order.
	var nodeIDs []NodeID
	s.Nodes(func(n *Node) bool { nodeIDs = append(nodeIDs, n.ID); return true })
	if !(len(nodeIDs) == 0 && g.NumNodes() == 0) && !reflect.DeepEqual(nodeIDs, g.NodeIDs()) {
		t.Errorf("%s: node order %v, want %v", name, nodeIDs, g.NodeIDs())
	}
	var edgeIDs []EdgeID
	s.Edges(func(e *Edge) bool { edgeIDs = append(edgeIDs, e.ID); return true })
	if !(len(edgeIDs) == 0 && g.NumEdges() == 0) && !reflect.DeepEqual(edgeIDs, g.EdgeIDs()) {
		t.Errorf("%s: edge order %v, want %v", name, edgeIDs, g.EdgeIDs())
	}
	// Lookup round-trips and misses.
	for _, id := range g.NodeIDs() {
		n := s.Node(id)
		ref := g.Node(id)
		if n == nil || n.ID != id || !reflect.DeepEqual(n.Labels, ref.Labels) || !reflect.DeepEqual(n.Props, ref.Props) {
			t.Errorf("%s: node %q mismatch: %+v vs %+v", name, id, n, ref)
		}
	}
	for _, id := range g.EdgeIDs() {
		e := s.Edge(id)
		ref := g.Edge(id)
		if e == nil || e.ID != id || e.Source != ref.Source || e.Target != ref.Target || e.Direction != ref.Direction {
			t.Errorf("%s: edge %q mismatch: %+v vs %+v", name, id, e, ref)
		}
	}
	if s.Node("zzz") != nil || s.Edge("zzz") != nil {
		t.Errorf("%s: lookups of unknown ids must return nil", name)
	}
	// Incident iteration order and degree, including self-loops visited
	// once and multi-edges visited individually.
	for _, id := range g.NodeIDs() {
		var got, want []EdgeID
		s.Incident(id, func(e *Edge) bool { got = append(got, e.ID); return true })
		g.Incident(id, func(e *Edge) bool { want = append(want, e.ID); return true })
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: incident(%s) = %v, want %v", name, id, got, want)
		}
		if s.Degree(id) != len(want) {
			t.Errorf("%s: degree(%s) = %d, want %d", name, id, s.Degree(id), len(want))
		}
	}
	// Label index equals a filtered scan, per label and for absent labels.
	for _, label := range append(g.Labels(), "NoSuchLabel") {
		var got, want []NodeID
		s.NodesWithLabel(label, func(n *Node) bool { got = append(got, n.ID); return true })
		g.Nodes(func(n *Node) bool {
			if n.HasLabel(label) {
				want = append(want, n.ID)
			}
			return true
		})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: nodesWithLabel(%s) = %v, want %v", name, label, got, want)
		}
		if c := s.CountNodesWithLabel(label); c != len(want) {
			t.Errorf("%s: countNodesWithLabel(%s) = %d, want %d", name, label, c, len(want))
		}
	}
	// Cardinality statistics.
	stats := s.LabelStats()
	ref := g.LabelStats()
	if stats.Nodes != ref.Nodes || stats.Edges != ref.Edges ||
		!reflect.DeepEqual(stats.NodeLabels, ref.NodeLabels) || !reflect.DeepEqual(stats.EdgeLabels, ref.EdgeLabels) {
		t.Errorf("%s: stats %+v, want %+v", name, stats, ref)
	}
	// Early termination of the iterators.
	count := 0
	s.Nodes(func(*Node) bool { count++; return false })
	if count != 1 {
		t.Errorf("%s: Nodes ignored early stop (%d visits)", name, count)
	}
}

func TestStoreConformance(t *testing.T) {
	g := conformanceGraph(t)
	storeConformance(t, "map", g, g)
	storeConformance(t, "csr", g, Snapshot(g))
}

func TestCheapestNodeLabel(t *testing.T) {
	g := conformanceGraph(t)
	for _, s := range []Store{g, Snapshot(g)} {
		if l, ok := CheapestNodeLabel(s, []string{"Account", "Vip"}); !ok || l != "Vip" {
			t.Errorf("cheapest of Account/Vip = %q (%v), want Vip", l, ok)
		}
		if _, ok := CheapestNodeLabel(s, nil); ok {
			t.Error("cheapest of no candidates must report !ok")
		}
		// A label absent from the graph has count 0: cheapest of all.
		if l, _ := CheapestNodeLabel(s, []string{"Account", "Ghost"}); l != "Ghost" {
			t.Errorf("cheapest with absent label = %q, want Ghost", l)
		}
	}
}

func TestSnapshotIsolation(t *testing.T) {
	g := conformanceGraph(t)
	snap := Snapshot(g)
	before := snap.NumNodes()
	if err := g.AddNode("late", []string{"Account"}, nil); err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes() != before || snap.Node("late") != nil {
		t.Error("snapshot must not observe later mutations of the source graph")
	}
	var accounts int
	snap.NodesWithLabel("Account", func(*Node) bool { accounts++; return true })
	if accounts != 2 {
		t.Errorf("snapshot label index: %d Account nodes, want 2", accounts)
	}
}
