package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"gpml/internal/value"
)

// overlayFixture applies a structured mutation history to an overlay over
// the conformance graph and returns, alongside it, a reference map graph
// built directly to the same final state (same element order as the
// overlay's index order: surviving base elements first, surviving delta
// elements after, re-added elements at their re-insertion position).
func overlayFixture(t *testing.T) (*Overlay, *Graph) {
	t.Helper()
	base := conformanceGraph(t)
	ov := NewOverlay(Snapshot(base))

	apply := func(b *Batch) {
		t.Helper()
		if err := ov.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	// Growth: new nodes and edges, including a delta self-loop and a
	// delta undirected edge touching a base node.
	apply(ov.Begin().
		AddNode("e", []string{"Account"}, map[string]value.Value{"owner": value.Str("eve")}).
		AddNode("f", []string{"City", "Vip"}, nil).
		AddEdge("x1", "e", "f", []string{"Transfer"}, nil).
		AddEdge("x2", "b", "e", []string{"Transfer"}, map[string]value.Value{"amount": value.Int(7)}).
		AddUndirectedEdge("xu", "f", "c", []string{"near"}, nil).
		AddEdge("x3", "e", "e", []string{"Transfer"}, nil))
	// Tombstones and overrides: delete an isolated base node and a base
	// edge, update a base node's property, replace a base node's labels,
	// update a delta node's property, delete a delta edge.
	apply(ov.Begin().
		DeleteNode("d").
		DeleteEdge("e2").
		SetNodeProp("a", "owner", value.Str("anna")).
		SetNodeLabels("b", []string{"Account", "Gold"}).
		SetNodeProp("e", "owner", value.Str("EVE")).
		DeleteEdge("x1"))
	// Detach-delete of a node with live incident delta edges, and a
	// re-add of a previously deleted id with different labels.
	apply(ov.Begin().
		AddNode("g", []string{"Account"}, nil).
		AddEdge("y1", "g", "a", []string{"Transfer"}, nil))
	apply(ov.Begin().
		DeleteNode("g").
		AddNode("d", []string{"Account"}, map[string]value.Value{"owner": value.Str("dee")}))

	ref := New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(ref.AddNode("a", []string{"Account", "Vip"}, map[string]value.Value{"owner": value.Str("anna")}))
	must(ref.AddNode("b", []string{"Account", "Gold"}, nil))
	must(ref.AddNode("c", []string{"City"}, nil))
	must(ref.AddNode("e", []string{"Account"}, map[string]value.Value{"owner": value.Str("EVE")}))
	must(ref.AddNode("f", []string{"City", "Vip"}, nil))
	must(ref.AddNode("d", []string{"Account"}, map[string]value.Value{"owner": value.Str("dee")}))
	must(ref.AddEdge("e1", "a", "b", []string{"Transfer"}, map[string]value.Value{"amount": value.Int(5)}))
	must(ref.AddEdge("e3", "b", "a", []string{"Transfer"}, nil))
	must(ref.AddEdge("e4", "a", "a", []string{"Transfer"}, nil))
	must(ref.AddUndirectedEdge("u1", "a", "c", []string{"near"}, nil))
	must(ref.AddUndirectedEdge("u2", "a", "c", []string{"near"}, nil))
	must(ref.AddUndirectedEdge("u3", "c", "c", []string{"near"}, nil))
	must(ref.AddEdge("e5", "b", "c", nil, nil))
	must(ref.AddEdge("x2", "b", "e", []string{"Transfer"}, map[string]value.Value{"amount": value.Int(7)}))
	must(ref.AddUndirectedEdge("xu", "f", "c", []string{"near"}, nil))
	must(ref.AddEdge("x3", "e", "e", []string{"Transfer"}, nil))
	return ov, ref
}

func TestOverlayStoreConformance(t *testing.T) {
	ov, ref := overlayFixture(t)
	pinned := ov.Snapshot()
	storeConformance(t, "overlay", ref, ov)
	storeConformance(t, "overlay-snap", ref, pinned)

	ov.Compact()
	storeConformance(t, "overlay-compacted", ref, ov)
	// The epoch pinned before compaction serves the same state afterwards.
	storeConformance(t, "overlay-pinned-epoch", ref, pinned)
	// The compacted base itself, with its dead holes, conforms too.
	storeConformance(t, "compacted-csr", ref, ov.Snapshot().base)
}

func TestOverlayBaseOnlyMatchesCSR(t *testing.T) {
	g := conformanceGraph(t)
	ov := NewOverlay(Snapshot(g))
	storeConformance(t, "overlay-base-only", g, ov)
	if _, ok := AsSorted(ov); !ok {
		t.Error("base-only overlay must serve the CSR sorted view")
	}
}

func TestOverlayIndexStability(t *testing.T) {
	ov, _ := overlayFixture(t)
	baseSpan := ov.Snapshot().base.NodeIndexSpan()
	type ids map[NodeID]ElemIdx
	capture := func(s Store) ids {
		out := ids{}
		s.Nodes(func(n *Node) bool {
			i, ok := s.InternNode(n.ID)
			if !ok {
				t.Fatalf("live node %q does not intern", n.ID)
			}
			out[n.ID] = i
			return true
		})
		return out
	}
	before := capture(ov)
	// Base elements keep their base indices verbatim; delta elements sit
	// above the base high-water mark.
	for _, id := range []NodeID{"a", "b", "c"} {
		if int(before[id]) >= baseSpan {
			t.Errorf("base node %q escaped the base index range: %d", id, before[id])
		}
	}
	for _, id := range []NodeID{"e", "f", "d"} {
		if int(before[id]) < baseSpan {
			t.Errorf("delta node %q below the base high-water mark: %d", id, before[id])
		}
	}
	ov.Compact()
	after := capture(ov)
	if !reflect.DeepEqual(before, after) {
		t.Errorf("compaction renumbered elements:\nbefore %v\nafter  %v", before, after)
	}
	// NodeAt at the stable index resolves the same element.
	for id, i := range after {
		if n := ov.NodeAt(i); n == nil || n.ID != id {
			t.Errorf("NodeAt(%d) = %v, want %q", i, n, id)
		}
	}
}

func TestOverlayDetachDelete(t *testing.T) {
	g := conformanceGraph(t)
	ov := NewOverlay(Snapshot(g))
	if err := ov.Apply(ov.Begin().
		AddNode("h", []string{"Hub"}, nil).
		AddEdge("z1", "h", "a", nil, nil).
		AddUndirectedEdge("z2", "h", "b", nil, nil).
		AddEdge("z3", "c", "h", nil, nil)); err != nil {
		t.Fatal(err)
	}
	wantEdges := ov.NumEdges() - 3
	if err := ov.Apply(ov.Begin().DeleteNode("h")); err != nil {
		t.Fatal(err)
	}
	if ov.NumEdges() != wantEdges {
		t.Fatalf("detach delete left %d edges, want %d", ov.NumEdges(), wantEdges)
	}
	for _, id := range []EdgeID{"z1", "z2", "z3"} {
		if ov.Edge(id) != nil {
			t.Errorf("edge %q survived its endpoint's deletion", id)
		}
	}
	// The invariant behind hole-aware traversal: no live edge references a
	// dead node, checked through every neighbour's Steps.
	snap := ov.Snapshot()
	snap.Nodes(func(n *Node) bool {
		i, _ := snap.InternNode(n.ID)
		snap.Steps(int(i), func(edge, other int, kind StepKind) bool {
			if snap.NodeByIndex(other) == nil {
				t.Errorf("live step from %q reaches dead node index %d", n.ID, other)
			}
			if snap.EdgeByIndex(edge) == nil {
				t.Errorf("dead edge index %d served from %q", edge, n.ID)
			}
			return true
		})
		return true
	})
	// Deleting a base node detaches its base edges the same way.
	if err := ov.Apply(ov.Begin().DeleteNode("a")); err != nil {
		t.Fatal(err)
	}
	for _, id := range []EdgeID{"e1", "e2", "e3", "e4", "u1", "u2"} {
		if ov.Edge(id) != nil {
			t.Errorf("base edge %q survived its endpoint's deletion", id)
		}
	}
	if d := ov.Degree("b"); d != 1 { // e5 to c is b's only surviving edge
		t.Errorf("degree(b) after detaching a = %d, want 1", d)
	}
}

func TestOverlayRelabelRoundTrip(t *testing.T) {
	g := conformanceGraph(t)
	ov := NewOverlay(Snapshot(g))
	labels := func() []NodeID {
		var out []NodeID
		ov.NodesWithLabel("Vip", func(n *Node) bool { out = append(out, n.ID); return true })
		return out
	}
	if got := labels(); !reflect.DeepEqual(got, []NodeID{"a"}) {
		t.Fatalf("Vip = %v, want [a]", got)
	}
	// Remove the label, then re-add it: the index round-trips exactly,
	// including the node's position in label iteration order.
	if err := ov.Apply(ov.Begin().SetNodeLabels("a", []string{"Account"})); err != nil {
		t.Fatal(err)
	}
	if got := labels(); len(got) != 0 {
		t.Fatalf("Vip after removal = %v, want none", got)
	}
	if err := ov.Apply(ov.Begin().SetNodeLabels("a", []string{"Account", "Vip"})); err != nil {
		t.Fatal(err)
	}
	if got := labels(); !reflect.DeepEqual(got, []NodeID{"a"}) {
		t.Fatalf("Vip after re-add = %v, want [a]", got)
	}
	if c := ov.CountNodesWithLabel("Vip"); c != 1 {
		t.Fatalf("count(Vip) = %d, want 1", c)
	}
	// Stats agree after compaction folds the override in.
	ov.Compact()
	if got := labels(); !reflect.DeepEqual(got, []NodeID{"a"}) {
		t.Fatalf("Vip after compaction = %v, want [a]", got)
	}
}

func TestOverlayValidation(t *testing.T) {
	g := conformanceGraph(t)
	ov := NewOverlay(Snapshot(g))
	seqBefore := ov.Snapshot().Seq()
	for name, b := range map[string]*Batch{
		"duplicate node":            ov.Begin().AddNode("a", nil, nil),
		"duplicate edge":            ov.Begin().AddEdge("e1", "a", "b", nil, nil),
		"node id used by edge":      ov.Begin().AddNode("e1", nil, nil),
		"edge id used by node":      ov.Begin().AddEdge("a", "b", "c", nil, nil),
		"unknown endpoint":          ov.Begin().AddEdge("nz", "a", "nope", nil, nil),
		"delete unknown node":       ov.Begin().DeleteNode("nope"),
		"delete unknown edge":       ov.Begin().DeleteEdge("nope"),
		"update unknown node":       ov.Begin().SetNodeProp("nope", "k", value.Int(1)),
		"update unknown edge":       ov.Begin().SetEdgeProp("nope", "k", value.Int(1)),
		"edge to node deleted here": ov.Begin().DeleteNode("d").AddEdge("nz", "d", "a", nil, nil),
		"update node deleted here":  ov.Begin().DeleteNode("d").SetNodeProp("d", "k", value.Int(1)),
		"update edge detached here": ov.Begin().DeleteNode("a").SetEdgeProp("e1", "k", value.Int(1)),
		"dup within batch":          ov.Begin().AddNode("n1", nil, nil).AddNode("n1", nil, nil),
	} {
		if err := ov.Apply(b); err == nil {
			t.Errorf("%s: Apply succeeded, want error", name)
		}
	}
	// Atomicity: every failed batch left the epoch untouched.
	if got := ov.Snapshot().Seq(); got != seqBefore {
		t.Errorf("failed batches advanced the epoch: %d -> %d", seqBefore, got)
	}
	storeConformance(t, "overlay-after-rejects", g, ov)

	// Legal same-batch sequences: delete-then-readd, and an edge whose
	// endpoint is staged earlier in the batch.
	if err := ov.Apply(ov.Begin().
		DeleteNode("d").
		AddNode("d", []string{"Fresh"}, nil).
		AddNode("n2", nil, nil).
		AddEdge("nz2", "n2", "d", nil, nil)); err != nil {
		t.Fatal(err)
	}
	if n := ov.Node("d"); n == nil || !n.HasLabel("Fresh") {
		t.Errorf("re-added node in one batch: got %+v", n)
	}
}

func TestOverlaySortedViewGate(t *testing.T) {
	g := conformanceGraph(t)
	ov := NewOverlay(Snapshot(g))
	sorted := func() bool {
		_, ok := AsSorted(ov.Snapshot())
		return ok
	}
	if !sorted() {
		t.Fatal("clean epoch must serve the base sorted view")
	}
	// Property and label overrides don't touch adjacency: still sorted.
	if err := ov.Apply(ov.Begin().SetNodeProp("a", "owner", value.Str("x")).SetNodeLabels("b", []string{"B"})); err != nil {
		t.Fatal(err)
	}
	if !sorted() {
		t.Error("override-only epoch must keep the sorted view")
	}
	// New nodes are fine too (isolated); a new edge disables the view.
	if err := ov.Apply(ov.Begin().AddNode("n", nil, nil)); err != nil {
		t.Fatal(err)
	}
	if !sorted() {
		t.Error("isolated-node epoch must keep the sorted view")
	}
	if err := ov.Apply(ov.Begin().AddEdge("ne", "n", "a", nil, nil)); err != nil {
		t.Fatal(err)
	}
	if sorted() {
		t.Error("epoch with a delta edge must disable the sorted view")
	}
	// Compaction folds the delta into a freshly sorted base: re-enabled.
	ov.Compact()
	if !sorted() {
		t.Error("post-compaction epoch must re-enable the sorted view")
	}
	ss, _ := AsSorted(ov.Snapshot())
	i, _ := ss.NodeIndex("n")
	others, edges, _ := ss.SortedSteps(i)
	if len(others) != 1 || ss.EdgeByIndex(int(edges[0])).ID != "ne" {
		t.Errorf("sorted window of compacted delta node: others=%v edges=%v", others, edges)
	}
}

// TestOverlayDifferentialFuzz drives an overlay and a model (ordered id
// lists + records) through randomized batched mutations, interleaved with
// compactions, rebuilding a reference map graph from the model after
// every batch and running the full store-conformance battery against it.
// Snapshots pinned along the way are re-verified at the end against the
// reference frozen when they were pinned.
func TestOverlayDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	labelsPool := []string{"A", "B", "C"}

	type mEdge struct {
		id       EdgeID
		src, tgt NodeID
		dir      Direction
		labels   []string
		props    map[string]value.Value
	}
	type mNode struct {
		id     NodeID
		labels []string
		props  map[string]value.Value
	}
	var nodes []mNode
	var edges []mEdge

	build := func() *Graph {
		g := New()
		for _, n := range nodes {
			if err := g.AddNode(n.id, n.labels, n.props); err != nil {
				t.Fatal(err)
			}
		}
		for _, e := range edges {
			var err error
			if e.dir == Directed {
				err = g.AddEdge(e.id, e.src, e.tgt, e.labels, e.props)
			} else {
				err = g.AddUndirectedEdge(e.id, e.src, e.tgt, e.labels, e.props)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	randLabels := func() []string {
		var out []string
		for _, l := range labelsPool {
			if rng.Intn(2) == 0 {
				out = append(out, l)
			}
		}
		return out
	}
	deleteNode := func(id NodeID) {
		for i, n := range nodes {
			if n.id == id {
				nodes = append(nodes[:i], nodes[i+1:]...)
				break
			}
		}
		kept := edges[:0]
		for _, e := range edges {
			if e.src != id && e.tgt != id {
				kept = append(kept, e)
			}
		}
		edges = kept
	}

	// Seed state.
	for i := 0; i < 6; i++ {
		nodes = append(nodes, mNode{NodeID(fmt.Sprintf("n%d", i)), randLabels(), nil})
	}
	for i := 0; i < 8; i++ {
		s, tgt := nodes[rng.Intn(len(nodes))].id, nodes[rng.Intn(len(nodes))].id
		edges = append(edges, mEdge{EdgeID(fmt.Sprintf("s%d", i)), s, tgt, Direction(rng.Intn(2)), randLabels(), nil})
	}
	ov := NewOverlay(Snapshot(build()), WithCompactThreshold(0)) // compaction only when the test asks

	nextID := 100
	type pin struct {
		snap *OverlaySnap
		ref  *Graph
	}
	var pins []pin
	for round := 0; round < 40; round++ {
		b := ov.Begin()
		for op := 0; op < 1+rng.Intn(4); op++ {
			switch k := rng.Intn(6); {
			case k == 0 || len(nodes) == 0: // add node
				id := NodeID(fmt.Sprintf("n%d", nextID))
				nextID++
				labels, props := randLabels(), map[string]value.Value{"v": value.Int(int64(rng.Intn(10)))}
				b.AddNode(id, labels, props)
				nodes = append(nodes, mNode{id, normLabels(labels), copyProps(props)})
			case k == 1: // add edge
				id := EdgeID(fmt.Sprintf("e%d", nextID))
				nextID++
				s, tgt := nodes[rng.Intn(len(nodes))].id, nodes[rng.Intn(len(nodes))].id
				dir := Direction(rng.Intn(2))
				labels := randLabels()
				if dir == Directed {
					b.AddEdge(id, s, tgt, labels, nil)
				} else {
					b.AddUndirectedEdge(id, s, tgt, labels, nil)
				}
				edges = append(edges, mEdge{id, s, tgt, dir, normLabels(labels), nil})
			case k == 2 && len(edges) > 0: // delete edge
				e := edges[rng.Intn(len(edges))]
				b.DeleteEdge(e.id)
				for i := range edges {
					if edges[i].id == e.id {
						edges = append(edges[:i], edges[i+1:]...)
						break
					}
				}
			case k == 3 && len(nodes) > 1: // delete node (detach)
				id := nodes[rng.Intn(len(nodes))].id
				b.DeleteNode(id)
				deleteNode(id)
			case k == 4: // set node prop
				i := rng.Intn(len(nodes))
				v := value.Int(int64(rng.Intn(100)))
				b.SetNodeProp(nodes[i].id, "v", v)
				props := copyProps(nodes[i].props)
				if props == nil {
					props = map[string]value.Value{}
				}
				props["v"] = v
				nodes[i].props = props
			default: // set node labels
				i := rng.Intn(len(nodes))
				labels := randLabels()
				b.SetNodeLabels(nodes[i].id, labels)
				nodes[i].labels = normLabels(labels)
			}
		}
		if err := ov.Apply(b); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		ref := build()
		storeConformance(t, fmt.Sprintf("fuzz-round-%d", round), ref, ov)
		// Edge property/label record equality, which the shared battery
		// doesn't cover in full.
		for _, e := range edges {
			got := ov.Edge(e.id)
			if !reflect.DeepEqual(got.Labels, ref.Edge(e.id).Labels) || !reflect.DeepEqual(got.Props, ref.Edge(e.id).Props) {
				t.Fatalf("round %d: edge %q record mismatch", round, e.id)
			}
		}
		if round%7 == 3 {
			pins = append(pins, pin{ov.Snapshot(), ref})
		}
		if round%11 == 10 {
			ov.Compact()
			storeConformance(t, fmt.Sprintf("fuzz-round-%d-compacted", round), ref, ov)
		}
	}
	ov.Compact()
	storeConformance(t, "fuzz-final-compacted", build(), ov)
	// Epoch immutability: every pinned snapshot still serves exactly the
	// state it was pinned at, through all later mutations and compactions.
	for i, p := range pins {
		storeConformance(t, fmt.Sprintf("fuzz-pin-%d", i), p.ref, p.snap)
	}
}

// TestOverlayConcurrentReadWrite hammers snapshots with full-store reads
// while a writer applies batches and compactions run; meaningful under
// -race (readers must never observe a mix of epochs or a torn delta).
func TestOverlayConcurrentReadWrite(t *testing.T) {
	g := conformanceGraph(t)
	ov := NewOverlay(Snapshot(g), WithCompactThreshold(16))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := ov.Snapshot()
				n, e := 0, 0
				snap.Nodes(func(*Node) bool { n++; return true })
				snap.Edges(func(*Edge) bool { e++; return true })
				if n != snap.NumNodes() || e != snap.NumEdges() {
					t.Errorf("torn epoch: iterated %d/%d, counters %d/%d", n, e, snap.NumNodes(), snap.NumEdges())
					return
				}
				snap.Nodes(func(nd *Node) bool {
					i, _ := snap.InternNode(nd.ID)
					snap.Steps(int(i), func(edge, other int, kind StepKind) bool {
						if snap.NodeByIndex(other) == nil {
							t.Errorf("live step to dead node %d", other)
						}
						return true
					})
					return true
				})
				snap.LabelStats()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		id := NodeID(fmt.Sprintf("w%d", i))
		b := ov.Begin().AddNode(id, []string{"W"}, nil).AddEdge(EdgeID(fmt.Sprintf("we%d", i)), id, "a", nil, nil)
		if i%3 == 2 {
			b.DeleteNode(NodeID(fmt.Sprintf("w%d", i-1)))
		}
		if i%5 == 4 {
			b.SetNodeProp("a", "owner", value.Int(int64(i)))
		}
		if err := ov.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	ov.Wait()
}

// TestGraphPropUpdateKeepsDerived is the regression for the map backend's
// invalidation split: property-only updates must drop the memoized stats
// but keep the interner table and the stepper adapter (indices and
// topology are untouched), where structural mutations drop all three.
func TestGraphPropUpdateKeepsDerived(t *testing.T) {
	g := conformanceGraph(t)
	// Materialize every derived view.
	g.LabelStats()
	if _, ok := g.InternNode("a"); !ok {
		t.Fatal("intern miss")
	}
	st := AsStepper(g)
	internBefore, stepBefore := g.intern.Load(), g.stepper.Load()
	if internBefore == nil || stepBefore == nil {
		t.Fatal("derived views not memoized")
	}

	if err := g.SetNodeProp("a", "owner", value.Str("updated")); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdgeProp("e1", "amount", value.Int(6)); err != nil {
		t.Fatal(err)
	}
	if g.intern.Load() != internBefore {
		t.Error("property update discarded the interner table")
	}
	if g.stepper.Load() != stepBefore {
		t.Error("property update discarded the memoized stepper")
	}
	g.statsMu.Lock()
	valid := g.statsValid
	g.statsMu.Unlock()
	if valid {
		t.Error("property update must invalidate the memoized stats")
	}
	// The kept views serve the updated records (they hold pointers).
	i, _ := st.NodeIndex("a")
	if got := st.NodeByIndex(i).Prop("owner"); got != value.Str("updated") {
		t.Errorf("stepper sees owner=%v, want updated", got)
	}
	if got := g.EdgeAt(0).Prop("amount"); got != value.Int(6) {
		t.Errorf("interner sees amount=%v, want 6", got)
	}
	// A CSR snapshot taken before the update kept the old records.
	snapBefore := Snapshot(conformanceGraph(t))
	if got := snapBefore.Node("a").Prop("owner"); got != value.Str("ann") {
		t.Errorf("pre-update snapshot sees owner=%v, want ann", got)
	}

	// Structural mutation still drops everything.
	if err := g.AddNode("newnode", nil, nil); err != nil {
		t.Fatal(err)
	}
	if g.intern.Load() != nil || g.stepper.Load() != nil {
		t.Error("structural mutation must discard the derived views")
	}
}

func TestGraphSetPropSnapshotIsolation(t *testing.T) {
	g := conformanceGraph(t)
	snap := Snapshot(g)
	if err := g.SetNodeProp("a", "owner", value.Str("changed")); err != nil {
		t.Fatal(err)
	}
	if got := snap.Node("a").Prop("owner"); got != value.Str("ann") {
		t.Errorf("snapshot observed a later property update: %v", got)
	}
	if got := g.Node("a").Prop("owner"); got != value.Str("changed") {
		t.Errorf("graph lost the update: %v", got)
	}
	if err := g.SetNodeProp("zzz", "k", value.Int(1)); err == nil {
		t.Error("SetNodeProp on unknown node must error")
	}
	if err := g.SetEdgeProp("zzz", "k", value.Int(1)); err == nil {
		t.Error("SetEdgeProp on unknown edge must error")
	}
}
