package graph

// Reverse returns a copy of the graph with every directed edge's source
// and target swapped; undirected edges and all labels/properties are
// preserved. Useful for testing orientation semantics: matching <-[e]- on
// g is equivalent to matching -[e]-> on Reverse(g).
func Reverse(g *Graph) *Graph {
	out := New()
	g.Nodes(func(n *Node) bool {
		if err := out.AddNode(n.ID, n.Labels, n.Props); err != nil {
			panic(err) // fresh graph, same ids: unreachable
		}
		return true
	})
	g.Edges(func(e *Edge) bool {
		var err error
		if e.Direction == Directed {
			err = out.AddEdge(e.ID, e.Target, e.Source, e.Labels, e.Props)
		} else {
			err = out.AddUndirectedEdge(e.ID, e.Source, e.Target, e.Labels, e.Props)
		}
		if err != nil {
			panic(err)
		}
		return true
	})
	return out
}

// Induced returns the subgraph induced by the given node set: those nodes
// and every edge whose both endpoints are included.
func Induced(g *Graph, nodes map[NodeID]bool) *Graph {
	out := New()
	g.Nodes(func(n *Node) bool {
		if nodes[n.ID] {
			if err := out.AddNode(n.ID, n.Labels, n.Props); err != nil {
				panic(err)
			}
		}
		return true
	})
	g.Edges(func(e *Edge) bool {
		if !nodes[e.Source] || !nodes[e.Target] {
			return true
		}
		var err error
		if e.Direction == Directed {
			err = out.AddEdge(e.ID, e.Source, e.Target, e.Labels, e.Props)
		} else {
			err = out.AddUndirectedEdge(e.ID, e.Source, e.Target, e.Labels, e.Props)
		}
		if err != nil {
			panic(err)
		}
		return true
	})
	return out
}
