package graph

import (
	"fmt"
	"strings"
)

// Path is an alternating sequence of nodes and edges that starts and ends
// with a node, where consecutive nodes are connected by the edge between
// them (Section 2 of the paper; the graph-theory term is "walk"). A path of
// length zero is a single node.
//
// The paper writes paths as path(c1,li1,a1,t1,a3,hp3,p2); String renders
// that form.
type Path struct {
	Nodes []NodeID // len(Nodes) == len(Edges)+1
	Edges []EdgeID
}

// SingleNode returns the zero-length path at n.
func SingleNode(n NodeID) Path { return Path{Nodes: []NodeID{n}} }

// Len returns the number of edges in the path.
func (p Path) Len() int { return len(p.Edges) }

// First returns the first node; it panics on an empty (invalid) path.
func (p Path) First() NodeID { return p.Nodes[0] }

// Last returns the final node.
func (p Path) Last() NodeID { return p.Nodes[len(p.Nodes)-1] }

// Append returns a new path extended by edge e to node n. The receiver is
// not modified (paths are persistent during search).
func (p Path) Append(e EdgeID, n NodeID) Path {
	nodes := make([]NodeID, len(p.Nodes)+1)
	copy(nodes, p.Nodes)
	nodes[len(p.Nodes)] = n
	edges := make([]EdgeID, len(p.Edges)+1)
	copy(edges, p.Edges)
	edges[len(p.Edges)] = e
	return Path{Nodes: nodes, Edges: edges}
}

// Concat joins two paths; q must start where p ends.
func (p Path) Concat(q Path) (Path, error) {
	if len(p.Nodes) == 0 {
		return q, nil
	}
	if len(q.Nodes) == 0 {
		return p, nil
	}
	if p.Last() != q.First() {
		return Path{}, fmt.Errorf("graph: cannot concatenate path ending at %q with path starting at %q", p.Last(), q.First())
	}
	nodes := make([]NodeID, 0, len(p.Nodes)+len(q.Nodes)-1)
	nodes = append(nodes, p.Nodes...)
	nodes = append(nodes, q.Nodes[1:]...)
	edges := make([]EdgeID, 0, len(p.Edges)+len(q.Edges))
	edges = append(edges, p.Edges...)
	edges = append(edges, q.Edges...)
	return Path{Nodes: nodes, Edges: edges}, nil
}

// String renders the paper's path(n0,e1,n1,…) notation.
func (p Path) String() string {
	var b strings.Builder
	b.WriteString("path(")
	for i, n := range p.Nodes {
		if i > 0 {
			b.WriteString(",")
			b.WriteString(string(p.Edges[i-1]))
			b.WriteString(",")
		}
		b.WriteString(string(n))
	}
	b.WriteString(")")
	return b.String()
}

// IsTrail reports whether no edge repeats (Fig 7: TRAIL).
func (p Path) IsTrail() bool {
	seen := make(map[EdgeID]struct{}, len(p.Edges))
	for _, e := range p.Edges {
		if _, ok := seen[e]; ok {
			return false
		}
		seen[e] = struct{}{}
	}
	return true
}

// IsAcyclic reports whether no node repeats (Fig 7: ACYCLIC).
func (p Path) IsAcyclic() bool {
	seen := make(map[NodeID]struct{}, len(p.Nodes))
	for _, n := range p.Nodes {
		if _, ok := seen[n]; ok {
			return false
		}
		seen[n] = struct{}{}
	}
	return true
}

// IsSimple reports whether no node repeats except that the first and last
// node may coincide (Fig 7: SIMPLE).
func (p Path) IsSimple() bool {
	if len(p.Nodes) == 0 {
		return true
	}
	seen := make(map[NodeID]struct{}, len(p.Nodes))
	interior := p.Nodes[:len(p.Nodes)-1]
	for _, n := range interior {
		if _, ok := seen[n]; ok {
			return false
		}
		seen[n] = struct{}{}
	}
	last := p.Nodes[len(p.Nodes)-1]
	if _, ok := seen[last]; ok {
		return last == p.Nodes[0]
	}
	return true
}

// ValidIn reports whether the path is structurally valid in g: every
// consecutive (node, edge, node) triple is connected by that edge.
func (p Path) ValidIn(g *Graph) error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("graph: empty path")
	}
	if len(p.Nodes) != len(p.Edges)+1 {
		return fmt.Errorf("graph: path has %d nodes and %d edges", len(p.Nodes), len(p.Edges))
	}
	for i, n := range p.Nodes {
		if g.Node(n) == nil {
			return fmt.Errorf("graph: path references unknown node %q", n)
		}
		if i == 0 {
			continue
		}
		e := g.Edge(p.Edges[i-1])
		if e == nil {
			return fmt.Errorf("graph: path references unknown edge %q", p.Edges[i-1])
		}
		if !e.Connects(p.Nodes[i-1], n) {
			return fmt.Errorf("graph: edge %q does not connect %q and %q", e.ID, p.Nodes[i-1], n)
		}
	}
	return nil
}

// IdxPath is a path in interned form: dense node and edge indices
// relative to one Store. The engines build and deduplicate paths in this
// representation; Materialize resolves it to element ids when a result
// row is rendered. A zero IdxPath (no nodes) is the "no path" marker the
// unstarted-search case uses; a single-node path has one node and no
// edges.
type IdxPath struct {
	Nodes []ElemIdx // len(Nodes) == len(Edges)+1 when non-empty
	Edges []ElemIdx
}

// Len returns the number of edges in the path.
func (p IdxPath) Len() int { return len(p.Edges) }

// First returns the first node index; it panics on an empty path.
func (p IdxPath) First() ElemIdx { return p.Nodes[0] }

// Last returns the final node index.
func (p IdxPath) Last() ElemIdx { return p.Nodes[len(p.Nodes)-1] }

// Materialize resolves the interned path to element ids against the
// store that issued the indices.
func (p IdxPath) Materialize(s Store) Path {
	if len(p.Nodes) == 0 {
		return Path{}
	}
	nodes := make([]NodeID, len(p.Nodes))
	for i, n := range p.Nodes {
		nodes[i] = s.NodeAt(n).ID
	}
	edges := make([]EdgeID, len(p.Edges))
	for i, e := range p.Edges {
		edges[i] = s.EdgeAt(e).ID
	}
	return Path{Nodes: nodes, Edges: edges}
}

// AppendKeyString appends the materialized path's canonical key (the
// Path.Key format) to a builder, for canonical sort keys.
func (p IdxPath) AppendKeyString(b *strings.Builder, s Store) {
	for i, n := range p.Nodes {
		if i > 0 {
			b.WriteByte('|')
			b.WriteString(string(s.EdgeAt(p.Edges[i-1]).ID))
			b.WriteByte('|')
		}
		b.WriteString(string(s.NodeAt(n).ID))
	}
}

// Key returns a canonical identity key for the path.
func (p Path) Key() string {
	var b strings.Builder
	for i, n := range p.Nodes {
		if i > 0 {
			b.WriteByte('|')
			b.WriteString(string(p.Edges[i-1]))
			b.WriteByte('|')
		}
		b.WriteString(string(n))
	}
	return b.String()
}
