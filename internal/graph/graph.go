// Package graph implements the property graph data model of Definition 2.1
// of the paper: a finite mixed multigraph G = (N, E, ρ, λ, π) where N and E
// are disjoint sets of node and edge identifiers, ρ maps every edge to an
// ordered pair of nodes (directed edge) or an unordered pair (undirected
// edge), λ maps every element to a (possibly empty) set of labels, and π is
// a partial function from (element, property name) to property values.
//
// Multi-edges (several edges between the same endpoints) and self-loops are
// permitted for both directed and undirected edges, exactly as the paper's
// definition allows.
package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gpml/internal/value"
)

// NodeID identifies a node. IDs are user-supplied strings (the paper uses
// a1…a6, c1, c2, p1…p4, ip1, ip2).
type NodeID string

// EdgeID identifies an edge (t1…t8, li1…li6, hp1…hp6, sip1, sip2).
type EdgeID string

// Direction describes whether an edge is directed.
type Direction uint8

// Edge directions.
const (
	Directed   Direction = iota // ρ(e) ∈ N×N: e goes from Source to Target
	Undirected                  // ρ(e) = {u,v}: e connects u and v symmetrically
)

// String reports "directed" or "undirected".
func (d Direction) String() string {
	if d == Directed {
		return "directed"
	}
	return "undirected"
}

// Node is a graph node with its labels and properties.
type Node struct {
	ID     NodeID
	Labels []string // sorted, deduplicated
	Props  map[string]value.Value
}

// Edge is a graph edge. For directed edges Source→Target is the
// orientation; for undirected edges (Source, Target) is an arbitrary but
// fixed presentation of the unordered pair.
type Edge struct {
	ID        EdgeID
	Source    NodeID
	Target    NodeID
	Direction Direction
	Labels    []string
	Props     map[string]value.Value
}

// Other returns the endpoint opposite to n. For a self-loop it returns n.
func (e *Edge) Other(n NodeID) NodeID {
	if e.Source == n {
		return e.Target
	}
	return e.Source
}

// Connects reports whether the edge connects u and v (in either role).
func (e *Edge) Connects(u, v NodeID) bool {
	return (e.Source == u && e.Target == v) || (e.Source == v && e.Target == u)
}

// IsLoop reports whether the edge is a self-loop.
func (e *Edge) IsLoop() bool { return e.Source == e.Target }

// HasLabel reports whether the element carries the given label.
func (e *Edge) HasLabel(l string) bool { return hasLabel(e.Labels, l) }

// HasLabel reports whether the node carries the given label.
func (n *Node) HasLabel(l string) bool { return hasLabel(n.Labels, l) }

func hasLabel(labels []string, l string) bool {
	for _, x := range labels {
		if x == l {
			return true
		}
	}
	return false
}

// Prop returns the value of property p on the node, or NULL when π is
// undefined there (π is a partial function).
func (n *Node) Prop(p string) value.Value {
	if v, ok := n.Props[p]; ok {
		return v
	}
	return value.Null
}

// Prop returns the value of property p on the edge, or NULL.
func (e *Edge) Prop(p string) value.Value {
	if v, ok := e.Props[p]; ok {
		return v
	}
	return value.Null
}

// Graph is an in-memory property graph with adjacency indexes. The zero
// value is an empty graph ready to use.
type Graph struct {
	nodes map[NodeID]*Node
	edges map[EdgeID]*Edge

	nodeOrder []NodeID // insertion order, for deterministic iteration
	edgeOrder []EdgeID

	// incident lists every edge id touching a node (directed in either
	// orientation, and undirected), in insertion order.
	incident map[NodeID][]EdgeID

	// statsMu guards the memoized LabelStats result. Mutations invalidate
	// it; concurrent readers (the documented safe access pattern) share
	// one computation instead of rescanning the graph per query.
	statsMu     sync.Mutex
	statsValid  bool
	cachedStats StoreStats

	// Derived read-only views, built lazily and discarded on mutation:
	// the interner table (intern.go) and the indexed stepper view
	// (indexed.go). derivedMu serializes rebuilds; readers take one
	// atomic load.
	derivedMu sync.Mutex
	intern    atomic.Pointer[internTable]
	stepper   atomic.Pointer[stepIndex]
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes:    make(map[NodeID]*Node),
		edges:    make(map[EdgeID]*Edge),
		incident: make(map[NodeID][]EdgeID),
	}
}

// ensure lazily initializes the maps so the zero Graph works.
func (g *Graph) ensure() {
	if g.nodes == nil {
		g.nodes = make(map[NodeID]*Node)
		g.edges = make(map[EdgeID]*Edge)
		g.incident = make(map[NodeID][]EdgeID)
	}
}

// AddNode inserts a node. Labels are copied, sorted and deduplicated.
// It returns an error on duplicate IDs or an ID already used by an edge
// (Definition 2.1 requires N ∩ E = ∅).
func (g *Graph) AddNode(id NodeID, labels []string, props map[string]value.Value) error {
	g.ensure()
	if _, ok := g.nodes[id]; ok {
		return fmt.Errorf("graph: duplicate node id %q", id)
	}
	if _, ok := g.edges[EdgeID(id)]; ok {
		return fmt.Errorf("graph: id %q already used by an edge (N and E must be disjoint)", id)
	}
	n := &Node{ID: id, Labels: normLabels(labels), Props: copyProps(props)}
	g.nodes[id] = n
	g.nodeOrder = append(g.nodeOrder, id)
	g.invalidateStats()
	return nil
}

// AddEdge inserts a directed edge from src to dst.
func (g *Graph) AddEdge(id EdgeID, src, dst NodeID, labels []string, props map[string]value.Value) error {
	return g.addEdge(id, src, dst, Directed, labels, props)
}

// AddUndirectedEdge inserts an undirected edge connecting u and v.
func (g *Graph) AddUndirectedEdge(id EdgeID, u, v NodeID, labels []string, props map[string]value.Value) error {
	return g.addEdge(id, u, v, Undirected, labels, props)
}

func (g *Graph) addEdge(id EdgeID, src, dst NodeID, dir Direction, labels []string, props map[string]value.Value) error {
	g.ensure()
	if _, ok := g.edges[id]; ok {
		return fmt.Errorf("graph: duplicate edge id %q", id)
	}
	if _, ok := g.nodes[NodeID(id)]; ok {
		return fmt.Errorf("graph: id %q already used by a node (N and E must be disjoint)", id)
	}
	if _, ok := g.nodes[src]; !ok {
		return fmt.Errorf("graph: edge %q references unknown node %q", id, src)
	}
	if _, ok := g.nodes[dst]; !ok {
		return fmt.Errorf("graph: edge %q references unknown node %q", id, dst)
	}
	e := &Edge{ID: id, Source: src, Target: dst, Direction: dir, Labels: normLabels(labels), Props: copyProps(props)}
	g.edges[id] = e
	g.edgeOrder = append(g.edgeOrder, id)
	g.incident[src] = append(g.incident[src], id)
	if src != dst {
		g.incident[dst] = append(g.incident[dst], id)
	}
	g.invalidateStats()
	return nil
}

// invalidateStats drops the memoized label statistics and the derived
// interner/stepper views after a structural mutation (element insertion).
// Mutations are append-only, so the next builds assign every pre-existing
// element the same dense index it had before (ElemIdx stability).
func (g *Graph) invalidateStats() {
	g.invalidateStatsOnly()
	g.intern.Store(nil)
	g.stepper.Store(nil)
}

// invalidateStatsOnly drops just the memoized label statistics. Property
// updates take this path: they change neither indices nor topology nor
// labels, so the interner table and the memoized stepper adapter — which
// hold element pointers, not record copies — stay valid and warm.
func (g *Graph) invalidateStatsOnly() {
	g.statsMu.Lock()
	g.statsValid = false
	g.statsMu.Unlock()
}

// SetNodeProp updates one property on a node. The record's property map
// is replaced, not mutated in place, so CSR snapshots taken earlier keep
// observing the pre-update map; memoized derived views (interner table,
// stepper adapter) survive because they reference the node pointer, whose
// identity and index are unchanged.
func (g *Graph) SetNodeProp(id NodeID, key string, v value.Value) error {
	n := g.Node(id)
	if n == nil {
		return fmt.Errorf("graph: update of unknown node %q", id)
	}
	props := make(map[string]value.Value, len(n.Props)+1)
	for k, pv := range n.Props {
		props[k] = pv
	}
	props[key] = v
	n.Props = props
	g.invalidateStatsOnly()
	return nil
}

// SetEdgeProp updates one property on an edge, with the same
// copy-on-write and invalidation contract as SetNodeProp.
func (g *Graph) SetEdgeProp(id EdgeID, key string, v value.Value) error {
	e := g.Edge(id)
	if e == nil {
		return fmt.Errorf("graph: update of unknown edge %q", id)
	}
	props := make(map[string]value.Value, len(e.Props)+1)
	for k, pv := range e.Props {
		props[k] = pv
	}
	props[key] = v
	e.Props = props
	g.invalidateStatsOnly()
	return nil
}

// Node returns the node with the given id, or nil.
func (g *Graph) Node(id NodeID) *Node {
	if g.nodes == nil {
		return nil
	}
	return g.nodes[id]
}

// Edge returns the edge with the given id, or nil.
func (g *Graph) Edge(id EdgeID) *Edge {
	if g.edges == nil {
		return nil
	}
	return g.edges[id]
}

// NumNodes reports |N|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges reports |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Nodes iterates nodes in insertion order.
func (g *Graph) Nodes(f func(*Node) bool) {
	for _, id := range g.nodeOrder {
		if !f(g.nodes[id]) {
			return
		}
	}
}

// Edges iterates edges in insertion order.
func (g *Graph) Edges(f func(*Edge) bool) {
	for _, id := range g.edgeOrder {
		if !f(g.edges[id]) {
			return
		}
	}
}

// NodeIDs returns all node ids in insertion order (copy).
func (g *Graph) NodeIDs() []NodeID {
	out := make([]NodeID, len(g.nodeOrder))
	copy(out, g.nodeOrder)
	return out
}

// EdgeIDs returns all edge ids in insertion order (copy).
func (g *Graph) EdgeIDs() []EdgeID {
	out := make([]EdgeID, len(g.edgeOrder))
	copy(out, g.edgeOrder)
	return out
}

// Incident iterates the edges touching node n in insertion order. A
// self-loop is visited once.
func (g *Graph) Incident(n NodeID, f func(*Edge) bool) {
	for _, id := range g.incident[n] {
		if !f(g.edges[id]) {
			return
		}
	}
}

// IncidentIDs returns the ids of edges touching n (shared slice; do not
// mutate).
func (g *Graph) IncidentIDs(n NodeID) []EdgeID { return g.incident[n] }

// Labels returns the set of labels appearing on any node or edge, sorted.
func (g *Graph) Labels() []string {
	set := map[string]struct{}{}
	for _, id := range g.nodeOrder {
		for _, l := range g.nodes[id].Labels {
			set[l] = struct{}{}
		}
	}
	for _, id := range g.edgeOrder {
		for _, l := range g.edges[id].Labels {
			set[l] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Validate checks the structural invariants of Definition 2.1: ρ total on
// E with endpoints in N, N ∩ E = ∅, labels normalized. It returns the
// first violation found, or nil.
func (g *Graph) Validate() error {
	for _, id := range g.nodeOrder {
		if _, ok := g.edges[EdgeID(id)]; ok {
			return fmt.Errorf("graph: id %q is both a node and an edge", id)
		}
	}
	for _, id := range g.edgeOrder {
		e := g.edges[id]
		if g.nodes[e.Source] == nil {
			return fmt.Errorf("graph: edge %q has dangling source %q", id, e.Source)
		}
		if g.nodes[e.Target] == nil {
			return fmt.Errorf("graph: edge %q has dangling target %q", id, e.Target)
		}
		if !sort.StringsAreSorted(e.Labels) {
			return fmt.Errorf("graph: edge %q labels not normalized", id)
		}
	}
	return nil
}

// Stats summarizes the graph for logging and experiment output.
func (g *Graph) Stats() string {
	directed, undirected := 0, 0
	for _, id := range g.edgeOrder {
		if g.edges[id].Direction == Directed {
			directed++
		} else {
			undirected++
		}
	}
	return fmt.Sprintf("nodes=%d edges=%d (directed=%d undirected=%d) labels=%s",
		len(g.nodeOrder), len(g.edgeOrder), directed, undirected, strings.Join(g.Labels(), ","))
}

func normLabels(labels []string) []string {
	if len(labels) == 0 {
		return nil
	}
	out := make([]string, 0, len(labels))
	seen := map[string]struct{}{}
	for _, l := range labels {
		if _, ok := seen[l]; ok {
			continue
		}
		seen[l] = struct{}{}
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

func copyProps(props map[string]value.Value) map[string]value.Value {
	if len(props) == 0 {
		return nil
	}
	out := make(map[string]value.Value, len(props))
	for k, v := range props {
		out[k] = v
	}
	return out
}
