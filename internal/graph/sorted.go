package graph

// SortedStepper extends Stepper with a (neighbour, edge)-sorted view of
// each node's adjacency, the access path the leapfrog intersection
// operator needs: candidate neighbour sets arrive as sorted []int32
// slices that can be galloped over with SeekGE.
//
// Only the CSR snapshot implements it — the sorted permutation is built
// once at Snapshot time (see the sortedness invariant documented on the
// CSR struct). The map backend's memoized step index stays
// insertion-ordered, so queries on it fall back to bind-joins.
type SortedStepper interface {
	Stepper
	// SortedSteps returns node i's adjacency window sorted ascending by
	// (neighbour index, edge index): parallel slices of neighbour
	// indices, edge indices, and step kinds. The returned slices alias
	// internal storage and must not be mutated.
	SortedSteps(i int) (others, edges []int32, kinds []StepKind)
}

// sortedProvider lets a store decide per instance whether a sorted view
// exists. Overlay epochs implement it: an epoch whose adjacency matches
// its base CSR exactly serves the base's sorted windows, any other epoch
// reports no sorted view and disables WCO dispatch until compaction
// re-sorts the merged adjacency.
type sortedProvider interface {
	SortedView() (SortedStepper, bool)
}

// AsSorted returns the store's sorted-adjacency view when its indexed
// form provides one (the CSR snapshot always does; overlay epochs decide
// per epoch via the sortedProvider hook).
func AsSorted(s Store) (SortedStepper, bool) {
	st := AsStepper(s)
	if p, ok := st.(sortedProvider); ok {
		return p.SortedView()
	}
	ss, ok := st.(SortedStepper)
	return ss, ok
}

// SeekGE returns the smallest j in [from, len(others)) with
// others[j] >= target, galloping (doubling probe distance, then binary
// search within the bracketed window). On sorted adjacency this makes a
// multi-way intersection step O(log gap) instead of O(gap), which is
// what turns leapfrog's worst-case-optimal bound into practical wins on
// skewed degree distributions.
func SeekGE(others []int32, from int, target int32) int {
	n := len(others)
	if from >= n || others[from] >= target {
		return from
	}
	// Gallop: find a bracket (from+step/2, from+step] containing the
	// first element >= target.
	step := 1
	lo, hi := from, from+1
	for hi < n && others[hi] < target {
		lo = hi
		step <<= 1
		hi = from + step
	}
	if hi > n {
		hi = n
	}
	// Binary search in (lo, hi]: others[lo] < target, so the answer is in
	// lo+1..hi.
	lo++
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if others[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

var _ SortedStepper = (*CSR)(nil)
