package graph

// The durable overlay: OpenDurable layers the epoch-snapshot overlay over
// an on-disk data directory — the newest checkpointed CSR base plus a
// write-ahead log of every batch applied since (see internal/wal). Apply
// gains a log-then-publish hook: the batch's ops are encoded and appended
// to the WAL (fsynced per the configured policy) before any in-memory
// state changes, so a batch is either durable-and-published or neither.
// Compaction doubles as the checkpointer — the freshly merged CSR base is
// persisted, the manifest swapped atomically, and the WAL prefix it
// covers truncated — and recovery is the inverse: load the manifest's
// checkpoint, replay the committed WAL suffix batch by batch, and come up
// on a store byte-identical to the pre-crash committed state.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"gpml/internal/value"
	"gpml/internal/wal"
)

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Dir is the data directory (created if missing): checkpoints and the
	// manifest at the top level, WAL segments under wal/.
	Dir string
	// Fsync is the WAL fsync policy (default wal.SyncAlways).
	Fsync wal.SyncPolicy
	// SyncEvery is the wal.SyncInterval period (default 50ms).
	SyncEvery time.Duration
	// SegmentBytes is the WAL segment roll threshold (default 64 MiB).
	SegmentBytes int64
	// CompactThreshold overrides the overlay compaction threshold:
	// 0 = DefaultCompactThreshold, negative = disable automatic
	// compaction (Checkpoint still works).
	CompactThreshold int
}

// RecoveryStats reports what one Recover did.
type RecoveryStats struct {
	CheckpointBatch uint64 `json:"checkpoint_batch"` // batch cut of the checkpoint loaded
	ReplayedBatches uint64 `json:"replayed_batches"` // committed WAL batches replayed on top
	WALTornBytes    int64  `json:"wal_torn_bytes"`   // torn tail bytes truncated from the WAL
	WALTruncated    bool   `json:"wal_truncated"`    // whether any tail repair happened
}

// DurabilityStats is a point-in-time snapshot of the durability layer,
// surfaced by gpmld's /stats.
type DurabilityStats struct {
	Dir             string        `json:"dir"`
	Fsync           string        `json:"fsync"`
	WAL             wal.Stats     `json:"wal"`
	CheckpointBatch uint64        `json:"checkpoint_batch"` // cut of the newest durable checkpoint
	Checkpoints     uint64        `json:"checkpoints"`      // checkpoints written since open
	LastBatch       uint64        `json:"last_batch"`       // newest applied (logged) batch
	Replaying       bool          `json:"replaying"`        // true between OpenDurable and Recover
	Recovery        RecoveryStats `json:"recovery"`
	CheckpointErr   string        `json:"checkpoint_err,omitempty"` // last background checkpoint failure
}

// durability is the overlay's durability sidecar. The log pointer is
// written under both ov.mu and ckptMu (in Recover), so holders of either
// lock read it safely.
type durability struct {
	dir  string
	opts DurableOptions

	ckptMu      sync.Mutex
	log         *wal.Log
	ckptCut     uint64 // batch cut of the newest durable checkpoint
	checkpoints uint64
	ckptErr     error
	closed      bool
	recovered   RecoveryStats
}

// OpenDurable is recovery phase one: it loads the newest valid checkpoint
// from the data directory (an empty base when the directory is fresh) and
// returns an overlay that serves that state read-only. No WAL is touched
// yet — call Recover to replay the committed suffix and enable writes;
// Apply before Recover fails. The two phases exist so a server can
// register the store and answer health checks while replay runs.
func OpenDurable(o DurableOptions) (*Overlay, error) {
	if o.Dir == "" {
		return nil, errors.New("graph: DurableOptions.Dir is required")
	}
	if err := os.MkdirAll(filepath.Join(o.Dir, "wal"), 0o755); err != nil {
		return nil, err
	}
	base, cut, epoch, err := loadLatestCheckpoint(o.Dir)
	if err != nil {
		return nil, err
	}
	ov := &Overlay{compactThreshold: DefaultCompactThreshold}
	switch {
	case o.CompactThreshold < 0:
		ov.compactThreshold = 0
	case o.CompactThreshold > 0:
		ov.compactThreshold = o.CompactThreshold
	}
	ov.w = writerState{
		base:    base,
		nodeIdx: map[NodeID]ElemIdx{},
		edgeIdx: map[EdgeID]ElemIdx{},
		adj:     map[int32][]deltaStep{},
		deadN:   map[ElemIdx]uint64{},
		deadE:   map[ElemIdx]uint64{},
		overN:   map[ElemIdx]nodeOver{},
		overE:   map[ElemIdx]edgeOver{},
		liveN:   base.NumNodes(),
		liveE:   base.NumEdges(),
	}
	ov.compactDone = sync.NewCond(&ov.mu)
	ov.seq = epoch
	ov.batchSeq = cut
	ov.baseBatch = cut
	ov.replaying = true
	ov.dur = &durability{dir: o.Dir, opts: o, ckptCut: cut}
	ov.mu.Lock()
	ov.publishLocked()
	ov.mu.Unlock()
	return ov, nil
}

// Recover is recovery phase two: open the WAL (repairing any torn tail),
// replay every committed batch past the checkpoint cut, and switch the
// overlay live for writes. It is idempotent — a second call is a no-op
// returning the first call's stats. A wal.CorruptionError means the log
// is damaged beyond the tail and the store must not be served.
func (ov *Overlay) Recover() (RecoveryStats, error) {
	ov.mu.Lock()
	d := ov.dur
	if d == nil {
		ov.mu.Unlock()
		return RecoveryStats{}, errors.New("graph: not a durable overlay")
	}
	if !ov.replaying {
		stats := d.recovered
		ov.mu.Unlock()
		return stats, nil
	}
	cut := ov.baseBatch
	ov.mu.Unlock()

	log, info, err := wal.Open(wal.Options{
		Dir:          filepath.Join(d.dir, "wal"),
		Policy:       d.opts.Fsync,
		SyncEvery:    d.opts.SyncEvery,
		SegmentBytes: d.opts.SegmentBytes,
	})
	if err != nil {
		return RecoveryStats{}, err
	}
	var replayed uint64
	err = log.Replay(cut, func(seq, epoch uint64, ops [][]byte) error {
		b := &Batch{ops: make([]op, 0, len(ops))}
		for _, p := range ops {
			o, err := decodeOp(p)
			if err != nil {
				return fmt.Errorf("graph: batch %d: %w", seq, err)
			}
			b.ops = append(b.ops, o)
		}
		if err := ov.applyReplay(seq, epoch, b); err != nil {
			return err
		}
		replayed++
		return nil
	})
	if err != nil {
		log.Close()
		return RecoveryStats{}, err
	}

	stats := RecoveryStats{
		CheckpointBatch: cut,
		ReplayedBatches: replayed,
		WALTornBytes:    info.TornBytes,
		WALTruncated:    info.Truncated,
	}
	ov.mu.Lock()
	if ov.seq < info.MaxEpoch {
		ov.seq = info.MaxEpoch
	}
	// The checkpoint cut can be newer than anything left in the WAL (a
	// crash under fsync=interval/none loses acked batches the checkpoint
	// already covered); SetNextSeq then resets the log so the next append
	// opens a fresh segment instead of writing a sequence gap into the
	// old one.
	if err := log.SetNextSeq(ov.batchSeq + 1); err != nil {
		ov.mu.Unlock()
		log.Close()
		return RecoveryStats{}, err
	}
	ov.replaying = false
	d.ckptMu.Lock()
	d.log = log
	d.recovered = stats
	d.ckptMu.Unlock()
	snap := ov.publishLocked()
	ov.maybeCompactLocked(snap)
	ov.mu.Unlock()
	return stats, nil
}

// applyReplay applies one recovered batch: validation and application are
// identical to Apply, minus the WAL append (the batch is already durable)
// and the compaction trigger (one pass at the end of Recover suffices).
// The published epoch is pinned to the batch's recorded commit epoch so
// recovered epochs are never below pre-crash committed ones.
func (ov *Overlay) applyReplay(seq, epoch uint64, b *Batch) error {
	ov.mu.Lock()
	defer ov.mu.Unlock()
	if seq != ov.batchSeq+1 {
		return fmt.Errorf("graph: replay gap: batch %d where %d was expected", seq, ov.batchSeq+1)
	}
	if err := ov.validateLocked(b); err != nil {
		return fmt.Errorf("graph: replay of batch %d: %w", seq, err)
	}
	ov.batchSeq = seq
	for i := range b.ops {
		ov.gen++
		ov.applyLocked(&b.ops[i])
	}
	if epoch > ov.seq+1 {
		ov.seq = epoch - 1
	}
	ov.publishLocked()
	return nil
}

// logBatchLocked encodes and appends one batch to the WAL. Callers hold
// ov.mu (which also protects the log pointer read).
func (d *durability) logBatchLocked(seq, epoch uint64, b *Batch) error {
	if d.log == nil {
		return errors.New("graph: durable overlay not recovered; call Recover before Apply")
	}
	ops := make([][]byte, len(b.ops))
	for i := range b.ops {
		ops[i] = encodeOp(&b.ops[i])
	}
	return d.log.Append(seq, epoch, ops)
}

// checkpoint persists base (which materializes every batch up to and
// including cut) and retires the WAL prefix it covers. Calls with a cut
// at or below the newest durable checkpoint are no-ops, which makes the
// compactor's background call and an explicit Checkpoint safely
// concurrent.
func (d *durability) checkpoint(base *CSR, cut, epoch uint64) error {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if d.closed || cut <= d.ckptCut {
		return nil
	}
	name := fmt.Sprintf("ckpt-%016x.ck", cut)
	err := func() error {
		if err := writeCheckpoint(filepath.Join(d.dir, name), base, cut, epoch); err != nil {
			return err
		}
		return writeManifest(d.dir, name, cut, epoch)
	}()
	d.ckptErr = err
	if err != nil {
		return err
	}
	d.ckptCut = cut
	d.checkpoints++
	if d.log != nil {
		if terr := d.log.TruncateBefore(cut + 1); terr != nil && !errors.Is(terr, wal.ErrClosed) {
			d.ckptErr = terr
		}
	}
	removeStaleCheckpoints(d.dir, name)
	return d.ckptErr
}

// Checkpoint synchronously compacts and persists everything applied
// before the call, then truncates the WAL prefix the checkpoint covers.
// On a non-durable overlay it is an error.
func (ov *Overlay) Checkpoint() error {
	ov.mu.Lock()
	d := ov.dur
	replaying := ov.replaying
	ov.mu.Unlock()
	if d == nil {
		return errors.New("graph: not a durable overlay")
	}
	if replaying {
		return errors.New("graph: durable overlay not recovered")
	}
	ov.Compact()
	ov.mu.Lock()
	base, cut, epoch := ov.w.base, ov.baseBatch, ov.seq
	ov.mu.Unlock()
	// Compact's own background checkpoint usually already covered cut, in
	// which case this is a no-op; if it failed, this retries and surfaces
	// the error.
	return d.checkpoint(base, cut, epoch)
}

// SyncWAL flushes the WAL to stable storage regardless of fsync policy.
func (ov *Overlay) SyncWAL() error {
	d := ov.durable()
	if d == nil {
		return nil
	}
	d.ckptMu.Lock()
	log := d.log
	d.ckptMu.Unlock()
	if log == nil {
		return nil
	}
	return log.Sync()
}

// CloseDurable drains any in-flight compaction, flushes the WAL, and
// closes it. Further Applies fail. Safe to call more than once, and a
// no-op on non-durable overlays.
func (ov *Overlay) CloseDurable() error {
	d := ov.durable()
	if d == nil {
		return nil
	}
	ov.Wait()
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if d.log == nil {
		return nil
	}
	serr := d.log.Sync()
	cerr := d.log.Close()
	if serr != nil && !errors.Is(serr, wal.ErrInjected) {
		return serr
	}
	return cerr
}

// DurabilityStats snapshots the durability layer (zero value on a
// non-durable overlay).
func (ov *Overlay) DurabilityStats() DurabilityStats {
	ov.mu.Lock()
	d := ov.dur
	last := ov.batchSeq
	replaying := ov.replaying
	ov.mu.Unlock()
	if d == nil {
		return DurabilityStats{}
	}
	d.ckptMu.Lock()
	st := DurabilityStats{
		Dir:             d.dir,
		Fsync:           d.opts.Fsync.String(),
		CheckpointBatch: d.ckptCut,
		Checkpoints:     d.checkpoints,
		LastBatch:       last,
		Replaying:       replaying,
		Recovery:        d.recovered,
	}
	if d.ckptErr != nil {
		st.CheckpointErr = d.ckptErr.Error()
	}
	log := d.log
	d.ckptMu.Unlock()
	if log != nil {
		st.WAL = log.Stats()
	}
	return st
}

// ArmWALFailpoint installs a one-shot crash fault in the WAL writer; the
// fault-injection harness's hook into a live durable overlay.
func (ov *Overlay) ArmWALFailpoint(fp wal.Failpoint) error {
	d := ov.durable()
	if d == nil {
		return errors.New("graph: not a durable overlay")
	}
	d.ckptMu.Lock()
	log := d.log
	d.ckptMu.Unlock()
	if log == nil {
		return errors.New("graph: durable overlay not recovered")
	}
	log.Arm(fp)
	return nil
}

// durable returns the durability sidecar, nil on plain overlays.
func (ov *Overlay) durable() *durability {
	ov.mu.Lock()
	d := ov.dur
	ov.mu.Unlock()
	return d
}

// DurabilitySource is a store that exposes durability statistics; the
// server's /stats endpoint surfaces them when its store implements it.
type DurabilitySource interface {
	DurabilityStats() DurabilityStats
}

// StoreEpoch reports the store's current epoch number: the snapshot
// sequence for epoch sources, zero for immutable stores. The query layer
// tags cached plans with it so InvalidateBelow can retire plans compiled
// against pre-recovery epochs.
func StoreEpoch(s Store) uint64 {
	if e, ok := s.(EpochSource); ok {
		s = e.PinEpoch()
	}
	if q, ok := s.(interface{ Seq() uint64 }); ok {
		return q.Seq()
	}
	return 0
}

// --- op codec ---
//
// One batch op encodes as a type byte followed by type-specific fields:
// strings and labels are uvarint-length-prefixed, property maps are
// (uvarint count, then key/value pairs sorted by key), values are a kind
// byte plus kind-specific payload. The encoding is the WAL's op payload
// and the checkpoint's record body, so it must stay stable across
// versions.

func encodeOp(o *op) []byte {
	p := []byte{byte(o.kind)}
	p = appendString(p, o.id)
	switch o.kind {
	case opAddNode:
		p = appendStrings(p, o.labels)
		p = appendProps(p, o.props)
	case opAddEdge:
		p = appendString(p, string(o.src))
		p = appendString(p, string(o.dst))
		p = append(p, byte(o.dir))
		p = appendStrings(p, o.labels)
		p = appendProps(p, o.props)
	case opDelNode, opDelEdge:
		// id only
	case opSetNodeProp, opSetEdgeProp:
		p = appendString(p, o.key)
		p = appendValue(p, o.val)
	case opSetNodeLabels:
		p = appendStrings(p, o.labels)
	}
	return p
}

func decodeOp(p []byte) (op, error) {
	d := bdec{buf: p}
	kind := opKind(d.byte())
	o := op{kind: kind, id: d.string()}
	switch kind {
	case opAddNode:
		o.labels = d.strings()
		o.props = d.props()
	case opAddEdge:
		o.src = NodeID(d.string())
		o.dst = NodeID(d.string())
		o.dir = Direction(d.byte())
		o.labels = d.strings()
		o.props = d.props()
	case opDelNode, opDelEdge:
	case opSetNodeProp, opSetEdgeProp:
		o.key = d.string()
		o.val = d.value()
	case opSetNodeLabels:
		o.labels = d.strings()
	default:
		return op{}, fmt.Errorf("unknown op kind %d", kind)
	}
	if err := d.finish(); err != nil {
		return op{}, fmt.Errorf("op kind %d: %w", kind, err)
	}
	return o, nil
}

func appendString(p []byte, s string) []byte {
	p = binary.AppendUvarint(p, uint64(len(s)))
	return append(p, s...)
}

func appendStrings(p []byte, ss []string) []byte {
	p = binary.AppendUvarint(p, uint64(len(ss)))
	for _, s := range ss {
		p = appendString(p, s)
	}
	return p
}

func appendProps(p []byte, props map[string]value.Value) []byte {
	p = binary.AppendUvarint(p, uint64(len(props)))
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p = appendString(p, k)
		p = appendValue(p, props[k])
	}
	return p
}

func appendValue(p []byte, v value.Value) []byte {
	p = append(p, byte(v.Kind()))
	switch v.Kind() {
	case value.KindNull:
	case value.KindString:
		s, _ := v.AsString()
		p = appendString(p, s)
	case value.KindInt:
		i, _ := v.AsInt()
		p = binary.AppendVarint(p, i)
	case value.KindFloat:
		f, _ := v.AsFloat()
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(f))
	case value.KindBool:
		b, _ := v.AsBool()
		if b {
			p = append(p, 1)
		} else {
			p = append(p, 0)
		}
	}
	return p
}

// bdec is a forgiving byte-stream decoder: the first malformed read sets
// the error and every later read returns zero values, so decode code
// reads straight through and checks finish once. Decoded strings copy out
// of the input buffer (WAL replay buffers are transient).
type bdec struct {
	buf []byte
	off int
	err error
}

func (d *bdec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated payload at offset %d", d.off)
	}
}

func (d *bdec) finish() error {
	if d.err == nil && d.off != len(d.buf) {
		return fmt.Errorf("%d trailing bytes", len(d.buf)-d.off)
	}
	return d.err
}

func (d *bdec) byte() byte {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail()
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *bdec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *bdec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *bdec) string() string {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.buf)-d.off) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *bdec) strings() []string {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.buf)-d.off) {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	ss := make([]string, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		ss = append(ss, d.string())
	}
	return ss
}

func (d *bdec) props() map[string]value.Value {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.buf)-d.off) {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	m := make(map[string]value.Value, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		k := d.string()
		m[k] = d.value()
	}
	return m
}

func (d *bdec) value() value.Value {
	switch value.Kind(d.byte()) {
	case value.KindNull:
		return value.Value{}
	case value.KindString:
		return value.Str(d.string())
	case value.KindInt:
		return value.Int(d.varint())
	case value.KindFloat:
		if d.err != nil || len(d.buf)-d.off < 8 {
			d.fail()
			return value.Value{}
		}
		bits := binary.LittleEndian.Uint64(d.buf[d.off:])
		d.off += 8
		return value.Float(math.Float64frombits(bits))
	case value.KindBool:
		return value.Bool(d.byte() != 0)
	default:
		d.fail()
		return value.Value{}
	}
}
