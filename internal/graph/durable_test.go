package graph

// Durable overlay tests: codec and checkpoint roundtrips, recovery
// exactness, and the crash-fault-injection harness — 100+ seeded kill /
// truncate / bit-flip crash points, each asserting the recovered store is
// identical to the committed-prefix reference and that damage beyond a
// torn tail is detected rather than silently served.

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"gpml/internal/value"
	"gpml/internal/wal"
)

// fingerprint hashes an epoch's full logical state — every live element's
// record plus the adjacency triples — independent of epoch numbers,
// generation counters, and base/delta split, so a recovered store can be
// compared byte-for-byte against a pre-crash reference.
func fingerprint(s *OverlaySnap) string {
	h := sha256.New()
	writeProps := func(props map[string]value.Value) {
		keys := make([]string, 0, len(props))
		for k := range props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(h, "%s=%s(%s);", k, props[k].String(), props[k].Kind())
		}
	}
	for i := 0; i < s.NodeIndexSpan(); i++ {
		n := s.nodeAtIdx(i)
		if n == nil {
			continue
		}
		fmt.Fprintf(h, "N%d|%s|%v|", i, n.ID, n.Labels)
		writeProps(n.Props)
		s.Steps(i, func(edge, other int, kind StepKind) bool {
			fmt.Fprintf(h, "s%d,%d,%d;", edge, other, kind)
			return true
		})
		fmt.Fprint(h, "\n")
	}
	for i := 0; i < s.EdgeIndexSpan(); i++ {
		e := s.edgeAtIdx(i)
		if e == nil {
			continue
		}
		src, tgt := s.EdgeEnds(i)
		fmt.Fprintf(h, "E%d|%s|%s->%s|%d,%d|%d|%v|", i, e.ID, e.Source, e.Target, src, tgt, e.Direction, e.Labels)
		writeProps(e.Props)
		fmt.Fprint(h, "\n")
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// wlModel mirrors the overlay's validation semantics so the generated
// workload is always applicable: live node ids, live edges with
// endpoints, and detach-on-node-delete.
type wlModel struct {
	rng   *rand.Rand
	nodes []NodeID
	edges []struct {
		id       EdgeID
		src, dst NodeID
	}
	nextN, nextE int
}

func (m *wlModel) addNode(b *Batch) {
	id := NodeID(fmt.Sprintf("n%05d", m.nextN))
	m.nextN++
	labels := []string{"Person"}
	if m.rng.Intn(3) == 0 {
		labels = append(labels, "Account")
	}
	b.AddNode(id, labels, map[string]value.Value{
		"name": value.Str(fmt.Sprintf("name-%s", id)),
		"rank": value.Int(int64(m.rng.Intn(1000))),
	})
	m.nodes = append(m.nodes, id)
}

func (m *wlModel) addEdge(b *Batch) {
	id := EdgeID(fmt.Sprintf("e%05d", m.nextE))
	m.nextE++
	src := m.nodes[m.rng.Intn(len(m.nodes))]
	dst := m.nodes[m.rng.Intn(len(m.nodes))]
	props := map[string]value.Value{"w": value.Float(m.rng.Float64())}
	if m.rng.Intn(4) == 0 {
		b.AddUndirectedEdge(id, src, dst, []string{"isSameAs"}, props)
	} else {
		b.AddEdge(id, src, dst, []string{"Transfer"}, props)
	}
	m.edges = append(m.edges, struct {
		id       EdgeID
		src, dst NodeID
	}{id, src, dst})
}

func (m *wlModel) delEdge(b *Batch) {
	i := m.rng.Intn(len(m.edges))
	b.DeleteEdge(m.edges[i].id)
	m.edges = append(m.edges[:i], m.edges[i+1:]...)
}

func (m *wlModel) delNode(b *Batch) {
	i := m.rng.Intn(len(m.nodes))
	id := m.nodes[i]
	b.DeleteNode(id)
	m.nodes = append(m.nodes[:i], m.nodes[i+1:]...)
	kept := m.edges[:0]
	for _, e := range m.edges {
		if e.src != id && e.dst != id {
			kept = append(kept, e)
		}
	}
	m.edges = kept
}

// genWorkload deterministically builds nBatches batches of mixed
// mutations, each valid when applied in order from an empty store.
func genWorkload(seed int64, nBatches int) [][]op {
	m := &wlModel{rng: rand.New(rand.NewSource(seed))}
	var out [][]op
	for j := 0; j < nBatches; j++ {
		b := &Batch{}
		if j == 0 {
			for i := 0; i < 6; i++ {
				m.addNode(b)
			}
		} else {
			nops := 3 + m.rng.Intn(4)
			for k := 0; k < nops; k++ {
				switch r := m.rng.Intn(10); {
				case r < 3:
					m.addNode(b)
				case r < 6 && len(m.nodes) > 0:
					m.addEdge(b)
				case r == 6 && len(m.edges) > 0:
					m.delEdge(b)
				case r == 7 && len(m.nodes) > 4:
					m.delNode(b)
				case r == 8 && len(m.nodes) > 0:
					id := m.nodes[m.rng.Intn(len(m.nodes))]
					b.SetNodeProp(id, "rank", value.Int(int64(m.rng.Intn(9999))))
					if m.rng.Intn(2) == 0 {
						b.SetNodeLabels(id, []string{"Person", "Flagged"})
					}
				case r == 9 && len(m.edges) > 0:
					b.SetEdgeProp(m.edges[m.rng.Intn(len(m.edges))].id, "w", value.Float(m.rng.Float64()))
				default:
					m.addNode(b)
				}
			}
		}
		out = append(out, b.ops)
	}
	return out
}

// batchOf wraps a workload entry in a fresh Batch (ops are never mutated
// by Apply, so sharing the slices across runs is safe).
func batchOf(ops []op) *Batch { return &Batch{ops: append([]op(nil), ops...)} }

// openRecovered opens and recovers a durable overlay in dir.
func openRecovered(t *testing.T, o DurableOptions) (*Overlay, RecoveryStats) {
	t.Helper()
	ov, err := OpenDurable(o)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	stats, err := ov.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return ov, stats
}

func TestOpCodecRoundtrip(t *testing.T) {
	props := map[string]value.Value{
		"s": value.Str("héllo"), "i": value.Int(-42), "f": value.Float(3.25),
		"b": value.Bool(true), "z": {},
	}
	b := (&Batch{}).
		AddNode("n1", []string{"Person", "Account"}, props).
		AddEdge("e1", "n1", "n2", []string{"Transfer"}, map[string]value.Value{"w": value.Float(0.5)}).
		AddUndirectedEdge("e2", "n1", "n1", nil, nil).
		DeleteNode("n1").
		DeleteEdge("e1").
		SetNodeProp("n2", "k", value.Int(7)).
		SetEdgeProp("e2", "w", value.Str("x")).
		SetNodeLabels("n2", []string{"B", "A"})
	for i := range b.ops {
		enc := encodeOp(&b.ops[i])
		dec, err := decodeOp(enc)
		if err != nil {
			t.Fatalf("op %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(dec, b.ops[i]) {
			t.Fatalf("op %d roundtrip:\n got %+v\nwant %+v", i, dec, b.ops[i])
		}
	}
	if _, err := decodeOp([]byte{99}); err == nil {
		t.Fatal("unknown op kind accepted")
	}
	if _, err := decodeOp(nil); err == nil {
		t.Fatal("empty op accepted")
	}
}

func TestDurableRoundtrip(t *testing.T) {
	dir := t.TempDir()
	work := genWorkload(1, 25)
	ov, stats := openRecovered(t, DurableOptions{Dir: dir, CompactThreshold: -1})
	if stats.ReplayedBatches != 0 || stats.CheckpointBatch != 0 {
		t.Fatalf("fresh dir recovery: %+v", stats)
	}
	for _, ops := range work {
		if err := ov.Apply(batchOf(ops)); err != nil {
			t.Fatal(err)
		}
	}
	want := fingerprint(ov.Snapshot())
	epoch := ov.Snapshot().Seq()
	if err := ov.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	if err := ov.Apply(batchOf(work[0])); err == nil {
		t.Fatal("Apply after CloseDurable succeeded")
	}

	ov2, stats := openRecovered(t, DurableOptions{Dir: dir, CompactThreshold: -1})
	defer ov2.CloseDurable()
	if stats.ReplayedBatches != uint64(len(work)) {
		t.Fatalf("replayed %d batches, want %d", stats.ReplayedBatches, len(work))
	}
	if got := fingerprint(ov2.Snapshot()); got != want {
		t.Fatal("recovered store differs from pre-close state")
	}
	if got := ov2.Snapshot().Seq(); got < epoch {
		t.Fatalf("recovered epoch %d below pre-close epoch %d", got, epoch)
	}
	// The recovered overlay keeps accepting writes with continuous batch
	// numbering.
	extra := (&Batch{}).AddNode("zz-post-recovery", []string{"Person"}, nil)
	if err := ov2.Apply(extra); err != nil {
		t.Fatalf("Apply after recovery: %v", err)
	}
	if st := ov2.DurabilityStats(); st.LastBatch != uint64(len(work))+1 {
		t.Fatalf("LastBatch = %d, want %d", st.LastBatch, len(work)+1)
	}
}

func TestApplyBeforeRecoverRejected(t *testing.T) {
	ov, err := OpenDurable(DurableOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer ov.CloseDurable()
	if err := ov.Apply((&Batch{}).AddNode("a", nil, nil)); err == nil {
		t.Fatal("Apply before Recover succeeded")
	}
	if st := ov.DurabilityStats(); !st.Replaying {
		t.Fatal("not marked replaying before Recover")
	}
	if _, err := ov.Recover(); err != nil {
		t.Fatal(err)
	}
	if st := ov.DurabilityStats(); st.Replaying {
		t.Fatal("still replaying after Recover")
	}
}

func TestRecoverCheckpointAheadOfWAL(t *testing.T) {
	// The fsync=interval/none crash where acked batches vanish from the
	// WAL after a checkpoint already made them durable: the checkpoint
	// cut exceeds the WAL's recovered last sequence. Recovery must reset
	// the stale segments so the first post-recovery append doesn't write
	// a batch-sequence gap that the NEXT open rejects as corruption.
	dir := t.TempDir()
	work := genWorkload(11, 6)
	ov, _ := openRecovered(t, DurableOptions{Dir: dir, CompactThreshold: -1})
	for _, ops := range work {
		if err := ov.Apply(batchOf(ops)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ov.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(ov.Snapshot())
	if err := ov.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	// Lose the unsynced WAL tail: tear the newest batch off the newest
	// segment. The checkpoint still covers it.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("wal segments: %v (%v)", segs, err)
	}
	newest := segs[len(segs)-1]
	st, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newest, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	ov2, stats := openRecovered(t, DurableOptions{Dir: dir, CompactThreshold: -1})
	if stats.CheckpointBatch != uint64(len(work)) || stats.ReplayedBatches != 0 {
		t.Fatalf("checkpoint-ahead recovery: %+v", stats)
	}
	if got := fingerprint(ov2.Snapshot()); got != want {
		t.Fatal("recovered store differs from the checkpointed state")
	}
	if err := ov2.Apply((&Batch{}).AddNode("post-gap", []string{"Person"}, nil)); err != nil {
		t.Fatalf("Apply after checkpoint-ahead recovery: %v", err)
	}
	want2 := fingerprint(ov2.Snapshot())
	if err := ov2.CloseDurable(); err != nil {
		t.Fatal(err)
	}

	// The reopen that used to fail with a CorruptionError on the gap.
	ov3, stats := openRecovered(t, DurableOptions{Dir: dir, CompactThreshold: -1})
	defer ov3.CloseDurable()
	if stats.ReplayedBatches != 1 {
		t.Fatalf("replayed %d batches, want 1: %+v", stats.ReplayedBatches, stats)
	}
	if got := fingerprint(ov3.Snapshot()); got != want2 {
		t.Fatal("post-gap batch lost across reopen")
	}
}

func TestCheckpointAndWALTruncation(t *testing.T) {
	dir := t.TempDir()
	work := genWorkload(2, 30)
	ov, _ := openRecovered(t, DurableOptions{Dir: dir, CompactThreshold: -1, SegmentBytes: 1 << 10})
	for _, ops := range work {
		if err := ov.Apply(batchOf(ops)); err != nil {
			t.Fatal(err)
		}
	}
	want := fingerprint(ov.Snapshot())
	if err := ov.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st := ov.DurabilityStats()
	if st.CheckpointBatch != uint64(len(work)) || st.Checkpoints == 0 {
		t.Fatalf("after checkpoint: %+v", st)
	}
	if st.WAL.Segments != 1 {
		t.Fatalf("WAL retained %d segments after checkpoint", st.WAL.Segments)
	}
	if err := ov.CloseDurable(); err != nil {
		t.Fatal(err)
	}

	ov2, stats := openRecovered(t, DurableOptions{Dir: dir, CompactThreshold: -1, SegmentBytes: 1 << 10})
	if stats.CheckpointBatch != uint64(len(work)) || stats.ReplayedBatches != 0 {
		t.Fatalf("recovery from checkpoint: %+v", stats)
	}
	if got := fingerprint(ov2.Snapshot()); got != want {
		t.Fatal("checkpoint recovery differs from pre-close state")
	}
	// Continue writing, then recover again: checkpoint + replayed suffix.
	post := genWorkload(3, 8)
	for _, ops := range post {
		if err := ov2.Apply(&Batch{ops: renumberOps(ops, "p")}); err != nil {
			t.Fatal(err)
		}
	}
	want2 := fingerprint(ov2.Snapshot())
	ov2.CloseDurable()
	ov3, stats := openRecovered(t, DurableOptions{Dir: dir, CompactThreshold: -1, SegmentBytes: 1 << 10})
	defer ov3.CloseDurable()
	if stats.ReplayedBatches != uint64(len(post)) {
		t.Fatalf("suffix replay: %+v", stats)
	}
	if got := fingerprint(ov3.Snapshot()); got != want2 {
		t.Fatal("checkpoint+suffix recovery differs")
	}
}

// renumberOps rewrites a workload slice's ids with a prefix so it can be
// appended to a store that already holds the original ids.
func renumberOps(ops []op, prefix string) []op {
	out := append([]op(nil), ops...)
	for i := range out {
		out[i].id = prefix + out[i].id
		if out[i].kind == opAddEdge {
			out[i].src = NodeID(prefix + string(out[i].src))
			out[i].dst = NodeID(prefix + string(out[i].dst))
		}
	}
	return out
}

func TestBackgroundCompactionCheckpoints(t *testing.T) {
	dir := t.TempDir()
	work := genWorkload(4, 60)
	ov, _ := openRecovered(t, DurableOptions{Dir: dir, CompactThreshold: 32})
	for _, ops := range work {
		if err := ov.Apply(batchOf(ops)); err != nil {
			t.Fatal(err)
		}
	}
	ov.Wait()
	st := ov.DurabilityStats()
	if st.Checkpoints == 0 || st.CheckpointBatch == 0 {
		t.Fatalf("background compaction never checkpointed: %+v", st)
	}
	if st.CheckpointErr != "" {
		t.Fatalf("checkpoint error: %s", st.CheckpointErr)
	}
	want := fingerprint(ov.Snapshot())
	ov.CloseDurable()
	ov2, stats := openRecovered(t, DurableOptions{Dir: dir, CompactThreshold: 32})
	defer ov2.CloseDurable()
	if stats.CheckpointBatch != st.CheckpointBatch {
		t.Fatalf("recovered cut %d, checkpointed %d", stats.CheckpointBatch, st.CheckpointBatch)
	}
	if got := fingerprint(ov2.Snapshot()); got != want {
		t.Fatal("post-compaction recovery differs")
	}
}

func TestManifestIntegrity(t *testing.T) {
	dir := t.TempDir()
	ov, _ := openRecovered(t, DurableOptions{Dir: dir, CompactThreshold: -1})
	if err := ov.Apply((&Batch{}).AddNode("a", []string{"Person"}, nil)); err != nil {
		t.Fatal(err)
	}
	if err := ov.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ov.CloseDurable()

	// A manifest naming a missing checkpoint must fail loudly, not come up
	// empty.
	var m manifest
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".ck" {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := OpenDurable(DurableOptions{Dir: dir}); err == nil {
		t.Fatal("missing checkpoint served as empty store")
	}

	// A corrupt manifest must fail too.
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(DurableOptions{Dir: dir}); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
	_ = m
	_ = data
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	work := genWorkload(5, 10)
	ov, _ := openRecovered(t, DurableOptions{Dir: dir, CompactThreshold: -1})
	for _, ops := range work {
		if err := ov.Apply(batchOf(ops)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ov.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ov.CloseDurable()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ckpt string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".ck" {
			ckpt = filepath.Join(dir, e.Name())
		}
	}
	if ckpt == "" {
		t.Fatal("no checkpoint written")
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{20, len(data) / 2, len(data) - 10} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		if err := os.WriteFile(ckpt, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenDurable(DurableOptions{Dir: dir}); err == nil {
			t.Fatalf("checkpoint with flipped byte at %d accepted", off)
		}
	}
}

// refRun replays the workload on a fresh durable overlay and records,
// after every batch, the cumulative WAL stream offset and the state
// fingerprint. ends[j] / fps[j] describe the state with j batches
// committed (index 0 = empty store).
func refRun(t *testing.T, work [][]op, o DurableOptions) (ends []int64, fps []string) {
	t.Helper()
	o.Dir = t.TempDir()
	ov, _ := openRecovered(t, o)
	defer ov.CloseDurable()
	ends = append(ends, ov.DurabilityStats().WAL.Bytes)
	fps = append(fps, fingerprint(ov.Snapshot()))
	for _, ops := range work {
		if err := ov.Apply(batchOf(ops)); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, ov.DurabilityStats().WAL.Bytes)
		fps = append(fps, fingerprint(ov.Snapshot()))
	}
	return ends, fps
}

// committedPrefix returns the largest j with ends[j] <= off: the number
// of batches wholly contained in the stream prefix [0, off).
func committedPrefix(ends []int64, off int64) int {
	m := 0
	for j, e := range ends {
		if e <= off {
			m = j
		}
	}
	return m
}

// TestCrashFaultInjection is the harness: 108 seeded crash points — 36
// kills, 36 tail truncations, 36 bit flips — spread across the WAL byte
// stream of a fixed workload. Every committed batch must survive
// recovery bit-exact, no torn batch may ever be surfaced, and flips must
// either be detected or provably confined to the torn tail.
func TestCrashFaultInjection(t *testing.T) {
	const nBatches = 40
	work := genWorkload(7, nBatches)
	opts := DurableOptions{CompactThreshold: -1, Fsync: wal.SyncAlways}
	ends, fps := refRun(t, work, opts)
	total := ends[len(ends)-1]
	if total < 2048 {
		t.Fatalf("workload stream too small (%d bytes) for a meaningful sweep", total)
	}
	rng := rand.New(rand.NewSource(99))

	runWorkload := func(t *testing.T, ov *Overlay) (acked int, failErr error) {
		for _, ops := range work {
			if err := ov.Apply(batchOf(ops)); err != nil {
				return acked, err
			}
			acked++
		}
		return acked, nil
	}

	reopen := func(t *testing.T, dir string, check int) (*Overlay, RecoveryStats) {
		t.Helper()
		ov, err := OpenDurable(DurableOptions{Dir: dir, CompactThreshold: -1})
		if err != nil {
			t.Fatalf("OpenDurable after crash: %v", err)
		}
		stats, err := ov.Recover()
		if err != nil {
			t.Fatalf("Recover after crash: %v", err)
		}
		return ov, stats
	}

	for i := 0; i < 36; i++ {
		var off int64
		if i < len(ends) && i%3 == 0 {
			off = ends[rng.Intn(len(ends))] // exact batch boundaries included
		} else {
			off = rng.Int63n(total)
		}
		t.Run(fmt.Sprintf("kill/%02d@%d", i, off), func(t *testing.T) {
			dir := t.TempDir()
			ov, _ := openRecovered(t, DurableOptions{Dir: dir, CompactThreshold: -1, Fsync: wal.SyncAlways})
			if err := ov.ArmWALFailpoint(wal.Failpoint{Kind: wal.FaultKill, Offset: off}); err != nil {
				t.Fatal(err)
			}
			acked, failErr := runWorkload(t, ov)
			wantM := committedPrefix(ends, off)
			if failErr == nil {
				t.Fatal("kill failpoint never fired")
			}
			if !errors.Is(failErr, wal.ErrInjected) {
				t.Fatalf("Apply failed with %v, want injected fault", failErr)
			}
			if acked != wantM {
				t.Fatalf("acked %d batches, committed prefix is %d", acked, wantM)
			}
			ov.CloseDurable()

			ov2, stats := reopen(t, dir, wantM)
			if stats.ReplayedBatches != uint64(wantM) {
				t.Fatalf("replayed %d, want %d", stats.ReplayedBatches, wantM)
			}
			if got := fingerprint(ov2.Snapshot()); got != fps[wantM] {
				t.Fatalf("recovered state differs from committed prefix of %d batches", wantM)
			}
			if i%6 == 0 {
				// Double reopen is idempotent, and the recovered store
				// accepts new writes.
				if err := ov2.Apply((&Batch{}).AddNode("zz-after-crash", nil, nil)); err != nil {
					t.Fatalf("Apply after crash recovery: %v", err)
				}
				ov2.CloseDurable()
				ov3, _ := reopen(t, dir, wantM)
				if got := fingerprint(ov3.Snapshot()); got == fps[wantM] {
					t.Fatal("post-recovery write lost on second reopen")
				}
				ov3.CloseDurable()
				return
			}
			ov2.CloseDurable()
		})
	}

	for i := 0; i < 36; i++ {
		off := rng.Int63n(total)
		after := off + rng.Int63n(total-off) + 1
		t.Run(fmt.Sprintf("truncate/%02d@%d", i, off), func(t *testing.T) {
			dir := t.TempDir()
			// fsync=interval: the policy whose real crashes this fault
			// models (acknowledged batches in the unsynced tail vanish).
			ov, _ := openRecovered(t, DurableOptions{Dir: dir, CompactThreshold: -1, Fsync: wal.SyncInterval, SyncEvery: 5 * time.Millisecond})
			if err := ov.ArmWALFailpoint(wal.Failpoint{Kind: wal.FaultTruncate, Offset: off, After: after}); err != nil {
				t.Fatal(err)
			}
			acked, failErr := runWorkload(t, ov)
			wantM := committedPrefix(ends, off)
			if failErr != nil && !errors.Is(failErr, wal.ErrInjected) {
				t.Fatalf("Apply failed with %v", failErr)
			}
			if failErr != nil && acked < wantM {
				t.Fatalf("acked %d < surviving prefix %d", acked, wantM)
			}
			ov.CloseDurable()

			ov2, stats := reopen(t, dir, wantM)
			if stats.ReplayedBatches != uint64(wantM) {
				t.Fatalf("replayed %d, want %d", stats.ReplayedBatches, wantM)
			}
			if got := fingerprint(ov2.Snapshot()); got != fps[wantM] {
				t.Fatalf("recovered state differs from committed prefix of %d batches", wantM)
			}
			ov2.CloseDurable()
		})
	}

	for i := 0; i < 36; i++ {
		off := rng.Int63n(total)
		t.Run(fmt.Sprintf("flip/%02d@%d", i, off), func(t *testing.T) {
			dir := t.TempDir()
			ov, _ := openRecovered(t, DurableOptions{Dir: dir, CompactThreshold: -1, Fsync: wal.SyncAlways})
			if err := ov.ArmWALFailpoint(wal.Failpoint{Kind: wal.FaultFlip, Offset: off}); err != nil {
				t.Fatal(err)
			}
			// A flip is silent: the writer survives and the whole workload
			// is acknowledged.
			acked, failErr := runWorkload(t, ov)
			if failErr != nil || acked != nBatches {
				t.Fatalf("flip killed the writer: acked=%d err=%v", acked, failErr)
			}
			ov.CloseDurable()

			ov2, err := OpenDurable(DurableOptions{Dir: dir, CompactThreshold: -1})
			var stats RecoveryStats
			if err == nil {
				stats, err = ov2.Recover()
			}
			lastBatchStart := ends[nBatches-1]
			switch {
			case err != nil:
				// Detected — always acceptable, and mandatory for flips
				// below the last batch.
			case off >= lastBatchStart:
				// A flip inside the final batch's extent is indistinguishable
				// from a torn tail; recovery may drop exactly that batch but
				// must serve nothing else.
				if stats.ReplayedBatches != uint64(nBatches-1) {
					t.Fatalf("tail flip: replayed %d, want %d", stats.ReplayedBatches, nBatches-1)
				}
				if got := fingerprint(ov2.Snapshot()); got != fps[nBatches-1] {
					t.Fatal("tail flip: recovered state differs from n-1 prefix")
				}
				ov2.CloseDurable()
			default:
				t.Fatalf("bit flip at offset %d (below last batch at %d) silently served: %+v", off, lastBatchStart, stats)
			}
		})
	}
}

// TestRecoveredConformance cross-checks a recovered store against a
// never-crashed overlay fed the same workload, op for op.
func TestRecoveredConformance(t *testing.T) {
	work := genWorkload(11, 30)
	ref := NewOverlay(Snapshot(&Graph{}), WithCompactThreshold(0))
	for _, ops := range work {
		if err := ref.Apply(batchOf(ops)); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	ov, _ := openRecovered(t, DurableOptions{Dir: dir, CompactThreshold: -1})
	for _, ops := range work {
		if err := ov.Apply(batchOf(ops)); err != nil {
			t.Fatal(err)
		}
	}
	ov.CloseDurable()
	rec, _ := openRecovered(t, DurableOptions{Dir: dir, CompactThreshold: -1})
	defer rec.CloseDurable()
	if got, want := fingerprint(rec.Snapshot()), fingerprint(ref.Snapshot()); got != want {
		t.Fatal("recovered store differs from in-memory overlay fed the same ops")
	}
}

// TestWriterThroughputGate asserts the env-guarded floor: with
// fsync=interval the durable writer must sustain >= 5k mutations/s.
func TestWriterThroughputGate(t *testing.T) {
	if os.Getenv("GPML_TIMING_GATES") == "" {
		t.Skip("set GPML_TIMING_GATES=1 to run timing-sensitive gates")
	}
	ov, _ := openRecovered(t, DurableOptions{
		Dir: t.TempDir(), Fsync: wal.SyncInterval, SyncEvery: 10 * time.Millisecond,
	})
	defer ov.CloseDurable()
	const batches, opsPer = 2000, 10
	start := time.Now()
	for i := 0; i < batches; i++ {
		b := &Batch{}
		for k := 0; k < opsPer; k++ {
			b.AddNode(NodeID(fmt.Sprintf("n%d-%d", i, k)), []string{"Person"},
				map[string]value.Value{"rank": value.Int(int64(k))})
		}
		if err := ov.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	rate := float64(batches*opsPer) / elapsed.Seconds()
	t.Logf("durable writer: %.0f muts/s over %d mutations (fsync=interval)", rate, batches*opsPer)
	if rate < 5000 {
		t.Fatalf("durable writer sustained %.0f muts/s, want >= 5000", rate)
	}
}
