package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"gpml/internal/value"
)

// checkSortedAdjacency asserts the CSR sorted-adjacency invariant: per
// node, SortedSteps ascends strictly by (other, edge), is a permutation
// of the Steps multiset, and keeps edge insertion order within
// equal-neighbour runs.
func checkSortedAdjacency(t *testing.T, name string, c *CSR) {
	t.Helper()
	for i := 0; i < c.NumNodes(); i++ {
		others, edges, kinds := c.SortedSteps(i)
		if len(others) != len(edges) || len(edges) != len(kinds) {
			t.Fatalf("%s: node %d: ragged sorted slices", name, i)
		}
		type step struct {
			other, edge int32
			kind        StepKind
		}
		var ref []step
		c.Steps(i, func(edge, other int, kind StepKind) bool {
			ref = append(ref, step{int32(other), int32(edge), kind})
			return true
		})
		if len(ref) != len(others) {
			t.Fatalf("%s: node %d: %d sorted steps, Steps has %d", name, i, len(others), len(ref))
		}
		// Strict (other, edge) ascent; a (node, edge, direction) triple
		// occurs at most once in the arena, so ties are impossible.
		for k := 1; k < len(others); k++ {
			if others[k] < others[k-1] || (others[k] == others[k-1] && edges[k] <= edges[k-1]) {
				t.Fatalf("%s: node %d: not sorted at %d: (%d,%d) after (%d,%d)",
					name, i, k, others[k], edges[k], others[k-1], edges[k-1])
			}
		}
		// Multiset equality with the insertion-ordered view.
		sort.Slice(ref, func(a, b int) bool {
			if ref[a].other != ref[b].other {
				return ref[a].other < ref[b].other
			}
			return ref[a].edge < ref[b].edge
		})
		for k := range ref {
			if ref[k].other != others[k] || ref[k].edge != edges[k] || ref[k].kind != kinds[k] {
				t.Fatalf("%s: node %d: sorted view diverges from Steps at %d: (%d,%d,%v) vs (%d,%d,%v)",
					name, i, k, others[k], edges[k], kinds[k], ref[k].other, ref[k].edge, ref[k].kind)
			}
		}
	}
}

// TestCSRSortedAdjacencyInvariant pins the invariant after a direct build
// and after snapshot-from-map conversion of a mutated graph, over the
// structural corner cases (multi-edges, self-loops, undirected edges) and
// a random multigraph.
func TestCSRSortedAdjacencyInvariant(t *testing.T) {
	g := conformanceGraph(t)
	checkSortedAdjacency(t, "conformance", Snapshot(g))

	// Mutate the map graph and re-snapshot: the sorted view must be
	// rebuilt from the new arena, not carried over.
	if err := g.AddNode("z", []string{"Account"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("ez1", "z", "a", []string{"Transfer"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("ez2", "a", "z", []string{"Transfer"}, nil); err != nil {
		t.Fatal(err)
	}
	checkSortedAdjacency(t, "resnapshot", Snapshot(g))

	// Random multigraph with parallel edges, self-loops and a mix of
	// directions, dense enough for every node to have a wide window.
	rng := rand.New(rand.NewSource(42))
	rg := New()
	const n = 40
	for i := 0; i < n; i++ {
		if err := rg.AddNode(NodeID(fmt.Sprintf("n%d", i)), []string{"N"}, map[string]value.Value{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		src := NodeID(fmt.Sprintf("n%d", rng.Intn(n)))
		tgt := NodeID(fmt.Sprintf("n%d", rng.Intn(n)))
		id := EdgeID(fmt.Sprintf("e%d", i))
		var err error
		if rng.Intn(4) == 0 {
			err = rg.AddUndirectedEdge(id, src, tgt, []string{"E"}, nil)
		} else {
			err = rg.AddEdge(id, src, tgt, []string{"E"}, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	checkSortedAdjacency(t, "random", Snapshot(rg))
}

// TestAsSorted pins which stores expose the sorted view: the CSR snapshot
// does, the map backend (and its memoized step index) does not.
func TestAsSorted(t *testing.T) {
	g := conformanceGraph(t)
	if _, ok := AsSorted(g); ok {
		t.Error("map backend unexpectedly reports sorted adjacency")
	}
	if _, ok := AsSorted(Snapshot(g)); !ok {
		t.Error("CSR snapshot must report sorted adjacency")
	}
}

// TestSeekGE checks the galloping search against a linear scan on every
// (from, target) combination of a list with duplicates and gaps.
func TestSeekGE(t *testing.T) {
	list := []int32{2, 2, 3, 7, 7, 7, 9, 14, 14, 20}
	for from := 0; from <= len(list); from++ {
		for target := int32(0); target <= 22; target++ {
			want := len(list)
			for j := from; j < len(list); j++ {
				if list[j] >= target {
					want = j
					break
				}
			}
			if got := SeekGE(list, from, target); got != want {
				t.Fatalf("SeekGE(from=%d, target=%d) = %d, want %d", from, target, got, want)
			}
		}
	}
	if got := SeekGE(nil, 0, 5); got != 0 {
		t.Fatalf("SeekGE on empty = %d, want 0", got)
	}
}
