//go:build !unix

package graph

import (
	"errors"
	"os"
)

// mmapArena is unavailable off unix; the partitioned snapshot falls back
// to heap-allocated arenas.
type mmapArena struct{}

func newMmapArena(size int) (*mmapArena, error) {
	return nil, errors.New("graph: mmap arenas unsupported on this platform")
}

// mapFileRO is unavailable off unix; checkpoint loading falls back to a
// heap read of the file.
func mapFileRO(f *os.File, size int) ([]byte, error) {
	return nil, errors.New("graph: file mmap unsupported on this platform")
}

func (a *mmapArena) int32s(n int) []int32   { return make([]int32, n) }
func (a *mmapArena) kinds(n int) []StepKind { return make([]StepKind, n) }
func (a *mmapArena) Close() error           { return nil }
