package graph

// The epoch-snapshot overlay store: a layered Store with an immutable CSR
// base plus an append-only in-memory delta (new nodes and edges, property
// and label overrides, tombstones), published to readers as epoch-pinned
// snapshots via one atomic pointer swap. Readers take no locks — a query
// pins the epoch current at its start and never observes a mix of epochs;
// writers batch mutations and publish a fresh immutable *OverlaySnap per
// Apply; a background compactor (see compact.go) merges the delta into a
// fresh CSR while queries keep draining on whatever epoch they pinned.
//
// Interned-index stability is the load-bearing invariant: base elements
// keep their CSR indices verbatim, delta elements take indices above the
// base high-water mark in insertion order, and compaction lays the merged
// CSR out over the very same index space (tombstoned elements stay as dead
// holes rather than being renumbered). A binding's (kind, ElemIdx) pair
// therefore means the same element in every epoch that has it live, so the
// whole interned execution path — dense engine positions, varint dedup
// keys, fixed-width join keys — runs unchanged on an overlay snapshot.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gpml/internal/value"
)

// EpochSource is a Store that serves mutable state through epoch-pinned
// snapshots. Evaluation entry points resolve it once per query via Pin, so
// a running query never observes two epochs.
type EpochSource interface {
	Store
	// PinEpoch returns the current epoch's immutable snapshot.
	PinEpoch() Store
}

// Pin resolves an EpochSource to its current immutable snapshot; any other
// store is returned unchanged. Every evaluation entry point pins its
// stores before planning or enumeration starts.
func Pin(s Store) Store {
	if e, ok := s.(EpochSource); ok {
		return e.PinEpoch()
	}
	return s
}

// DefaultCompactThreshold is the delta size (elements + tombstones +
// overrides) at which Apply starts a background compaction.
const DefaultCompactThreshold = 1 << 12

// Overlay is a mutable layered Store: an immutable CSR base plus an
// in-memory delta, served to readers as epoch snapshots. All Store reads
// on the Overlay itself delegate to the current epoch (each call pins
// transiently); evaluation pins one snapshot per query via Pin, and
// callers wanting a stable view across several reads should hold a
// Snapshot. Writers go through Begin/Apply; Apply is atomic — all of a
// batch's mutations become visible in one epoch swap, or none on error.
//
// An Overlay is safe for any number of concurrent readers and writers
// (writers serialize on an internal mutex).
type Overlay struct {
	mu  sync.Mutex // serializes writers, compaction swap, epoch publication
	cur atomic.Pointer[OverlaySnap]

	w   writerState
	seq uint64 // epoch counter
	gen uint64 // mutation counter, stamped on tombstones and overrides

	compactThreshold int // delta size triggering background compaction; <=0 disables
	compacting       bool
	compactDone      *sync.Cond // signalled under mu when a compaction finishes

	// Durability state (see durable.go); all zero on a plain in-memory
	// overlay. batchSeq counts applied batches (each Apply is one WAL
	// batch), baseBatch is the batch cut baked into w.base, replaying is
	// true between OpenDurable and the end of Recover.
	batchSeq  uint64
	baseBatch uint64
	replaying bool
	dur       *durability
}

// OverlayOption configures an Overlay at construction.
type OverlayOption func(*Overlay)

// WithCompactThreshold sets the delta size (new elements + tombstones +
// overrides) at which Apply triggers a background compaction. n <= 0
// disables automatic compaction; Compact can still be called explicitly.
func WithCompactThreshold(n int) OverlayOption {
	return func(ov *Overlay) { ov.compactThreshold = n }
}

// nodeOver is a base-node override: the full replacement record (labels
// and properties as they now stand) plus the mutation generation that last
// touched it, which compaction uses to tell baked-in overrides from ones
// applied while it was running.
type nodeOver struct {
	rec *Node
	gen uint64
}

// edgeOver is a base-edge override (properties only; an edge's endpoints,
// direction and labels are fixed at insertion).
type edgeOver struct {
	rec *Edge
	gen uint64
}

// deltaStep is one traversal step contributed by a delta edge, mirroring
// the CSR incidence arena's (edge, other, kind) triples with global dense
// indices.
type deltaStep struct {
	edge  int32
	other int32
	kind  StepKind
}

// writerState is the writer-owned mutable delta. It always mirrors the
// most recently published snapshot exactly (Apply publishes at the end of
// every batch), so validation can read the published epoch. All access is
// under Overlay.mu.
type writerState struct {
	base *CSR

	nodes    []*Node // delta nodes; element i has global index baseN+i
	edges    []*Edge
	edgeEnds [][2]int32

	nodeIdx map[NodeID]ElemIdx // live-id lookup for delta elements
	edgeIdx map[EdgeID]ElemIdx

	adj map[int32][]deltaStep // delta steps per node (base or delta)

	deadN map[ElemIdx]uint64 // tombstones → generation of the delete
	deadE map[ElemIdx]uint64

	overN map[ElemIdx]nodeOver // base-element overrides
	overE map[ElemIdx]edgeOver

	liveN, liveE int
}

// NewOverlay layers a mutable delta over an immutable CSR base. The base
// must not be shared with concurrent mutators (CSRs are immutable, so any
// previously taken snapshot qualifies).
func NewOverlay(base *CSR, opts ...OverlayOption) *Overlay {
	ov := &Overlay{compactThreshold: DefaultCompactThreshold}
	ov.w = writerState{
		base:    base,
		nodeIdx: map[NodeID]ElemIdx{},
		edgeIdx: map[EdgeID]ElemIdx{},
		adj:     map[int32][]deltaStep{},
		deadN:   map[ElemIdx]uint64{},
		deadE:   map[ElemIdx]uint64{},
		overN:   map[ElemIdx]nodeOver{},
		overE:   map[ElemIdx]edgeOver{},
		liveN:   base.NumNodes(),
		liveE:   base.NumEdges(),
	}
	for _, f := range opts {
		f(ov)
	}
	ov.compactDone = sync.NewCond(&ov.mu)
	ov.mu.Lock()
	ov.publishLocked()
	ov.mu.Unlock()
	return ov
}

// Snapshot returns the current epoch's immutable snapshot. The snapshot is
// a full Store (and Stepper) and stays valid — and unchanged — forever;
// queries that must not observe later mutations evaluate against it.
func (ov *Overlay) Snapshot() *OverlaySnap { return ov.cur.Load() }

// PinEpoch implements EpochSource.
func (ov *Overlay) PinEpoch() Store { return ov.cur.Load() }

// Wait blocks until any in-flight background compaction (including ones
// it chains into) has finished. Useful in tests and before process
// shutdown; readers never need it.
func (ov *Overlay) Wait() {
	ov.mu.Lock()
	for ov.compacting {
		ov.compactDone.Wait()
	}
	ov.mu.Unlock()
}

// opKind discriminates batch operations.
type opKind uint8

const (
	opAddNode opKind = iota
	opAddEdge
	opDelNode
	opDelEdge
	opSetNodeProp
	opSetEdgeProp
	opSetNodeLabels
)

// op is one staged mutation.
type op struct {
	kind     opKind
	id       string
	src, dst NodeID
	dir      Direction
	labels   []string
	props    map[string]value.Value
	key      string
	val      value.Value
}

// Batch stages mutations for one atomic Apply. Methods are fluent and
// never fail; staging errors (none today — validation happens in Apply
// against the then-current epoch) and conflicts surface from Apply. A
// Batch is not safe for concurrent use and must not be reused after Apply.
type Batch struct {
	ops []op
}

// Begin starts an empty mutation batch.
func (ov *Overlay) Begin() *Batch { return &Batch{} }

// AddNode stages a node insertion. Labels are copied, sorted and
// deduplicated on apply, exactly as Graph.AddNode normalizes them.
func (b *Batch) AddNode(id NodeID, labels []string, props map[string]value.Value) *Batch {
	b.ops = append(b.ops, op{kind: opAddNode, id: string(id), labels: labels, props: props})
	return b
}

// AddEdge stages a directed edge insertion from src to dst.
func (b *Batch) AddEdge(id EdgeID, src, dst NodeID, labels []string, props map[string]value.Value) *Batch {
	b.ops = append(b.ops, op{kind: opAddEdge, id: string(id), src: src, dst: dst, dir: Directed, labels: labels, props: props})
	return b
}

// AddUndirectedEdge stages an undirected edge insertion connecting u and v.
func (b *Batch) AddUndirectedEdge(id EdgeID, u, v NodeID, labels []string, props map[string]value.Value) *Batch {
	b.ops = append(b.ops, op{kind: opAddEdge, id: string(id), src: u, dst: v, dir: Undirected, labels: labels, props: props})
	return b
}

// DeleteNode stages a detaching node deletion: the node and every edge
// still incident to it (base or delta) are tombstoned together, so a live
// edge never references a dead endpoint.
func (b *Batch) DeleteNode(id NodeID) *Batch {
	b.ops = append(b.ops, op{kind: opDelNode, id: string(id)})
	return b
}

// DeleteEdge stages an edge deletion.
func (b *Batch) DeleteEdge(id EdgeID) *Batch {
	b.ops = append(b.ops, op{kind: opDelEdge, id: string(id)})
	return b
}

// SetNodeProp stages a single-property update on a node. The element keeps
// its interned index; only the record readers resolve changes.
func (b *Batch) SetNodeProp(id NodeID, key string, v value.Value) *Batch {
	b.ops = append(b.ops, op{kind: opSetNodeProp, id: string(id), key: key, val: v})
	return b
}

// SetEdgeProp stages a single-property update on an edge.
func (b *Batch) SetEdgeProp(id EdgeID, key string, v value.Value) *Batch {
	b.ops = append(b.ops, op{kind: opSetEdgeProp, id: string(id), key: key, val: v})
	return b
}

// SetNodeLabels stages a full label replacement on a node (normalized like
// AddNode); removing and later re-adding a label round-trips exactly.
func (b *Batch) SetNodeLabels(id NodeID, labels []string) *Batch {
	b.ops = append(b.ops, op{kind: opSetNodeLabels, id: string(id), labels: labels})
	return b
}

// Len reports the number of staged operations.
func (b *Batch) Len() int { return len(b.ops) }

// Apply validates and applies a batch atomically: either every operation
// takes effect and one new epoch is published, or the overlay is left on
// its previous epoch and an error describing the first conflict is
// returned. Readers holding earlier snapshots are unaffected either way.
func (ov *Overlay) Apply(b *Batch) error {
	ov.mu.Lock()
	defer ov.mu.Unlock()
	if err := ov.validateLocked(b); err != nil {
		return err
	}
	// Log-then-publish: on a durable overlay the batch must be on disk
	// (per the fsync policy) before any of it becomes visible. A failed
	// append leaves the overlay on its previous epoch.
	if ov.dur != nil {
		if err := ov.dur.logBatchLocked(ov.batchSeq+1, ov.seq+1, b); err != nil {
			return err
		}
	}
	ov.batchSeq++
	for i := range b.ops {
		ov.gen++
		ov.applyLocked(&b.ops[i])
	}
	snap := ov.publishLocked()
	ov.maybeCompactLocked(snap)
	return nil
}

// validateLocked checks every staged op against the current epoch plus the
// batch's own earlier effects, without mutating anything.
func (ov *Overlay) validateLocked(b *Batch) error {
	cur := ov.cur.Load()
	// liveness overrides accumulated by the batch itself: present-and-true
	// means created (or still live), present-and-false means deleted.
	nodeOvr := map[NodeID]bool{}
	edgeOvr := map[EdgeID]bool{}
	// stagedAdj tracks edges the batch itself adds, per endpoint, so a
	// later DeleteNode in the same batch detaches them in the shadow state.
	stagedAdj := map[NodeID][]EdgeID{}
	nodeLive := func(id NodeID) bool {
		if v, ok := nodeOvr[id]; ok {
			return v
		}
		_, ok := cur.InternNode(id)
		return ok
	}
	edgeLive := func(id EdgeID) bool {
		if v, ok := edgeOvr[id]; ok {
			return v
		}
		_, ok := cur.InternEdge(id)
		return ok
	}
	for i := range b.ops {
		o := &b.ops[i]
		switch o.kind {
		case opAddNode:
			if nodeLive(NodeID(o.id)) {
				return fmt.Errorf("overlay: duplicate node id %q", o.id)
			}
			if edgeLive(EdgeID(o.id)) {
				return fmt.Errorf("overlay: id %q already used by an edge (N and E must be disjoint)", o.id)
			}
			nodeOvr[NodeID(o.id)] = true
		case opAddEdge:
			if edgeLive(EdgeID(o.id)) {
				return fmt.Errorf("overlay: duplicate edge id %q", o.id)
			}
			if nodeLive(NodeID(o.id)) {
				return fmt.Errorf("overlay: id %q already used by a node (N and E must be disjoint)", o.id)
			}
			if !nodeLive(o.src) {
				return fmt.Errorf("overlay: edge %q references unknown node %q", o.id, o.src)
			}
			if !nodeLive(o.dst) {
				return fmt.Errorf("overlay: edge %q references unknown node %q", o.id, o.dst)
			}
			edgeOvr[EdgeID(o.id)] = true
			stagedAdj[o.src] = append(stagedAdj[o.src], EdgeID(o.id))
			if o.dst != o.src {
				stagedAdj[o.dst] = append(stagedAdj[o.dst], EdgeID(o.id))
			}
		case opDelNode:
			if !nodeLive(NodeID(o.id)) {
				return fmt.Errorf("overlay: delete of unknown node %q", o.id)
			}
			nodeOvr[NodeID(o.id)] = false
			// Detach semantics: incident edges die with the node, so mark
			// them dead in the shadow state too — both edges live in the
			// current epoch and edges this batch staged.
			cur.Incident(NodeID(o.id), func(e *Edge) bool {
				edgeOvr[e.ID] = false
				return true
			})
			for _, eid := range stagedAdj[NodeID(o.id)] {
				edgeOvr[eid] = false
			}
		case opDelEdge:
			if !edgeLive(EdgeID(o.id)) {
				return fmt.Errorf("overlay: delete of unknown edge %q", o.id)
			}
			edgeOvr[EdgeID(o.id)] = false
		case opSetNodeProp, opSetNodeLabels:
			if !nodeLive(NodeID(o.id)) {
				return fmt.Errorf("overlay: update of unknown node %q", o.id)
			}
		case opSetEdgeProp:
			if !edgeLive(EdgeID(o.id)) {
				return fmt.Errorf("overlay: update of unknown edge %q", o.id)
			}
		}
	}
	return nil
}

// applyLocked executes one validated op against the writer state.
func (ov *Overlay) applyLocked(o *op) {
	w := &ov.w
	switch o.kind {
	case opAddNode:
		idx := ElemIdx(w.base.NodeIndexSpan() + len(w.nodes))
		w.nodes = append(w.nodes, &Node{ID: NodeID(o.id), Labels: normLabels(o.labels), Props: copyProps(o.props)})
		w.nodeIdx[NodeID(o.id)] = idx
		w.liveN++
	case opAddEdge:
		gidx := int32(w.base.EdgeIndexSpan() + len(w.edges))
		si, _ := ov.resolveNodeLocked(o.src)
		ti, _ := ov.resolveNodeLocked(o.dst)
		e := &Edge{ID: EdgeID(o.id), Source: o.src, Target: o.dst, Direction: o.dir, Labels: normLabels(o.labels), Props: copyProps(o.props)}
		w.edges = append(w.edges, e)
		w.edgeEnds = append(w.edgeEnds, [2]int32{int32(si), int32(ti)})
		w.edgeIdx[EdgeID(o.id)] = ElemIdx(gidx)
		s32, t32 := int32(si), int32(ti)
		switch {
		case o.dir == Undirected:
			w.adj[s32] = append(w.adj[s32], deltaStep{gidx, t32, StepUndirected})
			if s32 != t32 {
				w.adj[t32] = append(w.adj[t32], deltaStep{gidx, s32, StepUndirected})
			}
		case s32 == t32:
			w.adj[s32] = append(w.adj[s32], deltaStep{gidx, s32, StepLoop})
		default:
			w.adj[s32] = append(w.adj[s32], deltaStep{gidx, t32, StepOut})
			w.adj[t32] = append(w.adj[t32], deltaStep{gidx, s32, StepIn})
		}
		w.liveE++
	case opDelNode:
		idx, _ := ov.resolveNodeLocked(NodeID(o.id))
		// Detach: tombstone every still-live incident edge, base and delta.
		ov.forEachLiveStepLocked(idx, func(edge ElemIdx) {
			if _, dead := w.deadE[edge]; !dead {
				w.deadE[edge] = ov.gen
				w.liveE--
			}
		})
		w.deadN[ElemIdx(idx)] = ov.gen
		delete(w.overN, ElemIdx(idx))
		w.liveN--
	case opDelEdge:
		idx, _ := ov.resolveEdgeLocked(EdgeID(o.id))
		w.deadE[ElemIdx(idx)] = ov.gen
		delete(w.overE, ElemIdx(idx))
		w.liveE--
	case opSetNodeProp:
		idx, _ := ov.resolveNodeLocked(NodeID(o.id))
		rec := cloneNode(ov.effectiveNodeLocked(idx))
		if rec.Props == nil {
			rec.Props = map[string]value.Value{}
		}
		rec.Props[o.key] = o.val
		ov.putNodeRecLocked(idx, rec)
	case opSetNodeLabels:
		idx, _ := ov.resolveNodeLocked(NodeID(o.id))
		rec := cloneNode(ov.effectiveNodeLocked(idx))
		rec.Labels = normLabels(o.labels)
		ov.putNodeRecLocked(idx, rec)
	case opSetEdgeProp:
		idx, _ := ov.resolveEdgeLocked(EdgeID(o.id))
		old := ov.effectiveEdgeLocked(idx)
		rec := cloneEdge(old)
		if rec.Props == nil {
			rec.Props = map[string]value.Value{}
		}
		rec.Props[o.key] = o.val
		if idx < ov.w.base.EdgeIndexSpan() {
			ov.w.overE[ElemIdx(idx)] = edgeOver{rec, ov.gen}
		} else {
			ov.w.edges[idx-ov.w.base.EdgeIndexSpan()] = rec
		}
	}
}

// resolveNodeLocked maps a live node id to its global dense index.
func (ov *Overlay) resolveNodeLocked(id NodeID) (int, bool) {
	if i, ok := ov.w.nodeIdx[id]; ok {
		if _, dead := ov.w.deadN[i]; !dead {
			return int(i), true
		}
		return 0, false
	}
	if i, ok := ov.w.base.InternNode(id); ok {
		if _, dead := ov.w.deadN[i]; !dead {
			return int(i), true
		}
	}
	return 0, false
}

// resolveEdgeLocked maps a live edge id to its global dense index.
func (ov *Overlay) resolveEdgeLocked(id EdgeID) (int, bool) {
	if i, ok := ov.w.edgeIdx[id]; ok {
		if _, dead := ov.w.deadE[i]; !dead {
			return int(i), true
		}
		return 0, false
	}
	if i, ok := ov.w.base.InternEdge(id); ok {
		if _, dead := ov.w.deadE[i]; !dead {
			return int(i), true
		}
	}
	return 0, false
}

// effectiveNodeLocked returns the current record of a live node index.
func (ov *Overlay) effectiveNodeLocked(idx int) *Node {
	w := &ov.w
	if idx >= w.base.NodeIndexSpan() {
		return w.nodes[idx-w.base.NodeIndexSpan()]
	}
	if o, ok := w.overN[ElemIdx(idx)]; ok {
		return o.rec
	}
	return w.base.rawNode(idx)
}

// effectiveEdgeLocked returns the current record of a live edge index.
func (ov *Overlay) effectiveEdgeLocked(idx int) *Edge {
	w := &ov.w
	if idx >= w.base.EdgeIndexSpan() {
		return w.edges[idx-w.base.EdgeIndexSpan()]
	}
	if o, ok := w.overE[ElemIdx(idx)]; ok {
		return o.rec
	}
	return w.base.rawEdge(idx)
}

// putNodeRecLocked installs an updated node record: delta records are
// replaced copy-on-write (published snapshots hold the old pointer in
// their own cloned slice), base records gain an override stamped with the
// current generation.
func (ov *Overlay) putNodeRecLocked(idx int, rec *Node) {
	if idx >= ov.w.base.NodeIndexSpan() {
		ov.w.nodes[idx-ov.w.base.NodeIndexSpan()] = rec
		return
	}
	ov.w.overN[ElemIdx(idx)] = nodeOver{rec, ov.gen}
}

// forEachLiveStepLocked visits the distinct edges currently incident to a
// node index — base arena steps plus delta steps — without liveness
// filtering of the node itself (the caller is deleting it).
func (ov *Overlay) forEachLiveStepLocked(idx int, f func(edge ElemIdx)) {
	w := &ov.w
	if idx < w.base.NodeIndexSpan() {
		w.base.Steps(idx, func(edge, other int, kind StepKind) bool {
			f(ElemIdx(edge))
			return true
		})
	}
	for _, d := range w.adj[int32(idx)] {
		f(ElemIdx(d.edge))
	}
}

// cloneNode copies a node record with a private Props map (labels are
// replaced wholesale by SetNodeLabels, never mutated in place, so the
// slice may be shared).
func cloneNode(n *Node) *Node {
	c := *n
	c.Props = copyProps(n.Props)
	return &c
}

// cloneEdge copies an edge record with a private Props map.
func cloneEdge(e *Edge) *Edge {
	c := *e
	c.Props = copyProps(e.Props)
	return &c
}

// The Overlay's own Store implementation delegates every read to the
// current epoch, pinned per call. Point reads through it are correct but
// multi-call consistency is not guaranteed across an Apply; evaluation
// pins one snapshot per query via Pin, and callers wanting a stable view
// hold a Snapshot.

// Node returns the node with the given id in the current epoch, or nil.
func (ov *Overlay) Node(id NodeID) *Node { return ov.cur.Load().Node(id) }

// Edge returns the edge with the given id in the current epoch, or nil.
func (ov *Overlay) Edge(id EdgeID) *Edge { return ov.cur.Load().Edge(id) }

// NumNodes reports |N| in the current epoch.
func (ov *Overlay) NumNodes() int { return ov.cur.Load().NumNodes() }

// NumEdges reports |E| in the current epoch.
func (ov *Overlay) NumEdges() int { return ov.cur.Load().NumEdges() }

// Nodes iterates the current epoch's live nodes in insertion order.
func (ov *Overlay) Nodes(f func(*Node) bool) { ov.cur.Load().Nodes(f) }

// Edges iterates the current epoch's live edges in insertion order.
func (ov *Overlay) Edges(f func(*Edge) bool) { ov.cur.Load().Edges(f) }

// Incident iterates the live edges touching n in the current epoch.
func (ov *Overlay) Incident(n NodeID, f func(*Edge) bool) { ov.cur.Load().Incident(n, f) }

// Degree reports the number of live edges incident to n.
func (ov *Overlay) Degree(n NodeID) int { return ov.cur.Load().Degree(n) }

// NodesWithLabel iterates the current epoch's nodes carrying the label.
func (ov *Overlay) NodesWithLabel(label string, f func(*Node) bool) {
	ov.cur.Load().NodesWithLabel(label, f)
}

// CountNodesWithLabel counts the label's nodes in the current epoch.
func (ov *Overlay) CountNodesWithLabel(label string) int {
	return ov.cur.Load().CountNodesWithLabel(label)
}

// LabelStats reports the current epoch's cardinality statistics.
func (ov *Overlay) LabelStats() StoreStats { return ov.cur.Load().LabelStats() }

// InternNode maps a node id to its stable dense index.
func (ov *Overlay) InternNode(id NodeID) (ElemIdx, bool) { return ov.cur.Load().InternNode(id) }

// InternEdge maps an edge id to its stable dense index.
func (ov *Overlay) InternEdge(id EdgeID) (ElemIdx, bool) { return ov.cur.Load().InternEdge(id) }

// NodeAt returns the node at a dense index, or nil.
func (ov *Overlay) NodeAt(i ElemIdx) *Node { return ov.cur.Load().NodeAt(i) }

// EdgeAt returns the edge at a dense index, or nil.
func (ov *Overlay) EdgeAt(i ElemIdx) *Edge { return ov.cur.Load().EdgeAt(i) }
