package graph

import (
	"fmt"
	"reflect"
	"testing"

	"gpml/internal/value"
)

// partitionTestGraph builds a pseudo-random multigraph (LCG-driven, no
// dataset dependency to keep the package acyclic) large enough that every
// partition of a small count is non-empty and cross-partition edges are
// the common case.
func partitionTestGraph(t *testing.T, nodes, edges int) *Graph {
	t.Helper()
	g := New()
	labels := [][]string{{"Person"}, {"Forum"}, {"Post"}, {"Person", "Moderator"}, nil}
	state := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for i := 0; i < nodes; i++ {
		if err := g.AddNode(NodeID(fmt.Sprintf("n%d", i)), labels[next(len(labels))],
			map[string]value.Value{"ord": value.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < edges; i++ {
		src := NodeID(fmt.Sprintf("n%d", next(nodes)))
		tgt := NodeID(fmt.Sprintf("n%d", next(nodes)))
		id := EdgeID(fmt.Sprintf("e%d", i))
		var err error
		if next(4) == 0 {
			err = g.AddUndirectedEdge(id, src, tgt, []string{"knows"}, nil)
		} else {
			err = g.AddEdge(id, src, tgt, []string{"likes"}, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestPartitionedStoreConformance runs the structural Store suite over
// several partition counts (including more partitions than some shards
// can fill) and both arena backings.
func TestPartitionedStoreConformance(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"corner", conformanceGraph(t)},
		{"random", partitionTestGraph(t, 200, 600)},
	} {
		for _, parts := range []int{1, 2, 3, 8, 64} {
			for _, mm := range []bool{false, true} {
				name := fmt.Sprintf("%s/parts=%d/mmap=%v", tc.name, parts, mm)
				p := PartitionSnapshot(tc.g, PartitionOptions{Partitions: parts, Mmap: mm})
				storeConformance(t, name, tc.g, p)
				if got := p.NumPartitions(); got != parts {
					t.Errorf("%s: NumPartitions = %d, want %d", name, got, parts)
				}
				if err := p.Close(); err != nil {
					t.Errorf("%s: Close: %v", name, err)
				}
			}
		}
	}
}

// TestPartitionedStepperMatchesCSR demands byte-identical Stepper and
// SortedStepper behaviour between the partitioned arenas and a single
// CSR: same step order per node, same sorted windows, same endpoints,
// same seed lists.
func TestPartitionedStepperMatchesCSR(t *testing.T) {
	g := partitionTestGraph(t, 300, 1200)
	c := Snapshot(g)
	for _, parts := range []int{1, 3, 4, 7} {
		p := PartitionSnapshot(g, PartitionOptions{Partitions: parts})
		name := fmt.Sprintf("parts=%d", parts)
		if p.NodeIndexSpan() != c.NodeIndexSpan() {
			t.Fatalf("%s: span %d vs %d", name, p.NodeIndexSpan(), c.NodeIndexSpan())
		}
		type step struct {
			edge, other int
			kind        StepKind
		}
		for i := 0; i < c.NodeIndexSpan(); i++ {
			var want, got []step
			c.Steps(i, func(e, o int, k StepKind) bool { want = append(want, step{e, o, k}); return true })
			p.Steps(i, func(e, o int, k StepKind) bool { got = append(got, step{e, o, k}); return true })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: Steps(%d) = %v, want %v", name, i, got, want)
			}
			co, ce, ck := c.SortedSteps(i)
			po, pe, pk := p.SortedSteps(i)
			if !reflect.DeepEqual(po, co) || !reflect.DeepEqual(pe, ce) || !reflect.DeepEqual(pk, ck) {
				t.Fatalf("%s: SortedSteps(%d) diverges from CSR", name, i)
			}
		}
		for i := 0; i < c.EdgeIndexSpan(); i++ {
			cs, ct := c.EdgeEnds(i)
			ps, pt := p.EdgeEnds(i)
			if cs != ps || ct != pt {
				t.Fatalf("%s: EdgeEnds(%d) = (%d,%d), want (%d,%d)", name, i, ps, pt, cs, ct)
			}
		}
		for _, label := range append(g.Labels(), "NoSuchLabel") {
			var want, got []int
			c.NodesWithLabelIdx(label, func(i int) bool { want = append(want, i); return true })
			p.NodesWithLabelIdx(label, func(i int) bool { got = append(got, i); return true })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: NodesWithLabelIdx(%s) = %v, want %v", name, label, got, want)
			}
		}
		// Early stop on Steps.
		count := 0
		p.Steps(0, func(int, int, StepKind) bool { count++; return false })
		if c.Degree(c.NodeByIndex(0).ID) > 0 && count != 1 {
			t.Fatalf("%s: Steps ignored early stop (%d visits)", name, count)
		}
		// AsSorted must resolve the native sorted view.
		if ss, ok := AsSorted(p); !ok {
			t.Fatalf("%s: AsSorted reported no sorted view", name)
		} else if ss != SortedStepper(p) {
			t.Fatalf("%s: AsSorted returned a non-native view %T", name, ss)
		}
	}
}

// TestPartitionedInternerAgreement pins the cross-backend ElemIdx
// contract: the map graph, the CSR snapshot, and the partitioned
// snapshot must agree index-for-index on every node and edge.
func TestPartitionedInternerAgreement(t *testing.T) {
	g := partitionTestGraph(t, 150, 400)
	c := Snapshot(g)
	p := PartitionSnapshot(g, PartitionOptions{Partitions: 3})
	g.Nodes(func(n *Node) bool {
		gi, ok1 := g.InternNode(n.ID)
		ci, ok2 := c.InternNode(n.ID)
		pi, ok3 := p.InternNode(n.ID)
		if !ok1 || !ok2 || !ok3 || gi != ci || ci != pi {
			t.Fatalf("node %q: intern disagree map=%d csr=%d part=%d", n.ID, gi, ci, pi)
		}
		if got := p.NodeAt(pi); got == nil || got.ID != n.ID {
			t.Fatalf("node %q: NodeAt(%d) = %v", n.ID, pi, got)
		}
		return true
	})
	g.Edges(func(e *Edge) bool {
		gi, ok1 := g.InternEdge(e.ID)
		ci, ok2 := c.InternEdge(e.ID)
		pi, ok3 := p.InternEdge(e.ID)
		if !ok1 || !ok2 || !ok3 || gi != ci || ci != pi {
			t.Fatalf("edge %q: intern disagree map=%d csr=%d part=%d", e.ID, gi, ci, pi)
		}
		if got := p.EdgeAt(pi); got == nil || got.ID != e.ID {
			t.Fatalf("edge %q: EdgeAt(%d) = %v", e.ID, pi, got)
		}
		return true
	})
	if _, ok := p.InternNode("zzz"); ok {
		t.Fatal("InternNode of an unknown id reported ok")
	}
	if p.NodeAt(ElemIdx(g.NumNodes())) != nil || p.EdgeAt(ElemIdx(g.NumEdges())) != nil {
		t.Fatal("out-of-range NodeAt/EdgeAt must return nil")
	}
}

// TestPartitionedSharding checks the hash assignment is total, stable,
// and consistent with the PartitionOf fast path.
func TestPartitionedSharding(t *testing.T) {
	g := partitionTestGraph(t, 128, 0)
	p := PartitionSnapshot(g, PartitionOptions{Partitions: 4})
	counts := make([]int, 4)
	for i := 0; i < p.NodeIndexSpan(); i++ {
		part := p.PartitionOf(i)
		if part != partitionOfIdx(uint32(i), 4) {
			t.Fatalf("PartitionOf(%d) = %d, want %d", i, part, partitionOfIdx(uint32(i), 4))
		}
		counts[part]++
	}
	total := 0
	for part, n := range counts {
		if n == 0 {
			t.Errorf("partition %d is empty for 128 nodes across 4 shards", part)
		}
		total += n
	}
	if total != 128 {
		t.Fatalf("sharded %d nodes, want 128", total)
	}
	// Partitions below 1 clamp to a single shard.
	if q := PartitionSnapshot(g, PartitionOptions{}); q.NumPartitions() != 1 {
		t.Fatalf("zero-partition snapshot has %d partitions, want 1", q.NumPartitions())
	}
}

// TestPartitionedMmapLifecycle exercises the mmap arena path explicitly:
// queries read through the mapped arrays, and Close releases the region.
func TestPartitionedMmapLifecycle(t *testing.T) {
	g := partitionTestGraph(t, 100, 300)
	p := PartitionSnapshot(g, PartitionOptions{Partitions: 2, Mmap: true})
	if !p.MmapBacked() {
		t.Skip("mmap arenas unavailable on this platform")
	}
	c := Snapshot(g)
	for i := 0; i < c.NodeIndexSpan(); i++ {
		var want, got int
		c.Steps(i, func(int, int, StepKind) bool { want++; return true })
		p.Steps(i, func(int, int, StepKind) bool { got++; return true })
		if got != want {
			t.Fatalf("mmap Steps(%d): %d steps, want %d", i, got, want)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
