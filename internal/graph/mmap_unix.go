//go:build unix

package graph

import (
	"os"
	"syscall"
	"unsafe"
)

// mmapArena is one contiguous mmap-backed region the partitioned
// snapshot carves its flat adjacency arrays out of. The backing file is
// created in the default temp directory, sized with Truncate, mapped
// shared read-write, and unlinked immediately — the mapping keeps the
// storage alive, the pages are file-backed (reclaimable under memory
// pressure) rather than Go heap, and nothing is left on disk after
// Close or process exit.
type mmapArena struct {
	data []byte
	off  int
}

// newMmapArena maps a region of at least size bytes. Any failure returns
// a nil arena (callers fall back to heap slices).
func newMmapArena(size int) (*mmapArena, error) {
	if size <= 0 {
		size = 1
	}
	f, err := os.CreateTemp("", "gpml-arena-*")
	if err != nil {
		return nil, err
	}
	// Unlink first so the file cannot outlive the mapping even on a
	// crash; the fd (and then the mapping) keeps it readable.
	name := f.Name()
	defer f.Close()
	if err := os.Remove(name); err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(size)); err != nil {
		return nil, err
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &mmapArena{data: data}, nil
}

// align advances the carve offset to a multiple of n (a power of two).
func (a *mmapArena) align(n int) {
	a.off = (a.off + n - 1) &^ (n - 1)
}

// int32s carves an int32 view of the next 4n bytes.
func (a *mmapArena) int32s(n int) []int32 {
	if n == 0 {
		return nil
	}
	a.align(4)
	s := unsafe.Slice((*int32)(unsafe.Pointer(&a.data[a.off])), n)
	a.off += 4 * n
	return s
}

// kinds carves a StepKind view of the next n bytes.
func (a *mmapArena) kinds(n int) []StepKind {
	if n == 0 {
		return nil
	}
	s := unsafe.Slice((*StepKind)(unsafe.Pointer(&a.data[a.off])), n)
	a.off += n
	return s
}

// mapFileRO maps size bytes of f read-only and shared. The mapping stays
// valid after f is closed; the caller owns its lifetime.
func mapFileRO(f *os.File, size int) ([]byte, error) {
	if size <= 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// Close unmaps the region; all carved slices become invalid.
func (a *mmapArena) Close() error {
	data := a.data
	a.data = nil
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
