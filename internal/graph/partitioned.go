package graph

import (
	"fmt"
	"slices"
	"strings"
)

// Partitioned is an immutable snapshot that hash-shards interned node
// indices across N per-partition CSR arenas. Element records, the id
// interner, and the label index stay global — an ElemIdx issued by a
// Partitioned store is the same insertion-order index every other backend
// assigns, so bindings, join keys, and result rows are backend-agnostic.
// Only the adjacency arenas are sharded: node i's incidence window lives
// in the arena of partition PartitionOf(i), and every edge is stored with
// its source's partition (the target's partition holds the reverse step,
// resolved through the global index space, so a cross-partition step is
// an ordinary array read — no pointer chasing between shards).
//
// Within each node's window, steps appear in global edge insertion order,
// exactly as in a single CSR; every iteration method is therefore
// byte-identical to the CSR and map backends. Each partition also carries
// the (neighbour, edge)-sorted permutation of its windows, so the store
// implements SortedStepper and WCO intersection plans keep working.
//
// A Partitioned snapshot is safe for any number of concurrent readers and
// never changes. With PartitionOptions.Mmap the arenas are carved from one
// unlinked mmap-backed temp file (unix builds), keeping the flat arrays
// out of the Go heap; Close releases the mapping.
type Partitioned struct {
	nodes []Node
	edges []Edge

	nodeIdx map[NodeID]int32
	edgeIdx map[EdgeID]int32

	edgeSrc []int32
	edgeTgt []int32

	labelNodes map[string][]int32

	// partOf maps a global node index to its partition; local maps it to
	// its row within that partition's offset table.
	partOf []int32
	local  []int32

	parts []partArena

	arena *mmapArena // non-nil when the arenas are mmap-backed

	stats StoreStats
}

// partArena is one partition's CSR adjacency: node rows are the
// partition's nodes in ascending global index order, and the edge/other
// entries hold global indices.
type partArena struct {
	// off[l]:off[l+1] bounds local row l's window.
	off   []int32
	edge  []int32
	other []int32
	kind  []StepKind

	// Sorted permutation of each window, ascending by (other, edge) —
	// the same invariant as CSR.sortEdge/sortOther/sortKind.
	sortEdge  []int32
	sortOther []int32
	sortKind  []StepKind
}

// PartitionedView is implemented by stores that shard their adjacency
// arenas. The streaming evaluator uses it to scatter per-partition seed
// ranges to workers pinned to one partition's arena, keeping the hot
// expansion loop inside one shard's memory.
type PartitionedView interface {
	// NumPartitions reports the shard count (>= 1).
	NumPartitions() int
	// PartitionOf maps a dense node index to its partition.
	PartitionOf(i int) int
}

// PartitionOptions configures PartitionSnapshot.
type PartitionOptions struct {
	// Partitions is the shard count; values below 1 are treated as 1.
	Partitions int
	// Mmap carves the adjacency arenas out of one mmap-backed unlinked
	// temp file instead of the Go heap (unix builds; elsewhere, and when
	// the mapping fails, the builder falls back to heap slices).
	Mmap bool
}

// partitionOfIdx is the sharding function: a Fibonacci multiplicative
// hash of the interned node index, reduced modulo the partition count.
// The multiplier scrambles low bits so runs of consecutively interned
// nodes spread evenly instead of landing in one shard.
func partitionOfIdx(i uint32, parts int) int {
	return int((i * 0x9E3779B1) % uint32(parts))
}

// PartitionSnapshot builds a hash-partitioned snapshot of g with
// opt.Partitions per-partition CSR arenas. Like Snapshot, it copies node
// and edge records (labels and property maps are shared structurally with
// the source graph, which must not be mutated concurrently with the
// build).
func PartitionSnapshot(g *Graph, opt PartitionOptions) *Partitioned {
	nparts := opt.Partitions
	if nparts < 1 {
		nparts = 1
	}
	p := &Partitioned{
		nodes:      make([]Node, 0, g.NumNodes()),
		edges:      make([]Edge, 0, g.NumEdges()),
		nodeIdx:    make(map[NodeID]int32, g.NumNodes()),
		edgeIdx:    make(map[EdgeID]int32, g.NumEdges()),
		labelNodes: map[string][]int32{},
		parts:      make([]partArena, nparts),
		stats: StoreStats{
			Nodes:      g.NumNodes(),
			Edges:      g.NumEdges(),
			NodeLabels: map[string]int{},
			EdgeLabels: map[string]int{},
			Partitions: nparts,
		},
	}
	g.Nodes(func(n *Node) bool {
		i := int32(len(p.nodes))
		p.nodes = append(p.nodes, *n)
		p.nodeIdx[n.ID] = i
		for _, l := range n.Labels {
			p.labelNodes[l] = append(p.labelNodes[l], i)
			p.stats.NodeLabels[l]++
		}
		return true
	})
	g.Edges(func(e *Edge) bool {
		p.edgeIdx[e.ID] = int32(len(p.edges))
		p.edges = append(p.edges, *e)
		for _, l := range e.Labels {
			p.stats.EdgeLabels[l]++
		}
		return true
	})

	// Shard: assign each node its partition and local row. Rows are
	// assigned in ascending global order, so a partition's node list
	// ascends and label/seed scans touch each arena front to back.
	p.partOf = make([]int32, len(p.nodes))
	p.local = make([]int32, len(p.nodes))
	rows := make([]int32, nparts)
	for i := range p.nodes {
		part := int32(partitionOfIdx(uint32(i), nparts))
		p.partOf[i] = part
		p.local[i] = rows[part]
		rows[part]++
	}

	// Count per-node degrees exactly as Snapshot does (a self-loop is
	// incident once), bucketed by the owning partition.
	deg := make([]int32, len(p.nodes))
	p.edgeSrc = make([]int32, len(p.edges))
	p.edgeTgt = make([]int32, len(p.edges))
	for i := range p.edges {
		e := &p.edges[i]
		p.edgeSrc[i] = p.nodeIdx[e.Source]
		p.edgeTgt[i] = p.nodeIdx[e.Target]
		deg[p.edgeSrc[i]]++
		if e.Source != e.Target {
			deg[p.edgeTgt[i]]++
		}
	}
	steps := make([]int, nparts)
	for i, d := range deg {
		steps[p.partOf[i]] += int(d)
	}

	// Lay out the arenas, optionally inside one mmap region sized for
	// every partition's arrays.
	if opt.Mmap {
		total := 0
		for part := range p.parts {
			total += arenaBytes(int(rows[part]), steps[part])
		}
		p.arena, _ = newMmapArena(total) // nil on failure: heap fallback
	}
	for part := range p.parts {
		pa := &p.parts[part]
		n, s := int(rows[part]), steps[part]
		pa.off = arenaInt32s(p.arena, n+1)
		pa.edge = arenaInt32s(p.arena, s)
		pa.other = arenaInt32s(p.arena, s)
		pa.sortEdge = arenaInt32s(p.arena, s)
		pa.sortOther = arenaInt32s(p.arena, s)
		pa.kind = arenaKinds(p.arena, s)
		pa.sortKind = arenaKinds(p.arena, s)
	}
	for i, d := range deg {
		pa := &p.parts[p.partOf[i]]
		l := p.local[i]
		pa.off[l+1] = pa.off[l] + d
	}

	// Fill the windows by iterating edges in global insertion order — the
	// same pass as Snapshot, so each node's window order is identical to
	// the single-CSR arena.
	fill := make([][]int32, nparts)
	for part := range p.parts {
		fill[part] = append([]int32(nil), p.parts[part].off[:rows[part]]...)
	}
	place := func(node, edge, other int32, k StepKind) {
		part, l := p.partOf[node], p.local[node]
		at := fill[part][l]
		pa := &p.parts[part]
		pa.edge[at] = edge
		pa.other[at] = other
		pa.kind[at] = k
		fill[part][l]++
	}
	for i := range p.edges {
		e := &p.edges[i]
		si, ti := p.edgeSrc[i], p.edgeTgt[i]
		switch {
		case e.Direction == Undirected:
			place(si, int32(i), ti, StepUndirected)
			if si != ti {
				place(ti, int32(i), si, StepUndirected)
			}
		case si == ti:
			place(si, int32(i), si, StepLoop)
		default:
			place(si, int32(i), ti, StepOut)
			place(ti, int32(i), si, StepIn)
		}
	}
	p.buildSortedArenas(rows)
	return p
}

// buildSortedArenas derives each partition's (neighbour, edge)-sorted
// window permutation with the same packed-key trick as the CSR builder:
// arena positions within a window ascend by edge index, so sorting
// (other<<32 | position) words yields (other, edge) order.
func (p *Partitioned) buildSortedArenas(rows []int32) {
	for part := range p.parts {
		pa := &p.parts[part]
		keys := make([]uint64, len(pa.edge))
		for a, o := range pa.other {
			keys[a] = uint64(uint32(o))<<32 | uint64(uint32(a))
		}
		for l := int32(0); l < rows[part]; l++ {
			slices.Sort(keys[pa.off[l]:pa.off[l+1]])
		}
		for at, key := range keys {
			src := int32(uint32(key))
			pa.sortEdge[at] = pa.edge[src]
			pa.sortOther[at] = pa.other[src]
			pa.sortKind[at] = pa.kind[src]
		}
	}
}

// Close releases the mmap-backed arena region, if any. A heap-backed
// snapshot's Close is a no-op. The store must not be used afterwards.
func (p *Partitioned) Close() error {
	a := p.arena
	p.arena = nil
	if a == nil {
		return nil
	}
	for part := range p.parts {
		p.parts[part] = partArena{}
	}
	return a.Close()
}

// MmapBacked reports whether the adjacency arenas live in an mmap region
// rather than the Go heap.
func (p *Partitioned) MmapBacked() bool { return p.arena != nil }

// NumPartitions reports the shard count.
func (p *Partitioned) NumPartitions() int { return len(p.parts) }

// PartitionOf maps a dense node index to its partition.
func (p *Partitioned) PartitionOf(i int) int { return int(p.partOf[i]) }

// window bounds node index i's incidence window within its partition.
func (p *Partitioned) window(i int) (pa *partArena, lo, hi int32) {
	pa = &p.parts[p.partOf[i]]
	l := p.local[i]
	return pa, pa.off[l], pa.off[l+1]
}

// Node returns the node with the given id, or nil.
func (p *Partitioned) Node(id NodeID) *Node {
	i, ok := p.nodeIdx[id]
	if !ok {
		return nil
	}
	return &p.nodes[i]
}

// Edge returns the edge with the given id, or nil.
func (p *Partitioned) Edge(id EdgeID) *Edge {
	i, ok := p.edgeIdx[id]
	if !ok {
		return nil
	}
	return &p.edges[i]
}

// NumNodes reports |N|.
func (p *Partitioned) NumNodes() int { return len(p.nodes) }

// NumEdges reports |E|.
func (p *Partitioned) NumEdges() int { return len(p.edges) }

// Nodes iterates nodes in insertion order.
func (p *Partitioned) Nodes(f func(*Node) bool) {
	for i := range p.nodes {
		if !f(&p.nodes[i]) {
			return
		}
	}
}

// Edges iterates edges in insertion order.
func (p *Partitioned) Edges(f func(*Edge) bool) {
	for i := range p.edges {
		if !f(&p.edges[i]) {
			return
		}
	}
}

// Incident iterates the edges touching n in insertion order, off the
// owning partition's arena.
func (p *Partitioned) Incident(n NodeID, f func(*Edge) bool) {
	i, ok := p.nodeIdx[n]
	if !ok {
		return
	}
	pa, lo, hi := p.window(int(i))
	for _, ei := range pa.edge[lo:hi] {
		if !f(&p.edges[ei]) {
			return
		}
	}
}

// Degree reports the number of edges incident to n.
func (p *Partitioned) Degree(n NodeID) int {
	i, ok := p.nodeIdx[n]
	if !ok {
		return 0
	}
	_, lo, hi := p.window(int(i))
	return int(hi - lo)
}

// NodesWithLabel iterates the nodes carrying the label from the global
// inverted index, in insertion order.
func (p *Partitioned) NodesWithLabel(label string, f func(*Node) bool) {
	for _, i := range p.labelNodes[label] {
		if !f(&p.nodes[i]) {
			return
		}
	}
}

// CountNodesWithLabel answers from the inverted index in O(1).
func (p *Partitioned) CountNodesWithLabel(label string) int { return len(p.labelNodes[label]) }

// LabelStats returns the precomputed cardinality statistics (including
// the partition count, which the planner's scatter-aware cost model
// reads).
func (p *Partitioned) LabelStats() StoreStats { return p.stats }

// NodeIndex maps a node id to its dense index.
func (p *Partitioned) NodeIndex(id NodeID) (int, bool) {
	i, ok := p.nodeIdx[id]
	return int(i), ok
}

// NodeByIndex returns the node at a dense index.
func (p *Partitioned) NodeByIndex(i int) *Node { return &p.nodes[i] }

// EdgeByIndex returns the edge at a dense index.
func (p *Partitioned) EdgeByIndex(i int) *Edge { return &p.edges[i] }

// EdgeEnds returns the dense endpoint indices of the edge at index i.
func (p *Partitioned) EdgeEnds(i int) (src, tgt int) {
	return int(p.edgeSrc[i]), int(p.edgeTgt[i])
}

// NodeIndexSpan reports the exclusive upper bound of node indices (no
// dead holes, so it equals NumNodes).
func (p *Partitioned) NodeIndexSpan() int { return len(p.nodes) }

// EdgeIndexSpan reports the exclusive upper bound of edge indices.
func (p *Partitioned) EdgeIndexSpan() int { return len(p.edges) }

// Steps iterates the traversal steps of node index i from its partition's
// arena: global edge index, global neighbour index, and step kind — the
// same values, in the same order, as a single CSR's Steps.
func (p *Partitioned) Steps(i int, f func(edge, other int, kind StepKind) bool) {
	pa, lo, hi := p.window(i)
	for k := lo; k < hi; k++ {
		if !f(int(pa.edge[k]), int(pa.other[k]), pa.kind[k]) {
			return
		}
	}
}

// SortedSteps returns node i's adjacency window sorted by (neighbour,
// edge), off its partition's sorted permutation. The slices alias the
// snapshot and must not be mutated.
func (p *Partitioned) SortedSteps(i int) (others, edges []int32, kinds []StepKind) {
	pa, lo, hi := p.window(i)
	return pa.sortOther[lo:hi], pa.sortEdge[lo:hi], pa.sortKind[lo:hi]
}

// NodesWithLabelIdx iterates the dense indices of the nodes carrying the
// label, in insertion order, off the global inverted index.
func (p *Partitioned) NodesWithLabelIdx(label string, f func(i int) bool) {
	for _, i := range p.labelNodes[label] {
		if !f(int(i)) {
			return
		}
	}
}

// InternNode answers from the global dense index (the snapshot layout is
// the interner, exactly as on the CSR backend).
func (p *Partitioned) InternNode(id NodeID) (ElemIdx, bool) {
	i, ok := p.nodeIdx[id]
	return ElemIdx(i), ok
}

// InternEdge maps an edge id to its stable dense index.
func (p *Partitioned) InternEdge(id EdgeID) (ElemIdx, bool) {
	i, ok := p.edgeIdx[id]
	return ElemIdx(i), ok
}

// NodeAt returns the node at a dense index, or nil when out of range.
func (p *Partitioned) NodeAt(i ElemIdx) *Node {
	if int(i) >= len(p.nodes) {
		return nil
	}
	return &p.nodes[i]
}

// EdgeAt returns the edge at a dense index, or nil when out of range.
func (p *Partitioned) EdgeAt(i ElemIdx) *Edge {
	if int(i) >= len(p.edges) {
		return nil
	}
	return &p.edges[i]
}

// Stats summarizes the snapshot, mirroring CSR.Stats.
func (p *Partitioned) Stats() string {
	directed, undirected := 0, 0
	for i := range p.edges {
		if p.edges[i].Direction == Directed {
			directed++
		} else {
			undirected++
		}
	}
	labels := map[string]int{}
	for l, n := range p.stats.NodeLabels {
		labels[l] += n
	}
	for l, n := range p.stats.EdgeLabels {
		labels[l] += n
	}
	backing := "heap"
	if p.arena != nil {
		backing = "mmap"
	}
	return fmt.Sprintf("partitioned parts=%d (%s) nodes=%d edges=%d (directed=%d undirected=%d) labels=%s",
		len(p.parts), backing, len(p.nodes), len(p.edges), directed, undirected,
		strings.Join(sortedLabels(labels), ","))
}

// arenaInt32s allocates n int32 words from the mmap region, or the heap
// when a is nil.
func arenaInt32s(a *mmapArena, n int) []int32 {
	if a != nil {
		return a.int32s(n)
	}
	return make([]int32, n)
}

// arenaKinds allocates n StepKind bytes from the mmap region, or the heap
// when a is nil.
func arenaKinds(a *mmapArena, n int) []StepKind {
	if a != nil {
		return a.kinds(n)
	}
	return make([]StepKind, n)
}

// arenaBytes sizes one partition's arrays: the offset table plus five
// int32 arrays and two kind arrays over s steps, with alignment slack.
func arenaBytes(rows, s int) int {
	return 4*(rows+1) + 4*4*s + 2*s + 8
}

// statically assert the partitioned backend satisfies the full surface.
var (
	_ Store           = (*Partitioned)(nil)
	_ Stepper         = (*Partitioned)(nil)
	_ SortedStepper   = (*Partitioned)(nil)
	_ PartitionedView = (*Partitioned)(nil)
)
