package graph

// The ID interner: every Store assigns each node and edge a stable dense
// index (ElemIdx), and the whole execution path — binding entries, dedup
// keys, join keys, engine positions — runs on those integers. Element id
// strings are materialized only when a result row (or a canonical sort
// key) is rendered.
//
// Index assignment is insertion order on every backend, so the map graph
// and a CSR snapshot of it agree index-for-index: bindings produced
// against one backend materialize to the same ids against the other.
// Since both backends are append-only (elements are never removed),
// indices are stable across mutations of the map backend; its lazily
// built table is simply discarded and rebuilt — to identical prefixes —
// after each mutation.

// ElemIdx is the stable dense index of a node or edge within one Store.
// Node and edge index spaces are separate (a Ref carries the element
// kind). Indices are only meaningful relative to the store that issued
// them; cross-store equality goes through the materialized ids.
type ElemIdx uint32

// internTable is the map backend's lazily built interner: dense element
// slices in insertion order plus the reverse id → index maps. It is
// immutable once built; *Graph swaps the whole table atomically.
type internTable struct {
	nodes   []*Node
	edges   []*Edge
	nodeIdx map[NodeID]ElemIdx
	edgeIdx map[EdgeID]ElemIdx
}

func buildInternTable(g *Graph) *internTable {
	t := &internTable{
		nodes:   make([]*Node, 0, len(g.nodeOrder)),
		edges:   make([]*Edge, 0, len(g.edgeOrder)),
		nodeIdx: make(map[NodeID]ElemIdx, len(g.nodeOrder)),
		edgeIdx: make(map[EdgeID]ElemIdx, len(g.edgeOrder)),
	}
	for i, id := range g.nodeOrder {
		t.nodes = append(t.nodes, g.nodes[id])
		t.nodeIdx[id] = ElemIdx(i)
	}
	for i, id := range g.edgeOrder {
		t.edges = append(t.edges, g.edges[id])
		t.edgeIdx[id] = ElemIdx(i)
	}
	return t
}

// interner returns the memoized intern table, building it on first use
// after a mutation. Concurrent readers share one build under the
// derived-state mutex; afterwards lookups are a single atomic load.
func (g *Graph) interner() *internTable {
	if t := g.intern.Load(); t != nil {
		return t
	}
	g.derivedMu.Lock()
	defer g.derivedMu.Unlock()
	if t := g.intern.Load(); t != nil {
		return t
	}
	t := buildInternTable(g)
	g.intern.Store(t)
	return t
}

// InternNode maps a node id to its stable dense index.
func (g *Graph) InternNode(id NodeID) (ElemIdx, bool) {
	i, ok := g.interner().nodeIdx[id]
	return i, ok
}

// InternEdge maps an edge id to its stable dense index.
func (g *Graph) InternEdge(id EdgeID) (ElemIdx, bool) {
	i, ok := g.interner().edgeIdx[id]
	return i, ok
}

// NodeAt returns the node at a dense index, or nil when out of range.
func (g *Graph) NodeAt(i ElemIdx) *Node {
	t := g.interner()
	if int(i) >= len(t.nodes) {
		return nil
	}
	return t.nodes[i]
}

// EdgeAt returns the edge at a dense index, or nil when out of range.
func (g *Graph) EdgeAt(i ElemIdx) *Edge {
	t := g.interner()
	if int(i) >= len(t.edges) {
		return nil
	}
	return t.edges[i]
}

// InternNode answers from the CSR's dense index (the snapshot layout is
// the interner).
func (c *CSR) InternNode(id NodeID) (ElemIdx, bool) {
	i, ok := c.nodeIdx[id]
	return ElemIdx(i), ok
}

// InternEdge answers from the CSR's dense index.
func (c *CSR) InternEdge(id EdgeID) (ElemIdx, bool) {
	i, ok := c.edgeIdx[id]
	return ElemIdx(i), ok
}

// NodeAt returns the node at a dense index, or nil when out of range or
// a dead hole (compacted overlay bases only; Snapshot CSRs are fully
// live).
func (c *CSR) NodeAt(i ElemIdx) *Node {
	if int(i) >= len(c.nodes) {
		return nil
	}
	return c.NodeByIndex(int(i))
}

// EdgeAt returns the edge at a dense index, or nil when out of range or a
// dead hole.
func (c *CSR) EdgeAt(i ElemIdx) *Edge {
	if int(i) >= len(c.edges) {
		return nil
	}
	return c.EdgeByIndex(int(i))
}
