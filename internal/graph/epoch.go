package graph

// OverlaySnap — one immutable epoch of an Overlay. publishLocked builds a
// fresh snapshot after every Apply (and after every compaction rebase) by
// cloning the writer's delta maps and record-pointer slices; the clone is
// O(delta), and the delta is bounded by the compaction threshold, so
// publication cost is amortized by batching. Readers share the snapshot
// with zero synchronization: every field is frozen at publish time except
// the lazily computed LabelStats, which is guarded by a sync.Once.

import (
	"maps"
	"slices"
	"sync"
)

// OverlaySnap is one immutable epoch of an Overlay: the CSR base plus the
// delta as of some Apply. It implements Store and Stepper, so every
// cursor, engine, and planner path runs on it unchanged; indices below
// the base span refer to base elements (with overrides and tombstones
// applied), indices at or above it to delta elements.
type OverlaySnap struct {
	base  *CSR
	seq   uint64 // epoch number, ascending
	gen   uint64 // highest mutation generation included
	batch uint64 // newest applied batch included (durable overlays)

	baseN, baseE int // base index spans (node and edge high-water marks)

	nodes    []*Node // delta nodes; element j has global index baseN+j
	edges    []*Edge
	edgeEnds [][2]int32

	nodeIdx map[NodeID]ElemIdx // delta-element id lookup
	edgeIdx map[EdgeID]ElemIdx

	adj map[int32][]deltaStep // delta steps per node (base or delta)

	deadN map[ElemIdx]uint64 // tombstones (generation of the delete)
	deadE map[ElemIdx]uint64

	// deadBaseN/deadBaseE count the tombstones that fall below the base
	// span. When zero, base index ranges contain no dead entries in this
	// epoch, so base adjacency windows and label lists can be served
	// without per-entry tombstone checks (delta-only churn — the common
	// shape between compactions — keeps both at zero).
	deadBaseN, deadBaseE int

	overN map[ElemIdx]nodeOver // base-element record overrides
	overE map[ElemIdx]edgeOver

	liveN, liveE int

	// labelDelta lists, per label and sorted ascending, the indices of
	// overridden base nodes and live delta nodes carrying the label;
	// labelSub counts, per label, the base nodes whose base record carries
	// it but which are tombstoned or overridden in this epoch. Together
	// they turn label counting into O(1) arithmetic over the base index.
	labelDelta map[string][]int32
	labelSub   map[string]int

	// sortedOK reports that this epoch's adjacency is bit-identical to the
	// base CSR's (no delta edges, no edge tombstones), so the sorted-
	// adjacency windows — and with them WCO intersection dispatch — remain
	// exact. Property and label overrides don't affect it.
	sortedOK bool

	statsOnce sync.Once
	stats     StoreStats
}

// publishLocked freezes the writer state into a new epoch and swaps it
// in. Callers hold ov.mu.
func (ov *Overlay) publishLocked() *OverlaySnap {
	w := &ov.w
	ov.seq++
	s := &OverlaySnap{
		base:     w.base,
		seq:      ov.seq,
		gen:      ov.gen,
		batch:    ov.batchSeq,
		baseN:    w.base.NodeIndexSpan(),
		baseE:    w.base.EdgeIndexSpan(),
		nodes:    slices.Clone(w.nodes),
		edges:    slices.Clone(w.edges),
		edgeEnds: slices.Clone(w.edgeEnds),
		nodeIdx:  maps.Clone(w.nodeIdx),
		edgeIdx:  maps.Clone(w.edgeIdx),
		// The adj clone shares the per-node step slices: the writer only
		// ever appends to them, and an append never rewrites an element a
		// published length covers.
		adj:        maps.Clone(w.adj),
		deadN:      maps.Clone(w.deadN),
		deadE:      maps.Clone(w.deadE),
		overN:      maps.Clone(w.overN),
		overE:      maps.Clone(w.overE),
		liveN:      w.liveN,
		liveE:      w.liveE,
		labelDelta: map[string][]int32{},
		labelSub:   map[string]int{},
		sortedOK:   len(w.edges) == 0 && len(w.deadE) == 0,
	}
	for idx, o := range w.overN {
		for _, l := range w.base.rawNode(int(idx)).Labels {
			s.labelSub[l]++
		}
		for _, l := range o.rec.Labels {
			s.labelDelta[l] = append(s.labelDelta[l], int32(idx))
		}
	}
	for idx := range w.deadN {
		if int(idx) < s.baseN {
			s.deadBaseN++
			for _, l := range w.base.rawNode(int(idx)).Labels {
				s.labelSub[l]++
			}
		}
	}
	for idx := range w.deadE {
		if int(idx) < s.baseE {
			s.deadBaseE++
		}
	}
	for j, n := range w.nodes {
		gi := int32(s.baseN + j)
		if _, dead := w.deadN[ElemIdx(gi)]; dead {
			continue
		}
		for _, l := range n.Labels {
			s.labelDelta[l] = append(s.labelDelta[l], gi)
		}
	}
	for _, list := range s.labelDelta {
		slices.Sort(list)
	}
	ov.cur.Store(s)
	return s
}

// Seq reports the epoch number (ascending across Apply and compaction).
func (s *OverlaySnap) Seq() uint64 { return s.seq }

// deltaSize measures the epoch's delta: new elements, tombstones, and
// overrides. It drives the compaction trigger.
func (s *OverlaySnap) deltaSize() int {
	return len(s.nodes) + len(s.edges) + len(s.deadN) + len(s.deadE) + len(s.overN) + len(s.overE)
}

// nodeAtIdx resolves a global node index to its live record: nil when the
// index is tombstoned in this epoch or a dead hole in the base, the
// override record when one applies, the base or delta record otherwise.
func (s *OverlaySnap) nodeAtIdx(i int) *Node {
	if _, dead := s.deadN[ElemIdx(i)]; dead {
		return nil
	}
	if i >= s.baseN {
		if i-s.baseN >= len(s.nodes) {
			return nil
		}
		return s.nodes[i-s.baseN]
	}
	if o, ok := s.overN[ElemIdx(i)]; ok {
		return o.rec
	}
	return s.base.NodeByIndex(i)
}

// edgeAtIdx resolves a global edge index to its live record, or nil.
func (s *OverlaySnap) edgeAtIdx(i int) *Edge {
	if _, dead := s.deadE[ElemIdx(i)]; dead {
		return nil
	}
	if i >= s.baseE {
		if i-s.baseE >= len(s.edges) {
			return nil
		}
		return s.edges[i-s.baseE]
	}
	if o, ok := s.overE[ElemIdx(i)]; ok {
		return o.rec
	}
	return s.base.EdgeByIndex(i)
}

// Node returns the node with the given id, or nil.
func (s *OverlaySnap) Node(id NodeID) *Node {
	if i, ok := s.nodeIdx[id]; ok {
		return s.nodeAtIdx(int(i))
	}
	if i, ok := s.base.InternNode(id); ok {
		return s.nodeAtIdx(int(i))
	}
	return nil
}

// Edge returns the edge with the given id, or nil.
func (s *OverlaySnap) Edge(id EdgeID) *Edge {
	if i, ok := s.edgeIdx[id]; ok {
		return s.edgeAtIdx(int(i))
	}
	if i, ok := s.base.InternEdge(id); ok {
		return s.edgeAtIdx(int(i))
	}
	return nil
}

// NumNodes reports |N| (live nodes in this epoch).
func (s *OverlaySnap) NumNodes() int { return s.liveN }

// NumEdges reports |E| (live edges in this epoch).
func (s *OverlaySnap) NumEdges() int { return s.liveE }

// NodeIndexSpan reports the exclusive upper bound of node indices in this
// epoch; dense scans iterate [0, span) and skip nil records.
func (s *OverlaySnap) NodeIndexSpan() int { return s.baseN + len(s.nodes) }

// EdgeIndexSpan reports the exclusive upper bound of edge indices.
func (s *OverlaySnap) EdgeIndexSpan() int { return s.baseE + len(s.edges) }

// Nodes iterates live nodes in insertion order (ascending global index).
func (s *OverlaySnap) Nodes(f func(*Node) bool) {
	for i, span := 0, s.NodeIndexSpan(); i < span; i++ {
		if n := s.nodeAtIdx(i); n != nil && !f(n) {
			return
		}
	}
}

// Edges iterates live edges in insertion order.
func (s *OverlaySnap) Edges(f func(*Edge) bool) {
	for i, span := 0, s.EdgeIndexSpan(); i < span; i++ {
		if e := s.edgeAtIdx(i); e != nil && !f(e) {
			return
		}
	}
}

// Steps iterates the live traversal steps of node index i: base arena
// steps minus tombstoned edges, then delta steps. When the node has no
// delta steps and the epoch has no edge tombstones, it delegates straight
// to the base arena — the hot path for read-mostly epochs.
func (s *OverlaySnap) Steps(i int, f func(edge, other int, kind StepKind) bool) {
	d := s.adj[int32(i)]
	if i < s.baseN {
		// Base windows contain only base edges (and, by the detach
		// invariant, only live endpoints while those edges are live), so
		// the per-step tombstone check is needed only when base edges
		// have actually been deleted this epoch.
		fast := s.deadBaseE == 0
		if fast && len(d) == 0 {
			s.base.Steps(i, f)
			return
		}
		stopped := false
		s.base.Steps(i, func(edge, other int, kind StepKind) bool {
			if !fast {
				if _, dead := s.deadE[ElemIdx(edge)]; dead {
					return true
				}
			}
			if !f(edge, other, kind) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
	for _, st := range d {
		if _, dead := s.deadE[ElemIdx(st.edge)]; dead {
			continue
		}
		if !f(int(st.edge), int(st.other), st.kind) {
			return
		}
	}
}

// NodeIndex maps a node id to its dense index.
func (s *OverlaySnap) NodeIndex(id NodeID) (int, bool) {
	i, ok := s.InternNode(id)
	return int(i), ok
}

// NodeByIndex returns the node at a dense index, or nil when tombstoned.
func (s *OverlaySnap) NodeByIndex(i int) *Node { return s.nodeAtIdx(i) }

// EdgeByIndex returns the edge at a dense index, or nil when tombstoned.
func (s *OverlaySnap) EdgeByIndex(i int) *Edge { return s.edgeAtIdx(i) }

// EdgeEnds returns the dense endpoint indices of the edge at index i.
func (s *OverlaySnap) EdgeEnds(i int) (src, tgt int) {
	if i < s.baseE {
		return s.base.EdgeEnds(i)
	}
	ends := s.edgeEnds[i-s.baseE]
	return int(ends[0]), int(ends[1])
}

// NodesWithLabelIdx merges the base label index with the epoch's label
// delta, both sorted ascending, skipping base entries that this epoch
// tombstones or overrides (overridden nodes are re-emitted from the delta
// when their current labels still include the label).
func (s *OverlaySnap) NodesWithLabelIdx(label string, f func(i int) bool) {
	bs := s.base.labelNodes[label]
	ds := s.labelDelta[label]
	if s.labelSub[label] == 0 && (len(ds) == 0 || ds[0] >= int32(s.baseN)) {
		// No base entry with this label is tombstoned or overridden, and
		// every delta entry sits above the base span: plain concatenation,
		// no per-entry checks.
		for _, i := range bs {
			if !f(int(i)) {
				return
			}
		}
		for _, i := range ds {
			if !f(int(i)) {
				return
			}
		}
		return
	}
	bi, di := 0, 0
	for bi < len(bs) || di < len(ds) {
		if di >= len(ds) || (bi < len(bs) && bs[bi] < ds[di]) {
			i := bs[bi]
			bi++
			if _, dead := s.deadN[ElemIdx(i)]; dead {
				continue
			}
			if _, ov := s.overN[ElemIdx(i)]; ov {
				continue
			}
			if !f(int(i)) {
				return
			}
		} else {
			i := ds[di]
			di++
			if !f(int(i)) {
				return
			}
		}
	}
}

// NodesWithLabel iterates the live nodes carrying the label in insertion
// order.
func (s *OverlaySnap) NodesWithLabel(label string, f func(*Node) bool) {
	s.NodesWithLabelIdx(label, func(i int) bool {
		return f(s.nodeAtIdx(i))
	})
}

// CountNodesWithLabel answers with O(1) arithmetic over the base count.
func (s *OverlaySnap) CountNodesWithLabel(label string) int {
	return s.base.CountNodesWithLabel(label) - s.labelSub[label] + len(s.labelDelta[label])
}

// Incident iterates the live edges touching n in insertion order.
func (s *OverlaySnap) Incident(n NodeID, f func(*Edge) bool) {
	i, ok := s.InternNode(n)
	if !ok {
		return
	}
	s.Steps(int(i), func(edge, other int, kind StepKind) bool {
		return f(s.edgeAtIdx(edge))
	})
}

// Degree reports the number of live edges incident to n.
func (s *OverlaySnap) Degree(n NodeID) int {
	i, ok := s.InternNode(n)
	if !ok {
		return 0
	}
	d := 0
	s.Steps(int(i), func(edge, other int, kind StepKind) bool {
		d++
		return true
	})
	return d
}

// LabelStats derives this epoch's cardinalities from the base statistics
// plus the delta, lazily and once per epoch.
func (s *OverlaySnap) LabelStats() StoreStats {
	s.statsOnce.Do(func() {
		bs := s.base.LabelStats()
		st := StoreStats{
			Nodes:      s.liveN,
			Edges:      s.liveE,
			NodeLabels: maps.Clone(bs.NodeLabels),
			EdgeLabels: maps.Clone(bs.EdgeLabels),
		}
		if st.NodeLabels == nil {
			st.NodeLabels = map[string]int{}
		}
		if st.EdgeLabels == nil {
			st.EdgeLabels = map[string]int{}
		}
		for l, n := range s.labelSub {
			if c := st.NodeLabels[l] - n; c > 0 {
				st.NodeLabels[l] = c
			} else {
				delete(st.NodeLabels, l)
			}
		}
		for l, list := range s.labelDelta {
			st.NodeLabels[l] += len(list)
		}
		for idx := range s.deadE {
			if int(idx) >= s.baseE {
				continue
			}
			for _, l := range s.base.rawEdge(int(idx)).Labels {
				if c := st.EdgeLabels[l] - 1; c > 0 {
					st.EdgeLabels[l] = c
				} else {
					delete(st.EdgeLabels, l)
				}
			}
		}
		for j, e := range s.edges {
			if _, dead := s.deadE[ElemIdx(s.baseE+j)]; dead {
				continue
			}
			for _, l := range e.Labels {
				st.EdgeLabels[l]++
			}
		}
		s.stats = st
	})
	return s.stats
}

// InternNode maps a node id to its stable dense index (live ids only).
func (s *OverlaySnap) InternNode(id NodeID) (ElemIdx, bool) {
	if i, ok := s.nodeIdx[id]; ok {
		if _, dead := s.deadN[i]; !dead {
			return i, true
		}
		return 0, false
	}
	if i, ok := s.base.InternNode(id); ok {
		if _, dead := s.deadN[i]; !dead {
			return i, true
		}
	}
	return 0, false
}

// InternEdge maps an edge id to its stable dense index (live ids only).
func (s *OverlaySnap) InternEdge(id EdgeID) (ElemIdx, bool) {
	if i, ok := s.edgeIdx[id]; ok {
		if _, dead := s.deadE[i]; !dead {
			return i, true
		}
		return 0, false
	}
	if i, ok := s.base.InternEdge(id); ok {
		if _, dead := s.deadE[i]; !dead {
			return i, true
		}
	}
	return 0, false
}

// NodeAt returns the node at a dense index, or nil when out of range or
// tombstoned.
func (s *OverlaySnap) NodeAt(i ElemIdx) *Node {
	if int(i) >= s.NodeIndexSpan() {
		return nil
	}
	return s.nodeAtIdx(int(i))
}

// EdgeAt returns the edge at a dense index, or nil when out of range or
// tombstoned.
func (s *OverlaySnap) EdgeAt(i ElemIdx) *Edge {
	if int(i) >= s.EdgeIndexSpan() {
		return nil
	}
	return s.edgeAtIdx(int(i))
}

// SortedView implements the sortedProvider hook consulted by AsSorted:
// when the epoch's adjacency matches the base CSR exactly (no delta
// edges, no edge tombstones), the base's sorted windows remain exact and
// WCO intersection dispatch stays enabled; otherwise the epoch reports no
// sorted view and queries fall back to bind-joins.
func (s *OverlaySnap) SortedView() (SortedStepper, bool) {
	if !s.sortedOK {
		return nil, false
	}
	return overlaySorted{s}, true
}

// overlaySorted is an epoch with WCO dispatch enabled: sorted windows
// come from the base CSR (exact, since the epoch has no adjacency delta),
// while element records resolve through the epoch so property and label
// overrides stay visible.
type overlaySorted struct {
	*OverlaySnap
}

// SortedSteps returns node i's (neighbour, edge)-sorted adjacency window.
// Delta nodes are necessarily isolated in a sortedOK epoch.
func (o overlaySorted) SortedSteps(i int) (others, edges []int32, kinds []StepKind) {
	if i < o.baseN {
		return o.base.SortedSteps(i)
	}
	return nil, nil, nil
}

// statically assert the epoch snapshot and its sorted view satisfy the
// execution interfaces.
var (
	_ Store         = (*OverlaySnap)(nil)
	_ Stepper       = (*OverlaySnap)(nil)
	_ SortedStepper = (overlaySorted{})
	_ Store         = (*Overlay)(nil)
	_ EpochSource   = (*Overlay)(nil)
)
