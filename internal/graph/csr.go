package graph

import (
	"fmt"
	"slices"
	"strings"
)

// CSR is an immutable compressed-sparse-row snapshot of a property graph.
// Nodes and edges live in dense arrays in insertion order, incident edges
// in one contiguous arena indexed by per-node offsets, and a label → nodes
// inverted index answers NodesWithLabel without scanning. Cardinality
// statistics are precomputed at snapshot time.
//
// A CSR is safe for any number of concurrent readers and never changes;
// take a fresh Snapshot after mutating the source graph.
type CSR struct {
	nodes []Node
	edges []Edge

	nodeIdx map[NodeID]int32
	edgeIdx map[EdgeID]int32

	// incidence in CSR form: edges incident to node i are
	// incEdge[incOff[i]:incOff[i+1]], in insertion order. incOther and
	// incKind run parallel to incEdge with the neighbour's node index and
	// the step kind, so product searches step without id lookups.
	incOff   []int32
	incEdge  []int32
	incOther []int32
	incKind  []StepKind

	// edgeSrc and edgeTgt hold each edge's endpoint node indices (as
	// presented: equal for self-loops), so traversal checks and path
	// replay never round-trip through ids.
	edgeSrc []int32
	edgeTgt []int32

	// labelNodes maps a label to the indices of nodes carrying it, in
	// insertion order.
	labelNodes map[string][]int32

	// Sorted adjacency view for intersection joins. sortEdge/sortOther/
	// sortKind are a permutation of the incEdge/incOther/incKind window of
	// each node, sharing incOff, reordered so that within a node the steps
	// ascend by (neighbour index, edge index). Invariant: for every node i
	// and every incOff[i] <= a < b < incOff[i+1],
	//
	//	(sortOther[a], sortEdge[a]) < (sortOther[b], sortEdge[b])
	//
	// lexicographically. Equal-neighbour runs therefore preserve edge
	// insertion order, and the multiset of (edge, other, kind) triples per
	// node is identical to the Steps order. The leapfrog intersection
	// operator gallops over sortOther; Steps and Incident keep serving the
	// insertion-ordered arena so enumeration order is unchanged.
	sortEdge  []int32
	sortOther []int32
	sortKind  []StepKind

	// Dead holes: a CSR built by Snapshot is fully live (both masks nil),
	// but a CSR produced by overlay compaction keeps tombstoned elements
	// as holes at their original indices — index stability across epochs
	// is worth more than a dense renumbering. A dead slot has a zero
	// record, an empty adjacency window, and no entry in the id maps, the
	// label index, or the statistics. liveNodes/liveEdges count the
	// non-holes; NodeIndexSpan/EdgeIndexSpan report the full array spans.
	deadN []bool
	deadE []bool

	liveNodes int
	liveEdges int

	stats StoreStats
}

// Snapshot builds a CSR snapshot of g. The snapshot copies node and edge
// records (labels and property maps are shared structurally with the
// source graph, which must not be mutated concurrently with the build).
func Snapshot(g *Graph) *CSR {
	c := &CSR{
		nodes:      make([]Node, 0, g.NumNodes()),
		edges:      make([]Edge, 0, g.NumEdges()),
		nodeIdx:    make(map[NodeID]int32, g.NumNodes()),
		edgeIdx:    make(map[EdgeID]int32, g.NumEdges()),
		labelNodes: map[string][]int32{},
		stats: StoreStats{
			Nodes:      g.NumNodes(),
			Edges:      g.NumEdges(),
			NodeLabels: map[string]int{},
			EdgeLabels: map[string]int{},
		},
	}
	g.Nodes(func(n *Node) bool {
		i := int32(len(c.nodes))
		c.nodes = append(c.nodes, *n)
		c.nodeIdx[n.ID] = i
		for _, l := range n.Labels {
			c.labelNodes[l] = append(c.labelNodes[l], i)
			c.stats.NodeLabels[l]++
		}
		return true
	})
	g.Edges(func(e *Edge) bool {
		c.edgeIdx[e.ID] = int32(len(c.edges))
		c.edges = append(c.edges, *e)
		for _, l := range e.Labels {
			c.stats.EdgeLabels[l]++
		}
		return true
	})

	// Count degrees, then lay out the incidence arena. A self-loop is
	// incident once, matching the map backend's Incident contract.
	deg := make([]int32, len(c.nodes))
	c.edgeSrc = make([]int32, len(c.edges))
	c.edgeTgt = make([]int32, len(c.edges))
	for i := range c.edges {
		e := &c.edges[i]
		c.edgeSrc[i] = c.nodeIdx[e.Source]
		c.edgeTgt[i] = c.nodeIdx[e.Target]
		deg[c.nodeIdx[e.Source]]++
		if e.Source != e.Target {
			deg[c.nodeIdx[e.Target]]++
		}
	}
	c.incOff = make([]int32, len(c.nodes)+1)
	for i, d := range deg {
		c.incOff[i+1] = c.incOff[i] + d
	}
	c.incEdge = make([]int32, c.incOff[len(c.nodes)])
	c.incOther = make([]int32, len(c.incEdge))
	c.incKind = make([]StepKind, len(c.incEdge))
	fill := append([]int32(nil), c.incOff[:len(c.nodes)]...)
	put := func(at, edge, other int32, k StepKind) {
		c.incEdge[at] = edge
		c.incOther[at] = other
		c.incKind[at] = k
	}
	for i := range c.edges {
		e := &c.edges[i]
		si, ti := c.nodeIdx[e.Source], c.nodeIdx[e.Target]
		switch {
		case e.Direction == Undirected:
			put(fill[si], int32(i), ti, StepUndirected)
			fill[si]++
			if si != ti {
				put(fill[ti], int32(i), si, StepUndirected)
				fill[ti]++
			}
		case si == ti:
			put(fill[si], int32(i), si, StepLoop)
			fill[si]++
		default:
			put(fill[si], int32(i), ti, StepOut)
			fill[si]++
			put(fill[ti], int32(i), si, StepIn)
			fill[ti]++
		}
	}
	c.buildSortedAdjacency()
	c.liveNodes = len(c.nodes)
	c.liveEdges = len(c.edges)
	return c
}

// buildSortedAdjacency derives the per-node (neighbour, edge)-sorted
// permutation of the incidence arena. The arena was filled in edge
// insertion order, so within a window equal neighbours ascend by edge
// index and the result is fully deterministic.
func (c *CSR) buildSortedAdjacency() {
	n := len(c.incEdge)
	c.sortEdge = make([]int32, n)
	c.sortOther = make([]int32, n)
	c.sortKind = make([]StepKind, n)
	// Pack (neighbour, arena index) into one word per step and sort windows
	// of the packed array: the arena index is unique, so the order is total,
	// and within a node's window arena positions ascend by edge index, so
	// the packed order equals (other, edge) order. slices.Sort on integers
	// keeps snapshot construction allocation-flat (a per-node sort.Slice
	// closure costs an allocation per node).
	keys := make([]uint64, n)
	for a, o := range c.incOther {
		keys[a] = uint64(uint32(o))<<32 | uint64(uint32(a))
	}
	for i := range c.nodes {
		slices.Sort(keys[c.incOff[i]:c.incOff[i+1]])
	}
	for at, key := range keys {
		src := int32(uint32(key))
		c.sortEdge[at] = c.incEdge[src]
		c.sortOther[at] = c.incOther[src]
		c.sortKind[at] = c.incKind[src]
	}
}

// SortedSteps returns node i's adjacency window sorted by (neighbour,
// edge): parallel slices of neighbour indices, edge indices, and step
// kinds. The slices alias the snapshot and must not be mutated.
func (c *CSR) SortedSteps(i int) (others, edges []int32, kinds []StepKind) {
	lo, hi := c.incOff[i], c.incOff[i+1]
	return c.sortOther[lo:hi], c.sortEdge[lo:hi], c.sortKind[lo:hi]
}

// NodeIndex maps a node id to its dense index.
func (c *CSR) NodeIndex(id NodeID) (int, bool) {
	i, ok := c.nodeIdx[id]
	return int(i), ok
}

// NodeByIndex returns the node at a dense index, or nil for a dead hole.
func (c *CSR) NodeByIndex(i int) *Node {
	if c.deadN != nil && c.deadN[i] {
		return nil
	}
	return &c.nodes[i]
}

// EdgeByIndex returns the edge at a dense index, or nil for a dead hole.
func (c *CSR) EdgeByIndex(i int) *Edge {
	if c.deadE != nil && c.deadE[i] {
		return nil
	}
	return &c.edges[i]
}

// rawNode returns the record at a node index with no dead-hole guard; for
// overlay internals that have already established liveness.
func (c *CSR) rawNode(i int) *Node { return &c.nodes[i] }

// rawEdge returns the record at an edge index with no dead-hole guard.
func (c *CSR) rawEdge(i int) *Edge { return &c.edges[i] }

// NodeIndexSpan reports the exclusive upper bound of node indices (the
// full array span, counting dead holes); dense scans iterate [0, span)
// and skip nil records.
func (c *CSR) NodeIndexSpan() int { return len(c.nodes) }

// EdgeIndexSpan reports the exclusive upper bound of edge indices.
func (c *CSR) EdgeIndexSpan() int { return len(c.edges) }

// Steps iterates the traversal steps of node index i from the adjacency
// arena: dense edge index, neighbour index, and step kind.
func (c *CSR) Steps(i int, f func(edge, other int, kind StepKind) bool) {
	for k := c.incOff[i]; k < c.incOff[i+1]; k++ {
		if !f(int(c.incEdge[k]), int(c.incOther[k]), c.incKind[k]) {
			return
		}
	}
}

// Node returns the node with the given id, or nil.
func (c *CSR) Node(id NodeID) *Node {
	i, ok := c.nodeIdx[id]
	if !ok {
		return nil
	}
	return &c.nodes[i]
}

// Edge returns the edge with the given id, or nil.
func (c *CSR) Edge(id EdgeID) *Edge {
	i, ok := c.edgeIdx[id]
	if !ok {
		return nil
	}
	return &c.edges[i]
}

// NumNodes reports |N| (live nodes).
func (c *CSR) NumNodes() int { return c.liveNodes }

// NumEdges reports |E| (live edges).
func (c *CSR) NumEdges() int { return c.liveEdges }

// Nodes iterates live nodes in insertion order.
func (c *CSR) Nodes(f func(*Node) bool) {
	for i := range c.nodes {
		if c.deadN != nil && c.deadN[i] {
			continue
		}
		if !f(&c.nodes[i]) {
			return
		}
	}
}

// Edges iterates live edges in insertion order.
func (c *CSR) Edges(f func(*Edge) bool) {
	for i := range c.edges {
		if c.deadE != nil && c.deadE[i] {
			continue
		}
		if !f(&c.edges[i]) {
			return
		}
	}
}

// Incident iterates the edges touching n in insertion order.
func (c *CSR) Incident(n NodeID, f func(*Edge) bool) {
	i, ok := c.nodeIdx[n]
	if !ok {
		return
	}
	for _, ei := range c.incEdge[c.incOff[i]:c.incOff[i+1]] {
		if !f(&c.edges[ei]) {
			return
		}
	}
}

// Degree reports the number of edges incident to n.
func (c *CSR) Degree(n NodeID) int {
	i, ok := c.nodeIdx[n]
	if !ok {
		return 0
	}
	return int(c.incOff[i+1] - c.incOff[i])
}

// EdgeEnds returns the dense endpoint indices of the edge at index i.
func (c *CSR) EdgeEnds(i int) (src, tgt int) {
	return int(c.edgeSrc[i]), int(c.edgeTgt[i])
}

// NodesWithLabelIdx iterates the dense indices of the nodes carrying the
// label, in insertion order, straight off the inverted index.
func (c *CSR) NodesWithLabelIdx(label string, f func(i int) bool) {
	for _, i := range c.labelNodes[label] {
		if !f(int(i)) {
			return
		}
	}
}

// NodesWithLabel iterates the nodes carrying the label from the inverted
// index, in insertion order.
func (c *CSR) NodesWithLabel(label string, f func(*Node) bool) {
	for _, i := range c.labelNodes[label] {
		if !f(&c.nodes[i]) {
			return
		}
	}
}

// CountNodesWithLabel answers from the inverted index in O(1).
func (c *CSR) CountNodesWithLabel(label string) int { return len(c.labelNodes[label]) }

// LabelStats returns the precomputed cardinality statistics.
func (c *CSR) LabelStats() StoreStats { return c.stats }

// Stats summarizes the snapshot, mirroring Graph.Stats.
func (c *CSR) Stats() string {
	directed, undirected := 0, 0
	for i := range c.edges {
		if c.deadE != nil && c.deadE[i] {
			continue
		}
		if c.edges[i].Direction == Directed {
			directed++
		} else {
			undirected++
		}
	}
	labels := map[string]int{}
	for l, n := range c.stats.NodeLabels {
		labels[l] += n
	}
	for l, n := range c.stats.EdgeLabels {
		labels[l] += n
	}
	return fmt.Sprintf("csr nodes=%d edges=%d (directed=%d undirected=%d) labels=%s",
		c.liveNodes, c.liveEdges, directed, undirected, strings.Join(sortedLabels(labels), ","))
}
