package graph

import (
	"fmt"
	"sync"
	"testing"
)

// internFixture builds a graph with a few labels, multi-edges, self-loops
// and an undirected edge — every structural case the interner must index.
func internFixture(t testing.TB) *Graph {
	t.Helper()
	g := New()
	for i := 0; i < 20; i++ {
		labels := []string{"N"}
		if i%3 == 0 {
			labels = append(labels, "Third")
		}
		if err := g.AddNode(NodeID(fmt.Sprintf("n%d", i)), labels, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 19; i++ {
		if err := g.AddEdge(EdgeID(fmt.Sprintf("e%d", i)), NodeID(fmt.Sprintf("n%d", i)), NodeID(fmt.Sprintf("n%d", i+1)), []string{"E"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("loop", "n0", "n0", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.AddUndirectedEdge("und", "n1", "n5", nil, nil); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestInternerConformance: the map backend's lazy table and the CSR
// snapshot's native layout must agree index-for-index (both assign in
// insertion order), and Intern/Lookup must round-trip on both.
func TestInternerConformance(t *testing.T) {
	g := internFixture(t)
	snap := Snapshot(g)
	for _, s := range []struct {
		name string
		st   Store
	}{{"map", g}, {"csr", snap}} {
		t.Run(s.name, func(t *testing.T) {
			i := 0
			g.Nodes(func(n *Node) bool {
				idx, ok := s.st.InternNode(n.ID)
				if !ok || int(idx) != i {
					t.Fatalf("InternNode(%q) = (%d, %v), want (%d, true)", n.ID, idx, ok, i)
				}
				if got := s.st.NodeAt(idx); got == nil || got.ID != n.ID {
					t.Fatalf("NodeAt(%d) round-trip: got %v, want %q", idx, got, n.ID)
				}
				i++
				return true
			})
			i = 0
			g.Edges(func(e *Edge) bool {
				idx, ok := s.st.InternEdge(e.ID)
				if !ok || int(idx) != i {
					t.Fatalf("InternEdge(%q) = (%d, %v), want (%d, true)", e.ID, idx, ok, i)
				}
				if got := s.st.EdgeAt(idx); got == nil || got.ID != e.ID {
					t.Fatalf("EdgeAt(%d) round-trip: got %v, want %q", idx, got, e.ID)
				}
				i++
				return true
			})
			// Unknown ids and out-of-range indices answer negatively, not
			// by panicking.
			if _, ok := s.st.InternNode("missing"); ok {
				t.Error("InternNode on an unknown id must report !ok")
			}
			if _, ok := s.st.InternEdge("missing"); ok {
				t.Error("InternEdge on an unknown id must report !ok")
			}
			if s.st.NodeAt(ElemIdx(1<<30)) != nil || s.st.EdgeAt(ElemIdx(1<<30)) != nil {
				t.Error("out-of-range lookups must return nil")
			}
		})
	}
}

// TestInternerStableAcrossMutation: mutating the map backend discards the
// lazy table, but the rebuilt table assigns every pre-existing element the
// same index (insertion order is append-only).
func TestInternerStableAcrossMutation(t *testing.T) {
	g := internFixture(t)
	before := map[NodeID]ElemIdx{}
	g.Nodes(func(n *Node) bool {
		idx, _ := g.InternNode(n.ID)
		before[n.ID] = idx
		return true
	})
	if err := g.AddNode("late", []string{"N"}, nil); err != nil {
		t.Fatal(err)
	}
	for id, want := range before {
		if got, ok := g.InternNode(id); !ok || got != want {
			t.Fatalf("index of %q changed after mutation: %d -> %d", id, want, got)
		}
	}
	if idx, ok := g.InternNode("late"); !ok || int(idx) != g.NumNodes()-1 {
		t.Fatalf("new node interned at %d, want %d", idx, g.NumNodes()-1)
	}
}

// TestInternerConcurrent hammers the lazy build from many goroutines (run
// under -race): all must observe one consistent table.
func TestInternerConcurrent(t *testing.T) {
	g := internFixture(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id := NodeID(fmt.Sprintf("n%d", i))
				idx, ok := g.InternNode(id)
				if !ok || int(idx) != i {
					errs <- fmt.Errorf("worker %d: InternNode(%q) = (%d, %v)", w, id, idx, ok)
					return
				}
				if n := g.NodeAt(idx); n == nil || n.ID != id {
					errs <- fmt.Errorf("worker %d: NodeAt(%d) mismatch", w, idx)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestAsStepperMemoized: repeated AsStepper calls on the map backend reuse
// one adapter until a mutation invalidates it; native steppers pass
// through unchanged.
func TestAsStepperMemoized(t *testing.T) {
	g := internFixture(t)
	st1 := AsStepper(g)
	st2 := AsStepper(g)
	if st1 != st2 {
		t.Fatalf("AsStepper must memoize the map backend's adapter")
	}
	if err := g.AddNode("invalidate", nil, nil); err != nil {
		t.Fatal(err)
	}
	st3 := AsStepper(g)
	if st3 == st1 {
		t.Fatalf("mutation must invalidate the memoized adapter")
	}
	if _, ok := st3.NodeIndex("invalidate"); !ok {
		t.Fatalf("rebuilt adapter must see the new node")
	}
	snap := Snapshot(g)
	if AsStepper(snap) != Stepper(snap) {
		t.Fatalf("a native Stepper must be returned as-is")
	}
}

// TestStepperEdgeEnds: endpoint indices agree with the interner on both
// backends, including self-loops and undirected edges.
func TestStepperEdgeEnds(t *testing.T) {
	g := internFixture(t)
	for _, st := range []Stepper{AsStepper(g), Snapshot(g)} {
		g.Edges(func(e *Edge) bool {
			ei, _ := st.InternEdge(e.ID)
			src, tgt := st.EdgeEnds(int(ei))
			wantSrc, _ := st.InternNode(e.Source)
			wantTgt, _ := st.InternNode(e.Target)
			if src != int(wantSrc) || tgt != int(wantTgt) {
				t.Fatalf("EdgeEnds(%q) = (%d,%d), want (%d,%d)", e.ID, src, tgt, wantSrc, wantTgt)
			}
			return true
		})
	}
}

// TestNodesWithLabelIdx: the dense label iteration agrees with the
// id-based one on both backends (order included) and memoizes correctly
// on the adapter.
func TestNodesWithLabelIdx(t *testing.T) {
	g := internFixture(t)
	for _, s := range []struct {
		name string
		st   Stepper
	}{{"adapter", AsStepper(g)}, {"csr", Snapshot(g)}} {
		for _, label := range []string{"N", "Third", "absent"} {
			var want []int
			s.st.NodesWithLabel(label, func(n *Node) bool {
				i, _ := s.st.InternNode(n.ID)
				want = append(want, int(i))
				return true
			})
			for pass := 0; pass < 2; pass++ { // second pass hits the memo
				var got []int
				s.st.NodesWithLabelIdx(label, func(i int) bool {
					got = append(got, i)
					return true
				})
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("%s %s pass %d: NodesWithLabelIdx = %v, want %v", s.name, label, pass, got, want)
				}
			}
		}
	}
}
