package dataset

import (
	"fmt"
	"math/rand"

	"gpml/internal/graph"
)

// SNBConfig parameterizes the LDBC-SNB-flavored social network graph.
// The generator is deterministic by Seed, and every element count scales
// linearly with ScaleFactor, so benchmark tiers can dial the graph from
// laptop-sized (SF 0.1, ~26k edges) through the bench-scale tier's SF 3
// (~780k edges) to the roadmap's 10M+ edge regime (SF ~40) without
// changing shape.
type SNBConfig struct {
	// ScaleFactor sizes the graph: SF 1 is 10,000 persons, 1,000 forums,
	// 30,000 posts and roughly 260k edges. Values <= 0 default to 1.
	ScaleFactor float64
	// Seed drives all randomness; equal configs build equal graphs.
	Seed int64
}

// persons reports the person count at the configured scale.
func (cfg SNBConfig) persons() int { return scaled(cfg.ScaleFactor, 10_000) }

// scaled applies the scale factor to a base count, flooring at 1.
func scaled(sf float64, base int) int {
	if sf <= 0 {
		sf = 1
	}
	n := int(sf * float64(base))
	if n < 1 {
		n = 1
	}
	return n
}

// SNB builds a seeded LDBC-SNB-flavored social graph: Person, Forum and
// Post nodes; an undirected knows network over persons with a power-law
// (Zipf) degree distribution so low-index persons are hubs, as in real
// social graphs; directed likes (person→post, Zipf-popular posts),
// hasCreator (post→person), containerOf (forum→post), and hasMember /
// hasModerator (forum→person) edges.
//
// The shape follows the LDBC Social Network Benchmark's core schema — the
// benchmark lineage of the source paper — reduced to the labels pattern
// matching exercises; properties are kept small (names, dates) so large
// scale factors measure traversal, not property storage.
func SNB(cfg SNBConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	nPersons := cfg.persons()
	nForums := scaled(cfg.ScaleFactor, 1_000)
	nPosts := scaled(cfg.ScaleFactor, 30_000)

	b := graph.NewBuilder()
	for i := 0; i < nPersons; i++ {
		b.Node(personID(i), []string{"Person"},
			"firstName", fmt.Sprintf("p%d", i),
			"country", fmt.Sprintf("country%d", i%50))
	}
	for f := 0; f < nForums; f++ {
		b.Node(forumID(f), []string{"Forum"}, "title", fmt.Sprintf("forum%d", f))
	}
	for m := 0; m < nPosts; m++ {
		b.Node(postID(m), []string{"Post", "Message"},
			"creationDate", date(m), "length", int64(10+m%990))
	}

	// knows: undirected, power-law. Each person draws a Zipf-distributed
	// friend count and Zipf-distributed targets, so a few hubs carry most
	// of the network — the degree skew the partition-pinned scatter's
	// work stealing exists for.
	e := 0
	degZipf := rand.NewZipf(rng, 1.3, 4, 64)
	target := rand.NewZipf(rng, 1.2, 8, uint64(nPersons-1))
	for i := 0; i < nPersons; i++ {
		k := 1 + int(degZipf.Uint64())
		for j := 0; j < k; j++ {
			t := int(target.Uint64())
			if t == i {
				t = (i + 1) % nPersons
			}
			b.UndirectedEdge(fmt.Sprintf("kn%d", e), personID(i), personID(t), []string{"knows"},
				"since", date(e))
			e++
		}
	}

	// hasCreator: every post has exactly one author, Zipf-skewed so
	// prolific authors exist.
	for m := 0; m < nPosts; m++ {
		b.Edge(fmt.Sprintf("hc%d", m), postID(m), personID(int(target.Uint64())),
			[]string{"hasCreator"})
	}
	// containerOf: every post lives in one forum, round-robin with a
	// random skip so forum sizes vary deterministically.
	for m := 0; m < nPosts; m++ {
		f := (m + rng.Intn(3)*7) % nForums
		b.Edge(fmt.Sprintf("co%d", m), forumID(f), postID(m), []string{"containerOf"})
	}
	// likes: ~6 per person onto Zipf-popular posts.
	postPop := rand.NewZipf(rng, 1.1, 16, uint64(nPosts-1))
	e = 0
	for i := 0; i < nPersons; i++ {
		k := 2 + rng.Intn(9)
		for j := 0; j < k; j++ {
			b.Edge(fmt.Sprintf("lk%d", e), personID(i), postID(int(postPop.Uint64())),
				[]string{"likes"}, "date", date(e))
			e++
		}
	}
	// hasModerator: one per forum; hasMember: ~8 per forum.
	for f := 0; f < nForums; f++ {
		b.Edge(fmt.Sprintf("md%d", f), forumID(f), personID(int(target.Uint64())),
			[]string{"hasModerator"})
		k := 4 + rng.Intn(9)
		for j := 0; j < k; j++ {
			b.Edge(fmt.Sprintf("hm%d_%d", f, j), forumID(f), personID(rng.Intn(nPersons)),
				[]string{"hasMember"})
		}
	}
	return b.MustBuild()
}

func personID(i int) string { return fmt.Sprintf("pers%d", i) }
func forumID(i int) string  { return fmt.Sprintf("forum%d", i) }
func postID(i int) string   { return fmt.Sprintf("post%d", i) }
