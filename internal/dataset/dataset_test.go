package dataset

import (
	"testing"

	"gpml/internal/graph"
	"gpml/internal/value"
)

// Figure 1 exactly: 14 nodes (6 accounts, 2 locations, 4 phones, 2 IPs)
// and 22 edges (8 transfers, 6 isLocatedIn, 6 hasPhone, 2 signInWithIP).
func TestFig1Shape(t *testing.T) {
	g := Fig1()
	if g.NumNodes() != 14 {
		t.Errorf("nodes: %d, want 14", g.NumNodes())
	}
	if g.NumEdges() != 22 {
		t.Errorf("edges: %d, want 22", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	g.Edges(func(e *graph.Edge) bool {
		for _, l := range e.Labels {
			counts[l]++
		}
		return true
	})
	want := map[string]int{"Transfer": 8, "isLocatedIn": 6, "hasPhone": 6, "signInWithIP": 2}
	for l, n := range want {
		if counts[l] != n {
			t.Errorf("%s edges: %d, want %d", l, counts[l], n)
		}
	}
}

func TestFig1Owners(t *testing.T) {
	g := Fig1()
	owners := map[string]string{
		"a1": "Scott", "a2": "Aretha", "a3": "Mike",
		"a4": "Jay", "a5": "Charles", "a6": "Dave",
	}
	for id, owner := range owners {
		n := g.Node(graph.NodeID(id))
		if n == nil {
			t.Fatalf("missing node %s", id)
		}
		if got := n.Prop("owner").Display(); got != owner {
			t.Errorf("%s owner: %q, want %q", id, got, owner)
		}
	}
	// Jay is the only blocked element in the graph.
	blocked := 0
	g.Nodes(func(n *graph.Node) bool {
		if n.Prop("isBlocked").Display() == "yes" {
			blocked++
			if n.ID != "a4" {
				t.Errorf("unexpected blocked node %s", n.ID)
			}
		}
		return true
	})
	if blocked != 1 {
		t.Errorf("blocked nodes: %d, want 1 (a4)", blocked)
	}
}

// The §2 example path path(c1,li1,a1,t1,a3,hp3,p2) is valid in Fig 1.
func TestFig1Section2ExamplePath(t *testing.T) {
	p := graph.Path{
		Nodes: []graph.NodeID{"c1", "a1", "a3", "p2"},
		Edges: []graph.EdgeID{"li1", "t1", "hp3"},
	}
	if err := p.ValidIn(Fig1()); err != nil {
		t.Fatalf("§2 example path invalid: %v", err)
	}
}

func TestFig1TransferTopology(t *testing.T) {
	g := Fig1()
	wantEdges := map[string][2]string{
		"t1": {"a1", "a3"}, "t2": {"a3", "a2"}, "t3": {"a2", "a4"},
		"t4": {"a4", "a6"}, "t5": {"a6", "a3"}, "t6": {"a6", "a5"},
		"t7": {"a3", "a5"}, "t8": {"a5", "a1"},
	}
	for id, ends := range wantEdges {
		e := g.Edge(graph.EdgeID(id))
		if e == nil {
			t.Fatalf("missing edge %s", id)
		}
		if string(e.Source) != ends[0] || string(e.Target) != ends[1] {
			t.Errorf("%s: %s→%s, want %s→%s", id, e.Source, e.Target, ends[0], ends[1])
		}
	}
	// t6 is the only transfer with amount ≤ 5M (it fails §6's prefilter).
	g.Edges(func(e *graph.Edge) bool {
		if !e.HasLabel("Transfer") {
			return true
		}
		amt, _ := e.Prop("amount").AsInt()
		if (amt <= 5_000_000) != (e.ID == "t6") {
			t.Errorf("amount invariant violated at %s (%d)", e.ID, amt)
		}
		return true
	})
}

func TestChain(t *testing.T) {
	g := Chain(5)
	if g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Errorf("chain: %s", g.Stats())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(5)
	if g.NumNodes() != 5 || g.NumEdges() != 5 {
		t.Errorf("cycle: %s", g.Stats())
	}
	// Every node has out-degree 1.
	g.Nodes(func(n *graph.Node) bool {
		out := 0
		g.Incident(n.ID, func(e *graph.Edge) bool {
			if e.Source == n.ID {
				out++
			}
			return true
		})
		if out != 1 {
			t.Errorf("node %s out-degree %d", n.ID, out)
		}
		return true
	})
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.NumNodes() != 12 {
		t.Errorf("grid nodes: %d", g.NumNodes())
	}
	// Edges: rows*(cols-1) + (rows-1)*cols = 3*3 + 2*4 = 17.
	if g.NumEdges() != 17 {
		t.Errorf("grid edges: %d, want 17", g.NumEdges())
	}
}

func TestRandomDeterminism(t *testing.T) {
	cfg := RandomConfig{Accounts: 50, AvgDegree: 2, Cities: 5, Phones: 10, BlockedFraction: 0.1, Seed: 42, UndirectedPhones: true}
	a := Random(cfg)
	b := Random(cfg)
	if a.Stats() != b.Stats() {
		t.Errorf("same seed must give identical graphs:\n%s\n%s", a.Stats(), b.Stats())
	}
	cfg.Seed = 43
	c := Random(cfg)
	// Different seeds virtually always differ in at least one edge
	// endpoint; compare a cheap fingerprint.
	fp := func(g *graph.Graph) string {
		s := ""
		g.Edges(func(e *graph.Edge) bool {
			s += string(e.Source) + ">" + string(e.Target) + ";"
			return true
		})
		return s
	}
	if fp(a) == fp(c) {
		t.Errorf("different seeds should differ")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLaunderingRings(t *testing.T) {
	g := LaunderingRings(4, 5, 10, 7)
	if g.NumNodes() != 20 {
		t.Errorf("nodes: %d", g.NumNodes())
	}
	if g.NumEdges() != 4*5+10 {
		t.Errorf("edges: %d", g.NumEdges())
	}
	// One flagged account per ring.
	blocked := 0
	g.Nodes(func(n *graph.Node) bool {
		if n.Prop("isBlocked").Display() == "yes" {
			blocked++
		}
		return true
	})
	if blocked != 4 {
		t.Errorf("blocked: %d, want 4", blocked)
	}
	if v := g.Node("a0").Prop("ring"); !value.Identical(v, value.Int(0)) {
		t.Errorf("ring property: %v", v)
	}
}
