package dataset

import (
	"strings"
	"testing"
	"time"

	"gpml/internal/graph"
	"gpml/internal/value"
)

// Figure 1 exactly: 14 nodes (6 accounts, 2 locations, 4 phones, 2 IPs)
// and 22 edges (8 transfers, 6 isLocatedIn, 6 hasPhone, 2 signInWithIP).
func TestFig1Shape(t *testing.T) {
	g := Fig1()
	if g.NumNodes() != 14 {
		t.Errorf("nodes: %d, want 14", g.NumNodes())
	}
	if g.NumEdges() != 22 {
		t.Errorf("edges: %d, want 22", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	g.Edges(func(e *graph.Edge) bool {
		for _, l := range e.Labels {
			counts[l]++
		}
		return true
	})
	want := map[string]int{"Transfer": 8, "isLocatedIn": 6, "hasPhone": 6, "signInWithIP": 2}
	for l, n := range want {
		if counts[l] != n {
			t.Errorf("%s edges: %d, want %d", l, counts[l], n)
		}
	}
}

func TestFig1Owners(t *testing.T) {
	g := Fig1()
	owners := map[string]string{
		"a1": "Scott", "a2": "Aretha", "a3": "Mike",
		"a4": "Jay", "a5": "Charles", "a6": "Dave",
	}
	for id, owner := range owners {
		n := g.Node(graph.NodeID(id))
		if n == nil {
			t.Fatalf("missing node %s", id)
		}
		if got := n.Prop("owner").Display(); got != owner {
			t.Errorf("%s owner: %q, want %q", id, got, owner)
		}
	}
	// Jay is the only blocked element in the graph.
	blocked := 0
	g.Nodes(func(n *graph.Node) bool {
		if n.Prop("isBlocked").Display() == "yes" {
			blocked++
			if n.ID != "a4" {
				t.Errorf("unexpected blocked node %s", n.ID)
			}
		}
		return true
	})
	if blocked != 1 {
		t.Errorf("blocked nodes: %d, want 1 (a4)", blocked)
	}
}

// The §2 example path path(c1,li1,a1,t1,a3,hp3,p2) is valid in Fig 1.
func TestFig1Section2ExamplePath(t *testing.T) {
	p := graph.Path{
		Nodes: []graph.NodeID{"c1", "a1", "a3", "p2"},
		Edges: []graph.EdgeID{"li1", "t1", "hp3"},
	}
	if err := p.ValidIn(Fig1()); err != nil {
		t.Fatalf("§2 example path invalid: %v", err)
	}
}

func TestFig1TransferTopology(t *testing.T) {
	g := Fig1()
	wantEdges := map[string][2]string{
		"t1": {"a1", "a3"}, "t2": {"a3", "a2"}, "t3": {"a2", "a4"},
		"t4": {"a4", "a6"}, "t5": {"a6", "a3"}, "t6": {"a6", "a5"},
		"t7": {"a3", "a5"}, "t8": {"a5", "a1"},
	}
	for id, ends := range wantEdges {
		e := g.Edge(graph.EdgeID(id))
		if e == nil {
			t.Fatalf("missing edge %s", id)
		}
		if string(e.Source) != ends[0] || string(e.Target) != ends[1] {
			t.Errorf("%s: %s→%s, want %s→%s", id, e.Source, e.Target, ends[0], ends[1])
		}
	}
	// t6 is the only transfer with amount ≤ 5M (it fails §6's prefilter).
	g.Edges(func(e *graph.Edge) bool {
		if !e.HasLabel("Transfer") {
			return true
		}
		amt, _ := e.Prop("amount").AsInt()
		if (amt <= 5_000_000) != (e.ID == "t6") {
			t.Errorf("amount invariant violated at %s (%d)", e.ID, amt)
		}
		return true
	})
}

func TestChain(t *testing.T) {
	g := Chain(5)
	if g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Errorf("chain: %s", g.Stats())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(5)
	if g.NumNodes() != 5 || g.NumEdges() != 5 {
		t.Errorf("cycle: %s", g.Stats())
	}
	// Every node has out-degree 1.
	g.Nodes(func(n *graph.Node) bool {
		out := 0
		g.Incident(n.ID, func(e *graph.Edge) bool {
			if e.Source == n.ID {
				out++
			}
			return true
		})
		if out != 1 {
			t.Errorf("node %s out-degree %d", n.ID, out)
		}
		return true
	})
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.NumNodes() != 12 {
		t.Errorf("grid nodes: %d", g.NumNodes())
	}
	// Edges: rows*(cols-1) + (rows-1)*cols = 3*3 + 2*4 = 17.
	if g.NumEdges() != 17 {
		t.Errorf("grid edges: %d, want 17", g.NumEdges())
	}
}

func TestRandomDeterminism(t *testing.T) {
	cfg := RandomConfig{Accounts: 50, AvgDegree: 2, Cities: 5, Phones: 10, BlockedFraction: 0.1, Seed: 42, UndirectedPhones: true}
	a := Random(cfg)
	b := Random(cfg)
	if a.Stats() != b.Stats() {
		t.Errorf("same seed must give identical graphs:\n%s\n%s", a.Stats(), b.Stats())
	}
	cfg.Seed = 43
	c := Random(cfg)
	// Different seeds virtually always differ in at least one edge
	// endpoint; compare a cheap fingerprint.
	fp := func(g *graph.Graph) string {
		s := ""
		g.Edges(func(e *graph.Edge) bool {
			s += string(e.Source) + ">" + string(e.Target) + ";"
			return true
		})
		return s
	}
	if fp(a) == fp(c) {
		t.Errorf("different seeds should differ")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLaunderingRings(t *testing.T) {
	g := LaunderingRings(4, 5, 10, 7)
	if g.NumNodes() != 20 {
		t.Errorf("nodes: %d", g.NumNodes())
	}
	if g.NumEdges() != 4*5+10 {
		t.Errorf("edges: %d", g.NumEdges())
	}
	// One flagged account per ring.
	blocked := 0
	g.Nodes(func(n *graph.Node) bool {
		if n.Prop("isBlocked").Display() == "yes" {
			blocked++
		}
		return true
	})
	if blocked != 4 {
		t.Errorf("blocked: %d, want 4", blocked)
	}
	if v := g.Node("a0").Prop("ring"); !value.Identical(v, value.Int(0)) {
		t.Errorf("ring property: %v", v)
	}
}

// TestRandomDistinctPairs pins the satellite fix: impossible
// DistinctPairs configs are rejected immediately with a clear error
// instead of the sampler hunting forever for a free pair, and feasible
// ones terminate even at exact capacity.
func TestRandomDistinctPairs(t *testing.T) {
	bad := RandomConfig{Accounts: 3, Edges: 10, DistinctPairs: true, Seed: 1}
	err := bad.Validate()
	if err == nil {
		t.Fatal("Validate accepted 10 distinct edges over 9 ordered pairs")
	}
	if !strings.Contains(err.Error(), "9 ordered pairs") {
		t.Errorf("error %q does not state the pair capacity", err)
	}
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		Random(bad)
	}()
	select {
	case rec := <-done:
		if rec == nil {
			t.Fatal("Random built an impossible distinct-pairs graph")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Random still hunting for a free pair after 10s; want immediate rejection")
	}
	// Exact capacity: all 9 ordered pairs of 3 accounts, each once.
	g := Random(RandomConfig{Accounts: 3, Edges: 9, DistinctPairs: true, Seed: 7})
	pairs := map[string]int{}
	g.Edges(func(e *graph.Edge) bool {
		if e.HasLabel("Transfer") {
			pairs[string(e.Source)+"->"+string(e.Target)]++
		}
		return true
	})
	if len(pairs) != 9 {
		t.Fatalf("distinct pairs: %d, want 9", len(pairs))
	}
	for pair, n := range pairs {
		if n != 1 {
			t.Errorf("pair %s sampled %d times", pair, n)
		}
	}
}

// TestRandomEdgesOverride checks the explicit edge count and that legacy
// configs (Edges unset) are byte-compatible with the AvgDegree path.
func TestRandomEdgesOverride(t *testing.T) {
	g := Random(RandomConfig{Accounts: 10, Edges: 25, Seed: 3})
	count := 0
	g.Edges(func(e *graph.Edge) bool {
		if e.HasLabel("Transfer") {
			count++
		}
		return true
	})
	if count != 25 {
		t.Fatalf("Transfer edges: %d, want 25", count)
	}
	a := Random(RandomConfig{Accounts: 10, AvgDegree: 2.5, Seed: 3})
	b := Random(RandomConfig{Accounts: 10, Edges: 25, Seed: 3})
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("AvgDegree 2.5 built %d edges, Edges 25 built %d", a.NumEdges(), b.NumEdges())
	}
}

// TestSNBShape checks the generator's schema, determinism, and scale
// linearity.
func TestSNBShape(t *testing.T) {
	g := SNB(SNBConfig{ScaleFactor: 0.01, Seed: 42})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	stats := g.LabelStats()
	if stats.NodeLabels["Person"] != 100 || stats.NodeLabels["Forum"] != 10 || stats.NodeLabels["Post"] != 300 {
		t.Fatalf("SF 0.01 node counts = %v, want Person=100 Forum=10 Post=300", stats.NodeLabels)
	}
	for _, l := range []string{"knows", "likes", "hasCreator", "containerOf", "hasMember", "hasModerator"} {
		if stats.EdgeLabels[l] == 0 {
			t.Errorf("no %s edges generated", l)
		}
	}
	if stats.EdgeLabels["hasCreator"] != 300 {
		t.Errorf("hasCreator edges = %d, want one per post", stats.EdgeLabels["hasCreator"])
	}
	// knows must be undirected and skewed: the max degree well above the
	// mean marks the power-law hubs.
	maxDeg, total := 0, 0
	g.Nodes(func(n *graph.Node) bool {
		if !n.HasLabel("Person") {
			return true
		}
		d := g.Degree(n.ID)
		total += d
		if d > maxDeg {
			maxDeg = d
		}
		return true
	})
	if mean := total / 100; maxDeg < 3*mean {
		t.Errorf("max person degree %d is not skewed above mean %d", maxDeg, mean)
	}
	// Determinism: same seed, same graph; different seed, different wiring.
	h := SNB(SNBConfig{ScaleFactor: 0.01, Seed: 42})
	if g.NumEdges() != h.NumEdges() {
		t.Fatalf("same seed built %d vs %d edges", g.NumEdges(), h.NumEdges())
	}
	var gt, ht string
	g.Edges(func(e *graph.Edge) bool { gt += string(e.ID) + ">" + string(e.Target) + ";"; return true })
	h.Edges(func(e *graph.Edge) bool { ht += string(e.ID) + ">" + string(e.Target) + ";"; return true })
	if gt != ht {
		t.Fatal("same seed produced different wiring")
	}
	// Scale linearity: SF 0.02 doubles the node counts.
	big := SNB(SNBConfig{ScaleFactor: 0.02, Seed: 42})
	if bs := big.LabelStats(); bs.NodeLabels["Person"] != 200 || bs.NodeLabels["Post"] != 600 {
		t.Errorf("SF 0.02 node counts = %v, want Person=200 Post=600", bs.NodeLabels)
	}
}
