// Package dataset provides the paper's Figure 1 property graph and
// deterministic synthetic graph generators used by the examples, tests and
// the benchmark harness.
package dataset

import "gpml/internal/graph"

// Fig1 builds the banking property graph of Figure 1 exactly: six Account
// nodes, two location nodes (a Country and a City∧Country node), four Phone
// nodes and two IP nodes, connected by eight Transfer edges, six
// isLocatedIn edges, six undirected hasPhone edges and two signInWithIP
// edges.
//
// Edge directions and property values follow the figure and the worked
// examples in §§4–6: the transfer chain a1→a3→a2→a4→a6→{a3,a5}, a3→a5,
// a5→a1; Jay's account a4 is the only blocked element; phone p1 connects
// a1 and a5 and phone p2 connects a3 and a2 (the two "same phone" bindings
// of §4.2); edge hp3 connects a3 and p2 (the §2 example path
// path(c1,li1,a1,t1,a3,hp3,p2)); transfer t6 (a6→a5, 4M) is the only
// transfer with amount ≤ 5M.
func Fig1() *graph.Graph {
	b := graph.NewBuilder()

	// Accounts.
	b.Node("a1", []string{"Account"}, "owner", "Scott", "isBlocked", "no")
	b.Node("a2", []string{"Account"}, "owner", "Aretha", "isBlocked", "no")
	b.Node("a3", []string{"Account"}, "owner", "Mike", "isBlocked", "no")
	b.Node("a4", []string{"Account"}, "owner", "Jay", "isBlocked", "yes")
	b.Node("a5", []string{"Account"}, "owner", "Charles", "isBlocked", "no")
	b.Node("a6", []string{"Account"}, "owner", "Dave", "isBlocked", "no")

	// Locations: c1 is a Country (Zembla); c2 is both City and Country
	// (Ankh-Morpork) — the label combination that yields the CityCountry
	// relation in the Figure 2 tabular representation.
	b.Node("c1", []string{"Country"}, "name", "Zembla")
	b.Node("c2", []string{"City", "Country"}, "name", "Ankh-Morpork")

	// Phones and IPs.
	b.Node("p1", []string{"Phone"}, "number", "111", "isBlocked", "no")
	b.Node("p2", []string{"Phone"}, "number", "222", "isBlocked", "no")
	b.Node("p3", []string{"Phone"}, "number", "333", "isBlocked", "no")
	b.Node("p4", []string{"Phone"}, "number", "444", "isBlocked", "no")
	b.Node("ip1", []string{"IP"}, "number", "123.111", "isBlocked", "no")
	b.Node("ip2", []string{"IP"}, "number", "123.222", "isBlocked", "no")

	// Transfers. Dates follow Fig 1's d/m/2020 sequence; amounts in units.
	transfer := func(id, src, dst, date string, amount int64) {
		b.Edge(id, src, dst, []string{"Transfer"}, "date", date, "amount", amount)
	}
	transfer("t1", "a1", "a3", "1/1/2020", 8_000_000)
	transfer("t2", "a3", "a2", "2/1/2020", 10_000_000)
	transfer("t3", "a2", "a4", "3/1/2020", 10_000_000)
	transfer("t4", "a4", "a6", "4/1/2020", 10_000_000)
	transfer("t5", "a6", "a3", "6/1/2020", 10_000_000)
	transfer("t6", "a6", "a5", "7/1/2020", 4_000_000)
	transfer("t7", "a3", "a5", "8/1/2020", 6_000_000)
	transfer("t8", "a5", "a1", "9/1/2020", 9_000_000)

	// Locations of accounts.
	b.Edge("li1", "a1", "c1", []string{"isLocatedIn"})
	b.Edge("li2", "a2", "c2", []string{"isLocatedIn"})
	b.Edge("li3", "a3", "c1", []string{"isLocatedIn"})
	b.Edge("li4", "a4", "c2", []string{"isLocatedIn"})
	b.Edge("li5", "a5", "c1", []string{"isLocatedIn"})
	b.Edge("li6", "a6", "c2", []string{"isLocatedIn"})

	// Phones (undirected, as in the figure's ~[hasPhone]~ examples).
	b.UndirectedEdge("hp1", "a1", "p1", []string{"hasPhone"})
	b.UndirectedEdge("hp2", "a5", "p1", []string{"hasPhone"})
	b.UndirectedEdge("hp3", "a3", "p2", []string{"hasPhone"})
	b.UndirectedEdge("hp4", "a2", "p2", []string{"hasPhone"})
	b.UndirectedEdge("hp5", "a6", "p3", []string{"hasPhone"})
	b.UndirectedEdge("hp6", "a4", "p4", []string{"hasPhone"})

	// Sign-ins with IP.
	b.Edge("sip1", "a1", "ip1", []string{"signInWithIP"})
	b.Edge("sip2", "a5", "ip2", []string{"signInWithIP"})

	return b.MustBuild()
}
