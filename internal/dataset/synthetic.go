package dataset

import (
	"fmt"
	"math/rand"

	"gpml/internal/graph"
)

// The synthetic generators are deterministic (seeded) so benchmarks and
// tests are reproducible. They model the banking workload the paper's
// introduction motivates: accounts, transfers, locations, phones.

// Chain builds a directed Transfer chain a0→a1→…→a(n-1): the best case for
// path search (no branching).
func Chain(n int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.Node(nodeID(i), []string{"Account"}, "owner", owner(i), "isBlocked", blockedFlag(i, n))
	}
	for i := 0; i+1 < n; i++ {
		b.Edge(edgeID(i), nodeID(i), nodeID(i+1), []string{"Transfer"},
			"amount", int64(1_000_000*(2+i%9)), "date", date(i))
	}
	return b.MustBuild()
}

// Cycle builds a directed Transfer ring of n accounts: the adversarial
// case for unrestricted path enumeration (infinitely many walks), used to
// demonstrate restrictor/selector termination.
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.Node(nodeID(i), []string{"Account"}, "owner", owner(i), "isBlocked", blockedFlag(i, n))
	}
	for i := 0; i < n; i++ {
		b.Edge(edgeID(i), nodeID(i), nodeID((i+1)%n), []string{"Transfer"},
			"amount", int64(1_000_000*(2+i%9)), "date", date(i))
	}
	return b.MustBuild()
}

// Grid builds an r×c directed grid (right and down Transfer edges): many
// shortest paths between corners, exercising ALL SHORTEST.
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder()
	id := func(r, c int) string { return fmt.Sprintf("n%d_%d", r, c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.Node(id(r, c), []string{"Account"}, "owner", fmt.Sprintf("u%d_%d", r, c), "isBlocked", "no")
		}
	}
	e := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.Edge(fmt.Sprintf("e%d", e), id(r, c), id(r, c+1), []string{"Transfer"}, "amount", int64(2_000_000))
				e++
			}
			if r+1 < rows {
				b.Edge(fmt.Sprintf("e%d", e), id(r, c), id(r+1, c), []string{"Transfer"}, "amount", int64(2_000_000))
				e++
			}
		}
	}
	return b.MustBuild()
}

// RandomConfig parameterizes the random banking graph.
type RandomConfig struct {
	Accounts  int
	AvgDegree float64 // expected outgoing Transfer edges per account
	Cities    int
	Phones    int
	// BlockedFraction of accounts get isBlocked='yes'.
	BlockedFraction float64
	Seed            int64
	// UndirectedPhones adds ~1 hasPhone edge per account when Phones > 0.
	UndirectedPhones bool
	// Edges, when positive, sets the exact Transfer edge count instead of
	// Accounts*AvgDegree.
	Edges int
	// DistinctPairs rejects duplicate (src, dst) Transfer pairs by
	// rejection sampling, producing a simple directed graph (self-loops
	// still allowed, at most one per account). Such a graph holds at most
	// Accounts*Accounts Transfer edges; configs asking for more are
	// impossible and Validate rejects them — without the check, the
	// sampler would loop forever hunting for a free pair.
	DistinctPairs bool
}

// Validate rejects impossible configurations with a clear error rather
// than letting Random spin: a DistinctPairs graph on N accounts has only
// N*N ordered (src, dst) pairs, so requesting more edges than that can
// never terminate.
func (cfg RandomConfig) Validate() error {
	edges := cfg.Edges
	if edges <= 0 {
		edges = int(float64(cfg.Accounts) * cfg.AvgDegree)
	}
	if cfg.DistinctPairs && edges > cfg.Accounts*cfg.Accounts {
		return fmt.Errorf("dataset: RandomConfig wants %d distinct Transfer edges but %d accounts admit only %d ordered pairs",
			edges, cfg.Accounts, cfg.Accounts*cfg.Accounts)
	}
	return nil
}

// Random builds a seeded random banking graph: Transfer multigraph over
// accounts with the configured average out-degree, isLocatedIn edges to
// cities, and optional undirected hasPhone edges — the fraud-detection
// shape of the paper's running scenario.
func Random(cfg RandomConfig) *graph.Graph {
	if err := cfg.Validate(); err != nil {
		panic(err) // programming error, like Builder.MustBuild on a bad graph
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder()
	for i := 0; i < cfg.Accounts; i++ {
		blocked := "no"
		if rng.Float64() < cfg.BlockedFraction {
			blocked = "yes"
		}
		b.Node(nodeID(i), []string{"Account"}, "owner", owner(i), "isBlocked", blocked)
	}
	for c := 0; c < cfg.Cities; c++ {
		labels := []string{"City"}
		if c%3 == 0 {
			labels = []string{"City", "Country"}
		}
		b.Node(fmt.Sprintf("c%d", c), labels, "name", fmt.Sprintf("city%d", c))
	}
	for p := 0; p < cfg.Phones; p++ {
		b.Node(fmt.Sprintf("p%d", p), []string{"Phone"}, "number", fmt.Sprintf("%03d", p), "isBlocked", "no")
	}
	edges := cfg.Edges
	if edges <= 0 {
		edges = int(float64(cfg.Accounts) * cfg.AvgDegree)
	}
	var used map[[2]int]bool
	if cfg.DistinctPairs {
		used = make(map[[2]int]bool, edges)
	}
	for e := 0; e < edges; e++ {
		src := rng.Intn(cfg.Accounts)
		dst := rng.Intn(cfg.Accounts)
		if cfg.DistinctPairs {
			// Rejection sampling over the free pairs; Validate bounds the
			// request by Accounts*Accounts, so a free pair always exists.
			for used[[2]int{src, dst}] {
				src = rng.Intn(cfg.Accounts)
				dst = rng.Intn(cfg.Accounts)
			}
			used[[2]int{src, dst}] = true
		}
		b.Edge(fmt.Sprintf("t%d", e), nodeID(src), nodeID(dst), []string{"Transfer"},
			"amount", int64(1_000_000+rng.Intn(15_000_000)), "date", date(e))
	}
	if cfg.Cities > 0 {
		for i := 0; i < cfg.Accounts; i++ {
			b.Edge(fmt.Sprintf("li%d", i), nodeID(i), fmt.Sprintf("c%d", rng.Intn(cfg.Cities)),
				[]string{"isLocatedIn"})
		}
	}
	if cfg.UndirectedPhones && cfg.Phones > 0 {
		for i := 0; i < cfg.Accounts; i++ {
			b.UndirectedEdge(fmt.Sprintf("hp%d", i), nodeID(i), fmt.Sprintf("p%d", rng.Intn(cfg.Phones)),
				[]string{"hasPhone"})
		}
	}
	return b.MustBuild()
}

// LaunderingRings builds rings of accounts with ring-internal transfer
// cycles plus random cross-ring transfers; the layered money-laundering
// workload used by examples/social.
func LaunderingRings(rings, ringSize, crossEdges int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	total := rings * ringSize
	for i := 0; i < total; i++ {
		blocked := "no"
		if i%ringSize == 0 {
			blocked = "yes" // one flagged account per ring
		}
		b.Node(nodeID(i), []string{"Account"}, "owner", owner(i), "isBlocked", blocked, "ring", int64(i/ringSize))
	}
	e := 0
	for r := 0; r < rings; r++ {
		base := r * ringSize
		for k := 0; k < ringSize; k++ {
			b.Edge(fmt.Sprintf("t%d", e), nodeID(base+k), nodeID(base+(k+1)%ringSize),
				[]string{"Transfer"}, "amount", int64(2_000_000+rng.Intn(9_000_000)))
			e++
		}
	}
	for k := 0; k < crossEdges; k++ {
		src := rng.Intn(total)
		dst := rng.Intn(total)
		b.Edge(fmt.Sprintf("t%d", e), nodeID(src), nodeID(dst),
			[]string{"Transfer"}, "amount", int64(6_000_000+rng.Intn(9_000_000)))
		e++
	}
	return b.MustBuild()
}

func nodeID(i int) string { return fmt.Sprintf("a%d", i) }
func edgeID(i int) string { return fmt.Sprintf("t%d", i) }
func owner(i int) string  { return fmt.Sprintf("owner%d", i) }
func date(i int) string   { return fmt.Sprintf("%d/%d/2020", 1+i%28, 1+i%12) }

func blockedFlag(i, n int) string {
	if n > 2 && i == n/2 {
		return "yes"
	}
	return "no"
}
