// Package qcache is the compiled-plan cache behind prepared statements:
// a mutex-guarded LRU keyed on token-normalized query text (see
// normalize.QueryKey), with hit/miss/eviction counters and epoch-aware
// invalidation for entries whose validity is bound to one overlay-store
// epoch.
//
// Compiled plans themselves are epoch-independent — cost-based join
// ordering runs at stream time against the pinned snapshot, and element
// indices are stable across epochs and compactions — so the query server
// stores them with epoch 0 ("valid forever"). The epoch tagging exists
// for artifacts that do go stale, such as cached statistics or
// materialized results layered on top of the same cache.
package qcache

import (
	"container/list"
	"sync"
)

// Cache is a fixed-capacity LRU. The zero value is not usable; call New.
// All methods are safe for concurrent use.
type Cache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
	dropped   uint64 // entries removed by Invalidate/InvalidateBelow
}

type entry struct {
	key   string
	val   any
	epoch uint64 // 0 = epoch-independent
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Evictions   uint64 `json:"evictions"`
	Invalidated uint64 `json:"invalidated"`
	Size        int    `json:"size"`
	Cap         int    `json:"cap"`
}

// HitRatio returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// New returns an empty cache holding at most capacity entries;
// capacity < 1 is treated as 1.
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the value cached under key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put caches an epoch-independent value under key (epoch 0).
func (c *Cache) Put(key string, val any) { c.PutEpoch(key, val, 0) }

// PutEpoch caches a value tagged with the store epoch it was computed
// against; InvalidateBelow later removes it once that epoch is obsolete.
// An existing entry under the same key is replaced in place.
func (c *Cache) PutEpoch(key string, val any, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		e.val, e.epoch = val, epoch
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val, epoch: epoch})
	for c.ll.Len() > c.cap {
		c.removeLocked(c.ll.Back())
		c.evictions++
	}
}

// Invalidate removes the entry under key, reporting whether one existed.
func (c *Cache) Invalidate(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.removeLocked(el)
	c.dropped++
	return true
}

// InvalidateBelow removes every epoch-tagged entry computed against an
// epoch older than seq and returns how many were dropped. It is the hook
// an overlay store's publish path calls with the newly published epoch
// number; epoch-independent entries (epoch 0) are never touched.
func (c *Cache) InvalidateBelow(seq uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry)
		if e.epoch != 0 && e.epoch < seq {
			c.removeLocked(el)
			n++
		}
		el = next
	}
	c.dropped += uint64(n)
	return n
}

// Clear drops every entry, keeping the counters.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropped += uint64(c.ll.Len())
	c.ll.Init()
	clear(c.items)
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Invalidated: c.dropped,
		Size:        c.ll.Len(),
		Cap:         c.cap,
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	c.ll.Remove(el)
	delete(c.items, el.Value.(*entry).key)
}
