package qcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEvictionOrder(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // a becomes most recent
		t.Fatal("a missing")
	}
	c.Put("c", 3) // evicts b, the least recently used
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Size != 2 || st.Cap != 2 {
		t.Fatalf("size/cap = %d/%d, want 2/2", st.Size, st.Cap)
	}
}

func TestCounters(t *testing.T) {
	c := New(4)
	c.Get("missing")
	c.Put("k", "v")
	c.Get("k")
	c.Get("k")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
	if got := st.HitRatio(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit ratio = %v, want 2/3", got)
	}
}

func TestPutReplacesInPlace(t *testing.T) {
	c := New(2)
	c.Put("k", 1)
	c.Put("k", 2)
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	v, _ := c.Get("k")
	if v != 2 {
		t.Fatalf("got %v, want 2", v)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(4)
	c.Put("k", 1)
	if !c.Invalidate("k") {
		t.Fatal("Invalidate should report the entry existed")
	}
	if c.Invalidate("k") {
		t.Fatal("second Invalidate should report absence")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry should be gone")
	}
	if st := c.Stats(); st.Invalidated != 1 {
		t.Fatalf("invalidated = %d, want 1", st.Invalidated)
	}
}

// TestEpochInvalidation pins the overlay-store hook contract: publishing
// epoch N drops entries computed against epochs < N, while
// epoch-independent entries (compiled plans) are never touched.
func TestEpochInvalidation(t *testing.T) {
	c := New(8)
	c.Put("plan", "epoch-independent")
	c.PutEpoch("stats@3", "v", 3)
	c.PutEpoch("stats@5", "v", 5)
	if n := c.InvalidateBelow(5); n != 1 {
		t.Fatalf("InvalidateBelow(5) dropped %d, want 1", n)
	}
	if _, ok := c.Get("stats@3"); ok {
		t.Fatal("epoch-3 entry should be invalidated by epoch 5")
	}
	if _, ok := c.Get("stats@5"); !ok {
		t.Fatal("epoch-5 entry should survive")
	}
	if _, ok := c.Get("plan"); !ok {
		t.Fatal("epoch-independent entry must never be epoch-invalidated")
	}
}

func TestClear(t *testing.T) {
	c := New(4)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("len = %d after Clear, want 0", c.Len())
	}
	if st := c.Stats(); st.Invalidated != 2 {
		t.Fatalf("invalidated = %d, want 2", st.Invalidated)
	}
}

// TestConcurrentAccess runs mixed readers/writers/invalidators under the
// race detector.
func TestConcurrentAccess(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				switch i % 4 {
				case 0:
					c.Put(key, i)
				case 1:
					c.Get(key)
				case 2:
					c.PutEpoch(key, i, uint64(i%7+1))
				default:
					c.InvalidateBelow(uint64(i % 7))
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("len = %d exceeds capacity", c.Len())
	}
}
