package lexer

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Error is a lexical error with position information.
type Error struct {
	Msg  string
	Line int
	Col  int
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("lex error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Pos returns the 1-based source position the error points at.
func (e *Error) Pos() (line, col int) { return e.Line, e.Col }

// Lexer scans GPML source text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer { return &Lexer{src: src, line: 1, col: 1} }

// Tokenize scans the entire input and returns all tokens including the
// trailing EOF token.
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

func (l *Lexer) errf(format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...), Line: l.line, Col: l.col}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekAt(1) == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &Error{Msg: "unterminated block comment", Line: startLine, Col: startCol}
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = EOF
		return tok, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(rune(c)) || c >= utf8.RuneSelf:
		return l.lexWord(tok)
	case c >= '0' && c <= '9':
		return l.lexNumber(tok)
	case c == '\'':
		return l.lexString(tok)
	case c == '$':
		return l.lexParam(tok)
	}
	l.advance()
	switch c {
	case '(':
		tok.Kind = LPAREN
	case ')':
		tok.Kind = RPAREN
	case '[':
		tok.Kind = LBRACKET
	case ']':
		tok.Kind = RBRACKET
	case '{':
		tok.Kind = LBRACE
	case '}':
		tok.Kind = RBRACE
	case ',':
		tok.Kind = COMMA
	case '.':
		tok.Kind = DOT
	case ':':
		tok.Kind = COLON
	case '|':
		if l.peek() == '+' && l.peekAt(1) == '|' {
			l.advance()
			l.advance()
			tok.Kind = MULTIBAR
		} else {
			tok.Kind = BAR
		}
	case '<':
		switch l.peek() {
		case '=':
			l.advance()
			tok.Kind = LE
		case '>':
			l.advance()
			tok.Kind = NE
		default:
			tok.Kind = LT
		}
	case '>':
		if l.peek() == '=' {
			l.advance()
			tok.Kind = GE
		} else {
			tok.Kind = GT
		}
	case '=':
		tok.Kind = EQ
	case '-':
		tok.Kind = MINUS
	case '+':
		tok.Kind = PLUS
	case '*':
		tok.Kind = STAR
	case '/':
		tok.Kind = SLASH
	case '%':
		tok.Kind = PERCENT
	case '~':
		tok.Kind = TILDE
	case '?':
		tok.Kind = QUESTION
	case '!':
		tok.Kind = BANG
	case '&':
		tok.Kind = AMP
	default:
		return Token{}, &Error{Msg: fmt.Sprintf("unexpected character %q", c), Line: tok.Line, Col: tok.Col}
	}
	return tok, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *Lexer) lexWord(tok Token) (Token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		for i := 0; i < size; i++ {
			l.advance()
		}
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if IsKeyword(upper) {
		tok.Kind = KEYWORD
		tok.Text = upper
		return tok, nil
	}
	tok.Kind = IDENT
	tok.Text = word
	return tok, nil
}

// lexNumber scans an integer or float. The paper writes amounts like 5M and
// 10M "for readability"; the lexer accepts the multiplier suffixes K, M and
// B (×10³, ×10⁶, ×10⁹) on integer literals.
func (l *Lexer) lexNumber(tok Token) (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
		l.advance()
	}
	isFloat := false
	// A '.' starts a fraction only when followed by a digit: "1.5" is a
	// float, but "e.amount" style property access after an integer (as in
	// range syntax "{1,2}") never puts '.' directly after a number, and
	// "123.foo" should not silently become a float.
	if l.peek() == '.' && l.peekAt(1) >= '0' && l.peekAt(1) <= '9' {
		isFloat = true
		l.advance()
		for l.pos < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
			l.advance()
		}
	}
	if c := l.peek(); c == 'e' || c == 'E' {
		// Exponent: e[+-]?digits. Only if followed by a digit or sign+digit,
		// otherwise it is an identifier boundary (e.g. "5M" handled below).
		off := 1
		if s := l.peekAt(1); s == '+' || s == '-' {
			off = 2
		}
		if d := l.peekAt(off); d >= '0' && d <= '9' {
			isFloat = true
			for i := 0; i < off; i++ {
				l.advance()
			}
			for l.pos < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
				l.advance()
			}
		}
	}
	text := l.src[start:l.pos]
	var mult int64 = 1
	switch c := l.peek(); c {
	case 'K', 'k':
		mult = 1_000
	case 'M', 'm':
		mult = 1_000_000
	case 'B', 'b':
		mult = 1_000_000_000
	}
	if mult != 1 {
		// Consume the suffix only when it is not part of a longer word
		// (e.g. "5Mx" is an error, "5 Mx" lexes separately).
		if next := rune(l.peekAt(1)); !isIdentPart(next) || l.peekAt(1) == 0 {
			l.advance()
		} else {
			return Token{}, l.errf("invalid numeric suffix in %q", text+string(l.peek()))
		}
	}
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, l.errf("invalid float literal %q: %v", text, err)
		}
		tok.Kind = FLOAT
		tok.Float = f * float64(mult)
		return tok, nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Token{}, l.errf("invalid integer literal %q: %v", text, err)
	}
	tok.Kind = INT
	tok.Int = i * mult
	return tok, nil
}

// lexParam scans a $name query parameter. The name follows identifier
// rules and keeps its source spelling: parameters are named by the caller,
// not by the language, so no keyword folding applies.
func (l *Lexer) lexParam(tok Token) (Token, error) {
	l.advance() // '$'
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		for i := 0; i < size; i++ {
			l.advance()
		}
	}
	if l.pos == start {
		return Token{}, &Error{Msg: "expected parameter name after '$'", Line: tok.Line, Col: tok.Col}
	}
	tok.Kind = PARAM
	tok.Text = l.src[start:l.pos]
	return tok, nil
}

// lexString scans a single-quoted string; ” escapes a quote (SQL style).
func (l *Lexer) lexString(tok Token) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return Token{}, &Error{Msg: "unterminated string literal", Line: tok.Line, Col: tok.Col}
		}
		c := l.advance()
		if c == '\'' {
			if l.peek() == '\'' {
				l.advance()
				b.WriteByte('\'')
				continue
			}
			tok.Kind = STRING
			tok.Text = b.String()
			return tok, nil
		}
		b.WriteByte(c)
	}
}
