// Package lexer tokenizes GPML query text.
//
// GPML's "ASCII art" pattern syntax reuses characters that also appear in
// value expressions (<, >, -, ~, *, +, %, !). The lexer therefore emits
// fine-grained tokens and leaves the assembly of edge patterns such as
// <-[e]-> to the parser, which knows whether it is reading a pattern or an
// expression. Only unambiguous multi-character operators are fused here:
// <=, >=, <>, and the multiset-alternation operator |+|.
package lexer

import "fmt"

// Kind enumerates token kinds.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	KEYWORD // canonical upper-case spelling in Text
	STRING  // decoded payload in Text
	INT     // int64 payload in Int
	FLOAT   // float64 payload in Float
	PARAM   // $name placeholder; name (without '$') in Text

	LPAREN   // (
	RPAREN   // )
	LBRACKET // [
	RBRACKET // ]
	LBRACE   // {
	RBRACE   // }
	COMMA    // ,
	DOT      // .
	COLON    // :
	BAR      // |
	MULTIBAR // |+|
	LT       // <
	GT       // >
	LE       // <=
	GE       // >=
	NE       // <>
	EQ       // =
	MINUS    // -
	PLUS     // +
	STAR     // *
	SLASH    // /
	PERCENT  // %
	TILDE    // ~
	QUESTION // ?
	BANG     // !
	AMP      // &
)

// String names the token kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case EOF:
		return "end of input"
	case IDENT:
		return "identifier"
	case KEYWORD:
		return "keyword"
	case STRING:
		return "string literal"
	case INT:
		return "integer literal"
	case FLOAT:
		return "float literal"
	case PARAM:
		return "parameter"
	case LPAREN:
		return "'('"
	case RPAREN:
		return "')'"
	case LBRACKET:
		return "'['"
	case RBRACKET:
		return "']'"
	case LBRACE:
		return "'{'"
	case RBRACE:
		return "'}'"
	case COMMA:
		return "','"
	case DOT:
		return "'.'"
	case COLON:
		return "':'"
	case BAR:
		return "'|'"
	case MULTIBAR:
		return "'|+|'"
	case LT:
		return "'<'"
	case GT:
		return "'>'"
	case LE:
		return "'<='"
	case GE:
		return "'>='"
	case NE:
		return "'<>'"
	case EQ:
		return "'='"
	case MINUS:
		return "'-'"
	case PLUS:
		return "'+'"
	case STAR:
		return "'*'"
	case SLASH:
		return "'/'"
	case PERCENT:
		return "'%'"
	case TILDE:
		return "'~'"
	case QUESTION:
		return "'?'"
	case BANG:
		return "'!'"
	case AMP:
		return "'&'"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Token is a lexed token with its source position (1-based line/column).
type Token struct {
	Kind  Kind
	Text  string // identifier text, keyword canonical form, or string payload
	Int   int64
	Float float64
	Line  int
	Col   int
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return fmt.Sprintf("identifier %q", t.Text)
	case KEYWORD:
		return fmt.Sprintf("keyword %s", t.Text)
	case STRING:
		return fmt.Sprintf("string '%s'", t.Text)
	case INT:
		return fmt.Sprintf("integer %d", t.Int)
	case FLOAT:
		return fmt.Sprintf("float %g", t.Float)
	case PARAM:
		return fmt.Sprintf("parameter $%s", t.Text)
	default:
		return t.Kind.String()
	}
}

// Keywords recognized by GPML (case-insensitive in source; canonicalized to
// upper case). Identifiers matching these become KEYWORD tokens; the parser
// may still accept some keywords as identifiers where unambiguous.
var keywords = map[string]bool{
	"MATCH": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true, "XOR": true,
	"IS": true, "NULL": true, "TRUE": true, "FALSE": true, "UNKNOWN": true,
	"DIRECTED": true, "SOURCE": true, "DESTINATION": true, "OF": true,
	"TRAIL": true, "ACYCLIC": true, "SIMPLE": true,
	"ANY": true, "ALL": true, "SHORTEST": true, "GROUP": true,
	"SAME": true, "ALL_DIFFERENT": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"DISTINCT": true, "KEEP": true, "AS": true, "COLUMNS": true,
	"LISTAGG": true,
}

// IsKeyword reports whether the upper-cased word is a reserved keyword.
func IsKeyword(upper string) bool { return keywords[upper] }
