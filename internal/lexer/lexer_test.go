package lexer

import (
	"strings"
	"testing"
)

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("tokenize %q: %v", src, err)
	}
	out := make([]Kind, 0, len(toks))
	for _, tok := range toks {
		out = append(out, tok.Kind)
	}
	return out
}

func equalKinds(a, b []Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPunctuation(t *testing.T) {
	got := kinds(t, "( ) [ ] { } , . : | <->")
	want := []Kind{LPAREN, RPAREN, LBRACKET, RBRACKET, LBRACE, RBRACE, COMMA, DOT, COLON, BAR, LT, MINUS, GT, EOF}
	if !equalKinds(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestFusedOperators(t *testing.T) {
	got := kinds(t, "<= >= <> |+|")
	want := []Kind{LE, GE, NE, MULTIBAR, EOF}
	if !equalKinds(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
	// '<' '-' stays split (edge arrows are assembled by the parser, so
	// "a < -5" lexes correctly).
	got = kinds(t, "a < -5")
	want = []Kind{IDENT, LT, MINUS, INT, EOF}
	if !equalKinds(got, want) {
		t.Errorf("a < -5: got %v want %v", got, want)
	}
	// '|' not followed by '+|' stays BAR.
	got = kinds(t, "| + |")
	want = []Kind{BAR, PLUS, BAR, EOF}
	if !equalKinds(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	for _, src := range []string{"MATCH", "match", "Match", "mAtCh"} {
		toks, err := Tokenize(src)
		if err != nil {
			t.Fatal(err)
		}
		if toks[0].Kind != KEYWORD || toks[0].Text != "MATCH" {
			t.Errorf("%q: got %v %q", src, toks[0].Kind, toks[0].Text)
		}
	}
	toks, _ := Tokenize("owner")
	if toks[0].Kind != IDENT || toks[0].Text != "owner" {
		t.Errorf("identifier case must be preserved: %+v", toks[0])
	}
	if !IsKeyword("ALL_DIFFERENT") || IsKeyword("OWNER") {
		t.Errorf("IsKeyword wrong")
	}
}

func TestStrings(t *testing.T) {
	toks, err := Tokenize("'Ankh-Morpork' 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "Ankh-Morpork" {
		t.Errorf("string 1: %q", toks[0].Text)
	}
	if toks[1].Text != "it's" {
		t.Errorf("escaped quote: %q", toks[1].Text)
	}
	if _, err := Tokenize("'unterminated"); err == nil {
		t.Errorf("unterminated string must fail")
	}
}

func TestNumbers(t *testing.T) {
	toks, err := Tokenize("42 1.5 2e3 1.5e-2 5M 10K 2B 3m")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != INT || toks[0].Int != 42 {
		t.Errorf("42: %+v", toks[0])
	}
	if toks[1].Kind != FLOAT || toks[1].Float != 1.5 {
		t.Errorf("1.5: %+v", toks[1])
	}
	if toks[2].Kind != FLOAT || toks[2].Float != 2000 {
		t.Errorf("2e3: %+v", toks[2])
	}
	if toks[3].Kind != FLOAT || toks[3].Float != 0.015 {
		t.Errorf("1.5e-2: %+v", toks[3])
	}
	if toks[4].Kind != INT || toks[4].Int != 5_000_000 {
		t.Errorf("5M: %+v", toks[4])
	}
	if toks[5].Kind != INT || toks[5].Int != 10_000 {
		t.Errorf("10K: %+v", toks[5])
	}
	if toks[6].Kind != INT || toks[6].Int != 2_000_000_000 {
		t.Errorf("2B: %+v", toks[6])
	}
	if toks[7].Kind != INT || toks[7].Int != 3_000_000 {
		t.Errorf("3m (lower-case suffix): %+v", toks[7])
	}
}

func TestNumberEdgeCases(t *testing.T) {
	// Quantifier braces: {1,2} must lex the ints cleanly.
	got := kinds(t, "{1,2}")
	want := []Kind{LBRACE, INT, COMMA, INT, RBRACE, EOF}
	if !equalKinds(got, want) {
		t.Errorf("{1,2}: %v", got)
	}
	// Property access after an int-valued context: "1.x" is not a float.
	got = kinds(t, "1 .x")
	want = []Kind{INT, DOT, IDENT, EOF}
	if !equalKinds(got, want) {
		t.Errorf("1 .x: %v", got)
	}
	// Invalid suffix: "5Mx" must error.
	if _, err := Tokenize("5Mx"); err == nil {
		t.Errorf("5Mx must fail")
	}
	// Overflow.
	if _, err := Tokenize("999999999999999999999999"); err == nil {
		t.Errorf("overflowing int must fail")
	}
}

func TestComments(t *testing.T) {
	toks, err := Tokenize("MATCH // a line comment\n (x) /* block\ncomment */ WHERE")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind != EOF {
			texts = append(texts, tok.String())
		}
	}
	if len(texts) != 5 { // MATCH ( x ) WHERE
		t.Errorf("comments not skipped: %v", texts)
	}
	if _, err := Tokenize("/* unterminated"); err == nil {
		t.Errorf("unterminated block comment must fail")
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("MATCH\n  (x)")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("MATCH position: %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("( position: %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	_, err := Tokenize("abc\n  @")
	if err == nil {
		t.Fatalf("@ must fail")
	}
	le, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type: %T", err)
	}
	if le.Line != 2 || le.Col != 3 {
		t.Errorf("error position: %d:%d", le.Line, le.Col)
	}
	if !strings.Contains(le.Error(), "2:3") {
		t.Errorf("error message: %v", le)
	}
}

func TestUnicodeIdentifiers(t *testing.T) {
	toks, err := Tokenize("conta_bancária")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != IDENT || toks[0].Text != "conta_bancária" {
		t.Errorf("unicode ident: %+v", toks[0])
	}
}

func TestEdgePatternTokenStream(t *testing.T) {
	// The paper's full edge pattern: <-[e:Transfer WHERE e.amount>5M]->
	got := kinds(t, "<-[e:Transfer WHERE e.amount>5M]->")
	want := []Kind{LT, MINUS, LBRACKET, IDENT, COLON, IDENT, KEYWORD, IDENT, DOT, IDENT, GT, INT, RBRACKET, MINUS, GT, EOF}
	if !equalKinds(got, want) {
		t.Errorf("edge pattern stream:\n got  %v\n want %v", got, want)
	}
}

func TestTokenAndKindStrings(t *testing.T) {
	toks, _ := Tokenize("x 'a' 1 1.5 MATCH (")
	for _, tok := range toks {
		if tok.String() == "" {
			t.Errorf("empty token string for %v", tok.Kind)
		}
	}
	for k := EOF; k <= AMP; k++ {
		if k.String() == "" {
			t.Errorf("empty kind string for %d", k)
		}
	}
}
