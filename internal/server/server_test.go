package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gpml"
	"gpml/internal/dataset"
	"gpml/internal/gql"
	"gpml/internal/graph"
	"gpml/internal/server"
)

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.Catalog == nil {
		catalog := gql.NewCatalog()
		if err := catalog.Register("fig1", gpml.Snapshot(gpml.Fig1())); err != nil {
			t.Fatal(err)
		}
		cfg.Catalog = catalog
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// ndjsonResult is a decoded /query stream.
type ndjsonResult struct {
	columns []string
	cached  bool
	rows    [][]string
	total   int
	trunc   bool
	errKind string
	errMsg  string
	diag    string
}

func postQuery(t *testing.T, url string, body map[string]any) (int, *ndjsonResult) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	res := &ndjsonResult{}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error struct {
				Message, Kind, Diagnostic string
			} `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("status %d with undecodable body: %v", resp.StatusCode, err)
		}
		res.errKind, res.errMsg, res.diag = e.Error.Kind, e.Error.Message, e.Error.Diagnostic
		return resp.StatusCode, res
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if first {
			var h struct {
				Columns []string `json:"columns"`
				Cached  bool     `json:"cached"`
			}
			if err := json.Unmarshal(line, &h); err != nil {
				t.Fatalf("header: %v in %s", err, line)
			}
			res.columns, res.cached = h.Columns, h.Cached
			first = false
			continue
		}
		var rec struct {
			Row   []string `json:"row"`
			Rows  *int     `json:"rows"`
			Trunc bool     `json:"truncated"`
			Error *struct {
				Message, Kind string
			} `json:"error"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("record: %v in %s", err, line)
		}
		switch {
		case rec.Error != nil:
			res.errKind, res.errMsg = rec.Error.Kind, rec.Error.Message
		case rec.Rows != nil:
			res.total, res.trunc = *rec.Rows, rec.Trunc
		default:
			res.rows = append(res.rows, rec.Row)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, res
}

func TestServeQueryMatchesInProcessStream(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	query := `MATCH (x:Account)-[t:Transfer]->(y:Account)`
	status, res := postQuery(t, ts.URL, map[string]any{"query": query, "gql": true})
	if status != 200 {
		t.Fatalf("status %d: %s", status, res.errMsg)
	}
	if res.errKind != "" {
		t.Fatalf("stream error: %s %s", res.errKind, res.errMsg)
	}
	// In-process reference: same store type, same streaming order.
	q := gpml.MustCompile(query, gpml.GQLMode())
	rows, err := q.Stream(nil, gpml.Snapshot(gpml.Fig1()))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var want [][]string
	for rows.Next() {
		row := rows.Row()
		cells := make([]string, len(res.columns))
		for i, c := range res.columns {
			if b, ok := row.Get(c); ok {
				cells[i] = b.String()
			} else {
				cells[i] = "NULL"
			}
		}
		want = append(want, cells)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(res.rows) != len(want) || res.total != len(want) {
		t.Fatalf("HTTP returned %d rows (trailer %d), in-process %d", len(res.rows), res.total, len(want))
	}
	for i := range want {
		if strings.Join(res.rows[i], "|") != strings.Join(want[i], "|") {
			t.Fatalf("row %d diverges: HTTP %v, in-process %v", i, res.rows[i], want[i])
		}
	}
}

// Repeated parameterized sends of one statement must hit the plan cache:
// >90% hit ratio and cached:true from the second request on.
func TestPlanCacheHitRatio(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{})
	query := `MATCH (x:Account WHERE x.isBlocked = $blocked)`
	variants := []string{
		query,
		"  MATCH (x:Account WHERE x.isBlocked = $blocked)",
		"match (x:Account where x.isBlocked = $blocked) // resend",
	}
	for i := 0; i < 60; i++ {
		blocked := "no"
		if i%3 == 0 {
			blocked = "yes"
		}
		status, res := postQuery(t, ts.URL, map[string]any{
			"query":  variants[i%len(variants)],
			"gql":    true,
			"params": map[string]any{"blocked": blocked},
		})
		if status != 200 || res.errKind != "" {
			t.Fatalf("request %d: status %d, err %s %s", i, status, res.errKind, res.errMsg)
		}
		if i > 0 && !res.cached {
			t.Errorf("request %d missed the cache despite tokenizing identically", i)
		}
	}
	st := srv.Cache().Stats()
	if ratio := st.HitRatio(); ratio <= 0.9 {
		t.Fatalf("hit ratio %.2f (hits %d, misses %d), want > 0.9", ratio, st.Hits, st.Misses)
	}
	if st.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 (all variants share one key)", st.Misses)
	}
}

func TestErrorResponses(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	// Parse error: 400, positioned, caret diagnostic pointing into the
	// submitted source.
	status, res := postQuery(t, ts.URL, map[string]any{"query": "MATCH (a)-[e->(b)"})
	if status != http.StatusBadRequest || res.errKind != "compile" {
		t.Fatalf("parse error: status %d kind %q", status, res.errKind)
	}
	if !strings.Contains(res.diag, "^") || !strings.Contains(res.diag, "MATCH (a)-[e->(b)") {
		t.Errorf("parse error diagnostic missing caret/source:\n%s", res.diag)
	}

	// Bind error: used placeholder without a value.
	status, res = postQuery(t, ts.URL, map[string]any{
		"query": `MATCH (x:Account WHERE x.isBlocked = $b)`,
	})
	if status != http.StatusBadRequest || res.errKind != "bind" {
		t.Fatalf("bind error: status %d kind %q (%s)", status, res.errKind, res.errMsg)
	}
	if !strings.Contains(res.errMsg, "$b") {
		t.Errorf("bind error message should name the parameter: %s", res.errMsg)
	}

	// Unknown graph: 404.
	status, res = postQuery(t, ts.URL, map[string]any{"query": "MATCH (x)", "graph": "nope"})
	if status != http.StatusNotFound || res.errKind != "not_found" {
		t.Fatalf("unknown graph: status %d kind %q", status, res.errKind)
	}

	// Unsupported param type: 400 before evaluation.
	status, res = postQuery(t, ts.URL, map[string]any{
		"query":  `MATCH (x:Account WHERE x.isBlocked = $b)`,
		"params": map[string]any{"b": []int{1, 2}},
	})
	if status != http.StatusBadRequest || res.errKind != "bad_request" {
		t.Fatalf("bad param type: status %d kind %q", status, res.errKind)
	}
}

func TestRowLimitTruncation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	status, res := postQuery(t, ts.URL, map[string]any{
		"query": `MATCH (x:Account)-[t:Transfer]->(y:Account)`,
		"gql":   true,
		"limit": 2,
	})
	if status != 200 || res.errKind != "" {
		t.Fatalf("status %d err %s", status, res.errKind)
	}
	if len(res.rows) != 2 || !res.trunc {
		t.Fatalf("rows %d truncated %v, want 2/true", len(res.rows), res.trunc)
	}
}

// A deadline expiring mid-stream surfaces as a terminal NDJSON error
// record with kind "deadline" — the stream already committed status 200.
func TestDeadlineMidStream(t *testing.T) {
	catalog := gql.NewCatalog()
	big := dataset.Random(dataset.RandomConfig{
		Accounts: 800, AvgDegree: 4, Cities: 8, Phones: 20,
		BlockedFraction: 0.1, Seed: 7, UndirectedPhones: true,
	})
	if err := catalog.Register("big", gpml.Snapshot(big)); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, server.Config{Catalog: catalog})
	status, res := postQuery(t, ts.URL, map[string]any{
		"query":      `MATCH TRAIL (x:Account)-[t:Transfer]->+(y:Account)`,
		"gql":        true,
		"timeout_ms": 50,
	})
	if status != 200 {
		t.Fatalf("status %d (deadline should fire mid-stream, after 200)", status)
	}
	if res.errKind != "deadline" {
		t.Fatalf("terminal record kind %q msg %q, want deadline", res.errKind, res.errMsg)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{})
	if _, res := postQuery(t, ts.URL, map[string]any{"query": "MATCH (x:Account)"}); res.errKind != "" {
		t.Fatalf("warmup query failed: %s", res.errMsg)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Cache    struct{ Hits, Misses uint64 }
		Queries  uint64
		Rows     uint64
		Graphs   []string
		Draining bool
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Queries != 1 || stats.Graphs[0] != "fig1" || stats.Draining {
		t.Fatalf("stats: %+v", stats)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d before drain", resp.StatusCode)
	}

	srv.Drain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %d while draining, want 503", resp.StatusCode)
	}
	if status, res := postQuery(t, ts.URL, map[string]any{"query": "MATCH (x)"}); status != http.StatusServiceUnavailable || res.errKind != "unavailable" {
		t.Fatalf("draining /query: status %d kind %q", status, res.errKind)
	}
}

// The serving smoke scenario: concurrent parameterized queries against a
// live overlay store while a writer publishes epochs. Run under -race in
// CI. Readers must never observe an error: each query pins one epoch,
// and compiled plans survive ordinary publishes — the invalidation hook
// is reserved for store-identity changes (recovery, store swap), so the
// writer does NOT call it here and the hit ratio stays high.
func TestConcurrentQueriesWithWriter(t *testing.T) {
	ov := gpml.NewOverlay(gpml.Fig1())
	catalog := gql.NewCatalog()
	if err := catalog.Register("live", ov); err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, server.Config{Catalog: catalog, MaxConcurrent: 4})

	const readers, perReader, writes = 6, 25, 40
	var wg sync.WaitGroup
	errc := make(chan error, readers*perReader+writes)

	wg.Add(1)
	go func() { // background writer: grow the graph, publish epochs
		defer wg.Done()
		for i := 0; i < writes; i++ {
			id := fmt.Sprintf("w%d", i)
			b := ov.Begin().
				AddNode(gpml.NodeID(id), []string{"Account"}, map[string]gpml.Value{"isBlocked": gpml.Str("no")}).
				AddEdge(gpml.EdgeID("e"+id), gpml.NodeID(id), "a1", []string{"Transfer"}, map[string]gpml.Value{"amount": gpml.Int(int64(i))})
			if err := ov.Apply(b); err != nil {
				errc <- fmt.Errorf("apply %d: %w", i, err)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perReader; i++ {
				blocked := "no"
				if (r+i)%2 == 0 {
					blocked = "yes"
				}
				status, res := postQuery(t, ts.URL, map[string]any{
					"query":  `MATCH (x:Account WHERE x.isBlocked = $blocked)-[t:Transfer]->(y:Account)`,
					"gql":    true,
					"params": map[string]any{"blocked": blocked},
				})
				if status != 200 {
					errc <- fmt.Errorf("reader %d req %d: status %d %s", r, i, status, res.errMsg)
					return
				}
				if res.errKind != "" {
					errc <- fmt.Errorf("reader %d req %d: stream error %s %s", r, i, res.errKind, res.errMsg)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st := srv.Cache().Stats()
	if st.HitRatio() <= 0.9 {
		t.Errorf("hit ratio %.2f under concurrency, want > 0.9", st.HitRatio())
	}
}

// blockingStore gates full-scan enumeration behind a channel so tests
// can hold evaluation slots occupied deterministically. entered receives
// one token per scan that reached the gate.
type blockingStore struct {
	graph.Store
	entered chan struct{}
	release chan struct{}
}

func (b *blockingStore) Nodes(f func(*graph.Node) bool) {
	b.entered <- struct{}{}
	<-b.release
	b.Store.Nodes(f)
}

func (b *blockingStore) NodesWithLabel(label string, f func(*graph.Node) bool) {
	b.entered <- struct{}{}
	<-b.release
	b.Store.NodesWithLabel(label, f)
}

func getQueueDepth(t *testing.T, url string) int32 {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		QueueDepth int32 `json:"queue_depth"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.QueueDepth
}

// With MaxConcurrent slots full and MaxQueueDepth waiters parked, the
// next arrival must fast-fail 503 with a Retry-After header instead of
// joining the queue; everything admitted still completes once unblocked.
func TestAdmissionQueueBound(t *testing.T) {
	bs := &blockingStore{
		Store:   gpml.Snapshot(gpml.Fig1()),
		entered: make(chan struct{}, 16),
		release: make(chan struct{}),
	}
	catalog := gql.NewCatalog()
	if err := catalog.Register("slow", bs); err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, server.Config{Catalog: catalog, MaxConcurrent: 2, MaxQueueDepth: 2})

	raw, err := json.Marshal(map[string]any{"query": "MATCH (x:Account)"})
	if err != nil {
		t.Fatal(err)
	}
	post := func() (*http.Response, error) {
		return http.Post(ts.URL+"/query", "application/json", bytes.NewReader(raw))
	}
	statuses := make(chan int, 4)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := post()
			if err != nil {
				statuses <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	for i := 0; i < 2; i++ { // both hold slots, blocked inside the scan
		<-bs.entered
	}
	for i := 0; i < 2; i++ { // two more park in the admission queue
		go func() {
			resp, err := post()
			if err != nil {
				statuses <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for getQueueDepth(t, ts.URL) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached 2 (now %d)", getQueueDepth(t, ts.URL))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Fifth arrival: queue is at capacity, must bounce immediately.
	resp, err := post()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow request: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	var e struct {
		Error struct{ Message, Kind string } `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if e.Error.Kind != "unavailable" || !strings.Contains(e.Error.Message, "queue full") {
		t.Errorf("overflow error = %q %q", e.Error.Kind, e.Error.Message)
	}

	close(bs.release) // let the four admitted requests run to completion
	for i := 0; i < 4; i++ {
		if s := <-statuses; s != http.StatusOK {
			t.Errorf("admitted request finished with status %d", s)
		}
	}
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Rejected   uint64 `json:"rejected"`
		QueueDepth int32  `json:"queue_depth"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Rejected != 1 || stats.QueueDepth != 0 {
		t.Errorf("stats after drain: rejected %d queue %d, want 1/0", stats.Rejected, stats.QueueDepth)
	}
	_ = srv
}

// A StartRecovering server answers 503 "recovering" on /query and
// /healthz until SetReady, then serves normally.
func TestRecoveringGate(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{StartRecovering: true})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "recovering") {
		t.Fatalf("healthz while recovering: %d %q", resp.StatusCode, body)
	}
	status, res := postQuery(t, ts.URL, map[string]any{"query": "MATCH (x:Account)"})
	if status != http.StatusServiceUnavailable || res.errKind != "unavailable" || !strings.Contains(res.errMsg, "recovering") {
		t.Fatalf("query while recovering: %d %q %q", status, res.errKind, res.errMsg)
	}
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Recovering bool `json:"recovering"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if !stats.Recovering {
		t.Error("stats.recovering = false while not ready")
	}

	srv.SetReady()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after SetReady: %d", resp.StatusCode)
	}
	if status, res := postQuery(t, ts.URL, map[string]any{"query": "MATCH (x:Account)"}); status != http.StatusOK || res.errKind != "" {
		t.Fatalf("query after SetReady: %d %s", status, res.errMsg)
	}
}

// Regression: plans cached against a crash-recovered store must carry the
// recovered (nonzero) epoch tag. If recovery restarted epochs at zero —
// or prepare tagged zero — InvalidateBelow would never retire them and a
// store swap could serve stale plans forever.
func TestPlanCacheEpochAcrossRecovery(t *testing.T) {
	dir := t.TempDir()
	ov, err := graph.OpenDurable(graph.DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ov.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("a%d", i)
		b := ov.Begin().AddNode(gpml.NodeID(id), []string{"Account"}, map[string]gpml.Value{"isBlocked": gpml.Str("no")})
		if err := ov.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := ov.CloseDurable(); err != nil {
		t.Fatal(err)
	}

	// Crash-restart: the recovered store resumes at the pre-crash epoch.
	ov2, err := graph.OpenDurable(graph.DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ov2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer ov2.CloseDurable()
	epoch := graph.StoreEpoch(ov2)
	if epoch == 0 {
		t.Fatal("recovered store reports epoch 0")
	}

	catalog := gql.NewCatalog()
	if err := catalog.Register("live", ov2); err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, server.Config{Catalog: catalog})
	q := map[string]any{"query": "MATCH (x:Account)"}
	if status, res := postQuery(t, ts.URL, q); status != http.StatusOK || res.errKind != "" {
		t.Fatalf("query against recovered store: %d %s", status, res.errMsg)
	}

	// The cached plan must be tagged with the recovered epoch: publish a
	// newer one and the invalidation hook must drop exactly that entry.
	b := ov2.Begin().AddNode("fresh", []string{"Account"}, nil)
	if err := ov2.Apply(b); err != nil {
		t.Fatal(err)
	}
	newEpoch := graph.StoreEpoch(ov2)
	if newEpoch <= epoch {
		t.Fatalf("epoch did not advance: %d -> %d", epoch, newEpoch)
	}
	if n := srv.OnEpochPublished(newEpoch); n != 1 {
		t.Fatalf("InvalidateBelow(%d) dropped %d entries, want 1 (plan should be tagged %d)", newEpoch, n, epoch)
	}
	if _, res := postQuery(t, ts.URL, q); res.cached {
		t.Error("query served from cache after invalidation, want recompile")
	}
	if _, res := postQuery(t, ts.URL, q); !res.cached {
		t.Error("re-sent query missed the cache, want hit on the re-tagged plan")
	}
}
