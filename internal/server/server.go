// Package server implements gpmld's HTTP query service: prepared GPML
// statements served over NDJSON streams.
//
// The serving path composes three pieces grown elsewhere in the module:
//
//   - the compiled-plan cache (internal/qcache) keyed on token-normalized
//     query text (normalize.QueryKey), so textual re-sends of the same
//     statement — reformatted, re-commented, differently parameterized —
//     reuse one plan and its memoized pattern automaton;
//   - $name parameters bound per request (gpml.WithParams), making every
//     cached plan a prepared statement;
//   - the streaming pipeline (Query.Stream), whose pull-based cursors
//     give the HTTP response genuine backpressure: a slow client suspends
//     upstream enumeration instead of buffering the full result.
//
// Request lifecycle: admission semaphore → cache lookup/compile → bind
// check → stream rows as NDJSON, flushing per row for first-row latency.
// Per-request deadlines and row budgets ride the existing context and
// LIMIT pushdown plumbing. Shutdown is two-phase: Drain stops admitting
// work while in-flight streams finish, Abort cancels their contexts.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"gpml"
	"gpml/internal/gql"
	"gpml/internal/graph"
	"gpml/internal/normalize"
	"gpml/internal/qcache"
)

// Config configures a Server. The zero value of every field has a usable
// default.
type Config struct {
	// Catalog names the graphs queries may target. Required.
	Catalog *gql.Catalog
	// DefaultGraph is used when a request names none. Defaults to the
	// catalog's first registered graph.
	DefaultGraph string
	// CacheSize caps the compiled-plan LRU (default 256 entries).
	CacheSize int
	// MaxConcurrent caps concurrently evaluating queries; further
	// requests wait in the admission semaphore until a slot frees or
	// their deadline expires (default 8).
	MaxConcurrent int
	// MaxQueueDepth bounds the admission queue: once this many requests
	// are already waiting for a slot, further ones fast-fail with 503 and
	// a Retry-After header instead of stacking goroutines until their
	// deadlines expire. 0 means unbounded (the pre-existing behavior).
	MaxQueueDepth int
	// StartRecovering makes the server boot not-ready: /healthz and
	// /query answer 503 "recovering" until SetReady is called. gpmld sets
	// it while a durable store replays its WAL, so load balancers keep
	// the instance out of rotation until the graph is complete.
	StartRecovering bool
	// Durability, when set, is surfaced under /stats (WAL position,
	// checkpoint cut, recovery summary). gpmld passes the durable store.
	Durability graph.DurabilitySource
	// DefaultTimeout bounds requests that set no timeout_ms; 0 means no
	// deadline.
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied deadlines; 0 means no clamp.
	MaxTimeout time.Duration
	// MaxRows clamps request row limits and applies to requests that set
	// none; 0 means unlimited.
	MaxRows int
}

// Server is the HTTP query service. Create with New, expose via Handler.
type Server struct {
	cfg   Config
	cache *qcache.Cache
	sem   chan struct{}
	mux   *http.ServeMux

	rootCtx    context.Context
	rootCancel context.CancelFunc
	draining   atomic.Bool
	ready      atomic.Bool

	queries atomic.Uint64 // requests admitted to /query
	rows    atomic.Uint64 // rows streamed across all requests
	queued  atomic.Int32  // requests waiting in the admission queue
	rejects atomic.Uint64 // requests fast-failed by the queue bound
}

// New builds a Server over a catalog of graphs.
func New(cfg Config) (*Server, error) {
	if cfg.Catalog == nil {
		return nil, errors.New("server: Config.Catalog is required")
	}
	if cfg.DefaultGraph == "" {
		names := cfg.Catalog.Names()
		if len(names) == 0 {
			return nil, errors.New("server: catalog has no graphs")
		}
		cfg.DefaultGraph = names[0]
	}
	if _, err := cfg.Catalog.Graph(cfg.DefaultGraph); err != nil {
		return nil, fmt.Errorf("server: default graph: %w", err)
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 256
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 8
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      qcache.New(cfg.CacheSize),
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		mux:        http.NewServeMux(),
		rootCtx:    ctx,
		rootCancel: cancel,
	}
	s.ready.Store(!cfg.StartRecovering)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s, nil
}

// SetReady flips a StartRecovering server into service once its store
// has finished replaying. Idempotent.
func (s *Server) SetReady() { s.ready.Store(true) }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the compiled-plan cache (stats endpoints, epoch hooks,
// tests).
func (s *Server) Cache() *qcache.Cache { return s.cache }

// Drain stops admitting new queries: /query returns 503 and /healthz
// flips unhealthy so load balancers rotate the instance out, while
// in-flight streams keep running. Call before http.Server.Shutdown.
func (s *Server) Drain() { s.draining.Store(true) }

// Abort cancels every in-flight query's context. Call when the drain
// grace period expires; streams end with a cancellation record and their
// handlers return, letting Shutdown complete.
func (s *Server) Abort() { s.rootCancel() }

// OnEpochPublished drops epoch-tagged cache entries older than seq.
// Compiled plans are epoch-independent for ordinary publishes (join
// ordering happens at stream time against the pinned snapshot), so this
// is NOT a per-publish hook — calling it on every mutation would gut the
// cache for no benefit. It exists for store-identity changes: after a
// crash recovery or a store swap, call it with the new store's epoch
// (graph.StoreEpoch) so plans prepared against the departed store are
// re-resolved rather than served stale.
func (s *Server) OnEpochPublished(seq uint64) int { return s.cache.InvalidateBelow(seq) }

// queryRequest is the JSON body of /query and /explain.
type queryRequest struct {
	Query     string                     `json:"query"`
	Graph     string                     `json:"graph,omitempty"`
	Params    map[string]json.RawMessage `json:"params,omitempty"`
	GQL       bool                       `json:"gql,omitempty"`
	TimeoutMS int64                      `json:"timeout_ms,omitempty"`
	Limit     int                        `json:"limit,omitempty"`
}

// errorBody is the JSON error payload, both as a non-200 response body
// and as the terminal NDJSON record of a stream that failed mid-flight.
type errorBody struct {
	Message string `json:"message"`
	Kind    string `json:"kind"` // bad_request | not_found | compile | bind | deadline | canceled | limit | internal | unavailable
	Line    int    `json:"line,omitempty"`
	Col     int    `json:"col,omitempty"`
	// Diagnostic is the caret-style source excerpt for positioned errors.
	Diagnostic string `json:"diagnostic,omitempty"`
}

func classify(err error) errorBody {
	var lim *gpml.LimitError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return errorBody{Message: "deadline exceeded", Kind: "deadline"}
	case errors.Is(err, context.Canceled):
		return errorBody{Message: "canceled", Kind: "canceled"}
	case errors.As(err, &lim):
		return errorBody{Message: err.Error(), Kind: "limit"}
	}
	b := errorBody{Message: err.Error(), Kind: "internal"}
	var bind *gpml.BindError
	if errors.As(err, &bind) {
		b.Kind = "bind"
	}
	if line, col, ok := gpml.ErrorPosition(err); ok {
		if b.Kind == "internal" {
			b.Kind = "compile"
		}
		b.Line, b.Col = line, col
	}
	return b
}

func writeError(w http.ResponseWriter, status int, body errorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]errorBody{"error": body})
}

// decodeParams converts the request's JSON parameter values to property
// values: string, bool, null, and numbers (integral JSON numbers become
// INT, others FLOAT). Arrays and objects are rejected.
func decodeParams(raw map[string]json.RawMessage) (map[string]gpml.Value, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	out := make(map[string]gpml.Value, len(raw))
	for name, rv := range raw {
		dec := json.NewDecoder(strings.NewReader(string(rv)))
		dec.UseNumber()
		var v any
		if err := dec.Decode(&v); err != nil {
			return nil, fmt.Errorf("parameter $%s: %w", name, err)
		}
		switch x := v.(type) {
		case nil:
			out[name] = gpml.Null
		case string:
			out[name] = gpml.Str(x)
		case bool:
			out[name] = gpml.Bool(x)
		case json.Number:
			if i, err := x.Int64(); err == nil {
				out[name] = gpml.Int(i)
			} else {
				f, err := x.Float64()
				if err != nil {
					return nil, fmt.Errorf("parameter $%s: %v is not a number", name, x)
				}
				out[name] = gpml.Float(f)
			}
		default:
			return nil, fmt.Errorf("parameter $%s: unsupported JSON type (want string, number, bool, or null)", name)
		}
	}
	return out, nil
}

// prepared is the cache entry: one compiled query per (mode, normalized
// text) pair, shared by every request that binds it.
type prepared struct {
	q *gpml.Query
}

// prepare resolves a compiled query through the plan cache. The key is
// the token-normalized text (whitespace, comments, literal spelling and
// keyword case collapse) prefixed with the host mode, which changes
// expression typing rules and therefore plan identity. Entries are
// tagged with the target store's current epoch so InvalidateBelow can
// drop plans compiled against a superseded store — in particular, plans
// cached before a crash-recovery swapped the store out from under the
// server. Stores without an epoch notion tag 0, which InvalidateBelow
// never touches.
func (s *Server) prepare(st graph.Store, src string, gqlMode bool) (*gpml.Query, bool, error) {
	mode := "core"
	if gqlMode {
		mode = "gql"
	}
	key, err := normalize.QueryKey(src)
	if err != nil {
		return nil, false, err
	}
	key = mode + "\x00" + key
	if v, ok := s.cache.Get(key); ok {
		return v.(prepared).q, true, nil
	}
	var opts []gpml.Option
	if gqlMode {
		opts = append(opts, gpml.GQLMode())
	}
	q, err := gpml.Compile(src, opts...)
	if err != nil {
		return nil, false, err
	}
	s.cache.PutEpoch(key, prepared{q: q}, graph.StoreEpoch(st))
	return q, false, nil
}

// parseRequest decodes and validates the shared /query//explain body.
func (s *Server) parseRequest(w http.ResponseWriter, r *http.Request) (*queryRequest, graph.Store, map[string]gpml.Value, bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errorBody{Message: "POST required", Kind: "bad_request"})
		return nil, nil, nil, false
	}
	var req queryRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, errorBody{Message: "invalid request body: " + err.Error(), Kind: "bad_request"})
		return nil, nil, nil, false
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, errorBody{Message: "missing query", Kind: "bad_request"})
		return nil, nil, nil, false
	}
	name := req.Graph
	if name == "" {
		name = s.cfg.DefaultGraph
	}
	st, err := s.cfg.Catalog.Graph(name)
	if err != nil {
		writeError(w, http.StatusNotFound, errorBody{Message: err.Error(), Kind: "not_found"})
		return nil, nil, nil, false
	}
	params, err := decodeParams(req.Params)
	if err != nil {
		writeError(w, http.StatusBadRequest, errorBody{Message: err.Error(), Kind: "bad_request"})
		return nil, nil, nil, false
	}
	return &req, st, params, true
}

// requestContext derives the evaluation context: the client disconnect
// (via r.Context), the server Abort root, and the request deadline.
func (s *Server) requestContext(r *http.Request, req *queryRequest) (context.Context, context.CancelFunc) {
	ctx, cancel := mergeCancel(r.Context(), s.rootCtx)
	d := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (d == 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	if d > 0 {
		tctx, tcancel := context.WithTimeout(ctx, d)
		return tctx, func() { tcancel(); cancel() }
	}
	return ctx, cancel
}

// mergeCancel returns a context following parent that is also cancelled
// when other is.
func mergeCancel(parent, other context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	stop := context.AfterFunc(other, cancel)
	return ctx, func() { stop(); cancel() }
}

// admit reserves an evaluation slot, enforcing the queue bound. On true
// the caller owns a slot and must release it with <-s.sem; on false a
// 503 has already been written.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter) bool {
	select {
	case s.sem <- struct{}{}: // free slot: no queueing at all
		return true
	default:
	}
	if max := s.cfg.MaxQueueDepth; max > 0 {
		// Add-then-check keeps the bound exact under concurrent arrivals:
		// whichever request pushes the count past max is the one bounced.
		if n := s.queued.Add(1); int(n) > max {
			s.queued.Add(-1)
			s.rejects.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, errorBody{Message: "admission queue full", Kind: "unavailable"})
			return false
		}
	} else {
		s.queued.Add(1)
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		writeError(w, http.StatusServiceUnavailable, errorBody{Message: "admission wait: " + ctx.Err().Error(), Kind: "unavailable"})
		return false
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errorBody{Message: "server is draining", Kind: "unavailable"})
		return
	}
	if !s.ready.Load() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errorBody{Message: "server is recovering", Kind: "unavailable"})
		return
	}
	req, st, params, ok := s.parseRequest(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r, req)
	defer cancel()

	// Admission: heavy work (compile included — a cache miss plans the
	// query) waits for a slot so a burst degrades to queueing, not to a
	// thundering herd of concurrent enumerations — and the queue itself
	// is bounded so a sustained overload fast-fails instead of parking
	// one goroutine per excess request until deadlines fire.
	if !s.admit(ctx, w) {
		return
	}
	defer func() { <-s.sem }()
	s.queries.Add(1)

	q, cached, err := s.prepare(st, req.Query, req.GQL)
	if err != nil {
		body := classify(err)
		if d := gpml.Diagnostic(req.Query, err); d != "" {
			body.Diagnostic = d
		}
		writeError(w, http.StatusBadRequest, body)
		return
	}

	limit := req.Limit
	if s.cfg.MaxRows > 0 && (limit == 0 || limit > s.cfg.MaxRows) {
		limit = s.cfg.MaxRows
	}
	opts := []gpml.Option{gpml.WithStore(st)}
	if limit > 0 {
		opts = append(opts, gpml.WithLimit(limit))
	}
	if params != nil {
		opts = append(opts, gpml.WithParams(params))
	}
	rows, err := q.Stream(ctx, nil, opts...)
	if err != nil {
		status := http.StatusBadRequest
		body := classify(err)
		if body.Kind == "deadline" || body.Kind == "canceled" {
			status = http.StatusServiceUnavailable
		}
		if d := gpml.Diagnostic(req.Query, err); d != "" {
			body.Diagnostic = d
		}
		writeError(w, status, body)
		return
	}
	// The deadline watchdog closes the stream from its own goroutine;
	// Rows.Close is concurrency-safe against the drain loop and the
	// deferred close below, so the double (even triple) close is fine.
	defer rows.Close()
	watchdog := context.AfterFunc(ctx, func() { rows.Close() })
	defer watchdog()

	s.streamNDJSON(ctx, w, q, rows, cached, limit)
}

// ndjsonHeader opens every stream: column order plus plan-cache
// provenance.
type ndjsonHeader struct {
	Columns []string `json:"columns"`
	Cached  bool     `json:"cached"`
}

// ndjsonTrailer ends every successful stream.
type ndjsonTrailer struct {
	Rows      int  `json:"rows"`
	Truncated bool `json:"truncated,omitempty"` // row budget cut the stream
}

// streamNDJSON writes header, one record per row, and a trailer (or an
// error record), flushing per row so the first row reaches the client at
// first-row latency, not full-enumeration latency. Backpressure is the
// transport's: a slow reader blocks Write, which suspends the pull loop
// and with it all upstream enumeration.
func (s *Server) streamNDJSON(ctx context.Context, w http.ResponseWriter, q *gpml.Query, rows *gpml.Rows, cached bool, limit int) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	cols := q.Columns()
	enc.Encode(ndjsonHeader{Columns: cols, Cached: cached})
	if flusher != nil {
		flusher.Flush()
	}
	n := 0
	for rows.Next() {
		row := rows.Row()
		cells := make([]string, len(cols))
		for i, c := range cols {
			if b, ok := row.Get(c); ok {
				cells[i] = b.String()
			} else {
				cells[i] = "NULL"
			}
		}
		if err := enc.Encode(map[string][]string{"row": cells}); err != nil {
			return // client went away; rows.Close via defer stops upstream
		}
		n++
		s.rows.Add(1)
		if flusher != nil {
			flusher.Flush()
		}
	}
	// The deadline can surface two ways: the cursor returns the context
	// error (rows.Err), or the watchdog's Close wins the race and ends
	// the stream cleanly first. Check the request context as well so
	// both paths report the cut instead of masquerading as completion.
	err := rows.Err()
	if err == nil && ctx.Err() != nil {
		err = ctx.Err()
	}
	if err != nil {
		enc.Encode(map[string]errorBody{"error": classify(err)})
		if flusher != nil {
			flusher.Flush()
		}
		return
	}
	enc.Encode(ndjsonTrailer{Rows: n, Truncated: limit > 0 && n == limit})
	if flusher != nil {
		flusher.Flush()
	}
}

// explainResponse is the /explain payload.
type explainResponse struct {
	Normalized string   `json:"normalized"`
	Columns    []string `json:"columns"`
	Params     []string `json:"params,omitempty"`
	Plan       []string `json:"plan"`
	Cached     bool     `json:"cached"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	req, st, _, ok := s.parseRequest(w, r)
	if !ok {
		return
	}
	q, cached, err := s.prepare(st, req.Query, req.GQL)
	if err != nil {
		body := classify(err)
		if d := gpml.Diagnostic(req.Query, err); d != "" {
			body.Diagnostic = d
		}
		writeError(w, http.StatusBadRequest, body)
		return
	}
	resp := explainResponse{
		Normalized: q.Normalized(),
		Columns:    q.Columns(),
		Params:     q.Params(),
		Plan:       q.Explain(gpml.WithStore(st)),
		Cached:     cached,
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// statsResponse is the /stats payload.
type statsResponse struct {
	Cache      qcache.Stats           `json:"cache"`
	HitRatio   float64                `json:"hit_ratio"`
	Queries    uint64                 `json:"queries"`
	Rows       uint64                 `json:"rows"`
	Graphs     []string               `json:"graphs"`
	Draining   bool                   `json:"draining"`
	Recovering bool                   `json:"recovering"`
	QueueDepth int32                  `json:"queue_depth"`
	Rejected   uint64                 `json:"rejected"`
	Durability *graph.DurabilityStats `json:"durability,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	names := s.cfg.Catalog.Names()
	sort.Strings(names)
	resp := statsResponse{
		Cache:      cs,
		HitRatio:   cs.HitRatio(),
		Queries:    s.queries.Load(),
		Rows:       s.rows.Load(),
		Graphs:     names,
		Draining:   s.draining.Load(),
		Recovering: !s.ready.Load(),
		QueueDepth: s.queued.Load(),
		Rejected:   s.rejects.Load(),
	}
	if s.cfg.Durability != nil {
		ds := s.cfg.Durability.DurabilityStats()
		resp.Durability = &ds
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "recovering")
		return
	}
	fmt.Fprintln(w, "ok")
}
