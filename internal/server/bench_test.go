package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"gpml"
	"gpml/internal/gql"
	"gpml/internal/normalize"
	"gpml/internal/qcache"
	"gpml/internal/server"
)

// benchServer boots an in-process HTTP server over the fig1 snapshot.
func benchServer(b *testing.B, cfg server.Config) *httptest.Server {
	b.Helper()
	if cfg.Catalog == nil {
		catalog := gql.NewCatalog()
		if err := catalog.Register("fig1", gpml.Snapshot(gpml.Fig1())); err != nil {
			b.Fatal(err)
		}
		cfg.Catalog = catalog
	}
	srv, err := server.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	return ts
}

// benchPost issues one /query request, drains the NDJSON stream, and
// returns the wall-clock time from send to the second stream line (the
// first row, or the trailer on empty results).
func benchPost(b *testing.B, url string, body map[string]any) time.Duration {
	raw, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	start := time.Now()
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		b.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	br := bufio.NewReader(resp.Body)
	for i := 0; i < 2; i++ {
		if _, err := br.ReadBytes('\n'); err != nil {
			b.Fatalf("stream line %d: %v", i, err)
		}
	}
	firstRow := time.Since(start)
	if _, err := io.Copy(io.Discard, br); err != nil {
		b.Fatal(err)
	}
	return firstRow
}

// BenchmarkServerPreparedThroughput measures the serving fast path: the
// same parameterized query on every request, so after the first request
// each prepare is a plan-cache hit and only binding and evaluation run.
func BenchmarkServerPreparedThroughput(b *testing.B) {
	ts := benchServer(b, server.Config{})
	blocked := []string{"no", "yes"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL, map[string]any{
			"query":  `MATCH (x:Account WHERE x.isBlocked = $b)`,
			"params": map[string]any{"b": blocked[i%2]},
		})
	}
}

// BenchmarkServerUnpreparedRecompile is the baseline the plan cache
// exists to beat: each request carries a distinct literal, so the
// normalized key never repeats and every prepare recompiles from text.
func BenchmarkServerUnpreparedRecompile(b *testing.B) {
	ts := benchServer(b, server.Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL, map[string]any{
			"query": fmt.Sprintf(
				`MATCH (x:Account WHERE x.isBlocked = 'no' AND x.owner <> 'nobody%d')`, i),
		})
	}
}

// BenchmarkServerFirstRowLatency reports time-to-first-row over HTTP as
// a dedicated metric: header flush plus the first evaluated row, on the
// cache-hit path.
func BenchmarkServerFirstRowLatency(b *testing.B) {
	ts := benchServer(b, server.Config{})
	var total time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total += benchPost(b, ts.URL, map[string]any{
			"query":  `MATCH (x:Account WHERE x.isBlocked = $b)`,
			"params": map[string]any{"b": "no"},
		})
	}
	b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "first-row-ns")
}

const cacheBenchQuery = `MATCH (x:Account WHERE x.isBlocked = $b AND x.owner = $o)`

// BenchmarkPlanCacheHit isolates the prepare step on a warm cache:
// normalize the text to its key and fetch the compiled plan.
func BenchmarkPlanCacheHit(b *testing.B) {
	cache := qcache.New(16)
	key, err := normalize.QueryKey(cacheBenchQuery)
	if err != nil {
		b.Fatal(err)
	}
	cache.Put(key, gpml.MustCompile(cacheBenchQuery))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, err := normalize.QueryKey(cacheBenchQuery)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := cache.Get(k); !ok {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkPlanCacheRecompile is the cold path the hit path is gated
// against: full lex, parse, normalize, and analyze on every prepare.
func BenchmarkPlanCacheRecompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gpml.Compile(cacheBenchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCacheHitAtLeastTwiceRecompile pins the serving-path speed bar:
// preparing through the plan cache must be at least 2x faster than
// recompiling the same text. Wall-clock assertions are too noisy for
// every `go test` run (laptops, -race, loaded runners), so the gate
// only arms when GPML_TIMING_GATES=1 — the CI server smoke job sets it.
func TestCacheHitAtLeastTwiceRecompile(t *testing.T) {
	if os.Getenv("GPML_TIMING_GATES") != "1" {
		t.Skip("set GPML_TIMING_GATES=1 to run wall-clock gates")
	}
	const iters = 2000
	cache := qcache.New(16)
	key, err := normalize.QueryKey(cacheBenchQuery)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(key, gpml.MustCompile(cacheBenchQuery))

	// Best-of-three per side to shed scheduler noise.
	measure := func(f func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for round := 0; round < 3; round++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				f()
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	hit := measure(func() {
		k, err := normalize.QueryKey(cacheBenchQuery)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := cache.Get(k); !ok {
			t.Fatal("unexpected miss")
		}
	})
	recompile := measure(func() {
		if _, err := gpml.Compile(cacheBenchQuery); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("cache hit %v, recompile %v (%.1fx)", hit, recompile, float64(recompile)/float64(hit))
	if recompile < 2*hit {
		t.Errorf("cache hit path is only %.2fx faster than recompile, want >= 2x (hit %v, recompile %v)",
			float64(recompile)/float64(hit), hit, recompile)
	}
}
