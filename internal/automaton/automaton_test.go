package automaton

import (
	"strings"
	"testing"

	"gpml/internal/normalize"
	"gpml/internal/parser"
	"gpml/internal/plan"
)

// prog compiles the first path pattern of a MATCH statement.
func prog(t *testing.T, src string) *plan.Prog {
	t.Helper()
	stmt, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	norm, err := normalize.Normalize(stmt)
	if err != nil {
		t.Fatalf("normalize %q: %v", src, err)
	}
	p, err := plan.Analyze(norm, plan.Options{})
	if err != nil {
		t.Fatalf("analyze %q: %v", src, err)
	}
	return p.Paths[0].Prog
}

// counts tallies the automaton's transitions.
func counts(n *NFA) (eps, guarded, steps, accepts int) {
	for _, s := range n.States {
		for _, e := range s.Eps {
			eps++
			if e.Node != nil {
				guarded++
			}
		}
		steps += len(s.Steps)
		if s.Accept {
			accepts++
		}
	}
	return
}

// A fixed-length chain compiles to a linear automaton: one guarded epsilon
// per node pattern, one step per edge pattern, one accept.
func TestCompileChain(t *testing.T) {
	n, err := Compile(prog(t, `MATCH ALL SHORTEST (a)-[e:T]->(b)-[f:U]->(c)`), true)
	if err != nil {
		t.Fatal(err)
	}
	eps, guarded, steps, accepts := counts(n)
	if steps != 2 || guarded != 3 || accepts != 1 {
		t.Errorf("chain automaton: eps=%d guarded=%d steps=%d accepts=%d\n%s", eps, guarded, steps, accepts, n)
	}
}

// An unbounded quantifier's counter clamps at the minimum, keeping the
// automaton finite: the {2,} loop needs states for counter values 0,1,2
// only.
func TestCompileUnboundedClamp(t *testing.T) {
	n, err := Compile(prog(t, `MATCH ALL SHORTEST (a) [()-[e:T]->()]{2,} (b)`), true)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumStates() > 24 {
		t.Errorf("unbounded quantifier automaton has %d states, want a small clamped set\n%s", n.NumStates(), n)
	}
	if _, _, steps, accepts := counts(n); steps == 0 || accepts != 1 {
		t.Errorf("unbounded automaton lacks steps or accept:\n%s", n)
	}
}

// A bounded quantifier unrolls into one state group per counter value.
func TestCompileBoundedUnroll(t *testing.T) {
	small, err := Compile(prog(t, `MATCH ANY SHORTEST (a)-[e:T]->{1,2}(b)`), true)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Compile(prog(t, `MATCH ANY SHORTEST (a)-[e:T]->{1,8}(b)`), true)
	if err != nil {
		t.Fatal(err)
	}
	if large.NumStates() <= small.NumStates() {
		t.Errorf("bounded unrolling: {1,8} has %d states, {1,2} has %d", large.NumStates(), small.NumStates())
	}
}

// Oversized bounds exhaust the state budget with a descriptive error.
func TestCompileStateBudget(t *testing.T) {
	_, err := Compile(prog(t, `MATCH ANY SHORTEST (a)-[e:T]->{1,2000}(b)`), true)
	if err == nil || !strings.Contains(err.Error(), "state budget") {
		t.Errorf("expected state-budget error, got %v", err)
	}
}

// Restrictor scopes are not memoryless and must be rejected.
func TestCompileRejectsScopes(t *testing.T) {
	_, err := Compile(prog(t, `MATCH ALL SHORTEST TRAIL (a)-[e:T]->+(b)`), true)
	if err == nil || !strings.Contains(err.Error(), "restrictor") {
		t.Errorf("expected restrictor rejection, got %v", err)
	}
}

// The zero-width-iteration rules: a node-only {2,2} body is reachable
// under the BFS rule (spin in place to the minimum) but not under the DFS
// rule (abandon under-minimum zero-width iterations).
func TestZeroWidthRules(t *testing.T) {
	p := prog(t, `MATCH ANY SHORTEST (x) [(y)]{2,2} (z)`)
	bfs, err := Compile(p, false)
	if err != nil {
		t.Fatal(err)
	}
	dfs, err := Compile(p, true)
	if err != nil {
		t.Fatal(err)
	}
	// Reachability of an accept state through pure (possibly guarded)
	// epsilon moves distinguishes the two rules: with no edges in the
	// pattern at all, acceptance is epsilon-reachability.
	if !epsilonAccepts(bfs) {
		t.Errorf("BFS rule: zero-width {2,2} should reach accept\n%s", bfs)
	}
	if epsilonAccepts(dfs) {
		t.Errorf("DFS rule: zero-width {2,2} must not reach accept\n%s", dfs)
	}
}

// epsilonAccepts reports whether an accept state is reachable from the
// start through epsilon transitions alone (node guards ignored).
func epsilonAccepts(n *NFA) bool {
	seen := make([]bool, n.NumStates())
	stack := []int{n.Start}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[q] {
			continue
		}
		seen[q] = true
		if n.States[q].Accept {
			return true
		}
		for _, e := range n.States[q].Eps {
			stack = append(stack, e.To)
		}
	}
	return false
}
