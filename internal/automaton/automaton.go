// Package automaton compiles path-pattern programs into small
// nondeterministic finite automata over edge steps. GPC ("GPC: A Pattern
// Calculus for Property Graphs") observes that GPML's quantifier/union
// structure is exactly a regular expression over edge steps; this package
// makes that explicit so the evaluator can run selector-bounded patterns
// (ANY/ALL SHORTEST, bounded quantifiers) as a breadth-first search over
// the product of the graph with the automaton instead of enumerating and
// filtering walks.
//
// The automaton is built from the compiled plan.Prog by abstract
// interpretation: quantifier counters are unrolled into distinct states
// (clamped at the minimum for unbounded quantifiers, where all larger
// counts behave identically), and every iteration frame carries a
// "progress" bit so the zero-width-iteration guard of the evaluators is
// reproduced exactly. The result is memoryless: a state plus a graph
// position determines all future behaviour, which is what makes the
// product search sound. Patterns whose steps are not memoryless
// (restrictors, equi-joins through repeated variables, predicates over
// other elements or group aggregates) are rejected by the plan-layer
// eligibility analysis before this package is consulted.
package automaton

import (
	"fmt"
	"strings"

	"gpml/internal/ast"
	"gpml/internal/plan"
)

// MaxStates caps the automaton size. Counter unrolling is exponential in
// quantifier nesting depth in the worst case; patterns that exceed the cap
// fall back to the enumerating engines.
const MaxStates = 512

// Eps is an epsilon transition: it consumes no edge. When Node is non-nil
// the transition is guarded by the node pattern, evaluated against the
// current graph position (label check plus the pattern's own WHERE).
type Eps struct {
	To   int
	Node *ast.NodePattern
}

// Step is an edge-consuming transition carrying the edge pattern whose
// orientation, label expression and WHERE admit the traversal.
type Step struct {
	To   int
	Edge *ast.EdgePattern
}

// State is one automaton state.
type State struct {
	Accept bool
	Eps    []Eps
	Steps  []Step
}

// NFA is the compiled pattern automaton.
type NFA struct {
	Start  int
	States []State
}

// NumStates reports the number of states.
func (n *NFA) NumStates() int { return len(n.States) }

// String renders the automaton for debugging.
func (n *NFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "start=%d states=%d\n", n.Start, len(n.States))
	for i, s := range n.States {
		fmt.Fprintf(&b, "%3d:", i)
		if s.Accept {
			b.WriteString(" accept")
		}
		for _, e := range s.Eps {
			if e.Node != nil {
				fmt.Fprintf(&b, " ε→%d[%s]", e.To, e.Node)
			} else {
				fmt.Fprintf(&b, " ε→%d", e.To)
			}
		}
		for _, st := range s.Steps {
			fmt.Fprintf(&b, " %s→%d", st.Edge, st.To)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// config is the micro-state of the abstract interpretation: a program
// counter plus the active quantifier counters and per-iteration progress
// bits. Counters of unbounded quantifiers are clamped at the quantifier
// minimum (all larger values behave identically under OpLoopCheck), which
// keeps the state space finite.
type config struct {
	pc       int
	counters []int
	progress []bool // one bit per active iteration frame: edge consumed?
}

func (c config) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", c.pc)
	for _, v := range c.counters {
		fmt.Fprintf(&b, "%d,", v)
	}
	b.WriteByte('|')
	for _, p := range c.progress {
		if p {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

func (c config) withPC(pc int) config {
	c.pc = pc
	return c
}

func (c config) pushCounter() config {
	c.counters = append(append([]int(nil), c.counters...), 0)
	return c
}

func (c config) popCounter() config {
	c.counters = append([]int(nil), c.counters[:len(c.counters)-1]...)
	return c
}

// bumpCounter increments the top counter, clamping at min for unbounded
// quantifiers (max < 0).
func (c config) bumpCounter(min, max int) config {
	c.counters = append([]int(nil), c.counters...)
	top := len(c.counters) - 1
	c.counters[top]++
	if max < 0 && c.counters[top] > min {
		c.counters[top] = min
	}
	return c
}

func (c config) pushFrame() config {
	c.progress = append(append([]bool(nil), c.progress...), false)
	return c
}

func (c config) popFrame() config {
	c.progress = append([]bool(nil), c.progress[:len(c.progress)-1]...)
	return c
}

// markProgress sets every active frame's progress bit: an edge consumed
// inside a nested iteration also makes every enclosing iteration
// non-zero-width.
func (c config) markProgress() config {
	c.progress = make([]bool, len(c.progress))
	for i := range c.progress {
		c.progress[i] = true
	}
	return c
}

// compiler interns configs as automaton states and derives transitions.
type compiler struct {
	prog         *plan.Prog
	dfsZeroWidth bool
	states       []State
	configs      []config
	index        map[string]int
	maxStates    int
}

// Compile builds the pattern automaton for a compiled program.
//
// dfsZeroWidth selects the zero-width-iteration rule of the engine the
// pattern would otherwise run on, so the automaton's language matches that
// engine exactly: the DFS engine abandons a zero-width iteration that has
// not yet reached the quantifier minimum, while the BFS engine keeps
// iterating in place until the minimum is met.
//
// Compile fails (with a descriptive error) on programs that are not
// memoryless — restrictor scopes or subpattern WHERE prefilters — and on
// programs whose counter unrolling exceeds MaxStates.
func Compile(prog *plan.Prog, dfsZeroWidth bool) (*NFA, error) {
	c := &compiler{
		prog:         prog,
		dfsZeroWidth: dfsZeroWidth,
		index:        map[string]int{},
		maxStates:    MaxStates,
	}
	start, err := c.intern(config{pc: prog.Start})
	if err != nil {
		return nil, err
	}
	// Worklist: states are expanded once, in interning order; expanding a
	// state may intern new ones.
	for i := 0; i < len(c.states); i++ {
		if err := c.expand(i); err != nil {
			return nil, err
		}
	}
	return &NFA{Start: start, States: c.states}, nil
}

// intern returns the state id of a config, allocating it if new.
func (c *compiler) intern(cf config) (int, error) {
	k := cf.key()
	if id, ok := c.index[k]; ok {
		return id, nil
	}
	if len(c.states) >= c.maxStates {
		return 0, fmt.Errorf("automaton: state budget (%d) exceeded; quantifier bounds too large", c.maxStates)
	}
	id := len(c.states)
	c.index[k] = id
	c.states = append(c.states, State{})
	c.configs = append(c.configs, cf)
	return id, nil
}

// expand derives the transitions of one state from its instruction.
func (c *compiler) expand(id int) error {
	cf := c.configs[id]
	in := &c.prog.Instrs[cf.pc]
	eps := func(next config, node *ast.NodePattern) error {
		to, err := c.intern(next)
		if err != nil {
			return err
		}
		c.states[id].Eps = append(c.states[id].Eps, Eps{To: to, Node: node})
		return nil
	}
	switch in.Op {
	case plan.OpAccept:
		c.states[id].Accept = true
		return nil
	case plan.OpNode:
		return eps(cf.withPC(in.Next), in.Node)
	case plan.OpEdge:
		// Consuming an edge marks progress in every enclosing iteration.
		to, err := c.intern(cf.withPC(in.Next).markProgress())
		if err != nil {
			return err
		}
		c.states[id].Steps = append(c.states[id].Steps, Step{To: to, Edge: in.Edge})
		return nil
	case plan.OpSplit:
		if err := eps(cf.withPC(in.Next), nil); err != nil {
			return err
		}
		return eps(cf.withPC(in.Alt), nil)
	case plan.OpLoopStart:
		return eps(cf.pushCounter().withPC(in.Next), nil)
	case plan.OpLoopCheck:
		n := cf.counters[len(cf.counters)-1]
		if n < in.Min {
			return eps(cf.withPC(in.Next), nil) // must iterate
		}
		if err := eps(cf.withPC(in.Alt), nil); err != nil { // may exit
			return err
		}
		if in.Max < 0 || n < in.Max {
			return eps(cf.withPC(in.Next), nil) // may iterate further
		}
		return nil
	case plan.OpIterStart:
		return eps(cf.pushFrame().withPC(in.Next), nil)
	case plan.OpIterEnd:
		zeroWidth := !cf.progress[len(cf.progress)-1]
		next := cf.popFrame().bumpCounter(in.Min, in.Max)
		if !zeroWidth {
			return eps(next.withPC(in.Next), nil) // back to the check
		}
		// Zero-width iteration: mirror the engines' guard exactly.
		n := next.counters[len(next.counters)-1]
		if n >= in.Min {
			return eps(next.withPC(in.Alt), nil) // forced loop exit
		}
		if c.dfsZeroWidth {
			return nil // DFS abandons the thread
		}
		return eps(next.withPC(in.Next), nil) // BFS keeps spinning to the minimum
	case plan.OpLoopEnd:
		return eps(cf.popCounter().withPC(in.Next), nil)
	case plan.OpTag:
		// Branch tags only affect bindings, which the evaluator rebuilds by
		// replaying the program over each reconstructed path.
		return eps(cf.withPC(in.Next), nil)
	case plan.OpScopeStart, plan.OpScopeEnd:
		return fmt.Errorf("automaton: restrictor scopes are not memoryless")
	case plan.OpWhere:
		return fmt.Errorf("automaton: subpattern WHERE prefilters are not memoryless")
	default:
		return fmt.Errorf("automaton: unknown opcode %v", in.Op)
	}
}
