// Package wal implements the write-ahead log under the durable overlay
// store: a segmented append-only log of mutation batches, each framed by
// BEGIN/COMMIT records so that a crash mid-batch never surfaces a partial
// batch on replay.
//
// On-disk layout: a directory of segment files named wal-%016x.seg, the
// hex being the sequence number of the first batch the segment holds.
// Every segment starts with a 16-byte header (magic "GPMLWAL1" plus that
// first sequence number); after it come length-prefixed records:
//
//	u32 LE body length | u32 LE CRC32C(body) | body
//
// where body is one type byte (BEGIN, OP, COMMIT) followed by the record
// payload. A batch is BEGIN(seq, nops), nops OP records carrying opaque
// payloads the caller encodes, then COMMIT(seq, epoch); batches never span
// segments (the writer rolls to a new segment before BEGIN when the
// current one is full).
//
// Recovery classifies damage by position. Any invalid record in a sealed
// (non-last) segment is corruption and Open fails — data known committed
// is missing, and serving a silent prefix would be a lie. In the last
// segment an invalid record is a torn tail only if no valid record exists
// after it (a forward resync scan that skips the damaged record's own
// declared body and requires candidates to chain to end-of-segment, so
// payload bytes cannot impersonate records); the tail — and any
// batch left without its COMMIT — is then physically truncated away, so
// the log is always an exact committed prefix after Open. If valid
// records do follow the damage, the middle of the log is corrupt (e.g. a
// latent media bit-flip) and Open fails loudly rather than dropping
// committed batches.
//
// Durability is configurable: SyncAlways fsyncs at every COMMIT,
// SyncInterval fsyncs on a timer (bounded loss window), SyncNone leaves
// flushing to the OS. The writer carries a seeded failpoint hook (Arm)
// that the crash-fault-injection harness uses to kill, truncate, or
// bit-flip the stream at arbitrary byte offsets.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	magic      = "GPMLWAL1"
	hdrSize    = 16
	recHdrSize = 8
	// maxRecord bounds a single record body; larger length prefixes are
	// treated as damage, not allocations.
	maxRecord = 1 << 28

	rBegin  byte = 1
	rOp     byte = 2
	rCommit byte = 3
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrInjected is returned by Append when an armed failpoint fires; the
// log is dead afterwards, exactly as if the process had crashed at that
// byte offset.
var ErrInjected = errors.New("wal: injected fault")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// CorruptionError reports damage recovery cannot repair: an invalid
// record that is provably not a torn tail. The log must not be served.
type CorruptionError struct {
	Segment string
	Offset  int64
	Reason  string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("wal: corrupt segment %s at offset %d: %s", e.Segment, e.Offset, e.Reason)
}

// SyncPolicy selects when the writer fsyncs.
type SyncPolicy int

// The fsync policies.
const (
	// SyncAlways fsyncs at every commit: no acknowledged batch is ever
	// lost to a crash.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a timer: a crash loses at most the batches
	// acknowledged since the last tick.
	SyncInterval
	// SyncNone never fsyncs explicitly; the OS flushes at leisure.
	SyncNone
)

// String renders the policy as its flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -fsync flag spelling.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or none)", s)
	}
}

// Options configures Open.
type Options struct {
	// Dir is the directory holding the segment files. Required; created
	// by the caller.
	Dir string
	// Policy selects the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// SyncEvery is the SyncInterval period (default 50ms).
	SyncEvery time.Duration
	// SegmentBytes is the roll threshold (default 64 MiB).
	SegmentBytes int64
}

// RecoverInfo summarizes what Open found and repaired.
type RecoverInfo struct {
	Segments  int    // live segment files after the scan
	Batches   uint64 // committed batches present
	LastSeq   uint64 // sequence of the newest committed batch (0 if none)
	MaxEpoch  uint64 // highest epoch on any commit record
	TornBytes int64  // bytes truncated from the tail (torn records + uncommitted batch)
	Truncated bool   // whether any tail repair happened
}

// Stats is a point-in-time snapshot of the writer counters.
type Stats struct {
	Segments int    `json:"segments"`
	Bytes    int64  `json:"bytes"` // cumulative record bytes appended (the stream offset)
	Appends  uint64 `json:"appends"`
	Syncs    uint64 `json:"syncs"`
	LastSeq  uint64 `json:"last_seq"`
}

// FaultKind discriminates injected faults.
type FaultKind int

// The injected fault kinds.
const (
	// FaultKill stops the writer mid-record: bytes before the fault
	// offset are written, the rest never are, and the log dies.
	FaultKill FaultKind = iota
	// FaultTruncate lets the writer run on until the After offset, then
	// truncates the stream back to Offset and dies — the lost-unsynced-
	// tail crash, where batches were acknowledged and then vanished.
	FaultTruncate
	// FaultFlip flips one bit at the fault offset once the stream has
	// passed it and lets the writer continue — latent media corruption
	// that only the next recovery can notice.
	FaultFlip
)

// Failpoint is a one-shot seeded fault. Offsets are stream offsets:
// cumulative record bytes, excluding segment headers, monotone across
// segment rolls.
type Failpoint struct {
	Kind   FaultKind
	Offset int64
	// After is the trigger offset for FaultTruncate (the stream keeps
	// growing past Offset and is cut back once After is crossed). Zero
	// means trigger at Offset.
	After int64
}

// segment is one live segment file.
type segment struct {
	name     string
	firstSeq uint64
	baseOff  int64 // stream offset of the segment's first record byte
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	mu   sync.Mutex
	opts Options

	f     *os.File  // active segment, nil until the first append
	segs  []segment // ascending by firstSeq; last is active
	fsize int64     // active segment file size
	off   int64     // stream offset: cumulative record bytes appended

	lastSeq uint64
	appends uint64
	syncs   uint64
	dirty   bool

	fp      *Failpoint
	dead    bool
	deadErr error // why the log died (ErrInjected, or the I/O error)
	closed  bool
	stop    chan struct{}
	done    chan struct{}
}

// Open scans the directory, repairs any torn tail, and returns a log
// positioned for appending, along with a summary of what it found. A
// CorruptionError means the log must not be served.
func Open(o Options) (*Log, RecoverInfo, error) {
	if o.Dir == "" {
		return nil, RecoverInfo{}, errors.New("wal: Options.Dir is required")
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 50 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	names, err := segmentNames(o.Dir)
	if err != nil {
		return nil, RecoverInfo{}, err
	}
	l := &Log{opts: o}
	var info RecoverInfo
	var expect uint64 // next expected batch seq; 0 = not yet known
	for i, name := range names {
		last := i == len(names)-1
		path := filepath.Join(o.Dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, info, err
		}
		if len(data) < hdrSize {
			// A crash during segment creation can leave a short header —
			// but only in the newest segment.
			if !last {
				return nil, info, &CorruptionError{Segment: name, Offset: 0, Reason: "segment shorter than its header"}
			}
			if err := os.Remove(path); err != nil {
				return nil, info, err
			}
			info.Truncated = true
			info.TornBytes += int64(len(data))
			continue
		}
		if string(data[:8]) != magic {
			return nil, info, &CorruptionError{Segment: name, Offset: 0, Reason: "bad segment magic"}
		}
		firstSeq := binary.LittleEndian.Uint64(data[8:hdrSize])
		if expect != 0 && firstSeq != expect {
			return nil, info, &CorruptionError{Segment: name, Offset: 8,
				Reason: fmt.Sprintf("segment starts at batch %d where %d was expected", firstSeq, expect)}
		}
		batches, keep, err := parseSegment(data, firstSeq, last, name)
		if err != nil {
			return nil, info, err
		}
		if keep < int64(len(data)) {
			if err := os.Truncate(path, keep); err != nil {
				return nil, info, err
			}
			info.Truncated = true
			info.TornBytes += int64(len(data)) - keep
		}
		for _, b := range batches {
			info.Batches++
			l.lastSeq = b.seq
			if b.epoch > info.MaxEpoch {
				info.MaxEpoch = b.epoch
			}
		}
		if len(batches) > 0 {
			expect = batches[len(batches)-1].seq + 1
		} else if expect == 0 {
			expect = firstSeq
		}
		l.segs = append(l.segs, segment{name: name, firstSeq: firstSeq, baseOff: l.off})
		l.off += keep - hdrSize
		l.fsize = keep
	}
	info.Segments = len(l.segs)
	info.LastSeq = l.lastSeq
	if len(l.segs) > 0 {
		path := filepath.Join(o.Dir, l.segs[len(l.segs)-1].name)
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return nil, info, err
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return nil, info, err
		}
		l.f = f
	} else {
		l.fsize = 0
	}
	if info.Truncated {
		syncDir(o.Dir)
	}
	if o.Policy == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	return l, info, nil
}

// segmentNames lists the segment files ascending by first sequence.
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".seg") {
			names = append(names, n)
		}
	}
	sort.Strings(names) // zero-padded hex sorts numerically
	return names, nil
}

// batchRec is one parsed committed batch. Op payloads alias the scanned
// segment buffer and must not be retained past the caller's loop.
type batchRec struct {
	seq, epoch uint64
	ops        [][]byte
	begin      int64 // file offset of the BEGIN record
}

// parseSegment validates a segment's records and frames them into
// committed batches. keep is the byte length of the valid committed
// prefix (the truncation point when a torn tail or an uncommitted batch
// must be dropped); keep == len(data) when the segment is clean. Any
// damage that is provably not a torn tail returns a CorruptionError.
func parseSegment(data []byte, firstSeq uint64, last bool, name string) (batches []batchRec, keep int64, err error) {
	size := int64(len(data))
	type recRef struct {
		off  int64
		typ  byte
		body []byte
	}
	var recs []recRef
	tornAt := int64(-1)
	p := int64(hdrSize)
	for p < size {
		var reason string
		if size-p < recHdrSize {
			reason = "truncated record header"
		} else {
			n := binary.LittleEndian.Uint32(data[p:])
			sum := binary.LittleEndian.Uint32(data[p+4:])
			switch {
			case n == 0 || n > maxRecord:
				reason = fmt.Sprintf("implausible record length %d", n)
			case p+recHdrSize+int64(n) > size:
				reason = "record extends past end of segment"
			default:
				body := data[p+recHdrSize : p+recHdrSize+int64(n)]
				switch {
				case crc32.Checksum(body, castagnoli) != sum:
					reason = "record checksum mismatch"
				case body[0] < rBegin || body[0] > rCommit:
					reason = fmt.Sprintf("unknown record type %d", body[0])
				default:
					recs = append(recs, recRef{off: p, typ: body[0], body: body})
					p += recHdrSize + int64(n)
					continue
				}
			}
		}
		// The record at p is invalid. A torn tail has nothing valid after
		// it; anything else is mid-log corruption (a flipped length byte
		// masquerading as EOF must not silently swallow the committed
		// batches that follow it).
		if !last || hasValidRecordAfter(data, p) {
			return nil, 0, &CorruptionError{Segment: name, Offset: p, Reason: reason}
		}
		tornAt = p
		break
	}

	keep = size
	if tornAt >= 0 {
		keep = tornAt
	}
	expect := firstSeq
	var cur *batchRec
	pendingOps := 0
	corrupt := func(off int64, reason string) error {
		return &CorruptionError{Segment: name, Offset: off, Reason: reason}
	}
	for _, r := range recs {
		switch r.typ {
		case rBegin:
			if cur != nil {
				return nil, 0, corrupt(r.off, "BEGIN inside an open batch")
			}
			seq, nops, ok := decodeBegin(r.body[1:])
			if !ok {
				return nil, 0, corrupt(r.off, "malformed BEGIN payload")
			}
			if seq != expect {
				return nil, 0, corrupt(r.off, fmt.Sprintf("batch %d where %d was expected", seq, expect))
			}
			cur = &batchRec{seq: seq, begin: r.off}
			pendingOps = nops
		case rOp:
			if cur == nil {
				return nil, 0, corrupt(r.off, "OP outside a batch")
			}
			cur.ops = append(cur.ops, r.body[1:])
		case rCommit:
			if cur == nil {
				return nil, 0, corrupt(r.off, "COMMIT outside a batch")
			}
			seq, epoch, ok := decodeCommit(r.body[1:])
			if !ok || seq != cur.seq {
				return nil, 0, corrupt(r.off, "malformed or mismatched COMMIT")
			}
			if len(cur.ops) != pendingOps {
				return nil, 0, corrupt(r.off, fmt.Sprintf("batch %d has %d ops, BEGIN declared %d", seq, len(cur.ops), pendingOps))
			}
			cur.epoch = epoch
			batches = append(batches, *cur)
			cur = nil
			expect = seq + 1
		}
	}
	if cur != nil {
		// A batch begun but never committed: droppable only at the tail.
		if !last {
			return nil, 0, corrupt(cur.begin, fmt.Sprintf("uncommitted batch %d in a sealed segment", cur.seq))
		}
		keep = cur.begin
	}
	return batches, keep, nil
}

// hasValidRecordAfter reports whether writer-emitted records follow the
// invalid record at p — the resync scan distinguishing a torn tail
// (nothing valid follows) from mid-log corruption. Two guards keep
// caller-encoded op payloads inside the damaged record from
// impersonating records: when the invalid record's declared body lies
// within the segment (a CRC or type failure), the scan starts after that
// body, since every byte of it is this record's own payload; and a
// candidate only counts if records chain contiguously from it to the end
// of the segment (at most the final one cut off mid-record), which a
// frame embedded at a random payload offset essentially never does.
func hasValidRecordAfter(data []byte, p int64) bool {
	size := int64(len(data))
	start := p + 1
	if size-p >= recHdrSize {
		if n := binary.LittleEndian.Uint32(data[p:]); n >= 1 && n <= maxRecord && p+recHdrSize+int64(n) <= size {
			start = p + recHdrSize + int64(n)
		}
	}
	for c := start; c+recHdrSize <= size; c++ {
		if chainsToEnd(data, c) {
			return true
		}
	}
	return false
}

// chainsToEnd reports whether a well-formed record starts at c and
// records parse contiguously from there to the end of the segment. Only
// the final record may be incomplete (header or body cut off at EOF);
// any fully-contained invalid record mid-chain rejects the candidate.
func chainsToEnd(data []byte, c int64) bool {
	size := int64(len(data))
	valid := false
	for c < size {
		if size-c < recHdrSize {
			break // final header cut off at EOF
		}
		n := binary.LittleEndian.Uint32(data[c:])
		if n == 0 || n > maxRecord {
			return false
		}
		if c+recHdrSize+int64(n) > size {
			break // final body cut off at EOF
		}
		body := data[c+recHdrSize : c+recHdrSize+int64(n)]
		if body[0] < rBegin || body[0] > rCommit ||
			crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(data[c+4:]) {
			return false
		}
		valid = true
		c += recHdrSize + int64(n)
	}
	return valid
}

func decodeBegin(p []byte) (seq uint64, nops int, ok bool) {
	seq, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, false
	}
	v, m := binary.Uvarint(p[n:])
	if m <= 0 || n+m != len(p) || v > maxRecord {
		return 0, 0, false
	}
	return seq, int(v), true
}

func decodeCommit(p []byte) (seq, epoch uint64, ok bool) {
	seq, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, false
	}
	epoch, m := binary.Uvarint(p[n:])
	if m <= 0 || n+m != len(p) {
		return 0, 0, false
	}
	return seq, epoch, true
}

// encRecord frames a body as length | CRC32C | body.
func encRecord(typ byte, payload []byte) []byte {
	body := make([]byte, 1+len(payload))
	body[0] = typ
	copy(body[1:], payload)
	rec := make([]byte, recHdrSize+len(body))
	binary.LittleEndian.PutUint32(rec, uint32(len(body)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.Checksum(body, castagnoli))
	copy(rec[recHdrSize:], body)
	return rec
}

// Replay calls fn for every committed batch with sequence greater than
// after, in order. The op payload slices alias a per-segment read buffer
// and must not be retained after fn returns. Replay assumes Open already
// validated and repaired the files.
func (l *Log) Replay(after uint64, fn func(seq, epoch uint64, ops [][]byte) error) error {
	l.mu.Lock()
	segs := make([]segment, len(l.segs))
	copy(segs, l.segs)
	dir := l.opts.Dir
	l.mu.Unlock()
	for i, seg := range segs {
		data, err := os.ReadFile(filepath.Join(dir, seg.name))
		if err != nil {
			return err
		}
		batches, _, err := parseSegment(data, seg.firstSeq, i == len(segs)-1, seg.name)
		if err != nil {
			return err
		}
		for _, b := range batches {
			if b.seq <= after {
				continue
			}
			if err := fn(b.seq, b.epoch, b.ops); err != nil {
				return err
			}
		}
	}
	return nil
}

// Append writes one batch (BEGIN, the encoded ops, COMMIT) and, under
// SyncAlways, fsyncs before returning. seq must be exactly one past the
// last appended or recovered batch.
func (l *Log) Append(seq, epoch uint64, ops [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return ErrClosed
	case l.dead:
		return l.deadErr
	case seq != l.lastSeq+1:
		return fmt.Errorf("wal: batch %d out of order (last was %d)", seq, l.lastSeq)
	}
	var pay []byte
	pay = binary.AppendUvarint(pay, seq)
	pay = binary.AppendUvarint(pay, uint64(len(ops)))
	recs := make([][]byte, 0, len(ops)+2)
	recs = append(recs, encRecord(rBegin, pay))
	total := int64(len(recs[0]))
	for _, op := range ops {
		r := encRecord(rOp, op)
		recs = append(recs, r)
		total += int64(len(r))
	}
	pay = pay[:0]
	pay = binary.AppendUvarint(pay, seq)
	pay = binary.AppendUvarint(pay, epoch)
	commit := encRecord(rCommit, pay)
	recs = append(recs, commit)
	total += int64(len(commit))

	// Batches never span segments: roll before BEGIN when this batch
	// would overflow the active segment (but never leave a batch alone
	// past the threshold in an empty segment).
	if l.f == nil || (l.fsize > hdrSize && l.fsize+total > l.opts.SegmentBytes) {
		if err := l.rollLocked(seq); err != nil {
			return err
		}
	}
	// A failed or partial write mid-batch would leave garbage (or a
	// headless batch prefix) that later successful appends bury in the
	// middle of the segment, turning a runtime error into mid-log
	// corruption at the next Open. Rewind the whole batch on any write
	// error; if the rewind itself fails, the log is dead.
	startOff, startSize := l.off, l.fsize
	for _, rec := range recs {
		if err := l.writeRecordLocked(rec); err != nil {
			if errors.Is(err, ErrInjected) {
				return err
			}
			return l.rewindLocked(startOff, startSize, err)
		}
	}
	l.lastSeq = seq
	l.appends++
	l.dirty = true
	if l.opts.Policy == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

// writeRecordLocked writes one record, honouring any armed failpoint
// whose offset the record's byte range covers.
func (l *Log) writeRecordLocked(rec []byte) error {
	if fp := l.fp; fp != nil {
		trigger := fp.Offset
		if fp.Kind == FaultTruncate && fp.After > trigger {
			trigger = fp.After
		}
		if trigger < l.off+int64(len(rec)) {
			return l.fireFaultLocked(fp, rec)
		}
	}
	if _, err := l.f.Write(rec); err != nil {
		return err
	}
	l.off += int64(len(rec))
	l.fsize += int64(len(rec))
	return nil
}

// rewindLocked restores the file to the pre-batch state after a write
// error: the file is truncated back to the last known-good offset and
// the write position reset, so the failed batch leaves no trace and the
// log can keep accepting appends. If the rewind itself fails the file
// may hold garbage past the committed prefix, so the log is marked dead
// — exactly as an injected crash would — and every later operation
// reports why.
func (l *Log) rewindLocked(off, fsize int64, cause error) error {
	err := func() error {
		if l.f == nil {
			return errors.New("no active segment")
		}
		if terr := l.f.Truncate(fsize); terr != nil {
			return terr
		}
		_, serr := l.f.Seek(fsize, io.SeekStart)
		return serr
	}()
	if err != nil {
		l.dead = true
		l.deadErr = fmt.Errorf("wal: log dead: write failed (%v) and rewind failed: %w", cause, err)
		return l.deadErr
	}
	l.off, l.fsize = off, fsize
	return cause
}

// fireFaultLocked executes a one-shot injected fault during the write of
// rec (which starts at stream offset l.off and file offset l.fsize).
func (l *Log) fireFaultLocked(fp *Failpoint, rec []byte) error {
	l.fp = nil
	k := fp.Offset - l.off // fault position within rec (clamped)
	if k < 0 {
		k = 0
	}
	if k > int64(len(rec)) {
		k = int64(len(rec))
	}
	switch fp.Kind {
	case FaultKill:
		if k > 0 {
			l.f.Write(rec[:k])
		}
		l.f.Sync()
		l.dead = true
		l.deadErr = ErrInjected
		return ErrInjected
	case FaultTruncate:
		// The stream ran past Offset (acknowledging batches) and now the
		// unsynced tail vanishes: cut every segment byte past the fault
		// offset, which may span segment rolls.
		l.f.Write(rec)
		l.truncateStreamLocked(fp.Offset)
		l.dead = true
		l.deadErr = ErrInjected
		return ErrInjected
	case FaultFlip:
		if _, err := l.f.Write(rec); err != nil {
			return err
		}
		pos := l.fsize + k
		var b [1]byte
		if _, err := l.f.ReadAt(b[:], pos); err == nil {
			b[0] ^= 1 << uint(fp.Offset%8)
			l.f.WriteAt(b[:], pos)
		}
		l.off += int64(len(rec))
		l.fsize += int64(len(rec))
		return nil
	}
	return nil
}

// truncateStreamLocked cuts the on-disk stream back to stream offset
// off: later segments are removed and the covering segment file is
// truncated.
func (l *Log) truncateStreamLocked(off int64) {
	for len(l.segs) > 1 && l.segs[len(l.segs)-1].baseOff >= off {
		seg := l.segs[len(l.segs)-1]
		l.f.Close()
		os.Remove(filepath.Join(l.opts.Dir, seg.name))
		l.segs = l.segs[:len(l.segs)-1]
		prev := filepath.Join(l.opts.Dir, l.segs[len(l.segs)-1].name)
		l.f, _ = os.OpenFile(prev, os.O_RDWR, 0)
	}
	seg := l.segs[len(l.segs)-1]
	keep := off - seg.baseOff
	if keep < 0 {
		keep = 0
	}
	if l.f != nil {
		l.f.Truncate(hdrSize + keep)
		l.f.Sync()
	}
	syncDir(l.opts.Dir)
}

// rollLocked seals the active segment and starts a fresh one whose first
// batch will be seq.
func (l *Log) rollLocked(seq uint64) error {
	if l.f != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	name := fmt.Sprintf("wal-%016x.seg", seq)
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var hdr [hdrSize]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	syncDir(l.opts.Dir)
	l.f = f
	l.fsize = hdrSize
	l.segs = append(l.segs, segment{name: name, firstSeq: seq, baseOff: l.off})
	return nil
}

// Sync flushes buffered writes to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.dead {
		return l.deadErr
	}
	return l.syncLocked()
}

// syncLocked fsyncs the active segment. A failed fsync leaves the
// durability of everything since the last successful one unknowable
// (the kernel may have dropped the dirty pages while clearing the error),
// so the log is marked dead rather than risking acknowledged batches
// that a clean-looking disk no longer holds.
func (l *Log) syncLocked() error {
	if !l.dirty || l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.dead = true
		l.deadErr = fmt.Errorf("wal: log dead after fsync error: %w", err)
		return l.deadErr
	}
	l.dirty = false
	l.syncs++
	return nil
}

// syncLoop is the SyncInterval timer goroutine.
func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && !l.dead {
				l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// TruncateBefore removes whole segments every batch of which has a
// sequence below seq — the checkpointer's cleanup after the cut is
// durable elsewhere. The active segment is never removed.
func (l *Log) TruncateBefore(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	removed := false
	for len(l.segs) >= 2 && l.segs[1].firstSeq <= seq {
		if err := os.Remove(filepath.Join(l.opts.Dir, l.segs[0].name)); err != nil && !os.IsNotExist(err) {
			return err
		}
		l.segs = l.segs[1:]
		removed = true
	}
	if removed {
		syncDir(l.opts.Dir)
	}
	return nil
}

// Arm installs a one-shot failpoint in the writer. Only the crash-fault
// harness calls this.
func (l *Log) Arm(fp Failpoint) {
	l.mu.Lock()
	l.fp = &fp
	l.mu.Unlock()
}

// Stats snapshots the writer counters. Bytes is the cumulative stream
// offset (record bytes appended since the log was created), monotone
// across segment rolls and truncation-by-checkpoint.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Segments: len(l.segs),
		Bytes:    l.off,
		Appends:  l.appends,
		Syncs:    l.syncs,
		LastSeq:  l.lastSeq,
	}
}

// SetNextSeq positions the log so the next Append must carry seq;
// recovery calls it when the checkpoint cut is newer than anything left
// in the log (a crash under fsync=interval/none can lose acked batches
// the checkpoint had already made durable). By calling it the caller
// asserts every batch up to seq-1 is durable elsewhere. It never
// rewinds. When the jump leaves existing segments behind — their newest
// batch is below seq-1 — appending seq into them would write a
// batch-sequence gap that the next Open rejects as corruption, so the
// segments (fully covered by the caller's checkpoint) are deleted and
// the next append starts a fresh segment whose header carries seq.
func (l *Log) SetNextSeq(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if seq == 0 || l.lastSeq >= seq-1 {
		return nil
	}
	if len(l.segs) > 0 {
		if l.f != nil {
			if err := l.f.Close(); err != nil {
				return err
			}
			l.f = nil
		}
		for _, seg := range l.segs {
			if err := os.Remove(filepath.Join(l.opts.Dir, seg.name)); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
		l.segs = nil
		l.fsize = 0
		l.dirty = false
		syncDir(l.opts.Dir)
	}
	l.lastSeq = seq - 1
	return nil
}

// Close flushes and closes the log. Further operations return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop, done := l.stop, l.done
	var err error
	if l.f != nil {
		if !l.dead {
			if serr := l.f.Sync(); serr != nil {
				err = serr
			}
		}
		if cerr := l.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		l.f = nil
	}
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}

// syncDir fsyncs a directory so renames and removals are durable; best
// effort on platforms where directories cannot be synced.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}
