package wal

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkWALAppend measures one-batch append latency (three ops per
// batch, ~120 payload bytes) under each fsync policy. SyncAlways is
// dominated by the fsync; interval and none by the record encode + write.
func BenchmarkWALAppend(b *testing.B) {
	ops := [][]byte{
		[]byte("add-node:person-000000:labels=Person:props=name,age"),
		[]byte("add-edge:knows-000000:person-000000:person-000001"),
		[]byte("set-prop:person-000000:verified=true"),
	}
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		b.Run(pol.String(), func(b *testing.B) {
			l, _, err := Open(Options{Dir: b.TempDir(), Policy: pol, SyncEvery: 10 * time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			var bytes int64
			for _, op := range ops {
				bytes += int64(len(op))
			}
			b.SetBytes(bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(uint64(i+1), uint64(i+1), ops); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecoveryReplay measures Open + full Replay over a log of 2000
// committed batches spanning several segments.
func BenchmarkRecoveryReplay(b *testing.B) {
	dir := b.TempDir()
	l, _, err := Open(Options{Dir: dir, Policy: SyncNone, SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	const batches = 2000
	for i := 1; i <= batches; i++ {
		ops := [][]byte{
			[]byte(fmt.Sprintf("add-node:person-%06d:labels=Person:props=name,age,city", i)),
			[]byte(fmt.Sprintf("add-edge:knows-%06d:person-%06d:person-%06d", i, i, i/2)),
		}
		if err := l.Append(uint64(i), uint64(i), ops); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, info, err := Open(Options{Dir: dir, Policy: SyncNone, SegmentBytes: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if info.Batches != batches {
			b.Fatalf("recovered %d batches, want %d", info.Batches, batches)
		}
		var n int
		if err := l.Replay(0, func(seq, epoch uint64, ops [][]byte) error {
			n += len(ops)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if n != 2*batches {
			b.Fatalf("replayed %d ops", n)
		}
		l.Close()
	}
}
