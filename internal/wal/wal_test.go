package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// openT opens a log in dir, failing the test on error.
func openT(t *testing.T, o Options) (*Log, RecoverInfo) {
	t.Helper()
	l, info, err := Open(o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, info
}

// appendN appends n one-op batches starting at seq start+1, with op
// payloads that identify their batch.
func appendN(t *testing.T, l *Log, start uint64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		seq := start + uint64(i) + 1
		op := []byte(fmt.Sprintf("op-%d-payload", seq))
		if err := l.Append(seq, seq*10, [][]byte{op, []byte("second")}); err != nil {
			t.Fatalf("Append(%d): %v", seq, err)
		}
	}
}

// collect replays everything after `after` into (seq, epoch, op-count)
// triples.
func collect(t *testing.T, l *Log, after uint64) [][3]uint64 {
	t.Helper()
	var got [][3]uint64
	err := l.Replay(after, func(seq, epoch uint64, ops [][]byte) error {
		want := fmt.Sprintf("op-%d-payload", seq)
		if string(ops[0]) != want {
			t.Fatalf("batch %d first op = %q, want %q", seq, ops[0], want)
		}
		got = append(got, [3]uint64{seq, epoch, uint64(len(ops))})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	return names
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, info := openT(t, Options{Dir: dir})
	if info.Batches != 0 || info.Segments != 0 {
		t.Fatalf("fresh dir: %+v", info)
	}
	appendN(t, l, 0, 7)
	got := collect(t, l, 0)
	if len(got) != 7 {
		t.Fatalf("replayed %d batches, want 7", len(got))
	}
	for i, g := range got {
		if g[0] != uint64(i+1) || g[1] != g[0]*10 || g[2] != 2 {
			t.Fatalf("batch %d: got %v", i, g)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, info := openT(t, Options{Dir: dir})
	defer l2.Close()
	if info.Batches != 7 || info.LastSeq != 7 || info.MaxEpoch != 70 || info.Truncated {
		t.Fatalf("reopen: %+v", info)
	}
	if got := collect(t, l2, 3); len(got) != 4 || got[0][0] != 4 {
		t.Fatalf("Replay(3) = %v", got)
	}
	// And appending continues from where the log left off.
	appendN(t, l2, 7, 1)
	if st := l2.Stats(); st.LastSeq != 8 {
		t.Fatalf("LastSeq after reopen append = %d", st.LastSeq)
	}
}

func TestAppendOutOfOrder(t *testing.T) {
	l, _ := openT(t, Options{Dir: t.TempDir()})
	defer l.Close()
	appendN(t, l, 0, 2)
	if err := l.Append(4, 0, nil); err == nil {
		t.Fatal("gap accepted")
	}
	if err := l.Append(2, 0, nil); err == nil {
		t.Fatal("replayed seq accepted")
	}
}

func TestSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir, SegmentBytes: 256})
	appendN(t, l, 0, 20)
	if n := len(segFiles(t, dir)); n < 2 {
		t.Fatalf("expected multiple segments, got %d", n)
	}
	if got := collect(t, l, 0); len(got) != 20 {
		t.Fatalf("replayed %d, want 20", len(got))
	}
	l.Close()
	l2, info := openT(t, Options{Dir: dir, SegmentBytes: 256})
	defer l2.Close()
	if info.Batches != 20 || info.LastSeq != 20 {
		t.Fatalf("reopen across segments: %+v", info)
	}
}

func TestTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir, SegmentBytes: 256})
	defer l.Close()
	appendN(t, l, 0, 20)
	before := len(segFiles(t, dir))
	if err := l.TruncateBefore(15); err != nil {
		t.Fatal(err)
	}
	after := len(segFiles(t, dir))
	if after >= before {
		t.Fatalf("TruncateBefore removed nothing (%d -> %d segments)", before, after)
	}
	// Batches after the cut all survive.
	got := collect(t, l, 15)
	if len(got) != 5 || got[0][0] != 16 {
		t.Fatalf("post-truncate Replay(15) = %v", got)
	}
	if st := l.Stats(); st.LastSeq != 20 {
		t.Fatalf("LastSeq = %d", st.LastSeq)
	}
}

func TestSetNextSeq(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir})
	defer l.Close()
	if err := l.SetNextSeq(42); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(42, 420, [][]byte{[]byte("op-42-payload")}); err != nil {
		t.Fatalf("Append(42) after SetNextSeq: %v", err)
	}
	// SetNextSeq never rewinds.
	if err := l.SetNextSeq(10); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(43, 430, [][]byte{[]byte("op-43-payload")}); err != nil {
		t.Fatalf("Append(43): %v", err)
	}
}

func TestSetNextSeqResetsStaleSegments(t *testing.T) {
	// The checkpoint-ahead-of-WAL crash: batches 6..8 were made durable by
	// a checkpoint but lost from the WAL (fsync=interval/none), so
	// recovery jumps the sequence past a non-empty log. The stale
	// segments must be reset — appending batch 9 directly after batch 5
	// would write a sequence gap the next Open rejects as corruption.
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir})
	appendN(t, l, 0, 5)
	if err := l.SetNextSeq(9); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 8, 2)
	l.Close()
	l2, info := openT(t, Options{Dir: dir})
	defer l2.Close()
	if info.Batches != 2 || info.LastSeq != 10 {
		t.Fatalf("reopen after sequence jump: %+v", info)
	}
	if got := collect(t, l2, 0); len(got) != 2 || got[0][0] != 9 {
		t.Fatalf("Replay = %v", got)
	}
}

// tailFile returns the newest segment's path and size.
func tailFile(t *testing.T, dir string) (string, int64) {
	t.Helper()
	names := segFiles(t, dir)
	if len(names) == 0 {
		t.Fatal("no segments")
	}
	p := filepath.Join(dir, names[len(names)-1])
	st, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, st.Size()
}

func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int64{1, 3, 7} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openT(t, Options{Dir: dir})
			appendN(t, l, 0, 5)
			l.Close()
			p, size := tailFile(t, dir)
			// Cut into the last batch's bytes: a torn tail.
			if err := os.Truncate(p, size-cut); err != nil {
				t.Fatal(err)
			}
			l2, info := openT(t, Options{Dir: dir})
			if !info.Truncated || info.TornBytes == 0 {
				t.Fatalf("no repair reported: %+v", info)
			}
			if info.Batches != 4 || info.LastSeq != 4 {
				t.Fatalf("committed prefix: %+v", info)
			}
			if got := collect(t, l2, 0); len(got) != 4 {
				t.Fatalf("replayed %d, want 4", len(got))
			}
			l2.Close()
			// Double reopen is idempotent: the repair already happened.
			l3, info := openT(t, Options{Dir: dir})
			defer l3.Close()
			if info.Truncated || info.Batches != 4 {
				t.Fatalf("second reopen not clean: %+v", info)
			}
		})
	}
}

func TestTornPayloadEmbeddedFrameIsTornTail(t *testing.T) {
	// A torn record whose partially-written payload happens to contain a
	// well-formed record frame must still classify as a torn tail: the
	// resync scan skips the torn record's declared body and requires
	// candidates to chain to end-of-segment, so caller-encoded bytes
	// can't turn a routine crash into an unrecoverable CorruptionError.
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir})
	appendN(t, l, 0, 1)
	embedded := encRecord(rCommit, []byte("payload-victim"))
	op := append(append([]byte{}, embedded...), bytes.Repeat([]byte{0xFF}, 16)...)
	if err := l.Append(2, 20, [][]byte{op}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	p, size := tailFile(t, dir)
	// Cut 2 bytes into the end of batch 2's OP record body: the record
	// header survives, the declared body runs past EOF, and the embedded
	// frame sits whole inside the surviving bytes.
	commitLen := int64(len(encRecord(rCommit, binary.AppendUvarint(binary.AppendUvarint(nil, 2), 20))))
	if err := os.Truncate(p, size-commitLen-2); err != nil {
		t.Fatal(err)
	}
	l2, info := openT(t, Options{Dir: dir})
	defer l2.Close()
	if !info.Truncated || info.Batches != 1 || info.LastSeq != 1 {
		t.Fatalf("embedded frame misclassified the torn tail: %+v", info)
	}
}

func TestWriteErrorRewind(t *testing.T) {
	// A failed mid-batch write (ENOSPC-style partial write) must not
	// leave garbage that later successful appends bury in the middle of
	// the segment: the writer truncates back to the last good offset and
	// the log keeps accepting batches.
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir})
	appendN(t, l, 0, 3)
	cause := errors.New("disk full")
	l.mu.Lock()
	if _, err := l.f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		l.mu.Unlock()
		t.Fatal(err)
	}
	err := l.rewindLocked(l.off, l.fsize, cause)
	l.mu.Unlock()
	if !errors.Is(err, cause) {
		t.Fatalf("rewind returned %v, want the write error", err)
	}
	appendN(t, l, 3, 2)
	l.Close()
	l2, info := openT(t, Options{Dir: dir})
	defer l2.Close()
	if info.Batches != 5 || info.LastSeq != 5 || info.Truncated {
		t.Fatalf("reopen after rewound write error: %+v", info)
	}
	if got := collect(t, l2, 0); len(got) != 5 {
		t.Fatalf("replayed %d, want 5", len(got))
	}
}

func TestWriteErrorUnrewindableMarksDead(t *testing.T) {
	// When the rewind itself fails the file may hold garbage past the
	// committed prefix, so the log must die rather than accept more
	// appends after it; reopen still serves the committed prefix.
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir})
	appendN(t, l, 0, 2)
	l.mu.Lock()
	good := l.f
	ro, err := os.Open(good.Name())
	if err != nil {
		l.mu.Unlock()
		t.Fatal(err)
	}
	if _, err := ro.Seek(0, io.SeekEnd); err != nil {
		l.mu.Unlock()
		t.Fatal(err)
	}
	l.f = ro // writes (and the rewind's truncate) now fail
	l.mu.Unlock()
	if err := l.Append(3, 30, [][]byte{[]byte("x")}); err == nil {
		t.Fatal("append through an unwritable file succeeded")
	}
	if err := l.Append(3, 30, [][]byte{[]byte("x")}); err == nil || errors.Is(err, ErrClosed) {
		t.Fatalf("dead log accepted another append: %v", err)
	}
	good.Close()
	l.Close()
	l2, info := openT(t, Options{Dir: dir})
	defer l2.Close()
	if info.Batches != 2 || info.LastSeq != 2 {
		t.Fatalf("reopen after dead log: %+v", info)
	}
}

func TestMidLogCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir})
	appendN(t, l, 0, 5)
	l.Close()
	p, _ := tailFile(t, dir)
	// Flip a bit early in the file (inside the first batch's records);
	// valid records follow, so this must be corruption, not a torn tail.
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[hdrSize+recHdrSize+3] ^= 0x10
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(Options{Dir: dir})
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("Open = %v, want CorruptionError", err)
	}
}

func TestFlippedLengthDoesNotSwallowLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir})
	appendN(t, l, 0, 5)
	l.Close()
	p, _ := tailFile(t, dir)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Blow up the first record's length prefix so it claims to extend
	// past EOF. Later records are intact, so recovery must refuse to
	// treat this as a torn tail.
	binary.LittleEndian.PutUint32(data[hdrSize:], 1<<27)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(Options{Dir: dir})
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("Open = %v, want CorruptionError", err)
	}
}

func TestHeaderOnlyAndShortSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir})
	appendN(t, l, 0, 3)
	l.Close()

	// A header-only next segment (crash right after a roll).
	var hdr [hdrSize]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint64(hdr[8:], 4)
	if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000004.seg"), hdr[:], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, info := openT(t, Options{Dir: dir})
	if info.Batches != 3 {
		t.Fatalf("header-only segment: %+v", info)
	}
	appendN(t, l2, 3, 1)
	l2.Close()

	// A sub-header tail segment (crash mid-creation) is deleted.
	if err := os.WriteFile(filepath.Join(dir, "wal-00000000000000ff.seg"), []byte("GPML"), 0o644); err != nil {
		t.Fatal(err)
	}
	l3, info := openT(t, Options{Dir: dir})
	defer l3.Close()
	if !info.Truncated || info.Batches != 4 {
		t.Fatalf("short segment: %+v", info)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-00000000000000ff.seg")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("short segment not removed")
	}
}

func TestUncommittedBatchDropped(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir})
	appendN(t, l, 0, 3)
	// Kill exactly at a record boundary inside batch 4: BEGIN and the op
	// are fully written, the COMMIT never is.
	st := l.Stats()
	op := []byte("op-4-payload")
	beginLen := int64(recHdrSize + 1 + len(binary.AppendUvarint(binary.AppendUvarint(nil, 4), 1)))
	opLen := int64(recHdrSize + 1 + len(op))
	l.Arm(Failpoint{Kind: FaultKill, Offset: st.Bytes + beginLen + opLen})
	if err := l.Append(4, 40, [][]byte{op}); !errors.Is(err, ErrInjected) {
		t.Fatalf("Append under kill = %v", err)
	}
	if err := l.Append(5, 50, nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("dead log accepted append: %v", err)
	}
	l.Close()
	l2, info := openT(t, Options{Dir: dir})
	defer l2.Close()
	if info.Batches != 3 || !info.Truncated {
		t.Fatalf("uncommitted batch surfaced: %+v", info)
	}
	if got := collect(t, l2, 0); len(got) != 3 {
		t.Fatalf("replayed %d, want 3", len(got))
	}
}

func TestFaultTruncateRewindsStream(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir, SegmentBytes: 256})
	appendN(t, l, 0, 3)
	cut := l.Stats().Bytes // rewind to the end of batch 3
	appendN(t, l, 3, 4)
	l.Arm(Failpoint{Kind: FaultTruncate, Offset: cut, After: l.Stats().Bytes + 1})
	if err := l.Append(8, 80, [][]byte{[]byte("op-8-payload")}); !errors.Is(err, ErrInjected) {
		t.Fatalf("Append under truncate fault = %v", err)
	}
	l.Close()
	l2, info := openT(t, Options{Dir: dir, SegmentBytes: 256})
	defer l2.Close()
	if info.Batches != 3 || info.LastSeq != 3 {
		t.Fatalf("after injected tail loss: %+v", info)
	}
}

func TestFaultFlipDetectedOnReopen(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir})
	appendN(t, l, 0, 2)
	flipAt := l.Stats().Bytes + 12 // somewhere inside batch 3's records
	l.Arm(Failpoint{Kind: FaultFlip, Offset: flipAt})
	// The flip is silent: the writer stays alive and keeps acking.
	appendN(t, l, 2, 3)
	l.Close()
	_, _, err := Open(Options{Dir: dir})
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("Open after bit flip = %v, want CorruptionError", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		t.Run(pol.String(), func(t *testing.T) {
			l, _ := openT(t, Options{Dir: t.TempDir(), Policy: pol, SyncEvery: time.Millisecond})
			appendN(t, l, 0, 5)
			if pol == SyncInterval {
				time.Sleep(20 * time.Millisecond)
			}
			st := l.Stats()
			if pol == SyncAlways && st.Syncs < 5 {
				t.Fatalf("SyncAlways synced %d times", st.Syncs)
			}
			if pol == SyncInterval && st.Syncs == 0 {
				t.Fatal("SyncInterval never synced")
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if err := l.Sync(); !errors.Is(err, ErrClosed) {
				t.Fatalf("Sync after Close = %v", err)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "Interval": SyncInterval, " none ": SyncNone} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestSegmentSeqGapDetected(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir, SegmentBytes: 256})
	appendN(t, l, 0, 20)
	l.Close()
	names := segFiles(t, dir)
	if len(names) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(names))
	}
	// Deleting a middle segment leaves a sequence gap recovery must see.
	if err := os.Remove(filepath.Join(dir, names[1])); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(Options{Dir: dir, SegmentBytes: 256})
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("Open with missing segment = %v, want CorruptionError", err)
	}
}
