package normalize

import (
	"strconv"
	"strings"

	"gpml/internal/lexer"
)

// QueryKey canonicalizes query text at the token level for use as a
// compiled-plan cache key: comments and whitespace are stripped, keyword
// spelling is folded to its canonical upper-case form, numeric literals
// are re-rendered canonically (0x10 and 16 collide, as do 1.50 and 1.5),
// and string/identifier payloads keep their exact decoded spelling.
// Texts that tokenize identically — however they are laid out — share a
// key, so a cache keyed on QueryKey deduplicates reformatted copies of
// the same statement without parsing or planning them. Full structural
// normalization (§6.2) still happens once, at compile time, on the cache
// miss path.
//
// The key is derived from tokens only, so it is strictly coarser than
// source identity and strictly finer than plan identity; it never
// conflates two statements that parse differently. Texts that fail to
// tokenize return the lexer's positioned error.
func QueryKey(src string) (string, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.Grow(len(src))
	for i, t := range toks {
		if t.Kind == lexer.EOF {
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		writeTokenKey(&b, t)
	}
	return b.String(), nil
}

// writeTokenKey renders one token in its canonical cache-key spelling.
func writeTokenKey(b *strings.Builder, t lexer.Token) {
	switch t.Kind {
	case lexer.IDENT, lexer.KEYWORD:
		b.WriteString(t.Text)
	case lexer.STRING:
		// Re-quote the decoded payload so differently escaped spellings
		// of one string collide while staying distinct from identifiers.
		b.WriteString(strconv.Quote(t.Text))
	case lexer.INT:
		b.WriteString(strconv.FormatInt(t.Int, 10))
	case lexer.FLOAT:
		s := strconv.FormatFloat(t.Float, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			// Keep float-typed literals distinct from INT: 1.0 renders
			// as "1" under %g, but the two literals type differently.
			s += ".0"
		}
		b.WriteString(s)
	case lexer.PARAM:
		b.WriteByte('$')
		b.WriteString(t.Text)
	case lexer.LPAREN:
		b.WriteByte('(')
	case lexer.RPAREN:
		b.WriteByte(')')
	case lexer.LBRACKET:
		b.WriteByte('[')
	case lexer.RBRACKET:
		b.WriteByte(']')
	case lexer.LBRACE:
		b.WriteByte('{')
	case lexer.RBRACE:
		b.WriteByte('}')
	case lexer.COMMA:
		b.WriteByte(',')
	case lexer.DOT:
		b.WriteByte('.')
	case lexer.COLON:
		b.WriteByte(':')
	case lexer.BAR:
		b.WriteByte('|')
	case lexer.MULTIBAR:
		b.WriteString("|+|")
	case lexer.LT:
		b.WriteByte('<')
	case lexer.GT:
		b.WriteByte('>')
	case lexer.LE:
		b.WriteString("<=")
	case lexer.GE:
		b.WriteString(">=")
	case lexer.NE:
		b.WriteString("<>")
	case lexer.EQ:
		b.WriteByte('=')
	case lexer.MINUS:
		b.WriteByte('-')
	case lexer.PLUS:
		b.WriteByte('+')
	case lexer.STAR:
		b.WriteByte('*')
	case lexer.SLASH:
		b.WriteByte('/')
	case lexer.PERCENT:
		b.WriteByte('%')
	case lexer.TILDE:
		b.WriteByte('~')
	case lexer.QUESTION:
		b.WriteByte('?')
	case lexer.BANG:
		b.WriteByte('!')
	case lexer.AMP:
		b.WriteByte('&')
	}
}
