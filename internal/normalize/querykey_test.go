package normalize

import "testing"

// TestQueryKeyCollisions pins which textual variants share a cache key:
// layout, comments, keyword case, numeric and string literal spelling
// collapse; anything that tokenizes differently must not.
func TestQueryKeyCollisions(t *testing.T) {
	collide := [][2]string{
		{"MATCH (x:Account)", "  MATCH   (x:Account)  "},
		{"MATCH (x:Account)", "MATCH (x:Account) // trailing comment"},
		{"MATCH (x)-[e]->(y)", "MATCH (x) - [e] -> (y)"},
		{"match (x:Account)", "MATCH (x:Account)"},
		{"MATCH (x WHERE x.f = 1.5)", "MATCH (x WHERE x.f = 1.50)"},
		{"MATCH (x WHERE x.f = 2.0)", "MATCH (x WHERE x.f = 2.00)"},
		{"MATCH (x WHERE x.a = $v)", "MATCH (x WHERE x.a=$v)"},
		{"MATCH (x:Account)\nWHERE x.isBlocked = 'no'", "MATCH (x:Account) WHERE x.isBlocked = 'no'"},
	}
	for _, pair := range collide {
		a, err := QueryKey(pair[0])
		if err != nil {
			t.Fatalf("QueryKey(%q): %v", pair[0], err)
		}
		b, err := QueryKey(pair[1])
		if err != nil {
			t.Fatalf("QueryKey(%q): %v", pair[1], err)
		}
		if a != b {
			t.Errorf("keys differ:\n%q -> %q\n%q -> %q", pair[0], a, pair[1], b)
		}
	}
}

func TestQueryKeyDistinctions(t *testing.T) {
	distinct := [][2]string{
		{"MATCH (x:Account)", "MATCH (y:Account)"},               // identifiers are case- and name-sensitive
		{"MATCH (x:Account)", "MATCH (x:account)"},               // labels too
		{"MATCH (x WHERE x.a = 'b')", "MATCH (x WHERE x.a = b)"}, // string vs identifier
		{"MATCH (x WHERE x.n = 1)", "MATCH (x WHERE x.n = 1.0)"}, // INT vs FLOAT literal
		{"MATCH (x WHERE x.a = $v)", "MATCH (x WHERE x.a = $w)"}, // parameter names
		{"MATCH (x)-[e]->(y)", "MATCH (x)<-[e]-(y)"},
	}
	for _, pair := range distinct {
		a, err := QueryKey(pair[0])
		if err != nil {
			t.Fatalf("QueryKey(%q): %v", pair[0], err)
		}
		b, err := QueryKey(pair[1])
		if err != nil {
			t.Fatalf("QueryKey(%q): %v", pair[1], err)
		}
		if a == b {
			t.Errorf("keys collide for distinct queries %q and %q: %q", pair[0], pair[1], a)
		}
	}
}

func TestQueryKeyLexError(t *testing.T) {
	if _, err := QueryKey("MATCH (x WHERE x.a = 'unterminated"); err == nil {
		t.Fatal("expected a lex error for unterminated string")
	}
}
