package normalize

import (
	"strings"
	"testing"

	"gpml/internal/ast"
	"gpml/internal/parser"
)

func norm(t *testing.T, src string) *ast.MatchStmt {
	t.Helper()
	stmt, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out, err := Normalize(stmt)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return out
}

// checkShape verifies the §6.2 guarantees on a normalized tree: sequences
// are concats whose edge patterns are surrounded by node-providing
// elements, every element pattern carries a variable, and quantifiers wrap
// parenthesized patterns.
func checkShape(t *testing.T, e ast.PathExpr) {
	t.Helper()
	switch x := e.(type) {
	case *ast.Concat:
		prevEdge := true
		for _, el := range x.Elems {
			if _, isEdge := el.(*ast.EdgePattern); isEdge {
				if prevEdge {
					t.Errorf("edge pattern not preceded by a node-providing element in %s", x)
				}
				prevEdge = true
			} else {
				prevEdge = false
			}
			checkShape(t, el)
		}
		if prevEdge {
			t.Errorf("sequence ends with an edge pattern: %s", x)
		}
	case *ast.NodePattern:
		if x.Var == "" {
			t.Errorf("anonymous node pattern survived normalization")
		}
	case *ast.EdgePattern:
		if x.Var == "" {
			t.Errorf("anonymous edge pattern survived normalization")
		}
	case *ast.Paren:
		if _, ok := x.Expr.(*ast.Concat); !ok {
			t.Errorf("paren interior is %T, want *ast.Concat", x.Expr)
		}
		checkShape(t, x.Expr)
	case *ast.Quantified:
		if _, ok := x.Inner.(*ast.Paren); !ok {
			t.Errorf("quantifier inner is %T, want *ast.Paren", x.Inner)
		}
		checkShape(t, x.Inner)
	case *ast.Union:
		for i, op := range x.Ops {
			if op != x.Ops[0] {
				t.Errorf("mixed union operators survived at index %d", i)
			}
		}
		for _, br := range x.Branches {
			if _, ok := br.(*ast.Concat); !ok {
				t.Errorf("union branch is %T, want *ast.Concat", br)
			}
			checkShape(t, br)
		}
	}
}

func TestShapes(t *testing.T) {
	queries := []string{
		`MATCH (x)`,
		`MATCH -[e]->`,
		`MATCH ~[e]~`,
		`MATCH (a)-[e]->(b)`,
		`MATCH (a)-[e]->-[f]->(b)`, // adjacent edges: anonymous node inserted
		`MATCH ->{1,5}`,
		`MATCH (a)-[:Transfer]->{2,5}(b)`,
		`MATCH (a) [()-[t]->() WHERE t.amount>1]{2,5} (b)`,
		`MATCH (c:City) | (c:Country)`,
		`MATCH (a) | (b) |+| (c)`,
		`MATCH (x)[->(y)]?`,
		`MATCH TRAIL (a) [-[b:Transfer]->]+ (a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]`,
	}
	for _, src := range queries {
		stmt := norm(t, src)
		for _, pp := range stmt.Patterns {
			if _, ok := pp.Expr.(*ast.Concat); !ok {
				t.Errorf("%s: top level is %T, want *ast.Concat", src, pp.Expr)
			}
			checkShape(t, pp.Expr)
		}
	}
}

func TestBareEdgeGetsAnonNodes(t *testing.T) {
	stmt := norm(t, `MATCH -[e]->`)
	c := stmt.Patterns[0].Expr.(*ast.Concat)
	if len(c.Elems) != 3 {
		t.Fatalf("want node,edge,node; got %d elements", len(c.Elems))
	}
	n1, ok1 := c.Elems[0].(*ast.NodePattern)
	_, ok2 := c.Elems[1].(*ast.EdgePattern)
	n2, ok3 := c.Elems[2].(*ast.NodePattern)
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("wrong shapes: %T %T %T", c.Elems[0], c.Elems[1], c.Elems[2])
	}
	if !ast.IsAnonVar(n1.Var) || !ast.IsAnonVar(n2.Var) {
		t.Errorf("inserted nodes must be anonymous: %q %q", n1.Var, n2.Var)
	}
	if n1.Var == n2.Var {
		t.Errorf("anonymous variables must be fresh")
	}
}

// §4.4: a quantifier on a bare edge pattern is understood by supplying
// anonymous node patterns to its left and right.
func TestQuantifiedBareEdgeWrapped(t *testing.T) {
	stmt := norm(t, `MATCH (a)-[:Transfer]->{2,5}(b)`)
	c := stmt.Patterns[0].Expr.(*ast.Concat)
	q, ok := c.Elems[1].(*ast.Quantified)
	if !ok {
		t.Fatalf("middle element: %T", c.Elems[1])
	}
	par := q.Inner.(*ast.Paren)
	inner := par.Expr.(*ast.Concat)
	if len(inner.Elems) != 3 {
		t.Fatalf("iteration body: want node,edge,node; got %d", len(inner.Elems))
	}
}

// The paper's §6.2 worked normalization: the + becomes {1,}, the bare
// edge is wrapped, and the union branches get leading anonymous nodes.
func TestSection62RunningExample(t *testing.T) {
	stmt := norm(t, `
		MATCH TRAIL (a WHERE a.owner='Jay')
		      [-[b:Transfer WHERE b.amount>5M]->]+
		      (a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]`)
	c := stmt.Patterns[0].Expr.(*ast.Concat)
	if len(c.Elems) != 4 {
		t.Fatalf("top-level: want 4 elements (node, quant, node, union), got %d: %s", len(c.Elems), c)
	}
	q := c.Elems[1].(*ast.Quantified)
	if q.Min != 1 || q.Max != -1 {
		t.Errorf("+ must desugar to {1,}: {%d,%d}", q.Min, q.Max)
	}
	body := q.Inner.(*ast.Paren).Expr.(*ast.Concat)
	if len(body.Elems) != 3 {
		t.Fatalf("quantifier body: want 3, got %d", len(body.Elems))
	}
	// The bracketed alternation parses as a Paren around the Union.
	u := c.Elems[3].(*ast.Paren).Expr.(*ast.Concat).Elems[0].(*ast.Union)
	for _, br := range u.Branches {
		bc := br.(*ast.Concat)
		if len(bc.Elems) != 3 {
			t.Fatalf("union branch: want node,edge,node; got %d: %s", len(bc.Elems), bc)
		}
		if n, ok := bc.Elems[0].(*ast.NodePattern); !ok || !ast.IsAnonVar(n.Var) {
			t.Errorf("union branch must start with an anonymous node, got %s", bc.Elems[0])
		}
	}
}

func TestMixedUnionFolding(t *testing.T) {
	stmt := norm(t, `MATCH (a) | (b) |+| (c)`)
	u := stmt.Patterns[0].Expr.(*ast.Concat).Elems[0].(*ast.Union)
	if len(u.Ops) != 1 || u.Ops[0] != ast.Multiset {
		t.Fatalf("outer union should be the multiset fold: %+v", u.Ops)
	}
	left := u.Branches[0].(*ast.Concat).Elems[0].(*ast.Union)
	if len(left.Ops) != 1 || left.Ops[0] != ast.SetUnion {
		t.Errorf("inner union should be the set fold: %+v", left.Ops)
	}
}

func TestNormalizeDoesNotMutateInput(t *testing.T) {
	stmt, err := parser.Parse(`MATCH -[e]->`)
	if err != nil {
		t.Fatal(err)
	}
	before := stmt.String()
	if _, err := Normalize(stmt); err != nil {
		t.Fatal(err)
	}
	if stmt.String() != before {
		t.Errorf("input mutated:\n before %s\n after  %s", before, stmt.String())
	}
}

func TestFreshVariableNumbering(t *testing.T) {
	stmt := norm(t, `MATCH ()-[]->()-[]->()`)
	seen := map[string]bool{}
	ast.WalkPath(stmt.Patterns[0].Expr, func(e ast.PathExpr) bool {
		switch x := e.(type) {
		case *ast.NodePattern:
			if seen[x.Var] {
				t.Errorf("duplicate fresh variable %q", x.Var)
			}
			seen[x.Var] = true
		case *ast.EdgePattern:
			if seen[x.Var] {
				t.Errorf("duplicate fresh variable %q", x.Var)
			}
			seen[x.Var] = true
		}
		return true
	})
	if len(seen) != 5 {
		t.Errorf("want 5 fresh variables, got %d", len(seen))
	}
}

func TestAnonymousReducedMarkers(t *testing.T) {
	if got := ast.ReducedVar(ast.AnonNodeVar(3)); got != "□" {
		t.Errorf("anon node reduces to □, got %q", got)
	}
	if got := ast.ReducedVar(ast.AnonEdgeVar(1)); got != "−" {
		t.Errorf("anon edge reduces to −, got %q", got)
	}
	if got := ast.ReducedVar("x"); got != "x" {
		t.Errorf("named variable unchanged, got %q", got)
	}
}

func TestPrintedNormalFormParses(t *testing.T) {
	// Normalized trees print without anonymous variables and re-parse.
	stmt := norm(t, `MATCH (a)-[:Transfer]->{2,5}(b) WHERE a.owner = b.owner`)
	printed := stmt.String()
	if strings.Contains(printed, "$") {
		t.Errorf("printed normal form leaks anonymous variables: %s", printed)
	}
	if _, err := parser.Parse(printed); err != nil {
		t.Errorf("printed normal form does not re-parse: %s\n%v", printed, err)
	}
}

// Normalization is shape-stable: normalizing an already-normalized
// statement yields the same printed form (anonymous variables are
// renumbered internally but never printed).
func TestNormalizeShapeStable(t *testing.T) {
	queries := []string{
		`MATCH -[e]->`,
		`MATCH (a)-[:Transfer]->{2,5}(b)`,
		`MATCH TRAIL (a) [-[b:Transfer]->]+ (a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]`,
		`MATCH (x)[->(y)]?`,
	}
	for _, src := range queries {
		once := norm(t, src)
		twice, err := Normalize(once)
		if err != nil {
			t.Fatalf("re-normalize %q: %v", src, err)
		}
		if once.String() != twice.String() {
			t.Errorf("normalization not shape-stable for %q:\n once  %s\n twice %s",
				src, once, twice)
		}
	}
}
