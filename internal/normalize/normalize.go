// Package normalize implements the normalization step of the paper's
// execution model (§6.2):
//
//  1. Each sequence of node and edge patterns is made consistent: it must
//     start and end with a node-providing element and alternate between
//     node positions and edges; anonymous node patterns are inserted where
//     needed (including around quantified bare edge patterns, §4.4).
//  2. Syntactic sugar is expanded (the parser already canonicalizes *, +
//     and {m,n}; this step canonicalizes structure).
//  3. A fresh variable is introduced into each anonymous node and edge
//     pattern (the paper's □ᵢ and −ᵢ; we spell them $nᵢ and $eᵢ).
//
// Additionally, unions with mixed | and |+| operators are rewritten into
// left-nested unions with a uniform operator per node, so that multiset
// branch identities (§4.5, §6.5) are well defined.
//
// Normalization never mutates its input; it returns a fresh tree.
package normalize

import (
	"fmt"

	"gpml/internal/ast"
)

// Normalize returns the normalized form of the statement.
func Normalize(stmt *ast.MatchStmt) (*ast.MatchStmt, error) {
	n := &normalizer{}
	out := &ast.MatchStmt{Where: stmt.Where}
	for _, pp := range stmt.Patterns {
		expr, err := n.pathExpr(pp.Expr)
		if err != nil {
			return nil, err
		}
		out.Patterns = append(out.Patterns, &ast.PathPattern{
			Selector:   pp.Selector,
			Restrictor: pp.Restrictor,
			PathVar:    pp.PathVar,
			Expr:       expr,
		})
	}
	return out, nil
}

type normalizer struct {
	nextNode int
	nextEdge int
}

func (n *normalizer) freshNode() string {
	n.nextNode++
	return ast.AnonNodeVar(n.nextNode)
}

func (n *normalizer) freshEdge() string {
	n.nextEdge++
	return ast.AnonEdgeVar(n.nextEdge)
}

// pathExpr normalizes a sequence context (top level, paren interior, union
// branch): the result is always a *ast.Concat whose elements alternate
// correctly and carry variables.
func (n *normalizer) pathExpr(e ast.PathExpr) (ast.PathExpr, error) {
	elems, err := n.sequence(e)
	if err != nil {
		return nil, err
	}
	return &ast.Concat{Elems: elems}, nil
}

// sequence flattens nested concatenations and normalizes each element,
// inserting anonymous node patterns so that edge patterns are always
// preceded and followed by a node-providing element.
func (n *normalizer) sequence(e ast.PathExpr) ([]ast.PathExpr, error) {
	var raw []ast.PathExpr
	var flatten func(ast.PathExpr)
	flatten = func(e ast.PathExpr) {
		if c, ok := e.(*ast.Concat); ok {
			for _, el := range c.Elems {
				flatten(el)
			}
			return
		}
		raw = append(raw, e)
	}
	flatten(e)

	var out []ast.PathExpr
	prevIsEdge := true // forces a node before a leading edge
	for _, el := range raw {
		norm, err := n.element(el)
		if err != nil {
			return nil, err
		}
		if _, isEdge := norm.(*ast.EdgePattern); isEdge {
			if prevIsEdge {
				out = append(out, &ast.NodePattern{Var: n.freshNode()})
			}
			prevIsEdge = true
		} else {
			prevIsEdge = false
		}
		out = append(out, norm)
	}
	if prevIsEdge {
		out = append(out, &ast.NodePattern{Var: n.freshNode()})
	}
	return out, nil
}

// element normalizes a single non-concat pattern element.
func (n *normalizer) element(e ast.PathExpr) (ast.PathExpr, error) {
	switch x := e.(type) {
	case *ast.NodePattern:
		out := *x
		if out.Var == "" {
			out.Var = n.freshNode()
		}
		return &out, nil
	case *ast.EdgePattern:
		out := *x
		if out.Var == "" {
			out.Var = n.freshEdge()
		}
		return &out, nil
	case *ast.Paren:
		inner, err := n.pathExpr(x.Expr)
		if err != nil {
			return nil, err
		}
		return &ast.Paren{Restrictor: x.Restrictor, Expr: inner, Where: x.Where, Square: x.Square}, nil
	case *ast.Quantified:
		inner := x.Inner
		// §4.4: a quantifier on a bare edge pattern is understood by
		// supplying anonymous node patterns to its left and right; wrap the
		// edge in a parenthesized pattern so the sequence repair applies.
		if _, isEdge := inner.(*ast.EdgePattern); isEdge {
			inner = &ast.Paren{Expr: inner, Square: true}
		}
		normInner, err := n.element(inner)
		if err != nil {
			return nil, err
		}
		if _, isParen := normInner.(*ast.Paren); !isParen {
			return nil, fmt.Errorf("normalize: quantifier applied to %T; only edge patterns and parenthesized path patterns may be quantified", x.Inner)
		}
		return &ast.Quantified{Inner: normInner, Min: x.Min, Max: x.Max, Question: x.Question}, nil
	case *ast.Union:
		return n.union(x)
	case *ast.Concat:
		// A nested concat outside a sequence context: normalize as its own
		// sequence and wrap in an invisible paren grouping.
		inner, err := n.pathExpr(x)
		if err != nil {
			return nil, err
		}
		return &ast.Paren{Expr: inner}, nil
	default:
		return nil, fmt.Errorf("normalize: unknown path expression %T", e)
	}
}

// union normalizes an alternation. Mixed operators are folded into
// left-nested binary unions so each Union node carries a single operator.
func (n *normalizer) union(u *ast.Union) (ast.PathExpr, error) {
	if len(u.Branches) == 1 {
		return n.pathExpr(u.Branches[0])
	}
	uniform := true
	for _, op := range u.Ops[1:] {
		if op != u.Ops[0] {
			uniform = false
			break
		}
	}
	if uniform {
		out := &ast.Union{Ops: make([]ast.UnionOp, len(u.Ops))}
		copy(out.Ops, u.Ops)
		for _, br := range u.Branches {
			nb, err := n.pathExpr(br)
			if err != nil {
				return nil, err
			}
			out.Branches = append(out.Branches, nb)
		}
		return out, nil
	}
	// Left-associative fold: ((b0 op0 b1) op1 b2) …
	acc, err := n.pathExpr(u.Branches[0])
	if err != nil {
		return nil, err
	}
	for i, op := range u.Ops {
		right, err := n.pathExpr(u.Branches[i+1])
		if err != nil {
			return nil, err
		}
		acc = &ast.Union{Branches: []ast.PathExpr{wrapConcat(acc), right}, Ops: []ast.UnionOp{op}}
	}
	return acc, nil
}

// wrapConcat ensures a union branch is a sequence context (a nested union
// becomes a single-element concat wrapping it).
func wrapConcat(e ast.PathExpr) ast.PathExpr {
	if _, ok := e.(*ast.Concat); ok {
		return e
	}
	return &ast.Concat{Elems: []ast.PathExpr{e}}
}
