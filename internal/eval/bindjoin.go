package eval

import (
	"fmt"
	"sort"

	"gpml/internal/ast"
	"gpml/internal/binding"
	"gpml/internal/graph"
	"gpml/internal/plan"
)

// Bind-join evaluation of multi-pattern statements (§6.5 "Multiple
// patterns"). Instead of enumerating every path pattern in full and hash
// joining afterwards, the patterns are solved in the cost order picked by
// plan.OrderJoin, and each already-joined row's shared endpoint bindings
// become the seed set of the next pattern's engine run: a pattern whose
// head variable is already bound only ever explores matches starting at
// the handful of nodes the join has produced so far. Since PR 4 the
// pipeline is fully streaming — rows flow through a chain of join-step
// cursors (see stream.go), and each step solves a seed node the first
// time an input row demands it, memoizing per seed.
//
// The rewrite is exact, not approximate, for two structural reasons:
//
//   - a pattern's solution set decomposes by seed: every solution's path
//     starts at its seed node, so reduction keys never collide across
//     seeds (the path is part of the key) and ApplySelector partitions by
//     path endpoints, which never span seeds. Running the per-pattern
//     pipeline seed-by-seed therefore yields exactly the full solution
//     set restricted to those seeds — and solutions at unseeded nodes
//     cannot survive the equi-join anyway, because the seed variable is
//     part of the hash key.
//
//   - the classic pipeline's row order is the nested-loop order over the
//     patterns in textual order, with each pattern's solutions sorted by
//     (path length, canonical key) — i.e. rows come out lexicographically
//     ordered by the per-pattern sort keys. sortRowsCanonical restores
//     exactly that order, so Eval's collected Result is byte-identical.

// seedSolver runs the full single-pattern pipeline (§6 stage order:
// enumerate, reduce, deduplicate, select) one seed node at a time; the
// engine machinery (and for the automaton engine, the compiled product
// searcher) is built once and reused across seeds. Search limits are
// shared across all seed runs through the caller's budget, mirroring
// Enumerate; st optionally supplies a pre-built indexed topology view so
// worker pools share one instead of rebuilding it per worker.
type seedSolver struct {
	pp  *plan.PathPlan
	run func(int) error
	buf []*binding.PathBinding
	// seen is the reusable per-seed dedup set (cleared between seeds —
	// exact, since dedup keys never collide across seeds). Reusing it
	// keeps the per-seed constant cost near zero on many-seed workloads.
	// Keys are the Keyer's compact binary form (its variable codes only
	// grow, so one Keyer is consistent across all of the solver's seeds);
	// the StringKeys reference mode uses the canonical textual key.
	seen       map[string]struct{}
	keyer      *binding.Keyer
	stringKeys bool
}

func newSeedSolver(st graph.Stepper, pp *plan.PathPlan, cfg Config, bud *budget) *seedSolver {
	ss := &seedSolver{pp: pp, seen: map[string]struct{}{}, keyer: binding.NewKeyer(), stringKeys: cfg.StringKeys}
	ss.run = seedRunner(st, pp, cfg, bud, func(b *binding.PathBinding) error {
		ss.buf = append(ss.buf, b)
		return nil
	})
	return ss
}

// solve returns the pattern's selected solutions anchored at one seed
// node index. Per-seed reduction, deduplication and selection agree
// exactly with the full pipeline restricted to this seed (see the package
// comment above). Selector-free patterns skip the per-seed sort: their
// solution multiset is order-independent downstream (Eval's canonical row
// sort is total because deduplicated keys are unique, and joins probe by
// key), so the engines' deterministic emission order stands.
func (ss *seedSolver) solve(seed int) ([]*binding.Reduced, error) {
	ss.buf = ss.buf[:0]
	if err := ss.run(seed); err != nil {
		return nil, err
	}
	if len(ss.buf) == 0 {
		return nil, nil
	}
	clear(ss.seen)
	out := make([]*binding.Reduced, 0, len(ss.buf))
	for _, b := range ss.buf {
		r := b.Reduce()
		if ss.stringKeys {
			if _, dup := ss.seen[r.CanonKey()]; dup {
				continue
			}
			ss.seen[r.CanonKey()] = struct{}{}
		} else {
			key := ss.keyer.Key(r)
			if _, dup := ss.seen[string(key)]; dup {
				continue
			}
			ss.seen[string(key)] = struct{}{}
		}
		out = append(out, r)
	}
	if ss.pp.Pattern.Selector.Kind == ast.NoSelector {
		return out, nil
	}
	sols := ApplySelector(ss.pp.Pattern.Selector, out)
	binding.SortStable(sols)
	return sols, nil
}

// sortRowsCanonical restores the classic pipeline's row order: rows
// compare lexicographically by their per-pattern reduced bindings in
// textual pattern order, each binding by (path length, canonical key) —
// the order MatchPattern emits solutions in. After a complete join every
// row has all bindings set; nil entries (rows of an aborted join) keep
// their relative order.
func sortRowsCanonical(rows []*Row, npaths int) {
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < npaths; k++ {
			ra, rb := a.Bindings[k], b.Bindings[k]
			if ra == nil || rb == nil || ra == rb {
				continue
			}
			if ra.Path.Len() != rb.Path.Len() {
				return ra.Path.Len() < rb.Path.Len()
			}
			if ka, kb := ra.CanonKey(), rb.CanonKey(); ka != kb {
				return ka < kb
			}
		}
		return false
	})
}

// storeStatsFor gathers per-pattern store statistics for the join-order
// search, computing them once when every pattern targets the same store
// (the EvalPlan case).
func storeStatsFor(stores []graph.Store) []graph.StoreStats {
	out := make([]graph.StoreStats, len(stores))
	for i := range stores {
		if i > 0 && stores[i] == stores[i-1] {
			out[i] = out[i-1]
			continue
		}
		out[i] = stores[i].LabelStats()
	}
	return out
}

// ExplainJoin renders the cost-ordered join plan, one line per step, for
// multi-pattern statements (empty otherwise), annotating each step with
// its streaming behaviour: seeded bind joins and the leading scan stream
// rows through, hash-join fallbacks materialize the pattern they join
// against. Statistics come from the given store; with a nil store the
// ranking is structure-only.
func ExplainJoin(s graph.Store, p *plan.Plan, cfg Config) []string {
	if len(p.Paths) < 2 {
		return nil
	}
	if cfg.DisableBindJoin {
		return []string{"join: bind-join disabled; hash join in pattern order [blocking: materializes every pattern]"}
	}
	stats := make([]graph.StoreStats, len(p.Paths))
	out := make([]string, 0, len(p.Paths)+1)
	if s != nil {
		st := s.LabelStats()
		for i := range stats {
			stats[i] = st
		}
		out = append(out, fmt.Sprintf("join stats: nodes=%d edges=%d avg-degree=%.3g",
			st.Nodes, st.Edges, st.AvgDegree()))
	}
	if core := plan.DetectCyclicCore(p, stats); core != nil {
		choice := "intersect"
		note := "[worst-case-optimal; needs sorted adjacency (CSR), falls back otherwise]"
		rem := plan.OrderJoinRemainder(p, stats, core)
		switch {
		case cfg.DisableVectorize:
			choice, note = "bind-join", "[vectorized pipeline disabled by config]"
		case cfg.DisableIntersect:
			choice, note = "bind-join", "[intersect disabled by config]"
		case cfg.Limit > 0:
			choice, note = "bind-join", "[intersect skipped: LIMIT preserves bind-join row order]"
		case !core.UseIntersect():
			choice, note = "bind-join", "[cost model prefers bind-join]"
		case !allSeeded(remSeedable(p, core), rem, p):
			choice, note = "bind-join", "[intersect skipped: unseeded remainder pattern]"
		}
		out = append(out, fmt.Sprintf("join core: %s %s %s", choice, core, note))
		if choice == "intersect" {
			for k, step := range rem {
				out = append(out, fmt.Sprintf("join step %d: %s [streaming]", k, step))
			}
			return out
		}
	}
	for k, step := range plan.OrderJoin(p, stats) {
		note := "[streaming]"
		if k > 0 && step.SeedVar == "" {
			note = "[blocking: materializes pattern on first input row]"
		}
		out = append(out, fmt.Sprintf("join step %d: %s %s", k, step, note))
	}
	return out
}
