package eval

import (
	"fmt"
	"sort"

	"gpml/internal/binding"
	"gpml/internal/graph"
	"gpml/internal/plan"
)

// Bind-join evaluation of multi-pattern statements (§6.5 "Multiple
// patterns"). Instead of enumerating every path pattern in full and hash
// joining afterwards, the patterns are solved in the cost order picked by
// plan.OrderJoin, and each already-joined row's shared endpoint bindings
// become the seed set of the next pattern's engine run: a pattern whose
// head variable is already bound only ever explores matches starting at
// the handful of nodes the join has produced so far.
//
// The rewrite is exact, not approximate, for two structural reasons:
//
//   - a pattern's solution set decomposes by seed: every solution's path
//     starts at its seed node, so reduction keys never collide across
//     seeds (the path is part of the key) and ApplySelector partitions by
//     path endpoints, which never span seeds. Running the per-pattern
//     pipeline seed-by-seed therefore yields exactly the full solution
//     set restricted to those seeds — and solutions at unseeded nodes
//     cannot survive the equi-join anyway, because the seed variable is
//     part of the hash key.
//
//   - the classic pipeline's row order is the nested-loop order over the
//     patterns in textual order, with each pattern's solutions sorted by
//     (path length, canonical key) — i.e. rows come out lexicographically
//     ordered by the per-pattern sort keys. sortRowsCanonical restores
//     exactly that order, so the final Result is byte-identical.

// evalBindJoin runs the cost-ordered bind-join pipeline.
func evalBindJoin(stores []graph.Store, varGraph map[string]graph.Store, p *plan.Plan, cfg Config) (*Result, error) {
	steps := plan.OrderJoin(p, storeStatsFor(stores))
	rows := []*Row{{vars: map[string]Bound{}}}
	bound := map[string]bool{}
	for _, step := range steps {
		pp := p.Paths[step.Pattern]
		solutions, err := stepSolutions(stores[step.Pattern], pp, cfg, step.SeedVar, rows)
		if err != nil {
			return nil, err
		}
		rows = joinPattern(p, pp, rows, solutions, sharedVars(p, pp, bound))
		markBound(bound, pp)
		if len(rows) == 0 {
			break
		}
	}
	sortRowsCanonical(rows, len(p.Paths))
	return finishJoin(stores[0], varGraph, p, rows, cfg)
}

// stepSolutions produces one join step's pattern solutions: seeded from
// the accumulated rows' bindings of the step's seed variable when the
// planner chose one, by full enumeration otherwise (first step,
// disconnected patterns, patterns without a bound head variable).
func stepSolutions(s graph.Store, pp *plan.PathPlan, cfg Config, seedVar string, rows []*Row) ([]*binding.Reduced, error) {
	if seedVar != "" {
		solutions, ok, err := seededSolutions(s, pp, cfg, seedVar, rows)
		if err != nil {
			return nil, err
		}
		if ok {
			return solutions, nil
		}
	}
	return MatchPattern(s, pp, cfg)
}

// seededSolutions runs the pattern's engine once per distinct seed node
// bound to seedVar across the rows — seeds are deduplicated up front, so
// rows sharing an endpoint never re-enumerate its solutions; with
// Parallelism > 1 the seed runs are distributed over the same worker
// pool full enumeration uses. ok is false (triggering the full
// enumeration fallback) if any row fails to bind the seed variable to a
// node — statically impossible for a shared unconditional singleton node
// variable, but checked rather than assumed.
func seededSolutions(s graph.Store, pp *plan.PathPlan, cfg Config, seedVar string, rows []*Row) ([]*binding.Reduced, bool, error) {
	var seeds []graph.NodeID
	seen := map[graph.NodeID]bool{}
	for _, row := range rows {
		b, bok := row.vars[seedVar]
		if !bok || b.Kind != BoundNode {
			return nil, false, nil
		}
		if !seen[b.Node] {
			seen[b.Node] = true
			seeds = append(seeds, b.Node)
		}
	}
	if cfg.Parallelism > 1 && len(seeds) > 1 {
		// The single-pattern pipeline over the union of the seeded runs
		// equals the concatenation of per-seed pipelines: dedup keys and
		// selector partitions never span seeds (see the package comment).
		bud := newBudget(cfg.Limits.withDefaults())
		raw, err := enumerateParallel(s, pp, cfg, bud, seeds)
		if err != nil {
			return nil, false, err
		}
		reduced := make([]*binding.Reduced, len(raw))
		for i, b := range raw {
			reduced[i] = b.Reduce()
		}
		sols := ApplySelector(pp.Pattern.Selector, binding.Dedup(reduced))
		binding.SortStable(sols)
		return sols, true, nil
	}
	solver := newSeedSolver(s, pp, cfg)
	var out []*binding.Reduced
	for _, seed := range seeds {
		sols, err := solver.solve(seed)
		if err != nil {
			return nil, false, err
		}
		out = append(out, sols...)
	}
	return out, true, nil
}

// seedSolver runs the full single-pattern pipeline (§6 stage order:
// enumerate, reduce, deduplicate, select) one seed node at a time; the
// engine machinery (and for the automaton engine, the compiled product
// searcher) is built once and reused across seeds. Search limits are
// shared across all seed runs through one budget, mirroring Enumerate.
// Callers pass each distinct seed once; seededSolutions deduplicates.
type seedSolver struct {
	pp  *plan.PathPlan
	run func(graph.NodeID) error
	buf []*binding.PathBinding
}

func newSeedSolver(s graph.Store, pp *plan.PathPlan, cfg Config) *seedSolver {
	ss := &seedSolver{pp: pp}
	bud := newBudget(cfg.Limits.withDefaults())
	ss.run = seedRunner(s, nil, pp, cfg, bud, func(b *binding.PathBinding) error {
		ss.buf = append(ss.buf, b)
		return nil
	})
	return ss
}

// solve returns the pattern's selected solutions anchored at one seed.
// Per-seed reduction, deduplication and selection agree exactly with the
// full pipeline restricted to this seed (see the package comment above).
func (ss *seedSolver) solve(seed graph.NodeID) ([]*binding.Reduced, error) {
	ss.buf = ss.buf[:0]
	if err := ss.run(seed); err != nil {
		return nil, err
	}
	reduced := make([]*binding.Reduced, len(ss.buf))
	for i, b := range ss.buf {
		reduced[i] = b.Reduce()
	}
	sols := ApplySelector(ss.pp.Pattern.Selector, binding.Dedup(reduced))
	binding.SortStable(sols)
	return sols, nil
}

// sortRowsCanonical restores the classic pipeline's row order: rows
// compare lexicographically by their per-pattern reduced bindings in
// textual pattern order, each binding by (path length, canonical key) —
// the order MatchPattern emits solutions in. After a complete join every
// row has all bindings set; nil entries (rows of an aborted join) keep
// their relative order.
func sortRowsCanonical(rows []*Row, npaths int) {
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < npaths; k++ {
			ra, rb := a.Bindings[k], b.Bindings[k]
			if ra == nil || rb == nil || ra == rb {
				continue
			}
			if ra.Path.Len() != rb.Path.Len() {
				return ra.Path.Len() < rb.Path.Len()
			}
			if ka, kb := ra.Key(), rb.Key(); ka != kb {
				return ka < kb
			}
		}
		return false
	})
}

// storeStatsFor gathers per-pattern store statistics for the join-order
// search, computing them once when every pattern targets the same store
// (the EvalPlan case).
func storeStatsFor(stores []graph.Store) []graph.StoreStats {
	out := make([]graph.StoreStats, len(stores))
	for i := range stores {
		if i > 0 && stores[i] == stores[i-1] {
			out[i] = out[i-1]
			continue
		}
		out[i] = stores[i].LabelStats()
	}
	return out
}

// ExplainJoin renders the cost-ordered join plan, one line per step, for
// multi-pattern statements (empty otherwise). Statistics come from the
// given store; with a nil store the ranking is structure-only.
func ExplainJoin(s graph.Store, p *plan.Plan, cfg Config) []string {
	if len(p.Paths) < 2 {
		return nil
	}
	if cfg.DisableBindJoin {
		return []string{"join: bind-join disabled; hash join in pattern order"}
	}
	stats := make([]graph.StoreStats, len(p.Paths))
	out := make([]string, 0, len(p.Paths)+1)
	if s != nil {
		st := s.LabelStats()
		for i := range stats {
			stats[i] = st
		}
		out = append(out, fmt.Sprintf("join stats: nodes=%d edges=%d avg-degree=%.3g",
			st.Nodes, st.Edges, st.AvgDegree()))
	}
	for k, step := range plan.OrderJoin(p, stats) {
		out = append(out, fmt.Sprintf("join step %d: %s", k, step))
	}
	return out
}
