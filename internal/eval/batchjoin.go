package eval

import (
	"context"

	"gpml/internal/binding"
	"gpml/internal/graph"
	"gpml/internal/plan"
)

// Batch pipeline assembly. newBatchPipeline is the single entry point the
// streaming layer probes: it returns a row cursor backed by batch
// operators when the statement fits the vectorized fragment, or
// (nil, false) to fall back to the row pipeline. The fragment:
//
//   - every path pattern is a flat chain (plan.FlatChain) — fixed-width
//     tuples are what the columns carry;
//   - compact index keys are sound (single shared store, no StringKeys) —
//     columns hold dense indices with no per-row materialization;
//   - multi-pattern statements join exclusively through seeded bind-join
//     steps (hash-join fallbacks and the DisableBindJoin reference
//     pipeline stay row-at-a-time).
//
// On top of the bind-join dispatch, a detected cyclic core whose cost
// model favors intersection runs on the worst-case-optimal leapfrog
// operator (intersect.go) when the store provides sorted adjacency and no
// LIMIT demands bind-join row order; the acyclic remainder still probes
// via batch bind-joins.

// newBatchPipeline builds the vectorized pipeline, or reports false when
// the statement needs the row pipeline.
func newBatchPipeline(ctx context.Context, stores []graph.Store, p *plan.Plan, cfg Config, byIdx bool) (Cursor, bool) {
	if cfg.DisableVectorize || !byIdx {
		return nil, false
	}
	for _, pp := range p.Paths {
		if pp.Chain == nil {
			return nil, false
		}
	}
	if len(p.Paths) > 1 && cfg.DisableBindJoin {
		return nil, false
	}
	st := graph.AsStepper(stores[0])

	if len(p.Paths) == 1 {
		pp := p.Paths[0]
		lay := newBatchLayout(p, st, cfg.Params, []*plan.PathPlan{pp})
		return finishBatchPipeline(newBatchSource(ctx, st, pp, cfg, lay.width), lay, p, cfg), true
	}

	stats := storeStatsFor(stores)
	steps := plan.OrderJoin(p, stats)
	core := dispatchCore(p, stats, stores[0], cfg)
	if core != nil {
		rem := plan.OrderJoinRemainder(p, stats, core)
		if !allSeeded(remSeedable(p, core), rem, p) {
			core = nil
		} else {
			steps = rem
		}
	}
	if core == nil {
		bound := map[string]bool{}
		for k, stp := range steps {
			if k > 0 && (stp.SeedVar == "" || !bound[stp.SeedVar]) {
				return nil, false
			}
			markBound(bound, p.Paths[stp.Pattern])
		}
	}

	// Column layout: core patterns (ascending) first, then the probe
	// steps in join order — the order groups merge into rows.
	var pats []*plan.PathPlan
	if core != nil {
		for _, i := range core.Patterns {
			pats = append(pats, p.Paths[i])
		}
	}
	probeAt := len(pats)
	for _, stp := range steps {
		pats = append(pats, p.Paths[stp.Pattern])
	}
	lay := newBatchLayout(p, st, cfg.Params, pats)

	var cur BatchCursor
	bound := map[string]bool{}
	if core != nil {
		ss, _ := graph.AsSorted(stores[0])
		cur = newIntersectSource(ctx, ss, p, core, cfg)
		for _, i := range core.Patterns {
			markBound(bound, p.Paths[i])
		}
	} else {
		// steps[0] is the leading scan; its group is the first probe slot.
		lead := steps[0]
		cur = newBatchSource(ctx, st, p.Paths[lead.Pattern], cfg, lay.width)
		markBound(bound, p.Paths[lead.Pattern])
		probeAt++
		steps = steps[1:]
	}
	for k, stp := range steps {
		g := &lay.groups[probeAt+k]
		cur = newBatchBindStep(ctx, st, lay, g, cfg, sharedVars(p, g.pp, bound), stp.SeedVar, cur)
		markBound(bound, g.pp)
	}
	return finishBatchPipeline(cur, lay, p, cfg), true
}

// dispatchCore gates the intersection operator: a detected cyclic core,
// cost model in favor, intersection not disabled, no LIMIT (the
// intersection emits rows in elimination order, not bind-join order, so
// LIMIT prefixes would differ), and sorted adjacency available.
func dispatchCore(p *plan.Plan, stats []graph.StoreStats, s graph.Store, cfg Config) *plan.CorePlan {
	if cfg.DisableIntersect || cfg.Limit > 0 {
		return nil
	}
	if _, ok := graph.AsSorted(s); !ok {
		return nil
	}
	core := plan.DetectCyclicCore(p, stats)
	if core == nil || !core.UseIntersect() {
		return nil
	}
	return core
}

// remSeedable is the variable set the core binds, the starting point for
// checking that every remainder step has a bound seed variable.
func remSeedable(p *plan.Plan, core *plan.CorePlan) map[string]bool {
	bound := map[string]bool{}
	for _, i := range core.Patterns {
		markBound(bound, p.Paths[i])
	}
	return bound
}

// allSeeded reports whether every remainder step probes through a bound
// seed variable (batch probes have no hash-join fallback).
func allSeeded(bound map[string]bool, steps []plan.JoinStep, p *plan.Plan) bool {
	for _, stp := range steps {
		if stp.SeedVar == "" || !bound[stp.SeedVar] {
			return false
		}
		markBound(bound, p.Paths[stp.Pattern])
	}
	return true
}

// newBatchSource picks the sequential or parallel chain enumerator.
func newBatchSource(ctx context.Context, st graph.Stepper, pp *plan.PathPlan, cfg Config, width int) BatchCursor {
	seeds := seedNodes(st, pp)
	if cfg.Parallelism > 1 && len(seeds) > 1 {
		return newParallelBatchSource(ctx, st, pp, cfg, width, seeds)
	}
	return newBatchChainSource(ctx, st, pp, cfg, width, seeds)
}

// finishBatchPipeline stacks the row-local stages (edge isomorphism,
// postfilter, limit) and the boundary adapter, mirroring StreamPlanOn's
// post-join stage order.
func finishBatchPipeline(cur BatchCursor, lay *batchLayout, p *plan.Plan, cfg Config) Cursor {
	if cfg.EdgeIsomorphic {
		cur = &batchFilter{src: cur, keep: func(b *Batch, r int32) (bool, error) {
			return lay.edgeIso(b, r), nil
		}}
	}
	if p.Post != nil {
		cur = &batchFilter{src: cur, keep: func(b *Batch, r int32) (bool, error) {
			t, err := EvalPred(p.Post, colResolver{lay, b, r})
			if err != nil {
				return false, err
			}
			return t.IsTrue(), nil
		}}
	}
	if cfg.Limit > 0 {
		cur = &batchLimit{src: cur, remaining: cfg.Limit}
	}
	return &batchRowCursor{lay: lay, src: cur}
}

// ---------------------------------------------------------------------------
// Batch bind-join probe.

// probeEq is one shared-variable equality between a left column and a
// probe-pattern chain position. never marks a static kind clash (node
// variable joined against edge variable): the equality can never hold, so
// the step emits nothing — while still draining and solving exactly what
// the row pipeline's key probe would.
type probeEq struct {
	leftCol int
	pos     int
	never   bool
}

// seedSols is one seed's solved solutions in columnar form.
type seedSols struct {
	cols [][]graph.ElemIdx
}

func (s *seedSols) n() int {
	if len(s.cols) == 0 {
		return 0
	}
	return len(s.cols[0])
}

// batchBindStep joins one flat-chain pattern into the batch stream by
// seeding its chain enumerator from each input row's seed column. Seeds
// are solved lazily and memoized (columnar), probe equalities are applied
// inline per candidate, and output rows append the left row's columns
// plus the solution columns. With Parallelism > 1 each fresh input batch
// pre-solves its unseen seeds on a worker pool, like the row pipeline's
// chunked prefetch.
type batchBindStep struct {
	ctx context.Context
	st  graph.Stepper
	pp  *plan.PathPlan
	cfg Config

	left      BatchCursor
	leftWidth int
	npos      int
	seedCol   int
	// seedIsNode: the left seed column binds a node. A row pipeline input
	// whose seed binding is not a node joins nothing without solving; the
	// static column kind decides that here.
	seedIsNode bool
	eq         []probeEq

	bud  *budget
	enum *chainEnum
	// solBuf is the enum's emit target during a sequential solve.
	solBuf *seedSols
	memo   map[int]*seedSols

	out   *Batch
	first bool
	limit int

	// In-flight state: current left batch, row, and solution cursor.
	lb    *Batch
	lbAt  int
	lbRow int32
	sols  *seedSols
	solAt int
}

// emptySols is the shared no-solutions value for rows that statically
// join nothing (seed column of edge kind).
var emptySols = &seedSols{}

func newBatchBindStep(ctx context.Context, st graph.Stepper, lay *batchLayout, g *patternGroup, cfg Config, shared []string, seedVar string, left BatchCursor) *batchBindStep {
	c := &batchBindStep{
		ctx:       ctx,
		st:        st,
		pp:        g.pp,
		cfg:       cfg,
		left:      left,
		leftWidth: g.off,
		npos:      g.npos,
		seedCol:   lay.varCol[seedVar],
		memo:      map[int]*seedSols{},
		out:       newBatch(g.off + g.npos),
		first:     true,
		limit:     cfg.Limit,
	}
	c.seedIsNode = lay.kinds[c.seedCol] == binding.NodeElem
	for _, v := range shared {
		if v == seedVar {
			continue // trivially equal: every solution is anchored at the seed
		}
		leftCol := lay.varCol[v]
		pos := 0
		for ; pos < g.npos; pos++ {
			if chainVar(g.pp.Chain, pos) == v {
				break
			}
		}
		c.eq = append(c.eq, probeEq{
			leftCol: leftCol,
			pos:     pos,
			never:   lay.kinds[leftCol] != lay.kinds[g.off+pos],
		})
	}
	return c
}

func (c *batchBindStep) budget() *budget {
	if c.bud == nil {
		c.bud = newBudget(c.cfg.Limits.withDefaults())
		c.bud.check = cancelCheck(c.ctx, nil)
	}
	return c.bud
}

// solsFor solves (or recalls) one seed's columnar solutions.
func (c *batchBindStep) solsFor(seed int) (*seedSols, error) {
	if s, ok := c.memo[seed]; ok {
		return s, nil
	}
	if c.enum == nil {
		c.enum = newChainEnum(c.st, c.pp.Chain, c.cfg.Limits.withDefaults(), c.budget(), func(tuple []graph.ElemIdx) error {
			for j, v := range tuple {
				c.solBuf.cols[j] = append(c.solBuf.cols[j], v)
			}
			return nil
		})
	}
	s := &seedSols{cols: make([][]graph.ElemIdx, c.npos)}
	c.solBuf = s
	err := c.enum.runSeed(seed)
	c.solBuf = nil
	if err != nil {
		return nil, err
	}
	c.memo[seed] = s
	return s, nil
}

// preSolve solves a fresh input batch's unseen seeds on a worker pool
// (shared step budget, errors surfaced in seed order).
func (c *batchBindStep) preSolve(b *Batch) error {
	if !c.seedIsNode {
		return nil
	}
	var seeds []int
	seen := map[int]bool{}
	for _, r := range b.sel {
		si := int(b.cols[c.seedCol][r])
		if _, cached := c.memo[si]; !cached && !seen[si] {
			seen[si] = true
			seeds = append(seeds, si)
		}
	}
	if len(seeds) < 2 {
		return nil
	}
	workers := c.cfg.Parallelism
	if workers > len(seeds) {
		workers = len(seeds)
	}
	out := make([]*seedSols, len(seeds))
	bud := c.budget()
	errs := runSeedPool(workers, len(seeds), nil, func() func(int) error {
		var cur *seedSols
		enum := newChainEnum(c.st, c.pp.Chain, c.cfg.Limits.withDefaults(), bud, func(tuple []graph.ElemIdx) error {
			for j, v := range tuple {
				cur.cols[j] = append(cur.cols[j], v)
			}
			return nil
		})
		return func(i int) error {
			cur = &seedSols{cols: make([][]graph.ElemIdx, c.npos)}
			if err := enum.runSeed(seeds[i]); err != nil {
				return err
			}
			out[i] = cur
			return nil
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for i, si := range seeds {
		c.memo[si] = out[i]
	}
	return nil
}

// matches applies the probe equalities to one (left row, solution) pair.
func (c *batchBindStep) matches(r int32, s int) bool {
	for _, q := range c.eq {
		if q.never || c.lb.cols[q.leftCol][r] != c.sols.cols[q.pos][s] {
			return false
		}
	}
	return true
}

// appendRow emits one joined row: left columns then solution columns.
func (c *batchBindStep) appendRow(r int32, s int) {
	for j := 0; j < c.leftWidth; j++ {
		c.out.cols[j] = append(c.out.cols[j], c.lb.cols[j][r])
	}
	for j := 0; j < c.npos; j++ {
		c.out.cols[c.leftWidth+j] = append(c.out.cols[c.leftWidth+j], c.sols.cols[j][s])
	}
	c.out.sel = append(c.out.sel, int32(len(c.out.sel)))
}

func (c *batchBindStep) target() int {
	if c.first {
		return 1
	}
	if c.limit > 0 && c.limit < batchSize {
		return c.limit
	}
	return batchSize
}

func (c *batchBindStep) NextBatch() (*Batch, error) {
	c.out.clear()
	target := c.target()
	for {
		// Drain the in-flight solution list first.
		if c.sols != nil {
			for n := c.sols.n(); c.solAt < n; {
				if !c.matches(c.lbRow, c.solAt) {
					c.solAt++
					continue
				}
				if c.out.rows() >= target {
					c.first = false
					return c.out, nil
				}
				c.appendRow(c.lbRow, c.solAt)
				c.solAt++
			}
			c.sols = nil
			c.lbAt++
		}
		// Advance to the next live left row.
		if c.lb != nil && c.lbAt < len(c.lb.sel) {
			r := c.lb.sel[c.lbAt]
			c.lbRow = r
			if !c.seedIsNode {
				c.sols, c.solAt = emptySols, 0
				continue
			}
			sols, err := c.solsFor(int(c.lb.cols[c.seedCol][r]))
			if err != nil {
				return nil, err
			}
			c.sols, c.solAt = sols, 0
			continue
		}
		c.lb = nil
		if c.out.rows() >= target {
			c.first = false
			return c.out, nil
		}
		nb, err := c.left.NextBatch()
		if err != nil {
			return nil, err
		}
		if nb == nil {
			c.first = false
			if c.out.rows() > 0 {
				return c.out, nil
			}
			return nil, nil
		}
		c.lb, c.lbAt = nb, 0
		if c.cfg.Parallelism > 1 {
			if err := c.preSolve(nb); err != nil {
				return nil, err
			}
		}
	}
}

func (c *batchBindStep) Close() error { return c.left.Close() }
