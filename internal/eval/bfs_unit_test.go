package eval

import (
	"testing"

	"gpml/internal/ast"
	"gpml/internal/graph"
)

// Unit tests for the BFS admission policies (the per-state budgets that
// make selector-bounded search finite while preserving exactly the matches
// each Fig 8 selector can return).
func TestAdmitPolicyAnyShortest(t *testing.T) {
	p := admitPolicy{kind: ast.AnyShortest}
	vi := &visitInfo{}
	if !p.admit(vi, 3) {
		t.Fatal("first arrival must be admitted")
	}
	for _, d := range []int{3, 4, 10} {
		if p.admit(vi, d) {
			t.Errorf("ANY SHORTEST admits exactly one arrival (depth %d leaked)", d)
		}
	}
}

func TestAdmitPolicyAllShortest(t *testing.T) {
	p := admitPolicy{kind: ast.AllShortest}
	vi := &visitInfo{}
	if !p.admit(vi, 2) || !p.admit(vi, 2) || !p.admit(vi, 2) {
		t.Fatal("ALL SHORTEST admits every arrival at the minimal depth")
	}
	if p.admit(vi, 3) {
		t.Errorf("deeper arrivals must be pruned")
	}
}

func TestAdmitPolicyKDepths(t *testing.T) {
	p := admitPolicy{kind: ast.ShortestK, k: 2}
	vi := &visitInfo{}
	if !p.admit(vi, 1) || !p.admit(vi, 1) {
		t.Fatal("arrivals within the first depth admitted")
	}
	if !p.admit(vi, 4) {
		t.Fatal("second distinct depth admitted")
	}
	if !p.admit(vi, 4) {
		t.Fatal("repeat of an admitted depth stays admitted")
	}
	if p.admit(vi, 9) {
		t.Errorf("third distinct depth must be pruned for k=2")
	}
}

// The BFS visited key includes the singleton environment: threads that
// differ in an earlier binding are never collapsed at a shared later
// state. Regression guard for the state-interchangeability argument.
func TestBFSKeySeparatesEnvironments(t *testing.T) {
	// Two branches from s bind m differently, then merge at a shared node
	// before a long unbounded tail. A postfilter distinguishes the m
	// bindings, so collapsing them at the merge would lose a result.
	g, err := graph.NewBuilder().
		Node("s", nil, "owner", "start").
		Node("m1", nil).Node("m2", nil).
		Node("shared", nil).
		Node("z1", nil).Node("z2", nil).
		Node("z", nil, "owner", "end").
		Edge("e1", "s", "m1", nil).
		Edge("e2", "s", "m2", nil).
		Edge("f1", "m1", "shared", nil).
		Edge("f2", "m2", "shared", nil).
		Edge("g1", "shared", "z1", nil).
		Edge("g2", "z1", "z2", nil).
		Edge("g3", "z2", "z", nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res := evalQuery(t, g, `
		MATCH ALL SHORTEST (st WHERE st.owner='start')-[a]->(m)-[b]->(sh)
		      -[c]->+(zz WHERE zz.owner='end')`)
	seen := map[string]bool{}
	for _, row := range res.Rows {
		m, _ := row.Get("m")
		seen[string(m.Node)] = true
	}
	if !seen["m1"] || !seen["m2"] {
		t.Errorf("both middle bindings must survive pruning, got %v", seen)
	}
}
