// Package eval executes compiled GPML path patterns against property
// graphs, implementing the paper's execution model (§6): lazy expansion of
// rigid patterns by depth-first search with restrictor pruning, a
// level-synchronous product search for selector-bounded unbounded
// quantifiers, reduction and deduplication of path bindings, selector
// application, cross-pattern joins and postfiltering.
package eval

import (
	"fmt"

	"gpml/internal/ast"
	"gpml/internal/binding"
	"gpml/internal/graph"
	"gpml/internal/plan"
	"gpml/internal/value"
)

// Resolver supplies variable bindings to the expression evaluator. Unbound
// singletons resolve to NULL (conditional singletons that did not bind,
// §4.6); group lookups return the elements accumulated so far. Element and
// property lookups go through the abstract graph.Store, so expressions
// evaluate identically over any backend.
type Resolver interface {
	Graph() graph.Store
	// Elem resolves a singleton (or iteration-local) element binding.
	Elem(name string) (binding.Ref, bool)
	// Group resolves the accumulated group list for a variable.
	Group(name string) ([]binding.Ref, bool)
}

// Params are a query's bound parameter values ($name placeholders), late-
// bound at execution time so one compiled plan serves many argument sets.
// A nil map is a valid empty binding.
type Params map[string]value.Value

// paramScope is optionally implemented by resolvers evaluating under a
// bound parameter set. Resolvers without it (or without the name) make a
// $name leaf an unbound-parameter error — execution entry points validate
// bindings up front (plan.CheckBind), so hitting it indicates a caller
// that skipped validation.
type paramScope interface {
	ParamValue(name string) (value.Value, bool)
}

// graphRouter is optionally implemented by resolvers that evaluate over
// multiple graphs (the §7.1 multi-graph MATCH opportunity): it returns the
// store that declared a variable.
type graphRouter interface {
	GraphFor(name string) graph.Store
}

// graphOf picks the store for a variable's element lookups.
func graphOf(r Resolver, name string) graph.Store {
	if gr, ok := r.(graphRouter); ok {
		if g := gr.GraphFor(name); g != nil {
			return g
		}
	}
	return r.Graph()
}

// elemIDResolver is optionally implemented by resolvers that can
// materialize a bound element's id directly (the row resolver: its
// Bounds carry the id strings). Identity comparisons prefer it — the id
// is exact even when the variable's routed store does not contain the
// element, which an index round-trip cannot represent.
type elemIDResolver interface {
	ElemID(name string) (string, bool)
}

// elemIDOf materializes the id behind a resolved element reference.
func elemIDOf(r Resolver, name string, ref binding.Ref) string {
	if ir, ok := r.(elemIDResolver); ok {
		if id, ok2 := ir.ElemID(name); ok2 {
			return id
		}
	}
	return refID(graphOf(r, name), ref)
}

// EvalPred evaluates an expression as a predicate under Kleene 3VL. A
// filter passes only when the result is TRUE.
func EvalPred(e ast.Expr, r Resolver) (value.Tri, error) {
	switch x := e.(type) {
	case *ast.Binary:
		switch x.Op {
		case ast.OpAnd:
			l, err := EvalPred(x.L, r)
			if err != nil {
				return value.Unknown, err
			}
			if l == value.False {
				return value.False, nil
			}
			rr, err := EvalPred(x.R, r)
			if err != nil {
				return value.Unknown, err
			}
			return l.And(rr), nil
		case ast.OpOr:
			l, err := EvalPred(x.L, r)
			if err != nil {
				return value.Unknown, err
			}
			if l == value.True {
				return value.True, nil
			}
			rr, err := EvalPred(x.R, r)
			if err != nil {
				return value.Unknown, err
			}
			return l.Or(rr), nil
		case ast.OpXor:
			l, err := EvalPred(x.L, r)
			if err != nil {
				return value.Unknown, err
			}
			rr, err := EvalPred(x.R, r)
			if err != nil {
				return value.Unknown, err
			}
			return l.Xor(rr), nil
		case ast.OpEq, ast.OpNe:
			// Element-reference equality (GQL mode; validated statically).
			// Identity is by element id (multi-graph evaluation compares
			// elements across stores by id, §7.1), so the refs' stores
			// must agree before indices can be compared directly.
			if lv, lok := x.L.(*ast.VarRef); lok {
				if rv, rok := x.R.(*ast.VarRef); rok {
					le, lb := r.Elem(lv.Name)
					re, rb := r.Elem(rv.Name)
					if !lb || !rb {
						return value.Unknown, nil
					}
					same := le.Kind == re.Kind &&
						elemIDOf(r, lv.Name, le) == elemIDOf(r, rv.Name, re)
					if x.Op == ast.OpNe {
						return value.TriOf(!same), nil
					}
					return value.TriOf(same), nil
				}
			}
			return evalCompare(x, r)
		case ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
			return evalCompare(x, r)
		default:
			return truthiness(EvalValue(e, r))
		}
	case *ast.Unary:
		if x.Op == "NOT" {
			t, err := EvalPred(x.X, r)
			if err != nil {
				return value.Unknown, err
			}
			return t.Not(), nil
		}
		return truthiness(EvalValue(e, r))
	case *ast.IsNull:
		v, err := EvalValue(x.X, r)
		if err != nil {
			return value.Unknown, err
		}
		res := value.TriOf(v.IsNull())
		if x.Negate {
			res = res.Not()
		}
		return res, nil
	case *ast.IsDirected:
		ref, ok := r.Elem(x.Var)
		if !ok {
			return value.Unknown, nil
		}
		edge := edgeOf(graphOf(r, x.Var), ref)
		if edge == nil {
			return value.Unknown, fmt.Errorf("eval: %q is not bound to an edge", x.Var)
		}
		res := value.TriOf(edge.Direction == graph.Directed)
		if x.Negate {
			res = res.Not()
		}
		return res, nil
	case *ast.EndpointOf:
		nref, nok := r.Elem(x.NodeVar)
		eref, eok := r.Elem(x.EdgeVar)
		if !nok || !eok {
			return value.Unknown, nil
		}
		edge := edgeOf(graphOf(r, x.EdgeVar), eref)
		if edge == nil {
			return value.Unknown, fmt.Errorf("eval: %q is not bound to an edge", x.EdgeVar)
		}
		nodeID := elemIDOf(r, x.NodeVar, nref)
		var res value.Tri
		if edge.Direction != graph.Directed {
			// Undirected edges have no source/destination roles.
			res = value.False
		} else if x.Dest {
			res = value.TriOf(string(edge.Target) == nodeID)
		} else {
			res = value.TriOf(string(edge.Source) == nodeID)
		}
		if x.Negate {
			res = res.Not()
		}
		return res, nil
	case *ast.Same:
		// Identity by element id: exact on one store (ids and indices are
		// in bijection) and the defined semantics across stores.
		var firstKind binding.ElemKind
		var firstID string
		for i, v := range x.Vars {
			ref, ok := r.Elem(v)
			if !ok {
				return value.Unknown, fmt.Errorf("eval: SAME argument %q is unbound", v)
			}
			id := elemIDOf(r, v, ref)
			if i == 0 {
				firstKind, firstID = ref.Kind, id
			} else if ref.Kind != firstKind || id != firstID {
				return value.False, nil
			}
		}
		return value.True, nil
	case *ast.AllDifferent:
		seen := make(map[string]struct{}, len(x.Vars))
		for _, v := range x.Vars {
			ref, ok := r.Elem(v)
			if !ok {
				return value.Unknown, fmt.Errorf("eval: ALL_DIFFERENT argument %q is unbound", v)
			}
			key := string(kindTag(ref.Kind)) + elemIDOf(r, v, ref)
			if _, dup := seen[key]; dup {
				return value.False, nil
			}
			seen[key] = struct{}{}
		}
		return value.True, nil
	case *ast.Literal:
		return truthy(x.Val), nil
	default:
		return truthiness(EvalValue(e, r))
	}
}

func truthiness(v value.Value, err error) (value.Tri, error) {
	if err != nil {
		return value.Unknown, err
	}
	return truthy(v), nil
}

// truthy converts a value used in predicate position: booleans map to
// TRUE/FALSE, NULL and non-booleans to UNKNOWN.
func truthy(v value.Value) value.Tri {
	if b, ok := v.AsBool(); ok {
		return value.TriOf(b)
	}
	return value.Unknown
}

func evalCompare(x *ast.Binary, r Resolver) (value.Tri, error) {
	l, err := EvalValue(x.L, r)
	if err != nil {
		return value.Unknown, err
	}
	rr, err := EvalValue(x.R, r)
	if err != nil {
		return value.Unknown, err
	}
	switch x.Op {
	case ast.OpEq:
		return value.Eq(l, rr), nil
	case ast.OpNe:
		return value.Ne(l, rr), nil
	case ast.OpLt:
		return value.Lt(l, rr), nil
	case ast.OpLe:
		return value.Le(l, rr), nil
	case ast.OpGt:
		return value.Gt(l, rr), nil
	case ast.OpGe:
		return value.Ge(l, rr), nil
	default:
		return value.Unknown, fmt.Errorf("eval: %s is not a comparison", x.Op)
	}
}

// EvalValue evaluates an expression to a property value. Unbound variables
// and undefined properties yield NULL; arithmetic over non-numeric operands
// yields NULL (the row simply fails the filter) rather than aborting the
// query.
func EvalValue(e ast.Expr, r Resolver) (value.Value, error) {
	switch x := e.(type) {
	case *ast.Literal:
		return x.Val, nil
	case *ast.Param:
		if ps, ok := r.(paramScope); ok {
			if v, bound := ps.ParamValue(x.Name); bound {
				return v, nil
			}
		}
		return value.Null, &plan.BindError{
			Name: x.Name,
			Msg:  fmt.Sprintf("parameter $%s is not bound", x.Name),
			Line: x.Line,
			Col:  x.Col,
		}
	case *ast.PropAccess:
		ref, ok := r.Elem(x.Var)
		if !ok {
			return value.Null, nil
		}
		return propOf(graphOf(r, x.Var), ref, x.Prop), nil
	case *ast.VarRef:
		// An element reference in value position only reaches evaluation in
		// IS NULL checks; report boundness via NULL/non-NULL.
		if _, ok := r.Elem(x.Name); ok {
			return value.Bool(true), nil
		}
		return value.Null, nil
	case *ast.Unary:
		if x.Op == "NOT" {
			t, err := EvalPred(x, r) // the whole negation, not just the operand
			if err != nil {
				return value.Null, err
			}
			return triValue(t), nil
		}
		v, err := EvalValue(x.X, r)
		if err != nil {
			return value.Null, err
		}
		neg, err := value.Neg(v)
		if err != nil {
			return value.Null, nil // non-numeric: NULL, filter fails
		}
		return neg, nil
	case *ast.Binary:
		switch x.Op {
		case ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpDiv, ast.OpMod:
			l, err := EvalValue(x.L, r)
			if err != nil {
				return value.Null, err
			}
			rr, err := EvalValue(x.R, r)
			if err != nil {
				return value.Null, err
			}
			var out value.Value
			switch x.Op {
			case ast.OpAdd:
				out, err = value.Add(l, rr)
			case ast.OpSub:
				out, err = value.Sub(l, rr)
			case ast.OpMul:
				out, err = value.Mul(l, rr)
			case ast.OpDiv:
				out, err = value.Div(l, rr)
			default:
				out, err = value.Mod(l, rr)
			}
			if err != nil {
				return value.Null, nil // type mismatch: NULL
			}
			return out, nil
		default:
			t, err := EvalPred(x, r)
			if err != nil {
				return value.Null, err
			}
			return triValue(t), nil
		}
	case *ast.Aggregate:
		return evalAggregate(x, r)
	case *ast.IsNull, *ast.IsDirected, *ast.EndpointOf, *ast.Same, *ast.AllDifferent:
		t, err := EvalPred(e, r)
		if err != nil {
			return value.Null, err
		}
		return triValue(t), nil
	default:
		return value.Null, fmt.Errorf("eval: cannot evaluate %T as a value", e)
	}
}

func triValue(t value.Tri) value.Value {
	switch t {
	case value.True:
		return value.Bool(true)
	case value.False:
		return value.Bool(false)
	default:
		return value.Null
	}
}

// evalAggregate computes COUNT/SUM/AVG/MIN/MAX over a group variable's
// accumulated elements (§4.4).
func evalAggregate(agg *ast.Aggregate, r Resolver) (value.Value, error) {
	var name, prop string
	switch arg := agg.Arg.(type) {
	case *ast.VarRef:
		name = arg.Name
	case *ast.PropAccess:
		name, prop = arg.Var, arg.Prop
	default:
		return value.Null, fmt.Errorf("eval: bad aggregate argument %T", agg.Arg)
	}
	refs, _ := r.Group(name)
	if prop == "" || prop == "*" {
		gg := graphOf(r, name)
		if agg.Kind == value.AggListagg {
			// LISTAGG(e, sep): join the element identifiers (§3's
			// LISTAGG(e.ID, ', ') reconstructing the matched path).
			ids := make([]value.Value, 0, len(refs))
			for _, ref := range refs {
				ids = append(ids, value.Str(refID(gg, ref)))
			}
			if agg.Distinct {
				ids = distinctValues(ids)
			}
			return value.ListAgg(ids, agg.Sep), nil
		}
		// COUNT(e) / COUNT(e.*): count elements. Group refs share one
		// store, so distinctness by (kind, index) is distinctness by id.
		if agg.Distinct {
			seen := map[binding.Ref]struct{}{}
			for _, ref := range refs {
				seen[ref] = struct{}{}
			}
			return value.Int(int64(len(seen))), nil
		}
		return value.Int(int64(len(refs))), nil
	}
	vals := make([]value.Value, 0, len(refs))
	gg := graphOf(r, name)
	for _, ref := range refs {
		vals = append(vals, propOf(gg, ref, prop))
	}
	if agg.Distinct {
		if agg.Kind == value.AggCount {
			return value.CountDistinct(vals), nil
		}
		vals = distinctValues(vals)
	}
	if agg.Kind == value.AggListagg {
		return value.ListAgg(vals, agg.Sep), nil
	}
	return value.Aggregate(agg.Kind, vals)
}

func distinctValues(vals []value.Value) []value.Value {
	seen := map[string]struct{}{}
	out := vals[:0]
	for _, v := range vals {
		k := v.Key()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, v)
	}
	return out
}

// propOf reads a property from a bound element — a slice index into the
// store's dense arena, not an id map lookup.
func propOf(g graph.Store, ref binding.Ref, prop string) value.Value {
	switch ref.Kind {
	case binding.NodeElem:
		if n := g.NodeAt(ref.Idx); n != nil {
			return n.Prop(prop)
		}
	case binding.EdgeElem:
		if e := g.EdgeAt(ref.Idx); e != nil {
			return e.Prop(prop)
		}
	}
	return value.Null
}

// refID materializes a bound element's id against the variable's store.
func refID(g graph.Store, ref binding.Ref) string {
	return binding.ElemID(g, ref.Kind, ref.Idx)
}

// edgeOf resolves an edge ref, or nil when the ref is not an edge.
func edgeOf(g graph.Store, ref binding.Ref) *graph.Edge {
	if ref.Kind != binding.EdgeElem {
		return nil
	}
	return g.EdgeAt(ref.Idx)
}
