package eval

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"gpml/internal/binding"
	"gpml/internal/dataset"
	"gpml/internal/graph"
	"gpml/internal/plan"
)

// streamPattern drains the streaming single-pattern pipeline and restores
// the canonical order, i.e. exactly what MatchPattern materializes.
func streamPattern(t *testing.T, s graph.Store, pp *plan.PathPlan, cfg Config) []*binding.Reduced {
	t.Helper()
	sols, err := collectStream(newPatternSource(context.Background(), s, pp, cfg))
	if err != nil {
		t.Fatalf("pattern stream: %v", err)
	}
	binding.SortStable(sols)
	return sols
}

// TestStreamingPatternDifferential pits the pull-based pattern stream
// (per-seed dedup/selector, incremental emission) against the
// materializing MatchPattern pipeline over the engine-differential query
// battery, on both backends, sequential and parallel: the §6 pipeline
// must be invisible to streaming. This is the streaming-on/off axis of
// the differential suites.
func TestStreamingPatternDifferential(t *testing.T) {
	graphs := []*graph.Graph{
		dataset.Random(dataset.RandomConfig{Accounts: 14, AvgDegree: 2, Phones: 4, BlockedFraction: 0.2, Seed: 1, UndirectedPhones: true}),
		dataset.Random(dataset.RandomConfig{Accounts: 30, AvgDegree: 3, Cities: 5, Phones: 8, BlockedFraction: 0.15, Seed: 7, UndirectedPhones: true}),
		dataset.Grid(5, 5),
		dataset.Cycle(9),
		dataset.LaunderingRings(3, 4, 2, 99),
	}
	queries := append([]string{
		// Selector-free patterns exercise the per-solution fast path.
		`MATCH (x:Account)-[t:Transfer]->(y:Account)`,
		`MATCH TRAIL (x:Account)-[t:Transfer]->{1,3}(y:Account)`,
		`MATCH (x) [-[e:Transfer]->(m:Account)]{0,2} (y)`,
	}, diffQueries...)
	for gi, g := range graphs {
		snap := graph.Snapshot(g)
		for _, src := range queries {
			p := compile(t, src, plan.Options{})
			configs := []Config{{}, {Parallelism: 4}}
			if engine, _ := EngineFor(p.Paths[0], Config{}); engine == EngineAutomaton {
				// Only meaningful when it actually switches the engine.
				configs = append(configs, Config{DisableAutomaton: true})
			}
			for si, s := range []graph.Store{g, snap} {
				for _, cfg := range configs {
					want, err := MatchPattern(s, p.Paths[0], Config{DisableAutomaton: cfg.DisableAutomaton})
					if err != nil {
						t.Fatalf("MatchPattern: %v", err)
					}
					got := streamPattern(t, s, p.Paths[0], cfg)
					if binding.FormatTable(got) != binding.FormatTable(want) {
						t.Errorf("graph %d store %d cfg %+v %s: streaming diverges\nstream:\n%s\nmaterialized:\n%s",
							gi, si, cfg, src, binding.FormatTable(got), binding.FormatTable(want))
					}
				}
			}
		}
	}
}

// TestStreamLimitPrefix pins the LIMIT pushdown contract: Config.Limit k
// returns exactly min(k, total) rows, and the limited result is a subset
// of the full result with per-row content intact (bind-join and classic
// pipelines, both backends).
func TestStreamLimitPrefix(t *testing.T) {
	g := dataset.Random(dataset.RandomConfig{Accounts: 30, AvgDegree: 2, Cities: 4, Phones: 6, BlockedFraction: 0.2, Seed: 5, UndirectedPhones: true})
	snap := graph.Snapshot(g)
	queries := []string{
		`MATCH (x:Account)-[t:Transfer]->(y:Account)`,
		`MATCH (x:Account)-[t:Transfer]->(y:Account), (y)-[:isLocatedIn]->(c:City)`,
		`MATCH ANY SHORTEST p = (a:Account)-[:Transfer]->+(b WHERE b.isBlocked='yes')`,
	}
	for _, src := range queries {
		p := compile(t, src, plan.Options{})
		for si, s := range []graph.Store{g, snap} {
			for _, base := range []Config{{}, {DisableBindJoin: true}} {
				full, err := EvalPlan(s, p, base)
				if err != nil {
					t.Fatal(err)
				}
				inFull := map[string]bool{}
				for _, line := range renderResult(full) {
					inFull[line] = true
				}
				for _, k := range []int{0, 1, 3, len(full.Rows), len(full.Rows) + 10} {
					cfg := base
					cfg.Limit = k
					lim, err := EvalPlan(s, p, cfg)
					if err != nil {
						t.Fatal(err)
					}
					want := k
					if k == 0 || k > len(full.Rows) {
						want = len(full.Rows)
					}
					if len(lim.Rows) != want {
						t.Errorf("store %d %s limit %d: got %d rows, want %d", si, src, k, len(lim.Rows), want)
					}
					for _, line := range renderResult(lim) {
						if !inFull[line] {
							t.Errorf("store %d %s limit %d: row not in full result: %s", si, src, k, line)
						}
					}
				}
			}
		}
	}
}

// TestStreamBindJoinParallelChunking covers the bind-join step's chunked
// parallel prefetch: with Parallelism > 1 the step pulls a chunk of input
// rows and solves their unseen seeds on a worker pool; results must be
// byte-identical to sequential streaming and to the classic pipeline.
func TestStreamBindJoinParallelChunking(t *testing.T) {
	g := dataset.Random(dataset.RandomConfig{Accounts: 120, AvgDegree: 3, Cities: 8, Phones: 12, BlockedFraction: 0.2, Seed: 17, UndirectedPhones: true})
	snap := graph.Snapshot(g)
	queries := []string{
		// Planner output: pattern 0 scan, then bind-join seeded through x
		// (the shape TestExplainJoinPlan pins) — which is the chunked
		// prefetch path under parallelism.
		`MATCH (x:Account WHERE x.isBlocked='yes')-[:isLocatedIn]->(c:City), (x)-[t:Transfer]->(y:Account)`,
		`MATCH (x:Account)-[:isLocatedIn]->(c:City), (x)-[t:Transfer]->(y:Account)-[u:Transfer]->(z:Account)`,
	}
	for qi, src := range queries {
		p := compile(t, src, plan.Options{})
		if qi == 0 {
			steps := plan.OrderJoin(p, make([]graph.StoreStats, len(p.Paths)))
			seeded := false
			for _, st := range steps {
				if st.SeedVar != "" {
					seeded = true
				}
			}
			if !seeded {
				t.Fatalf("test premise broken: no seeded bind-join step in %v", steps)
			}
		}
		for si, s := range []graph.Store{g, snap} {
			want, err := EvalPlan(s, p, Config{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := EvalPlan(s, p, Config{Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			diffStrings(t, fmt.Sprintf("store %d %s [parallel vs sequential]", si, src),
				renderResult(got), renderResult(want))
			// And the parallel chunk path under a limit: a strict prefix
			// of the work, same per-row content.
			lim, err := EvalPlan(s, p, Config{Parallelism: 4, Limit: 3})
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Rows) >= 3 && len(lim.Rows) != 3 {
				t.Errorf("store %d %s: limited parallel run returned %d rows", si, src, len(lim.Rows))
			}
		}
	}
}

// TestStreamParallelManySeeds pins the chunk-planning arithmetic at a
// seed count large enough that the geometric chunk-size exponent passes
// its cap many times over (a naive uncapped shift overflows into a
// negative size around 3700×workers seeds and hangs the planner
// forever). The run must terminate and return every row.
func TestStreamParallelManySeeds(t *testing.T) {
	g := graph.New()
	const n = 9000
	for i := 0; i < n; i++ {
		if err := g.AddNode(graph.NodeID(fmt.Sprintf("a%d", i)), []string{"Account"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	p := compile(t, `MATCH (x:Account)`, plan.Options{})
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		res, err = EvalPlan(g, p, Config{Parallelism: 2})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("parallel evaluation with many seeds did not terminate")
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != n {
		t.Fatalf("got %d rows, want %d", len(res.Rows), n)
	}
}

// TestStreamCursorEarlyClose exercises abandoning a cursor mid-stream:
// Close must stop the pipeline's goroutines and return without deadlock,
// whatever mix of patterns, selectors and parallelism is in flight.
func TestStreamCursorEarlyClose(t *testing.T) {
	g := dataset.Random(dataset.RandomConfig{Accounts: 60, AvgDegree: 3, Cities: 6, Phones: 10, BlockedFraction: 0.2, Seed: 13, UndirectedPhones: true})
	queries := []string{
		`MATCH (x:Account)-[t:Transfer]->(y:Account)-[u:Transfer]->(z:Account)`,
		`MATCH (x:Account)-[t:Transfer]->(y:Account), (y)-[:isLocatedIn]->(c:City)`,
		`MATCH ALL SHORTEST p = (a:Account)-[:Transfer]->+(b:Account)`,
	}
	for _, src := range queries {
		p := compile(t, src, plan.Options{})
		for _, cfg := range []Config{{}, {Parallelism: 4}} {
			for _, take := range []int{0, 1, 5} {
				cur, err := StreamPlan(context.Background(), g, p, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < take; i++ {
					if _, err := cur.Next(); err != nil {
						t.Fatal(err)
					}
				}
				done := make(chan struct{})
				go func() {
					cur.Close()
					close(done)
				}()
				select {
				case <-done:
				case <-time.After(10 * time.Second):
					t.Fatalf("%s (parallelism %d, take %d): Close did not return", src, cfg.Parallelism, take)
				}
			}
		}
	}
}

// TestStreamContextCancelMidSearch verifies the engine-level cancellation
// hook: a context cancelled while a large search is in flight surfaces
// the context error promptly — well before the enumeration could finish.
func TestStreamContextCancelMidSearch(t *testing.T) {
	// A dense grid TRAIL enumeration runs effectively forever without
	// cancellation; the poll interval must cut it off in well under a
	// second.
	g := dataset.Grid(7, 7)
	p := compile(t, `MATCH TRAIL (x)-[e:Transfer]->+(y)`, plan.Options{})
	for _, cfg := range []Config{{}, {Parallelism: 4}} {
		ctx, cancel := context.WithCancel(context.Background())
		cur, err := StreamPlan(ctx, g, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cur.Next(); err != nil {
			t.Fatalf("first row: %v", err)
		}
		cancel()
		deadline := time.Now().Add(5 * time.Second)
		var lastErr error
		for time.Now().Before(deadline) {
			_, lastErr = cur.Next()
			if lastErr != nil {
				break
			}
		}
		if !errors.Is(lastErr, context.Canceled) {
			t.Fatalf("parallelism %d: expected context.Canceled, got %v", cfg.Parallelism, lastErr)
		}
		cur.Close()
	}
}

// TestStreamStagesAnnotation pins the Explain surface: every pattern line
// reports its pipeline stages, selectors are the per-seed blocking stage,
// and the sort is flagged blocking.
func TestStreamStagesAnnotation(t *testing.T) {
	p := compile(t, `MATCH ANY SHORTEST (a:Account)-[:Transfer]->+(b)`, plan.Options{})
	lines := Explain(p, Config{})
	if len(lines) != 1 {
		t.Fatalf("want one line, got %v", lines)
	}
	for _, want := range []string{"stages=", "enumerate", "dedup", "select ANY SHORTEST[blocking]", "sort[blocking]"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("explain line missing %q: %s", want, lines[0])
		}
	}
	stages := p.Paths[0].Stages()
	blocking := 0
	for _, st := range stages {
		if st.Blocking {
			blocking++
		}
	}
	if blocking != 2 {
		t.Errorf("want 2 blocking stages (select, sort), got %d in %+v", blocking, stages)
	}
	// Selector-free patterns stream everything but the Eval-only sort.
	p2 := compile(t, `MATCH (a:Account)-[t:Transfer]->(b)`, plan.Options{})
	for _, st := range p2.Paths[0].Stages() {
		if st.Blocking && st.Name != "sort" {
			t.Errorf("selector-free pattern has unexpected blocking stage %+v", st)
		}
	}
}

// TestStreamErrorPropagation: a search-limit error inside a generator
// goroutine must surface through Next, not vanish.
func TestStreamErrorPropagation(t *testing.T) {
	g := dataset.Grid(5, 5)
	p := compile(t, `MATCH TRAIL (x)-[e:Transfer]->+(y)`, plan.Options{})
	for _, cfg := range []Config{
		{Limits: Limits{MaxMatches: 50}},
		{Limits: Limits{MaxMatches: 50}, Parallelism: 4},
	} {
		cur, err := StreamPlan(context.Background(), g, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var lastErr error
		for {
			row, err := cur.Next()
			if err != nil {
				lastErr = err
				break
			}
			if row == nil {
				break
			}
		}
		cur.Close()
		var lim *LimitError
		if !errors.As(lastErr, &lim) {
			t.Fatalf("parallelism %d: expected LimitError, got %v", cfg.Parallelism, lastErr)
		}
	}
}

// TestStreamFirstRowBeforeFullEnumeration is the latency contract: on a
// workload whose full enumeration takes noticeable time, the first row
// must arrive in a small fraction of it.
func TestStreamFirstRowBeforeFullEnumeration(t *testing.T) {
	g := dataset.Random(dataset.RandomConfig{Accounts: 2500, AvgDegree: 4, Cities: 10, BlockedFraction: 0.1, Seed: 3})
	p := compile(t, `MATCH (x:Account)-[t:Transfer]->(y:Account)-[u:Transfer]->(z:Account)`, plan.Options{})

	t0 := time.Now()
	full, err := EvalPlan(g, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fullD := time.Since(t0)

	t0 = time.Now()
	cur, err := StreamPlan(context.Background(), g, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	row, err := cur.Next()
	firstD := time.Since(t0)
	cur.Close()
	if err != nil || row == nil {
		t.Fatalf("first row: %v %v", row, err)
	}
	if len(full.Rows) < 10_000 {
		t.Skipf("workload too small to time (%d rows)", len(full.Rows))
	}
	// Generous bound: the point is asymptotic (per-row vs total), and CI
	// machines are noisy. Locally this is ~1000×.
	if firstD > fullD/5 {
		t.Errorf("first row took %v, full enumeration %v; streaming should be far faster", firstD, fullD)
	}
}
