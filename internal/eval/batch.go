package eval

import (
	"context"
	"errors"
	"sync"

	"gpml/internal/ast"
	"gpml/internal/binding"
	"gpml/internal/graph"
	"gpml/internal/plan"
	"gpml/internal/value"
)

// Vectorized batch execution. When every path pattern of a statement is a
// flat chain (plan.FlatChain) on one shared store, the pipeline moves
// batches of ~batchSize rows between operators instead of one row at a
// time: a Batch carries one column of dense element indices per chain
// position, filters compact a selection vector in place, and only the
// boundary adapter (batchRowCursor) assembles *Row values — in exactly
// the order and with exactly the contents the row-at-a-time pipeline
// produces, so Rows/ForEach/conformance output is byte-identical. The
// chain enumerator mirrors the DFS machine move for move (same Steps
// iteration order, same label/equality check order, same self-loop
// double-emission, same budget and depth accounting), which is what makes
// the batch pipeline an exact drop-in rather than an approximation.

// batchSize is the row count operators aim for per batch: large enough to
// amortize per-batch overhead, small enough to stay cache-resident. The
// first batch of every operator is cut at one row so first-row latency
// matches the row pipeline; a seed's matches are never split mid-seed, so
// batches may overshoot the target.
const batchSize = 1024

// Batch is the columnar row carrier: one column per bound chain position,
// plus a selection vector of live row indices. Filters shrink sel without
// touching the columns; producers reset and refill. A batch is owned by
// its producing cursor and valid until that cursor's next NextBatch call.
type Batch struct {
	cols [][]graph.ElemIdx
	sel  []int32
}

func newBatch(width int) *Batch {
	return &Batch{cols: make([][]graph.ElemIdx, width)}
}

func (b *Batch) clear() {
	for i := range b.cols {
		b.cols[i] = b.cols[i][:0]
	}
	b.sel = b.sel[:0]
}

// rows is the live row count (after filtering).
func (b *Batch) rows() int { return len(b.sel) }

// BatchCursor is the batch-granular pull interface, the columnar analogue
// of Cursor: NextBatch returns the next non-empty batch, or (nil, nil) at
// exhaustion. Close releases resources and must be called exactly once.
type BatchCursor interface {
	NextBatch() (*Batch, error)
	Close() error
}

// chainVar names the variable at a chain position (even = node, odd = edge).
func chainVar(c *plan.FlatChain, pos int) string {
	if pos%2 == 0 {
		return c.Nodes[pos/2].Var
	}
	return c.Edges[pos/2].Var
}

// ---------------------------------------------------------------------------
// Chain enumeration: the DFS machine specialized to flat chains, emitting
// columnar tuples instead of PathBindings.

// chainEnum enumerates one flat-chain pattern's deduplicated solutions
// anchored at a seed node, as fixed-width index tuples. It reproduces the
// DFS machine's observable behaviour exactly: Steps-order traversal,
// directed self-loops taken once per admitted direction (the duplicate
// removed by dedup, after being counted against the match budget), label
// and repeated-variable checks in the same order, MaxDepth errors at the
// same expansions, and cancellation polls at the same cadence.
type chainEnum struct {
	st    graph.Stepper
	nodes []*ast.NodePattern
	edges []*ast.EdgePattern
	// eqPos[i] is the earliest chain position binding the same non-anon
	// variable as position i (-1 when i is the first or the variable is
	// anonymous); eqOK[i] reports kind agreement — a node/edge kind clash
	// rejects every candidate, like the DFS binding equality does.
	eqPos    []int
	eqOK     []bool
	maxDepth int
	bud      *budget
	tuple    []graph.ElemIdx
	// seen is the per-seed dedup set (cleared between seeds — exact,
	// since a tuple embeds its seed in column 0).
	seen  map[string]struct{}
	ck    binding.ColKeyer
	ticks int
	emit  func(tuple []graph.ElemIdx) error
}

func newChainEnum(st graph.Stepper, chain *plan.FlatChain, lims Limits, bud *budget, emit func([]graph.ElemIdx) error) *chainEnum {
	w := len(chain.Nodes) + len(chain.Edges)
	e := &chainEnum{
		st:       st,
		nodes:    chain.Nodes,
		edges:    chain.Edges,
		eqPos:    make([]int, w),
		eqOK:     make([]bool, w),
		maxDepth: lims.MaxDepth,
		bud:      bud,
		tuple:    make([]graph.ElemIdx, w),
		seen:     map[string]struct{}{},
		emit:     emit,
	}
	first := map[string]int{}
	for i := 0; i < w; i++ {
		e.eqPos[i] = -1
		v := chainVar(chain, i)
		if ast.IsAnonVar(v) {
			continue // anonymous variables are unique per position
		}
		if j, ok := first[v]; ok {
			e.eqPos[i] = j
			e.eqOK[i] = i%2 == j%2
		} else {
			first[v] = i
		}
	}
	return e
}

// eqRejects applies the repeated-variable equality at a position: same
// element, same kind — the DFS bindElem contract.
func (e *chainEnum) eqRejects(pos int, v graph.ElemIdx) bool {
	j := e.eqPos[pos]
	if j < 0 {
		return false
	}
	return !e.eqOK[pos] || e.tuple[j] != v
}

// runSeed enumerates every deduplicated solution anchored at the seed.
func (e *chainEnum) runSeed(seed int) error {
	clear(e.seen)
	if np := e.nodes[0]; np.Label != nil && !np.Label.Matches(e.st.NodeByIndex(seed).Labels) {
		return nil
	}
	e.tuple[0] = graph.ElemIdx(seed)
	return e.expand(0)
}

// expand continues the match from node position np (chain position 2*np).
func (e *chainEnum) expand(np int) error {
	if np == len(e.nodes)-1 {
		return e.accept()
	}
	if np >= e.maxDepth {
		return &LimitError{What: "path depth", Limit: e.maxDepth}
	}
	if e.ticks++; e.ticks%cancelCheckInterval == 0 {
		if err := e.bud.checkCancel(); err != nil {
			return err
		}
	}
	ep := e.edges[np]
	var firstErr error
	e.st.Steps(int(e.tuple[2*np]), func(ei, oi int, kind graph.StepKind) bool {
		// A directed self-loop admitted in both directions is taken twice
		// (the duplicate reduces away in accept), mirroring the DFS.
		if kind == graph.StepLoop {
			if ep.Orientation.AllowsRight() {
				if err := e.traverse(np, ei, oi); err != nil {
					firstErr = err
					return false
				}
			}
			if ep.Orientation.AllowsLeft() {
				if err := e.traverse(np, ei, oi); err != nil {
					firstErr = err
					return false
				}
			}
			return true
		}
		if !stepAllowed(ep.Orientation, kind) {
			return true
		}
		if err := e.traverse(np, ei, oi); err != nil {
			firstErr = err
			return false
		}
		return true
	})
	return firstErr
}

// traverse applies one edge traversal, in the DFS check order: edge
// label, edge equality, node label, node equality, recurse.
func (e *chainEnum) traverse(np, ei, oi int) error {
	if ep := e.edges[np]; ep.Label != nil && !ep.Label.Matches(e.st.EdgeByIndex(ei).Labels) {
		return nil
	}
	epos, npos := 2*np+1, 2*np+2
	if e.eqRejects(epos, graph.ElemIdx(ei)) {
		return nil
	}
	if nd := e.nodes[np+1]; nd.Label != nil && !nd.Label.Matches(e.st.NodeByIndex(oi).Labels) {
		return nil
	}
	if e.eqRejects(npos, graph.ElemIdx(oi)) {
		return nil
	}
	e.tuple[epos] = graph.ElemIdx(ei)
	e.tuple[npos] = graph.ElemIdx(oi)
	return e.expand(np + 1)
}

// accept accounts the raw match, dedups, and emits first occurrences —
// the same budget-then-dedup order as the row pipeline (accept counts the
// raw match, the per-seed pipeline removes duplicates afterwards).
func (e *chainEnum) accept() error {
	if err := e.bud.addMatch(); err != nil {
		return err
	}
	key := e.ck.Key(e.tuple)
	if _, dup := e.seen[string(key)]; dup {
		return nil
	}
	e.seen[string(key)] = struct{}{}
	return e.emit(e.tuple)
}

// ---------------------------------------------------------------------------
// Batch sources.

// batchChainSource enumerates a flat-chain pattern into batches, seed by
// seed on the consumer's goroutine (the sequential path). Batches are cut
// at seed boundaries once the fill target is reached; the first batch's
// target is one row, preserving the row pipeline's first-row latency, and
// a positive Limit caps the target so a LIMIT-bound consumer never pays
// for a full batch of discarded rows.
type batchChainSource struct {
	enum  *chainEnum
	seeds []int
	at    int
	out   *Batch
	limit int
	first bool
}

func newBatchChainSource(ctx context.Context, st graph.Stepper, pp *plan.PathPlan, cfg Config, width int, seeds []int) *batchChainSource {
	bud := newBudget(cfg.Limits.withDefaults())
	bud.check = cancelCheck(ctx, nil)
	src := &batchChainSource{
		seeds: seeds,
		out:   newBatch(width),
		limit: cfg.Limit,
		first: true,
	}
	src.enum = newChainEnum(st, pp.Chain, cfg.Limits.withDefaults(), bud, func(tuple []graph.ElemIdx) error {
		appendTuple(src.out, tuple)
		return nil
	})
	return src
}

// appendTuple appends a leading-group tuple as a new live row.
func appendTuple(b *Batch, tuple []graph.ElemIdx) {
	for j, v := range tuple {
		b.cols[j] = append(b.cols[j], v)
	}
	b.sel = append(b.sel, int32(len(b.sel)))
}

func (c *batchChainSource) target() int {
	if c.first {
		return 1
	}
	if c.limit > 0 && c.limit < batchSize {
		return c.limit
	}
	return batchSize
}

func (c *batchChainSource) NextBatch() (*Batch, error) {
	c.out.clear()
	target := c.target()
	for c.at < len(c.seeds) && c.out.rows() < target {
		seed := c.seeds[c.at]
		c.at++
		if err := c.enum.runSeed(seed); err != nil {
			return nil, err
		}
	}
	c.first = false
	if c.out.rows() == 0 {
		return nil, nil
	}
	return c.out, nil
}

func (c *batchChainSource) Close() error { return nil }

// parallelBatchSource enumerates a flat-chain pattern on a worker pool,
// one batch per seed chunk, emitted strictly in chunk (and therefore
// seed) order — the same geometric chunk schedule as the row pipeline's
// parallel solution stream, so row order is identical to sequential
// enumeration. Batch buffers recycle through a sync.Pool: the consumer
// returns the previous batch on its next pull, so steady-state operation
// allocates nothing per batch.
type parallelBatchSource struct {
	ctx    context.Context
	ch     chan *Batch
	stop   chan struct{}
	pool   sync.Pool
	err    error
	prev   *Batch
	closed bool
}

func newParallelBatchSource(ctx context.Context, st graph.Stepper, pp *plan.PathPlan, cfg Config, width int, seeds []int) *parallelBatchSource {
	ps := &parallelBatchSource{
		ctx:  ctx,
		ch:   make(chan *Batch, 4),
		stop: make(chan struct{}),
	}
	ps.pool.New = func() any { return newBatch(width) }
	bud := newBudget(cfg.Limits.withDefaults())
	bud.check = cancelCheck(ctx, ps.stop)
	go func() {
		err := ps.run(st, pp, cfg, bud, seeds)
		if err != nil && !errors.Is(err, errStreamStopped) {
			ps.err = err // published by the channel close below
		}
		close(ps.ch)
	}()
	return ps
}

func (ps *parallelBatchSource) run(st graph.Stepper, pp *plan.PathPlan, cfg Config, bud *budget, seeds []int) error {
	workers := cfg.Parallelism
	if workers > len(seeds) {
		workers = len(seeds)
	}
	// Geometric chunk schedule (single seeds first for first-row latency,
	// capped at 64) — identical to the row pipeline's parallel stream.
	starts := chunkStarts(len(seeds), workers)
	nchunks := len(starts) - 1
	type chunkResult struct {
		i int
		b *Batch
	}
	resCh := make(chan chunkResult, workers)
	var errs []error
	go func() {
		errs = runSeedPool(workers, nchunks, ps.stop, func() func(int) error {
			var out *Batch
			enum := newChainEnum(st, pp.Chain, cfg.Limits.withDefaults(), bud, func(tuple []graph.ElemIdx) error {
				appendTuple(out, tuple)
				return nil
			})
			return func(ci int) error {
				out = ps.pool.Get().(*Batch)
				out.clear()
				for _, seed := range seeds[starts[ci]:starts[ci+1]] {
					if err := enum.runSeed(seed); err != nil {
						ps.pool.Put(out)
						return err
					}
				}
				select {
				case resCh <- chunkResult{ci, out}:
					return nil
				case <-ps.stop:
					ps.pool.Put(out)
					return errStreamStopped
				}
			}
		})
		close(resCh)
	}()
	// Reorder chunk results into chunk order; skip empty chunks.
	pending := map[int]*Batch{}
	emitAt := 0
	var sendErr error
	for r := range resCh {
		if sendErr != nil {
			ps.pool.Put(r.b)
			continue
		}
		pending[r.i] = r.b
		for b, ok := pending[emitAt]; ok; b, ok = pending[emitAt] {
			delete(pending, emitAt)
			emitAt++
			if b.rows() == 0 {
				ps.pool.Put(b)
				continue
			}
			if sendErr = ps.send(b); sendErr != nil {
				ps.pool.Put(b)
				break
			}
		}
	}
	for _, b := range pending {
		ps.pool.Put(b)
	}
	for _, err := range errs {
		if err != nil && !errors.Is(err, errStreamStopped) {
			return err
		}
	}
	return sendErr
}

func (ps *parallelBatchSource) send(b *Batch) error {
	select {
	case ps.ch <- b:
		return nil
	case <-ps.stop:
		return errStreamStopped
	case <-ps.ctx.Done():
		return ps.ctx.Err()
	}
}

func (ps *parallelBatchSource) NextBatch() (*Batch, error) {
	if ps.prev != nil {
		ps.pool.Put(ps.prev)
		ps.prev = nil
	}
	b, ok := <-ps.ch
	if !ok {
		return nil, ps.err
	}
	ps.prev = b
	return b, nil
}

// Close stops the pool and blocks until the generator goroutine has
// exited (its channel close is observed by the drain loop).
func (ps *parallelBatchSource) Close() error {
	if ps.closed {
		return nil
	}
	ps.closed = true
	close(ps.stop)
	for b := range ps.ch {
		ps.pool.Put(b)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Batch stages.

// batchFilter compacts each batch's selection vector to the rows a
// predicate admits (vectorized edge-isomorphism, the final WHERE).
type batchFilter struct {
	src  BatchCursor
	keep func(b *Batch, row int32) (bool, error)
}

func (c *batchFilter) NextBatch() (*Batch, error) {
	for {
		b, err := c.src.NextBatch()
		if b == nil || err != nil {
			return nil, err
		}
		live := b.sel[:0]
		for _, r := range b.sel {
			ok, err := c.keep(b, r)
			if err != nil {
				return nil, err
			}
			if ok {
				live = append(live, r)
			}
		}
		b.sel = live
		if len(b.sel) > 0 {
			return b, nil
		}
	}
}

func (c *batchFilter) Close() error { return c.src.Close() }

// batchLimit truncates the stream after n live rows — the batch-granular
// LIMIT pushdown: once satisfied, upstream is never pulled again.
type batchLimit struct {
	src       BatchCursor
	remaining int
}

func (c *batchLimit) NextBatch() (*Batch, error) {
	if c.remaining <= 0 {
		return nil, nil
	}
	b, err := c.src.NextBatch()
	if b == nil || err != nil {
		return nil, err
	}
	if len(b.sel) > c.remaining {
		b.sel = b.sel[:c.remaining]
	}
	c.remaining -= len(b.sel)
	return b, nil
}

func (c *batchLimit) Close() error { return c.src.Close() }

// ---------------------------------------------------------------------------
// Layout and the row-at-a-time boundary adapter.

// patternGroup is one pattern's column group within a batch layout.
type patternGroup struct {
	pp   *plan.PathPlan
	off  int // first column of the group
	npos int // chain positions (2*edges+1 columns)
	// redVars caches the reduced display name per position (□/− for
	// anonymous), so the adapter builds Reduced bindings without
	// re-deriving names per row.
	redVars []string
}

// batchLayout fixes the column layout of a batch pipeline: per-pattern
// column groups in join order, the first column bound to each named
// variable (for predicate resolution and join probes), per-column element
// kinds, and the edge columns (for the vectorized isomorphism filter).
type batchLayout struct {
	p        *plan.Plan
	st       graph.Stepper
	params   Params
	groups   []patternGroup
	width    int
	kinds    []binding.ElemKind
	varCol   map[string]int
	edgeCols []int
}

func newBatchLayout(p *plan.Plan, st graph.Stepper, params Params, pats []*plan.PathPlan) *batchLayout {
	lay := &batchLayout{p: p, st: st, params: params, varCol: map[string]int{}}
	for _, pp := range pats {
		npos := len(pp.Chain.Nodes) + len(pp.Chain.Edges)
		g := patternGroup{pp: pp, off: lay.width, npos: npos, redVars: make([]string, npos)}
		for j := 0; j < npos; j++ {
			v := chainVar(pp.Chain, j)
			g.redVars[j] = ast.ReducedVar(v)
			kind := binding.NodeElem
			if j%2 == 1 {
				kind = binding.EdgeElem
				lay.edgeCols = append(lay.edgeCols, lay.width+j)
			}
			lay.kinds = append(lay.kinds, kind)
			if !ast.IsAnonVar(v) {
				if _, ok := lay.varCol[v]; !ok {
					lay.varCol[v] = lay.width + j
				}
			}
		}
		lay.width += npos
		lay.groups = append(lay.groups, g)
	}
	return lay
}

// reduced rebuilds one pattern's Reduced binding from a batch row —
// identical to what the engine's Reduce emits for a flat chain: one
// column per position in order, the path over the even/odd columns.
func (lay *batchLayout) reduced(b *Batch, r int32, g *patternGroup) *binding.Reduced {
	red := &binding.Reduced{
		Cols:    make([]binding.ReducedCol, g.npos),
		PathVar: g.pp.Pattern.PathVar,
		Src:     lay.st,
	}
	nodes := make([]graph.ElemIdx, 0, g.npos/2+1)
	edges := make([]graph.ElemIdx, 0, g.npos/2)
	for j := 0; j < g.npos; j++ {
		idx := b.cols[g.off+j][r]
		red.Cols[j] = binding.ReducedCol{Var: g.redVars[j], Kind: lay.kinds[g.off+j], Idx: idx}
		if j%2 == 0 {
			nodes = append(nodes, idx)
		} else {
			edges = append(edges, idx)
		}
	}
	red.Path = graph.IdxPath{Nodes: nodes, Edges: edges}
	return red
}

// row assembles a full result row through the same mergeRow path the row
// pipeline uses, group by group in join order.
func (lay *batchLayout) row(b *Batch, r int32) (*Row, bool) {
	row := &Row{}
	for gi := range lay.groups {
		g := &lay.groups[gi]
		merged, ok := mergeRow(lay.p, g.pp, row, lay.reduced(b, r, g))
		if !ok {
			return nil, false
		}
		row = merged
	}
	return row, true
}

// edgeIso is the vectorized edge-isomorphic check: pairwise distinctness
// over the edge columns (duplicate columns of one repeated edge variable
// collide with themselves, rejecting the row — exactly like the
// id-keyed row check).
func (lay *batchLayout) edgeIso(b *Batch, r int32) bool {
	for i := 1; i < len(lay.edgeCols); i++ {
		v := b.cols[lay.edgeCols[i]][r]
		for _, c := range lay.edgeCols[:i] {
			if b.cols[c][r] == v {
				return false
			}
		}
	}
	return true
}

// colResolver evaluates the postfilter directly over batch columns — no
// row assembly, no id strings. Element identity falls back to the
// store-resolved id (refID), which equals the row resolver's materialized
// id on the shared-store path the batch pipeline requires.
type colResolver struct {
	lay *batchLayout
	b   *Batch
	r   int32
}

func (c colResolver) Graph() graph.Store { return c.lay.st }

func (c colResolver) ParamValue(name string) (value.Value, bool) {
	v, ok := c.lay.params[name]
	return v, ok
}

func (c colResolver) Elem(name string) (binding.Ref, bool) {
	col, ok := c.lay.varCol[name]
	if !ok {
		return binding.Ref{}, false // path variables and unknown names
	}
	return binding.Ref{Kind: c.lay.kinds[col], Idx: c.b.cols[col][c.r]}, true
}

func (c colResolver) Group(name string) ([]binding.Ref, bool) { return nil, false }

// batchRowCursor is the row-at-a-time boundary adapter: it drains batches
// and assembles one *Row per live row, in batch row order — the bridge
// that keeps Rows/ForEach and every downstream consumer byte-identical.
type batchRowCursor struct {
	lay *batchLayout
	src BatchCursor
	b   *Batch
	at  int
}

func (c *batchRowCursor) Next() (*Row, error) {
	for {
		for c.b != nil && c.at < len(c.b.sel) {
			r := c.b.sel[c.at]
			c.at++
			if row, ok := c.lay.row(c.b, r); ok {
				return row, nil
			}
		}
		b, err := c.src.NextBatch()
		if b == nil || err != nil {
			return nil, err
		}
		c.b, c.at = b, 0
	}
}

func (c *batchRowCursor) Close() error { return c.src.Close() }
