package eval

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"gpml/internal/ast"
	"gpml/internal/binding"
	"gpml/internal/dataset"
	"gpml/internal/graph"
	"gpml/internal/normalize"
	"gpml/internal/parser"
	"gpml/internal/plan"
)

// compile builds a plan for one query.
func compile(t *testing.T, src string, opts plan.Options) *plan.Plan {
	t.Helper()
	stmt, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	norm, err := normalize.Normalize(stmt)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	p, err := plan.Analyze(norm, opts)
	if err != nil {
		t.Fatalf("analyze %q: %v", src, err)
	}
	return p
}

func evalQuery(t *testing.T, g *graph.Graph, src string) *Result {
	t.Helper()
	p := compile(t, src, plan.Options{})
	res, err := EvalPlan(g, p, Config{})
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return res
}

func patternBindings(t *testing.T, g *graph.Graph, src string) []*binding.Reduced {
	t.Helper()
	p := compile(t, src, plan.Options{})
	if len(p.Paths) != 1 {
		t.Fatalf("want single path pattern")
	}
	rs, err := MatchPattern(g, p.Paths[0], Config{})
	if err != nil {
		t.Fatalf("match: %v", err)
	}
	return rs
}

// Oracle: single-edge traversal semantics for each of the seven
// orientations, checked against a direct computation over the graph.
func TestOrientationOracle(t *testing.T) {
	g := dataset.Fig1()
	type traversal struct{ x, e, y string }
	oracle := func(o ast.Orientation) []traversal {
		var out []traversal
		g.Nodes(func(n *graph.Node) bool {
			g.Incident(n.ID, func(e *graph.Edge) bool {
				if e.Direction == graph.Directed {
					if e.Source == n.ID && o.AllowsRight() {
						out = append(out, traversal{string(n.ID), string(e.ID), string(e.Target)})
					}
					if e.Target == n.ID && o.AllowsLeft() {
						out = append(out, traversal{string(n.ID), string(e.ID), string(e.Source)})
					}
				} else if o.AllowsUndirected() {
					out = append(out, traversal{string(n.ID), string(e.ID), string(e.Other(n.ID))})
				}
				return true
			})
			return true
		})
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			return a.x+a.e+a.y < b.x+b.e+b.y
		})
		return out
	}
	patterns := map[ast.Orientation]string{
		ast.Left:           `MATCH (x)<-[e]-(y)`,
		ast.UndirectedEdge: `MATCH (x)~[e]~(y)`,
		ast.Right:          `MATCH (x)-[e]->(y)`,
		ast.LeftOrUndir:    `MATCH (x)<~[e]~(y)`,
		ast.UndirOrRight:   `MATCH (x)~[e]~>(y)`,
		ast.LeftOrRight:    `MATCH (x)<-[e]->(y)`,
		ast.AnyOrientation: `MATCH (x)-[e]-(y)`,
	}
	for o, src := range patterns {
		res := evalQuery(t, g, src)
		var got []traversal
		for _, row := range res.Rows {
			x, _ := row.Get("x")
			e, _ := row.Get("e")
			y, _ := row.Get("y")
			got = append(got, traversal{string(x.Node), string(e.Edge), string(y.Node)})
		}
		sort.Slice(got, func(i, j int) bool {
			a, b := got[i], got[j]
			return a.x+a.e+a.y < b.x+b.e+b.y
		})
		// Note: for Left patterns the oracle's "x" is the node the edge
		// points away from when traversing; the engine binds x as the
		// pattern's left node. Both enumerate traversals (position, edge,
		// target), so the sets must agree exactly.
		want := oracle(o)
		if len(got) != len(want) {
			t.Errorf("%v: %d traversals, oracle %d", o, len(got), len(want))
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%v: traversal %d: got %+v want %+v", o, i, got[i], want[i])
				break
			}
		}
	}
}

// All restrictor outputs satisfy the corresponding path predicate, and are
// exactly the brute-force-filtered walk sets.
func TestRestrictorInvariants(t *testing.T) {
	g := dataset.Cycle(5)
	for _, tc := range []struct {
		restr string
		check func(graph.Path) bool
	}{
		{"TRAIL", graph.Path.IsTrail},
		{"ACYCLIC", graph.Path.IsAcyclic},
		{"SIMPLE", graph.Path.IsSimple},
	} {
		src := fmt.Sprintf(`MATCH %s p = (a)-[e:Transfer]->*(b)`, tc.restr)
		res := evalQuery(t, g, src)
		for _, row := range res.Rows {
			pb, _ := row.Get("p")
			if !tc.check(pb.Path) {
				t.Errorf("%s produced violating path %s", tc.restr, pb.Path)
			}
			if err := pb.Path.ValidIn(g); err != nil {
				t.Errorf("%s produced structurally invalid path: %v", tc.restr, err)
			}
		}
	}
}

// On a directed n-cycle the restrictor outputs have closed forms:
// TRAIL/SIMPLE walks from each start: lengths 0..n (wrapping once back to
// the start allowed); ACYCLIC: lengths 0..n-1.
func TestRestrictorCountsOnCycle(t *testing.T) {
	const n = 6
	g := dataset.Cycle(n)
	count := func(src string) int {
		return len(evalQuery(t, g, src).Rows)
	}
	// Each start node yields walks of length 0..n-1 acyclically.
	if got := count(`MATCH ACYCLIC (a)-[e:Transfer]->*(b)`); got != n*n {
		t.Errorf("ACYCLIC on C%d: got %d, want %d", n, got, n*n)
	}
	// TRAIL and SIMPLE additionally allow the full cycle (length n).
	if got := count(`MATCH TRAIL (a)-[e:Transfer]->*(b)`); got != n*n+n {
		t.Errorf("TRAIL on C%d: got %d, want %d", n, got, n*n+n)
	}
	if got := count(`MATCH SIMPLE (a)-[e:Transfer]->*(b)`); got != n*n+n {
		t.Errorf("SIMPLE on C%d: got %d, want %d", n, got, n*n+n)
	}
}

// DFS and BFS modes agree wherever both apply: a bounded quantifier with a
// selector evaluates by DFS; the same pattern with an unbounded quantifier
// on an acyclic graph has identical matches.
func TestDFSBFSEquivalenceOnChain(t *testing.T) {
	g := dataset.Chain(8) // acyclic: bounded {1,7} ≡ unbounded *
	dfsRes := patternBindings(t, g, `MATCH ALL SHORTEST TRAIL (a)-[e:Transfer]->{1,7}(b)`)
	bfsRes := patternBindings(t, g, `MATCH ALL SHORTEST (a)-[e:Transfer]->+(b)`)
	key := func(rs []*binding.Reduced) []string {
		out := make([]string, len(rs))
		for i, r := range rs {
			out[i] = strings.Join(r.ValueRow(), " ")
		}
		sort.Strings(out)
		return out
	}
	a, b := key(dfsRes), key(bfsRes)
	if len(a) != len(b) {
		t.Fatalf("DFS %d vs BFS %d matches", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d: DFS %q vs BFS %q", i, a[i], b[i])
		}
	}
}

// ALL SHORTEST on a grid returns exactly the binomial number of shortest
// corner-to-corner paths.
func TestAllShortestGridCount(t *testing.T) {
	g := dataset.Grid(4, 4)
	res := evalQuery(t, g, `
		MATCH ALL SHORTEST p = (a WHERE a.owner='u0_0')-[e:Transfer]->+
		      (b WHERE b.owner='u3_3')`)
	// C(6,3) = 20 shortest paths of length 6.
	if len(res.Rows) != 20 {
		t.Fatalf("ALL SHORTEST on 4x4 grid: got %d, want 20", len(res.Rows))
	}
	for _, row := range res.Rows {
		p, _ := row.Get("p")
		if p.Path.Len() != 6 {
			t.Errorf("non-shortest path %s", p.Path)
		}
	}
}

// ANY SHORTEST returns exactly one shortest path per endpoint pair;
// SHORTEST k returns min(k, available); SHORTEST k GROUP keeps whole
// length groups.
func TestSelectorFamilies(t *testing.T) {
	g := dataset.Cycle(5)
	anyShortest := evalQuery(t, g, `MATCH ANY SHORTEST p = (a)-[e:Transfer]->+(b)`)
	// Partitions: every ordered pair (a,b) including a==b via the full
	// cycle: 5 starts × 5 ends = 25 partitions, one row each.
	if len(anyShortest.Rows) != 25 {
		t.Errorf("ANY SHORTEST on C5: got %d rows, want 25", len(anyShortest.Rows))
	}
	for _, row := range anyShortest.Rows {
		p, _ := row.Get("p")
		// On a cycle the shortest a→b walk has length (b-a) mod 5, in 1..5.
		if p.Path.Len() < 1 || p.Path.Len() > 5 {
			t.Errorf("suspicious shortest length %d", p.Path.Len())
		}
	}

	// SHORTEST 2: the two shortest walks per pair have lengths d and d+5.
	shortest2 := evalQuery(t, g, `MATCH SHORTEST 2 p = (a)-[e:Transfer]->+(b)`)
	if len(shortest2.Rows) != 50 {
		t.Errorf("SHORTEST 2 on C5: got %d rows, want 50", len(shortest2.Rows))
	}
	perPair := map[string][]int{}
	for _, row := range shortest2.Rows {
		p, _ := row.Get("p")
		k := string(p.Path.First()) + "→" + string(p.Path.Last())
		perPair[k] = append(perPair[k], p.Path.Len())
	}
	for k, lens := range perPair {
		sort.Ints(lens)
		if len(lens) != 2 || lens[1]-lens[0] != 5 {
			t.Errorf("pair %s: lengths %v, want d and d+5", k, lens)
		}
	}

	// On a cycle every length group has exactly one path, so SHORTEST 2
	// GROUP equals SHORTEST 2 here.
	group2 := evalQuery(t, g, `MATCH SHORTEST 2 GROUP p = (a)-[e:Transfer]->+(b)`)
	if len(group2.Rows) != 50 {
		t.Errorf("SHORTEST 2 GROUP on C5: got %d rows, want 50", len(group2.Rows))
	}

	// ANY k.
	any3 := evalQuery(t, g, `MATCH ANY 3 p = (a)-[e:Transfer]->+(b)`)
	if len(any3.Rows) != 75 {
		t.Errorf("ANY 3 on C5: got %d rows, want 75", len(any3.Rows))
	}
}

// SHORTEST k GROUP keeps all paths of a tied length group (grid: the
// second group on a 2x3 grid).
func TestShortestKGroupTies(t *testing.T) {
	g := dataset.Grid(2, 2)
	res := evalQuery(t, g, `
		MATCH SHORTEST 1 GROUP p = (a WHERE a.owner='u0_0')-[e:Transfer]->+
		      (b WHERE b.owner='u1_1')`)
	// Both length-2 corner paths are in the first group.
	if len(res.Rows) != 2 {
		t.Errorf("SHORTEST 1 GROUP on 2x2 grid: got %d rows, want 2 (tied group)", len(res.Rows))
	}
}

// The limits abort pathological searches with a descriptive error.
func TestLimits(t *testing.T) {
	g := dataset.Cycle(4)
	p := compile(t, `MATCH TRAIL (a)-[e:Transfer]->*(b)`, plan.Options{})
	_, err := EvalPlan(g, p, Config{Limits: Limits{MaxMatches: 3}})
	if err == nil {
		t.Fatalf("expected match-count limit error")
	}
	le, ok := err.(*LimitError)
	if !ok || le.Limit != 3 {
		t.Errorf("error: %v", err)
	}
	_, err = EvalPlan(g, p, Config{Limits: Limits{MaxDepth: 2}})
	if err == nil {
		t.Fatalf("expected depth limit error")
	}
	// BFS thread limit.
	p = compile(t, `MATCH ALL SHORTEST (a)-[e:Transfer]->*(b)`, plan.Options{})
	_, err = EvalPlan(g, p, Config{Limits: Limits{MaxThreads: 2}})
	if err == nil {
		t.Fatalf("expected thread limit error")
	}
}

// Zero-width quantifier bodies terminate (the empty-iteration guard).
func TestZeroWidthQuantifier(t *testing.T) {
	g := dataset.Chain(3)
	res := evalQuery(t, g, `MATCH (x:Account) [(y:Account)]{0,5} (z:Account)`)
	// Each node matches; the zero-width loop must not spin. x==y==z when
	// iterated; x==z always (same position).
	if len(res.Rows) == 0 {
		t.Fatalf("zero-width quantifier produced no matches")
	}
	for _, row := range res.Rows {
		x, _ := row.Get("x")
		z, _ := row.Get("z")
		if x.Node != z.Node {
			t.Errorf("zero-width pattern must stay in place: %v vs %v", x.Node, z.Node)
		}
	}
}

// Question-mark skip keeps later pattern parts anchored at the position.
func TestQuestionMarkPositioning(t *testing.T) {
	g := dataset.Chain(4)
	res := evalQuery(t, g, `MATCH (x:Account) [-[e:Transfer]->(m)]? -[f:Transfer]->(y)`)
	// Either x-f->y directly (3 edges × each), or x-e->m-f->y (2 chains).
	if len(res.Rows) != 5 {
		t.Errorf("optional leg: got %d rows, want 5", len(res.Rows))
	}
}

// Multiple traversal duplicates on self-loops reduce away.
func TestSelfLoopDedup(t *testing.T) {
	b := graph.NewBuilder().
		Node("n", []string{"X"}).
		Edge("loop", "n", "n", []string{"L"})
	g := b.MustBuild()
	res := evalQuery(t, g, `MATCH (x)<-[e]->(y)`)
	// Left and right traversals of the loop coincide after reduction.
	if len(res.Rows) != 1 {
		t.Errorf("directed self-loop with <->: got %d rows, want 1", len(res.Rows))
	}
	res = evalQuery(t, g, `MATCH (x)-[e]-(y)`)
	if len(res.Rows) != 1 {
		t.Errorf("directed self-loop with -: got %d rows, want 1", len(res.Rows))
	}
}

// Undirected self-loops traverse once.
func TestUndirectedSelfLoop(t *testing.T) {
	b := graph.NewBuilder().
		Node("n", []string{"X"}).
		UndirectedEdge("loop", "n", "n", []string{"L"})
	g := b.MustBuild()
	res := evalQuery(t, g, `MATCH (x)~[e]~(y)`)
	if len(res.Rows) != 1 {
		t.Errorf("undirected self-loop: got %d rows, want 1", len(res.Rows))
	}
}

// SIMPLE restrictor on a closed pattern: first==last allowed, interior
// revisits pruned.
func TestSimpleRestrictorClosure(t *testing.T) {
	g := dataset.Cycle(4)
	res := evalQuery(t, g, `MATCH SIMPLE p = (a)-[e:Transfer]->{4,}(a)`)
	// Only the full cycles close simply: 4 rotations; longer multiples
	// repeat interior nodes.
	if len(res.Rows) != 4 {
		t.Errorf("SIMPLE closed cycles: got %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		p, _ := row.Get("p")
		if p.Path.Len() != 4 || !p.Path.IsSimple() {
			t.Errorf("bad simple cycle %s", p.Path)
		}
	}
}

// Prefilter WHERE inside a paren sees iteration-local bindings (§4.4) and
// outer singletons.
func TestParenWhereScoping(t *testing.T) {
	g := dataset.Fig1()
	res := evalQuery(t, g, `
		MATCH (a:Account WHERE a.owner='Dave')
		      [(x)-[e:Transfer]->(y) WHERE x.isBlocked='no']{1,3}
		      (b:Account WHERE b.owner='Jay')`)
	// Chains Dave→Jay of ≤3 hops avoiding blocked intermediates as
	// sources: a6-t5->a3-t2->a2-t3->a4.
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(res.Rows))
	}
}

// Group aggregation in postfilters spans the whole accumulated list even
// across a selector (effectively bounded, §5.3).
func TestPostfilterAggregateAfterSelector(t *testing.T) {
	g := dataset.Chain(6)
	res := evalQuery(t, g, `
		MATCH ANY SHORTEST (a WHERE a.owner='owner0')-[e:Transfer]->+
		      (b WHERE b.owner='owner5')
		WHERE COUNT(e) = 5`)
	if len(res.Rows) != 1 {
		t.Errorf("postfilter COUNT over selector output: got %d rows", len(res.Rows))
	}
	res = evalQuery(t, g, `
		MATCH ANY SHORTEST (a WHERE a.owner='owner0')-[e:Transfer]->+
		      (b WHERE b.owner='owner5')
		WHERE COUNT(e) = 4`)
	if len(res.Rows) != 0 {
		t.Errorf("shortest chain has 5 edges; COUNT(e)=4 must filter it out")
	}
}

// Rows expose their variables and bindings.
func TestRowAccessors(t *testing.T) {
	g := dataset.Fig1()
	res := evalQuery(t, g, `MATCH p = (x:Account WHERE x.owner='Jay')-[e:Transfer]->(y)`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	row := res.Rows[0]
	vars := row.Vars()
	if strings.Join(vars, ",") != "e,p,x,y" {
		t.Errorf("vars: %v", vars)
	}
	if b, ok := row.Get("p"); !ok || b.Kind != BoundPath || b.Path.String() != "path(a4,t4,a6)" {
		t.Errorf("path binding: %+v", b)
	}
	if b, ok := row.Get("e"); !ok || b.String() != "t4" {
		t.Errorf("edge binding: %+v", b)
	}
	if _, ok := row.Get("nope"); ok {
		t.Errorf("missing var must be !ok")
	}
	if res.Columns[0] != "p" {
		t.Errorf("columns: %v", res.Columns)
	}
}

// Bound.String renders every kind. Group bindings materialize through the
// row's source store, so the case builds one.
func TestBoundString(t *testing.T) {
	g := graph.New()
	if err := g.AddNode("a1", nil, nil); err != nil {
		t.Fatal(err)
	}
	for _, e := range []graph.EdgeID{"t1", "t2"} {
		if err := g.AddEdge(e, "a1", "a1", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		b    Bound
		want string
	}{
		{Bound{Kind: BoundNull}, "NULL"},
		{Bound{Kind: BoundNode, Node: "a1"}, "a1"},
		{Bound{Kind: BoundEdge, Edge: "t1"}, "t1"},
		{Bound{Kind: BoundGroup, Group: []binding.Ref{{Kind: binding.EdgeElem, Idx: 0}, {Kind: binding.EdgeElem, Idx: 1}}, src: g}, "[t1,t2]"},
		{Bound{Kind: BoundPath, Path: graph.Path{Nodes: []graph.NodeID{"a"}}}, "path(a)"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.want {
			t.Errorf("Bound.String() = %q, want %q", got, c.want)
		}
	}
}
