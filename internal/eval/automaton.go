package eval

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"gpml/internal/ast"
	"gpml/internal/automaton"
	"gpml/internal/binding"
	"gpml/internal/graph"
	"gpml/internal/plan"
	"gpml/internal/value"
)

// The automaton engine evaluates selector-bounded patterns as a
// breadth-first search over the product of the graph with the pattern
// automaton (see internal/automaton): product states are (node index ×
// automaton state) integers, visited once each, with predecessor links
// forming the shortest-match DAG. Shortest matches per endpoint are then
// reconstructed from the DAG and each distinct path is replayed through
// the original program to rebuild its bindings (variables, iteration
// annotations, multiset branch tags) byte-identically to the enumerating
// engines.
//
// Compared to the per-state BFS engine — which carries environments,
// entry lists and string admission keys in every thread — the product
// search touches O(|N|·|Q|) integers plus O(output) replay work, turning
// ALL SHORTEST on dense graphs from walk enumeration into plain graph
// search. The plan layer's eligibility analysis (plan.PathPlan.Automaton)
// guarantees the pattern is memoryless, which is what makes the (node ×
// state) abstraction exact.

// Engine names reported by EngineFor and the -explain flag.
const (
	EngineDFS       = "dfs"
	EngineBFS       = "bfs"
	EngineAutomaton = "automaton"
)

// automatonFor returns the pattern's compiled automaton, or nil when
// compilation failed (state budget); the result is memoized on the plan.
func automatonFor(pp *plan.PathPlan) *automaton.NFA {
	v := pp.CompiledAutomaton(func() any {
		nfa, err := automaton.Compile(pp.Prog, pp.Mode == plan.ModeDFS)
		if err != nil {
			return (*automaton.NFA)(nil)
		}
		return nfa
	})
	nfa, _ := v.(*automaton.NFA)
	return nfa
}

// EngineFor reports which engine Enumerate selects for the pattern under
// the given config, plus a note explaining why the automaton engine was
// not selected (empty when it was).
func EngineFor(pp *plan.PathPlan, cfg Config) (engine, note string) {
	note = pp.AutomatonReason
	if cfg.DisableAutomaton {
		note = "disabled by config"
	} else if pp.Automaton {
		if automatonFor(pp) != nil {
			return EngineAutomaton, ""
		}
		note = "state budget exceeded (quantifier bounds too large)"
	}
	if pp.Mode == plan.ModeBFS {
		return EngineBFS, note
	}
	return EngineDFS, note
}

// Explain renders the statement's evaluation plan without store
// statistics; see ExplainStore.
func Explain(p *plan.Plan, cfg Config) []string { return ExplainStore(nil, p, cfg) }

// ExplainStore renders one human-readable line per path pattern — the
// selected engine, the selector, the proven seed labels, when the
// automaton engine is not used the reason, and the pattern's streaming
// pipeline stages with their blocking/streamable classification
// (plan.PathPlan.Stages) — followed by the cost-ordered join plan for
// multi-pattern statements (ExplainJoin), each step annotated with its
// streaming behaviour. The store, when non-nil, supplies the cardinality
// statistics the join cost model ranks patterns with.
func ExplainStore(s graph.Store, p *plan.Plan, cfg Config) []string {
	if s != nil {
		s = graph.Pin(s)
	}
	out := make([]string, len(p.Paths), len(p.Paths)+len(p.Paths))
	for i, pp := range p.Paths {
		eng, note := EngineFor(pp, cfg)
		var b strings.Builder
		b.WriteString("pattern ")
		b.WriteString(strconv.Itoa(i))
		b.WriteString(": engine=")
		b.WriteString(eng)
		if sel := pp.Pattern.Selector; sel.Kind != ast.NoSelector {
			b.WriteString(" selector=")
			b.WriteString(sel.String())
		}
		if pp.Pattern.Restrictor != ast.NoRestrictor {
			b.WriteString(" restrictor=")
			b.WriteString(pp.Pattern.Restrictor.String())
		}
		if len(pp.SeedLabels) > 0 {
			b.WriteString(" seed-labels=")
			b.WriteString(strings.Join(pp.SeedLabels, ","))
		}
		if eng != EngineAutomaton && note != "" {
			b.WriteString(" (automaton unavailable: ")
			b.WriteString(note)
			b.WriteString(")")
		}
		b.WriteString(" stages=")
		for j, st := range pp.Stages() {
			if j > 0 {
				b.WriteString("→")
			}
			b.WriteString(st.Name)
			if st.Blocking {
				b.WriteString("[blocking]")
			}
		}
		out[i] = b.String()
	}
	return append(out, ExplainJoin(s, p, cfg)...)
}

// elemResolver resolves exactly one element — the one being matched —
// for the memoryless WHERE checks the eligibility analysis admits.
type elemResolver struct {
	g      graph.Store
	name   string
	ref    binding.Ref
	params Params
}

func (r elemResolver) Graph() graph.Store { return r.g }

func (r elemResolver) ParamValue(name string) (value.Value, bool) {
	v, ok := r.params[name]
	return v, ok
}

func (r elemResolver) Elem(name string) (binding.Ref, bool) {
	if name == r.name {
		return r.ref, true
	}
	return binding.Ref{}, false
}

func (r elemResolver) Group(string) ([]binding.Ref, bool) { return nil, false }

// autoPred is one shortest-DAG predecessor link: the product state the
// step left and the dense index of the edge it consumed.
type autoPred struct {
	from int
	edge int
}

// replayStep is one concrete step of a reconstructed path: the dense
// indices of the edge taken and the node it arrives at.
type replayStep struct {
	edge int
	node int
}

// autoEngine runs the product search for one pattern; one instance serves
// any number of sequential seed runs (Enumerate's worker pool builds one
// per worker). Bindings are recovered by replaying each reconstructed
// path on a path-constrained DFS machine (see dfs.go), shared across
// paths so replay allocates next to nothing.
type autoEngine struct {
	st     graph.Stepper
	nfa    *automaton.NFA
	limits Limits
	params Params
	bud    *budget

	rep     *dfs // path-constrained replay machine
	emitted int  // bindings emitted by the current replay
	seed    int

	S int // automaton state count; product id = node*S + state
	// dist maps product id -> arrival depth + 1 (0 = unvisited): a dense
	// table when the product space fits denseDistLimit, a sparse map
	// otherwise (production-scale graphs near the state budget would
	// otherwise allocate gigabytes per engine instance).
	dist     []int32
	distMap  map[int]int32
	preds    map[int][]autoPred
	touched  []int
	cur, nxt []int

	cloVisit []int32 // per-automaton-state closure stamps
	cloEpoch int32
	cloOut   []int
	pathBuf  []replayStep
	fwdBuf   []replayStep
	seenBuf  []byte // scratch for the distinct-path dedup key
	ticks    int
}

// denseDistLimit bounds the dense dist table (16M product states, 64 MB);
// larger products use the sparse map, trading lookup speed for memory
// proportional to the states actually visited.
const denseDistLimit = 1 << 24

func newAutoEngine(st graph.Stepper, pp *plan.PathPlan, cfg Config, bud *budget, emit func(*binding.PathBinding) error) *autoEngine {
	nfa := automatonFor(pp)
	a := &autoEngine{
		st:       st,
		nfa:      nfa,
		limits:   cfg.Limits.withDefaults(),
		params:   cfg.Params,
		bud:      bud,
		S:        nfa.NumStates(),
		preds:    map[int][]autoPred{},
		cloVisit: make([]int32, nfa.NumStates()),
		fwdBuf:   make([]replayStep, 0, 16),
	}
	// Size the dense table by the index span, not the live count: product
	// ids are built from raw node indices, which run sparse on overlay
	// epochs and compacted bases.
	if product := st.NodeIndexSpan() * nfa.NumStates(); product <= denseDistLimit {
		a.dist = make([]int32, product)
	} else {
		a.distMap = map[int]int32{}
	}
	a.rep = newDFS(st, pp.Prog, pp.Pattern.PathVar, cfg.Limits, cfg.Params, bud, func(b *binding.PathBinding) error {
		a.emitted++
		return emit(b)
	})
	a.rep.bfsZeroWidth = pp.Mode == plan.ModeBFS
	return a
}

// distOf reads a product state's dist entry.
func (a *autoEngine) distOf(pid int) int32 {
	if a.dist != nil {
		return a.dist[pid]
	}
	return a.distMap[pid]
}

// setDist writes a product state's dist entry.
func (a *autoEngine) setDist(pid int, d int32) {
	if a.dist != nil {
		a.dist[pid] = d
		return
	}
	if d == 0 {
		delete(a.distMap, pid)
		return
	}
	a.distMap[pid] = d
}

// run evaluates the pattern anchored at one seed node index: product BFS,
// then reconstruction and replay of every minimal-depth match.
func (a *autoEngine) run(seed int) error {
	si := seed
	a.seed = seed
	start, err := a.closure(si, a.nfa.Start)
	if err != nil {
		return err
	}
	// Cheap seed rejection: the entry state itself is always in its own
	// closure, so emptiness never discriminates — a seed is dead when no
	// closure state can consume an edge or accept (its node guards failed).
	live := false
	for _, q := range start {
		if st := &a.nfa.States[q]; st.Accept || len(st.Steps) > 0 {
			live = true
			break
		}
	}
	if !live {
		return nil
	}
	// Reset the tables touched by the previous seed.
	for _, pid := range a.touched {
		a.setDist(pid, 0)
		delete(a.preds, pid)
	}
	a.touched = a.touched[:0]
	a.cur = a.cur[:0]
	for _, q := range start {
		pid := si*a.S + q
		a.setDist(pid, 1)
		a.touched = append(a.touched, pid)
		if err := a.bud.addThread(); err != nil {
			return err
		}
		a.cur = append(a.cur, pid)
	}
	for depth := 0; len(a.cur) > 0 && depth < a.limits.MaxDepth; depth++ {
		a.nxt = a.nxt[:0]
		for _, pid := range a.cur {
			n, q := pid/a.S, pid%a.S
			for _, stp := range a.nfa.States[q].Steps {
				if err := a.expand(pid, n, stp, depth); err != nil {
					return err
				}
			}
		}
		a.cur, a.nxt = a.nxt, a.cur
	}
	return a.emitShortest()
}

// expand relaxes one edge-consuming transition from a product state at
// the given depth, epsilon-closing each arrival and recording shortest-DAG
// predecessor links.
func (a *autoEngine) expand(pid, n int, stp automaton.Step, depth int) error {
	if a.ticks++; a.ticks%cancelCheckInterval == 0 {
		if err := a.bud.checkCancel(); err != nil {
			return err
		}
	}
	ep := stp.Edge
	var firstErr error
	a.st.Steps(n, func(ei, oi int, k graph.StepKind) bool {
		if !stepAllowed(ep.Orientation, k) {
			return true
		}
		e := a.st.EdgeByIndex(ei)
		if ep.Label != nil && !ep.Label.Matches(e.Labels) {
			return true
		}
		if ep.Where != nil {
			tri, err := EvalPred(ep.Where, elemResolver{a.st, ep.Var, binding.Ref{Kind: binding.EdgeElem, Idx: graph.ElemIdx(ei)}, a.params})
			if err != nil {
				firstErr = err
				return false
			}
			if !tri.IsTrue() {
				return true
			}
		}
		states, err := a.closure(oi, stp.To)
		if err != nil {
			firstErr = err
			return false
		}
		for _, cs := range states {
			cpid := oi*a.S + cs
			switch d := a.distOf(cpid); {
			case d == 0:
				a.setDist(cpid, int32(depth+2))
				a.touched = append(a.touched, cpid)
				if err := a.bud.addThread(); err != nil {
					firstErr = err
					return false
				}
				a.preds[cpid] = append(a.preds[cpid], autoPred{pid, ei})
				a.nxt = append(a.nxt, cpid)
			case d == int32(depth+2):
				a.preds[cpid] = append(a.preds[cpid], autoPred{pid, ei})
			}
		}
		return true
	})
	return firstErr
}

// stepAllowed matches a step kind against the seven edge orientations; a
// directed self-loop is traversable along or against its direction.
func stepAllowed(o ast.Orientation, k graph.StepKind) bool {
	switch k {
	case graph.StepOut:
		return o.AllowsRight()
	case graph.StepIn:
		return o.AllowsLeft()
	case graph.StepLoop:
		return o.AllowsRight() || o.AllowsLeft()
	default:
		return o.AllowsUndirected()
	}
}

// closure returns the automaton states epsilon-reachable from q0 with the
// graph positioned at the given node, evaluating node-pattern guards
// (label and memoryless WHERE) against it. The returned slice is scratch,
// valid until the next closure call.
func (a *autoEngine) closure(node, q0 int) ([]int, error) {
	a.cloEpoch++
	a.cloOut = a.cloOut[:0]
	n := a.st.NodeByIndex(node)
	var walk func(q int) error
	walk = func(q int) error {
		if a.cloVisit[q] == a.cloEpoch {
			return nil
		}
		a.cloVisit[q] = a.cloEpoch
		a.cloOut = append(a.cloOut, q)
		for _, eps := range a.nfa.States[q].Eps {
			if np := eps.Node; np != nil {
				if np.Label != nil && !np.Label.Matches(n.Labels) {
					continue
				}
				if np.Where != nil {
					tri, err := EvalPred(np.Where, elemResolver{a.st, np.Var, binding.Ref{Kind: binding.NodeElem, Idx: graph.ElemIdx(node)}, a.params})
					if err != nil {
						return err
					}
					if !tri.IsTrue() {
						continue
					}
				}
			}
			if err := walk(eps.To); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(q0); err != nil {
		return nil, err
	}
	return a.cloOut, nil
}

// emitShortest reconstructs, per endpoint node, every minimal-depth match
// from the predecessor DAG and replays the program over each distinct
// path. Every shortest match's prefixes arrive at their product states'
// minimal depths (the standard shortest-path-DAG property, which the
// memoryless abstraction preserves), so the DAG enumerates exactly the
// minimal-length matches.
func (a *autoEngine) emitShortest() error {
	minAt := map[int]int32{} // endpoint node -> minimal accept depth
	for _, pid := range a.touched {
		if !a.nfa.States[pid%a.S].Accept {
			continue
		}
		n := pid / a.S
		if m, ok := minAt[n]; !ok || a.distOf(pid) < m {
			minAt[n] = a.distOf(pid)
		}
	}
	if len(minAt) == 0 {
		return nil
	}
	seen := map[string]bool{} // distinct paths, keyed by packed edge indices
	for _, pid := range a.touched {
		if !a.nfa.States[pid%a.S].Accept || a.distOf(pid) != minAt[pid/a.S] {
			continue
		}
		a.pathBuf = a.pathBuf[:0]
		if err := a.walkBack(pid, seen); err != nil {
			return err
		}
	}
	return nil
}

// walkBack enumerates the DAG paths from a product state back to the
// seed, accumulating steps in reverse; at depth 0 the path is deduplicated
// and replayed.
func (a *autoEngine) walkBack(pid int, seen map[string]bool) error {
	if a.distOf(pid) == 1 {
		buf := a.seenBuf[:0]
		for i := len(a.pathBuf) - 1; i >= 0; i-- {
			buf = binary.AppendUvarint(buf, uint64(a.pathBuf[i].edge))
		}
		a.seenBuf = buf
		if seen[string(buf)] {
			return nil
		}
		seen[string(buf)] = true
		a.fwdBuf = a.fwdBuf[:0]
		for i := len(a.pathBuf) - 1; i >= 0; i-- {
			a.fwdBuf = append(a.fwdBuf, a.pathBuf[i])
		}
		return a.replayPath(a.fwdBuf)
	}
	node := pid / a.S
	for _, p := range a.preds[pid] {
		a.pathBuf = append(a.pathBuf, replayStep{edge: p.edge, node: node})
		if err := a.walkBack(p.from, seen); err != nil {
			return err
		}
		a.pathBuf = a.pathBuf[:len(a.pathBuf)-1]
	}
	return nil
}

// replayPath re-runs the program constrained to one reconstructed path on
// the shared DFS machine, recovering the path's bindings. The product
// search is an exact abstraction of the program for eligible patterns, so
// at least one run must match; none matching is an engine bug and is
// reported rather than silently dropping a result.
func (a *autoEngine) replayPath(steps []replayStep) error {
	a.emitted = 0
	a.rep.pathSteps = steps
	err := a.rep.run(a.seed)
	a.rep.pathSteps = nil
	if err != nil {
		return err
	}
	if a.emitted == 0 {
		return fmt.Errorf("eval: automaton engine reconstructed a path the program cannot match (engine bug)")
	}
	return nil
}
