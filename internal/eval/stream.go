package eval

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"gpml/internal/binding"
	"gpml/internal/graph"
	"gpml/internal/plan"
)

// Pull-based streaming execution. Every stage of the §6 pipeline is a
// Cursor: the consumer pulls rows one at a time, and only genuinely
// blocking stages buffer anything:
//
//   - enumerate / reduce / dedup / select stream at per-seed granularity:
//     dedup keys never collide across seed nodes (every key embeds the
//     path, whose first node is the seed) and Fig 8's selector partitions
//     are keyed on path endpoints, whose first is the seed — so the
//     per-seed pipeline is exact and buffering is bounded by one seed's
//     matches, never the total;
//   - the canonical (path length, binding key) sort is the only truly
//     blocking stage, and only Eval applies it — Stream emits rows in
//     deterministic pipeline order (seed-major, per-seed pipeline order)
//     and skips the sort entirely, which is what buys first-row latency;
//   - joins stream their probe side; a seeded bind-join step solves seed
//     nodes lazily and memoizes, a hash-join fallback step materializes
//     only the pattern it joins against.
//
// Sequential evaluation runs the whole pipeline on the consumer's
// goroutine (next() advances the engine one seed at a time — no channels,
// no scheduling, no overhead over the materializing pipeline it
// replaced); only Parallelism > 1 starts a worker pool, whose per-seed
// batches are emitted in seed order over a channel.
//
// Eval is a thin collect-all wrapper: drain the cursor, apply the
// canonical sort. Because deduplicated binding keys are unique, the sort
// fully determines row order, making Eval's output byte-identical to the
// materializing pipeline it replaced (the same argument that made the
// PR-3 bind-join exact; see bindjoin.go).
//
// Cancellation: the pipeline carries a context (and, for the parallel
// stream, a stop channel). Generator goroutines select on both at every
// send, and the engines poll budget.checkCancel every
// cancelCheckInterval edge expansions, so a cancelled context or an
// abandoned cursor stops an in-flight search in microseconds, not at the
// next match.

// Cursor is the pull-based operator interface. Next returns the next
// result row, or (nil, nil) when the stream is exhausted. Close releases
// the pipeline's resources — generator goroutines, worker pools — and
// must be called exactly once when the consumer is done, whether or not
// the stream was drained; it blocks until every goroutine has exited, so
// a closed cursor leaks nothing. Cursors are not safe for concurrent use;
// cancel the pipeline's context to abort from another goroutine.
type Cursor interface {
	Next() (*Row, error)
	Close() error
}

// errStreamStopped is the internal sentinel an engine run returns when the
// consumer closed the stream: normal early termination, filtered at the
// pipeline boundary, never surfaced to callers.
var errStreamStopped = errors.New("eval: stream stopped")

// StreamPlan builds the streaming pipeline for a plan over one store.
// The returned cursor must be closed; see Cursor.
func StreamPlan(ctx context.Context, s graph.Store, p *plan.Plan, cfg Config) (Cursor, error) {
	stores := make([]graph.Store, len(p.Paths))
	for i := range stores {
		stores[i] = s
	}
	return StreamPlanOn(ctx, stores, p, cfg)
}

// StreamPlanOn builds the streaming pipeline with per-pattern stores (the
// multi-graph EvalPlanOn form). With the bind-join planner enabled the
// whole pipeline streams; with DisableBindJoin the classic multi-pattern
// pipeline materializes every pattern eagerly at construction (preserving
// its A/B-reference semantics exactly), so this call may then do the bulk
// of the work before returning.
func StreamPlanOn(ctx context.Context, stores []graph.Store, p *plan.Plan, cfg Config) (Cursor, error) {
	if len(stores) != len(p.Paths) {
		return nil, fmt.Errorf("eval: %d graphs for %d path patterns", len(stores), len(p.Paths))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Pin epoch sources once for the whole query, so every pattern source,
	// the variable router, and the post-join filters observe one epoch
	// even while a writer keeps publishing. The identity memo maps equal
	// Store values to one pinned snapshot, preserving the shared-store
	// fast path (compact index-based join keys) below.
	{
		pinned := make(map[graph.Store]graph.Store, 1)
		out := make([]graph.Store, len(stores))
		for i, s := range stores {
			ps, ok := pinned[s]
			if !ok {
				ps = graph.Pin(s)
				pinned[s] = ps
			}
			out[i] = ps
		}
		stores = out
	}
	// Per-variable lookup routing: the first store whose pattern declares
	// the variable (the EvalPlanOn contract). Stores are normalized to
	// their indexed views — the same object the engines stamp into each
	// binding's Src — so on the single-store fast path the row resolver
	// can see that a binding's index is already relative to the routed
	// store and skip re-interning.
	varGraph := map[string]graph.Store{}
	for i, pp := range p.Paths {
		for _, v := range pp.Vars {
			if _, ok := varGraph[v]; !ok {
				varGraph[v] = graph.AsStepper(stores[i])
			}
		}
	}
	// Compact index-based join keys need every pattern on one shared
	// store; multi-graph evaluation (and the StringKeys reference mode)
	// joins by materialized element id.
	byIdx := !cfg.StringKeys
	for i := 1; i < len(stores); i++ {
		if stores[i] != stores[0] {
			byIdx = false
			break
		}
	}
	// The vectorized batch pipeline takes over whole statements in its
	// fragment (flat chains, shared store); it builds its own post-join
	// stages and boundary adapter, so it returns directly.
	if cur, ok := newBatchPipeline(ctx, stores, p, cfg, byIdx); ok {
		return cur, nil
	}
	var cur Cursor
	if len(p.Paths) > 1 && cfg.DisableBindJoin {
		c, err := newClassicJoinCursor(ctx, stores, p, cfg, byIdx)
		if err != nil {
			return nil, err
		}
		cur = c
	} else if len(p.Paths) > 1 {
		cur = newBindJoinCursor(ctx, stores, p, cfg, byIdx)
	} else {
		pp := p.Paths[0]
		cur = &matchCursor{
			src:    newPatternSource(ctx, stores[0], pp, cfg),
			p:      p,
			pp:     pp,
			prefix: &Row{},
		}
	}
	// Post-join stages: all row-local, all streaming.
	if cfg.EdgeIsomorphic {
		cur = &filterCursor{src: cur, keep: func(row *Row) (bool, error) {
			return rowEdgeIsomorphic(row), nil
		}}
	}
	if p.Post != nil {
		g := graph.AsStepper(stores[0])
		cur = &filterCursor{src: cur, keep: func(row *Row) (bool, error) {
			t, err := EvalPred(p.Post, rowResolver{g, varGraph, row, cfg.Params})
			if err != nil {
				return false, err
			}
			return t.IsTrue(), nil
		}}
	}
	if cfg.Limit > 0 {
		cur = &limitCursor{src: cur, remaining: cfg.Limit}
	}
	return cur, nil
}

// Collect drains a cursor, closes it, and restores the canonical row
// order (sortRowsCanonical) — the collect-all wrapper Eval is built on.
func Collect(cur Cursor, p *plan.Plan) (*Result, error) {
	defer cur.Close()
	var rows []*Row
	for {
		row, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			break
		}
		rows = append(rows, row)
	}
	sortRowsCanonical(rows, len(p.Paths))
	return &Result{Columns: p.Columns, Rows: rows}, nil
}

// cancelCheck builds the budget poll hook: a closed stop channel reports
// the internal stopped sentinel (normal early termination); a cancelled
// context reports its error (surfaced to the caller).
func cancelCheck(ctx context.Context, stop <-chan struct{}) func() error {
	return func() error {
		select {
		case <-stop:
			return errStreamStopped
		default:
		}
		return ctx.Err()
	}
}

// ---------------------------------------------------------------------------
// Pattern sources: one pattern's selected solutions, produced incrementally
// (the full §6 single-pattern pipeline: enumerate, reduce, dedup, select,
// at per-seed granularity).

// solSource streams one path pattern's solutions. next returns (nil, nil)
// at exhaustion; close releases any resources (for the parallel stream,
// it stops the worker pool and blocks until every goroutine has exited).
type solSource interface {
	next() (*binding.Reduced, error)
	close()
}

// newPatternSource builds the pattern's solution source: a synchronous
// pull source normally — the consumer's next() runs the engine one seed
// at a time on its own goroutine, so sequential evaluation pays zero
// scheduling or channel cost — and a worker-pool generator stream under
// Parallelism > 1. Either owns a fresh budget wired to the pipeline's
// cancellation hook.
func newPatternSource(ctx context.Context, s graph.Store, pp *plan.PathPlan, cfg Config) solSource {
	st := graph.AsStepper(s)
	seeds := seedNodes(st, pp)
	if cfg.Parallelism > 1 && len(seeds) > 1 {
		return newParallelSolStream(ctx, st, pp, cfg, seeds)
	}
	bud := newBudget(cfg.Limits.withDefaults())
	bud.check = cancelCheck(ctx, nil)
	return &syncSolSource{
		solver: newSeedSolver(st, pp, cfg, bud),
		seeds:  seeds,
	}
}

// syncSolSource pulls solutions seed by seed with no goroutines: one
// seed's pipeline output is buffered (bounded by that seed's matches,
// never the total), handed out solution by solution, and the next seed
// runs only when the buffer empties — so a LIMIT-cut or abandoned
// consumer never pays for seeds it didn't reach. The seed ids are
// materialized up front (O(#seeds) ids, far below the old pipeline's
// O(#solutions) buffering).
type syncSolSource struct {
	solver *seedSolver
	seeds  []int
	at     int
	buf    []*binding.Reduced
	bufAt  int
}

func (c *syncSolSource) next() (*binding.Reduced, error) {
	for {
		if c.bufAt < len(c.buf) {
			sol := c.buf[c.bufAt]
			c.bufAt++
			return sol, nil
		}
		if c.at >= len(c.seeds) {
			return nil, nil
		}
		seed := c.seeds[c.at]
		c.at++
		sols, err := c.solver.solve(seed)
		if err != nil {
			return nil, err
		}
		c.buf, c.bufAt = sols, 0
	}
}

func (c *syncSolSource) close() {}

// solStream is the parallel pattern source: a worker pool solves seeds
// concurrently and a generator goroutine emits the per-seed batches in
// seed order over a channel.
type solStream struct {
	ctx    context.Context
	ch     chan []*binding.Reduced
	stop   chan struct{}
	err    error // set before ch closes; errStreamStopped is filtered
	buf    []*binding.Reduced
	closed bool
}

// newParallelSolStream starts the worker pool and ordering emitter.
func newParallelSolStream(ctx context.Context, st graph.Stepper, pp *plan.PathPlan, cfg Config, seeds []int) *solStream {
	ps := &solStream{ctx: ctx, ch: make(chan []*binding.Reduced, 8), stop: make(chan struct{})}
	bud := newBudget(cfg.Limits.withDefaults())
	bud.check = cancelCheck(ctx, ps.stop)
	go func() {
		defer close(ps.ch)
		ps.setErr(ps.runParallel(st, pp, cfg, bud, seeds))
	}()
	return ps
}

// setErr records the generator's terminal error; the stopped sentinel is
// normal early termination, not an error.
func (ps *solStream) setErr(err error) {
	if err != nil && !errors.Is(err, errStreamStopped) {
		ps.err = err
	}
}

// send hands one batch to the consumer, aborting when the stream is
// closed or the context cancelled.
func (ps *solStream) send(batch []*binding.Reduced) error {
	select {
	case ps.ch <- batch:
		return nil
	case <-ps.stop:
		return errStreamStopped
	case <-ps.ctx.Done():
		return ps.ctx.Err()
	}
}

// next returns the next solution, or (nil, nil) at exhaustion.
func (ps *solStream) next() (*binding.Reduced, error) {
	for len(ps.buf) == 0 {
		batch, ok := <-ps.ch
		if !ok {
			return nil, ps.err
		}
		ps.buf = batch
	}
	sol := ps.buf[0]
	ps.buf = ps.buf[1:]
	return sol, nil
}

// close stops the generator and waits for it to exit (draining the
// channel until the generator closes it), so no goroutine outlives the
// stream.
func (ps *solStream) close() {
	if ps.closed {
		return
	}
	ps.closed = true
	close(ps.stop)
	for range ps.ch { //nolint:revive // drain until the generator exits
	}
}

// runParallel distributes per-seed pipeline runs over cfg.Parallelism
// workers and emits the results in seed order (the reorder buffer holds
// only batches that finished ahead of the emission head), so the
// stream's order is identical to sequential evaluation. Workers claim
// contiguous seed chunks — small enough for load balance, large enough
// that channel and reorder bookkeeping amortizes to nothing on
// many-seed workloads — and stop claiming when the stream stops;
// mid-seed runs abort through the shared budget's cancellation hook.
func (ps *solStream) runParallel(st graph.Stepper, pp *plan.PathPlan, cfg Config, bud *budget, seeds []int) error {
	workers := cfg.Parallelism
	if workers > len(seeds) {
		workers = len(seeds)
	}
	if pv, ok := st.(graph.PartitionedView); ok && pv.NumPartitions() > 1 {
		return ps.runPartitioned(st, pv, pp, cfg, bud, seeds, workers)
	}
	// Seeds are claimed in contiguous chunks (see chunkStarts): single
	// seeds first for first-row latency, growing toward 64 so channel and
	// reorder bookkeeping amortizes away on many-seed workloads.
	starts := chunkStarts(len(seeds), workers)
	nchunks := len(starts) - 1
	type seedResult struct {
		i    int
		sols []*binding.Reduced
	}
	resCh := make(chan seedResult, workers)
	var errs []error
	go func() {
		errs = runSeedPool(workers, nchunks, ps.stop, func() func(int) error {
			solver := newSeedSolver(st, pp, cfg, bud)
			return func(ci int) error {
				lo, hi := starts[ci], starts[ci+1]
				var batch []*binding.Reduced
				for _, seed := range seeds[lo:hi] {
					sols, err := solver.solve(seed)
					if err != nil {
						return err
					}
					batch = append(batch, sols...)
				}
				// Empty batches are sent too: the emitter advances its
				// reorder head strictly in chunk order.
				select {
				case resCh <- seedResult{i: ci, sols: batch}:
					return nil
				case <-ps.stop:
					return errStreamStopped
				}
			}
		})
		close(resCh) // errs is visible to the emitter once the range ends
	}()
	// Emit per-seed batches in seed order; the reorder buffer holds only
	// seeds that finished ahead of the emission head. On failure or stop,
	// keep draining so the workers can exit, then report the first error
	// in seed order (matching the materializing pool's behaviour).
	pending := map[int][]*binding.Reduced{}
	emitAt := 0
	var emitErr error
	for r := range resCh {
		if emitErr != nil {
			continue
		}
		pending[r.i] = r.sols
		for sols, ok := pending[emitAt]; ok; sols, ok = pending[emitAt] {
			delete(pending, emitAt)
			emitAt++
			if len(sols) == 0 {
				continue
			}
			if emitErr = ps.send(sols); emitErr != nil {
				break
			}
		}
	}
	for _, err := range errs {
		if err != nil && !errors.Is(err, errStreamStopped) {
			return err
		}
	}
	return emitErr
}

// runPartitioned is runParallel's scatter/gather variant for stores whose
// adjacency is sharded (graph.PartitionedView). The global seed list is
// scattered into per-partition position lists (positions into the seed
// slice, ascending, so each list preserves global seed order), each list
// is chunked with the same geometric schedule, and workers are pinned to
// home partitions — a worker claims chunks of its home shard while any
// remain, keeping the hot expansion loop inside one partition's arena,
// and steals from the fullest shard once its home drains. Homes are
// assigned in order of each partition's first global seed position, so
// the shard holding seed 0 is worked first and first-row latency stays
// one seed's work.
//
// Gather: every finished seed's batch is tagged with its global position
// and the emitter advances a per-position reorder head, so the stream's
// emission order — and therefore all downstream output — is byte-
// identical to the sequential and unpartitioned parallel paths.
func (ps *solStream) runPartitioned(st graph.Stepper, pv graph.PartitionedView, pp *plan.PathPlan, cfg Config, bud *budget, seeds []int, workers int) error {
	nparts := pv.NumPartitions()
	byPart := make([][]int32, nparts)
	for pos, seed := range seeds {
		p := pv.PartitionOf(seed)
		byPart[p] = append(byPart[p], int32(pos))
	}
	// Chunk each partition's list as if its share of the pool worked it
	// alone, so every shard leads with single-seed chunks.
	perPart := (workers + nparts - 1) / nparts
	starts := make([][]int, nparts)
	nchunks := make([]int, nparts)
	for p, list := range byPart {
		starts[p] = chunkStarts(len(list), perPart)
		nchunks[p] = len(starts[p]) - 1
	}
	// Pin workers to non-empty partitions ordered by first seed position.
	order := make([]int, 0, nparts)
	for p := range byPart {
		if len(byPart[p]) > 0 {
			order = append(order, p)
		}
	}
	sort.Slice(order, func(a, b int) bool { return byPart[order[a]][0] < byPart[order[b]][0] })
	homes := make([]int, workers)
	for w := range homes {
		homes[w] = order[w%len(order)]
	}
	type posResult struct {
		pos  int32
		sols []*binding.Reduced
	}
	resCh := make(chan []posResult, workers)
	var errs [][]error
	go func() {
		errs = runPartitionPool(homes, nchunks, ps.stop, func(home int) func(part, ci int) error {
			solver := newSeedSolver(st, pp, cfg, bud)
			return func(part, ci int) error {
				lo, hi := starts[part][ci], starts[part][ci+1]
				out := make([]posResult, 0, hi-lo)
				for _, pos := range byPart[part][lo:hi] {
					sols, err := solver.solve(seeds[pos])
					if err != nil {
						return err
					}
					out = append(out, posResult{pos: pos, sols: sols})
				}
				// Empty per-seed results are sent too: the emitter advances
				// its reorder head strictly in seed-position order.
				select {
				case resCh <- out:
					return nil
				case <-ps.stop:
					return errStreamStopped
				}
			}
		})
		close(resCh) // errs is visible to the emitter once the range ends
	}()
	pending := map[int][]*binding.Reduced{}
	emitAt := 0
	var emitErr error
	for batch := range resCh {
		if emitErr != nil {
			continue
		}
		for _, r := range batch {
			pending[int(r.pos)] = r.sols
		}
		for sols, ok := pending[emitAt]; ok; sols, ok = pending[emitAt] {
			delete(pending, emitAt)
			emitAt++
			if len(sols) == 0 {
				continue
			}
			if emitErr = ps.send(sols); emitErr != nil {
				break
			}
		}
	}
	// Report the first error in global seed order (matching the other
	// pools), identified by the failing chunk's first seed position.
	var firstErr error
	firstPos := len(seeds)
	for p, perr := range errs {
		for ci, err := range perr {
			if err == nil || errors.Is(err, errStreamStopped) {
				continue
			}
			if pos := int(byPart[p][starts[p][ci]]); pos < firstPos {
				firstPos, firstErr = pos, err
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return emitErr
}

// collectStream drains a pattern source into a solution slice — the
// cancellable materialization used by blocking join inputs.
func collectStream(ps solSource) ([]*binding.Reduced, error) {
	defer ps.close()
	var out []*binding.Reduced
	for {
		sol, err := ps.next()
		if err != nil {
			return nil, err
		}
		if sol == nil {
			return out, nil
		}
		out = append(out, sol)
	}
}

// ---------------------------------------------------------------------------
// Row operators.

// matchCursor maps one pattern's solution stream to result rows by
// merging each solution into a fixed prefix row (the first/only join
// step).
type matchCursor struct {
	src    solSource
	p      *plan.Plan
	pp     *plan.PathPlan
	prefix *Row
}

func (c *matchCursor) Next() (*Row, error) {
	for {
		sol, err := c.src.next()
		if sol == nil || err != nil {
			return nil, err
		}
		if merged, ok := mergeRow(c.p, c.pp, c.prefix, sol); ok {
			return merged, nil
		}
	}
}

func (c *matchCursor) Close() error {
	c.src.close()
	return nil
}

// filterCursor keeps the rows a predicate admits (edge-isomorphic match
// mode, the final WHERE postfilter).
type filterCursor struct {
	src  Cursor
	keep func(*Row) (bool, error)
}

func (c *filterCursor) Next() (*Row, error) {
	for {
		row, err := c.src.Next()
		if row == nil || err != nil {
			return nil, err
		}
		ok, err := c.keep(row)
		if err != nil {
			return nil, err
		}
		if ok {
			return row, nil
		}
	}
}

func (c *filterCursor) Close() error { return c.src.Close() }

// limitCursor ends the stream after n rows — the LIMIT pushdown: in a
// pull pipeline, not asking for the (n+1)-th row is what stops every
// upstream stage from computing it.
type limitCursor struct {
	src       Cursor
	remaining int
}

func (c *limitCursor) Next() (*Row, error) {
	if c.remaining <= 0 {
		return nil, nil
	}
	row, err := c.src.Next()
	if row != nil && err == nil {
		c.remaining--
	}
	return row, err
}

func (c *limitCursor) Close() error { return c.src.Close() }

// sliceCursor serves pre-materialized rows (the classic pipeline).
type sliceCursor struct {
	rows []*Row
	at   int
}

func (c *sliceCursor) Next() (*Row, error) {
	if c.at >= len(c.rows) {
		return nil, nil
	}
	row := c.rows[c.at]
	c.at++
	return row, nil
}

func (c *sliceCursor) Close() error { return nil }

// newClassicJoinCursor reproduces the pre-planner multi-pattern pipeline
// exactly (the DisableBindJoin A/B reference): every pattern is
// materialized eagerly in textual order — budgets, limit errors and all —
// then hash-joined. Only the result delivery streams.
func newClassicJoinCursor(ctx context.Context, stores []graph.Store, p *plan.Plan, cfg Config, byIdx bool) (Cursor, error) {
	perPattern := make([][]*binding.Reduced, len(p.Paths))
	for i, pp := range p.Paths {
		sols, err := matchPatternStream(ctx, stores[i], pp, cfg)
		if err != nil {
			return nil, err
		}
		perPattern[i] = sols
	}
	rows := []*Row{{}}
	bound := map[string]bool{}
	for patIdx, solutions := range perPattern {
		pp := p.Paths[patIdx]
		rows = joinPattern(p, pp, rows, solutions, sharedVars(p, pp, bound), byIdx)
		markBound(bound, pp)
		if len(rows) == 0 {
			break
		}
	}
	return &sliceCursor{rows: rows}, nil
}

// ---------------------------------------------------------------------------
// Streaming bind-join.

// newBindJoinCursor builds the cost-ordered bind-join pipeline as a chain
// of join-step cursors: rows stream through every step, and each step
// only does the per-seed work its input rows demand. byIdx selects the
// compact index-based join keys (single shared store).
func newBindJoinCursor(ctx context.Context, stores []graph.Store, p *plan.Plan, cfg Config, byIdx bool) Cursor {
	steps := plan.OrderJoin(p, storeStatsFor(stores))
	bound := map[string]bool{}
	var cur Cursor
	for k, step := range steps {
		pp := p.Paths[step.Pattern]
		shared := sharedVars(p, pp, bound)
		switch {
		case k == 0:
			// The first step joins against the single empty row: a pure
			// pattern scan, streamed straight off the engines.
			cur = &matchCursor{
				src:    newPatternSource(ctx, stores[step.Pattern], pp, cfg),
				p:      p,
				pp:     pp,
				prefix: &Row{},
			}
		case step.SeedVar != "" && bound[step.SeedVar]:
			cur = &bindStepCursor{
				ctx: ctx, s: stores[step.Pattern], p: p, pp: pp, cfg: cfg,
				seedVar: step.SeedVar, shared: shared, byIdx: byIdx, left: cur,
				memo: map[int]*seedIndex{},
			}
		default:
			cur = &hashStepCursor{
				ctx: ctx, s: stores[step.Pattern], p: p, pp: pp, cfg: cfg,
				shared: shared, byIdx: byIdx, left: cur,
			}
		}
		markBound(bound, pp)
	}
	return cur
}

// seedIndex is one seed node's selected solutions, hash-indexed by the
// step's shared-variable join key.
type seedIndex struct {
	byKey map[string][]*binding.Reduced
}

func buildSeedIndex(sols []*binding.Reduced, shared []string, byIdx bool) *seedIndex {
	idx := &seedIndex{byKey: make(map[string][]*binding.Reduced, len(sols))}
	var buf []byte
	for _, sol := range sols {
		buf = appendJoinKeyOfSolution(buf[:0], sol, shared, byIdx)
		idx.byKey[string(buf)] = append(idx.byKey[string(buf)], sol)
	}
	return idx
}

// bindStepCursor joins one pattern into the row stream by seeding its
// engine runs from each row's binding of the planner-chosen seed
// variable. Seeds are solved lazily — the first row that needs a seed
// pays for it, later rows reuse the memo — so a LIMIT that is satisfied
// early never enumerates the seeds it didn't reach. With Parallelism > 1
// the cursor prefetches a bounded chunk of input rows and solves their
// unseen seeds on a worker pool.
type bindStepCursor struct {
	ctx     context.Context
	s       graph.Store
	p       *plan.Plan
	pp      *plan.PathPlan
	cfg     Config
	seedVar string
	shared  []string
	byIdx   bool
	left    Cursor

	// bud is the step's shared search budget: limits accounting spans
	// every seed run of the step — sequential or chunked-parallel —
	// exactly like the materializing pipeline's per-step budget did.
	bud    *budget
	solver *seedSolver
	memo   map[int]*seedIndex
	// st is the step's indexed topology view (memoized per store, shared
	// with parallel chunk workers).
	st     graph.Stepper
	keyBuf []byte

	// chunk is the prefetched left rows awaiting expansion; row/cands/ci
	// is the in-flight expansion head.
	chunk   []*Row
	chunkAt int
	row     *Row
	cands   []*binding.Reduced
	ci      int
	done    bool // left exhausted
}

// bindChunkSize bounds the prefetched left rows under Parallelism > 1:
// large enough to keep a worker pool busy, small enough that LIMIT-bound
// consumers don't drag in much speculative work.
const bindChunkSize = 128

func (c *bindStepCursor) Next() (*Row, error) {
	for {
		// Drain the in-flight expansion first.
		for c.ci < len(c.cands) {
			sol := c.cands[c.ci]
			c.ci++
			if merged, ok := mergeRow(c.p, c.pp, c.row, sol); ok {
				return merged, nil
			}
		}
		// Advance to the next prefetched row.
		if c.chunkAt < len(c.chunk) {
			row := c.chunk[c.chunkAt]
			c.chunkAt++
			cands, err := c.candidates(row)
			if err != nil {
				return nil, err
			}
			c.row, c.cands, c.ci = row, cands, 0
			continue
		}
		if c.done {
			return nil, nil
		}
		if err := c.refill(); err != nil {
			return nil, err
		}
		if len(c.chunk) == 0 {
			return nil, nil
		}
	}
}

// refill pulls the next chunk of left rows and, under parallelism,
// pre-solves their unseen seeds on a worker pool.
func (c *bindStepCursor) refill() error {
	want := 1
	if c.cfg.Parallelism > 1 {
		want = bindChunkSize
	}
	c.chunk = c.chunk[:0]
	c.chunkAt = 0
	for len(c.chunk) < want {
		row, err := c.left.Next()
		if err != nil {
			return err
		}
		if row == nil {
			c.done = true
			break
		}
		c.chunk = append(c.chunk, row)
	}
	if c.cfg.Parallelism > 1 && len(c.chunk) > 1 {
		var seeds []int
		seen := map[int]bool{}
		for _, row := range c.chunk {
			if b, ok := row.lookup(c.seedVar); ok && b.Kind == BoundNode {
				si, ok := c.seedIdxOf(b)
				if !ok {
					continue
				}
				if _, cached := c.memo[si]; !cached && !seen[si] {
					seen[si] = true
					seeds = append(seeds, si)
				}
			}
		}
		if len(seeds) > 1 {
			perSeed, err := c.solveSeedsParallel(seeds)
			if err != nil {
				return err
			}
			for i, seed := range seeds {
				c.memo[seed] = buildSeedIndex(perSeed[i], c.shared, c.byIdx)
			}
		}
	}
	return nil
}

// seedIdxOf resolves a row's seed binding to a node index in the step's
// store. On the shared-store fast path the row's interned index is used
// directly; multi-graph evaluation (and the StringKeys reference mode)
// joins by id, so the id is re-interned against this pattern's store —
// an id unknown here joins nothing, like the materializing pipeline.
func (c *bindStepCursor) seedIdxOf(b Bound) (int, bool) {
	if c.byIdx {
		return int(b.Idx), true
	}
	i, ok := c.s.InternNode(b.Node)
	return int(i), ok
}

// candidates returns the step solutions joinable with one row: the row's
// seed node is solved (memoized), and its solutions are probed with the
// full shared-variable key — the same equi-join the hash join performs.
// A row that does not bind the seed variable to a node joins nothing:
// the seed variable is an unconditional singleton head variable, so every
// solution binds it to a node and no join key can match (the check
// mirrors the materializing pipeline's defensive fallback).
func (c *bindStepCursor) candidates(row *Row) ([]*binding.Reduced, error) {
	b, ok := row.lookup(c.seedVar)
	if !ok || b.Kind != BoundNode {
		return nil, nil
	}
	si, ok := c.seedIdxOf(b)
	if !ok {
		return nil, nil
	}
	idx, cached := c.memo[si]
	if !cached {
		if c.solver == nil {
			c.solver = newSeedSolver(c.stepper(), c.pp, c.cfg, c.budget())
		}
		sols, err := c.solver.solve(si)
		if err != nil {
			return nil, err
		}
		idx = buildSeedIndex(sols, c.shared, c.byIdx)
		c.memo[si] = idx
	}
	c.keyBuf = appendJoinKeyOfRow(c.keyBuf[:0], row, c.shared, c.byIdx)
	return idx.byKey[string(c.keyBuf)], nil
}

// solveSeedsParallel runs the per-seed pipeline for a chunk's unseen
// seeds on a worker pool (one solver per worker, budget shared with the
// sequential solver's step budget semantics).
func (c *bindStepCursor) solveSeedsParallel(seeds []int) ([][]*binding.Reduced, error) {
	workers := c.cfg.Parallelism
	if workers > len(seeds) {
		workers = len(seeds)
	}
	st := c.stepper()
	bud := c.budget()
	out := make([][]*binding.Reduced, len(seeds))
	errs := runSeedPool(workers, len(seeds), nil, func() func(int) error {
		solver := newSeedSolver(st, c.pp, c.cfg, bud)
		return func(i int) error {
			sols, err := solver.solve(seeds[i])
			if err != nil {
				return err
			}
			out[i] = sols
			return nil
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// stepper lazily resolves the step's indexed topology view.
func (c *bindStepCursor) stepper() graph.Stepper {
	if c.st == nil {
		c.st = graph.AsStepper(c.s)
	}
	return c.st
}

// budget lazily builds the step's shared budget, wired to the pipeline
// context.
func (c *bindStepCursor) budget() *budget {
	if c.bud == nil {
		c.bud = newBudget(c.cfg.Limits.withDefaults())
		c.bud.check = cancelCheck(c.ctx, nil)
	}
	return c.bud
}

func (c *bindStepCursor) Close() error { return c.left.Close() }

// hashStepCursor joins one pattern into the row stream by classic hash
// join: the pattern (no usable seed variable — a disconnected fragment,
// or no bound head var) is materialized lazily on the first input row,
// and input rows probe it. With no shared variables it degenerates to the
// cross product, exactly like the materializing pipeline.
type hashStepCursor struct {
	ctx    context.Context
	s      graph.Store
	p      *plan.Plan
	pp     *plan.PathPlan
	cfg    Config
	shared []string
	byIdx  bool
	left   Cursor

	built  bool
	index  map[string][]*binding.Reduced
	keyBuf []byte

	row   *Row
	cands []*binding.Reduced
	ci    int
}

func (c *hashStepCursor) Next() (*Row, error) {
	for {
		for c.ci < len(c.cands) {
			sol := c.cands[c.ci]
			c.ci++
			if merged, ok := mergeRow(c.p, c.pp, c.row, sol); ok {
				return merged, nil
			}
		}
		row, err := c.left.Next()
		if row == nil || err != nil {
			return nil, err
		}
		if !c.built {
			// First input row: materialize the build side. Lazy, so an
			// empty or LIMIT-cut input never enumerates the pattern —
			// mirroring the bind-join pipeline's early exit on zero rows.
			sols, err := matchPatternStream(c.ctx, c.s, c.pp, c.cfg)
			if err != nil {
				return nil, err
			}
			c.index = make(map[string][]*binding.Reduced, len(sols))
			for _, sol := range sols {
				c.keyBuf = appendJoinKeyOfSolution(c.keyBuf[:0], sol, c.shared, c.byIdx)
				c.index[string(c.keyBuf)] = append(c.index[string(c.keyBuf)], sol)
			}
			c.built = true
		}
		c.row = row
		c.keyBuf = appendJoinKeyOfRow(c.keyBuf[:0], row, c.shared, c.byIdx)
		c.cands = c.index[string(c.keyBuf)]
		c.ci = 0
	}
}

func (c *hashStepCursor) Close() error { return c.left.Close() }

// matchPatternStream is MatchPattern through the cancellable streaming
// machinery: full single-pattern pipeline, canonically sorted.
func matchPatternStream(ctx context.Context, s graph.Store, pp *plan.PathPlan, cfg Config) ([]*binding.Reduced, error) {
	sols, err := collectStream(newPatternSource(ctx, s, pp, cfg))
	if err != nil {
		return nil, err
	}
	binding.SortStable(sols)
	return sols, nil
}
